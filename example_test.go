package repro_test

import (
	"context"
	"fmt"
	"log"

	"repro"
	"repro/internal/workload"
)

// Sorting with an explicitly chosen algorithm reports the paper's pass
// counts exactly.
func Example() {
	m, err := repro.NewMachine(repro.MachineConfig{Memory: 1024})
	if err != nil {
		log.Fatal(err)
	}
	defer m.Close()

	keys := workload.Perm(1024*32, 1) // M·√M keys: the three-pass capacity
	report, err := m.Sort(keys, repro.ThreePassLMM)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %.0f read passes, %.0f write passes\n",
		report.Algorithm, report.ReadPasses, report.WritePasses)
	// Output:
	// ThreePass2: 3 read passes, 3 write passes
}

// Plan shows which algorithm Auto would pick as the input grows.
func ExampleMachine_Plan() {
	m, err := repro.NewMachine(repro.MachineConfig{Memory: 1024})
	if err != nil {
		log.Fatal(err)
	}
	defer m.Close()
	for _, n := range []int{2048, 32768, 1048576} {
		fmt.Printf("N = %7d -> %s\n", n, m.Plan(n))
	}
	// Output:
	// N =    2048 -> ExpectedTwoPass
	// N =   32768 -> ThreePass2
	// N = 1048576 -> SevenPass
}

// Explain returns the planner's ranked candidate table: predicted passes,
// the padded length each algorithm's geometry forces, and calibrated wall
// time, with Chosen naming what Auto will run.  The analytic columns are
// deterministic; only the seconds depend on the machine's calibration.
func ExampleMachine_Explain() {
	m, err := repro.NewMachine(repro.MachineConfig{Memory: 1024})
	if err != nil {
		log.Fatal(err)
	}
	defer m.Close()
	rep, err := m.Explain(repro.SortSpec{N: 2048})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("chosen:", rep.Chosen)
	top := rep.Candidates[0]
	fmt.Printf("%s: %.0f read passes over %d padded keys\n",
		top.Algorithm, top.ReadPasses, top.PaddedN)
	// Output:
	// chosen: exp2
	// exp2: 2 read passes over 2048 padded keys
}

// SortRecords sorts full records — keys with arbitrary byte payloads —
// stably by key, moving the payload bytes through the external
// distribution permutation.
func ExampleMachine_SortRecords() {
	m, err := repro.NewMachine(repro.MachineConfig{Memory: 1024})
	if err != nil {
		log.Fatal(err)
	}
	defer m.Close()
	keys := []int64{42, 7, 42, 19}
	payloads := [][]byte{[]byte("first 42"), []byte("seven"), []byte("second 42"), []byte("nineteen")}
	if _, err := m.SortRecords(keys, payloads, repro.Auto); err != nil {
		log.Fatal(err)
	}
	for i, k := range keys {
		fmt.Printf("%2d %s\n", k, payloads[i])
	}
	// Output:
	//  7 seven
	// 19 nineteen
	// 42 first 42
	// 42 second 42
}

// A Scheduler runs many sort jobs concurrently against shared machine
// budgets; Submit enqueues (FIFO admission), Wait blocks for the result.
func ExampleScheduler() {
	s, err := repro.NewScheduler(repro.SchedulerConfig{Memory: 20000, JobMemory: 1024})
	if err != nil {
		log.Fatal(err)
	}
	defer s.Close()
	id, err := s.Submit(repro.JobSpec{
		Workload: &repro.WorkloadSpec{Kind: "perm", N: 2048, Seed: 1},
		KeepKeys: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	st, err := s.Wait(context.Background(), id)
	if err != nil {
		log.Fatal(err)
	}
	keys, err := s.SortedKeys(id)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s with %s: %.0f passes, first key %d\n",
		st.State, st.Report.Algorithm, st.Report.Passes, keys[0])
	// Output:
	// done with ExpectedTwoPass: 2 passes, first key 0
}

// Capacity exposes the paper's capacity hierarchy on a given machine.
func ExampleMachine_Capacity() {
	m, err := repro.NewMachine(repro.MachineConfig{Memory: 4096})
	if err != nil {
		log.Fatal(err)
	}
	defer m.Close()
	fmt.Println("2-pass:", m.Capacity(repro.TwoPassExpected))
	fmt.Println("3-pass:", m.Capacity(repro.ThreePassLMM))
	fmt.Println("7-pass:", m.Capacity(repro.SevenPass))
	// Output:
	// 2-pass: 32768
	// 3-pass: 262144
	// 7-pass: 16777216
}
