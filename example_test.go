package repro_test

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/workload"
)

// Sorting with an explicitly chosen algorithm reports the paper's pass
// counts exactly.
func Example() {
	m, err := repro.NewMachine(repro.MachineConfig{Memory: 1024})
	if err != nil {
		log.Fatal(err)
	}
	defer m.Close()

	keys := workload.Perm(1024*32, 1) // M·√M keys: the three-pass capacity
	report, err := m.Sort(keys, repro.ThreePassLMM)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %.0f read passes, %.0f write passes\n",
		report.Algorithm, report.ReadPasses, report.WritePasses)
	// Output:
	// ThreePass2: 3 read passes, 3 write passes
}

// Plan shows which algorithm Auto would pick as the input grows.
func ExampleMachine_Plan() {
	m, err := repro.NewMachine(repro.MachineConfig{Memory: 1024})
	if err != nil {
		log.Fatal(err)
	}
	defer m.Close()
	for _, n := range []int{2048, 32768, 1048576} {
		fmt.Printf("N = %7d -> %s\n", n, m.Plan(n))
	}
	// Output:
	// N =    2048 -> ExpectedTwoPass
	// N =   32768 -> ThreePass2
	// N = 1048576 -> SevenPass
}

// Capacity exposes the paper's capacity hierarchy on a given machine.
func ExampleMachine_Capacity() {
	m, err := repro.NewMachine(repro.MachineConfig{Memory: 4096})
	if err != nil {
		log.Fatal(err)
	}
	defer m.Close()
	fmt.Println("2-pass:", m.Capacity(repro.TwoPassExpected))
	fmt.Println("3-pass:", m.Capacity(repro.ThreePassLMM))
	fmt.Println("7-pass:", m.Capacity(repro.SevenPass))
	// Output:
	// 2-pass: 32768
	// 3-pass: 262144
	// 7-pass: 16777216
}
