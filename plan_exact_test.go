package repro

import (
	"math/rand"
	"slices"
	"testing"

	"repro/internal/plan"
	"repro/internal/workload"
)

// TestPlanExactnessProperty is the planner's accountability test: over
// randomized machine shapes and input sizes, whenever plan.ExactPasses
// claims a step-exact prediction for a candidate, forcing that candidate
// must measure exactly the predicted read and write passes.  Runs where a
// probabilistic algorithm detected a bad sample and fell back are excluded
// — the exactness contract covers non-fallback runs only — but a
// prediction that is merely close is a planner bug, not noise.
func TestPlanExactnessProperty(t *testing.T) {
	algs := []Algorithm{
		MemOnePass, ThreePassMesh, TwoPassMeshExpected, ThreePassLMM,
		TwoPassExpected, ThreePassExpected, SevenPass, SixPassExpected, SevenPassMesh,
	}
	type shapeCase struct{ mem, d int }
	var shapes []shapeCase
	for _, mem := range []int{256, 1024, 4096} {
		for d := 1; d*d <= mem; d *= 2 {
			shapes = append(shapes, shapeCase{mem, d})
		}
	}
	rng := rand.New(rand.NewSource(4242))
	exactRuns := map[Algorithm]int{}
	for i := 0; i < 30; i++ {
		sc := shapes[rng.Intn(len(shapes))]
		n := 1 + rng.Intn(16*sc.mem)
		keys := workload.Uniform(n, -1<<40, 1<<40, int64(100+i))
		shape := planShape(sc.mem, sc.d, 1)
		for _, alg := range algs {
			read, write, exact := plan.ExactPasses(shape, plan.Workload{N: n}, alg.planAlg())
			if !exact {
				continue
			}
			m, err := NewMachine(MachineConfig{Memory: sc.mem, Disks: sc.d})
			if err != nil {
				t.Fatal(err)
			}
			cp := append([]int64(nil), keys...)
			rep, err := m.Sort(cp, alg)
			m.Close()
			if err != nil {
				// ExactPasses passed the planner's feasibility gate, so the
				// machine must accept the same candidate.
				t.Fatalf("mem=%d d=%d n=%d %s: plan exact but sort refused: %v",
					sc.mem, sc.d, n, alg, err)
			}
			if !slices.IsSorted(cp) {
				t.Fatalf("mem=%d d=%d n=%d %s: output not sorted", sc.mem, sc.d, n, alg)
			}
			if rep.FellBack {
				continue
			}
			if rep.ReadPasses != read || rep.WritePasses != write {
				t.Errorf("mem=%d d=%d n=%d %s: measured %.6f/%.6f passes, predicted %.6f/%.6f",
					sc.mem, sc.d, n, alg, rep.ReadPasses, rep.WritePasses, read, write)
			}
			exactRuns[alg]++
		}
	}
	// The property is vacuous if the random walk never hits exact
	// geometries: demand broad coverage across the candidate set.
	covered := 0
	for _, alg := range algs {
		if exactRuns[alg] > 0 {
			covered++
		}
	}
	if covered < 5 {
		t.Fatalf("only %d algorithms hit an exact geometry (runs: %v)", covered, exactRuns)
	}
}
