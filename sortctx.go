package repro

import (
	"context"
)

// SortContext is Sort bound to ctx: once ctx is canceled the run aborts at
// the next I/O request or cleanup chunk — the pdm layer rejects every
// subsequent transfer with an error wrapping ctx.Err() — with the arena
// fully drained (every pass helper releases its buffers on the error
// path), so a canceled job's memory envelope is immediately reusable.
// Accounting for the completed prefix stays identical to an unpipelined
// run aborted at the same point.
//
// A Machine runs one sort at a time; the binding lasts for this call only.
func (m *Machine) SortContext(ctx context.Context, keys []int64, alg Algorithm) (*Report, error) {
	m.a.BindContext(ctx)
	defer m.a.BindContext(nil)
	return m.Sort(keys, alg)
}

// SortIntsContext is SortInts bound to ctx, with the same abort semantics
// as SortContext.
func (m *Machine) SortIntsContext(ctx context.Context, keys []int64, universe int64) (*Report, error) {
	m.a.BindContext(ctx)
	defer m.a.BindContext(nil)
	return m.SortInts(keys, universe)
}

// SortRecordsContext is SortRecords bound to ctx, with the same abort
// semantics as SortContext: cancellation aborts the key sort or the
// payload permutation at its next I/O with the arena fully drained.
func (m *Machine) SortRecordsContext(ctx context.Context, keys []int64, payloads [][]byte, alg Algorithm) (*Report, error) {
	m.a.BindContext(ctx)
	defer m.a.BindContext(nil)
	return m.SortRecords(keys, payloads, alg)
}

// TopKContext is TopK bound to ctx, with the same abort semantics as
// SortContext.
func (m *Machine) TopKContext(ctx context.Context, keys []int64, k int) ([]int64, *Report, error) {
	m.a.BindContext(ctx)
	defer m.a.BindContext(nil)
	return m.TopK(keys, k)
}

// QuantileContext is Quantile bound to ctx, with the same abort semantics
// as SortContext.
func (m *Machine) QuantileContext(ctx context.Context, keys []int64, r int) (int64, *Report, error) {
	m.a.BindContext(ctx)
	defer m.a.BindContext(nil)
	return m.Quantile(keys, r)
}

// GroupByContext is GroupBy bound to ctx, with the same abort semantics as
// SortContext.
func (m *Machine) GroupByContext(ctx context.Context, keys, payloads []int64, groups int) ([]GroupAgg, *Report, error) {
	m.a.BindContext(ctx)
	defer m.a.BindContext(nil)
	return m.GroupBy(keys, payloads, groups)
}

// IngestContext is Ingest bound to ctx, with the same abort semantics as
// SortContext.
func (m *Machine) IngestContext(ctx context.Context, dataset, batch []int64) ([]int64, *Report, error) {
	m.a.BindContext(ctx)
	defer m.a.BindContext(nil)
	return m.Ingest(dataset, batch)
}
