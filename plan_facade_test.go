package repro

import (
	"testing"
	"time"

	"repro/internal/workload"
)

// TestAutoOnePassRegression pins the planner's headline fix: an input
// that fits in internal memory used to run ThreePass2 degenerately on one
// run — three read passes where one suffices.  Auto must now run the
// single load-sort-store.
func TestAutoOnePassRegression(t *testing.T) {
	m := newTestMachine(t, 1024)
	keys := workload.Perm(768, 7)
	rep, err := m.Sort(keys, Auto)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Algorithm != MemOnePass {
		t.Fatalf("Auto ran %v for an in-memory input, want the one-pass sort", rep.Algorithm)
	}
	if rep.ReadPasses > 1.01 || rep.WritePasses > 1.01 {
		t.Fatalf("one-pass sort measured %.3f read / %.3f write passes", rep.ReadPasses, rep.WritePasses)
	}
	for i := 1; i < len(keys); i++ {
		if keys[i-1] > keys[i] {
			t.Fatal("not sorted")
		}
	}
}

// TestAutoPaddingRegression pins the second fix: ExpectedTwoPass's run
// count must divide √M, so 5M keys pad to 8M — its two passes then move
// more words than ThreePass2's three passes over the snug 5M padding.
// The capacity-threshold planner chose exp2 anyway; the cost model must
// not.
func TestAutoPaddingRegression(t *testing.T) {
	mem := 4096
	m := newTestMachine(t, mem)
	if got := m.Plan(5 * mem); got != ThreePassLMM {
		t.Fatalf("Plan(5M) = %v, want ThreePass2 (exp2 pads 5M to 8M)", got)
	}
	if got := m.Plan(8 * mem); got != TwoPassExpected {
		t.Fatalf("Plan(8M) = %v, want ExpectedTwoPass", got)
	}
	r, err := m.Explain(SortSpec{N: 5 * mem})
	if err != nil {
		t.Fatal(err)
	}
	if r.Chosen != "lmm3" || r.ChosenAlgorithm != ThreePassLMM {
		t.Fatalf("Explain chose %q (%v)", r.Chosen, r.ChosenAlgorithm)
	}
	c := r.Candidate("exp2")
	if c == nil || !c.Feasible || c.PaddedN != 8*mem {
		t.Fatalf("exp2 candidate = %+v, want feasible with PaddedN = 8M", c)
	}
	if lmm := r.Candidate("lmm3"); lmm.IOWords >= c.IOWords {
		t.Fatalf("ranking reason missing: lmm3 words %d vs exp2 words %d", lmm.IOWords, c.IOWords)
	}
}

// explainRegime is one (N, payload, latency) acceptance regime: the
// chosen algorithm must be the measured-fastest among the distinct-cost
// top candidates on latency-modeled file disks, and the calibrated
// prediction must land within bounds of the measured wall.
type explainRegime struct {
	name     string
	mem      int
	n        int
	payload  int // payload bytes per record (0 = bare keys)
	latency  time.Duration
	wantAlg  Algorithm
	wantName string
}

// TestExplainMatchesMeasuredOnLatencyDisks is the acceptance criterion:
// three distinct (N, payload, latency) regimes on latency-modeled
// file-backed disks; in each, Explain's chosen algorithm must actually be
// the fastest when the top-ranked candidates are run for real, and its
// predicted wall time must be within a factor-of-two band of the
// measurement.
func TestExplainMatchesMeasuredOnLatencyDisks(t *testing.T) {
	if testing.Short() {
		t.Skip("latency-modeled regimes sleep for real milliseconds")
	}
	regimes := []explainRegime{
		{name: "in-memory/4ms", mem: 1024, n: 768, latency: 4 * time.Millisecond,
			wantAlg: MemOnePass, wantName: "one"},
		{name: "two-pass/2ms", mem: 1024, n: 2048, latency: 2 * time.Millisecond,
			wantAlg: TwoPassExpected, wantName: "exp2"},
		{name: "records/2ms", mem: 1024, n: 1024, payload: 16, latency: 2 * time.Millisecond,
			wantAlg: MemOnePass, wantName: "one"},
	}
	for _, rg := range regimes {
		t.Run(rg.name, func(t *testing.T) {
			machineFor := func() *Machine {
				m, err := NewMachine(MachineConfig{
					Memory:       rg.mem,
					Dir:          t.TempDir(),
					BlockLatency: rg.latency,
				})
				if err != nil {
					t.Fatal(err)
				}
				return m
			}
			m := machineFor()
			defer m.Close()
			report, err := m.Explain(SortSpec{N: rg.n, PayloadBytes: rg.payload})
			if err != nil {
				t.Fatal(err)
			}
			if report.Chosen != rg.wantName || report.ChosenAlgorithm != rg.wantAlg {
				t.Fatalf("chosen = %q (%v), want %q", report.Chosen, report.ChosenAlgorithm, rg.wantName)
			}

			// Run the chosen candidate and the next-ranked candidates with
			// strictly costlier predictions; chosen must measure fastest.
			run := func(alg Algorithm) time.Duration {
				mm := machineFor()
				defer mm.Close()
				keys := workload.Perm(rg.n, 11)
				t0 := time.Now()
				if rg.payload > 0 {
					payloads := (&PayloadSpec{MinBytes: rg.payload, MaxBytes: rg.payload}).Materialize(rg.n, 3)
					_, err = mm.SortRecords(keys, payloads, alg)
				} else {
					_, err = mm.Sort(keys, alg)
				}
				if err != nil {
					t.Fatalf("%v: %v", alg, err)
				}
				return time.Since(t0)
			}
			chosenCand := report.Candidate(report.Chosen)
			chosenWall := run(rg.wantAlg)
			rivals := 0
			for _, c := range report.Candidates {
				if !c.Feasible || c.Algorithm == report.Chosen || rivals == 2 {
					continue
				}
				// Skip analytic ties (e.g. mesh3 vs lmm3): they are
				// interchangeable by construction and measure equal.
				if c.IOWords == chosenCand.IOWords {
					continue
				}
				alg, err := ParseAlgorithm(c.Algorithm)
				if err != nil {
					continue // the radix row has no comparison entry point
				}
				rivals++
				if rivalWall := run(alg); rivalWall <= chosenWall {
					t.Errorf("rival %s measured %v, chosen %s measured %v — chosen is not fastest",
						c.Algorithm, rivalWall, report.Chosen, chosenWall)
				}
			}
			if rivals == 0 {
				t.Fatal("no distinct-cost rival measured; regime too degenerate to prove the choice")
			}

			// Prediction-error bound: the calibrated wall prediction must
			// land within [measured/2, measured*2] — sleep-dominated I/O is
			// the dominant, modeled term.
			if chosenCand.Seconds < chosenWall.Seconds()/2 || chosenCand.Seconds > 2*chosenWall.Seconds() {
				t.Errorf("predicted %.3fs vs measured %.3fs: outside the factor-2 band",
					chosenCand.Seconds, chosenWall.Seconds())
			}
		})
	}
}

// TestExplainChosenMatchesAutoRun pins the dry-run contract: whatever the
// calibrated ranking prefers, Explain's Chosen must name the algorithm
// Sort(keys, Auto) actually runs on the same machine.  The (M=4096,
// N=3M, 2ms file latency) point is a known margin case where the
// calibrated table ranks lmm3 above exp2 while Auto's fixed-calibration
// choice is exp2 — the report must side with reality.
func TestExplainChosenMatchesAutoRun(t *testing.T) {
	mem := 4096
	m, err := NewMachine(MachineConfig{
		Memory:       mem,
		Dir:          t.TempDir(),
		BlockLatency: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	for _, n := range []int{512, 3 * mem, 5 * mem, 20 * mem} {
		rep, err := m.Explain(SortSpec{N: n})
		if err != nil {
			t.Fatal(err)
		}
		if got := m.Plan(n); rep.ChosenAlgorithm != got {
			t.Errorf("N=%d: Explain chose %v but Auto runs %v", n, rep.ChosenAlgorithm, got)
		}
		if c := rep.Candidate(rep.Chosen); c == nil || !c.Feasible {
			t.Errorf("N=%d: chosen %q not a feasible candidate in the table", n, rep.Chosen)
		}
	}
}
