package repro

import (
	"context"
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/memsort"
	"repro/internal/sched"
	"repro/internal/workload"
)

// Scheduler sentinel errors, re-exported from the engine so service
// callers can classify rejections without reaching into internal/.
var (
	// ErrQueueFull is Submit's backpressure signal.
	ErrQueueFull = sched.ErrQueueFull
	// ErrSchedulerClosed is returned by Submit after Close.
	ErrSchedulerClosed = sched.ErrClosed
	// ErrJobTooLarge marks a job whose envelope can never fit the budget.
	ErrJobTooLarge = sched.ErrTooLarge
)

// SchedulerConfig sizes a Scheduler: the global budgets every concurrent
// sort job is admitted against, and the per-job defaults.
type SchedulerConfig struct {
	// Memory is the global internal-memory budget in keys.  Every running
	// job's whole arena capacity (its machine's M times the slack, plus
	// staging) is carved from this ledger, so the sum over concurrent jobs
	// never exceeds it.  Required.
	Memory int
	// DiskBudget is the global scratch budget in keys; zero selects
	// 64·Memory.
	DiskBudget int
	// Workers is the global compute budget: one par limiter shared by
	// every job's worker pool.  Zero selects GOMAXPROCS.
	Workers int
	// JobMemory is the default per-job internal memory M in keys (a
	// perfect square); zero selects 4096.  A JobSpec may override it.
	JobMemory int
	// Dir, when non-empty, backs each job's disks with real files under
	// Dir/job-NNNN (created at admission, removed when the job finishes);
	// otherwise jobs run on in-memory disks.
	Dir string
	// MaxQueue bounds the admission queue; zero selects 1024.
	MaxQueue int
	// Alpha is the confidence parameter passed to each job's machine.
	Alpha float64
	// Pipeline is the default per-job streaming depth.
	Pipeline PipelineConfig
}

// WorkloadSpec asks the service to generate a job's input instead of
// shipping keys inline, naming a generator from the workload suite.
type WorkloadSpec struct {
	// Kind selects the distribution: "perm" (random permutation),
	// "uniform", "zipf" (skewed duplicates over a scattered hot-key set),
	// "sortedruns" (concatenation of pre-sorted runs), "sorted",
	// "reverse", "nearlysorted", "fewdistinct", or "organ".
	Kind string `json:"kind"`
	// N is the number of keys.
	N int `json:"n"`
	// Seed makes the input reproducible.
	Seed int64 `json:"seed"`
	// S is the Zipf exponent for "zipf" (0 selects 1.2).
	S float64 `json:"s,omitempty"`
	// Distinct bounds the distinct values for "zipf" and "fewdistinct"
	// (0 selects N/16+1).
	Distinct int `json:"distinct,omitempty"`
	// RunLen is the presorted-run length for "sortedruns" and the window
	// for "nearlysorted" (0 selects √N, min 2).
	RunLen int `json:"runlen,omitempty"`
}

// Generate materializes the described input.
func (w *WorkloadSpec) Generate() ([]int64, error) {
	if w.N <= 0 {
		return nil, fmt.Errorf("repro: workload n = %d, want > 0", w.N)
	}
	distinct := w.Distinct
	if distinct <= 0 {
		distinct = w.N/16 + 1
	}
	runLen := w.RunLen
	if runLen <= 0 {
		runLen = memsort.Isqrt(w.N)
		if runLen < 2 {
			runLen = 2
		}
	}
	s := w.S
	if !(s > 1) {
		s = 1.2 // rand.NewZipf requires s > 1; clamp untrusted input
	}
	switch w.Kind {
	case "perm", "":
		return workload.Perm(w.N, w.Seed), nil
	case "uniform":
		return workload.Uniform(w.N, -1<<40, 1<<40, w.Seed), nil
	case "zipf":
		return workload.ZipfSkewed(w.N, s, distinct, w.Seed), nil
	case "sortedruns":
		return workload.SortedRuns(w.N, runLen, w.Seed), nil
	case "sorted":
		return workload.Sorted(w.N), nil
	case "reverse":
		return workload.ReverseSorted(w.N), nil
	case "nearlysorted":
		return workload.NearlySorted(w.N, runLen, w.Seed), nil
	case "fewdistinct":
		return workload.FewDistinct(w.N, distinct, w.Seed), nil
	case "organ":
		return workload.Organ(w.N), nil
	default:
		return nil, fmt.Errorf("repro: unknown workload kind %q", w.Kind)
	}
}

// JobSpec describes one sort job.
type JobSpec struct {
	// Keys is the inline input.  The scheduler takes ownership and sorts
	// it in place (no private copy), so callers must not touch the slice
	// until the job finishes.  Exactly one of Keys and Workload is set.
	Keys []int64 `json:"keys,omitempty"`
	// Workload generates the input server-side.
	Workload *WorkloadSpec `json:"workload,omitempty"`
	// Algorithm selects the paper algorithm (Auto plans from N).  Ignored
	// when Universe is set.
	Algorithm Algorithm `json:"-"`
	// Universe, when positive, sorts with the Section 7 RadixSort over
	// [0, Universe) instead of a comparison algorithm.
	Universe int64 `json:"universe,omitempty"`
	// Memory and Disks give the job its machine geometry (0 = scheduler
	// defaults).
	Memory int `json:"memory,omitempty"`
	Disks  int `json:"disks,omitempty"`
	// Workers is the job's fan-out width (0 = the scheduler's Workers);
	// execution is arbitrated by the shared limiter either way.
	Workers int `json:"workers,omitempty"`
	// Pipeline overrides the scheduler's default streaming depth.
	Pipeline *PipelineConfig `json:"pipeline,omitempty"`
	// BlockLatency models per-block device latency on the job's disks.
	BlockLatency time.Duration `json:"-"`
	// KeepKeys retains the sorted output for SortedKeys until the
	// scheduler is closed.
	KeepKeys bool `json:"keepKeys,omitempty"`
	// Label tags the job in status reports.
	Label string `json:"label,omitempty"`
}

// JobState is a job's lifecycle position as the service reports it.
type JobState string

// The job states.
const (
	JobQueued   JobState = "queued"
	JobRunning  JobState = "running"
	JobDone     JobState = "done"
	JobFailed   JobState = "failed"
	JobCanceled JobState = "canceled"
)

// JobStatus is a point-in-time snapshot of one job.
type JobStatus struct {
	ID        int      `json:"id"`
	Label     string   `json:"label,omitempty"`
	State     JobState `json:"state"`
	Algorithm string   `json:"algorithm"`
	N         int      `json:"n"`
	Error     string   `json:"error,omitempty"`

	Submitted time.Time `json:"submitted"`
	Started   time.Time `json:"started,omitzero"`
	Finished  time.Time `json:"finished,omitzero"`

	// Report is the final sorting report (Done jobs only).
	Report *Report `json:"report,omitempty"`

	// MemReserved and DiskReserved are the admitted envelope;
	// DiskFootprint is the high-water scratch the job actually touched,
	// and ArenaLeak the job machine's arena in-use count at exit — always
	// zero, including for canceled jobs, or the envelope accounting is
	// broken.
	MemReserved   int `json:"memReserved"`
	DiskReserved  int `json:"diskReserved"`
	DiskFootprint int `json:"diskFootprint,omitempty"`
	ArenaLeak     int `json:"arenaLeak,omitempty"`
}

// SchedStats aggregates the scheduler's state and the finished jobs'
// reports for the service's stats and metrics endpoints.
type SchedStats struct {
	sched.Stats

	// UptimeSeconds is the scheduler's age; JobsPerSecond is Completed
	// over uptime.
	UptimeSeconds float64 `json:"uptimeSeconds"`
	JobsPerSecond float64 `json:"jobsPerSecond"`

	// KeysSorted sums N over completed jobs; PassesWeighted is the
	// padded-N-weighted average pass count.
	KeysSorted     int64   `json:"keysSorted"`
	PassesWeighted float64 `json:"passesWeighted"`

	// Aggregated pipeline and compute observability over completed jobs.
	PrefetchHits      int64   `json:"prefetchHits"`
	PrefetchStalls    int64   `json:"prefetchStalls"`
	WriteStalls       int64   `json:"writeStalls"`
	ComputeSeconds    float64 `json:"computeSeconds"`
	WorkerUtilization float64 `json:"workerUtilization"`
}

// Scheduler runs many sort jobs concurrently against shared machine
// budgets: each admitted job gets its own Machine whose arena capacity is
// reserved on the global memory ledger, whose disks live in a per-job
// scratch directory (when file-backed), and whose worker pool shares the
// global compute limiter.  Admission is FIFO with backpressure; see
// internal/sched for the engine.
type Scheduler struct {
	cfg SchedulerConfig
	eng *sched.Scheduler
	t0  time.Time

	mu   sync.Mutex
	jobs map[int]*schedJob
	agg  aggregate
}

// aggregate accumulates completed-job report sums under Scheduler.mu.
type aggregate struct {
	keysSorted     int64
	passesDotN     float64 // Σ passes·paddedN
	paddedN        int64
	prefetchHits   int64
	prefetchStalls int64
	writeStalls    int64
	computeNanos   int64
	busyNanos      int64
	wallNanos      int64
}

// schedJob pairs the engine handle with the facade-side result state.
type schedJob struct {
	spec   JobSpec
	alg    Algorithm
	n      int
	handle *sched.Job

	mu        sync.Mutex
	report    *Report
	keys      []int64
	footprint int
	arenaLeak int
}

// NewScheduler starts a Scheduler.
func NewScheduler(cfg SchedulerConfig) (*Scheduler, error) {
	if cfg.JobMemory == 0 {
		cfg.JobMemory = 4096
	}
	if b := memsort.Isqrt(cfg.JobMemory); b*b != cfg.JobMemory {
		return nil, fmt.Errorf("repro: JobMemory = %d is not a perfect square", cfg.JobMemory)
	}
	eng, err := sched.New(sched.Config{
		MemKeys:  cfg.Memory,
		DiskKeys: cfg.DiskBudget,
		Workers:  cfg.Workers,
		Dir:      cfg.Dir,
		MaxQueue: cfg.MaxQueue,
	})
	if err != nil {
		return nil, err
	}
	return &Scheduler{cfg: cfg, eng: eng, t0: time.Now(), jobs: make(map[int]*schedJob)}, nil
}

// Submit enqueues a job and returns its id.  The job's memory envelope is
// its machine's whole arena capacity and its disk envelope a multiple of
// the padded input; admission waits (FIFO) until both fit the global
// budgets.  Backpressure surfaces as sched.ErrQueueFull.
func (s *Scheduler) Submit(spec JobSpec) (int, error) {
	n := len(spec.Keys)
	if spec.Workload != nil {
		if n > 0 {
			return 0, fmt.Errorf("repro: JobSpec has both inline keys and a workload")
		}
		if _, err := (&WorkloadSpec{Kind: spec.Workload.Kind, N: 1}).Generate(); err != nil {
			return 0, err // unknown kind, reported at submit time
		}
		n = spec.Workload.N
	}
	if n <= 0 {
		return 0, fmt.Errorf("repro: empty job (no keys, no workload)")
	}
	mc := MachineConfig{
		Memory:       spec.Memory,
		Disks:        spec.Disks,
		Alpha:        s.cfg.Alpha,
		Workers:      spec.Workers,
		Pipeline:     s.cfg.Pipeline,
		BlockLatency: spec.BlockLatency,
	}
	if mc.Memory == 0 {
		mc.Memory = s.cfg.JobMemory
	}
	if spec.Pipeline != nil {
		mc.Pipeline = *spec.Pipeline
	}
	pcfg, alpha, err := resolveConfig(mc)
	if err != nil {
		return 0, err
	}
	if spec.Universe < 0 {
		return 0, fmt.Errorf("repro: universe %d, want > 0", spec.Universe)
	}
	alg := spec.Algorithm
	var padded int
	if spec.Universe > 0 {
		if spec.Universe > math.MaxInt64-1 {
			return 0, fmt.Errorf("repro: universe %d out of range", spec.Universe)
		}
		padded = memsort.CeilDiv(n, pcfg.B) * pcfg.B
	} else {
		if alg == Auto {
			alg = planFor(pcfg.Mem, alpha, n)
		}
		padded, err = padForSize(pcfg.Mem, alg, n)
		if err != nil {
			return 0, err
		}
	}
	j := &schedJob{spec: spec, alg: alg, n: n}
	handle, err := s.eng.Submit(sched.Request{
		Label:    spec.Label,
		MemKeys:  pcfg.ArenaCapacity(),
		DiskKeys: diskEnvelope(alg, spec.Universe > 0, padded, pcfg.D*pcfg.B),
		Run: func(ctx context.Context, env sched.Env) error {
			return s.runJob(ctx, env, j, mc)
		},
	})
	if err != nil {
		return 0, err
	}
	j.handle = handle
	s.mu.Lock()
	s.jobs[handle.ID()] = j
	s.mu.Unlock()
	return handle.ID(), nil
}

// diskEnvelope sizes a job's scratch reservation.  The three-pass family
// keeps at most the input, one generation of runs, one of merged
// sequences, and the output alive at once (measured high-water ≤ 4×
// padded); the superrun-recursive family — the seven-pass variants, the
// expected six-pass, and the expected three-pass with its deterministic
// fallback — peaks at 7× padded.  One extra padded length of headroom on
// top of each measured peak, plus a stripe of allocator slack, makes the
// reservation a true bound: the high-water DiskFootprint in JobStatus is
// checked against it in the scheduler tests.
func diskEnvelope(alg Algorithm, radix bool, padded, stripe int) int {
	mult := 6
	if !radix {
		switch alg {
		case SevenPass, SevenPassMesh, SixPassExpected, ThreePassExpected:
			mult = 8
		}
	}
	return mult*padded + 2*stripe
}

// runJob is the job body executed by the engine once admitted.
func (s *Scheduler) runJob(ctx context.Context, env sched.Env, j *schedJob, mc MachineConfig) error {
	keys := j.spec.Keys
	if j.spec.Workload != nil {
		var err error
		keys, err = j.spec.Workload.Generate()
		if err != nil {
			return err
		}
	}
	mc.Dir = env.Dir
	if mc.Workers == 0 {
		mc.Workers = env.Workers
	}
	m, err := newMachine(mc, env.Limiter)
	if err != nil {
		return err
	}
	defer m.Close()
	var rep *Report
	if j.spec.Universe > 0 {
		rep, err = m.SortIntsContext(ctx, keys, j.spec.Universe)
	} else {
		rep, err = m.SortContext(ctx, keys, j.alg)
	}
	foot := m.Array().DiskFootprint()
	leak := m.Array().Arena().InUse()
	j.mu.Lock()
	j.footprint = foot
	j.arenaLeak = leak
	if err == nil {
		j.report = rep
		if j.spec.KeepKeys {
			j.keys = keys
		}
	}
	j.mu.Unlock()
	if err != nil {
		return err
	}
	if leak != 0 {
		return fmt.Errorf("repro: job %d leaked %d arena keys", env.JobID, leak)
	}
	s.mu.Lock()
	s.agg.keysSorted += int64(rep.N)
	s.agg.passesDotN += rep.Passes * float64(rep.PaddedN)
	s.agg.paddedN += int64(rep.PaddedN)
	s.agg.prefetchHits += rep.PrefetchHits
	s.agg.prefetchStalls += rep.PrefetchStalls
	s.agg.writeStalls += rep.WriteStalls
	s.agg.computeNanos += int64(rep.ComputeSeconds * 1e9)
	s.agg.wallNanos += rep.IO.ComputeWallNanos
	s.agg.busyNanos += rep.IO.ComputeBusyNanos
	s.mu.Unlock()
	return nil
}

// Status returns a snapshot of the job with the given id.
func (s *Scheduler) Status(id int) (JobStatus, bool) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return JobStatus{}, false
	}
	return s.statusOf(j), true
}

// Jobs returns a snapshot of every job in submission order.
func (s *Scheduler) Jobs() []JobStatus {
	s.mu.Lock()
	handles := make([]*schedJob, 0, len(s.jobs))
	for _, h := range s.eng.Jobs() {
		if j, ok := s.jobs[h.ID()]; ok {
			handles = append(handles, j)
		}
	}
	s.mu.Unlock()
	out := make([]JobStatus, len(handles))
	for i, j := range handles {
		out[i] = s.statusOf(j)
	}
	return out
}

func (s *Scheduler) statusOf(j *schedJob) JobStatus {
	h := j.handle
	submitted, started, finished := h.Times()
	st := JobStatus{
		ID:           h.ID(),
		Label:        h.Label(),
		N:            j.n,
		Submitted:    submitted,
		Started:      started,
		Finished:     finished,
		MemReserved:  h.MemKeys(),
		DiskReserved: h.DiskKeys(),
	}
	if j.spec.Universe > 0 {
		st.Algorithm = "RadixSort"
	} else {
		st.Algorithm = j.alg.String()
	}
	switch h.State() {
	case sched.Queued:
		st.State = JobQueued
	case sched.Running:
		st.State = JobRunning
	case sched.Done:
		st.State = JobDone
	case sched.Failed:
		st.State = JobFailed
	case sched.Canceled:
		st.State = JobCanceled
	}
	if err := h.Err(); err != nil {
		st.Error = err.Error()
	}
	j.mu.Lock()
	st.Report = j.report
	st.DiskFootprint = j.footprint
	st.ArenaLeak = j.arenaLeak
	j.mu.Unlock()
	return st
}

// Cancel cancels the job, reporting whether id exists.  A queued job is
// dropped without ever holding resources; a running one aborts at its
// next I/O or cleanup chunk and releases its whole envelope.
func (s *Scheduler) Cancel(id int) bool {
	return s.eng.Cancel(id)
}

// Wait blocks until the job finishes (or ctx is canceled) and returns its
// final status.
func (s *Scheduler) Wait(ctx context.Context, id int) (JobStatus, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return JobStatus{}, fmt.Errorf("repro: unknown job %d", id)
	}
	if err := j.handle.Wait(ctx); err != nil && ctx.Err() != nil {
		return JobStatus{}, err
	}
	return s.statusOf(j), nil
}

// SortedKeys returns the retained sorted output of a completed job
// submitted with KeepKeys.
func (s *Scheduler) SortedKeys(id int) ([]int64, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("repro: unknown job %d", id)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.report == nil {
		return nil, fmt.Errorf("repro: job %d has no result (state %s)", id, j.handle.State())
	}
	if j.keys == nil {
		return nil, fmt.Errorf("repro: job %d was not submitted with KeepKeys", id)
	}
	return j.keys, nil
}

// Stats returns the aggregate scheduler statistics.
func (s *Scheduler) Stats() SchedStats {
	up := time.Since(s.t0).Seconds()
	st := SchedStats{Stats: s.eng.Stats(), UptimeSeconds: up}
	s.mu.Lock()
	agg := s.agg
	s.mu.Unlock()
	if up > 0 {
		st.JobsPerSecond = float64(st.Completed) / up
	}
	st.KeysSorted = agg.keysSorted
	if agg.paddedN > 0 {
		st.PassesWeighted = agg.passesDotN / float64(agg.paddedN)
	}
	st.PrefetchHits = agg.prefetchHits
	st.PrefetchStalls = agg.prefetchStalls
	st.WriteStalls = agg.writeStalls
	st.ComputeSeconds = float64(agg.computeNanos) / 1e9
	if agg.wallNanos > 0 && st.Workers > 0 {
		u := float64(agg.busyNanos) / (float64(agg.wallNanos) * float64(st.Workers))
		if u > 1 {
			u = 1
		}
		st.WorkerUtilization = u
	} else {
		st.WorkerUtilization = 1
	}
	return st
}

// Close stops admission, cancels every remaining job, and waits for the
// running ones to drain.
func (s *Scheduler) Close() {
	s.eng.Close()
}
