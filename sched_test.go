package repro

import (
	"context"
	"slices"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/workload"
)

// The scheduler must be invisible to every job's result: a job running
// among many others — sharing one worker limiter, one memory ledger, one
// disk budget — produces output, pass counts, and I/O statistics
// bit-identical to the same job run alone on a dedicated Machine.  (The
// scheduling-dependent observability counters are excluded, exactly as in
// determinism_test.go.)  These tests run under -race in CI.

const schedJobMem = 1024

// schedCase is one job: an algorithm (or radix universe) plus an input.
type schedCase struct {
	name     string
	alg      Algorithm
	universe int64
	keys     []int64
}

func schedCases() []schedCase {
	const m = schedJobMem
	return []schedCase{
		{name: "mesh3/perm", alg: ThreePassMesh, keys: workload.Perm(16*m, 1)},
		{name: "lmm3/uniform", alg: ThreePassLMM, keys: workload.Uniform(32*m-257, -1<<40, 1<<40, 2)},
		{name: "exp2/sortedruns", alg: TwoPassExpected, keys: workload.SortedRuns(8*m, 512, 3)},
		{name: "exp3/zipf", alg: ThreePassExpected, keys: workload.ZipfSkewed(16*m, 1.3, 700, 4)},
		{name: "seven/perm", alg: SevenPass, keys: workload.Perm(16*m-100, 5)},
		{name: "six/uniform", alg: SixPassExpected, keys: workload.Uniform(16*m, -1<<30, 1<<30, 6)},
		{name: "mesh2e/sortedruns", alg: TwoPassMeshExpected, keys: workload.SortedRuns(8*m, 256, 7)},
		{name: "sevenmesh/zipf", alg: SevenPassMesh, keys: workload.ZipfSkewed(16*m, 1.5, 4000, 8)},
		{name: "auto/nearlysorted", alg: Auto, keys: workload.NearlySorted(16*m, 64, 9)},
		{name: "radix/uniform", universe: 1 << 20, keys: workload.Uniform(9000, 0, (1<<20)-1, 10)},
	}
}

// soloRun sorts a private copy of the case on a dedicated machine with the
// same geometry the scheduler gives its jobs.
func soloRun(t *testing.T, tc schedCase) ([]int64, *Report) {
	t.Helper()
	m, err := NewMachine(MachineConfig{
		Memory:   schedJobMem,
		Pipeline: PipelineConfig{Prefetch: 2, WriteBehind: 2},
		Workers:  4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	keys := append([]int64(nil), tc.keys...)
	var rep *Report
	if tc.universe > 0 {
		rep, err = m.SortInts(keys, tc.universe)
	} else {
		rep, err = m.Sort(keys, tc.alg)
	}
	if err != nil {
		t.Fatalf("%s solo: %v", tc.name, err)
	}
	return keys, rep
}

// TestSchedulerBitIdenticalConcurrent drives all ten mixed jobs through
// one scheduler concurrently — the memory budget admits only a few at a
// time, so the run exercises queueing, shared-limiter compute, and
// concurrent per-job arenas — and demands bit-identical results.
func TestSchedulerBitIdenticalConcurrent(t *testing.T) {
	cases := schedCases()
	solo := make(map[string]struct {
		keys []int64
		rep  *Report
	}, len(cases))
	for _, tc := range cases {
		keys, rep := soloRun(t, tc)
		solo[tc.name] = struct {
			keys []int64
			rep  *Report
		}{keys, rep}
	}

	s, err := NewScheduler(SchedulerConfig{
		Memory:    11000, // roughly three job envelopes: real contention
		Workers:   4,
		JobMemory: schedJobMem,
		Pipeline:  PipelineConfig{Prefetch: 2, WriteBehind: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	ids := make(map[string]int, len(cases))
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, tc := range cases {
		tc := tc
		wg.Add(1)
		go func() {
			defer wg.Done()
			id, err := s.Submit(JobSpec{
				Keys:      append([]int64(nil), tc.keys...),
				Algorithm: tc.alg,
				Universe:  tc.universe,
				KeepKeys:  true,
				Label:     tc.name,
			})
			if err != nil {
				t.Errorf("%s: submit: %v", tc.name, err)
				return
			}
			mu.Lock()
			ids[tc.name] = id
			mu.Unlock()
		}()
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	for _, tc := range cases {
		id := ids[tc.name]
		st, err := s.Wait(context.Background(), id)
		if err != nil {
			t.Fatalf("%s: wait: %v", tc.name, err)
		}
		if st.State != JobDone {
			t.Fatalf("%s: state %s, error %q", tc.name, st.State, st.Error)
		}
		want := solo[tc.name]
		got, err := s.SortedKeys(id)
		if err != nil {
			t.Fatalf("%s: keys: %v", tc.name, err)
		}
		if !slices.Equal(got, want.keys) {
			t.Errorf("%s: scheduled output differs from the dedicated machine", tc.name)
		}
		rep := st.Report
		if rep == nil {
			t.Fatalf("%s: no report", tc.name)
		}
		if rep.Passes != want.rep.Passes ||
			rep.ReadPasses != want.rep.ReadPasses ||
			rep.WritePasses != want.rep.WritePasses ||
			rep.FellBack != want.rep.FellBack ||
			rep.PaddedN != want.rep.PaddedN ||
			rep.Algorithm != want.rep.Algorithm {
			t.Errorf("%s: report differs: scheduled %+v, solo %+v", tc.name, rep, want.rep)
		}
		if normalizeStats(rep.IO) != normalizeStats(want.rep.IO) {
			t.Errorf("%s: I/O stats differ:\nscheduled %+v\nsolo      %+v",
				tc.name, normalizeStats(rep.IO), normalizeStats(want.rep.IO))
		}
		if st.ArenaLeak != 0 {
			t.Errorf("%s: job leaked %d arena keys", tc.name, st.ArenaLeak)
		}
		if st.DiskFootprint > st.DiskReserved {
			t.Errorf("%s: disk footprint %d exceeds the admitted envelope %d",
				tc.name, st.DiskFootprint, st.DiskReserved)
		}
	}
	if st := s.Stats(); st.MemInUse != 0 || st.DiskInUse != 0 || st.Completed != len(cases) {
		t.Fatalf("scheduler stats after drain: %+v", st)
	}
}

// TestSchedulerCancelReleasesEnvelope cancels a running latency-slowed job
// and checks that it aborts promptly, drains its arena, and releases its
// whole envelope so the queued job behind it runs.
func TestSchedulerCancelReleasesEnvelope(t *testing.T) {
	s, err := NewScheduler(SchedulerConfig{
		Memory:    4000, // one job envelope: the second job must queue
		Workers:   2,
		JobMemory: schedJobMem,
		Pipeline:  PipelineConfig{Prefetch: 2, WriteBehind: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	slow, err := s.Submit(JobSpec{
		Workload:     &WorkloadSpec{Kind: "perm", N: 16 * schedJobMem, Seed: 1},
		Algorithm:    ThreePassLMM,
		BlockLatency: 500 * time.Microsecond,
		Label:        "slow",
	})
	if err != nil {
		t.Fatal(err)
	}
	queued, err := s.Submit(JobSpec{
		Workload:  &WorkloadSpec{Kind: "sortedruns", N: 8 * schedJobMem, Seed: 2},
		Algorithm: TwoPassExpected,
		KeepKeys:  true,
		Label:     "queued",
	})
	if err != nil {
		t.Fatal(err)
	}

	// Wait until the slow job is actually running, then cancel it.
	deadline := time.Now().Add(10 * time.Second)
	for {
		st, ok := s.Status(slow)
		if !ok {
			t.Fatal("slow job vanished")
		}
		if st.State == JobRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("slow job stuck in %s", st.State)
		}
		time.Sleep(time.Millisecond)
	}
	canceledAt := time.Now()
	if !s.Cancel(slow) {
		t.Fatal("cancel did not find the job")
	}
	st, err := s.Wait(context.Background(), slow)
	if err != nil {
		t.Fatal(err)
	}
	if waited := time.Since(canceledAt); waited > 5*time.Second {
		t.Fatalf("cancellation took %v", waited)
	}
	if st.State != JobCanceled {
		t.Fatalf("canceled job state = %s (error %q)", st.State, st.Error)
	}
	if !strings.Contains(st.Error, "canceled") {
		t.Fatalf("canceled job error = %q", st.Error)
	}
	if st.ArenaLeak != 0 {
		t.Fatalf("canceled job left %d keys in its arena", st.ArenaLeak)
	}

	// The queued job must now be admitted and complete correctly.
	qst, err := s.Wait(context.Background(), queued)
	if err != nil {
		t.Fatal(err)
	}
	if qst.State != JobDone {
		t.Fatalf("queued job state = %s, error %q", qst.State, qst.Error)
	}
	keys, err := s.SortedKeys(queued)
	if err != nil {
		t.Fatal(err)
	}
	if !slices.IsSorted(keys) {
		t.Fatal("queued job output not sorted")
	}
	if stats := s.Stats(); stats.MemInUse != 0 || stats.DiskInUse != 0 ||
		stats.Canceled != 1 || stats.Completed != 1 {
		t.Fatalf("scheduler stats after cancel: %+v", stats)
	}
}

// TestSchedulerThroughputMixed is the service-realistic storm: a batch of
// workload-generated jobs (Zipf hot-key skew and pre-sorted runs among
// them) across algorithms, squeezed through a small budget so most of the
// batch queues.  Every output must come back sorted with the advertised
// pass count, and the aggregate stats must balance.
func TestSchedulerThroughputMixed(t *testing.T) {
	s, err := NewScheduler(SchedulerConfig{
		Memory:    8000, // two envelopes
		Workers:   4,
		JobMemory: schedJobMem,
		Pipeline:  PipelineConfig{Prefetch: 2, WriteBehind: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	specs := []JobSpec{
		{Workload: &WorkloadSpec{Kind: "zipf", N: 16 * schedJobMem, Seed: 1, S: 1.2, Distinct: 900}, Algorithm: ThreePassLMM},
		{Workload: &WorkloadSpec{Kind: "sortedruns", N: 16 * schedJobMem, Seed: 2, RunLen: 1024}, Algorithm: ThreePassMesh},
		{Workload: &WorkloadSpec{Kind: "zipf", N: 8 * schedJobMem, Seed: 3, S: 2.0}, Algorithm: TwoPassExpected},
		{Workload: &WorkloadSpec{Kind: "sortedruns", N: 16 * schedJobMem, Seed: 4}, Algorithm: SevenPass},
		{Workload: &WorkloadSpec{Kind: "uniform", N: 16 * schedJobMem, Seed: 5}, Algorithm: SixPassExpected},
		{Workload: &WorkloadSpec{Kind: "perm", N: 16 * schedJobMem, Seed: 6}, Algorithm: Auto},
		{Workload: &WorkloadSpec{Kind: "organ", N: 8 * schedJobMem, Seed: 7}, Algorithm: TwoPassMeshExpected},
		{Workload: &WorkloadSpec{Kind: "fewdistinct", N: 16 * schedJobMem, Seed: 8, Distinct: 40}, Algorithm: ThreePassExpected},
	}
	// The three-pass family has exact bounds; the superrun-recursive
	// family costs more than its headline bound at these small N/M ratios
	// (SevenPass measures 10 and ExpectedSixPass 9 passes at N = 16M) and
	// the expected-pass algorithms may detect cleanup overflow on these
	// structured inputs and fall back, paying their partial attempt plus
	// the deterministic pass count — deterministically in either case.
	maxPasses := []float64{3, 3, 6, 10, 9, 3, 6, 14}
	ids := make([]int, len(specs))
	for i, spec := range specs {
		spec.KeepKeys = true
		id, err := s.Submit(spec)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		ids[i] = id
	}
	var keysSorted int64
	for i, id := range ids {
		st, err := s.Wait(context.Background(), id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State != JobDone {
			t.Fatalf("job %d state = %s, error %q", i, st.State, st.Error)
		}
		keys, err := s.SortedKeys(id)
		if err != nil {
			t.Fatal(err)
		}
		if !slices.IsSorted(keys) || len(keys) != specs[i].Workload.N {
			t.Fatalf("job %d output wrong (%d keys)", i, len(keys))
		}
		if st.Report.Passes > maxPasses[i]+1e-9 {
			t.Fatalf("job %d took %.3f passes, bound %v", i, st.Report.Passes, maxPasses[i])
		}
		if st.DiskFootprint > st.DiskReserved {
			t.Fatalf("job %d disk footprint %d > envelope %d", i, st.DiskFootprint, st.DiskReserved)
		}
		keysSorted += int64(st.N)
	}
	stats := s.Stats()
	if stats.Completed != len(specs) || stats.KeysSorted != keysSorted {
		t.Fatalf("aggregate stats: %+v (want %d jobs, %d keys)", stats, len(specs), keysSorted)
	}
	if stats.JobsPerSecond <= 0 || stats.PassesWeighted <= 0 {
		t.Fatalf("throughput stats empty: %+v", stats)
	}
	if stats.MemInUse != 0 || stats.DiskInUse != 0 {
		t.Fatalf("budgets not drained: %+v", stats)
	}
}

func TestSchedulerSubmitValidation(t *testing.T) {
	s, err := NewScheduler(SchedulerConfig{Memory: 8000})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Submit(JobSpec{}); err == nil {
		t.Fatal("empty job accepted")
	}
	if _, err := s.Submit(JobSpec{Keys: []int64{1}, Workload: &WorkloadSpec{Kind: "perm", N: 4}}); err == nil {
		t.Fatal("keys+workload accepted")
	}
	if _, err := s.Submit(JobSpec{Workload: &WorkloadSpec{Kind: "bogus", N: 4}}); err == nil {
		t.Fatal("unknown workload kind accepted")
	}
	if _, err := s.Submit(JobSpec{Keys: []int64{1, 2}, Memory: 1000}); err == nil {
		t.Fatal("non-square job memory accepted")
	}
	// A job whose envelope exceeds the whole budget is rejected at submit.
	if _, err := s.Submit(JobSpec{Keys: []int64{1, 2}, Memory: 4096}); err == nil {
		t.Fatal("oversized job accepted")
	}
	if _, err := NewScheduler(SchedulerConfig{Memory: 8000, JobMemory: 1000}); err == nil {
		t.Fatal("non-square JobMemory accepted")
	}
	if _, err := NewScheduler(SchedulerConfig{}); err == nil {
		t.Fatal("zero memory budget accepted")
	}
}
