package repro

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os/exec"
	"path/filepath"
	"slices"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/journal"
	"repro/internal/pdm"
)

// The daemon-level acceptance test for durable jobs: a real pdmd process
// is SIGKILLed in the middle of a multi-pass sort — after at least one
// pass checkpoint hit the journal — and a second pdmd over the same
// -journal and -scratch directories finishes the job with output and
// deterministic statistics bit-identical to an uninterrupted run, with
// the jobs queued behind it re-admitted in their original order.  The
// pdmctl verbs are smoke-tested against the restarted daemon.

// buildCmd compiles one of the repo's commands into dir and returns the
// binary path.
func buildCmd(t *testing.T, dir, name string) string {
	t.Helper()
	bin := filepath.Join(dir, name)
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build ./cmd/%s: %v\n%s", name, err, out)
	}
	return bin
}

// freeAddr grabs an ephemeral localhost port and releases it for the
// daemon to bind.
func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// startDaemon launches pdmd over the shared directories and waits until
// /healthz answers.  The returned process is still running; callers kill
// or terminate it themselves.
func startDaemon(t *testing.T, bin, addr, scratch, jdir string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(bin,
		"-addr", addr,
		"-mem", "4000",
		"-jobmem", "1024",
		"-workers", "2",
		"-scratch", scratch,
		"-journal", jdir,
	)
	cmd.Stdout = io.Discard
	cmd.Stderr = io.Discard
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.Process != nil {
			cmd.Process.Kill() //nolint:errcheck // already exited is fine
			cmd.Wait()         //nolint:errcheck // reaped on the happy path
		}
	})
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get("http://" + addr + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return cmd
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("pdmd on %s never became healthy", addr)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// submitJob posts one job and returns its id.
func submitJob(t *testing.T, addr string, body map[string]any) int {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post("http://"+addr+"/jobs", "application/json", strings.NewReader(string(raw)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d: %+v", resp.StatusCode, st)
	}
	return st.ID
}

// daemonStatus fetches one job's status from a live daemon.
func daemonStatus(t *testing.T, addr string, id int) JobStatus {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("http://%s/jobs/%d", addr, id))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /jobs/%d = %d", id, resp.StatusCode)
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// pollDone polls a job to the done state.
func pollDone(t *testing.T, addr string, id int) JobStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		st := daemonStatus(t, addr, id)
		switch st.State {
		case JobDone:
			return st
		case JobFailed, JobCanceled:
			t.Fatalf("job %d reached %s: %s", id, st.State, st.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %d stuck in %s", id, st.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// fetchKeys pages nothing: the whole sorted output in one request.
func fetchKeys(t *testing.T, addr string, id int) []int64 {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("http://%s/jobs/%d/keys", addr, id))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET keys = %d", resp.StatusCode)
	}
	var page struct {
		Keys []int64 `json:"keys"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&page); err != nil {
		t.Fatal(err)
	}
	return page.Keys
}

func TestPdmdKillRestartBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs daemon processes")
	}
	bindir := t.TempDir()
	pdmd := buildCmd(t, bindir, "pdmd")
	pdmctl := buildCmd(t, bindir, "pdmctl")
	scratch, jdir := t.TempDir(), t.TempDir()

	// Control: the interrupted job's spec, uninterrupted on a dedicated
	// machine with the daemon's job geometry.
	spec := JobSpec{
		Workload:     &WorkloadSpec{Kind: "perm", N: 16 * 1024, Seed: 31},
		Algorithm:    ThreePassLMM,
		BlockLatency: 2 * time.Millisecond,
	}
	ctrl, err := NewMachine(MachineConfig{
		Memory:       1024,
		Workers:      2,
		Pipeline:     PipelineConfig{Prefetch: 2, WriteBehind: 2},
		BlockLatency: spec.BlockLatency,
	})
	if err != nil {
		t.Fatal(err)
	}
	wantKeys, err := spec.Workload.Generate()
	if err != nil {
		t.Fatal(err)
	}
	wantRep, err := ctrl.Sort(wantKeys, spec.Algorithm)
	ctrl.Close()
	if err != nil {
		t.Fatal(err)
	}

	// Life 1: the slowed three-pass job plus two queued behind it (the
	// budget admits one envelope at a time).
	addr1 := freeAddr(t)
	d1 := startDaemon(t, pdmd, addr1, scratch, jdir)
	id1 := submitJob(t, addr1, map[string]any{
		"workload":       map[string]any{"kind": "perm", "n": 16 * 1024, "seed": 31},
		"alg":            "lmm3",
		"blockLatencyUs": 2000,
		"keepKeys":       true,
		"label":          "victim",
	})
	id2 := submitJob(t, addr1, map[string]any{
		"workload": map[string]any{"kind": "sortedruns", "n": 8 * 1024, "seed": 32},
		"alg":      "exp2",
		"keepKeys": true,
		"label":    "fifo-a",
	})
	id3 := submitJob(t, addr1, map[string]any{
		"workload": map[string]any{"kind": "uniform", "n": 16 * 1024, "seed": 33},
		"alg":      "mesh3",
		"keepKeys": true,
		"label":    "fifo-b",
	})

	// Wait until at least one completed pass is journaled, then SIGKILL:
	// no drain, no checkpoint flush — the crash case.
	deadline := time.Now().Add(30 * time.Second)
	for {
		recs, _, rerr := journal.Replay(jdir)
		passed := false
		if rerr == nil {
			for _, rec := range recs {
				var cp pdm.Checkpoint
				if rec.Type == journal.Checkpoint && rec.Job == id1 &&
					json.Unmarshal(rec.Data, &cp) == nil && cp.Pass >= 1 {
					passed = true
				}
			}
		}
		if passed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no pass checkpoint journaled before the kill")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := d1.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	d1.Wait() //nolint:errcheck // killed

	// Life 2: same directories, fresh port.  Everything must come back
	// and finish: the victim resumed from its checkpoint, the queued two
	// behind it in submission order.
	addr2 := freeAddr(t)
	d2 := startDaemon(t, pdmd, addr2, scratch, jdir)
	st1 := pollDone(t, addr2, id1)
	st2 := pollDone(t, addr2, id2)
	st3 := pollDone(t, addr2, id3)

	if st1.Recovery == nil || !st1.Recovery.WasRunning || st1.Recovery.ResumedFromPass < 1 {
		t.Fatalf("victim recovery = %+v, want resumed from a checkpointed pass", st1.Recovery)
	}
	if st2.Started.Before(st1.Started) || st3.Started.Before(st2.Started) {
		t.Fatalf("FIFO order violated across restart: started %v / %v / %v",
			st1.Started, st2.Started, st3.Started)
	}

	// Bit-identity against the uninterrupted control.
	rep := st1.Report
	if rep == nil {
		t.Fatal("victim has no report")
	}
	if rep.Passes != wantRep.Passes || rep.ReadPasses != wantRep.ReadPasses ||
		rep.WritePasses != wantRep.WritePasses || rep.PaddedN != wantRep.PaddedN ||
		rep.Algorithm != wantRep.Algorithm {
		t.Fatalf("resumed report differs:\ndaemon  %+v\ncontrol %+v", rep, wantRep)
	}
	if normalizeStats(rep.IO) != normalizeStats(wantRep.IO) {
		t.Fatalf("resumed I/O differs:\ndaemon  %+v\ncontrol %+v",
			normalizeStats(rep.IO), normalizeStats(wantRep.IO))
	}
	if got := fetchKeys(t, addr2, id1); !slices.Equal(got, wantKeys) {
		t.Fatal("resumed output differs from the uninterrupted control")
	}
	for _, id := range []int{id2, id3} {
		if keys := fetchKeys(t, addr2, id); !slices.IsSorted(keys) {
			t.Fatalf("recovered job %d output not sorted", id)
		}
	}

	// pdmctl smoke against the restarted daemon: the jobs table carries
	// the resume provenance, and status -watch exits on the done job.
	worker := "http://" + addr2
	out, err := exec.Command(pdmctl, "jobs", "-worker", worker).CombinedOutput()
	if err != nil {
		t.Fatalf("pdmctl jobs: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "resumed from pass") || !strings.Contains(string(out), "victim") {
		t.Fatalf("pdmctl jobs output missing provenance:\n%s", out)
	}
	out, err = exec.Command(pdmctl, "status", "-worker", worker,
		"-id", fmt.Sprint(id1), "-watch").CombinedOutput()
	if err != nil {
		t.Fatalf("pdmctl status: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), `"done"`) || !strings.Contains(string(out), "resumed from pass") {
		t.Fatalf("pdmctl status output missing state or provenance:\n%s", out)
	}

	// A journaled daemon exits cleanly on SIGTERM via the drain path.
	if err := d2.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- d2.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("pdmd exit after SIGTERM: %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("pdmd did not exit after SIGTERM")
	}
}
