package repro_test

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"slices"
	"testing"
	"time"

	"repro"
	"repro/internal/pdmdapi"
)

// distFleet spins n in-process pdmd workers: each is a real scheduler
// behind the real HTTP handler on httptest, so the coordinator exercises
// the same wire protocol production would.
type distFleet struct {
	urls    []string
	servers []*httptest.Server
	scheds  []*repro.Scheduler
	dirs    []string // scratch roots, "" for in-memory fleets
}

func startFleet(t *testing.T, n int, cfg repro.SchedulerConfig) *distFleet {
	t.Helper()
	f := &distFleet{}
	for i := 0; i < n; i++ {
		c := cfg
		if c.Dir != "" {
			c.Dir = t.TempDir()
		}
		f.dirs = append(f.dirs, c.Dir)
		sch, err := repro.NewScheduler(c)
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(pdmdapi.New(sch, pdmdapi.Options{MaxBody: 8 << 20}))
		f.urls = append(f.urls, ts.URL)
		f.servers = append(f.servers, ts)
		f.scheds = append(f.scheds, sch)
	}
	t.Cleanup(func() {
		for _, ts := range f.servers {
			ts.Close()
		}
		for _, sch := range f.scheds {
			sch.Close()
		}
	})
	return f
}

func smallSched() repro.SchedulerConfig {
	return repro.SchedulerConfig{
		Memory:    1 << 16,
		Workers:   2,
		JobMemory: 1024,
		Pipeline:  repro.PipelineConfig{Prefetch: 2, WriteBehind: 2},
	}
}

func distWorkload(t *testing.T, kind string, n int, seed int64) []int64 {
	t.Helper()
	keys, err := (&repro.WorkloadSpec{Kind: kind, N: n, Seed: seed}).Generate()
	if err != nil {
		t.Fatal(err)
	}
	return keys
}

// TestDistSortBitIdentical is the tentpole acceptance test: the
// distributed sort's output must be byte-identical to the single-machine
// sort for 1, 2, and 4 workers across the determinism-suite workloads
// (random permutation, heavy duplicates, presorted runs).
func TestDistSortBitIdentical(t *testing.T) {
	const n = 20000
	workloads := []string{"perm", "zipf", "sortedruns"}
	for _, kind := range workloads {
		keys := distWorkload(t, kind, n, 7)
		want := slices.Clone(keys)
		slices.Sort(want)
		for _, workers := range []int{1, 2, 4} {
			f := startFleet(t, workers, smallSched())
			ds, err := repro.NewDistSorter(repro.DistConfig{
				Workers:  f.urls,
				PageKeys: 1 << 12, // several pages per shard
				Label:    fmt.Sprintf("bit-%s-%d", kind, workers),
			})
			if err != nil {
				t.Fatal(err)
			}
			got, rep, err := ds.Sort(context.Background(), slices.Clone(keys))
			if err != nil {
				t.Fatalf("%s/%d workers: %v", kind, workers, err)
			}
			if !slices.Equal(got, want) {
				t.Fatalf("%s/%d workers: distributed output differs from single-machine sort", kind, workers)
			}
			// Aggregated accounting: every input key landed in exactly one
			// shard, every shard measured passes and I/O, and the fleet
			// roll-up reflects them.
			if rep.N != n || rep.Workers != workers {
				t.Fatalf("report geometry: %+v", rep)
			}
			shardN := 0
			for _, s := range rep.Shards {
				shardN += s.N
				if s.Passes <= 0 || s.IO.BlocksRead+s.IO.BlocksWritten <= 0 {
					t.Fatalf("shard on %s missing accounting: %+v", s.Worker, s)
				}
			}
			if shardN != n {
				t.Fatalf("shards cover %d of %d keys", shardN, n)
			}
			if rep.Passes <= 0 || rep.MaxPasses < rep.Passes-1e-9 {
				t.Fatalf("aggregate passes: mean %.3f, max %.3f", rep.Passes, rep.MaxPasses)
			}
			if rep.IO.BlocksRead <= 0 {
				t.Fatalf("aggregate IO empty: %+v", rep.IO)
			}
			if len(rep.Splitters) != workers-1 {
				t.Fatalf("%d splitters for %d workers", len(rep.Splitters), workers)
			}
		}
	}
}

// TestDistSortRecordsBitIdentical runs the full-record determinism check:
// variable-width payloads, duplicate-heavy keys, and the stable order
// among equal keys must match the single-machine SortRecords byte for
// byte at every worker count.
func TestDistSortRecordsBitIdentical(t *testing.T) {
	const n = 6000
	keys := distWorkload(t, "zipf", n, 11)
	payloads := (&repro.PayloadSpec{MinBytes: 0, MaxBytes: 24}).Materialize(n, 11)
	for i := range payloads {
		// Tag each payload with its original index so a stability break
		// is visible even between identical random bytes.
		payloads[i] = append(payloads[i], byte(i), byte(i>>8))
	}

	// Single-machine baseline.
	m, err := repro.NewMachine(repro.MachineConfig{Memory: 1024})
	if err != nil {
		t.Fatal(err)
	}
	wantKeys := slices.Clone(keys)
	wantPayloads := make([][]byte, n)
	for i := range payloads {
		wantPayloads[i] = slices.Clone(payloads[i])
	}
	if _, err := m.SortRecords(wantKeys, wantPayloads, repro.Auto); err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 2, 4} {
		f := startFleet(t, workers, smallSched())
		ds, err := repro.NewDistSorter(repro.DistConfig{
			Workers:  f.urls,
			PageKeys: 1 << 11,
			Label:    fmt.Sprintf("rec-%d", workers),
		})
		if err != nil {
			t.Fatal(err)
		}
		gotKeys, gotPayloads, rep, err := ds.SortRecords(context.Background(), slices.Clone(keys), clonePayloads(payloads))
		if err != nil {
			t.Fatalf("%d workers: %v", workers, err)
		}
		if !slices.Equal(gotKeys, wantKeys) {
			t.Fatalf("%d workers: keys differ from single-machine SortRecords", workers)
		}
		for i := range gotPayloads {
			if !bytes.Equal(gotPayloads[i], wantPayloads[i]) {
				t.Fatalf("%d workers: payload %d differs (stability break): got %x want %x",
					workers, i, gotPayloads[i], wantPayloads[i])
			}
		}
		if rep.N != n {
			t.Fatalf("report: %+v", rep)
		}
	}
}

func clonePayloads(p [][]byte) [][]byte {
	out := make([][]byte, len(p))
	for i := range p {
		out[i] = slices.Clone(p[i])
	}
	return out
}

// TestDistCancellation cancels the caller's context mid-job and checks the
// fan-out: the coordinator returns promptly with the context error and
// every shard job on every worker reaches a terminal state, with worker
// memory fully drained.
func TestDistCancellation(t *testing.T) {
	f := startFleet(t, 2, smallSched())
	ds, err := repro.NewDistSorter(repro.DistConfig{
		Workers:        f.urls,
		Alg:            "seven", // many passes
		BlockLatencyUS: 500,     // modeled latency keeps the job running
		Label:          "cancel-e2e",
	})
	if err != nil {
		t.Fatal(err)
	}
	keys := distWorkload(t, "perm", 32000, 3)

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, _, err := ds.Sort(ctx, keys)
		done <- err
	}()
	// Wait until at least one worker is actually sorting, then pull the plug.
	waitUntil(t, 10*time.Second, func() bool {
		for _, sch := range f.scheds {
			if sch.Stats().Running > 0 {
				return true
			}
		}
		return false
	})
	cancel()
	select {
	case err := <-done:
		if err == nil || ctx.Err() == nil {
			t.Fatalf("canceled sort returned %v", err)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("canceled sort never returned")
	}
	// The fan-out must leave no job running and no memory reserved.
	waitUntil(t, 10*time.Second, func() bool {
		for _, sch := range f.scheds {
			st := sch.Stats()
			if st.Running > 0 || st.Queued > 0 || st.MemInUse > 0 {
				return false
			}
		}
		return true
	})
}

// TestDistPartialWorkerFailure kills one worker mid-shard.  The
// distributed job must fail cleanly with an error naming the failure,
// cancel the surviving workers' shard jobs, and drain without goroutine
// or scratch-dir leaks.
func TestDistPartialWorkerFailure(t *testing.T) {
	baseline := runtime.NumGoroutine()

	cfg := smallSched()
	cfg.Dir = "scratch" // rewritten to a fresh t.TempDir() per worker
	f := startFleet(t, 3, cfg)
	ds, err := repro.NewDistSorter(repro.DistConfig{
		Workers:        f.urls,
		Alg:            "seven",
		BlockLatencyUS: 500,
		Retries:        -1, // fail fast: the point is the failure path
		Label:          "partial-fail",
	})
	if err != nil {
		t.Fatal(err)
	}
	keys := distWorkload(t, "perm", 48000, 5)

	done := make(chan error, 1)
	go func() {
		_, _, err := ds.Sort(context.Background(), keys)
		done <- err
	}()
	// Let the shards land and start sorting, then kill worker 1.
	waitUntil(t, 10*time.Second, func() bool {
		running := 0
		for _, sch := range f.scheds {
			running += sch.Stats().Running
		}
		return running >= 2
	})
	f.servers[1].CloseClientConnections()
	f.servers[1].Close()

	var sortErr error
	select {
	case sortErr = <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("distributed job never failed after losing a worker")
	}
	if sortErr == nil {
		t.Fatal("distributed job succeeded with a dead worker")
	}

	// Survivors' jobs were canceled and their budgets drained.
	for _, i := range []int{0, 2} {
		sch := f.scheds[i]
		waitUntil(t, 10*time.Second, func() bool {
			st := sch.Stats()
			return st.Running == 0 && st.Queued == 0 && st.MemInUse == 0
		})
		for _, job := range sch.Jobs() {
			switch job.State {
			case repro.JobDone, repro.JobFailed, repro.JobCanceled:
			default:
				t.Fatalf("survivor %d: job %d stuck in state %s", i, job.ID, job.State)
			}
		}
	}

	// Closing the survivors must leave their scratch directories empty —
	// a canceled shard may not leak spill files.
	f.servers[0].Close()
	f.servers[2].Close()
	f.scheds[0].Close()
	f.scheds[2].Close()
	for _, i := range []int{0, 2} {
		entries, err := os.ReadDir(f.dirs[i])
		if err != nil {
			continue // the scheduler removed its own root: nothing leaked
		}
		if len(entries) != 0 {
			t.Fatalf("survivor %d leaked %d scratch entries in %s", i, len(entries), f.dirs[i])
		}
	}

	// No goroutines left over from the coordinator or the fan-out.
	waitUntil(t, 10*time.Second, func() bool {
		return runtime.NumGoroutine() <= baseline+10
	})
}

func waitUntil(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("condition never became true")
}

// TestDistWorkerDownAtSubmit: a fleet where one worker is unreachable from
// the start fails in the probe, before any data moves.
func TestDistWorkerDownAtSubmit(t *testing.T) {
	f := startFleet(t, 1, smallSched())
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	dead.Close()
	ds, err := repro.NewDistSorter(repro.DistConfig{
		Workers: []string{f.urls[0], dead.URL},
		Retries: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = ds.Sort(context.Background(), []int64{3, 1, 2})
	if err == nil {
		t.Fatal("sort succeeded with an unreachable worker")
	}
	if jobs := f.scheds[0].Jobs(); len(jobs) != 0 {
		t.Fatalf("probe failure still submitted %d jobs", len(jobs))
	}
}
