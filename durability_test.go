package repro

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"slices"
	"testing"
	"time"

	"repro/internal/journal"
	"repro/internal/pdm"
)

// A journaled scheduler must make jobs durable across lives: Drain parks a
// running multi-pass sort at its last journaled checkpoint, and the next
// NewScheduler over the same JournalDir and Dir resumes it from that pass —
// with an end state bit-identical to an uninterrupted run — while queued
// jobs re-admit in their original FIFO order.  These tests exercise the
// whole facade path (journalSpec round-trip, manifest arming, resume,
// restart-from-input fallback) in-process; the daemon-level SIGKILL
// variant lives in cmd/pdmd's e2e test.

// durabilityConfig is the shared scheduler shape: one job envelope, so a
// running job is always alone and everything behind it queues in order.
func durabilityConfig(dir, jdir string) SchedulerConfig {
	return SchedulerConfig{
		Memory:     4000,
		Workers:    4,
		JobMemory:  schedJobMem,
		Dir:        dir,
		JournalDir: jdir,
		Pipeline:   PipelineConfig{Prefetch: 2, WriteBehind: 2},
	}
}

// durabilitySpecs returns the three-job batch: a latency-slowed three-pass
// sort to interrupt, and two queued jobs behind it.
func durabilitySpecs() []JobSpec {
	return []JobSpec{
		{Workload: &WorkloadSpec{Kind: "perm", N: 16 * schedJobMem, Seed: 11},
			Algorithm: ThreePassLMM, BlockLatency: 2 * time.Millisecond,
			KeepKeys: true, Label: "interrupted"},
		{Workload: &WorkloadSpec{Kind: "sortedruns", N: 8 * schedJobMem, Seed: 12},
			Algorithm: TwoPassExpected, KeepKeys: true, Label: "queued-a"},
		{Workload: &WorkloadSpec{Kind: "uniform", N: 16 * schedJobMem, Seed: 13},
			Algorithm: ThreePassMesh, KeepKeys: true, Label: "queued-b"},
	}
}

// soloDurabilityRun runs one spec alone on a dedicated machine with the
// scheduler's job geometry: the bit-identity control.
func soloDurabilityRun(t *testing.T, spec JobSpec) ([]int64, *Report) {
	t.Helper()
	m, err := NewMachine(MachineConfig{
		Memory:       schedJobMem,
		Pipeline:     PipelineConfig{Prefetch: 2, WriteBehind: 2},
		Workers:      4,
		BlockLatency: spec.BlockLatency,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	keys, err := spec.Workload.Generate()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := m.Sort(keys, spec.Algorithm)
	if err != nil {
		t.Fatalf("%s solo: %v", spec.Label, err)
	}
	return keys, rep
}

// submitBatch submits the specs and returns their ids.
func submitBatch(t *testing.T, s *Scheduler, specs []JobSpec) []int {
	t.Helper()
	ids := make([]int, len(specs))
	for i, spec := range specs {
		id, err := s.Submit(spec)
		if err != nil {
			t.Fatalf("submit %s: %v", spec.Label, err)
		}
		ids[i] = id
	}
	return ids
}

// awaitCheckpoint polls the journal (read-only, from the side) until the
// job has a checkpoint record with Pass >= 1, then returns that pass.
func awaitCheckpoint(t *testing.T, jdir string, job int) int {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		recs, _, err := journal.Replay(jdir)
		if err == nil {
			for _, rec := range recs {
				if rec.Type != journal.Checkpoint || rec.Job != job {
					continue
				}
				var cp pdm.Checkpoint
				if json.Unmarshal(rec.Data, &cp) == nil && cp.Pass >= 1 {
					return cp.Pass
				}
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %d never journaled a checkpoint", job)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestSchedulerDrainResumeBitIdentical interrupts a three-pass sort at a
// journaled pass boundary via Drain, restarts the scheduler over the same
// directories, and demands the resumed job's output and deterministic
// report match an uninterrupted control run — with the two queued jobs
// re-admitted behind it in their original order.
func TestSchedulerDrainResumeBitIdentical(t *testing.T) {
	dir, jdir := t.TempDir(), t.TempDir()
	specs := durabilitySpecs()
	wantKeys, wantRep := soloDurabilityRun(t, specs[0])

	// Life 1: submit all three, wait for the first pass boundary to hit
	// the journal, then drain cleanly.
	s1, err := NewScheduler(durabilityConfig(dir, jdir))
	if err != nil {
		t.Fatal(err)
	}
	ids := submitBatch(t, s1, specs)
	awaitCheckpoint(t, jdir, ids[0])
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	err = s1.Drain(ctx)
	cancel()
	if err != nil {
		t.Fatalf("drain: %v", err)
	}
	st, ok := s1.Status(ids[0])
	if !ok || st.State != JobSuspended {
		t.Fatalf("after drain: job %d state %q, want suspended", ids[0], st.State)
	}
	for _, id := range ids[1:] {
		if st, _ := s1.Status(id); st.State != JobQueued {
			t.Fatalf("after drain: job %d state %q, want queued", id, st.State)
		}
	}

	// Life 2: the same directories.  Recovery replays the journal,
	// re-admits everything, and resumes the suspended sort mid-flight.
	s2, err := NewScheduler(durabilityConfig(dir, jdir))
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	final := make([]JobStatus, len(ids))
	for i, id := range ids {
		fst, err := s2.Wait(context.Background(), id)
		if err != nil {
			t.Fatalf("wait %d: %v", id, err)
		}
		if fst.State != JobDone {
			t.Fatalf("job %d state %q, error %q", id, fst.State, fst.Error)
		}
		final[i] = fst
	}

	// Resume provenance: the interrupted job picked up from a checkpointed
	// pass, and only it carries recovery info from a running state.
	rec := final[0].Recovery
	if rec == nil || !rec.WasRunning || rec.ResumedFromPass < 1 || rec.RestartedFromInput {
		t.Fatalf("interrupted job recovery = %+v, want resumed from pass >= 1", rec)
	}
	for _, fst := range final[1:] {
		if fst.Recovery == nil || fst.Recovery.WasRunning {
			t.Fatalf("queued job %d recovery = %+v, want recovered but not running", fst.ID, fst.Recovery)
		}
	}

	// FIFO order: one envelope means strictly serial execution, so start
	// times must follow the original submission order.
	for i := 1; i < len(final); i++ {
		if final[i].Started.Before(final[i-1].Started) {
			t.Fatalf("job %d started %v before its FIFO predecessor's %v",
				final[i].ID, final[i].Started, final[i-1].Started)
		}
	}

	// Bit-identity: the resumed run's output and deterministic report
	// match the uninterrupted control exactly.
	got, err := s2.SortedKeys(ids[0])
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(got, wantKeys) {
		t.Fatal("resumed output differs from the uninterrupted control")
	}
	rep := final[0].Report
	if rep.Passes != wantRep.Passes || rep.ReadPasses != wantRep.ReadPasses ||
		rep.WritePasses != wantRep.WritePasses || rep.PaddedN != wantRep.PaddedN ||
		rep.Algorithm != wantRep.Algorithm || rep.FellBack != wantRep.FellBack {
		t.Fatalf("resumed report differs:\nresumed %+v\ncontrol %+v", rep, wantRep)
	}
	if normalizeStats(rep.IO) != normalizeStats(wantRep.IO) {
		t.Fatalf("resumed I/O stats differ:\nresumed %+v\ncontrol %+v",
			normalizeStats(rep.IO), normalizeStats(wantRep.IO))
	}

	// The queued jobs still sort correctly after their journal round-trip.
	for i, id := range ids[1:] {
		keys, err := s2.SortedKeys(id)
		if err != nil {
			t.Fatal(err)
		}
		if !slices.IsSorted(keys) || len(keys) != specs[i+1].Workload.N {
			t.Fatalf("recovered job %d output wrong (%d keys)", id, len(keys))
		}
	}

	stats := s2.Stats()
	if stats.Recovered != 3 || stats.JobsResumed != 1 || stats.JobsRestarted != 0 {
		t.Fatalf("recovery stats: recovered %d, resumed %d, restarted %d",
			stats.Recovered, stats.JobsResumed, stats.JobsRestarted)
	}
	if stats.JournalAppends == 0 || stats.JournalReplayed == 0 || stats.JournalFsyncErrors != 0 {
		t.Fatalf("journal metrics: %+v", stats)
	}
	if h := s2.Health(); !h.Durable || h.Recovered != 3 {
		t.Fatalf("health after recovery: %+v", h)
	}
}

// TestSchedulerRecoveryRestartFromInput deletes a suspended job's scratch
// between lives: the manifest no longer validates against the disks, so
// the rerun must fall back to a clean restart from the input and still
// produce the correct result, reported as RestartedFromInput.
func TestSchedulerRecoveryRestartFromInput(t *testing.T) {
	dir, jdir := t.TempDir(), t.TempDir()
	specs := durabilitySpecs()[:1]
	wantKeys, _ := soloDurabilityRun(t, specs[0])

	s1, err := NewScheduler(durabilityConfig(dir, jdir))
	if err != nil {
		t.Fatal(err)
	}
	ids := submitBatch(t, s1, specs)
	awaitCheckpoint(t, jdir, ids[0])
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	err = s1.Drain(ctx)
	cancel()
	if err != nil {
		t.Fatalf("drain: %v", err)
	}

	// Lose the surviving scratch: the journal still has the manifest, but
	// the files it points at are gone.
	scratch := filepath.Join(dir, "job-0001")
	if _, err := os.Stat(scratch); err != nil {
		t.Fatalf("suspended scratch missing before the test even deleted it: %v", err)
	}
	if err := os.RemoveAll(scratch); err != nil {
		t.Fatal(err)
	}

	s2, err := NewScheduler(durabilityConfig(dir, jdir))
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	fst, err := s2.Wait(context.Background(), ids[0])
	if err != nil {
		t.Fatal(err)
	}
	if fst.State != JobDone {
		t.Fatalf("job state %q, error %q", fst.State, fst.Error)
	}
	rec := fst.Recovery
	if rec == nil || !rec.WasRunning || !rec.RestartedFromInput || rec.ResumedFromPass != 0 {
		t.Fatalf("recovery = %+v, want restarted from input", rec)
	}
	got, err := s2.SortedKeys(ids[0])
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(got, wantKeys) {
		t.Fatal("restarted output differs from the control")
	}
	if stats := s2.Stats(); stats.JobsRestarted != 1 || stats.JobsResumed != 0 {
		t.Fatalf("recovery stats: %+v", stats)
	}
}
