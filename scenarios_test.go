package repro

import (
	"math/rand"
	"slices"
	"sort"
	"testing"

	"repro/internal/plan"
	"repro/internal/workload"
)

// The query scenarios carry the same determinism guarantee as the sorts:
// for any worker count, disk backend, and compute kernel, the result, the
// pass counts, the pdm.Stats, and the I/O trace are bit-identical.  These
// tests also pin each scenario to its sort-based oracle (top-K ==
// sort-then-head, group-by == sort-then-scan, ingest == re-sort) and the
// planner's closed-form step predictions to the measured charges.

// scenarioCase is one scenario invocation whose result flattens to a key
// slice for the shared determinism comparison.
type scenarioCase struct {
	name string
	run  func(m *Machine) ([]int64, *Report, error)
}

// flattenAggs folds a group-by result into the determinism comparison's
// flat key slice.
func flattenAggs(aggs []GroupAgg) []int64 {
	out := make([]int64, 0, 5*len(aggs))
	for _, a := range aggs {
		out = append(out, a.Key, a.Count, a.Sum, a.Min, a.Max)
	}
	return out
}

// scenarioSuite builds one case per scenario kind and route over fixed
// deterministic inputs sized for the mem=1024 test machines: topk and
// quantile filter routes, all three group-by routes (one-pass at 97
// groups, partition at 8192, sort-then-scan at 20000), and the ingest
// merge.
func scenarioSuite() []scenarioCase {
	const n = 20000
	keys := workload.Uniform(n, 0, 1<<40, 7)
	gkeysFew := workload.FewDistinct(n, 97, 11)
	gkeysPart := workload.Perm(8192, 13)
	gkeysWide := workload.Perm(n, 17)
	payloads := workload.Uniform(n, -1000, 1000, 19)
	dataset := append([]int64(nil), keys...)
	slices.Sort(dataset)
	batch := workload.Uniform(1024, 0, 1<<40, 23)
	return []scenarioCase{
		{"topk", func(m *Machine) ([]int64, *Report, error) {
			return m.TopK(keys, 64)
		}},
		{"quantile", func(m *Machine) ([]int64, *Report, error) {
			v, rep, err := m.Quantile(keys, n/3)
			return []int64{v}, rep, err
		}},
		{"groupby-onepass", func(m *Machine) ([]int64, *Report, error) {
			aggs, rep, err := m.GroupBy(gkeysFew, payloads, 97)
			return flattenAggs(aggs), rep, err
		}},
		{"groupby-partition", func(m *Machine) ([]int64, *Report, error) {
			aggs, rep, err := m.GroupBy(gkeysPart, payloads[:len(gkeysPart)], len(gkeysPart))
			return flattenAggs(aggs), rep, err
		}},
		{"groupby-fullsort", func(m *Machine) ([]int64, *Report, error) {
			aggs, rep, err := m.GroupBy(gkeysWide, payloads, n)
			return flattenAggs(aggs), rep, err
		}},
		{"ingest", func(m *Machine) ([]int64, *Report, error) {
			return m.Ingest(dataset, batch)
		}},
	}
}

// runScenarioCase executes one scenario on a machine built from cfg, with
// tracing on, and captures everything the determinism guarantee covers.
func runScenarioCase(t *testing.T, cfg MachineConfig, sc scenarioCase) detRun {
	t.Helper()
	cfg.Memory = 1024
	cfg.Pipeline = PipelineConfig{Prefetch: 2, WriteBehind: 2}
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	m.Array().EnableTrace()
	out, rep, err := sc.run(m)
	if err != nil {
		t.Fatal(err)
	}
	if leak := m.Array().Arena().InUse(); leak != 0 {
		t.Fatalf("scenario leaked %d arena keys", leak)
	}
	return detRun{out: out, rep: rep, stats: normalizeStats(m.Array().Stats()), trace: m.Array().Trace()}
}

// TestScenarioWorkerDeterminism pits Workers=1 against Workers=8 on every
// scenario route: results, pass counts, stats, and traces must match.
func TestScenarioWorkerDeterminism(t *testing.T) {
	for _, sc := range scenarioSuite() {
		t.Run(sc.name, func(t *testing.T) {
			serial := runScenarioCase(t, MachineConfig{Workers: 1}, sc)
			parallel := runScenarioCase(t, MachineConfig{Workers: 8}, sc)
			assertIdenticalRuns(t, serial, parallel)
		})
	}
}

// TestScenarioBackendDeterminism pits the file backend against mmap, at
// one and eight workers.
func TestScenarioBackendDeterminism(t *testing.T) {
	for _, sc := range scenarioSuite() {
		t.Run(sc.name, func(t *testing.T) {
			for _, workers := range []int{1, 8} {
				file := runScenarioCase(t, MachineConfig{Workers: workers, Dir: t.TempDir(), Backend: BackendFile}, sc)
				mmap := runScenarioCase(t, MachineConfig{Workers: workers, Dir: t.TempDir(), Backend: BackendMmap}, sc)
				assertIdenticalRuns(t, file, mmap)
			}
		})
	}
}

// TestScenarioKernelDeterminism pits the comparison kernel against radix.
func TestScenarioKernelDeterminism(t *testing.T) {
	for _, sc := range scenarioSuite() {
		t.Run(sc.name, func(t *testing.T) {
			cmp := runScenarioCase(t, MachineConfig{Workers: 8, Kernel: KernelComparison}, sc)
			rad := runScenarioCase(t, MachineConfig{Workers: 8, Kernel: KernelRadix}, sc)
			assertIdenticalRuns(t, cmp, rad)
		})
	}
}

// groupOracle aggregates with a plain map — the reference GroupBy is
// checked against on every route.
func groupOracle(keys, payloads []int64) []GroupAgg {
	idx := make(map[int64]int)
	var out []GroupAgg
	for i, k := range keys {
		v := k
		if payloads != nil {
			v = payloads[i]
		}
		j, ok := idx[k]
		if !ok {
			idx[k] = len(out)
			out = append(out, GroupAgg{Key: k, Count: 1, Sum: v, Min: v, Max: v})
			continue
		}
		a := &out[j]
		a.Count++
		a.Sum += v
		if v < a.Min {
			a.Min = v
		}
		if v > a.Max {
			a.Max = v
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

func newScenarioMachine(t *testing.T) *Machine {
	t.Helper()
	m, err := NewMachine(MachineConfig{Memory: 1024, Pipeline: PipelineConfig{Prefetch: 2, WriteBehind: 2}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close() })
	return m
}

// TestTopKOracle: the scenario result equals sort-then-head, for k across
// the budget range and on duplicate-heavy input.
func TestTopKOracle(t *testing.T) {
	const n = 30000
	for _, tc := range []struct {
		name string
		keys []int64
	}{
		{"uniform", workload.Uniform(n, -1<<40, 1<<40, 3)},
		{"zipf", workload.ZipfSkewed(n, 1.2, 200, 5)},
		{"organ", workload.Organ(n)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			want := append([]int64(nil), tc.keys...)
			slices.Sort(want)
			m := newScenarioMachine(t)
			for _, k := range []int{1, 64, 700} {
				got, rep, err := m.TopK(tc.keys, k)
				if err != nil {
					t.Fatalf("TopK(%d): %v", k, err)
				}
				if !slices.Equal(got, want[:k]) {
					t.Fatalf("TopK(%d) != sort-then-head (route %s)", k, rep.ScenarioRoute)
				}
				if rep.Scenario != "topk" {
					t.Fatalf("Report.Scenario = %q", rep.Scenario)
				}
			}
		})
	}
}

// TestQuantileOracle: the selected key equals the sorted input at the
// rank, across extreme and central ranks.
func TestQuantileOracle(t *testing.T) {
	const n = 3000 // small enough that the filter route is feasible at mem=1024
	keys := workload.Uniform(n, -1<<30, 1<<30, 9)
	want := append([]int64(nil), keys...)
	slices.Sort(want)
	m := newScenarioMachine(t)
	for _, r := range []int{1, 2, n / 2, n - 1, n} {
		got, rep, err := m.Quantile(keys, r)
		if err != nil {
			t.Fatalf("Quantile(%d): %v", r, err)
		}
		if got != want[r-1] {
			t.Fatalf("Quantile(%d) = %d, want %d (route %s)", r, got, want[r-1], rep.ScenarioRoute)
		}
	}
}

// TestGroupByOracle: every route agrees with the map oracle, with and
// without a payload column.
func TestGroupByOracle(t *testing.T) {
	for _, tc := range []struct {
		name      string
		keys      []int64
		hint      int
		wantRoute string
	}{
		{"onepass", workload.FewDistinct(12000, 300, 21), 300, "onepass"},
		{"partition", workload.Perm(6000, 23), 6000, "partition"},
		{"fullsort", workload.Perm(20000, 25), 20000, "fullsort"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			payloads := workload.Uniform(len(tc.keys), -500, 500, 27)
			m := newScenarioMachine(t)
			for _, withPayloads := range []bool{false, true} {
				var p []int64
				if withPayloads {
					p = payloads
				}
				got, rep, err := m.GroupBy(tc.keys, p, tc.hint)
				if err != nil {
					t.Fatal(err)
				}
				if rep.ScenarioRoute != tc.wantRoute {
					t.Fatalf("route = %q, want %q", rep.ScenarioRoute, tc.wantRoute)
				}
				want := groupOracle(tc.keys, p)
				if !slices.Equal(flattenAggs(got), flattenAggs(want)) {
					t.Fatalf("GroupBy != oracle on route %s (payloads=%v)", rep.ScenarioRoute, withPayloads)
				}
			}
		})
	}
}

// TestGroupByHintTooLow: an undercounted hint is detected (ErrOverflow in
// the one-pass table) and escalates with FellBack, still matching the
// oracle.
func TestGroupByHintTooLow(t *testing.T) {
	keys := workload.Perm(6000, 31) // 6000 distinct, hinted as 10
	m := newScenarioMachine(t)
	got, rep, err := m.GroupBy(keys, nil, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.FellBack {
		t.Fatal("expected FellBack on an undercounted group hint")
	}
	if !slices.Equal(flattenAggs(got), flattenAggs(groupOracle(keys, nil))) {
		t.Fatal("escalated GroupBy != oracle")
	}
}

// TestIngestOracle: the merged output equals re-sorting the concatenation,
// including duplicate keys across the two inputs and an empty batch.
func TestIngestOracle(t *testing.T) {
	const n = 20000
	dataset := workload.ZipfSkewed(n, 1.2, 5000, 33)
	slices.Sort(dataset)
	m := newScenarioMachine(t)
	for _, bn := range []int{0, 1, 1024, 4096} {
		batch := workload.ZipfSkewed(bn, 1.2, 5000, 35)
		got, rep, err := m.Ingest(dataset, batch)
		if err != nil {
			t.Fatalf("Ingest(batch=%d): %v", bn, err)
		}
		want := append(append([]int64(nil), dataset...), batch...)
		slices.Sort(want)
		if !slices.Equal(got, want) {
			t.Fatalf("Ingest(batch=%d) != re-sort (route %s)", bn, rep.ScenarioRoute)
		}
		if bn > 0 && rep.ScenarioRoute != "merge" {
			t.Fatalf("route = %q, want merge", rep.ScenarioRoute)
		}
	}
}

// TestIngestRejectsUnsorted: the dataset contract is validated, not
// trusted.
func TestIngestRejectsUnsorted(t *testing.T) {
	m := newScenarioMachine(t)
	if _, _, err := m.Ingest([]int64{3, 1, 2}, []int64{5}); err == nil {
		t.Fatal("Ingest accepted an unsorted dataset")
	}
}

// TestScenarioArgValidation: out-of-range parameters and sentinel keys are
// rejected up front.
func TestScenarioArgValidation(t *testing.T) {
	m := newScenarioMachine(t)
	keys := workload.Perm(100, 1)
	if _, _, err := m.TopK(keys, 0); err == nil {
		t.Fatal("TopK accepted k=0")
	}
	if _, _, err := m.TopK(keys, 101); err == nil {
		t.Fatal("TopK accepted k>n")
	}
	if _, _, err := m.Quantile(keys, 0); err == nil {
		t.Fatal("Quantile accepted rank 0")
	}
	if _, _, err := m.GroupBy(keys, []int64{1}, 0); err == nil {
		t.Fatal("GroupBy accepted a mismatched payload column")
	}
	bad := []int64{1, int64(^uint64(0) >> 1)} // MaxInt64 sentinel
	if _, _, err := m.TopK(bad, 1); err != ErrKeyRange {
		t.Fatalf("TopK(MaxInt64) err = %v, want ErrKeyRange", err)
	}
}

// TestScenarioPredictionMatchesMeasured is the planning acceptance: at
// N >= 4M the top-K and ingest scenario routes must price strictly fewer
// read passes than the chosen full sort, the Auto decision must pick them,
// and a non-fallback run must charge exactly the predicted steps when the
// plan claims exactness.
func TestScenarioPredictionMatchesMeasured(t *testing.T) {
	const mem = 1024
	m := newScenarioMachine(t)

	t.Run("topk", func(t *testing.T) {
		for _, n := range []int{4 * mem, 65536, 200000} {
			keys := workload.Uniform(n, 0, 1<<40, int64(n))
			p, err := m.ExplainScenario(ScenarioSpec{Kind: "topk", N: n, K: 64})
			if err != nil {
				t.Fatal(err)
			}
			if !p.Feasible || !p.UseScenario || !p.Exact {
				t.Fatalf("n=%d: plan %+v, want feasible+use+exact", n, p)
			}
			if p.ReadPasses >= p.FullSortReadPasses {
				t.Fatalf("n=%d: scenario %.3f read passes not under full sort %.3f",
					n, p.ReadPasses, p.FullSortReadPasses)
			}
			_, rep, err := m.TopK(keys, 64)
			if err != nil {
				t.Fatal(err)
			}
			if rep.FellBack {
				t.Fatalf("n=%d: unexpected sampling fallback", n)
			}
			if rep.IO.ReadSteps != p.ReadSteps || rep.IO.WriteSteps != p.WriteSteps {
				t.Fatalf("n=%d: measured %d/%d steps, predicted %d/%d",
					n, rep.IO.ReadSteps, rep.IO.WriteSteps, p.ReadSteps, p.WriteSteps)
			}
		}
	})

	t.Run("quantile", func(t *testing.T) {
		// The quantile budget needs the whole window in memory, so the
		// filter route is only priced in at modest N for mem=1024.
		n := 4 * mem
		keys := workload.Uniform(n, 0, 1<<40, 41)
		p, err := m.ExplainScenario(ScenarioSpec{Kind: "quantile", N: n, Rank: n / 2})
		if err != nil {
			t.Fatal(err)
		}
		if !p.Feasible || !p.UseScenario || !p.Exact {
			t.Fatalf("plan %+v, want feasible+use+exact", p)
		}
		_, rep, err := m.Quantile(keys, n/2)
		if err != nil {
			t.Fatal(err)
		}
		if rep.FellBack {
			t.Fatal("unexpected window miss")
		}
		if rep.IO.ReadSteps != p.ReadSteps {
			t.Fatalf("measured %d read steps, predicted %d", rep.IO.ReadSteps, p.ReadSteps)
		}
	})

	t.Run("groupby-onepass", func(t *testing.T) {
		n := 65536
		keys := workload.FewDistinct(n, 400, 43)
		p, err := m.ExplainScenario(ScenarioSpec{Kind: "groupby", N: n, Groups: 400})
		if err != nil {
			t.Fatal(err)
		}
		if !p.Feasible || !p.Exact || p.Route != "onepass" {
			t.Fatalf("plan %+v, want exact onepass", p)
		}
		_, rep, err := m.GroupBy(keys, nil, 400)
		if err != nil {
			t.Fatal(err)
		}
		if rep.FellBack {
			t.Fatal("unexpected overflow escalation")
		}
		if rep.IO.ReadSteps != p.ReadSteps {
			t.Fatalf("measured %d read steps, predicted %d", rep.IO.ReadSteps, p.ReadSteps)
		}
	})

	t.Run("ingest", func(t *testing.T) {
		for _, n := range []int{65536, 200000} {
			dataset := workload.Uniform(n, 0, 1<<40, int64(n))
			slices.Sort(dataset)
			batch := workload.Uniform(n/32, 0, 1<<40, 45)
			p, err := m.ExplainScenario(ScenarioSpec{Kind: "ingest", N: n, Batch: len(batch)})
			if err != nil {
				t.Fatal(err)
			}
			if !p.Feasible || !p.UseScenario {
				t.Fatalf("n=%d: plan %+v, want feasible+use", n, p)
			}
			if p.ReadPasses >= p.FullSortReadPasses {
				t.Fatalf("n=%d: scenario %.3f read passes not under full sort %.3f",
					n, p.ReadPasses, p.FullSortReadPasses)
			}
			_, rep, err := m.Ingest(dataset, batch)
			if err != nil {
				t.Fatal(err)
			}
			if p.Exact && !rep.FellBack &&
				(rep.IO.ReadSteps != p.ReadSteps || rep.IO.WriteSteps != p.WriteSteps) {
				t.Fatalf("n=%d: measured %d/%d steps, predicted %d/%d",
					n, rep.IO.ReadSteps, rep.IO.WriteSteps, p.ReadSteps, p.WriteSteps)
			}
		}
	})
}

// TestScenarioPlanProperties fuzzes the scenario planner lightly: for
// random shapes and sizes, plans must be internally consistent (passes
// derived from steps, budget/sample positive on feasible selection plans,
// routes named) — and infeasible plans must carry a reason.
func TestScenarioPlanProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	mems := []int{256, 1024, 4096}
	for i := 0; i < 200; i++ {
		mem := mems[rng.Intn(len(mems))]
		b := isqrtInt(mem)
		d := 1 << rng.Intn(6) // 1..32, always divides the power-of-two B
		if d > b {
			d = b
		}
		shape := plan.Shape{Mem: mem, B: b, D: d, Alpha: 1}
		n := 1 + rng.Intn(300000)
		var p plan.ScenarioPlan
		switch rng.Intn(4) {
		case 0:
			p = plan.TopKPlan(shape, plan.Workload{N: n}, 1+rng.Intn(n))
		case 1:
			p = plan.QuantilePlan(shape, plan.Workload{N: n}, 1+rng.Intn(n))
		case 2:
			p = plan.GroupByPlan(shape, n, 1+rng.Intn(n), 1+rng.Intn(2))
		case 3:
			p = plan.IngestPlan(shape, plan.Workload{N: n}, 1+rng.Intn(n))
		}
		if !p.Feasible {
			if p.Reason == "" {
				t.Fatalf("infeasible plan without a reason: %+v", p)
			}
			continue
		}
		if p.Route == "" || p.PaddedN <= 0 {
			t.Fatalf("feasible plan missing route or padding: %+v", p)
		}
		stripe := shape.Stripe()
		if want := float64(p.ReadSteps) * float64(stripe) / float64(p.PaddedN); p.Route != "fullsort" && p.ReadPasses != want {
			t.Fatalf("ReadPasses %.6f != steps-derived %.6f: %+v", p.ReadPasses, want, p)
		}
		if (p.Kind == "topk" || p.Kind == "quantile") && (p.Sample <= 0 || p.Budget <= 0) {
			t.Fatalf("selection plan without sample/budget: %+v", p)
		}
	}
}

func isqrtInt(n int) int {
	r := 0
	for (r+1)*(r+1) <= n {
		r++
	}
	return r
}
