package repro

import (
	"bytes"
	"math/rand"
	"slices"
	"testing"

	"repro/internal/pdm"
	"repro/internal/workload"
)

// The worker pool must be invisible to everything but the wall clock: for
// any worker count, sorted output, pass counts, pdm.Stats, and the I/O
// trace are bit-identical.  These tests pit Workers=1 against Workers=8 on
// every algorithm with pipelining enabled, at sizes where the M-key chunks
// cross the pool's parallel grain, and run under -race in CI.

// normalizeStats zeroes the scheduling-dependent observability counters —
// pipeline hits/stalls and compute timings — which are documented as
// outside the determinism guarantee.  Everything else must match exactly.
func normalizeStats(s pdm.Stats) pdm.Stats {
	s.PrefetchHits, s.PrefetchStalls = 0, 0
	s.WriteBehindHits, s.WriteBehindStalls = 0, 0
	s.ComputeSections, s.ComputeWallNanos, s.ComputeBusyNanos = 0, 0, 0
	return s
}

type detRun struct {
	out   []int64
	rep   *Report
	stats pdm.Stats
	trace []pdm.TraceOp
}

func sortWithWorkers(t *testing.T, workers int, keys []int64, sort func(m *Machine, keys []int64) (*Report, error)) detRun {
	t.Helper()
	m, err := NewMachine(MachineConfig{
		Memory:   1024,
		Pipeline: PipelineConfig{Prefetch: 2, WriteBehind: 2},
		Workers:  workers,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	out := append([]int64(nil), keys...)
	m.Array().EnableTrace()
	rep, err := sort(m, out)
	if err != nil {
		t.Fatal(err)
	}
	return detRun{out: out, rep: rep, stats: normalizeStats(m.Array().Stats()), trace: m.Array().Trace()}
}

func assertIdenticalRuns(t *testing.T, serial, parallel detRun) {
	t.Helper()
	if !slices.Equal(serial.out, parallel.out) {
		t.Fatal("sorted output differs between worker counts")
	}
	if serial.rep.Passes != parallel.rep.Passes ||
		serial.rep.ReadPasses != parallel.rep.ReadPasses ||
		serial.rep.WritePasses != parallel.rep.WritePasses ||
		serial.rep.FellBack != parallel.rep.FellBack ||
		serial.rep.PaddedN != parallel.rep.PaddedN {
		t.Fatalf("pass counts differ: serial %+v, parallel %+v", serial.rep, parallel.rep)
	}
	if serial.stats != parallel.stats {
		t.Fatalf("stats differ:\nserial   %+v\nparallel %+v", serial.stats, parallel.stats)
	}
	if !pdm.TracesEqual(serial.trace, parallel.trace) {
		t.Fatal("I/O traces differ between worker counts")
	}
	if normalizeStats(serial.rep.IO) != normalizeStats(parallel.rep.IO) {
		t.Fatal("report I/O deltas differ between worker counts")
	}
}

// sortWithBackend runs one file-backed sort on the named disk backend
// and captures everything the determinism guarantee covers.
func sortWithBackend(t *testing.T, backend string, workers int, keys []int64,
	sort func(m *Machine, keys []int64) (*Report, error)) detRun {
	t.Helper()
	m, err := NewMachine(MachineConfig{
		Memory:   1024,
		Dir:      t.TempDir(),
		Backend:  backend,
		Pipeline: PipelineConfig{Prefetch: 2, WriteBehind: 2},
		Workers:  workers,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	out := append([]int64(nil), keys...)
	m.Array().EnableTrace()
	rep, err := sort(m, out)
	if err != nil {
		t.Fatal(err)
	}
	return detRun{out: out, rep: rep, stats: normalizeStats(m.Array().Stats()), trace: m.Array().Trace()}
}

// TestBackendDeterminism proves the mmap backend is invisible to the cost
// model: for every algorithm, FileDisk and MmapDisk machines — at one and
// eight workers — produce bit-identical output, pass counts, stats, and
// I/O traces.  The zero-copy borrow paths (stream reads, records writes)
// only engage on the mmap side, so this pins their accounting against the
// staged ReadV/WriteV paths.
func TestBackendDeterminism(t *testing.T) {
	const mem = 1024
	algs := []Algorithm{
		MemOnePass, ThreePassMesh, TwoPassMeshExpected, ThreePassLMM,
		TwoPassExpected, ThreePassExpected, SevenPass, SixPassExpected, SevenPassMesh,
	}
	for _, alg := range algs {
		t.Run(alg.String(), func(t *testing.T) {
			n := 8 * mem
			if alg == MemOnePass {
				n = mem
			}
			keys := workload.Uniform(n-257, -1<<40, 1<<40, 11+int64(alg)<<8)
			sort := func(m *Machine, k []int64) (*Report, error) { return m.Sort(k, alg) }
			ref := sortWithBackend(t, BackendFile, 1, keys, sort)
			if !slices.IsSorted(ref.out) {
				t.Fatal("output not sorted")
			}
			for _, run := range []struct {
				backend string
				workers int
			}{
				{BackendFile, 8},
				{BackendMmap, 1},
				{BackendMmap, 8},
			} {
				got := sortWithBackend(t, run.backend, run.workers, keys, sort)
				assertIdenticalRuns(t, ref, got)
			}
		})
	}
}

// TestBackendDeterminismRadix covers the Section 7 RadixSort path.
func TestBackendDeterminismRadix(t *testing.T) {
	keys := workload.Uniform(9000, 0, (1<<20)-1, 77)
	sort := func(m *Machine, k []int64) (*Report, error) { return m.SortInts(k, 1<<20) }
	ref := sortWithBackend(t, BackendFile, 1, keys, sort)
	for _, backend := range []string{BackendMmap} {
		for _, workers := range []int{1, 8} {
			assertIdenticalRuns(t, ref, sortWithBackend(t, backend, workers, keys, sort))
		}
	}
}

// TestBackendDeterminismRecords pins the records path, whose batched
// partition writes take the zero-copy borrow route on mmap disks: sorted
// keys, permuted payload bytes, and the full accounting must match the
// file backend bit for bit.
func TestBackendDeterminismRecords(t *testing.T) {
	n := 6000
	keys := workload.Uniform(n, 0, 1<<16, 5) // narrow universe forces ties
	rng := rand.New(rand.NewSource(31))
	payloads := make([][]byte, n)
	for i := range payloads {
		p := make([]byte, rng.Intn(25))
		rng.Read(p)
		payloads[i] = p
	}
	type recRun struct {
		detRun
		payloads [][]byte
	}
	run := func(backend string, workers int) recRun {
		m, err := NewMachine(MachineConfig{Memory: 1024, Dir: t.TempDir(),
			Backend: backend, Workers: workers,
			Pipeline: PipelineConfig{Prefetch: 2, WriteBehind: 2}})
		if err != nil {
			t.Fatal(err)
		}
		defer m.Close()
		k := append([]int64(nil), keys...)
		p := make([][]byte, n)
		copy(p, payloads)
		m.Array().EnableTrace()
		rep, err := m.SortRecords(k, p, Auto)
		if err != nil {
			t.Fatal(err)
		}
		return recRun{
			detRun:   detRun{out: k, rep: rep, stats: normalizeStats(m.Array().Stats()), trace: m.Array().Trace()},
			payloads: p,
		}
	}
	ref := run(BackendFile, 1)
	for _, cmp := range []recRun{run(BackendFile, 8), run(BackendMmap, 1), run(BackendMmap, 8)} {
		assertIdenticalRuns(t, ref.detRun, cmp.detRun)
		for i := range ref.payloads {
			if !bytes.Equal(ref.payloads[i], cmp.payloads[i]) {
				t.Fatalf("payload %d differs between backends", i)
			}
		}
		if ref.rep.PermutePasses != cmp.rep.PermutePasses ||
			ref.rep.PayloadWords != cmp.rep.PayloadWords ||
			ref.rep.KeyRounds != cmp.rep.KeyRounds {
			t.Fatalf("records accounting differs: ref %+v, got %+v", ref.rep, cmp.rep)
		}
	}
}

func TestWorkerCountDeterminism(t *testing.T) {
	const mem = 1024
	cases := []struct {
		alg Algorithm
		n   int
	}{
		{ThreePassMesh, 32 * mem},
		{TwoPassMeshExpected, 8 * mem},
		{ThreePassLMM, 32 * mem},
		{TwoPassExpected, 8 * mem},
		{ThreePassExpected, 16 * mem},
		{SevenPass, 16 * mem},
		{SixPassExpected, 16 * mem},
		{SevenPassMesh, 16 * mem},
	}
	for _, tc := range cases {
		t.Run(tc.alg.String(), func(t *testing.T) {
			for seed := int64(0); seed < 3; seed++ {
				keys := workload.Uniform(tc.n-257, -1<<40, 1<<40, seed+int64(tc.alg)<<8)
				sort := func(m *Machine, k []int64) (*Report, error) { return m.Sort(k, tc.alg) }
				serial := sortWithWorkers(t, 1, keys, sort)
				parallel := sortWithWorkers(t, 8, keys, sort)
				assertIdenticalRuns(t, serial, parallel)
				if !slices.IsSorted(serial.out) {
					t.Fatal("output not sorted")
				}
			}
		})
	}
}

func TestWorkerCountDeterminismRadix(t *testing.T) {
	keys := workload.Uniform(9000, 0, (1<<20)-1, 77)
	sort := func(m *Machine, k []int64) (*Report, error) { return m.SortInts(k, 1<<20) }
	serial := sortWithWorkers(t, 1, keys, sort)
	parallel := sortWithWorkers(t, 8, keys, sort)
	assertIdenticalRuns(t, serial, parallel)
}

// TestWorkerCountDeterminismRecords pits Workers=1 against Workers=8 on
// the full-record path: sorted keys, permuted payload bytes, pass counts,
// stats, and the I/O trace — key sort plus permutation — must be
// bit-identical.
func TestWorkerCountDeterminismRecords(t *testing.T) {
	n := 6000
	keys := workload.Uniform(n, 0, 1<<16, 5) // narrow universe forces ties
	rng := rand.New(rand.NewSource(31))
	payloads := make([][]byte, n)
	for i := range payloads {
		p := make([]byte, rng.Intn(25))
		rng.Read(p)
		payloads[i] = p
	}
	type recRun struct {
		detRun
		payloads [][]byte
	}
	run := func(workers int) recRun {
		m, err := NewMachine(MachineConfig{Memory: 1024, Workers: workers,
			Pipeline: PipelineConfig{Prefetch: 2, WriteBehind: 2}})
		if err != nil {
			t.Fatal(err)
		}
		defer m.Close()
		k := append([]int64(nil), keys...)
		p := make([][]byte, n)
		copy(p, payloads)
		m.Array().EnableTrace()
		rep, err := m.SortRecords(k, p, Auto)
		if err != nil {
			t.Fatal(err)
		}
		return recRun{
			detRun:   detRun{out: k, rep: rep, stats: normalizeStats(m.Array().Stats()), trace: m.Array().Trace()},
			payloads: p,
		}
	}
	serial, parallel := run(1), run(8)
	assertIdenticalRuns(t, serial.detRun, parallel.detRun)
	for i := range serial.payloads {
		if !bytes.Equal(serial.payloads[i], parallel.payloads[i]) {
			t.Fatalf("payload %d differs between worker counts", i)
		}
	}
	if serial.rep.PermutePasses != parallel.rep.PermutePasses ||
		serial.rep.PayloadWords != parallel.rep.PayloadWords ||
		serial.rep.KeyRounds != parallel.rep.KeyRounds {
		t.Fatalf("records accounting differs: serial %+v, parallel %+v", serial.rep, parallel.rep)
	}
}

func TestWorkerCountDeterminismPairs(t *testing.T) {
	n := 8 * 1024
	keys := workload.Uniform(n, 0, 1<<16, 5) // narrow universe forces ties
	payloads := make([]int64, n)
	for i := range payloads {
		payloads[i] = int64(i) * 3
	}
	type pairRun struct {
		keys, payloads []int64
	}
	run := func(workers int) pairRun {
		m, err := NewMachine(MachineConfig{Memory: 1024, Workers: workers,
			Pipeline: PipelineConfig{Prefetch: 2, WriteBehind: 2}})
		if err != nil {
			t.Fatal(err)
		}
		defer m.Close()
		k := append([]int64(nil), keys...)
		p := append([]int64(nil), payloads...)
		if _, err := m.SortPairs(k, p, Auto); err != nil {
			t.Fatal(err)
		}
		return pairRun{k, p}
	}
	serial, parallel := run(1), run(8)
	if !slices.Equal(serial.keys, parallel.keys) || !slices.Equal(serial.payloads, parallel.payloads) {
		t.Fatal("SortPairs result differs between worker counts")
	}
	// Stability: equal keys keep their original payload order.
	for i := 1; i < n; i++ {
		if serial.keys[i] == serial.keys[i-1] && serial.payloads[i] < serial.payloads[i-1] {
			t.Fatalf("stability violated at %d", i)
		}
	}
}

// sortWithKernel runs one sort pinned to the named compute kernel and
// captures everything the determinism guarantee covers.
func sortWithKernel(t *testing.T, kernel string, workers int, keys []int64,
	sort func(m *Machine, keys []int64) (*Report, error)) detRun {
	t.Helper()
	m, err := NewMachine(MachineConfig{
		Memory:   1024,
		Kernel:   kernel,
		Pipeline: PipelineConfig{Prefetch: 2, WriteBehind: 2},
		Workers:  workers,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	out := append([]int64(nil), keys...)
	m.Array().EnableTrace()
	rep, err := sort(m, out)
	if err != nil {
		t.Fatal(err)
	}
	return detRun{out: out, rep: rep, stats: normalizeStats(m.Array().Stats()), trace: m.Array().Trace()}
}

// TestKernelDeterminism proves the compute kernel is invisible to
// everything but the wall clock: for every algorithm, the comparison
// introsort and the LSD radix kernel — at one and eight workers —
// produce bit-identical output, pass counts, stats, and I/O traces.
func TestKernelDeterminism(t *testing.T) {
	const mem = 1024
	algs := []Algorithm{
		MemOnePass, ThreePassMesh, TwoPassMeshExpected, ThreePassLMM,
		TwoPassExpected, ThreePassExpected, SevenPass, SixPassExpected, SevenPassMesh,
	}
	for _, alg := range algs {
		t.Run(alg.String(), func(t *testing.T) {
			n := 8 * mem
			if alg == MemOnePass {
				n = mem
			}
			keys := workload.Uniform(n-257, -1<<40, 1<<40, 23+int64(alg)<<8)
			sort := func(m *Machine, k []int64) (*Report, error) { return m.Sort(k, alg) }
			ref := sortWithKernel(t, KernelComparison, 1, keys, sort)
			if !slices.IsSorted(ref.out) {
				t.Fatal("output not sorted")
			}
			for _, run := range []struct {
				kernel  string
				workers int
			}{
				{KernelComparison, 8},
				{KernelRadix, 1},
				{KernelRadix, 8},
			} {
				got := sortWithKernel(t, run.kernel, run.workers, keys, sort)
				assertIdenticalRuns(t, ref, got)
			}
		})
	}
}

// TestKernelDeterminismRadix covers the Section 7 RadixSort path (the
// external distribution sort, not the in-memory kernel of the same name).
func TestKernelDeterminismRadix(t *testing.T) {
	keys := workload.Uniform(9000, 0, (1<<20)-1, 77)
	sort := func(m *Machine, k []int64) (*Report, error) { return m.SortInts(k, 1<<20) }
	ref := sortWithKernel(t, KernelComparison, 1, keys, sort)
	for _, kernel := range []string{KernelComparison, KernelRadix} {
		for _, workers := range []int{1, 8} {
			assertIdenticalRuns(t, ref, sortWithKernel(t, kernel, workers, keys, sort))
		}
	}
}

// TestKernelDeterminismRecords pins the full-record path across kernels:
// sorted keys, permuted payload bytes, and the full accounting must match
// the comparison kernel bit for bit.  The narrow universe forces ties, so
// this also proves the radix run formation preserves the stable order the
// permutation layer depends on.
func TestKernelDeterminismRecords(t *testing.T) {
	n := 6000
	keys := workload.Uniform(n, 0, 1<<16, 5) // narrow universe forces ties
	rng := rand.New(rand.NewSource(31))
	payloads := make([][]byte, n)
	for i := range payloads {
		p := make([]byte, rng.Intn(25))
		rng.Read(p)
		payloads[i] = p
	}
	type recRun struct {
		detRun
		payloads [][]byte
	}
	run := func(kernel string, workers int) recRun {
		m, err := NewMachine(MachineConfig{Memory: 1024, Kernel: kernel, Workers: workers,
			Pipeline: PipelineConfig{Prefetch: 2, WriteBehind: 2}})
		if err != nil {
			t.Fatal(err)
		}
		defer m.Close()
		k := append([]int64(nil), keys...)
		p := make([][]byte, n)
		copy(p, payloads)
		m.Array().EnableTrace()
		rep, err := m.SortRecords(k, p, Auto)
		if err != nil {
			t.Fatal(err)
		}
		return recRun{
			detRun:   detRun{out: k, rep: rep, stats: normalizeStats(m.Array().Stats()), trace: m.Array().Trace()},
			payloads: p,
		}
	}
	ref := run(KernelComparison, 1)
	for _, cmp := range []recRun{run(KernelComparison, 8), run(KernelRadix, 1), run(KernelRadix, 8)} {
		assertIdenticalRuns(t, ref.detRun, cmp.detRun)
		for i := range ref.payloads {
			if !bytes.Equal(ref.payloads[i], cmp.payloads[i]) {
				t.Fatalf("payload %d differs between kernels", i)
			}
		}
		if ref.rep.PermutePasses != cmp.rep.PermutePasses ||
			ref.rep.PayloadWords != cmp.rep.PayloadWords ||
			ref.rep.KeyRounds != cmp.rep.KeyRounds {
			t.Fatalf("records accounting differs: ref %+v, got %+v", ref.rep, cmp.rep)
		}
	}
}
