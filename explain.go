package repro

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/plan"
)

// SortSpec describes a prospective sort for planning: the workload shape
// the cost model needs, without the data.
type SortSpec struct {
	// N is the key (record) count.
	N int `json:"n"`
	// PayloadBytes, when positive, plans a full-record sort whose records
	// carry payloads of (up to) this many bytes each: the external
	// permutation's distribution levels enter every candidate's prediction.
	PayloadBytes int `json:"payloadBytes,omitempty"`
	// PayloadWords, when positive, gives the exact total payload volume in
	// 8-byte words and overrides the PayloadBytes estimate (the scheduler
	// uses it once a job's payloads are materialized).
	PayloadWords int `json:"payloadWords,omitempty"`
	// Universe, when positive, hints integer keys in [0, Universe): the
	// Section 7 RadixSort becomes a candidate and is chosen (it is what
	// SortInts and universe-bearing jobs run).
	Universe int64 `json:"universe,omitempty"`
	// Presorted ∈ [0, 1] hints existing order (1 = fully sorted).  It
	// scales predicted compute time — the algorithms are oblivious, so
	// passes never change — and never changes the chosen algorithm.
	Presorted float64 `json:"presorted,omitempty"`
}

// planWorkload converts the spec to the planner's workload.
func (s SortSpec) planWorkload() plan.Workload {
	words := s.PayloadWords
	if words == 0 && s.PayloadBytes > 0 {
		words = s.N * ((s.PayloadBytes + 7) / 8)
	}
	return plan.Workload{N: s.N, PayloadWords: words, Universe: s.Universe, Presorted: s.Presorted}
}

// PlanCandidate is one row of the ranked plan table.  Algorithm is the
// short name ("exp2", "lmm3", "one", "radix", …) shared with
// ParseAlgorithm and the CLI; the analytic columns (passes, padded length,
// I/O words) are deterministic while the seconds columns come from the
// machine's calibration.
type PlanCandidate struct {
	Algorithm string `json:"algorithm"`
	Feasible  bool   `json:"feasible"`
	Reason    string `json:"reason,omitempty"`

	PaddedN       int     `json:"paddedN,omitempty"`
	ReadPasses    float64 `json:"readPasses,omitempty"`
	WritePasses   float64 `json:"writePasses,omitempty"`
	PermuteLevels int     `json:"permuteLevels,omitempty"`
	PermutePasses float64 `json:"permutePasses,omitempty"`
	IOWords       int64   `json:"ioWords,omitempty"`
	Steps         int64   `json:"steps,omitempty"`

	IOSeconds      float64 `json:"ioSeconds,omitempty"`
	ComputeSeconds float64 `json:"computeSeconds,omitempty"`
	Seconds        float64 `json:"seconds,omitempty"`
}

// PlanCalibration reports the measured rates a PlanReport priced with.
type PlanCalibration struct {
	ReadStepSeconds   float64 `json:"readStepSeconds"`
	WriteStepSeconds  float64 `json:"writeStepSeconds"`
	SortSecondsPerKey float64 `json:"sortSecondsPerKey"`
	Probed            bool    `json:"probed"`
	ProbeSeconds      float64 `json:"probeSeconds,omitempty"`
}

// BackendPlan is one row of Explain's backend ranking: the calibrated
// per-step cost of this machine's geometry on one available disk backend.
// File-backed machines rank both file backends (probing each once,
// cached); in-memory machines have the single "mem" row.
type BackendPlan struct {
	Backend          string  `json:"backend"`
	ReadStepSeconds  float64 `json:"readStepSeconds"`
	WriteStepSeconds float64 `json:"writeStepSeconds"`
	Probed           bool    `json:"probed"`
	// Chosen marks the backend this machine actually runs (the ranking is
	// advisory — switching backends never changes results, only seconds).
	Chosen bool `json:"chosen,omitempty"`
}

// KernelPlan is one row of Explain's kernel ranking: the calibrated
// in-memory sort rate of one compute kernel on this machine's pool width.
// Both kernels are probed (once, cached); the ranking is advisory —
// switching kernels never changes results, only seconds.
type KernelPlan struct {
	Kernel            string  `json:"kernel"`
	SortSecondsPerKey float64 `json:"sortSecondsPerKey"`
	Probed            bool    `json:"probed"`
	// Chosen marks the kernel this machine actually runs: the configured
	// one, or Auto's deterministic pick from the bare shape.
	Chosen bool `json:"chosen,omitempty"`
}

// PlanReport is Machine.Explain's answer: every candidate algorithm
// ranked by predicted wall time (feasible first), the calibration used,
// and the choice the stack will run.
type PlanReport struct {
	Spec SortSpec `json:"spec"`
	// Chosen is the short name of the algorithm the stack will run: the
	// Auto path's deterministic choice (or the forced algorithm / radix).
	// The table order is the calibrated ranking, which may place a
	// marginally cheaper candidate above Chosen on latency-heavy shapes.
	Chosen string `json:"chosen"`
	// ChosenAlgorithm is Chosen as an Algorithm value; valid only when
	// ChosenRadix is false (the radix path has no Algorithm — SortInts is
	// its entry point).
	ChosenAlgorithm Algorithm `json:"-"`
	ChosenRadix     bool      `json:"chosenRadix,omitempty"`

	Candidates  []PlanCandidate `json:"candidates"`
	Calibration PlanCalibration `json:"calibration"`
	// Backends ranks the disk backends available for this machine's
	// geometry, cheapest measured step cost first.
	Backends []BackendPlan `json:"backends,omitempty"`
	// Kernels ranks the compute kernels on this machine's pool width,
	// cheapest measured per-key sort cost first.
	Kernels []KernelPlan `json:"kernels,omitempty"`
}

// Candidate returns the row for the short algorithm name, nil when absent.
func (r *PlanReport) Candidate(name string) *PlanCandidate {
	for i := range r.Candidates {
		if r.Candidates[i].Algorithm == name {
			return &r.Candidates[i]
		}
	}
	return nil
}

// planContext assembles the planner's machine shape and its (cached)
// micro-calibration — a one-shot probe on a throwaway array of the same
// geometry and backend kind, shared process-wide per shape.  It is the
// single assembly point for both: Machine.Explain, Scheduler.Explain,
// and the per-job prediction all build here, so the shape fields and the
// calibration cache key can never drift apart.
func planContext(mem, d, b, workers int, alpha float64, latency time.Duration,
	backend plan.Backend, kernel plan.Kernel, pipe PipelineConfig) (plan.Shape, plan.Calibration) {
	shape := planShape(mem, d, alpha)
	shape.Workers = workers
	shape.BlockLatency = latency
	shape.Backend = backend
	shape.Kernel = kernel
	shape.Prefetch = pipe.Prefetch
	shape.WriteBehind = pipe.WriteBehind
	cal := plan.Calibrate(plan.ProbeConfig{
		D: d, B: b, Workers: workers,
		BlockLatency: latency,
		Backend:      backend,
		Kernel:       kernel,
	})
	return shape, cal
}

// rankBackends builds the backend ranking for a machine of the given
// geometry: every backend kind available for its storage mode is
// calibrated (one cached micro-probe per kind) and sorted by measured
// round-trip step cost, cheapest first.
func rankBackends(d, b, workers int, latency time.Duration, current plan.Backend, kernel plan.Kernel) []BackendPlan {
	kinds := []plan.Backend{plan.BackendMem}
	if current != plan.BackendMem {
		kinds = []plan.Backend{plan.BackendFile, plan.BackendMmap}
	}
	rows := make([]BackendPlan, 0, len(kinds))
	for _, k := range kinds {
		cal := plan.Calibrate(plan.ProbeConfig{
			D: d, B: b, Workers: workers,
			BlockLatency: latency,
			Backend:      k,
			Kernel:       kernel,
		})
		rows = append(rows, BackendPlan{
			Backend:          string(k),
			ReadStepSeconds:  cal.ReadStepSeconds,
			WriteStepSeconds: cal.WriteStepSeconds,
			Probed:           cal.Probed,
			Chosen:           k == current,
		})
	}
	sort.SliceStable(rows, func(i, j int) bool {
		return rows[i].ReadStepSeconds+rows[i].WriteStepSeconds <
			rows[j].ReadStepSeconds+rows[j].WriteStepSeconds
	})
	return rows
}

// rankKernels builds the kernel ranking the same way rankBackends ranks
// disk backends: every kernel is calibrated on this machine's geometry and
// backend (one cached micro-probe per kernel) and sorted by measured
// per-key sort cost, cheapest first.  The stable sort keeps the canonical
// plan.Kernels order on exact ties, so the table is deterministic under
// probe noise ties just like the candidate ranking.
func rankKernels(d, b, workers int, latency time.Duration, backend plan.Backend, current plan.Kernel) []KernelPlan {
	rows := make([]KernelPlan, 0, len(plan.Kernels))
	for _, k := range plan.Kernels {
		cal := plan.Calibrate(plan.ProbeConfig{
			D: d, B: b, Workers: workers,
			BlockLatency: latency,
			Backend:      backend,
			Kernel:       k,
		})
		rows = append(rows, KernelPlan{
			Kernel:            string(k),
			SortSecondsPerKey: cal.SortSecondsPerKey,
			Probed:            cal.Probed,
			Chosen:            k == current,
		})
	}
	sort.SliceStable(rows, func(i, j int) bool {
		return rows[i].SortSecondsPerKey < rows[j].SortSecondsPerKey
	})
	return rows
}

// Explain answers "what would this machine run, and why": it evaluates
// every candidate algorithm for the spec — predicted passes, the padded
// length each geometry forces, I/O words, permutation levels for record
// sorts, and calibrated wall time — and returns the table ranked by
// predicted seconds, with Chosen naming the algorithm Auto (or SortInts,
// for universe specs) will actually run.  Chosen is Auto's deterministic
// fixed-calibration choice; on latency-heavy shapes the calibrated
// ranking can prefer a different candidate at the margin, in which case
// the table's first row is that cheaper candidate and callers wanting it
// select it explicitly.
func (m *Machine) Explain(spec SortSpec) (*PlanReport, error) {
	if spec.N <= 0 {
		return nil, fmt.Errorf("repro: SortSpec.N = %d, want > 0", spec.N)
	}
	backend := backendKind(m.cfg.Dir != "", m.cfg.Backend)
	kernel := kernelKind(m.cfg.Kernel, m.a.Mem())
	shape, cal := planContext(m.a.Mem(), m.a.D(), m.a.B(), m.a.Workers(), m.alpha,
		m.cfg.BlockLatency, backend, kernel, m.cfg.Pipeline)
	r, err := plan.Explain(shape, spec.planWorkload(), cal)
	if err != nil {
		return nil, err
	}
	out := convertPlan(spec, r)
	out.Backends = rankBackends(m.a.D(), m.a.B(), m.a.Workers(), m.cfg.BlockLatency, backend, kernel)
	out.Kernels = rankKernels(m.a.D(), m.a.B(), m.a.Workers(), m.cfg.BlockLatency, backend, kernel)
	if spec.Universe == 0 {
		// Pin the choice to the Auto path: what Sort(keys, Auto) on this
		// machine will actually run, whatever the calibrated ranking says.
		out.setChosen(m.Plan(spec.N))
	}
	return out, nil
}

// setChosen points the report's choice at alg (the Auto path's pick, or
// a forced algorithm).
func (r *PlanReport) setChosen(alg Algorithm) {
	r.Chosen = string(alg.planAlg())
	r.ChosenAlgorithm = alg
	r.ChosenRadix = false
}

// convertPlan maps the internal report onto the facade types.
func convertPlan(spec SortSpec, r *plan.Report) *PlanReport {
	out := &PlanReport{
		Spec:   spec,
		Chosen: string(r.Chosen),
		Calibration: PlanCalibration{
			ReadStepSeconds:   r.Cal.ReadStepSeconds,
			WriteStepSeconds:  r.Cal.WriteStepSeconds,
			SortSecondsPerKey: r.Cal.SortSecondsPerKey,
			Probed:            r.Cal.Probed,
			ProbeSeconds:      r.Cal.ProbeSeconds,
		},
	}
	if alg, ok := algFromPlan(r.Chosen); ok {
		out.ChosenAlgorithm = alg
	} else {
		out.ChosenRadix = true
	}
	for _, c := range r.Candidates {
		out.Candidates = append(out.Candidates, PlanCandidate{
			Algorithm:      string(c.Alg),
			Feasible:       c.Feasible,
			Reason:         c.Reason,
			PaddedN:        c.PaddedN,
			ReadPasses:     c.ReadPasses,
			WritePasses:    c.WritePasses,
			PermuteLevels:  c.PermuteLevels,
			PermutePasses:  c.PermutePasses,
			IOWords:        c.IOWords,
			Steps:          c.Steps,
			IOSeconds:      c.IOSeconds,
			ComputeSeconds: c.ComputeSeconds,
			Seconds:        c.Seconds,
		})
	}
	return out
}
