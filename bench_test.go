// Benchmarks regenerating every experiment of EXPERIMENTS.md (E01–E16, one
// per theorem/lemma/observation of the paper, plus the A1–A5 design
// ablations) and micro-benchmarks of the kernels.  Run:
//
//	go test -bench=. -benchmem
//
// The Benchmark bodies call the same internal/experiments generators as
// cmd/experiments, so `-bench` output and the printed tables cannot drift.
package repro

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/memsort"
	"repro/internal/par"
	"repro/internal/pdm"
	"repro/internal/report"
	"repro/internal/stream"
	"repro/internal/workload"
)

// benchTable runs a table generator b.N times, reporting rows/op so the
// benchmark fails loudly if a generator errors.
func benchTable(b *testing.B, gen func() (*report.Table, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		tb, err := gen()
		if err != nil {
			b.Fatal(err)
		}
		if tb.Rows() == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkE01LowerBound(b *testing.B) {
	benchTable(b, experiments.E01LowerBound)
}

func BenchmarkE02ThreePass1(b *testing.B) {
	benchTable(b, func() (*report.Table, error) { return experiments.E02ThreePass1([]int{1024}) })
}

func BenchmarkE03ExpTwoPassMesh(b *testing.B) {
	benchTable(b, func() (*report.Table, error) { return experiments.E03ExpTwoPassMesh(1024, 5) })
}

func BenchmarkE04ZeroOne(b *testing.B) {
	benchTable(b, experiments.E04ZeroOne)
}

func BenchmarkE05ThreePass2(b *testing.B) {
	benchTable(b, func() (*report.Table, error) { return experiments.E05ThreePass2([]int{1024}) })
}

func BenchmarkE06ShuffleLemma(b *testing.B) {
	benchTable(b, func() (*report.Table, error) { return experiments.E06ShuffleLemma(5) })
}

func BenchmarkE07ExpectedTwoPass(b *testing.B) {
	benchTable(b, func() (*report.Table, error) { return experiments.E07ExpectedTwoPass([]int{1024}, 5) })
}

func BenchmarkE08ModColumnsort(b *testing.B) {
	benchTable(b, func() (*report.Table, error) { return experiments.E08ModColumnsort(1024, 5) })
}

func BenchmarkE09ExpectedThreePass(b *testing.B) {
	benchTable(b, func() (*report.Table, error) { return experiments.E09ExpectedThreePass(1024, 5) })
}

func BenchmarkE10SevenPass(b *testing.B) {
	benchTable(b, func() (*report.Table, error) { return experiments.E10SevenPass([]int{1024}) })
}

func BenchmarkE11ExpectedSixPass(b *testing.B) {
	benchTable(b, func() (*report.Table, error) { return experiments.E11ExpectedSixPass(1024, 5) })
}

func BenchmarkE12IntegerSort(b *testing.B) {
	benchTable(b, func() (*report.Table, error) { return experiments.E12IntegerSort(1024, 5) })
}

func BenchmarkE13RadixSort(b *testing.B) {
	benchTable(b, func() (*report.Table, error) { return experiments.E13RadixSort(1024) })
}

func BenchmarkE14Subblock(b *testing.B) {
	benchTable(b, func() (*report.Table, error) { return experiments.E14Subblock(4096) })
}

func BenchmarkE15Summary(b *testing.B) {
	benchTable(b, func() (*report.Table, error) { return experiments.E15Summary(4096) })
}

func BenchmarkE16Multiway(b *testing.B) {
	benchTable(b, func() (*report.Table, error) { return experiments.E16Multiway(1024) })
}

func BenchmarkAblationA1CleanupWindow(b *testing.B) {
	benchTable(b, func() (*report.Table, error) { return experiments.A1CleanupWindow(5) })
}

func BenchmarkAblationA2SnakeDirection(b *testing.B) {
	benchTable(b, func() (*report.Table, error) { return experiments.A2SnakeDirection(5) })
}

func BenchmarkAblationA3IntegerStriping(b *testing.B) {
	benchTable(b, experiments.A3IntegerStriping)
}

func BenchmarkAblationA4MergeKernel(b *testing.B) {
	benchTable(b, experiments.A4MergeKernel)
}

func BenchmarkAblationA5Detection(b *testing.B) {
	benchTable(b, experiments.A5Detection)
}

// --- direct algorithm benchmarks (keys/op at headline capacity) ---

func benchAlgorithm(b *testing.B, m int, n int, run func(a *pdm.Array, in *pdm.Stripe) (*core.Result, error)) {
	bsz := memsort.Isqrt(m)
	benchAlgorithmD(b, m, bsz/4, n, run)
}

func benchAlgorithmD(b *testing.B, m, d, n int, run func(a *pdm.Array, in *pdm.Stripe) (*core.Result, error)) {
	b.Helper()
	bsz := memsort.Isqrt(m)
	a, err := pdm.New(pdm.Config{D: d, B: bsz, Mem: m})
	if err != nil {
		b.Fatal(err)
	}
	data := workload.Perm(n, 1)
	in, err := a.NewStripe(n)
	if err != nil {
		b.Fatal(err)
	}
	if err := in.Load(data); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(8 * n))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.ResetStats()
		res, err := run(a, in)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.ReadPasses, "read-passes")
			b.ReportMetric(res.WritePasses, "write-passes")
		}
		res.Out.Free()
	}
}

func BenchmarkSortThreePass1(b *testing.B) {
	benchAlgorithm(b, 1024, 1024*32, core.ThreePass1)
}

func BenchmarkSortThreePass2(b *testing.B) {
	benchAlgorithm(b, 1024, 1024*32, core.ThreePass2)
}

func BenchmarkSortExpectedTwoPass(b *testing.B) {
	n1 := core.ExpectedTwoPassRuns(1024, 1)
	benchAlgorithm(b, 1024, n1*1024, core.ExpectedTwoPass)
}

func BenchmarkSortSevenPass(b *testing.B) {
	benchAlgorithm(b, 1024, 1024*1024, core.SevenPass)
}

func BenchmarkSortSevenPassMesh(b *testing.B) {
	benchAlgorithm(b, 1024, 1024*1024, core.SevenPassMesh)
}

func BenchmarkSortExpectedSixPass(b *testing.B) {
	// D = 4 so l = 4 superruns reach full disk occupancy while staying
	// inside the per-segment ExpectedTwoPass window (exactly 6 passes).
	benchAlgorithmD(b, 1024, 4, 16*1024, core.ExpectedSixPass)
}

func BenchmarkSortRadix(b *testing.B) {
	benchAlgorithm(b, 1024, 1024*256, func(a *pdm.Array, in *pdm.Stripe) (*core.Result, error) {
		return core.RadixSort(a, in, 1<<30)
	})
}

func BenchmarkSortMultiwayBaseline(b *testing.B) {
	benchAlgorithm(b, 1024, 1024*32, baseline.MultiwayMergeSort)
}

func BenchmarkSortColumnsortBaseline(b *testing.B) {
	a, err := pdm.New(pdm.Config{D: 8, B: 16, Mem: 4096})
	if err != nil {
		b.Fatal(err)
	}
	r, s, err := baseline.ColumnsortGeometry(4096, 16)
	if err != nil {
		b.Fatal(err)
	}
	data := workload.Perm(r*s, 1)
	in, err := a.NewStripe(r * s)
	if err != nil {
		b.Fatal(err)
	}
	if err := in.Load(data); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(8 * r * s))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.ResetStats()
		res, err := baseline.Columnsort(a, in, r, s)
		if err != nil {
			b.Fatal(err)
		}
		res.Out.Free()
	}
}

// --- streaming pipeline benchmarks ---
//
// One read-sort-write pass over N keys, as a synchronous ReadAt/WriteAt
// loop versus stream.Pipe, across disk backends.  The pass accounting is
// identical by construction; the wall-clock difference is the overlap win.
//
// "mem" and "file" are CPU-speed backends (MemDisk memcpy, page-cached
// files): they check that the pipeline costs ~nothing when there is no
// latency to hide — on a single-CPU host there is nothing to overlap with.
// "slowfile" adds a modeled 50µs per-block device latency to the file
// disks (pdm.LatencyDisk); that wait parks goroutines, so prefetch and
// write-behind hide it just as on real hardware, and Pipe pulls ahead.

func benchPassArray(b *testing.B, backend string, pipelined bool) *pdm.Array {
	b.Helper()
	const m = 4096 // B = 64, D = 16
	cfg := pdm.Config{D: 16, B: 64, Mem: m}
	if pipelined {
		cfg.Pipeline = pdm.PipelineConfig{Prefetch: 16, WriteBehind: 8}
	}
	var (
		a   *pdm.Array
		err error
	)
	switch backend {
	case "mem":
		a, err = pdm.New(cfg)
	case "file":
		a, err = pdm.NewFileArray(cfg, b.TempDir())
	case "slowfile":
		dir := b.TempDir()
		disks := make([]pdm.Disk, cfg.D)
		for i := range disks {
			fd, ferr := pdm.NewFileDisk(fmt.Sprintf("%s/disk%04d.bin", dir, i), cfg.B)
			if ferr != nil {
				b.Fatal(ferr)
			}
			disks[i] = pdm.LatencyDisk{Disk: fd, PerBlock: 50 * time.Microsecond}
		}
		a, err = pdm.NewWithDisks(cfg, disks)
	default:
		b.Fatalf("unknown backend %q", backend)
	}
	if err != nil {
		b.Fatal(err)
	}
	return a
}

func benchPass(b *testing.B, backend string, pipelined bool) {
	b.Helper()
	const (
		m = 4096
		n = 64 * m
	)
	a := benchPassArray(b, backend, pipelined)
	defer a.Close()
	src, err := a.NewStripe(n)
	if err != nil {
		b.Fatal(err)
	}
	if err := src.Load(workload.Perm(n, 11)); err != nil {
		b.Fatal(err)
	}
	dst, err := a.NewStripe(n)
	if err != nil {
		b.Fatal(err)
	}
	buf := a.Arena().MustAlloc(m)
	defer a.Arena().Free(buf)
	sortChunk := func(off int, chunk []int64) error {
		memsort.Keys(chunk)
		return nil
	}
	b.SetBytes(int64(8 * n))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if pipelined {
			if err := stream.Pipe(src, dst, buf, sortChunk); err != nil {
				b.Fatal(err)
			}
		} else {
			for off := 0; off < n; off += m {
				if err := src.ReadAt(off, buf); err != nil {
					b.Fatal(err)
				}
				memsort.Keys(buf)
				if err := dst.WriteAt(off, buf); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	b.StopTimer()
	if st := a.Stats(); pipelined {
		b.ReportMetric(st.Overlap(), "overlap")
	}
}

func BenchmarkPassMemDiskSyncLoop(b *testing.B)  { benchPass(b, "mem", false) }
func BenchmarkPassMemDiskPipe(b *testing.B)      { benchPass(b, "mem", true) }
func BenchmarkPassFileDiskSyncLoop(b *testing.B) { benchPass(b, "file", false) }
func BenchmarkPassFileDiskPipe(b *testing.B)     { benchPass(b, "file", true) }
func BenchmarkPassSlowDiskSyncLoop(b *testing.B) { benchPass(b, "slowfile", false) }
func BenchmarkPassSlowDiskPipe(b *testing.B)     { benchPass(b, "slowfile", true) }

// The same comparison at the whole-algorithm level: ThreePass2 on file
// disks with modeled device latency, synchronous versus pipelined.
func benchThreePass2File(b *testing.B, pipe pdm.PipelineConfig) {
	b.Helper()
	const m = 1024
	cfg := pdm.Config{D: 8, B: 32, Mem: m, Pipeline: pipe}
	dir := b.TempDir()
	disks := make([]pdm.Disk, cfg.D)
	for i := range disks {
		fd, ferr := pdm.NewFileDisk(fmt.Sprintf("%s/disk%04d.bin", dir, i), cfg.B)
		if ferr != nil {
			b.Fatal(ferr)
		}
		disks[i] = pdm.LatencyDisk{Disk: fd, PerBlock: 50 * time.Microsecond}
	}
	a, err := pdm.NewWithDisks(cfg, disks)
	if err != nil {
		b.Fatal(err)
	}
	defer a.Close()
	n := m * 32
	in, err := a.NewStripe(n)
	if err != nil {
		b.Fatal(err)
	}
	if err := in.Load(workload.Perm(n, 13)); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(8 * n))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.ThreePass2(a, in)
		if err != nil {
			b.Fatal(err)
		}
		res.Out.Free()
	}
}

func BenchmarkSortThreePass2SlowDiskSync(b *testing.B) {
	benchThreePass2File(b, pdm.PipelineConfig{})
}

func BenchmarkSortThreePass2SlowDiskPipelined(b *testing.B) {
	benchThreePass2File(b, pdm.PipelineConfig{Prefetch: 8, WriteBehind: 8})
}

// --- worker-pool compute benchmarks ---
//
// Each pair runs the same kernel or algorithm with Workers=1 versus
// Workers=NumCPU; the outputs are bit-identical by construction (the
// determinism tests assert it), so the wall-clock delta is pure compute
// parallelism.  On a single-CPU host the pairs are within noise of each
// other; the speedup materializes with the cores.

func workerWidths() []int {
	w := runtime.NumCPU()
	if w < 4 {
		w = 4 // exercise the parallel paths even on small hosts
	}
	return []int{1, w}
}

// BenchmarkWorkersRunFormation is the run-formation kernel: sorting one
// memory load, exactly what pass 1 of every algorithm does per chunk.
func BenchmarkWorkersRunFormation(b *testing.B) {
	const n = 1 << 20
	src := workload.Perm(n, 21)
	buf := make([]int64, n)
	scratch := make([]int64, n)
	for _, w := range workerWidths() {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			pool := par.New(w)
			b.SetBytes(int64(8 * n))
			for i := 0; i < b.N; i++ {
				copy(buf, src)
				pool.SortKeysScratch(buf, scratch)
			}
			if !memsort.IsSorted(buf) {
				b.Fatal("not sorted")
			}
		})
	}
}

// BenchmarkWorkersMultiMerge is the k-way merge kernel: the loser tree's
// output range cut by splitters across the workers.
func BenchmarkWorkersMultiMerge(b *testing.B) {
	const (
		k   = 64
		per = 1 << 14
	)
	lanes := make([][]int64, k)
	for i := range lanes {
		lane := workload.Uniform(per, 0, 1<<30, int64(i))
		memsort.Keys(lane)
		lanes[i] = lane
	}
	dst := make([]int64, k*per)
	for _, w := range workerWidths() {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			pool := par.New(w)
			b.SetBytes(int64(8 * k * per))
			for i := 0; i < b.N; i++ {
				pool.MultiMerge(dst, lanes)
			}
		})
	}
}

// BenchmarkWorkersEndToEnd is the whole-algorithm pair on a compute-
// dominated configuration: ThreePass2 at M = 65536 on latency-modeled file
// disks with the pipeline hiding the I/O, so the in-memory sorts and
// merges dominate the wall clock.
func BenchmarkWorkersEndToEnd(b *testing.B) {
	const m = 65536 // B = 256, D = 64
	for _, workers := range workerWidths() {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			cfg := pdm.Config{D: 64, B: 256, Mem: m,
				Pipeline: pdm.PipelineConfig{Prefetch: 2, WriteBehind: 2},
				Workers:  workers}
			dir := b.TempDir()
			disks := make([]pdm.Disk, cfg.D)
			for i := range disks {
				fd, ferr := pdm.NewFileDisk(fmt.Sprintf("%s/disk%04d.bin", dir, i), cfg.B)
				if ferr != nil {
					b.Fatal(ferr)
				}
				disks[i] = pdm.LatencyDisk{Disk: fd, PerBlock: 20 * time.Microsecond}
			}
			a, err := pdm.NewWithDisks(cfg, disks)
			if err != nil {
				b.Fatal(err)
			}
			defer a.Close()
			n := 16 * m
			in, err := a.NewStripe(n)
			if err != nil {
				b.Fatal(err)
			}
			if err := in.Load(workload.Perm(n, 23)); err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(8 * n))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := core.ThreePass2(a, in)
				if err != nil {
					b.Fatal(err)
				}
				res.Out.Free()
			}
			b.StopTimer()
			st := a.Stats()
			b.ReportMetric(st.WorkerUtilization(workers), "utilization")
		})
	}
}

// --- kernel micro-benchmarks ---

func BenchmarkKernelSort(b *testing.B) {
	for _, n := range []int{1 << 10, 1 << 16} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			src := workload.Perm(n, 2)
			buf := make([]int64, n)
			b.SetBytes(int64(8 * n))
			for i := 0; i < b.N; i++ {
				copy(buf, src)
				memsort.Keys(buf)
			}
		})
	}
}

func BenchmarkKernelLoserTree(b *testing.B) {
	for _, k := range []int{8, 64} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			per := 1 << 12
			lanes := make([][]int64, k)
			for i := range lanes {
				lane := workload.Uniform(per, 0, 1<<30, int64(i))
				memsort.Keys(lane)
				lanes[i] = lane
			}
			dst := make([]int64, k*per)
			b.SetBytes(int64(8 * k * per))
			for i := 0; i < b.N; i++ {
				memsort.MultiMerge(dst, lanes)
			}
		})
	}
}

func BenchmarkKernelSymMerge(b *testing.B) {
	n := 1 << 16
	src := make([]int64, n)
	half := workload.Perm(n/2, 3)
	memsort.Keys(half)
	copy(src, half)
	half2 := workload.Perm(n/2, 4)
	memsort.Keys(half2)
	copy(src[n/2:], half2)
	buf := make([]int64, n)
	b.SetBytes(int64(8 * n))
	for i := 0; i < b.N; i++ {
		copy(buf, src)
		memsort.SymMerge(buf, n/2)
	}
}

func BenchmarkFacadeSortAuto(b *testing.B) {
	m, err := NewMachine(MachineConfig{Memory: 4096})
	if err != nil {
		b.Fatal(err)
	}
	defer m.Close()
	src := workload.Perm(4096*16, 5)
	keys := make([]int64, len(src))
	b.SetBytes(int64(8 * len(src)))
	for i := 0; i < b.N; i++ {
		copy(keys, src)
		if _, err := m.Sort(keys, Auto); err != nil {
			b.Fatal(err)
		}
	}
}
