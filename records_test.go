package repro

import (
	"slices"
	"sort"
	"testing"

	"repro/internal/workload"
)

func TestSortPairs(t *testing.T) {
	m := newTestMachine(t, 256)
	n := 3000
	keys := workload.Uniform(n, 0, 99, 4) // many duplicates: stability matters
	payloads := make([]int64, n)
	for i := range payloads {
		payloads[i] = int64(i) * 10
	}
	type rec struct{ k, p int64 }
	want := make([]rec, n)
	for i := range want {
		want[i] = rec{keys[i], payloads[i]}
	}
	sort.SliceStable(want, func(i, j int) bool { return want[i].k < want[j].k })

	rep, err := m.SortPairs(keys, payloads, Auto)
	if err != nil {
		t.Fatal(err)
	}
	if rep.N != n {
		t.Fatalf("report N = %d", rep.N)
	}
	for i := range want {
		if keys[i] != want[i].k || payloads[i] != want[i].p {
			t.Fatalf("record %d = (%d, %d), want (%d, %d) — stability or pairing broken",
				i, keys[i], payloads[i], want[i].k, want[i].p)
		}
	}
}

func TestSortPairsValidation(t *testing.T) {
	m := newTestMachine(t, 256)
	if _, err := m.SortPairs([]int64{1}, []int64{1, 2}, Auto); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := m.SortPairs([]int64{-1}, []int64{0}, Auto); err == nil {
		t.Fatal("negative key accepted")
	}
	if _, err := m.SortPairs([]int64{1 << 32}, []int64{0}, Auto); err == nil {
		t.Fatal("oversized key accepted")
	}
}

func TestSortPairsAllAlgorithms(t *testing.T) {
	m := newTestMachine(t, 256)
	n := 1024
	for _, alg := range []Algorithm{ThreePassMesh, ThreePassLMM, SevenPass, SevenPassMesh} {
		keys := workload.Uniform(n, 0, 9, int64(alg))
		payloads := workload.Perm(n, int64(alg)+100)
		pairSum := int64(0)
		for i := range keys {
			pairSum += keys[i] ^ payloads[i]
		}
		if _, err := m.SortPairs(keys, payloads, alg); err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if !slices.IsSorted(keys) {
			t.Fatalf("%v: keys not sorted", alg)
		}
		// The key-payload pairing must survive (checksum of XOR pairs).
		gotSum := int64(0)
		for i := range keys {
			gotSum += keys[i] ^ payloads[i]
		}
		if gotSum != pairSum {
			t.Fatalf("%v: records torn apart", alg)
		}
	}
}
