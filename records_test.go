package repro

import (
	"bytes"
	"context"
	"fmt"
	"math"
	"math/rand"
	"slices"
	"sort"
	"testing"

	"repro/internal/workload"
)

func TestSortPairs(t *testing.T) {
	m := newTestMachine(t, 256)
	n := 3000
	keys := workload.Uniform(n, 0, 99, 4) // many duplicates: stability matters
	payloads := make([]int64, n)
	for i := range payloads {
		payloads[i] = int64(i) * 10
	}
	type rec struct{ k, p int64 }
	want := make([]rec, n)
	for i := range want {
		want[i] = rec{keys[i], payloads[i]}
	}
	sort.SliceStable(want, func(i, j int) bool { return want[i].k < want[j].k })

	rep, err := m.SortPairs(keys, payloads, Auto)
	if err != nil {
		t.Fatal(err)
	}
	if rep.N != n {
		t.Fatalf("report N = %d", rep.N)
	}
	for i := range want {
		if keys[i] != want[i].k || payloads[i] != want[i].p {
			t.Fatalf("record %d = (%d, %d), want (%d, %d) — stability or pairing broken",
				i, keys[i], payloads[i], want[i].k, want[i].p)
		}
	}
}

func TestSortPairsValidation(t *testing.T) {
	m := newTestMachine(t, 256)
	if _, err := m.SortPairs([]int64{1}, []int64{1, 2}, Auto); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := m.SortPairs([]int64{-1}, []int64{0}, Auto); err == nil {
		t.Fatal("negative key accepted")
	}
	if _, err := m.SortPairs([]int64{1 << 32}, []int64{0}, Auto); err == nil {
		t.Fatal("oversized key accepted")
	}
}

// sortedReference stably sorts (key, payload) records in memory.
func sortedReference(keys []int64, payloads [][]byte) ([]int64, [][]byte) {
	type rec struct {
		k int64
		p []byte
	}
	recs := make([]rec, len(keys))
	for i := range recs {
		recs[i] = rec{keys[i], payloads[i]}
	}
	sort.SliceStable(recs, func(i, j int) bool { return recs[i].k < recs[j].k })
	outK := make([]int64, len(keys))
	outP := make([][]byte, len(keys))
	for i, r := range recs {
		outK[i], outP[i] = r.k, r.p
	}
	return outK, outP
}

func genTestPayloads(n, maxLen int, seed int64) [][]byte {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]byte, n)
	for i := range out {
		p := make([]byte, rng.Intn(maxLen+1))
		rng.Read(p)
		out[i] = p
	}
	return out
}

func checkRecords(t *testing.T, wantK []int64, wantP [][]byte, gotK []int64, gotP [][]byte) {
	t.Helper()
	for i := range wantK {
		if gotK[i] != wantK[i] || !bytes.Equal(gotP[i], wantP[i]) {
			t.Fatalf("record %d = (%d, %x), want (%d, %x) — stability or pairing broken",
				i, gotK[i], gotP[i], wantK[i], wantP[i])
		}
	}
}

func TestSortRecordsVariableWidth(t *testing.T) {
	m := newTestMachine(t, 256)
	n := 3000
	keys := workload.Uniform(n, 0, 99, 4) // duplicates: stability matters
	payloads := genTestPayloads(n, 24, 9)
	wantK, wantP := sortedReference(keys, payloads)
	rep, err := m.SortRecords(keys, payloads, Auto)
	if err != nil {
		t.Fatal(err)
	}
	if rep.N != n || rep.KeyRounds != 1 {
		t.Fatalf("report N = %d, KeyRounds = %d", rep.N, rep.KeyRounds)
	}
	if rep.PayloadWords == 0 || rep.PermutePasses <= 0 {
		t.Fatalf("permutation not accounted: %d words, %.3f passes", rep.PayloadWords, rep.PermutePasses)
	}
	// The permutation's I/O must be folded into the report's raw stats:
	// strictly more steps than the key sort alone charges over PaddedN.
	minKeySortSteps := int64(rep.PaddedN / (m.Array().D() * m.Array().B()))
	if rep.IO.ReadSteps <= minKeySortSteps {
		t.Fatalf("report I/O %+v does not include the permutation", rep.IO)
	}
	checkRecords(t, wantK, wantP, keys, payloads)
}

// TestSortRecordsWideKeys drives the LSD path: keys spanning the full
// int64 range (negatives included) cannot share a word with the index, so
// the layer runs multiple packed digit rounds.
func TestSortRecordsWideKeys(t *testing.T) {
	m := newTestMachine(t, 256)
	n := 2000
	rng := rand.New(rand.NewSource(17))
	keys := make([]int64, n)
	for i := range keys {
		switch i % 5 {
		case 0:
			keys[i] = -rng.Int63() // negative half
		case 1:
			keys[i] = math.MinInt64 + int64(rng.Intn(3))
		case 2:
			keys[i] = math.MaxInt64 - 1 - int64(rng.Intn(3))
		default:
			keys[i] = rng.Int63()
		}
	}
	payloads := genTestPayloads(n, 16, 23)
	wantK, wantP := sortedReference(keys, payloads)
	rep, err := m.SortRecords(keys, payloads, Auto)
	if err != nil {
		t.Fatal(err)
	}
	if rep.KeyRounds < 2 {
		t.Fatalf("full-width keys sorted in %d round(s)", rep.KeyRounds)
	}
	checkRecords(t, wantK, wantP, keys, payloads)
}

func TestSortRecordsStabilityOnEqualKeys(t *testing.T) {
	m := newTestMachine(t, 256)
	n := 1500
	keys := make([]int64, n) // all equal: output must be the identity
	payloads := make([][]byte, n)
	for i := range payloads {
		payloads[i] = []byte(fmt.Sprintf("rec-%05d", i))
	}
	if _, err := m.SortRecords(keys, payloads, Auto); err != nil {
		t.Fatal(err)
	}
	for i := range payloads {
		if want := fmt.Sprintf("rec-%05d", i); string(payloads[i]) != want {
			t.Fatalf("payload %d = %q, want %q", i, payloads[i], want)
		}
	}
}

// TestSortRecordsErrorLeavesInputUntouched: a failed run must not leave
// the caller with keys reordered away from their payloads.
func TestSortRecordsErrorLeavesInputUntouched(t *testing.T) {
	m := newTestMachine(t, 256)
	n := 2000
	keys := workload.Uniform(n, 0, 999, 8)
	payloads := genTestPayloads(n, 12, 3)
	wantK := append([]int64(nil), keys...)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := m.SortRecordsContext(ctx, keys, payloads, Auto); err == nil {
		t.Fatal("canceled sort succeeded")
	}
	if !slices.Equal(keys, wantK) {
		t.Fatal("failed sort mutated the caller's keys")
	}
	if m.Array().Arena().InUse() != 0 {
		t.Fatal("failed sort leaked arena memory")
	}
}

func TestSortRecordsValidation(t *testing.T) {
	m := newTestMachine(t, 256)
	if _, err := m.SortRecords([]int64{1}, [][]byte{{1}, {2}}, Auto); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := m.SortRecords(nil, nil, Auto); err == nil {
		t.Fatal("empty input accepted")
	}
}

// TestPackingBoundary exercises the 2^30-record boundary logic at the
// unit level (no 8 GiB allocation): the planner must give exactly 2^30
// records a 30-bit index field and a 32-bit key field — SortPairs' legacy
// packing — with every packed value below the MaxInt64 sentinel, and the
// pair-count guard must accept exactly 2^30 but reject one more.
func TestPackingBoundary(t *testing.T) {
	pp, err := planPacking(1 << 30)
	if err != nil {
		t.Fatal(err)
	}
	if pp.idxBits != pairIdxBits || pp.keyBits != pairKeyBits {
		t.Fatalf("2^30 records plan = %d idx bits, %d key bits; want %d and %d",
			pp.idxBits, pp.keyBits, pairIdxBits, pairKeyBits)
	}
	maxKey := pp.keyLimit - 1  // 2^32 − 1
	maxIdx := int64(1)<<30 - 1 // last of exactly 2^30 indices
	packed := maxKey<<pp.idxBits | maxIdx
	if packed >= math.MaxInt64 {
		t.Fatalf("maximal packed word %d collides with the padding sentinel", packed)
	}
	if got := packed & pp.idxMask; got != maxIdx {
		t.Fatalf("unpacked index %d, want %d", got, maxIdx)
	}
	if got := packed >> pp.idxBits; got != maxKey {
		t.Fatalf("unpacked key %d, want %d", got, maxKey)
	}
	// The off-by-one: exactly 2^30 records are inside the contract.
	if !pairCountOK(1 << 30) {
		t.Fatal("exactly 2^30 records rejected — the off-by-one is back")
	}
	if pairCountOK(1<<30 + 1) {
		t.Fatal("2^30+1 records accepted")
	}
	// One record more halves the key field, never corrupts it.
	pp2, err := planPacking(1<<30 + 1)
	if err != nil {
		t.Fatal(err)
	}
	if pp2.idxBits != 31 || pp2.keyBits != packedSortBits-31 {
		t.Fatalf("2^30+1 records plan = %+v", pp2)
	}
	// Single-record degenerate plan: no index bits needed.
	pp1, err := planPacking(1)
	if err != nil {
		t.Fatal(err)
	}
	if pp1.idxBits != 0 || pp1.rounds() != 2 {
		t.Fatalf("1-record plan = %+v (rounds %d)", pp1, pp1.rounds())
	}
}

// TestSortRecordsMillionBitIdentical is the acceptance run for the
// records layer: 2^20 variable-width byte records, sorted on dedicated
// machines with Workers=1 and Workers=8 and through the scheduler, must
// produce bit-identical keys and payload bytes, with the permutation
// pass's I/O charged in the report.
func TestSortRecordsMillionBitIdentical(t *testing.T) {
	const n = 1 << 20
	const mem = 16384 // sqrt(M)=128; ThreePass2 capacity M*sqrt(M) = 2^21
	keys := workload.Uniform(n, 0, 1<<40, 1)
	rng := rand.New(rand.NewSource(2))
	payloads := make([][]byte, n)
	for i := range payloads {
		p := make([]byte, rng.Intn(13)) // 0..12 bytes, variable width
		rng.Read(p)
		payloads[i] = p
	}

	type run struct {
		keys     []int64
		payloads [][]byte
		rep      *Report
	}
	dedicated := func(workers int) run {
		m, err := NewMachine(MachineConfig{Memory: mem, Workers: workers,
			Pipeline: PipelineConfig{Prefetch: 2, WriteBehind: 2}})
		if err != nil {
			t.Fatal(err)
		}
		defer m.Close()
		k := append([]int64(nil), keys...)
		p := make([][]byte, n)
		copy(p, payloads)
		rep, err := m.SortRecords(k, p, ThreePassLMM)
		if err != nil {
			t.Fatal(err)
		}
		return run{k, p, rep}
	}
	serial := dedicated(1)
	parallel := dedicated(8)

	// Scheduler run: same geometry, same pipeline, same worker width.
	s, err := NewScheduler(SchedulerConfig{
		Memory:     80000,
		DiskBudget: 8 << 20, // the payload spill needs more than 64x mem
		Workers:    8,
		JobMemory:  mem,
		Pipeline:   PipelineConfig{Prefetch: 2, WriteBehind: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	id, err := s.Submit(JobSpec{
		Keys:      append([]int64(nil), keys...),
		Payloads:  append([][]byte(nil), payloads...),
		Algorithm: ThreePassLMM,
		Workers:   8,
		KeepKeys:  true,
		Label:     "records-acceptance",
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := s.Wait(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != JobDone {
		t.Fatalf("scheduler job finished %s: %s", st.State, st.Error)
	}
	schedKeys, schedPayloads, err := s.SortedRecords(id)
	if err != nil {
		t.Fatal(err)
	}

	if !slices.IsSorted(serial.keys) {
		t.Fatal("output keys not sorted")
	}
	for name, other := range map[string]run{
		"workers=8": parallel,
		"scheduler": {schedKeys, schedPayloads, st.Report},
	} {
		if !slices.Equal(serial.keys, other.keys) {
			t.Fatalf("%s: keys differ from the workers=1 run", name)
		}
		for i := range serial.payloads {
			if !bytes.Equal(serial.payloads[i], other.payloads[i]) {
				t.Fatalf("%s: payload %d differs from the workers=1 run", name, i)
			}
		}
		rep := other.rep
		if rep == nil {
			t.Fatalf("%s: no report", name)
		}
		if rep.Passes != serial.rep.Passes ||
			rep.PermutePasses != serial.rep.PermutePasses ||
			rep.PayloadWords != serial.rep.PayloadWords ||
			rep.KeyRounds != serial.rep.KeyRounds ||
			rep.PaddedN != serial.rep.PaddedN {
			t.Fatalf("%s: report differs: %+v vs %+v", name, rep, serial.rep)
		}
		if normalizeStats(rep.IO) != normalizeStats(serial.rep.IO) {
			t.Fatalf("%s: I/O stats differ:\n%+v\n%+v", name,
				normalizeStats(rep.IO), normalizeStats(serial.rep.IO))
		}
	}
	// The permutation pass is charged: the report prices the payload
	// movement and folds its raw I/O into the totals.
	if serial.rep.PermutePasses <= 0 || serial.rep.PayloadWords == 0 {
		t.Fatalf("permutation not charged: %+v", serial.rep)
	}
	if st.DiskFootprint > st.DiskReserved {
		t.Fatalf("records job footprint %d exceeds its envelope %d", st.DiskFootprint, st.DiskReserved)
	}
	if st.ArenaLeak != 0 {
		t.Fatalf("records job leaked %d arena keys", st.ArenaLeak)
	}
}

func TestSortPairsAllAlgorithms(t *testing.T) {
	m := newTestMachine(t, 256)
	n := 1024
	for _, alg := range []Algorithm{ThreePassMesh, ThreePassLMM, SevenPass, SevenPassMesh} {
		keys := workload.Uniform(n, 0, 9, int64(alg))
		payloads := workload.Perm(n, int64(alg)+100)
		pairSum := int64(0)
		for i := range keys {
			pairSum += keys[i] ^ payloads[i]
		}
		if _, err := m.SortPairs(keys, payloads, alg); err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if !slices.IsSorted(keys) {
			t.Fatalf("%v: keys not sorted", alg)
		}
		// The key-payload pairing must survive (checksum of XOR pairs).
		gotSum := int64(0)
		for i := range keys {
			gotSum += keys[i] ^ payloads[i]
		}
		if gotSum != pairSum {
			t.Fatalf("%v: records torn apart", alg)
		}
	}
}
