package repro

import (
	"context"
	"slices"
	"strings"
	"testing"
	"time"
)

// Scenario jobs ride the same scheduler machinery as sorts — envelope
// admission, per-job machines, journaling — but dispatch to the query
// scenarios and retain typed results.  These tests pin the submit surface,
// the results, the planner prediction recorded per job, and the journal
// round-trip of the scenario JobSpec fields.

// scenarioJobOracle generates a workload spec's keys exactly as the
// scheduler will.
func scenarioJobOracle(t *testing.T, w *WorkloadSpec) []int64 {
	t.Helper()
	keys, err := w.Generate()
	if err != nil {
		t.Fatal(err)
	}
	return keys
}

func TestSchedulerScenarioJobs(t *testing.T) {
	s, err := NewScheduler(SchedulerConfig{
		Memory:    11000,
		Workers:   4,
		JobMemory: schedJobMem,
		Pipeline:  PipelineConfig{Prefetch: 2, WriteBehind: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	const n = 20000
	gkeys := scenarioJobOracle(t, &WorkloadSpec{Kind: "fewdistinct", N: n, Distinct: 300, Seed: 51})
	payloads := scenarioJobOracle(t, &WorkloadSpec{Kind: "uniform", N: n, Seed: 52})
	batch := scenarioJobOracle(t, &WorkloadSpec{Kind: "uniform", N: 1024, Seed: 53})

	specs := map[string]JobSpec{
		"topk": {Scenario: "topk", TopK: 64, Label: "topk",
			Workload: &WorkloadSpec{Kind: "uniform", N: n, Seed: 54}},
		"quantile": {Scenario: "quantile", Rank: n / 2, Label: "quantile",
			Workload: &WorkloadSpec{Kind: "uniform", N: n, Seed: 55}},
		"groupby": {Scenario: "groupby", Groups: 300, Label: "groupby",
			Keys: append([]int64(nil), gkeys...), GroupPayloads: payloads},
		"ingest": {Scenario: "ingest", IngestBatch: batch, KeepKeys: true, Label: "ingest",
			Workload: &WorkloadSpec{Kind: "sorted", N: n}},
	}
	ids := map[string]int{}
	for kind, spec := range specs {
		id, err := s.Submit(spec)
		if err != nil {
			t.Fatalf("%s: submit: %v", kind, err)
		}
		ids[kind] = id
	}
	for kind, id := range ids {
		st, err := s.Wait(context.Background(), id)
		if err != nil {
			t.Fatalf("%s: wait: %v", kind, err)
		}
		if st.State != JobDone {
			t.Fatalf("%s: state %s, error %q", kind, st.State, st.Error)
		}
		if st.Scenario != kind {
			t.Fatalf("%s: JobStatus.Scenario = %q", kind, st.Scenario)
		}
		if st.Planned == nil || !strings.HasPrefix(st.Planned.Algorithm, kind+"/") {
			t.Fatalf("%s: Planned = %+v, want %s/<route>", kind, st.Planned, kind)
		}
		if st.Report == nil || st.Report.Scenario != kind {
			t.Fatalf("%s: report = %+v", kind, st.Report)
		}
		if st.ArenaLeak != 0 {
			t.Fatalf("%s: leaked %d arena keys", kind, st.ArenaLeak)
		}
		res, err := s.ScenarioResult(id)
		if err != nil {
			t.Fatalf("%s: result: %v", kind, err)
		}
		if res.Kind != kind {
			t.Fatalf("%s: result kind %q", kind, res.Kind)
		}
		switch kind {
		case "topk":
			want := scenarioJobOracle(t, specs[kind].Workload)
			slices.Sort(want)
			if !slices.Equal(res.Keys, want[:64]) {
				t.Fatal("topk result != sort-then-head")
			}
		case "quantile":
			want := scenarioJobOracle(t, specs[kind].Workload)
			slices.Sort(want)
			if res.Value == nil || *res.Value != want[n/2-1] {
				t.Fatalf("quantile result %v, want %d", res.Value, want[n/2-1])
			}
		case "groupby":
			want := groupOracle(gkeys, payloads)
			if !slices.Equal(flattenAggs(res.Groups), flattenAggs(want)) {
				t.Fatal("groupby result != map oracle")
			}
		case "ingest":
			dataset := scenarioJobOracle(t, specs[kind].Workload)
			want := append(append([]int64(nil), dataset...), batch...)
			slices.Sort(want)
			if !slices.Equal(res.Keys, want) {
				t.Fatal("ingest result != re-sort oracle")
			}
		}
	}
	if st := s.Stats(); st.MemInUse != 0 || st.DiskInUse != 0 {
		t.Fatalf("envelopes leaked after drain: %+v", st)
	}
}

func TestSchedulerScenarioValidation(t *testing.T) {
	s, err := NewScheduler(SchedulerConfig{Memory: 8000, JobMemory: schedJobMem})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	w := &WorkloadSpec{Kind: "uniform", N: 4096, Seed: 1}
	bad := []struct {
		name string
		spec JobSpec
	}{
		{"unknown kind", JobSpec{Scenario: "median", Workload: w}},
		{"ingestBatch without scenario", JobSpec{Workload: w, IngestBatch: []int64{1}}},
		{"groupPayloads without scenario", JobSpec{Keys: []int64{1, 2}, GroupPayloads: []int64{1, 2}}},
		{"ingestBatch on topk", JobSpec{Scenario: "topk", TopK: 1, Workload: w, IngestBatch: []int64{1}}},
		{"topk k=0", JobSpec{Scenario: "topk", Workload: w}},
		{"topk k>n", JobSpec{Scenario: "topk", TopK: 5000, Workload: w}},
		{"rank out of range", JobSpec{Scenario: "quantile", Rank: 4097, Workload: w}},
		{"scenario+universe", JobSpec{Scenario: "topk", TopK: 1, Workload: w, Universe: 1 << 20}},
		{"groupPayloads with workload", JobSpec{Scenario: "groupby", Workload: w, GroupPayloads: make([]int64, 4096)}},
		{"groupPayloads length mismatch", JobSpec{Scenario: "groupby", Keys: []int64{1, 2}, GroupPayloads: []int64{1}}},
		{"ingest unsorted workload", JobSpec{Scenario: "ingest", Workload: w, IngestBatch: []int64{1}}},
		{"ingest without batch", JobSpec{Scenario: "ingest", Workload: &WorkloadSpec{Kind: "sorted", N: 4096}}},
	}
	for _, tc := range bad {
		if _, err := s.Submit(tc.spec); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestSchedulerExplainScenario(t *testing.T) {
	s, err := NewScheduler(SchedulerConfig{Memory: 8000, JobMemory: schedJobMem})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	p, err := s.ExplainScenario(JobSpec{Scenario: "topk", TopK: 64,
		Workload: &WorkloadSpec{Kind: "uniform", N: 65536, Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if !p.Feasible || !p.UseScenario || p.Route != "filter" {
		t.Fatalf("topk plan %+v, want feasible filter route", p)
	}
	if p.ReadPasses >= p.FullSortReadPasses {
		t.Fatalf("scenario %.3f read passes not under full sort %.3f", p.ReadPasses, p.FullSortReadPasses)
	}
	if _, err := s.ExplainScenario(JobSpec{Workload: &WorkloadSpec{Kind: "uniform", N: 1024}}); err == nil {
		t.Fatal("ExplainScenario accepted a non-scenario spec")
	}
}

// TestSchedulerScenarioJournalRoundTrip queues a scenario job behind a
// latency-slowed sort in a journaled scheduler, drains, and reopens: the
// scenario JobSpec fields must survive the journalSpec round-trip and the
// job must complete with the oracle result in the next life.
func TestSchedulerScenarioJournalRoundTrip(t *testing.T) {
	dir, jdir := t.TempDir(), t.TempDir()
	const n = 16 * schedJobMem
	batch := scenarioJobOracle(t, &WorkloadSpec{Kind: "uniform", N: 512, Seed: 61})

	s1, err := NewScheduler(durabilityConfig(dir, jdir))
	if err != nil {
		t.Fatal(err)
	}
	ids := submitBatch(t, s1, []JobSpec{
		{Workload: &WorkloadSpec{Kind: "perm", N: n, Seed: 62},
			Algorithm: ThreePassLMM, BlockLatency: 2 * time.Millisecond, Label: "blocker"},
		{Scenario: "topk", TopK: 32, Label: "queued-topk",
			Workload: &WorkloadSpec{Kind: "uniform", N: n, Seed: 63}},
		{Scenario: "ingest", IngestBatch: batch, KeepKeys: true, Label: "queued-ingest",
			Workload: &WorkloadSpec{Kind: "sorted", N: n}},
	})
	awaitCheckpoint(t, jdir, ids[0])
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	err = s1.Drain(ctx)
	cancel()
	if err != nil {
		t.Fatalf("drain: %v", err)
	}
	for _, id := range ids[1:] {
		if st, _ := s1.Status(id); st.State != JobQueued {
			t.Fatalf("after drain: job %d state %q, want queued", id, st.State)
		}
	}

	s2, err := NewScheduler(durabilityConfig(dir, jdir))
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	for _, id := range ids {
		st, err := s2.Wait(context.Background(), id)
		if err != nil {
			t.Fatalf("wait %d: %v", id, err)
		}
		if st.State != JobDone {
			t.Fatalf("job %d state %q, error %q", id, st.State, st.Error)
		}
	}

	topk := scenarioJobOracle(t, &WorkloadSpec{Kind: "uniform", N: n, Seed: 63})
	slices.Sort(topk)
	res, err := s2.ScenarioResult(ids[1])
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(res.Keys, topk[:32]) {
		t.Fatal("recovered topk job result != oracle")
	}

	dataset := scenarioJobOracle(t, &WorkloadSpec{Kind: "sorted", N: n})
	want := append(append([]int64(nil), dataset...), batch...)
	slices.Sort(want)
	res, err = s2.ScenarioResult(ids[2])
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(res.Keys, want) {
		t.Fatal("recovered ingest job result != oracle")
	}
}
