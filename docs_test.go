package repro

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// docsFiles are the user-facing documents the CI docs leg link-checks.
var docsFiles = []string{"README.md", "ARCHITECTURE.md"}

// TestDocsFileReferencesResolve: every relative markdown link and every
// inline code span that names a repository path in README/ARCHITECTURE
// must point at something that exists — stale references are how docs
// rot.
func TestDocsFileReferencesResolve(t *testing.T) {
	link := regexp.MustCompile(`\]\(([^)#]+)(#[^)]*)?\)`)
	span := regexp.MustCompile("`([A-Za-z0-9_./-]+)`")
	for _, doc := range docsFiles {
		raw, err := os.ReadFile(doc)
		if err != nil {
			t.Fatalf("%s: %v (docs moved without updating docsFiles?)", doc, err)
		}
		text := string(raw)
		for _, m := range link.FindAllStringSubmatch(text, -1) {
			target := m[1]
			if strings.Contains(target, "://") {
				continue // external URL; not checked offline
			}
			if _, err := os.Stat(filepath.FromSlash(target)); err != nil {
				t.Errorf("%s links to %q, which does not exist", doc, target)
			}
		}
		for _, m := range span.FindAllStringSubmatch(text, -1) {
			path := strings.TrimPrefix(m[1], "repro/")
			// Only spans that look like repository paths: they contain a
			// separator and live under a real top-level entry.
			if !strings.Contains(path, "/") {
				continue
			}
			root := path[:strings.Index(path, "/")]
			if root != "cmd" && root != "internal" && root != "examples" {
				continue
			}
			if _, err := os.Stat(filepath.FromSlash(path)); err != nil {
				t.Errorf("%s mentions `%s`, which does not exist", doc, m[1])
			}
		}
	}
}

// TestDocsFlagReferencesResolve: every -flag a README/ARCHITECTURE
// command line passes to pdmsort or pdmd must be declared by that
// binary, so the docs never teach flags the CLIs dropped.
func TestDocsFlagReferencesResolve(t *testing.T) {
	declared := func(mainPath string) map[string]bool {
		raw, err := os.ReadFile(mainPath)
		if err != nil {
			t.Fatal(err)
		}
		decl := regexp.MustCompile(`flag\.\w+\(\s*&?[^,]*,?\s*"([a-z]+)"`)
		flags := map[string]bool{}
		for _, m := range decl.FindAllStringSubmatch(string(raw), -1) {
			flags[m[1]] = true
		}
		if len(flags) == 0 {
			t.Fatalf("%s declares no flags; the extraction regexp rotted", mainPath)
		}
		return flags
	}
	bins := map[string]map[string]bool{
		"pdmsort": declared("cmd/pdmsort/main.go"),
		"pdmd":    declared("cmd/pdmd/main.go"),
	}
	used := regexp.MustCompile(` -([a-z]+)`)
	for _, doc := range docsFiles {
		raw, err := os.ReadFile(doc)
		if err != nil {
			t.Fatal(err)
		}
		for ln, line := range strings.Split(string(raw), "\n") {
			for bin, flags := range bins {
				if !strings.Contains(line, bin+" -") {
					continue
				}
				for _, m := range used.FindAllStringSubmatch(line, -1) {
					if !flags[m[1]] {
						t.Errorf("%s:%d passes -%s to %s, which declares no such flag", doc, ln+1, m[1], bin)
					}
				}
			}
		}
	}
}
