// Package repro is a from-scratch reproduction of "PDM Sorting Algorithms
// That Take A Small Number Of Passes" (Rajasekaran & Sen, IPPS 2005): a
// Parallel Disk Model simulator plus every sorting algorithm the paper
// introduces or compares against, with I/O accounted in the paper's
// currency — passes over the data.
//
// The facade in this package is what a downstream user imports:
//
//	m, _ := repro.NewMachine(repro.MachineConfig{Memory: 1 << 20, Disks: 64})
//	report, _ := m.Sort(keys, repro.Auto)
//	fmt.Printf("sorted %d keys in %.2f passes with %s\n",
//		report.N, report.Passes, report.Algorithm)
//
// The underlying pieces (the pdm simulator, the individual algorithms, the
// baselines, the zero-one principle machinery) live in internal/ packages
// and are exercised by the experiment harness (cmd/experiments) that
// regenerates every empirical claim in EXPERIMENTS.md.
package repro

import (
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/core"
	"repro/internal/memsort"
	"repro/internal/par"
	"repro/internal/pdm"
	"repro/internal/plan"
)

// Algorithm selects which of the paper's sorting algorithms to run.
type Algorithm int

const (
	// Auto picks the algorithm the cost model (internal/plan) predicts
	// cheapest for the input: it weighs each candidate's pass count against
	// the padded length its geometry forces — the one-pass memory-load sort
	// when N ≤ M, ExpectedTwoPass, ThreePass2, and so on up to SevenPass.
	// The choice is deterministic for a given (N, M, D, alpha);
	// Machine.Explain shows the ranked table behind it.
	Auto Algorithm = iota
	// ThreePassMesh is the Section 3.1 mesh algorithm (3 passes, ≤ M·√M).
	ThreePassMesh
	// TwoPassMeshExpected is the Section 3.2 variant (2 passes w.h.p.).
	TwoPassMeshExpected
	// ThreePassLMM is the Section 4 LMM algorithm (3 passes, ≤ M·√M).
	ThreePassLMM
	// TwoPassExpected is the Section 5 algorithm (2 passes w.h.p.).
	TwoPassExpected
	// ThreePassExpected is the Section 6 algorithm (3 passes w.h.p.,
	// ~M^1.75 keys).
	ThreePassExpected
	// SevenPass is the Section 6.1 algorithm (7 passes, ≤ M² keys).
	SevenPass
	// SixPassExpected is the Section 6.2 algorithm (6 passes w.h.p.).
	SixPassExpected
	// SevenPassMesh is the mesh-based seven-pass variant realizing the
	// paper's Section 6.2 Remark (mesh superruns under the LMM outer
	// merge; 7 passes, ≤ M² keys).
	SevenPassMesh
	// MemOnePass is the planner's degenerate regime: N ≤ M sorts in a
	// single load-sort-store (one read pass, one write pass).  The paper
	// takes this case as given; Auto chooses it whenever the input fits in
	// internal memory instead of running a multi-pass algorithm on one run.
	MemOnePass
)

// String names the algorithm as in the paper.
func (alg Algorithm) String() string {
	switch alg {
	case Auto:
		return "Auto"
	case ThreePassMesh:
		return "ThreePass1"
	case TwoPassMeshExpected:
		return "ExpThreePass1 (2-pass mesh)"
	case ThreePassLMM:
		return "ThreePass2"
	case TwoPassExpected:
		return "ExpectedTwoPass"
	case ThreePassExpected:
		return "ExpectedThreePass"
	case SevenPass:
		return "SevenPass"
	case SixPassExpected:
		return "ExpectedSixPass"
	case SevenPassMesh:
		return "SevenPassMesh (Remark 6.2)"
	case MemOnePass:
		return "OnePass (memory load)"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(alg))
	}
}

// ParseAlgorithm maps the CLI/service short names (auto, mesh3, mesh2e,
// lmm3, exp2, exp3, seven, six) to Algorithm values.
func ParseAlgorithm(name string) (Algorithm, error) {
	switch name {
	case "auto", "":
		return Auto, nil
	case "mesh3":
		return ThreePassMesh, nil
	case "mesh2e":
		return TwoPassMeshExpected, nil
	case "lmm3":
		return ThreePassLMM, nil
	case "exp2":
		return TwoPassExpected, nil
	case "exp3":
		return ThreePassExpected, nil
	case "seven":
		return SevenPass, nil
	case "six":
		return SixPassExpected, nil
	case "sevenmesh":
		return SevenPassMesh, nil
	case "one":
		return MemOnePass, nil
	default:
		return 0, fmt.Errorf("repro: unknown algorithm %q (want auto|one|mesh3|mesh2e|lmm3|exp2|exp3|seven|six|sevenmesh)", name)
	}
}

// planAlg maps the facade enum onto the planner's candidate names (the
// same short spellings ParseAlgorithm accepts).
func (alg Algorithm) planAlg() plan.Alg {
	switch alg {
	case ThreePassMesh:
		return plan.Mesh3
	case TwoPassMeshExpected:
		return plan.Mesh2e
	case ThreePassLMM:
		return plan.LMM3
	case TwoPassExpected:
		return plan.Exp2
	case ThreePassExpected:
		return plan.Exp3
	case SevenPass:
		return plan.Seven
	case SixPassExpected:
		return plan.Six
	case SevenPassMesh:
		return plan.SevenMesh
	case MemOnePass:
		return plan.OnePass
	default:
		return ""
	}
}

// algFromPlan is planAlg's inverse; ok is false for plan.Radix, which is
// not an Algorithm (SortInts is its entry point).
func algFromPlan(a plan.Alg) (Algorithm, bool) {
	switch a {
	case plan.Mesh3:
		return ThreePassMesh, true
	case plan.Mesh2e:
		return TwoPassMeshExpected, true
	case plan.LMM3:
		return ThreePassLMM, true
	case plan.Exp2:
		return TwoPassExpected, true
	case plan.Exp3:
		return ThreePassExpected, true
	case plan.Seven:
		return SevenPass, true
	case plan.Six:
		return SixPassExpected, true
	case plan.SevenMesh:
		return SevenPassMesh, true
	case plan.OnePass:
		return MemOnePass, true
	default:
		return 0, false
	}
}

// MachineConfig describes the simulated PDM.
type MachineConfig struct {
	// Memory is the internal memory M in keys; it must be a perfect square
	// (the paper's algorithms use block size B = √M).
	Memory int
	// Disks is D; it must divide √M (so M = C·D·B with integer C).
	// Zero selects √M/4, the paper's running example C = 4.
	Disks int
	// Alpha is the confidence parameter of the probabilistic algorithms
	// (failure probability ≤ M^−α).  Zero means 1.
	Alpha float64
	// Dir, when non-empty, backs each disk with a real file in that
	// directory (one goroutine per disk performs the parallel I/O);
	// otherwise disks are simulated in memory.
	Dir string
	// Backend selects the file-backed disk implementation when Dir is set:
	// BackendFile (the default, read/write syscalls through pdm.FileDisk)
	// or BackendMmap (memory-mapped pdm.MmapDisk with zero-copy views on
	// the streaming paths).  Both produce byte-identical scratch files and
	// bit-identical reports; only wall-clock differs.  Must be empty for
	// in-memory machines.
	Backend string
	// Pipeline configures the streaming I/O layer: depths > 0 overlap
	// prefetch and write-behind with computation on every pass.  Pass
	// accounting is unaffected — the PDM cost model charges the same steps
	// whether or not a transfer was overlapped — but wall-clock time on
	// file-backed disks improves and Report gains overlap metrics.
	Pipeline PipelineConfig
	// Workers sizes the compute worker pool every in-memory kernel runs on
	// (run formation sorts, partitioned k-way merges, shuffles, radix
	// counting); zero selects GOMAXPROCS.  Output, pass counts, statistics,
	// and I/O traces are bit-identical for any worker count — parallelism
	// changes wall-clock only — and Report gains compute metrics.
	Workers int
	// BlockLatency, when positive, decorates every disk with a fixed
	// per-block service time (pdm.LatencyDisk), modeling positioning and
	// transfer latency on top of either backend.  Pass accounting is
	// unaffected; wall-clock slows, which the scheduler tests use to
	// exercise cancellation promptness and the benchmarks to show overlap.
	BlockLatency time.Duration
	// Kernel selects the in-memory sort kernel run formation and the
	// planner price: KernelComparison (introsort + symmetric merges),
	// KernelRadix (LSD byte radix), or KernelAuto (the default — a
	// deterministic pick from the memory-load size alone, independent of
	// workers, backend, and probe noise).  Like Workers and Backend, the
	// kernel changes wall-clock only: output, pass counts, statistics, and
	// I/O traces are bit-identical for every choice.
	Kernel string
	// ReuseDisks opens the disk files already in Dir instead of truncating
	// them — the resume path: a machine rebuilt over the scratch a crashed
	// or suspended job left behind, so a checkpoint manifest can re-adopt
	// its stripes.  Requires Dir and the file backend.
	ReuseDisks bool
}

// PipelineConfig sizes the streaming I/O layer.  Depths are in stripes
// (Disks·√Memory keys each); the staging comes out of the machine's metered
// internal memory, on top of the algorithms' own envelope.  Zero depths
// mean fully synchronous I/O.
type PipelineConfig struct {
	// Prefetch is the number of stripe buffers a streamed read may run
	// ahead of the consumer.
	Prefetch int
	// WriteBehind is the number of stripe buffers a streamed write may lag
	// behind the producer.
	WriteBehind int
}

// Disk backend names for MachineConfig.Backend, SchedulerConfig.Backend,
// and JobSpec.Backend.
const (
	// BackendFile is the read/write-syscall file backend (pdm.FileDisk).
	BackendFile = "file"
	// BackendMmap is the memory-mapped file backend (pdm.MmapDisk).
	BackendMmap = "mmap"
)

// validBackend reports whether name is a recognized backend selector
// (empty means the default for the machine's Dir setting).
func validBackend(name string) bool {
	return name == "" || name == BackendFile || name == BackendMmap
}

// backendKind maps a facade backend selector onto the planner's kind.
func backendKind(fileBacked bool, backend string) plan.Backend {
	if !fileBacked {
		return plan.BackendMem
	}
	if backend == BackendMmap {
		return plan.BackendMmap
	}
	return plan.BackendFile
}

// Compute kernel names for MachineConfig.Kernel, SchedulerConfig.Kernel,
// and JobSpec.Kernel.
const (
	// KernelAuto picks deterministically from the machine shape (the
	// memory-load size); the empty string means the same.
	KernelAuto = "auto"
	// KernelComparison is the comparison introsort kernel.
	KernelComparison = "comparison"
	// KernelRadix is the LSD byte-radix kernel.
	KernelRadix = "radix"
)

// validKernel reports whether name is a recognized kernel selector (empty
// means Auto).
func validKernel(name string) bool {
	return name == "" || name == KernelAuto || name == KernelComparison || name == KernelRadix
}

// kernelKind resolves a facade kernel selector onto the planner's concrete
// kernel: Auto (and the empty string) resolve through plan.ChooseKernel, the
// single deterministic Auto rule, from the memory-load size alone.
func kernelKind(kernel string, mem int) plan.Kernel {
	switch kernel {
	case KernelComparison:
		return plan.KernelComparison
	case KernelRadix:
		return plan.KernelRadix
	default:
		return plan.ChooseKernel(plan.Shape{Mem: mem})
	}
}

// parKernelOf maps the planner's kernel onto the worker pool's enum.
func parKernelOf(k plan.Kernel) par.Kernel {
	if k == plan.KernelRadix {
		return par.KernelRadix
	}
	return par.KernelComparison
}

// Machine is a PDM plus the paper's algorithm suite.
type Machine struct {
	a     *pdm.Array
	alpha float64
	cfg   MachineConfig
}

// ErrKeyRange is returned when input keys collide with the reserved
// sentinel (MaxInt64, used for padding partial blocks).
var ErrKeyRange = errors.New("repro: keys must be smaller than MaxInt64")

// NewMachine builds a Machine from cfg.
func NewMachine(cfg MachineConfig) (*Machine, error) {
	return newMachine(cfg, nil)
}

// newMachine is NewMachine with the worker pool optionally attached to a
// shared cross-job limiter — the constructor the scheduler builds per-job
// machines with.
func newMachine(cfg MachineConfig, lim *par.Limiter) (*Machine, error) {
	pcfg, alpha, err := resolveConfig(cfg)
	if err != nil {
		return nil, err
	}
	pcfg.Limiter = lim
	var disks []pdm.Disk
	if cfg.Dir != "" {
		switch {
		case cfg.ReuseDisks && cfg.Backend == BackendMmap:
			return nil, fmt.Errorf("repro: ReuseDisks requires the file backend, not %q", cfg.Backend)
		case cfg.ReuseDisks:
			disks, err = pdm.OpenFileDisks(cfg.Dir, pcfg.D, pcfg.B)
		case cfg.Backend == BackendMmap:
			disks, err = pdm.NewMmapDisks(cfg.Dir, pcfg.D, pcfg.B)
		default:
			disks, err = pdm.NewFileDisks(cfg.Dir, pcfg.D, pcfg.B)
		}
		if err != nil {
			return nil, err
		}
	} else {
		if cfg.ReuseDisks {
			return nil, fmt.Errorf("repro: ReuseDisks requires Dir")
		}
		if cfg.Backend != "" {
			return nil, fmt.Errorf("repro: Backend = %q requires Dir (in-memory machines have no disk backend)", cfg.Backend)
		}
		disks = pdm.NewMemDisks(pcfg.D, pcfg.B)
	}
	if cfg.BlockLatency > 0 {
		for i, d := range disks {
			disks[i] = pdm.LatencyDisk{Disk: d, PerBlock: cfg.BlockLatency}
		}
	}
	a, err := pdm.NewWithDisks(pcfg, disks)
	if err != nil {
		return nil, err
	}
	return &Machine{a: a, alpha: alpha, cfg: cfg}, nil
}

// resolveConfig validates cfg and resolves it to the pdm configuration
// (without backend-specific fields) plus the effective alpha.  The
// scheduler uses it at submit time to size a job's memory envelope before
// any resources exist.
func resolveConfig(cfg MachineConfig) (pdm.Config, float64, error) {
	b := memsort.Isqrt(cfg.Memory)
	if b*b != cfg.Memory {
		return pdm.Config{}, 0, fmt.Errorf("repro: Memory = %d is not a perfect square", cfg.Memory)
	}
	d := cfg.Disks
	if d == 0 {
		d = b / 4
		if d == 0 {
			d = 1
		}
	}
	if b%d != 0 {
		return pdm.Config{}, 0, fmt.Errorf("repro: Disks = %d does not divide sqrt(Memory) = %d", d, b)
	}
	if !validBackend(cfg.Backend) {
		return pdm.Config{}, 0, fmt.Errorf("repro: unknown backend %q (want %q or %q)", cfg.Backend, BackendFile, BackendMmap)
	}
	if !validKernel(cfg.Kernel) {
		return pdm.Config{}, 0, fmt.Errorf("repro: unknown kernel %q (want %q, %q, or %q)", cfg.Kernel, KernelAuto, KernelComparison, KernelRadix)
	}
	alpha := cfg.Alpha
	if alpha == 0 {
		alpha = 1
	}
	return pdm.Config{D: d, B: b, Mem: cfg.Memory,
		Pipeline: pdm.PipelineConfig{
			Prefetch:    cfg.Pipeline.Prefetch,
			WriteBehind: cfg.Pipeline.WriteBehind,
		},
		Workers: cfg.Workers,
		Kernel:  parKernelOf(kernelKind(cfg.Kernel, cfg.Memory))}, alpha, nil
}

// Array exposes the underlying PDM array for harnesses that need direct
// access (statistics, stripes).
func (m *Machine) Array() *pdm.Array { return m.a }

// Kernel returns the resolved compute kernel this machine sorts memory
// loads with ("comparison" or "radix"): the configured one, or Auto's
// deterministic pick from the memory-load size.
func (m *Machine) Kernel() string { return m.a.Pool().Kernel().String() }

// Close releases the disks (removing nothing; file-backed disks stay on
// disk for inspection).
func (m *Machine) Close() error { return m.a.Close() }

// Report describes one sorting run.
type Report struct {
	// Algorithm is the algorithm that produced the result (the concrete
	// choice when Auto was requested).
	Algorithm Algorithm
	// N is the number of user keys sorted (before padding).
	N int
	// Passes, ReadPasses and WritePasses are measured in the paper's
	// currency over the padded length.
	Passes      float64
	ReadPasses  float64
	WritePasses float64
	// FellBack reports that a probabilistic algorithm detected a cleanup
	// overflow and re-sorted with its deterministic fallback.
	FellBack bool
	// IO is the raw I/O accounting.
	IO pdm.Stats
	// PaddedN is the on-disk length after padding to the algorithm's
	// geometry (sentinel keys are stripped from the returned data).
	PaddedN int
	// Pipeline observability (all zero when the machine runs synchronous
	// I/O).  PrefetchHits counts streamed read chunks whose data had
	// already landed when the algorithm asked for them, PrefetchStalls
	// those it had to wait for; WriteStalls counts streamed writes that
	// waited for staging.  Overlap = hits/(hits+stalls) — the fraction of
	// read latency the pipeline hid (1 when nothing streamed).
	PrefetchHits   int64
	PrefetchStalls int64
	WriteStalls    int64
	Overlap        float64
	// Compute observability (all zero/1 when the machine runs a single
	// worker or the inputs are too small to parallelize).  Workers is the
	// machine's resolved worker-pool width; ComputeSeconds the wall time
	// spent inside parallel compute sections; WorkerUtilization the busy
	// fraction of the pool over those sections.  Like the pipeline
	// counters, these are scheduling-dependent and excluded from the
	// bit-identical determinism guarantee.
	Workers           int
	ComputeSeconds    float64
	WorkerUtilization float64
	// Scenario names the query scenario that produced this report ("topk",
	// "quantile", "groupby", "ingest"; empty for plain sorts) and
	// ScenarioRoute the strategy it ran ("filter", "onepass", "partition",
	// "merge", or "fullsort" when the planner priced the scenario out or a
	// sampling miss fell back — the FellBack flag distinguishes the two).
	Scenario      string
	ScenarioRoute string
	// Records observability (SortRecords and SortPairs only; zero for the
	// key-only entry points).  KeyRounds counts the packed key+index sorts
	// the record sort ran (1 unless keys needed all 64 bits, in which case
	// it is the number of LSD digit rounds); PayloadWords is the payload
	// volume, in 8-byte words, the external permutation moved; and
	// PermutePasses prices that movement in the paper's currency — charged
	// parallel steps times the stripe width over the padded payload store.
	// The permutation's raw I/O is folded into IO; Passes/ReadPasses/
	// WritePasses remain the key sort's counts.
	KeyRounds     int
	PayloadWords  int
	PermutePasses float64
}

// pipelineMetrics fills the Report's overlap and compute counters from the
// measured I/O delta.
func (r *Report) pipelineMetrics(io pdm.Stats, workers int) {
	r.PrefetchHits = io.PrefetchHits
	r.PrefetchStalls = io.PrefetchStalls
	r.WriteStalls = io.WriteBehindStalls
	r.Overlap = io.Overlap()
	r.Workers = workers
	r.ComputeSeconds = io.ComputeSeconds()
	r.WorkerUtilization = io.WorkerUtilization(workers)
}

// Capacity returns the largest number of keys the given algorithm sorts on
// this machine within its advertised pass count (for the probabilistic
// algorithms, the largest size whose Lemma 4.2 window still fits, i.e. the
// reliable regime at the machine's α).
func (m *Machine) Capacity(alg Algorithm) int {
	return capacityFor(m.a.Mem(), m.alpha, alg)
}

// capacityFor is Capacity as a pure function of the geometry, shared with
// the scheduler's submit-time planning.
func capacityFor(mem int, alpha float64, alg Algorithm) int {
	if alg == Auto {
		return mem * mem
	}
	return plan.Capacity(mem, alpha, alg.planAlg())
}

// Plan returns the algorithm Auto would choose for n keys: the candidate
// the cost model predicts cheapest, accounting for each algorithm's pass
// count and the padding its geometry forces.  The choice is deterministic
// — independent of calibration, worker count, and backend — so Auto runs
// are reproducible; Explain exposes the full ranked table with calibrated
// wall-time predictions.
func (m *Machine) Plan(n int) Algorithm {
	return planFor(m.a.Mem(), m.a.D(), m.alpha, n)
}

// planFor is Plan as a pure function of the geometry, shared with the
// scheduler's submit-time planning.
func planFor(mem, d int, alpha float64, n int) Algorithm {
	shape := planShape(mem, d, alpha)
	chosen, err := plan.Choose(shape, plan.Workload{N: n})
	if err != nil {
		// Beyond every capacity; Sort will fail with the M² message.  The
		// seven-pass algorithm is the paper's last resort either way.
		return SevenPass
	}
	alg, ok := algFromPlan(chosen)
	if !ok {
		return SevenPass
	}
	return alg
}

// planShape builds the planner's machine shape from the resolved geometry.
func planShape(mem, d int, alpha float64) plan.Shape {
	return plan.Shape{Mem: mem, B: memsort.Isqrt(mem), D: d, Alpha: alpha}
}

// Sort sorts keys in place using the selected algorithm, returning the I/O
// report.  The input is padded on disk to the algorithm's geometry with
// MaxInt64 sentinels (hence ErrKeyRange if any key equals MaxInt64) and the
// padding is stripped before returning.
func (m *Machine) Sort(keys []int64, alg Algorithm) (*Report, error) {
	for _, k := range keys {
		if k == math.MaxInt64 {
			return nil, ErrKeyRange
		}
	}
	if alg == Auto {
		alg = m.Plan(len(keys))
	}
	padded, err := m.padFor(alg, len(keys))
	if err != nil {
		return nil, err
	}
	if padded > m.a.Mem()*m.a.Mem() {
		return nil, fmt.Errorf("repro: %d keys exceed the machine's M^2 = %d capacity", len(keys), m.a.Mem()*m.a.Mem())
	}
	data := make([]int64, padded)
	copy(data, keys)
	for i := len(keys); i < padded; i++ {
		data[i] = math.MaxInt64
	}
	in, err := m.a.NewStripe(padded)
	if err != nil {
		return nil, err
	}
	defer in.Free()
	if err := in.Load(data); err != nil {
		return nil, err
	}
	var res *core.Result
	switch alg {
	case ThreePassMesh:
		res, err = core.ThreePass1(m.a, in)
	case TwoPassMeshExpected:
		res, err = core.ExpTwoPassMesh(m.a, in)
	case ThreePassLMM:
		res, err = core.ThreePass2(m.a, in)
	case TwoPassExpected:
		res, err = core.ExpectedTwoPass(m.a, in)
	case ThreePassExpected:
		res, err = core.ExpectedThreePass(m.a, in)
	case SevenPass:
		res, err = core.SevenPass(m.a, in)
	case SixPassExpected:
		res, err = core.ExpectedSixPass(m.a, in)
	case SevenPassMesh:
		res, err = core.SevenPassMesh(m.a, in)
	case MemOnePass:
		res, err = core.OnePass(m.a, in)
	default:
		return nil, fmt.Errorf("repro: unknown algorithm %v", alg)
	}
	if err != nil {
		return nil, err
	}
	defer res.Out.Free()
	out, err := res.Out.Unload()
	if err != nil {
		return nil, err
	}
	copy(keys, out[:len(keys)])
	rep := &Report{
		Algorithm:   alg,
		N:           len(keys),
		Passes:      res.Passes,
		ReadPasses:  res.ReadPasses,
		WritePasses: res.WritePasses,
		FellBack:    res.FellBack,
		IO:          res.IO,
		PaddedN:     padded,
	}
	rep.pipelineMetrics(res.IO, m.a.Workers())
	return rep, nil
}

// SortInts sorts nonnegative integer keys below universe with the paper's
// Section 7 RadixSort (O(1) passes for any input size).
func (m *Machine) SortInts(keys []int64, universe int64) (*Report, error) {
	for _, k := range keys {
		if k < 0 || k >= universe {
			return nil, fmt.Errorf("repro: key %d outside [0, %d)", k, universe)
		}
	}
	// Pad with universe-1 sentinels (largest value) to a stripe multiple.
	b := m.a.B()
	padded := memsort.CeilDiv(len(keys), b) * b
	data := make([]int64, padded)
	copy(data, keys)
	for i := len(keys); i < padded; i++ {
		data[i] = universe - 1
	}
	in, err := m.a.NewStripe(padded)
	if err != nil {
		return nil, err
	}
	defer in.Free()
	if err := in.Load(data); err != nil {
		return nil, err
	}
	res, err := core.RadixSort(m.a, in, universe)
	if err != nil {
		return nil, err
	}
	defer res.Out.Free()
	out, err := res.Out.Unload()
	if err != nil {
		return nil, err
	}
	copy(keys, out[:len(keys)])
	rep := &Report{
		Algorithm:   Auto,
		N:           len(keys),
		Passes:      res.Passes,
		ReadPasses:  res.ReadPasses,
		WritePasses: res.WritePasses,
		IO:          res.IO,
		PaddedN:     padded,
	}
	rep.pipelineMetrics(res.IO, m.a.Workers())
	return rep, nil
}

// padFor returns the smallest on-disk length ≥ n satisfying the
// algorithm's geometry.
func (m *Machine) padFor(alg Algorithm, n int) (int, error) {
	return padForSize(m.a.Mem(), alg, n)
}

// padForSize is padFor as a pure function of the geometry, shared with the
// scheduler's submit-time disk-envelope sizing.  The geometry rules live
// in the planner (internal/plan), which predicts cost from the same padded
// lengths the sort will actually use.
func padForSize(mem int, alg Algorithm, n int) (int, error) {
	pa := alg.planAlg()
	if pa == "" {
		return 0, fmt.Errorf("repro: unknown algorithm %v", alg)
	}
	padded, err := plan.PadFor(mem, pa, n)
	if err != nil {
		return 0, fmt.Errorf("repro: %d keys do not fit %v: %w", n, alg, err)
	}
	return padded, nil
}
