package repro

import (
	"math"
	"slices"
	"testing"
	"testing/quick"

	"repro/internal/workload"
)

func newTestMachine(t *testing.T, mem int) *Machine {
	t.Helper()
	m, err := NewMachine(MachineConfig{Memory: mem})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewMachineValidation(t *testing.T) {
	if _, err := NewMachine(MachineConfig{Memory: 1000}); err == nil {
		t.Fatal("non-square memory accepted")
	}
	if _, err := NewMachine(MachineConfig{Memory: 1024, Disks: 7}); err == nil {
		t.Fatal("non-dividing disk count accepted")
	}
	m, err := NewMachine(MachineConfig{Memory: 1024})
	if err != nil {
		t.Fatal(err)
	}
	if m.Array().D() != 8 {
		t.Fatalf("default disks = %d, want 8 (C=4)", m.Array().D())
	}
}

func TestSortAllAlgorithms(t *testing.T) {
	m := newTestMachine(t, 256)
	for _, alg := range []Algorithm{
		ThreePassMesh, TwoPassMeshExpected, ThreePassLMM,
		TwoPassExpected, ThreePassExpected, SevenPass, SixPassExpected,
		SevenPassMesh,
	} {
		t.Run(alg.String(), func(t *testing.T) {
			keys := workload.Perm(1000, int64(alg)) // deliberately unaligned length
			want := append([]int64(nil), keys...)
			slices.Sort(want)
			rep, err := m.Sort(keys, alg)
			if err != nil {
				t.Fatal(err)
			}
			if !slices.Equal(keys, want) {
				t.Fatal("not sorted")
			}
			if rep.Algorithm != alg || rep.N != 1000 {
				t.Fatalf("report = %+v", rep)
			}
			if rep.PaddedN < 1000 || rep.PaddedN%256 != 0 {
				t.Fatalf("PaddedN = %d", rep.PaddedN)
			}
		})
	}
}

func TestSortAuto(t *testing.T) {
	m := newTestMachine(t, 256)
	for _, n := range []int{10, 300, 2000, 10000, 60000} {
		keys := workload.Uniform(n, -1000, 1000, int64(n))
		want := append([]int64(nil), keys...)
		slices.Sort(want)
		rep, err := m.Sort(keys, Auto)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !slices.Equal(keys, want) {
			t.Fatalf("n=%d: not sorted", n)
		}
		if rep.Algorithm == Auto {
			t.Fatal("Auto not resolved to a concrete algorithm")
		}
	}
}

func TestPlanEscalatesWithN(t *testing.T) {
	m := newTestMachine(t, 1024)
	small := m.Plan(512)
	mid := m.Plan(1024 * 20)
	big := m.Plan(1024 * 1024)
	if small != MemOnePass {
		t.Fatalf("Plan(512) = %v, an in-memory input needs one pass, not three", small)
	}
	if mid == SevenPass {
		t.Fatalf("Plan(20M) = %v, should not need seven passes", mid)
	}
	if big != SevenPass && big != SixPassExpected {
		t.Fatalf("Plan(M^2) = %v", big)
	}
}

func TestCapacityOrdering(t *testing.T) {
	m := newTestMachine(t, 1024)
	c2 := m.Capacity(TwoPassExpected)
	c3 := m.Capacity(ThreePassLMM)
	c7 := m.Capacity(SevenPass)
	if !(c2 < c3 && c3 < c7) {
		t.Fatalf("capacities not ordered: 2-pass %d, 3-pass %d, 7-pass %d", c2, c3, c7)
	}
	if c3 != 1024*32 || c7 != 1024*1024 {
		t.Fatalf("capacities = %d, %d", c3, c7)
	}
}

func TestSortRejectsSentinel(t *testing.T) {
	m := newTestMachine(t, 256)
	if _, err := m.Sort([]int64{1, math.MaxInt64}, ThreePassLMM); err == nil {
		t.Fatal("MaxInt64 key accepted")
	}
}

func TestSortRejectsOversize(t *testing.T) {
	m := newTestMachine(t, 256)
	if _, err := m.Sort(make([]int64, 256*33), ThreePassLMM); err == nil {
		t.Fatal("input above M*sqrt(M) accepted for a three-pass algorithm")
	}
}

func TestSortInts(t *testing.T) {
	m := newTestMachine(t, 256)
	keys := workload.Uniform(5000, 0, (1<<20)-1, 9)
	want := append([]int64(nil), keys...)
	slices.Sort(want)
	rep, err := m.SortInts(keys, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(keys, want) {
		t.Fatal("not sorted")
	}
	if rep.Passes <= 0 {
		t.Fatalf("passes = %v", rep.Passes)
	}
	if _, err := m.SortInts([]int64{-1}, 10); err == nil {
		t.Fatal("negative key accepted")
	}
	if _, err := m.SortInts([]int64{10}, 10); err == nil {
		t.Fatal("key = universe accepted")
	}
}

func TestFileBackedMachine(t *testing.T) {
	m, err := NewMachine(MachineConfig{Memory: 256, Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	keys := workload.Perm(4096, 3)
	want := append([]int64(nil), keys...)
	slices.Sort(want)
	if _, err := m.Sort(keys, ThreePassLMM); err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(keys, want) {
		t.Fatal("file-backed sort incorrect")
	}
}

func TestSortQuickProperty(t *testing.T) {
	m := newTestMachine(t, 256)
	f := func(raw []int64, algRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 4096 {
			raw = raw[:4096]
		}
		keys := make([]int64, len(raw))
		for i, v := range raw {
			if v == math.MaxInt64 {
				v--
			}
			keys[i] = v
		}
		algs := []Algorithm{ThreePassMesh, ThreePassLMM, TwoPassExpected, SevenPass}
		want := append([]int64(nil), keys...)
		slices.Sort(want)
		if _, err := m.Sort(keys, algs[int(algRaw)%len(algs)]); err != nil {
			return false
		}
		return slices.Equal(keys, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestAlgorithmStrings(t *testing.T) {
	for alg := Auto; alg <= MemOnePass; alg++ {
		if alg.String() == "" {
			t.Fatalf("empty name for %d", alg)
		}
	}
	if Algorithm(99).String() != "Algorithm(99)" {
		t.Fatal("unknown algorithm name")
	}
}
