// Integer sorting: the paper's Section 7 motivation is bounded-universe
// keys — "weather data, market data … social security numbers", i.e. 32-bit
// integers.  RadixSort handles ANY input size in a constant number of
// passes, where the comparison algorithms are capped at M².
//
// This example sorts synthetic 32-bit "records" far beyond the comparison
// algorithms' two-pass capacity and compares the measured passes with
// Observation 7.2's 3.6-pass reading.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro"
)

func main() {
	const mem = 1 << 12 // M = 4096, B = 64, D = 16 (C = 4)
	m, err := repro.NewMachine(repro.MachineConfig{Memory: mem})
	if err != nil {
		log.Fatal(err)
	}
	defer m.Close()

	const universe = int64(1) << 32 // 32-bit keys
	rng := rand.New(rand.NewSource(7))

	for _, n := range []int{mem * 64, mem * 1024, mem * 4096} {
		keys := make([]int64, n)
		for i := range keys {
			keys[i] = rng.Int63n(universe)
		}
		report, err := m.SortInts(keys, universe)
		if err != nil {
			log.Fatal(err)
		}
		for i := 1; i < len(keys); i++ {
			if keys[i] < keys[i-1] {
				log.Fatal("output not sorted")
			}
		}
		fmt.Printf("N = %8d (N/M = %4d): %.3f read passes, %.3f write passes\n",
			n, n/mem, report.ReadPasses, report.WritePasses)
	}
	fmt.Println("\nObservation 7.2: at N = M^2, B = sqrt(M), C = 4 the paper bounds RadixSort by 3.6 passes;")
	fmt.Println("the N/M = 4096 row is that configuration (constants differ at simulator scale, shape holds).")
}
