// Quickstart: sort a million keys on a simulated Parallel Disk Model and
// read off the pass count — the paper's measure of out-of-core cost.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro"
)

func main() {
	// A machine with M = 2^16 keys of internal memory.  The paper's
	// algorithms use block size B = √M = 256 and the default D = √M/4 = 64
	// disks (the running example C = 4).
	m, err := repro.NewMachine(repro.MachineConfig{Memory: 1 << 16})
	if err != nil {
		log.Fatal(err)
	}
	defer m.Close()

	keys := make([]int64, 1_000_000)
	rng := rand.New(rand.NewSource(1))
	for i := range keys {
		keys[i] = rng.Int63() - 1
	}

	// Auto picks the cheapest algorithm whose capacity covers the input:
	// here N < M^1.5, well inside ExpectedTwoPass territory.
	report, err := m.Sort(keys, repro.Auto)
	if err != nil {
		log.Fatal(err)
	}
	for i := 1; i < len(keys); i++ {
		if keys[i] < keys[i-1] {
			log.Fatal("output not sorted")
		}
	}
	fmt.Printf("sorted %d keys with %s\n", report.N, report.Algorithm)
	fmt.Printf("read passes:  %.3f\n", report.ReadPasses)
	fmt.Printf("write passes: %.3f\n", report.WritePasses)
	fmt.Printf("fell back:    %v\n", report.FellBack)
	fmt.Printf("raw I/O:      %s\n", report.IO)
}
