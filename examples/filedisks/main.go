// File-backed disks: the same algorithms running against D real files with
// one goroutine per disk doing the I/O — the closest a single machine gets
// to the paper's D independent disks.  The pass accounting is identical to
// the in-memory simulator; what changes is that you can watch the disk
// files on the filesystem.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"

	"repro"
)

func main() {
	dir, err := os.MkdirTemp("", "pdm-disks-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	const mem = 1 << 12 // M = 4096 -> B = 64, D = 16
	m, err := repro.NewMachine(repro.MachineConfig{
		Memory: mem,
		Dir:    dir,
		// Stream every pass: prefetch 4 stripes ahead, flush 4 behind.
		// Pass accounting is unchanged; wall-clock time on real devices is not.
		Pipeline: repro.PipelineConfig{Prefetch: 4, WriteBehind: 4},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer m.Close()

	n := mem * 64 // M * sqrt(M): the three-pass capacity
	keys := make([]int64, n)
	rng := rand.New(rand.NewSource(11))
	for i := range keys {
		keys[i] = rng.Int63() - 1
	}

	rep, err := m.Sort(keys, repro.ThreePassLMM)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sorted %d keys on file-backed disks in %.3f read passes\n", rep.N, rep.ReadPasses)
	fmt.Printf("pipeline: %d prefetch hits, %d stalls, %d write stalls\n",
		rep.PrefetchHits, rep.PrefetchStalls, rep.WriteStalls)

	files, err := filepath.Glob(filepath.Join(dir, "disk*.bin"))
	if err != nil {
		log.Fatal(err)
	}
	var total int64
	for _, f := range files {
		st, err := os.Stat(f)
		if err != nil {
			log.Fatal(err)
		}
		total += st.Size()
	}
	fmt.Printf("disk files: %d files, %d bytes total (input + runs + merge output)\n", len(files), total)
	fmt.Printf("first disk: %s\n", files[0])
}
