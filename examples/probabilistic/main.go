// Probabilistic sorting: the paper's central thesis is that algorithms
// taking few passes on an overwhelming fraction of inputs are worth having,
// because failures are *detected* (by tracking the largest key shipped out)
// and repaired by a deterministic fallback.
//
// This example runs ExpectedTwoPass on random inputs (2 passes, no
// fallback) and then on an adversarial input engineered to overflow the
// cleanup window, showing detection + fallback in action — output correct
// either way.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	"repro"
)

func main() {
	const mem = 1 << 12
	m, err := repro.NewMachine(repro.MachineConfig{Memory: mem})
	if err != nil {
		log.Fatal(err)
	}
	defer m.Close()

	n := m.Capacity(repro.TwoPassExpected)
	fmt.Printf("machine: M = %d; ExpectedTwoPass reliable capacity = %d keys\n\n", mem, n)

	// Random inputs: two passes, w.h.p. no fallback.
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 3; trial++ {
		keys := make([]int64, n)
		for i := range keys {
			keys[i] = rng.Int63() - 1
		}
		rep, err := m.Sort(keys, repro.TwoPassExpected)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("random input %d: %.3f read passes, fell back = %v\n",
			trial, rep.ReadPasses, rep.FellBack)
	}

	// Adversarial input: the M-key segments appear in reverse order, so
	// after run formation the shuffle leaves keys ~N from home — far
	// beyond the cleanup window.  Detection must fire and the fallback
	// (the three-pass LMM algorithm of Lemma 4.1) resorts the input.
	keys := make([]int64, n)
	segs := n / mem
	v := int64(0)
	for s := segs - 1; s >= 0; s-- {
		for i := 0; i < mem; i++ {
			keys[s*mem+i] = v
			v++
		}
	}
	rep, err := m.Sort(keys, repro.TwoPassExpected)
	if err != nil {
		log.Fatal(err)
	}
	if !sort.SliceIsSorted(keys, func(i, j int) bool { return keys[i] < keys[j] }) {
		log.Fatal("output not sorted")
	}
	fmt.Printf("\nadversarial input: %.3f read passes, fell back = %v (2 wasted + 3 fallback, aborted early)\n",
		rep.ReadPasses, rep.FellBack)
	fmt.Println("output verified sorted in both regimes — failures are detected, never silent.")
}
