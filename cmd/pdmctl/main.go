// Command pdmctl drives pdmd nodes from the command line: single-node job
// control (submit/status/cancel/health against one daemon) and the
// distributed coordinator (sort: sample, range-partition and stream-merge
// one job across many daemons, printing the aggregated report).
//
//	pdmctl health -worker http://host:8080
//	pdmctl submit -worker http://host:8080 -spec '{"workload":{"kind":"zipf","n":100000,"seed":7}}'
//	pdmctl status -worker http://host:8080 -id 1 -watch
//	pdmctl jobs -worker http://host:8080
//	pdmctl cancel -worker http://host:8080 -id 1
//	pdmctl sort -workers http://a:8080,http://b:8080 -kind perm -n 1000000 -seed 1
//
// sort generates the workload locally (the same generators pdmd uses
// server-side), runs the distributed job, verifies the merged output is
// sorted, and prints the fleet report as JSON.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"slices"
	"strings"
	"syscall"
	"text/tabwriter"
	"time"

	"repro"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "health":
		err = cmdHealth(os.Args[2:])
	case "submit":
		err = cmdSubmit(os.Args[2:])
	case "status":
		err = cmdStatus(os.Args[2:])
	case "jobs":
		err = cmdJobs(os.Args[2:])
	case "cancel":
		err = cmdCancel(os.Args[2:])
	case "sort":
		err = cmdSort(os.Args[2:])
	case "topk", "quantile", "groupby", "ingest":
		err = cmdScenario(os.Args[1], os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "pdmctl: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: pdmctl <command> [flags]

commands:
  health  probe one daemon's /healthz
  submit  submit a job spec to one daemon
  status  poll one job's status (-watch follows it to completion)
  jobs    list every job the daemon knows, with recovery provenance
  cancel  cancel one job
  sort    run a distributed sort across many daemons

query scenarios (single daemon; -plan prints the cost comparison only):
  topk      k smallest keys of a generated dataset   (-k)
  quantile  the key of a target rank                  (-rank, 0 = median)
  groupby   count/sum/min/max aggregation by key      (-groups hint)
  ingest    fold a batch into a sorted dataset        (-batch)`)
}

var httpClient = &http.Client{Timeout: 30 * time.Second}

// call runs one JSON request against a daemon and decodes the answer.
func call(method, url string, body []byte) (json.RawMessage, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := httpClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(raw, &e) == nil && e.Error != "" {
			return nil, fmt.Errorf("%s: %s", resp.Status, e.Error)
		}
		return nil, fmt.Errorf("%s: %s", resp.Status, raw)
	}
	return raw, nil
}

func printJSON(raw any) error {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(raw)
}

func cmdHealth(args []string) error {
	fs := flag.NewFlagSet("health", flag.ExitOnError)
	worker := fs.String("worker", "http://localhost:8080", "daemon base URL")
	fs.Parse(args) //nolint:errcheck // ExitOnError
	raw, err := call(http.MethodGet, *worker+"/healthz", nil)
	if err != nil {
		return err
	}
	return printJSON(raw)
}

func cmdSubmit(args []string) error {
	fs := flag.NewFlagSet("submit", flag.ExitOnError)
	worker := fs.String("worker", "http://localhost:8080", "daemon base URL")
	spec := fs.String("spec", "", "job spec JSON (the POST /jobs body)")
	fs.Parse(args) //nolint:errcheck // ExitOnError
	if *spec == "" {
		return fmt.Errorf("submit: -spec is required")
	}
	raw, err := call(http.MethodPost, *worker+"/jobs", []byte(*spec))
	if err != nil {
		return err
	}
	return printJSON(raw)
}

func cmdStatus(args []string) error {
	fs := flag.NewFlagSet("status", flag.ExitOnError)
	worker := fs.String("worker", "http://localhost:8080", "daemon base URL")
	id := fs.Int("id", 0, "job id")
	watch := fs.Bool("watch", false, "poll until the job reaches a terminal state")
	fs.Parse(args) //nolint:errcheck // ExitOnError
	for {
		raw, err := call(http.MethodGet, fmt.Sprintf("%s/jobs/%d", *worker, *id), nil)
		if err != nil {
			return err
		}
		var st repro.JobStatus
		if err := json.Unmarshal(raw, &st); err != nil {
			return err
		}
		// Suspended is terminal for this daemon life: the job will not move
		// again until a new pdmd replays the journal.
		terminal := st.State == repro.JobDone || st.State == repro.JobFailed ||
			st.State == repro.JobCanceled || st.State == repro.JobSuspended
		if !*watch || terminal {
			if p := provenance(st.Recovery); p != "" {
				fmt.Fprintf(os.Stderr, "pdmctl: job %d %s\n", st.ID, p)
			}
			return printJSON(raw)
		}
		time.Sleep(250 * time.Millisecond)
	}
}

// provenance renders a recovered job's origin for humans; "" for jobs
// submitted to this daemon life.
func provenance(rec *repro.RecoveryInfo) string {
	switch {
	case rec == nil:
		return ""
	case rec.ResumedFromPass > 0:
		return fmt.Sprintf("resumed from pass %d checkpoint", rec.ResumedFromPass)
	case rec.RestartedFromInput:
		return "recovered; restarted from input (scratch unusable)"
	case rec.WasRunning:
		return "recovered mid-run; not rerun yet"
	default:
		return "recovered from the journal queue"
	}
}

// cmdJobs lists every job the daemon knows — including ones replayed from
// the journal after a restart — as a table, or raw JSON with -json.
func cmdJobs(args []string) error {
	fs := flag.NewFlagSet("jobs", flag.ExitOnError)
	worker := fs.String("worker", "http://localhost:8080", "daemon base URL")
	asJSON := fs.Bool("json", false, "print the raw status list instead of a table")
	fs.Parse(args) //nolint:errcheck // ExitOnError
	raw, err := call(http.MethodGet, *worker+"/jobs", nil)
	if err != nil {
		return err
	}
	if *asJSON {
		return printJSON(raw)
	}
	var jobs []repro.JobStatus
	if err := json.Unmarshal(raw, &jobs); err != nil {
		return err
	}
	tw := tabwriter.NewWriter(os.Stdout, 2, 8, 2, ' ', 0)
	fmt.Fprintln(tw, "ID\tSTATE\tALG\tN\tLABEL\tRECOVERY")
	for _, j := range jobs {
		fmt.Fprintf(tw, "%d\t%s\t%s\t%d\t%s\t%s\n",
			j.ID, j.State, j.Algorithm, j.N, j.Label, provenance(j.Recovery))
	}
	return tw.Flush()
}

func cmdCancel(args []string) error {
	fs := flag.NewFlagSet("cancel", flag.ExitOnError)
	worker := fs.String("worker", "http://localhost:8080", "daemon base URL")
	id := fs.Int("id", 0, "job id")
	fs.Parse(args) //nolint:errcheck // ExitOnError
	raw, err := call(http.MethodPost, fmt.Sprintf("%s/jobs/%d/cancel", *worker, *id), nil)
	if err != nil {
		return err
	}
	return printJSON(raw)
}

// cmdScenario submits one query-scenario job to a single daemon, waits for
// it, and prints the status plus the result page.  With -plan it only asks
// GET /plan/scenario for the cost comparison (scenario route vs full sort)
// and prints that.
//
//	pdmctl groupby -worker http://host:8080 -kind fewdistinct -n 1000000 -distinct 500
//	pdmctl topk -worker http://host:8080 -n 1000000 -k 100 -plan
func cmdScenario(kind string, args []string) error {
	fs := flag.NewFlagSet(kind, flag.ExitOnError)
	worker := fs.String("worker", "http://localhost:8080", "daemon base URL")
	wkind := fs.String("kind", "perm", "dataset workload kind (ingest always uses \"sorted\")")
	n := fs.Int("n", 1<<20, "dataset size in keys")
	seed := fs.Int64("seed", 1, "workload seed")
	k := fs.Int("k", 100, "top-K count (topk)")
	rank := fs.Int("rank", 0, "1-indexed target rank (quantile; 0 = median)")
	groups := fs.Int("groups", 0, "distinct-group hint (groupby; 0 = unknown)")
	distinct := fs.Int("distinct", 0, "distinct values for zipf/fewdistinct workloads")
	batch := fs.Int("batch", 1<<14, "batch size (ingest)")
	limit := fs.Int("limit", 32, "result keys/groups to print")
	planOnly := fs.Bool("plan", false, "print the scenario plan, run nothing")
	label := fs.String("label", "pdmctl", "job label")
	fs.Parse(args) //nolint:errcheck // ExitOnError

	spec := repro.JobSpec{
		Workload: &repro.WorkloadSpec{Kind: *wkind, N: *n, Seed: *seed, Distinct: *distinct},
		Scenario: kind,
		Label:    *label,
	}
	switch kind {
	case "topk":
		spec.TopK = *k
	case "quantile":
		if *rank == 0 {
			*rank = (*n + 1) / 2
		}
		spec.Rank = *rank
	case "groupby":
		spec.Groups = *groups
	case "ingest":
		spec.Workload.Kind = "sorted"
		bk, err := (&repro.WorkloadSpec{Kind: "uniform", N: *batch, Seed: *seed}).Generate()
		if err != nil {
			return err
		}
		spec.IngestBatch = bk
	}
	body, err := json.Marshal(spec)
	if err != nil {
		return err
	}
	if *planOnly {
		raw, err := call(http.MethodPost, *worker+"/plan/scenario", body)
		if err != nil {
			return err
		}
		return printJSON(raw)
	}
	raw, err := call(http.MethodPost, *worker+"/jobs", body)
	if err != nil {
		return err
	}
	var st repro.JobStatus
	if err := json.Unmarshal(raw, &st); err != nil {
		return err
	}
	for st.State == repro.JobQueued || st.State == repro.JobRunning {
		time.Sleep(250 * time.Millisecond)
		if raw, err = call(http.MethodGet, fmt.Sprintf("%s/jobs/%d", *worker, st.ID), nil); err != nil {
			return err
		}
		if err := json.Unmarshal(raw, &st); err != nil {
			return err
		}
	}
	if err := printJSON(raw); err != nil {
		return err
	}
	if st.State != repro.JobDone {
		return fmt.Errorf("%s: job %d ended %s: %s", kind, st.ID, st.State, st.Error)
	}
	path := fmt.Sprintf("%s/jobs/%d/result?limit=%d", *worker, st.ID, *limit)
	if kind == "groupby" {
		path = fmt.Sprintf("%s/jobs/%d/groups?limit=%d", *worker, st.ID, *limit)
	}
	res, err := call(http.MethodGet, path, nil)
	if err != nil {
		return err
	}
	return printJSON(res)
}

func cmdSort(args []string) error {
	fs := flag.NewFlagSet("sort", flag.ExitOnError)
	workers := fs.String("workers", "", "comma-separated daemon base URLs")
	kind := fs.String("kind", "perm", "workload kind (perm, uniform, zipf, sortedruns, ...)")
	n := fs.Int("n", 1<<20, "number of keys")
	seed := fs.Int64("seed", 1, "workload seed")
	payloadMin := fs.Int("payloadmin", 0, "payload min bytes (records sort when max > 0)")
	payloadMax := fs.Int("payloadmax", 0, "payload max bytes")
	alg := fs.String("alg", "", "per-shard algorithm (empty = worker auto)")
	kernel := fs.String("kernel", "", "per-shard in-memory kernel")
	latencyUS := fs.Int64("latency", 0, "modeled per-block latency in microseconds")
	page := fs.Int("page", 0, "upload/download page size in keys (0 = default)")
	conc := fs.Int("conc", 0, "concurrent page uploads (0 = default)")
	timeout := fs.Duration("timeout", 0, "per-request timeout (0 = default)")
	label := fs.String("label", "pdmctl", "job label prefix")
	fs.Parse(args) //nolint:errcheck // ExitOnError
	if *workers == "" {
		return fmt.Errorf("sort: -workers is required")
	}

	keys, err := (&repro.WorkloadSpec{Kind: *kind, N: *n, Seed: *seed}).Generate()
	if err != nil {
		return err
	}
	var payloads [][]byte
	if *payloadMax > 0 {
		payloads = (&repro.PayloadSpec{MinBytes: *payloadMin, MaxBytes: *payloadMax}).Materialize(len(keys), *seed)
	}

	ds, err := repro.NewDistSorter(repro.DistConfig{
		Workers:        strings.Split(*workers, ","),
		PageKeys:       *page,
		Concurrency:    *conc,
		RequestTimeout: *timeout,
		Alg:            *alg,
		Kernel:         *kernel,
		BlockLatencyUS: *latencyUS,
		Label:          *label,
	})
	if err != nil {
		return err
	}

	// Ctrl-C cancels the distributed job, which fans the cancel out to
	// every worker before exiting.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var (
		sorted []int64
		rep    *repro.DistReport
	)
	if payloads != nil {
		sorted, _, rep, err = ds.SortRecords(ctx, keys, payloads)
	} else {
		sorted, rep, err = ds.Sort(ctx, keys)
	}
	if err != nil {
		return err
	}
	if !slices.IsSorted(sorted) {
		return fmt.Errorf("sort: merged output is not sorted (coordinator bug)")
	}
	return printJSON(rep)
}
