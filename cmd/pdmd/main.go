// Command pdmd serves the PDM sorting stack over HTTP: a repro.Scheduler
// admits concurrent sort jobs against global memory, disk, and worker
// budgets, and this daemon exposes its job API as JSON endpoints.
//
//	POST /jobs               submit a job (inline keys, optionally with
//	                         per-record payloads, or a workload spec)
//	GET  /plan               dry-run the cost-model planner for a job spec:
//	                         the ranked candidate table (predicted passes,
//	                         padded lengths, calibrated seconds) and the
//	                         chosen algorithm, with nothing admitted
//	                         (also accepted as POST /plan)
//	GET  /jobs               list all jobs
//	GET  /jobs/{id}          poll one job's status (report when done)
//	POST /jobs/{id}/cancel   cancel a queued or running job
//	GET  /jobs/{id}/keys     fetch the sorted keys (keepKeys jobs only)
//	GET  /jobs/{id}/records  fetch sorted keys + payloads (records jobs)
//	GET  /stats              aggregate scheduler statistics as JSON
//	GET  /metrics            the same in Prometheus text format
//	GET  /debug/pprof/...    Go profiling handlers (only with -pprof)
//
// A submit body may set "kernel" ("auto", "comparison", or "radix") to
// override the daemon's -kernel default for that job; the sorted output
// is identical for any kernel, only wall-clock changes.
//
// Both output endpoints paginate with ?offset=N&limit=M: limit clamps
// overflow-safely to the remaining records, while an offset beyond the
// record count is a 400 — so a client paging with a stale total can tell
// "end of data" (an empty 200 page at offset == n) from a bad request.
//
// Example session:
//
//	pdmd -addr :8080 -mem 1048576 -jobmem 65536 &
//	curl -s -X POST localhost:8080/jobs -d \
//	  '{"workload":{"kind":"zipf","n":1000000,"seed":7},"alg":"lmm3"}'
//	curl -s localhost:8080/jobs/1
//	curl -s localhost:8080/metrics
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"repro"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	mem := flag.Int("mem", 1<<20, "global internal-memory budget in keys")
	diskBudget := flag.Int("diskbudget", 0, "global scratch budget in keys (0 = 64x mem)")
	workers := flag.Int("workers", 0, "global compute budget (0 = GOMAXPROCS)")
	jobMem := flag.Int("jobmem", 65536, "default per-job internal memory M in keys (perfect square)")
	scratch := flag.String("scratch", "", "scratch directory for file-backed job disks (default: in-memory disks)")
	backend := flag.String("backend", "", "default disk backend for file-backed jobs: file or mmap (requires -scratch)")
	kernel := flag.String("kernel", "", "default in-memory sort kernel: auto, comparison, or radix")
	pprofOn := flag.Bool("pprof", false, "expose net/http/pprof handlers under /debug/pprof/")
	queue := flag.Int("queue", 0, "admission queue bound (0 = 1024)")
	prefetch := flag.Int("prefetch", 2, "default per-job prefetch depth in stripes")
	writeBehind := flag.Int("writebehind", 2, "default per-job write-behind depth in stripes")
	maxBody := flag.Int64("maxbody", 64<<20, "largest accepted submit body in bytes")
	flag.Parse()

	sch, err := repro.NewScheduler(repro.SchedulerConfig{
		Memory:     *mem,
		DiskBudget: *diskBudget,
		Workers:    *workers,
		JobMemory:  *jobMem,
		Dir:        *scratch,
		Backend:    *backend,
		Kernel:     *kernel,
		MaxQueue:   *queue,
		Pipeline:   repro.PipelineConfig{Prefetch: *prefetch, WriteBehind: *writeBehind},
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "pdmd: %v\n", err)
		os.Exit(1)
	}
	srv := &http.Server{Addr: *addr, Handler: newServer(sch, *maxBody, *pprofOn)}
	go func() {
		stop := make(chan os.Signal, 1)
		signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
		<-stop
		log.Printf("pdmd: shutting down")
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx) //nolint:errcheck // exiting either way
		sch.Close()
	}()
	log.Printf("pdmd: serving on %s (mem budget %d keys, job M %d)", *addr, *mem, *jobMem)
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		fmt.Fprintf(os.Stderr, "pdmd: %v\n", err)
		os.Exit(1)
	}
}

// submitRequest is the POST /jobs body.
type submitRequest struct {
	Keys []int64 `json:"keys,omitempty"`
	// Payloads (base64-encoded byte strings, one per key) make the job a
	// full-record sort; so does a workload with a "payload" spec.
	Payloads [][]byte            `json:"payloads,omitempty"`
	Workload *repro.WorkloadSpec `json:"workload,omitempty"`
	// Alg names the algorithm (auto|one|mesh3|mesh2e|lmm3|exp2|exp3|seven|
	// six|sevenmesh); "radix" selects the Section 7 RadixSort, whose key
	// universe defaults to 2^32 unless set.
	Alg      string `json:"alg,omitempty"`
	Universe int64  `json:"universe,omitempty"`
	Memory   int    `json:"memory,omitempty"`
	Disks    int    `json:"disks,omitempty"`
	Workers  int    `json:"workers,omitempty"`
	// BlockLatencyUS models per-block device latency in microseconds.
	BlockLatencyUS int64 `json:"blockLatencyUs,omitempty"`
	// Backend overrides the scheduler's disk backend for this job ("file"
	// or "mmap"); valid only on a file-backed scheduler.
	Backend string `json:"backend,omitempty"`
	// Kernel overrides the scheduler's in-memory sort kernel for this job
	// ("auto", "comparison", or "radix"); output is identical either way.
	Kernel   string `json:"kernel,omitempty"`
	KeepKeys bool   `json:"keepKeys,omitempty"`
	Label    string `json:"label,omitempty"`
}

// server wraps the scheduler with the HTTP surface.
type server struct {
	sch     *repro.Scheduler
	maxBody int64
}

// newServer builds the pdmd handler around a scheduler (exposed for the
// end-to-end tests, which mount it on httptest).  maxBody caps the
// submit body size in bytes; <= 0 selects 64 MiB.  pprofOn additionally
// mounts the net/http/pprof profiling handlers under /debug/pprof/ —
// opt-in, because profiling endpoints on a job API are an operator
// decision, not a default.
func newServer(sch *repro.Scheduler, maxBody int64, pprofOn bool) http.Handler {
	if maxBody <= 0 {
		maxBody = 64 << 20
	}
	s := &server{sch: sch, maxBody: maxBody}
	mux := http.NewServeMux()
	if pprofOn {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	mux.HandleFunc("POST /jobs", s.submit)
	mux.HandleFunc("GET /plan", s.plan)
	mux.HandleFunc("POST /plan", s.plan)
	mux.HandleFunc("GET /jobs", s.list)
	mux.HandleFunc("GET /jobs/{id}", s.status)
	mux.HandleFunc("POST /jobs/{id}/cancel", s.cancel)
	mux.HandleFunc("GET /jobs/{id}/keys", s.keys)
	mux.HandleFunc("GET /jobs/{id}/records", s.records)
	mux.HandleFunc("GET /stats", s.stats)
	mux.HandleFunc("GET /metrics", s.metrics)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v) //nolint:errcheck // client went away
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

// decodeSpec reads and validates a submit (or plan) body into a JobSpec.
// The scheduler budgets every byte a job holds; the decode must not be
// the unbudgeted exception, so the body is hard-capped.
func (s *server) decodeSpec(w http.ResponseWriter, r *http.Request) (repro.JobSpec, bool) {
	var req submitRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.maxBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		code := http.StatusBadRequest
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			code = http.StatusRequestEntityTooLarge
		}
		writeError(w, code, fmt.Errorf("bad request body: %w", err))
		return repro.JobSpec{}, false
	}
	spec := repro.JobSpec{
		Keys:         req.Keys,
		Payloads:     req.Payloads,
		Workload:     req.Workload,
		Universe:     req.Universe,
		Memory:       req.Memory,
		Disks:        req.Disks,
		Workers:      req.Workers,
		BlockLatency: time.Duration(req.BlockLatencyUS) * time.Microsecond,
		Backend:      req.Backend,
		Kernel:       req.Kernel,
		KeepKeys:     req.KeepKeys,
		Label:        req.Label,
	}
	if req.Alg == "radix" {
		if spec.Universe < 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("universe %d: want > 0", spec.Universe))
			return repro.JobSpec{}, false
		}
		if spec.Universe == 0 {
			spec.Universe = 1 << 32
		}
	} else {
		if spec.Universe != 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("universe is only valid with alg=radix"))
			return repro.JobSpec{}, false
		}
		alg, err := repro.ParseAlgorithm(req.Alg)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return repro.JobSpec{}, false
		}
		spec.Algorithm = alg
	}
	return spec, true
}

func (s *server) submit(w http.ResponseWriter, r *http.Request) {
	spec, ok := s.decodeSpec(w, r)
	if !ok {
		return
	}
	id, err := s.sch.Submit(spec)
	if err != nil {
		code := http.StatusBadRequest
		if errors.Is(err, repro.ErrQueueFull) {
			code = http.StatusServiceUnavailable
		}
		writeError(w, code, err)
		return
	}
	st, _ := s.sch.Status(id)
	writeJSON(w, http.StatusAccepted, st)
}

// plan dry-runs the cost model for a would-be job: the body is the same
// JSON a submit takes, the answer the ranked candidate table (predicted
// passes, padded lengths, I/O words, calibrated seconds) with the chosen
// algorithm — no job is created and no resources are reserved.  Accepted
// on GET (the spec is a query, not a mutation) and POST (for clients that
// refuse GET bodies).
func (s *server) plan(w http.ResponseWriter, r *http.Request) {
	spec, ok := s.decodeSpec(w, r)
	if !ok {
		return
	}
	rep, err := s.sch.Explain(spec)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, rep)
}

func (s *server) jobID(w http.ResponseWriter, r *http.Request) (int, bool) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad job id %q", r.PathValue("id")))
		return 0, false
	}
	return id, true
}

func (s *server) status(w http.ResponseWriter, r *http.Request) {
	id, ok := s.jobID(w, r)
	if !ok {
		return
	}
	st, ok := s.sch.Status(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %d", id))
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *server) list(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.sch.Jobs())
}

func (s *server) cancel(w http.ResponseWriter, r *http.Request) {
	id, ok := s.jobID(w, r)
	if !ok {
		return
	}
	if !s.sch.Cancel(id) {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %d", id))
		return
	}
	st, _ := s.sch.Status(id)
	writeJSON(w, http.StatusOK, st)
}

// pageBounds parses and validates ?offset=N&limit=M against n records.
// The limit clamps overflow-safely to the remaining records (a huge limit
// must not overflow offset+limit into a negative slice bound), but an
// offset beyond n is a 400: silently rewriting it would hand a client
// paging with a stale total an empty 200 page indistinguishable from the
// end of the data.  offset == n is valid and yields the empty final page.
func pageBounds(w http.ResponseWriter, r *http.Request, n int) (offset, limit int, ok bool) {
	offset, limit = 0, n
	var err error
	if v := r.URL.Query().Get("offset"); v != "" {
		if offset, err = strconv.Atoi(v); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad offset %q", v))
			return 0, 0, false
		}
	}
	if v := r.URL.Query().Get("limit"); v != "" {
		if limit, err = strconv.Atoi(v); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad limit %q", v))
			return 0, 0, false
		}
	}
	if offset < 0 || offset > n {
		writeError(w, http.StatusBadRequest, fmt.Errorf("offset %d outside [0, %d]", offset, n))
		return 0, 0, false
	}
	if limit < 0 || limit > n-offset {
		limit = n - offset
	}
	return offset, limit, true
}

func (s *server) keys(w http.ResponseWriter, r *http.Request) {
	id, ok := s.jobID(w, r)
	if !ok {
		return
	}
	keys, err := s.sch.SortedKeys(id)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	offset, limit, ok := pageBounds(w, r, len(keys))
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"n":      len(keys),
		"offset": offset,
		"keys":   keys[offset : offset+limit],
	})
}

// records serves a completed records job's sorted output — keys paired
// with base64-encoded payloads — with the same pagination contract as
// keys.
func (s *server) records(w http.ResponseWriter, r *http.Request) {
	id, ok := s.jobID(w, r)
	if !ok {
		return
	}
	keys, payloads, err := s.sch.SortedRecords(id)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	offset, limit, ok := pageBounds(w, r, len(keys))
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"n":        len(keys),
		"offset":   offset,
		"keys":     keys[offset : offset+limit],
		"payloads": payloads[offset : offset+limit],
	})
}

func (s *server) stats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.sch.Stats())
}

// metrics renders the aggregate statistics in Prometheus text format: the
// per-job pass/overlap/utilization observability rolled up for scraping.
func (s *server) metrics(w http.ResponseWriter, r *http.Request) {
	st := s.sch.Stats()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	p := func(format string, args ...any) { fmt.Fprintf(w, format, args...) }
	p("# TYPE pdmd_jobs_total counter\n")
	p("pdmd_jobs_total{state=\"submitted\"} %d\n", st.Submitted)
	p("pdmd_jobs_total{state=\"completed\"} %d\n", st.Completed)
	p("pdmd_jobs_total{state=\"failed\"} %d\n", st.Failed)
	p("pdmd_jobs_total{state=\"canceled\"} %d\n", st.Canceled)
	p("# TYPE pdmd_jobs gauge\n")
	p("pdmd_jobs{state=\"queued\"} %d\n", st.Queued)
	p("pdmd_jobs{state=\"running\"} %d\n", st.Running)
	p("# TYPE pdmd_mem_keys gauge\n")
	p("pdmd_mem_keys{kind=\"in_use\"} %d\n", st.MemInUse)
	p("pdmd_mem_keys{kind=\"capacity\"} %d\n", st.MemCapacity)
	p("# TYPE pdmd_disk_keys gauge\n")
	p("pdmd_disk_keys{kind=\"in_use\"} %d\n", st.DiskInUse)
	p("pdmd_disk_keys{kind=\"capacity\"} %d\n", st.DiskCapacity)
	p("# TYPE pdmd_workers gauge\npdmd_workers %d\n", st.Workers)
	p("# TYPE pdmd_scratch_cleanup_failures_total counter\npdmd_scratch_cleanup_failures_total %d\n", st.CleanupFailures)
	p("# TYPE pdmd_keys_sorted_total counter\npdmd_keys_sorted_total %d\n", st.KeysSorted)
	p("# TYPE pdmd_passes_weighted_avg gauge\npdmd_passes_weighted_avg %g\n", st.PassesWeighted)
	p("# TYPE pdmd_prefetch_chunks_total counter\n")
	p("pdmd_prefetch_chunks_total{result=\"hit\"} %d\n", st.PrefetchHits)
	p("pdmd_prefetch_chunks_total{result=\"stall\"} %d\n", st.PrefetchStalls)
	p("# TYPE pdmd_write_stalls_total counter\npdmd_write_stalls_total %d\n", st.WriteStalls)
	p("# TYPE pdmd_compute_seconds_total counter\npdmd_compute_seconds_total %g\n", st.ComputeSeconds)
	p("# TYPE pdmd_worker_utilization gauge\npdmd_worker_utilization %g\n", st.WorkerUtilization)
	p("# TYPE pdmd_jobs_per_second gauge\npdmd_jobs_per_second %g\n", st.JobsPerSecond)
	p("# TYPE pdmd_uptime_seconds gauge\npdmd_uptime_seconds %g\n", st.UptimeSeconds)
}
