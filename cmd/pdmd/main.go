// Command pdmd serves the PDM sorting stack over HTTP: a repro.Scheduler
// admits concurrent sort jobs against global memory, disk, and worker
// budgets, and this daemon exposes its job API as JSON endpoints.  The
// handler itself lives in internal/pdmdapi (see its package doc for the
// endpoint reference, including the staged-uploads protocol used by the
// distributed-sort coordinator); this command is the flags and the
// listener.
//
// Example session:
//
//	pdmd -addr :8080 -mem 1048576 -jobmem 65536 &
//	curl -s -X POST localhost:8080/jobs -d \
//	  '{"workload":{"kind":"zipf","n":1000000,"seed":7},"alg":"lmm3"}'
//	curl -s localhost:8080/jobs/1
//	curl -s localhost:8080/metrics
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro"
	"repro/internal/pdmdapi"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	mem := flag.Int("mem", 1<<20, "global internal-memory budget in keys")
	diskBudget := flag.Int("diskbudget", 0, "global scratch budget in keys (0 = 64x mem)")
	workers := flag.Int("workers", 0, "global compute budget (0 = GOMAXPROCS)")
	jobMem := flag.Int("jobmem", 65536, "default per-job internal memory M in keys (perfect square)")
	scratch := flag.String("scratch", "", "scratch directory for file-backed job disks (default: in-memory disks)")
	backend := flag.String("backend", "", "default disk backend for file-backed jobs: file or mmap (requires -scratch)")
	kernel := flag.String("kernel", "", "default in-memory sort kernel: auto, comparison, or radix")
	pprofOn := flag.Bool("pprof", false, "expose net/http/pprof handlers under /debug/pprof/")
	queue := flag.Int("queue", 0, "admission queue bound (0 = 1024)")
	prefetch := flag.Int("prefetch", 2, "default per-job prefetch depth in stripes")
	writeBehind := flag.Int("writebehind", 2, "default per-job write-behind depth in stripes")
	maxBody := flag.Int64("maxbody", 64<<20, "largest accepted submit body in bytes")
	maxStaged := flag.Int64("maxstaged", 256<<20, "total bytes held by in-flight staged uploads")
	journalDir := flag.String("journal", "", "journal directory for durable jobs: submissions and pass checkpoints are fsynced there and replayed on restart")
	drainWait := flag.Duration("drainwait", 30*time.Second, "how long SIGTERM waits for running jobs to park at a pass checkpoint (journaled daemons only)")
	flag.Parse()

	sch, err := repro.NewScheduler(repro.SchedulerConfig{
		Memory:     *mem,
		DiskBudget: *diskBudget,
		Workers:    *workers,
		JobMemory:  *jobMem,
		Dir:        *scratch,
		Backend:    *backend,
		Kernel:     *kernel,
		MaxQueue:   *queue,
		Pipeline:   repro.PipelineConfig{Prefetch: *prefetch, WriteBehind: *writeBehind},
		JournalDir: *journalDir,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "pdmd: %v\n", err)
		os.Exit(1)
	}
	if n := sch.Health().Recovered; n > 0 {
		log.Printf("pdmd: recovered %d job(s) from the journal", n)
	}
	handler := pdmdapi.New(sch, pdmdapi.Options{
		MaxBody:        *maxBody,
		MaxStagedBytes: *maxStaged,
		Pprof:          *pprofOn,
	})
	srv := &http.Server{Addr: *addr, Handler: handler}
	go func() {
		stop := make(chan os.Signal, 1)
		signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
		sig := <-stop
		log.Printf("pdmd: shutting down (%v)", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx) //nolint:errcheck // exiting either way
		if sig == syscall.SIGTERM && *journalDir != "" {
			// A journaled daemon drains on SIGTERM: running jobs park at
			// their next pass checkpoint (scratch kept, manifest fsynced)
			// and queued jobs stay journaled, so the next pdmd over the
			// same -journal and -scratch picks everything back up.
			dctx, dcancel := context.WithTimeout(context.Background(), *drainWait)
			defer dcancel()
			if err := sch.Drain(dctx); err != nil {
				log.Printf("pdmd: forced drain: %v", err)
			}
		} else {
			sch.Close()
		}
	}()
	log.Printf("pdmd: serving on %s (mem budget %d keys, job M %d)", *addr, *mem, *jobMem)
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		fmt.Fprintf(os.Stderr, "pdmd: %v\n", err)
		os.Exit(1)
	}
}
