// Command experiments regenerates every table of EXPERIMENTS.md: the
// empirical verification of each theorem, lemma and observation of
// Rajasekaran & Sen's "PDM Sorting Algorithms That Take A Small Number Of
// Passes" (IPPS 2005), plus the design-choice ablations of DESIGN.md.
//
// Usage:
//
//	experiments [-quick] [-only E07]
//
// -quick runs the reduced scale (seconds instead of minutes); -only filters
// tables whose title contains the given substring.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	quick := flag.Bool("quick", false, "run the reduced-scale suite")
	only := flag.String("only", "", "only print tables whose title contains this substring")
	flag.Parse()

	scale := experiments.FullScale
	if *quick {
		scale = experiments.QuickScale
	}
	start := time.Now()
	tables, err := experiments.All(scale)
	for _, tb := range tables {
		if *only != "" && !strings.Contains(tb.Title, *only) {
			continue
		}
		fmt.Println(tb.String())
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("regenerated %d tables in %v\n", len(tables), time.Since(start).Round(time.Millisecond))
}
