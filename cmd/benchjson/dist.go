package main

import (
	"context"
	"fmt"
	"net/http/httptest"
	"slices"
	"time"

	"repro"
	"repro/internal/pdmdapi"
)

// distLatency is the modeled per-block device latency for the distributed
// series.  It has to be large enough that the device — not the in-memory
// kernel — is the bottleneck, because the scaling claim is about I/O
// spread across independent nodes: with D machines standing in for the
// PDM's D disks, the latency-dominated wall should shrink near-linearly
// in the worker count.
const distLatency = 40 * time.Microsecond

// distSeries measures the distributed scale series: a single-machine
// baseline, then the same latency-modeled sort across in-process pdmd
// fleets of 1, 2 and 4 workers, every fleet torn down before the next so
// rows don't contend.
func distSeries(n, mem int) ([]distBench, error) {
	latencyUS := int64(distLatency / time.Microsecond)
	keys, err := (&repro.WorkloadSpec{Kind: "uniform", N: n, Seed: 1}).Generate()
	if err != nil {
		return nil, err
	}

	var rows []distBench

	// Single-machine baseline: the same job with the same modeled
	// latency, no coordinator and no HTTP.
	m, err := repro.NewMachine(repro.MachineConfig{
		Memory:       mem,
		BlockLatency: distLatency,
		Pipeline:     repro.PipelineConfig{Prefetch: 2, WriteBehind: 2},
	})
	if err != nil {
		return nil, err
	}
	t0 := time.Now()
	rep, err := m.Sort(slices.Clone(keys), repro.Auto)
	if err != nil {
		m.Close()
		return nil, err
	}
	wall := time.Since(t0).Seconds()
	m.Close()
	rows = append(rows, distBench{
		Workers:        1,
		SingleMachine:  true,
		N:              n,
		BlockLatencyUS: latencyUS,
		Passes:         rep.Passes,
		WallSeconds:    wall,
		WordsPerSec:    float64(n) / wall,
	})

	var oneWorker float64
	for _, workers := range []int{1, 2, 4} {
		row, err := distOnce(keys, workers, mem, latencyUS)
		if err != nil {
			return nil, fmt.Errorf("%d workers: %w", workers, err)
		}
		if workers == 1 {
			oneWorker = row.WordsPerSec
		} else if oneWorker > 0 {
			row.SpeedupVsOneWorker = row.WordsPerSec / oneWorker
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// distOnce runs one distributed sort over a fresh in-process fleet: real
// schedulers behind the real HTTP handler, so the row includes the full
// coordinator path (sampling, paged uploads, merge) and not just the
// shard sorts.
func distOnce(keys []int64, workers, mem int, latencyUS int64) (distBench, error) {
	row := distBench{Workers: workers, N: len(keys), BlockLatencyUS: latencyUS}
	var (
		urls    []string
		servers []*httptest.Server
		scheds  []*repro.Scheduler
	)
	defer func() {
		for _, ts := range servers {
			ts.Close()
		}
		for _, sch := range scheds {
			sch.Close()
		}
	}()
	for i := 0; i < workers; i++ {
		sch, err := repro.NewScheduler(repro.SchedulerConfig{
			Memory:    1 << 20,
			Workers:   2,
			JobMemory: mem,
			Pipeline:  repro.PipelineConfig{Prefetch: 2, WriteBehind: 2},
		})
		if err != nil {
			return row, err
		}
		scheds = append(scheds, sch)
		ts := httptest.NewServer(pdmdapi.New(sch, pdmdapi.Options{MaxBody: 64 << 20}))
		servers = append(servers, ts)
		urls = append(urls, ts.URL)
	}
	ds, err := repro.NewDistSorter(repro.DistConfig{
		Workers:        urls,
		BlockLatencyUS: latencyUS,
		Label:          "benchjson",
	})
	if err != nil {
		return row, err
	}
	t0 := time.Now()
	sorted, rep, err := ds.Sort(context.Background(), slices.Clone(keys))
	if err != nil {
		return row, err
	}
	row.WallSeconds = time.Since(t0).Seconds()
	if !slices.IsSorted(sorted) || len(sorted) != len(keys) {
		return row, fmt.Errorf("merged output invalid (%d keys)", len(sorted))
	}
	row.Passes = rep.Passes
	row.WordsPerSec = float64(len(keys)) / row.WallSeconds
	return row, nil
}
