// Command benchjson measures the repository's headline performance —
// end-to-end sort throughput per algorithm, scheduler jobs/sec under a
// concurrent mixed batch, full-record sort throughput across payload
// widths, a paired disk-backend comparison (the same full-record sort on
// file vs mmap disks, with and without modeled block latency), a paired
// compute-kernel comparison (comparison introsort vs LSD radix run
// formation at memory-load size, across worker counts and backends), and
// the cost-model planner's prediction accuracy (predicted vs measured
// seconds per algorithm) — and writes the results as one JSON document
// (BENCH_pr10.json by default).  With -dist it adds the distributed scale
// series: the same latency-modeled sort run single-machine and across
// in-process pdmd fleets of 1, 2 and 4 workers, recording words/sec and
// the speedup over one worker.  With -scenarios it adds the query
// scenario series: top-K and sorted-merge ingest on latency-modeled file
// disks against the full-sort baseline, recording each row's speedup.
// CI runs it on every push and uploads the file as an artifact, so the
// perf trajectory of the reproduction — and any calibration drift in the
// planner — is recorded per commit instead of living only in benchmark
// logs.
//
//	benchjson [-out BENCH_pr10.json] [-n 262144] [-mem 4096] [-jobs 12] \
//	          [-workers 0] [-backend file|mmap] [-kernel comparison|radix] \
//	          [-dist] [-scenarios]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro"
	"repro/internal/par"
)

// endToEnd is one single-machine sort measurement.
type endToEnd struct {
	Algorithm   string  `json:"algorithm"`
	N           int     `json:"n"`
	Passes      float64 `json:"passes"`
	WallSeconds float64 `json:"wallSeconds"`
	KeysPerSec  float64 `json:"keysPerSec"`
	Overlap     float64 `json:"overlap"`
	Workers     int     `json:"workers"`
}

// schedulerBench is the concurrent mixed-batch measurement.
type schedulerBench struct {
	Jobs        int     `json:"jobs"`
	KeysTotal   int64   `json:"keysTotal"`
	Workers     int     `json:"workers"`
	WallSeconds float64 `json:"wallSeconds"`
	JobsPerSec  float64 `json:"jobsPerSec"`
	KeysPerSec  float64 `json:"keysPerSec"`
	Passes      float64 `json:"passesWeighted"`
}

// recordsBench is one full-record sort measurement: keys plus byte
// payloads through SortRecords and the external permutation pass.
type recordsBench struct {
	Name          string  `json:"name"`
	N             int     `json:"n"`
	MinBytes      int     `json:"minBytes"`
	MaxBytes      int     `json:"maxBytes"`
	PayloadWords  int     `json:"payloadWords"`
	KeyPasses     float64 `json:"keyPasses"`
	PermutePasses float64 `json:"permutePasses"`
	WallSeconds   float64 `json:"wallSeconds"`
	RecordsPerSec float64 `json:"recordsPerSec"`
}

// backendBench is one row of the paired disk-backend series: the same
// full-record sort (identical keys, payloads, and pass structure — the
// stack is oblivious, so the reports are bit-identical) run on file vs
// mmap disks, synchronously (pipeline depth 0) so the backend's per-block
// cost sits on the critical path.  SpeedupVsFile is this row's words/sec
// over the file row at the same modeled latency.
type backendBench struct {
	Backend        string  `json:"backend"`
	BlockLatencyUS int64   `json:"blockLatencyUs"`
	N              int     `json:"n"`
	Words          int64   `json:"words"`
	Passes         float64 `json:"passes"`
	WallSeconds    float64 `json:"wallSeconds"`
	WordsPerSec    float64 `json:"wordsPerSec"`
	SpeedupVsFile  float64 `json:"speedupVsFile,omitempty"`
}

// kernelBench is one row of the paired compute-kernel series: the same
// sort with the comparison introsort vs the LSD radix kernel.  The run
// formation columns time pure in-memory load sorts (one memory load of
// uniform random keys per iteration, no I/O) on a pool of the given
// width — the number the planner's per-kernel probe prices.  The wall
// columns are the same end-to-end full-record sort as the backend series,
// so kernel wins can be read against the I/O they hide behind.
// RunSpeedupVsComparison is this row's run-formation keys/sec over the
// comparison row at the same worker count and backend.
type kernelBench struct {
	Kernel                 string  `json:"kernel"`
	Workers                int     `json:"workers"`
	Backend                string  `json:"backend"`
	RunKeys                int     `json:"runKeys"`
	RunKeysPerSec          float64 `json:"runFormationKeysPerSec"`
	RunSpeedupVsComparison float64 `json:"runSpeedupVsComparison,omitempty"`
	N                      int     `json:"n"`
	Words                  int64   `json:"words"`
	WallSeconds            float64 `json:"wallSeconds"`
	WordsPerSec            float64 `json:"wordsPerSec"`
}

// distBench is one row of the distributed scale series: the same
// latency-modeled key sort run single-machine (the no-coordinator
// baseline) and distributed across 1, 2 and 4 in-process pdmd workers.
// With modeled per-block latency the device, not the CPU, is the
// bottleneck, so shard sorts running concurrently on independent workers
// should scale words/sec near-linearly; SpeedupVsOneWorker reads this
// row's rate over the 1-worker distributed row (so the coordinator's own
// overhead is inside the baseline).
type distBench struct {
	Workers            int     `json:"workers"`
	SingleMachine      bool    `json:"singleMachine,omitempty"`
	N                  int     `json:"n"`
	BlockLatencyUS     int64   `json:"blockLatencyUs"`
	Passes             float64 `json:"passes"`
	WallSeconds        float64 `json:"wallSeconds"`
	WordsPerSec        float64 `json:"wordsPerSec"`
	SpeedupVsOneWorker float64 `json:"speedupVsOneWorker,omitempty"`
}

// prediction is one planner-accuracy point: the cost model's calibrated
// wall prediction against the measured wall for the same sort.  RelError
// is signed, (measured − predicted)/predicted, so calibration drift shows
// direction across the artifact history.
type prediction struct {
	Algorithm        string  `json:"algorithm"`
	N                int     `json:"n"`
	PredictedSeconds float64 `json:"predictedSeconds"`
	MeasuredSeconds  float64 `json:"measuredSeconds"`
	RelError         float64 `json:"relError"`
	Probed           bool    `json:"probed"`
}

// document is the artifact schema.
type document struct {
	Timestamp   string          `json:"timestamp"`
	GoVersion   string          `json:"goVersion"`
	NumCPU      int             `json:"numCPU"`
	EndToEnd    []endToEnd      `json:"endToEnd"`
	Scheduler   schedulerBench  `json:"scheduler"`
	Records     []recordsBench  `json:"records"`
	Backends    []backendBench  `json:"backends"`
	Kernels     []kernelBench   `json:"kernels"`
	Distributed []distBench     `json:"distributed,omitempty"`
	Scenarios   []scenarioBench `json:"scenarios,omitempty"`
	Prediction  []prediction    `json:"prediction"`
}

func main() {
	out := flag.String("out", "BENCH_pr10.json", "output file")
	n := flag.Int("n", 1<<18, "keys per end-to-end sort")
	mem := flag.Int("mem", 4096, "internal memory M in keys (perfect square)")
	jobs := flag.Int("jobs", 12, "jobs in the scheduler batch")
	workers := flag.Int("workers", 0, "worker budget (0 = GOMAXPROCS)")
	backend := flag.String("backend", "", "restrict the paired backend series to one backend: file or mmap (default: both)")
	kernel := flag.String("kernel", "", "restrict the paired kernel series to one kernel: comparison or radix (default: both)")
	dist := flag.Bool("dist", false, "also measure the distributed scale series (in-process worker fleets at 1, 2 and 4 nodes)")
	scenarios := flag.Bool("scenarios", false, "also measure the query scenario series (top-K and ingest vs the full-sort baseline on latency-modeled file disks)")
	flag.Parse()
	if *backend != "" && *backend != repro.BackendFile && *backend != repro.BackendMmap {
		fmt.Fprintf(os.Stderr, "benchjson: -backend %q: want %q or %q\n", *backend, repro.BackendFile, repro.BackendMmap)
		os.Exit(2)
	}
	if *kernel != "" && *kernel != repro.KernelComparison && *kernel != repro.KernelRadix {
		fmt.Fprintf(os.Stderr, "benchjson: -kernel %q: want %q or %q\n", *kernel, repro.KernelComparison, repro.KernelRadix)
		os.Exit(2)
	}
	if err := run(*out, *n, *mem, *jobs, *workers, *backend, *kernel, *dist, *scenarios); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

func run(out string, n, mem, jobs, workers int, backend, kernel string, dist, scenarios bool) error {
	doc := document{
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		NumCPU:    runtime.NumCPU(),
	}

	// End-to-end single-machine throughput per algorithm family, with the
	// planner's prediction recorded next to each measurement.
	for _, alg := range []string{"lmm3", "mesh3", "exp2", "seven"} {
		res, pred, err := sortOnce(alg, n, mem, workers)
		if err != nil {
			return fmt.Errorf("%s: %w", alg, err)
		}
		doc.EndToEnd = append(doc.EndToEnd, res)
		doc.Prediction = append(doc.Prediction, pred)
	}

	sb, err := schedulerBatch(jobs, mem, workers)
	if err != nil {
		return err
	}
	doc.Scheduler = sb

	// Full-record throughput across payload widths: fixed narrow, fixed
	// wide, and variable.
	for _, rc := range []recordsBench{
		{Name: "fixed-8B", MinBytes: 8, MaxBytes: 8},
		{Name: "fixed-64B", MinBytes: 64, MaxBytes: 64},
		{Name: "variable-0-32B", MinBytes: 0, MaxBytes: 32},
	} {
		res, err := recordsOnce(rc, n/4, mem, workers)
		if err != nil {
			return fmt.Errorf("records %s: %w", rc.Name, err)
		}
		doc.Records = append(doc.Records, res)
	}

	// Paired backend comparison: the same full-record sort on file vs mmap
	// disks, latency-free and with 50us of modeled per-block latency (where
	// the device, not the backend, dominates and the gap should close).
	backends := []string{repro.BackendFile, repro.BackendMmap}
	if backend != "" {
		backends = []string{backend}
	}
	for _, latency := range []time.Duration{0, 50 * time.Microsecond} {
		var fileRow *backendBench
		for _, bk := range backends {
			res, err := backendOnce(bk, latency, n/4, mem, workers)
			if err != nil {
				return fmt.Errorf("backend %s: %w", bk, err)
			}
			if bk == repro.BackendFile {
				fileRow = &res
			} else if fileRow != nil && fileRow.WordsPerSec > 0 {
				res.SpeedupVsFile = res.WordsPerSec / fileRow.WordsPerSec
			}
			doc.Backends = append(doc.Backends, res)
		}
	}

	// Paired kernel comparison: comparison introsort vs LSD radix, across
	// pool widths 1 and 8 and both disk backends.  Run formation is timed
	// once per (kernel, width) — it never touches a disk — and repeated on
	// each backend row for self-contained reading.
	kernels := []string{repro.KernelComparison, repro.KernelRadix}
	if kernel != "" {
		kernels = []string{kernel}
	}
	for _, width := range []int{1, 8} {
		runRate := map[string]float64{}
		for _, kn := range kernels {
			runRate[kn] = runFormationRate(kn, width, mem)
		}
		for _, bk := range backends {
			for _, kn := range kernels {
				res, err := kernelOnce(kn, bk, width, n/4, mem)
				if err != nil {
					return fmt.Errorf("kernel %s/%s: %w", kn, bk, err)
				}
				res.RunKeys = mem
				res.RunKeysPerSec = runRate[kn]
				if base := runRate[repro.KernelComparison]; kn == repro.KernelRadix && base > 0 {
					res.RunSpeedupVsComparison = runRate[kn] / base
				}
				doc.Kernels = append(doc.Kernels, res)
			}
		}
	}

	if dist {
		rows, err := distSeries(n, mem)
		if err != nil {
			return fmt.Errorf("distributed: %w", err)
		}
		doc.Distributed = rows
	}

	if scenarios {
		rows, err := scenarioSeries(n, mem, workers)
		if err != nil {
			return fmt.Errorf("scenarios: %w", err)
		}
		doc.Scenarios = rows
	}

	raw, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	raw = append(raw, '\n')
	if err := os.WriteFile(out, raw, 0o644); err != nil {
		return err
	}
	fmt.Printf("benchjson: wrote %s (%d end-to-end runs, %d scheduler jobs, %.0f jobs/sec, %d records series, %d backend rows, %d kernel rows, %d distributed rows, %d scenario rows, %d prediction points)\n",
		out, len(doc.EndToEnd), sb.Jobs, sb.JobsPerSec, len(doc.Records), len(doc.Backends), len(doc.Kernels), len(doc.Distributed), len(doc.Scenarios), len(doc.Prediction))
	return nil
}

// backendOnce measures one backend row: a fixed-64B full-record sort on
// real disks under the named backend, pipeline depths 0 so every block's
// read and write cost lands on the critical path.
func backendOnce(backend string, latency time.Duration, n, mem, workers int) (backendBench, error) {
	row := backendBench{Backend: backend, BlockLatencyUS: int64(latency / time.Microsecond)}
	dir, err := os.MkdirTemp("", "benchjson-"+backend+"-")
	if err != nil {
		return row, err
	}
	defer os.RemoveAll(dir)
	m, err := repro.NewMachine(repro.MachineConfig{
		Memory:       mem,
		Workers:      workers,
		Dir:          dir,
		Backend:      backend,
		BlockLatency: latency,
	})
	if err != nil {
		return row, err
	}
	defer m.Close()
	if capacity := m.Capacity(repro.Auto); n > capacity {
		n = capacity
	}
	keys, err := (&repro.WorkloadSpec{Kind: "uniform", N: n, Seed: 1}).Generate()
	if err != nil {
		return row, err
	}
	payloads := (&repro.PayloadSpec{MinBytes: 64, MaxBytes: 64}).Materialize(n, 1)
	t0 := time.Now()
	rep, err := m.SortRecords(keys, payloads, repro.Auto)
	if err != nil {
		return row, err
	}
	wall := time.Since(t0).Seconds()
	row.N = n
	row.Words = int64(rep.N + rep.PayloadWords)
	row.Passes = rep.Passes
	row.WallSeconds = wall
	row.WordsPerSec = float64(row.Words) / wall
	return row, nil
}

// runFormationRate times pure in-memory run formation: repeated sorts of
// one memory load (mem keys) of uniform random int64 keys on a pool of
// the given width and kernel, refills untimed.  This is the compute the
// external algorithms spend between I/O steps, and the rate the planner's
// per-kernel probe prices.
func runFormationRate(kernel string, width, mem int) float64 {
	pk := par.KernelComparison
	if kernel == repro.KernelRadix {
		pk = par.KernelRadix
	}
	pool := par.NewWithKernel(width, nil, pk)
	buf := make([]int64, mem)
	// Warm up once (scratch pool, branch predictors), then time enough
	// iterations to amortize timer noise.
	fillUniform(buf, 0)
	pool.SortKeys(buf)
	const iters = 400
	var elapsed time.Duration
	for i := 0; i < iters; i++ {
		fillUniform(buf, uint64(i+1))
		t0 := time.Now()
		pool.SortKeys(buf)
		elapsed += time.Since(t0)
	}
	return float64(iters*mem) / elapsed.Seconds()
}

// fillUniform fills buf with a deterministic xorshift sequence, seeded so
// every iteration sorts fresh (unsorted) data.
func fillUniform(buf []int64, seed uint64) {
	x := seed*0x9e3779b97f4a7c15 + 0x9e3779b97f4a7c15
	for i := range buf {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		buf[i] = int64(x >> 2)
	}
}

// kernelOnce measures one end-to-end row of the kernel series: the same
// fixed-64B full-record sort as the backend series, pinned to the named
// kernel and pool width.
func kernelOnce(kernel, backend string, width, n, mem int) (kernelBench, error) {
	row := kernelBench{Kernel: kernel, Backend: backend, Workers: width}
	dir, err := os.MkdirTemp("", "benchjson-kernel-")
	if err != nil {
		return row, err
	}
	defer os.RemoveAll(dir)
	m, err := repro.NewMachine(repro.MachineConfig{
		Memory:   mem,
		Workers:  width,
		Dir:      dir,
		Backend:  backend,
		Kernel:   kernel,
		Pipeline: repro.PipelineConfig{Prefetch: 2, WriteBehind: 2},
	})
	if err != nil {
		return row, err
	}
	defer m.Close()
	if capacity := m.Capacity(repro.Auto); n > capacity {
		n = capacity
	}
	keys, err := (&repro.WorkloadSpec{Kind: "uniform", N: n, Seed: 1}).Generate()
	if err != nil {
		return row, err
	}
	payloads := (&repro.PayloadSpec{MinBytes: 64, MaxBytes: 64}).Materialize(n, 1)
	t0 := time.Now()
	rep, err := m.SortRecords(keys, payloads, repro.Auto)
	if err != nil {
		return row, err
	}
	wall := time.Since(t0).Seconds()
	row.N = n
	row.Words = int64(rep.N + rep.PayloadWords)
	row.WallSeconds = wall
	row.WordsPerSec = float64(row.Words) / wall
	return row, nil
}

// recordsOnce measures one full-record sort (keys + generated payloads)
// end to end, including the permutation pass.
func recordsOnce(rc recordsBench, n, mem, workers int) (recordsBench, error) {
	m, err := repro.NewMachine(repro.MachineConfig{
		Memory:   mem,
		Workers:  workers,
		Pipeline: repro.PipelineConfig{Prefetch: 2, WriteBehind: 2},
	})
	if err != nil {
		return rc, err
	}
	defer m.Close()
	if capacity := m.Capacity(repro.Auto); n > capacity {
		n = capacity
	}
	keys, err := (&repro.WorkloadSpec{Kind: "uniform", N: n, Seed: 1}).Generate()
	if err != nil {
		return rc, err
	}
	payloads := (&repro.PayloadSpec{MinBytes: rc.MinBytes, MaxBytes: rc.MaxBytes}).Materialize(n, 1)
	t0 := time.Now()
	rep, err := m.SortRecords(keys, payloads, repro.Auto)
	if err != nil {
		return rc, err
	}
	wall := time.Since(t0).Seconds()
	rc.N = n
	rc.PayloadWords = rep.PayloadWords
	rc.KeyPasses = rep.Passes
	rc.PermutePasses = rep.PermutePasses
	rc.WallSeconds = wall
	rc.RecordsPerSec = float64(n) / wall
	return rc, nil
}

func sortOnce(algName string, n, mem, workers int) (endToEnd, prediction, error) {
	alg, err := repro.ParseAlgorithm(algName)
	if err != nil {
		return endToEnd{}, prediction{}, err
	}
	m, err := repro.NewMachine(repro.MachineConfig{
		Memory:   mem,
		Workers:  workers,
		Pipeline: repro.PipelineConfig{Prefetch: 2, WriteBehind: 2},
	})
	if err != nil {
		return endToEnd{}, prediction{}, err
	}
	defer m.Close()
	if capacity := m.Capacity(alg); n > capacity {
		n = capacity
	}
	keys, err := (&repro.WorkloadSpec{Kind: "uniform", N: n, Seed: 1}).Generate()
	if err != nil {
		return endToEnd{}, prediction{}, err
	}
	pred := prediction{Algorithm: algName, N: n}
	if planRep, err := m.Explain(repro.SortSpec{N: n}); err == nil {
		if c := planRep.Candidate(algName); c != nil && c.Feasible {
			pred.PredictedSeconds = c.Seconds
			pred.Probed = planRep.Calibration.Probed
		}
	}
	t0 := time.Now()
	rep, err := m.Sort(keys, alg)
	if err != nil {
		return endToEnd{}, prediction{}, err
	}
	wall := time.Since(t0).Seconds()
	pred.MeasuredSeconds = wall
	if pred.PredictedSeconds > 0 {
		pred.RelError = (wall - pred.PredictedSeconds) / pred.PredictedSeconds
	}
	return endToEnd{
		Algorithm:   rep.Algorithm.String(),
		N:           n,
		Passes:      rep.Passes,
		WallSeconds: wall,
		KeysPerSec:  float64(n) / wall,
		Overlap:     rep.Overlap,
		Workers:     rep.Workers,
	}, pred, nil
}

func schedulerBatch(jobs, mem, workers int) (schedulerBench, error) {
	s, err := repro.NewScheduler(repro.SchedulerConfig{
		Memory:    4 * 3 * mem, // ~four concurrent envelopes
		Workers:   workers,
		JobMemory: mem,
		Pipeline:  repro.PipelineConfig{Prefetch: 2, WriteBehind: 2},
	})
	if err != nil {
		return schedulerBench{}, err
	}
	defer s.Close()
	kinds := []string{"perm", "uniform", "zipf", "sortedruns"}
	algs := []repro.Algorithm{repro.ThreePassLMM, repro.ThreePassMesh, repro.TwoPassExpected, repro.Auto}
	var keysTotal int64
	t0 := time.Now()
	ids := make([]int, jobs)
	for i := 0; i < jobs; i++ {
		n := 16 * mem
		id, err := s.Submit(repro.JobSpec{
			Workload:  &repro.WorkloadSpec{Kind: kinds[i%len(kinds)], N: n, Seed: int64(i)},
			Algorithm: algs[i%len(algs)],
		})
		if err != nil {
			return schedulerBench{}, err
		}
		ids[i] = id
		keysTotal += int64(n)
	}
	for _, id := range ids {
		st, err := s.Wait(context.Background(), id)
		if err != nil {
			return schedulerBench{}, err
		}
		if st.State != repro.JobDone {
			return schedulerBench{}, fmt.Errorf("job %d finished %s: %s", id, st.State, st.Error)
		}
	}
	wall := time.Since(t0).Seconds()
	stats := s.Stats()
	return schedulerBench{
		Jobs:        jobs,
		KeysTotal:   keysTotal,
		Workers:     stats.Workers,
		WallSeconds: wall,
		JobsPerSec:  float64(jobs) / wall,
		KeysPerSec:  float64(keysTotal) / wall,
		Passes:      stats.PassesWeighted,
	}, nil
}
