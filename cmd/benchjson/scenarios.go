package main

import (
	"os"
	"time"

	"repro"
)

// scenarioLatency is the modeled per-block device latency for the query
// scenario series.  As in the distributed series, the device — not the
// CPU — must be the bottleneck for the pass-count arithmetic to show up
// as wall time: top-K's single filter pass and ingest's single merge
// pass only beat the full sort when each avoided pass costs something.
// It sits above the distributed series' 40us because the comparison is
// against a pipelined full sort that hides moderate latency well.
const scenarioLatency = 150 * time.Microsecond

// scenarioBench is one row of the query-scenario series: the same
// latency-modeled file-disk machine runs a full sort (the baseline row),
// a top-K with K = N/128, and a sorted-merge ingest with a batch of
// N/32.  Words/sec counts the words the job took in (dataset plus batch
// for ingest), so SpeedupVsFullSort reads directly as "how much faster
// the scenario route answers the same data".
type scenarioBench struct {
	Scenario          string  `json:"scenario"`
	N                 int     `json:"n"`
	K                 int     `json:"k,omitempty"`
	Batch             int     `json:"batch,omitempty"`
	BlockLatencyUS    int64   `json:"blockLatencyUs"`
	Route             string  `json:"route,omitempty"`
	Passes            float64 `json:"passes"`
	WallSeconds       float64 `json:"wallSeconds"`
	WordsPerSec       float64 `json:"wordsPerSec"`
	SpeedupVsFullSort float64 `json:"speedupVsFullSort,omitempty"`
}

// scenarioSeries measures the query-scenario rows against the full-sort
// baseline on the same machine shape.  The dataset is sized past the
// three-pass capacity M^1.5 on purpose: that pushes the baseline into
// the seven-pass regime, which is exactly where answering a query
// without sorting pays — at three passes the fixed load/unload traffic
// both sides share caps the visible win.
func scenarioSeries(n, mem, workers int) ([]scenarioBench, error) {
	n *= 2
	latencyUS := int64(scenarioLatency / time.Microsecond)
	newMachine := func() (*repro.Machine, string, error) {
		dir, err := os.MkdirTemp("", "benchjson-scenario-")
		if err != nil {
			return nil, "", err
		}
		m, err := repro.NewMachine(repro.MachineConfig{
			Memory:       mem,
			Workers:      workers,
			Dir:          dir,
			Backend:      repro.BackendFile,
			BlockLatency: scenarioLatency,
			Pipeline:     repro.PipelineConfig{Prefetch: 2, WriteBehind: 2},
		})
		if err != nil {
			os.RemoveAll(dir)
			return nil, "", err
		}
		return m, dir, nil
	}

	keys, err := (&repro.WorkloadSpec{Kind: "uniform", N: n, Seed: 1}).Generate()
	if err != nil {
		return nil, err
	}

	var rows []scenarioBench

	// Full-sort baseline: what answering any of these queries costs when
	// the only tool is the sorter.
	m, dir, err := newMachine()
	if err != nil {
		return nil, err
	}
	t0 := time.Now()
	rep, err := m.Sort(append([]int64(nil), keys...), repro.Auto)
	m.Close()
	os.RemoveAll(dir)
	if err != nil {
		return nil, err
	}
	wall := time.Since(t0).Seconds()
	baseline := scenarioBench{
		Scenario:       "fullsort",
		N:              n,
		BlockLatencyUS: latencyUS,
		Passes:         rep.Passes,
		WallSeconds:    wall,
		WordsPerSec:    float64(n) / wall,
	}
	rows = append(rows, baseline)

	// Top-K: K well under the N/100 regime where the sampled threshold
	// filter answers in roughly one read of the data (and small enough
	// that the survivor budget fits the arena at this memory).
	k := n / 256
	if k < 1 {
		k = 1
	}
	m, dir, err = newMachine()
	if err != nil {
		return nil, err
	}
	t0 = time.Now()
	_, rep, err = m.TopK(keys, k)
	m.Close()
	os.RemoveAll(dir)
	if err != nil {
		return nil, err
	}
	wall = time.Since(t0).Seconds()
	row := scenarioBench{
		Scenario:       "topk",
		N:              n,
		K:              k,
		BlockLatencyUS: latencyUS,
		Route:          rep.ScenarioRoute,
		Passes:         rep.Passes,
		WallSeconds:    wall,
		WordsPerSec:    float64(n) / wall,
	}
	if baseline.WordsPerSec > 0 {
		row.SpeedupVsFullSort = row.WordsPerSec / baseline.WordsPerSec
	}
	rows = append(rows, row)

	// Sorted-merge ingest: a batch a small fraction of the dataset, so
	// one in-memory batch sort plus one merge pass replaces re-sorting
	// the world.
	dataset, err := (&repro.WorkloadSpec{Kind: "sorted", N: n}).Generate()
	if err != nil {
		return nil, err
	}
	bn := n / 32
	batch, err := (&repro.WorkloadSpec{Kind: "uniform", N: bn, Seed: 7}).Generate()
	if err != nil {
		return nil, err
	}
	m, dir, err = newMachine()
	if err != nil {
		return nil, err
	}
	t0 = time.Now()
	_, rep, err = m.Ingest(dataset, batch)
	m.Close()
	os.RemoveAll(dir)
	if err != nil {
		return nil, err
	}
	wall = time.Since(t0).Seconds()
	row = scenarioBench{
		Scenario:       "ingest",
		N:              n,
		Batch:          bn,
		BlockLatencyUS: latencyUS,
		Route:          rep.ScenarioRoute,
		Passes:         rep.Passes,
		WallSeconds:    wall,
		WordsPerSec:    float64(n+bn) / wall,
	}
	if baseline.WordsPerSec > 0 {
		row.SpeedupVsFullSort = row.WordsPerSec / baseline.WordsPerSec
	}
	rows = append(rows, row)

	return rows, nil
}
