// Command pdmsort sorts a binary file of little-endian int64 keys on a
// simulated Parallel Disk Model backed by real files (one per disk, with
// one goroutine per disk performing the parallel I/O), using the paper's
// algorithms.
//
// Usage:
//
//	pdmsort -in keys.bin -out sorted.bin [-mem 65536] [-disks 0] \
//	        [-alg auto|mesh3|mesh2e|lmm3|exp2|exp3|seven|six|sevenmesh|radix] \
//	        [-universe 4294967296] [-scratch DIR] [-gen N] [-seed 1] \
//	        [-prefetch 2] [-writebehind 2] [-workers 0]
//
// With -gen N (and no -in), pdmsort first generates N random keys.
// The exit report prints the measured pass counts — the paper's currency.
// Unknown algorithm names and invalid flag combinations exit 2 with a
// usage message before any work happens.
package main

import (
	"encoding/binary"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro"
)

// usageError marks a flag-validation failure: main prints the usage text
// and exits 2, distinguishing operator mistakes from runtime failures.
type usageError struct{ err error }

func (e usageError) Error() string { return e.err.Error() }
func (e usageError) Unwrap() error { return e.err }

func main() {
	in := flag.String("in", "", "input file of little-endian int64 keys")
	out := flag.String("out", "", "output file (defaults to <in>.sorted)")
	mem := flag.Int("mem", 65536, "internal memory M in keys (perfect square)")
	disks := flag.Int("disks", 0, "number of disks D (0 = sqrt(M)/4)")
	algName := flag.String("alg", "auto", "algorithm: auto|mesh3|mesh2e|lmm3|exp2|exp3|seven|six|sevenmesh|radix")
	universe := flag.Int64("universe", 1<<32, "key universe for -alg radix")
	scratch := flag.String("scratch", "", "directory for the disk files (default: temp dir)")
	gen := flag.Int("gen", 0, "generate this many random keys instead of reading -in")
	seed := flag.Int64("seed", 1, "seed for -gen")
	prefetch := flag.Int("prefetch", 2, "prefetch depth in stripes (0 = synchronous reads)")
	writeBehind := flag.Int("writebehind", 2, "write-behind depth in stripes (0 = synchronous writes)")
	workers := flag.Int("workers", 0, "compute worker pool width (0 = GOMAXPROCS; output is identical for any value)")
	flag.Parse()

	pipe := repro.PipelineConfig{Prefetch: *prefetch, WriteBehind: *writeBehind}
	if err := run(*in, *out, *mem, *disks, *algName, *universe, *scratch, *gen, *seed, pipe, *workers); err != nil {
		fmt.Fprintf(os.Stderr, "pdmsort: %v\n", err)
		var ue usageError
		if errors.As(err, &ue) {
			fmt.Fprintln(os.Stderr)
			flag.Usage()
			os.Exit(2)
		}
		os.Exit(1)
	}
}

// validate rejects unusable flag combinations before any work (file I/O,
// key generation, machine construction) happens.
func validate(in string, mem, disks int, algName string, universe int64, gen int, pipe repro.PipelineConfig, workers int) error {
	if algName != "radix" {
		if _, err := repro.ParseAlgorithm(algName); err != nil {
			return usageError{fmt.Errorf("-alg: %w", err)}
		}
	}
	switch {
	case gen < 0:
		return usageError{fmt.Errorf("-gen %d: want a positive count", gen)}
	case gen > 0 && in != "":
		return usageError{errors.New("-gen and -in are mutually exclusive")}
	case gen == 0 && in == "":
		return usageError{errors.New("need -in FILE or -gen N")}
	case universe <= 0 && (algName == "radix" || gen > 0):
		return usageError{fmt.Errorf("-universe %d: want > 0", universe)}
	case mem <= 0:
		return usageError{fmt.Errorf("-mem %d: want > 0", mem)}
	case disks < 0:
		return usageError{fmt.Errorf("-disks %d: want >= 0", disks)}
	case pipe.Prefetch < 0 || pipe.WriteBehind < 0:
		return usageError{fmt.Errorf("-prefetch %d / -writebehind %d: want >= 0", pipe.Prefetch, pipe.WriteBehind)}
	case workers < 0:
		return usageError{fmt.Errorf("-workers %d: want >= 0", workers)}
	}
	return nil
}

func run(in, out string, mem, disks int, algName string, universe int64, scratch string, gen int, seed int64, pipe repro.PipelineConfig, workers int) error {
	if err := validate(in, mem, disks, algName, universe, gen, pipe, workers); err != nil {
		return err
	}
	var keys []int64
	if gen > 0 {
		keys = make([]int64, gen)
		rng := rand.New(rand.NewSource(seed))
		for i := range keys {
			keys[i] = rng.Int63n(universe)
		}
		in = "generated.bin"
	} else {
		var err error
		keys, err = readKeys(in)
		if err != nil {
			return err
		}
	}
	if out == "" {
		out = in + ".sorted"
	}
	if scratch == "" {
		dir, err := os.MkdirTemp("", "pdmsort-disks-")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		scratch = dir
	}

	m, err := repro.NewMachine(repro.MachineConfig{Memory: mem, Disks: disks, Dir: scratch, Pipeline: pipe, Workers: workers})
	if err != nil {
		return err
	}
	defer m.Close()

	var rep *repro.Report
	if algName == "radix" {
		rep, err = m.SortInts(keys, universe)
	} else {
		alg, aerr := parseAlg(algName) // cannot fail: validate ran first
		if aerr != nil {
			return aerr
		}
		rep, err = m.Sort(keys, alg)
	}
	if err != nil {
		return err
	}
	if err := writeKeys(out, keys); err != nil {
		return err
	}
	fmt.Printf("sorted %d keys with %s: %.3f read passes, %.3f write passes",
		rep.N, rep.Algorithm, rep.ReadPasses, rep.WritePasses)
	if rep.FellBack {
		fmt.Printf(" (fell back to the deterministic algorithm)")
	}
	fmt.Printf("\nI/O: %s\n", rep.IO)
	if rep.PrefetchHits+rep.PrefetchStalls > 0 {
		fmt.Printf("pipeline: %.0f%% of streamed reads overlapped (%d hits, %d stalls, %d write stalls)\n",
			100*rep.Overlap, rep.PrefetchHits, rep.PrefetchStalls, rep.WriteStalls)
	}
	if rep.ComputeSeconds > 0 {
		fmt.Printf("compute: %.3fs in parallel sections across %d workers (%.0f%% utilization)\n",
			rep.ComputeSeconds, rep.Workers, 100*rep.WorkerUtilization)
	} else {
		fmt.Printf("compute: serial (workers=%d, nothing crossed the parallel grain)\n", rep.Workers)
	}
	fmt.Printf("output: %s\n", out)
	return nil
}

// parseAlg delegates to the facade's shared name table (pdmd uses the
// same one, so the CLI and the service accept identical spellings).
func parseAlg(name string) (repro.Algorithm, error) {
	return repro.ParseAlgorithm(name)
}

func readKeys(path string) ([]int64, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(raw)%8 != 0 {
		return nil, fmt.Errorf("%s: size %d is not a multiple of 8", path, len(raw))
	}
	keys := make([]int64, len(raw)/8)
	for i := range keys {
		keys[i] = int64(binary.LittleEndian.Uint64(raw[8*i:]))
	}
	return keys, nil
}

func writeKeys(path string, keys []int64) error {
	raw := make([]byte, 8*len(keys))
	for i, k := range keys {
		binary.LittleEndian.PutUint64(raw[8*i:], uint64(k))
	}
	return os.WriteFile(path, raw, 0o644)
}
