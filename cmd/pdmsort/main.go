// Command pdmsort sorts a file on a simulated Parallel Disk Model backed
// by real files (one per disk, with one goroutine per disk performing the
// parallel I/O), using the paper's algorithms.
//
// Usage:
//
//	pdmsort -in keys.bin -out sorted.bin [-mem 65536] [-disks 0] \
//	        [-alg auto|one|mesh3|mesh2e|lmm3|exp2|exp3|seven|six|sevenmesh|radix] \
//	        [-universe 4294967296] [-scratch DIR] [-backend file|mmap] \
//	        [-kernel auto|comparison|radix] [-gen N] \
//	        [-seed 1] [-prefetch 2] [-writebehind 2] [-workers 0] [-latency 0] [-explain]
//	pdmsort -csv table.csv -keycol 0 [-sep ,] [-out sorted.csv] ...
//
// With -in, the input is a binary file of little-endian int64 keys.  With
// -csv, the input is a delimited text file sorted stably by an integer key
// column: every line is a full record whose bytes ride through the
// external permutation pass (Machine.SortRecords) — the end-to-end "sort a
// file by key" scenario.  Fields are split naively on -sep (no RFC-4180
// quoting), keeping every output line byte-identical to its input line.
// With -gen N (and no input file), pdmsort first generates N random
// keys.  The exit report prints the measured pass
// counts — the paper's currency — including the payload permutation's
// passes for record sorts.  Unknown algorithm names and invalid flag
// combinations exit 2 with a usage message before any work happens.
//
// With -explain, nothing is sorted: pdmsort prints the cost-model
// planner's ranked candidate table for the input — predicted passes, the
// padded length each algorithm's geometry forces, I/O words, and
// calibrated wall time — and marks the algorithm Auto would choose.
// -latency models a per-block device latency on the simulated disks (it
// slows the sort and shifts the explain table exactly as real positioning
// latency would).
//
// Query scenarios answer a question about the keys instead of sorting them
// all, when the planner prices the scenario route under the full sort:
//
//	pdmsort -in keys.bin -topk 100          # the 100 smallest keys -> -out
//	pdmsort -in keys.bin -quantile 500000   # the key of rank 500000 -> stdout
//	pdmsort -in sorted.bin -ingest new.bin  # fold a batch into a sorted file
//
// Combining a scenario flag with -explain prints the scenario's cost
// comparison (predicted passes vs the full sort) without running it.
package main

import (
	"encoding/binary"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"time"

	"repro"
)

// usageError marks a flag-validation failure: main prints the usage text
// and exits 2, distinguishing operator mistakes from runtime failures.
type usageError struct{ err error }

func (e usageError) Error() string { return e.err.Error() }
func (e usageError) Unwrap() error { return e.err }

// options collects the resolved flags.
type options struct {
	in       string
	csv      string
	keyCol   int
	sep      string
	out      string
	mem      int
	disks    int
	alg      string
	universe int64
	scratch  string
	backend  string
	kernel   string
	gen      int
	seed     int64
	pipe     repro.PipelineConfig
	workers  int
	latency  time.Duration
	explain  bool
	topk     int
	quantile int
	ingest   string
}

// scenarioKind names the query scenario the flags select; "" is a sort.
func (o *options) scenarioKind() string {
	switch {
	case o.topk > 0:
		return "topk"
	case o.quantile > 0:
		return "quantile"
	case o.ingest != "":
		return "ingest"
	}
	return ""
}

func main() {
	var o options
	flag.StringVar(&o.in, "in", "", "input file of little-endian int64 keys")
	flag.StringVar(&o.csv, "csv", "", "delimited text file to sort by an integer key column")
	flag.IntVar(&o.keyCol, "keycol", 0, "zero-based key column for -csv")
	flag.StringVar(&o.sep, "sep", ",", "field separator for -csv (lines are split naively: RFC-4180 quoting is not interpreted)")
	flag.StringVar(&o.out, "out", "", "output file (defaults to <input>.sorted)")
	flag.IntVar(&o.mem, "mem", 65536, "internal memory M in keys (perfect square)")
	flag.IntVar(&o.disks, "disks", 0, "number of disks D (0 = sqrt(M)/4)")
	flag.StringVar(&o.alg, "alg", "auto", "algorithm: auto|mesh3|mesh2e|lmm3|exp2|exp3|seven|six|sevenmesh|radix")
	flag.Int64Var(&o.universe, "universe", 1<<32, "key universe for -alg radix")
	flag.StringVar(&o.scratch, "scratch", "", "directory for the disk files (default: temp dir)")
	flag.StringVar(&o.backend, "backend", "", "disk backend: file (read/write syscalls, default) or mmap (zero-copy memory-mapped)")
	flag.StringVar(&o.kernel, "kernel", "", "in-memory sort kernel: auto (default, picked from the machine shape), comparison, or radix; output is identical for any choice")
	flag.IntVar(&o.gen, "gen", 0, "generate this many random keys instead of reading -in")
	flag.Int64Var(&o.seed, "seed", 1, "seed for -gen")
	flag.IntVar(&o.pipe.Prefetch, "prefetch", 2, "prefetch depth in stripes (0 = synchronous reads)")
	flag.IntVar(&o.pipe.WriteBehind, "writebehind", 2, "write-behind depth in stripes (0 = synchronous writes)")
	flag.IntVar(&o.workers, "workers", 0, "compute worker pool width (0 = GOMAXPROCS; output is identical for any value)")
	flag.DurationVar(&o.latency, "latency", 0, "modeled per-block device latency on every disk (e.g. 2ms)")
	flag.BoolVar(&o.explain, "explain", false, "print the planner's ranked candidate table and exit without sorting")
	flag.IntVar(&o.topk, "topk", 0, "write only the K smallest keys (scenario; planner may filter in one pass)")
	flag.IntVar(&o.quantile, "quantile", 0, "print the key of this 1-indexed rank (scenario)")
	flag.StringVar(&o.ingest, "ingest", "", "fold this binary key file into the sorted -in dataset (scenario)")
	flag.Parse()

	if err := run(o); err != nil {
		fmt.Fprintf(os.Stderr, "pdmsort: %v\n", err)
		var ue usageError
		if errors.As(err, &ue) {
			fmt.Fprintln(os.Stderr)
			flag.Usage()
			os.Exit(2)
		}
		os.Exit(1)
	}
}

// validate rejects unusable flag combinations before any work (file I/O,
// key generation, machine construction) happens.
func validate(o options) error {
	if o.alg != "radix" {
		if _, err := repro.ParseAlgorithm(o.alg); err != nil {
			return usageError{fmt.Errorf("-alg: %w", err)}
		}
	}
	inputs := 0
	if o.in != "" {
		inputs++
	}
	if o.csv != "" {
		inputs++
	}
	if o.gen > 0 {
		inputs++
	}
	switch {
	case o.gen < 0:
		return usageError{fmt.Errorf("-gen %d: want a positive count", o.gen)}
	case inputs > 1:
		return usageError{errors.New("-in, -csv, and -gen are mutually exclusive")}
	case inputs == 0:
		return usageError{errors.New("need -in FILE, -csv FILE, or -gen N")}
	case o.csv != "" && o.alg == "radix":
		return usageError{errors.New("-csv sorts full records, which needs a comparison algorithm, not radix")}
	case o.csv != "" && o.keyCol < 0:
		return usageError{fmt.Errorf("-keycol %d: want >= 0", o.keyCol)}
	case o.csv != "" && o.sep == "":
		return usageError{errors.New("-sep must not be empty")}
	case o.universe <= 0 && (o.alg == "radix" || o.gen > 0):
		return usageError{fmt.Errorf("-universe %d: want > 0", o.universe)}
	case o.mem <= 0:
		return usageError{fmt.Errorf("-mem %d: want > 0", o.mem)}
	case o.disks < 0:
		return usageError{fmt.Errorf("-disks %d: want >= 0", o.disks)}
	case o.pipe.Prefetch < 0 || o.pipe.WriteBehind < 0:
		return usageError{fmt.Errorf("-prefetch %d / -writebehind %d: want >= 0", o.pipe.Prefetch, o.pipe.WriteBehind)}
	case o.workers < 0:
		return usageError{fmt.Errorf("-workers %d: want >= 0", o.workers)}
	case o.latency < 0:
		return usageError{fmt.Errorf("-latency %v: want >= 0", o.latency)}
	case o.backend != "" && o.backend != repro.BackendFile && o.backend != repro.BackendMmap:
		return usageError{fmt.Errorf("-backend %q: want %q or %q", o.backend, repro.BackendFile, repro.BackendMmap)}
	case o.kernel != "" && o.kernel != repro.KernelAuto && o.kernel != repro.KernelComparison && o.kernel != repro.KernelRadix:
		return usageError{fmt.Errorf("-kernel %q: want %q, %q, or %q", o.kernel, repro.KernelAuto, repro.KernelComparison, repro.KernelRadix)}
	}
	scenarios := 0
	for _, on := range []bool{o.topk > 0, o.quantile > 0, o.ingest != ""} {
		if on {
			scenarios++
		}
	}
	switch {
	case o.topk < 0:
		return usageError{fmt.Errorf("-topk %d: want > 0", o.topk)}
	case o.quantile < 0:
		return usageError{fmt.Errorf("-quantile %d: want > 0", o.quantile)}
	case scenarios > 1:
		return usageError{errors.New("-topk, -quantile, and -ingest are mutually exclusive")}
	case scenarios == 1 && o.csv != "":
		return usageError{errors.New("query scenarios work on bare keys, not -csv records")}
	case scenarios == 1 && o.alg != "auto":
		return usageError{errors.New("query scenarios plan their own algorithm; drop -alg")}
	}
	return nil
}

func run(o options) error {
	if err := validate(o); err != nil {
		return err
	}
	// The input is read (or generated) before any machine setup, so a bad
	// input file fails without creating disk files in the scratch dir.
	var keys []int64
	var lines [][]byte // CSV records; nil for key-only sorts
	var trailingNL bool
	in := o.in
	var err error
	switch {
	case o.csv != "":
		in = o.csv
		keys, lines, trailingNL, err = readCSV(o.csv, o.keyCol, o.sep)
		if err != nil {
			return err
		}
		if len(keys) == 0 {
			return fmt.Errorf("%s: no records", o.csv)
		}
	case o.gen > 0:
		keys = make([]int64, o.gen)
		rng := rand.New(rand.NewSource(o.seed))
		for i := range keys {
			keys[i] = rng.Int63n(o.universe)
		}
		in = "generated.bin"
	default:
		keys, err = readKeys(in)
		if err != nil {
			return err
		}
	}
	out := o.out
	if out == "" {
		out = in + ".sorted"
	}

	scratch := o.scratch
	if scratch == "" {
		dir, err := os.MkdirTemp("", "pdmsort-disks-")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		scratch = dir
	}
	m, err := repro.NewMachine(repro.MachineConfig{
		Memory: o.mem, Disks: o.disks, Dir: scratch, Backend: o.backend,
		Kernel: o.kernel, Pipeline: o.pipe, Workers: o.workers,
		BlockLatency: o.latency,
	})
	if err != nil {
		return err
	}
	defer m.Close()

	if kind := o.scenarioKind(); kind != "" {
		return runScenario(o, m, kind, keys, out)
	}

	if o.explain {
		spec := repro.SortSpec{N: len(keys)}
		if o.alg == "radix" {
			spec.Universe = o.universe
		}
		for _, line := range lines {
			spec.PayloadWords += (len(line) + 7) / 8
		}
		planRep, err := m.Explain(spec)
		if err != nil {
			return err
		}
		printExplain(os.Stdout, planRep)
		return nil
	}

	var rep *repro.Report
	t0 := time.Now()
	switch {
	case o.csv != "":
		// Every line is one record whose whole byte content is the
		// payload, so the permutation pass moves the actual file data
		// through the simulated disks.
		alg, aerr := parseAlg(o.alg) // cannot fail: validate ran first
		if aerr != nil {
			return aerr
		}
		rep, err = m.SortRecords(keys, lines, alg)
	case o.alg == "radix":
		rep, err = m.SortInts(keys, o.universe)
	default:
		alg, aerr := parseAlg(o.alg)
		if aerr != nil {
			return aerr
		}
		rep, err = m.Sort(keys, alg)
	}
	if err != nil {
		return err
	}
	wall := time.Since(t0)
	if o.csv != "" {
		err = writeLines(out, lines, trailingNL)
	} else {
		err = writeKeys(out, keys)
	}
	if err != nil {
		return err
	}
	backend := o.backend
	if backend == "" {
		backend = repro.BackendFile
	}
	printReport(rep, out, backend, m.Kernel(), wall)
	return nil
}

// runScenario answers a query-scenario flag: with -explain it prints the
// scenario plan (the route's predicted passes against the full sort it
// competes with), otherwise it runs the scenario and reports the measured
// passes in the same currency.
func runScenario(o options, m *repro.Machine, kind string, keys []int64, out string) error {
	var batch []int64
	var err error
	if kind == "ingest" {
		if batch, err = readKeys(o.ingest); err != nil {
			return err
		}
	}
	if o.explain {
		p, err := m.ExplainScenario(repro.ScenarioSpec{
			Kind: kind, N: len(keys), K: o.topk, Rank: o.quantile, Batch: len(batch),
		})
		if err != nil {
			return err
		}
		printScenarioPlan(os.Stdout, p)
		return nil
	}
	t0 := time.Now()
	var rep *repro.Report
	switch kind {
	case "topk":
		var top []int64
		top, rep, err = m.TopK(keys, o.topk)
		if err == nil {
			err = writeKeys(out, top)
		}
	case "quantile":
		var v int64
		v, rep, err = m.Quantile(keys, o.quantile)
		if err == nil {
			fmt.Printf("rank %d key: %d\n", o.quantile, v)
			out = ""
		}
	case "ingest":
		var merged []int64
		merged, rep, err = m.Ingest(keys, batch)
		if err == nil {
			err = writeKeys(out, merged)
		}
	}
	if err != nil {
		return err
	}
	printScenarioReport(rep, out, time.Since(t0))
	return nil
}

// printScenarioPlan renders one scenario's cost comparison.
func printScenarioPlan(w io.Writer, p *repro.ScenarioPlanReport) {
	if !p.Feasible {
		fmt.Fprintf(w, "scenario %s: infeasible: %s\n", p.Kind, p.Reason)
		return
	}
	exact := "floor"
	if p.Exact {
		exact = "exact"
	}
	fmt.Fprintf(w, "scenario %s via %s: %.3f read / %.3f write passes (%s; %d/%d steps over %d padded words)\n",
		p.Kind, p.Route, p.ReadPasses, p.WritePasses, exact, p.ReadSteps, p.WriteSteps, p.PaddedN)
	if p.Sample > 0 {
		fmt.Fprintf(w, "sample: %d keys, survivor budget %d\n", p.Sample, p.Budget)
	}
	fmt.Fprintf(w, "full sort (%s): %.3f read passes\n", p.FullSortAlgorithm, p.FullSortReadPasses)
	decision := "full sort"
	if p.UseScenario {
		decision = "scenario route"
	}
	fmt.Fprintf(w, "auto picks: %s\n", decision)
}

// printScenarioReport summarizes a scenario run in the pass currency.
func printScenarioReport(rep *repro.Report, out string, wall time.Duration) {
	fmt.Printf("%s via %s: %.3f read passes, %.3f write passes over %d keys",
		rep.Scenario, rep.ScenarioRoute, rep.ReadPasses, rep.WritePasses, rep.N)
	if rep.FellBack {
		fmt.Printf(" (detected a sampling miss; fell back)")
	}
	fmt.Printf("\nI/O: %s\n", rep.IO)
	if secs := wall.Seconds(); secs > 0 {
		fmt.Printf("%.2fM words/sec (%d words in %v)\n",
			float64(rep.N)/secs/1e6, rep.N, wall.Round(time.Millisecond))
	}
	if out != "" {
		fmt.Printf("output: %s\n", out)
	}
}

// printExplain renders the planner's ranked candidate table.  Every
// column except the predicted seconds is deterministic for a given input
// and machine shape; the CI gold test normalizes the seconds column.
func printExplain(w io.Writer, rep *repro.PlanReport) {
	fmt.Fprintf(w, "plan for %d keys", rep.Spec.N)
	if rep.Spec.PayloadWords > 0 {
		fmt.Fprintf(w, " + %d payload words", rep.Spec.PayloadWords)
	}
	if rep.Spec.Universe > 0 {
		fmt.Fprintf(w, " (universe %d)", rep.Spec.Universe)
	}
	fmt.Fprintf(w, ": chosen %s\n", rep.Chosen)
	fmt.Fprintf(w, "  %-10s %-8s %8s %10s %12s %8s %12s\n",
		"ALGORITHM", "FEASIBLE", "PASSES", "PADDED", "IOWORDS", "PERMUTE", "PREDICTED")
	for _, c := range rep.Candidates {
		mark := " "
		if c.Algorithm == rep.Chosen {
			mark = "*"
		}
		if !c.Feasible {
			fmt.Fprintf(w, "%s %-10s no       %s\n", mark, c.Algorithm, c.Reason)
			continue
		}
		permute := "-"
		if c.PermutePasses > 0 {
			permute = fmt.Sprintf("%.1f", c.PermutePasses)
		}
		fmt.Fprintf(w, "%s %-10s yes      %8.3f %10d %12d %8s %11.3fs\n",
			mark, c.Algorithm, c.ReadPasses, c.PaddedN, c.IOWords, permute, c.Seconds)
	}
	cal := "analytic defaults"
	if rep.Calibration.Probed {
		cal = "micro-probe (cached per machine shape)"
	}
	fmt.Fprintf(w, "calibration: %s\n", cal)
	if len(rep.Backends) > 0 {
		fmt.Fprintf(w, "backends:")
		for i, b := range rep.Backends {
			if i > 0 {
				fmt.Fprintf(w, " >")
			}
			mark := ""
			if b.Chosen {
				mark = "*"
			}
			fmt.Fprintf(w, " %s%s %.1fus/step", mark, b.Backend,
				(b.ReadStepSeconds+b.WriteStepSeconds)/2*1e6)
		}
		fmt.Fprintf(w, " (ranked by probe; * = this machine)\n")
	}
	if len(rep.Kernels) > 0 {
		fmt.Fprintf(w, "kernels:")
		for i, k := range rep.Kernels {
			if i > 0 {
				fmt.Fprintf(w, " >")
			}
			mark := ""
			if k.Chosen {
				mark = "*"
			}
			fmt.Fprintf(w, " %s%s %.1fns/key", mark, k.Kernel,
				k.SortSecondsPerKey*1e9)
		}
		fmt.Fprintf(w, " (ranked by probe; * = this machine)\n")
	}
}

func printReport(rep *repro.Report, out, backend, kernel string, wall time.Duration) {
	fmt.Printf("sorted %d keys with %s: %.3f read passes, %.3f write passes",
		rep.N, rep.Algorithm, rep.ReadPasses, rep.WritePasses)
	if rep.FellBack {
		fmt.Printf(" (fell back to the deterministic algorithm)")
	}
	if rep.KeyRounds > 1 {
		fmt.Printf(" (%d key rounds)", rep.KeyRounds)
	}
	fmt.Printf("\nI/O: %s\n", rep.IO)
	if rep.PayloadWords > 0 {
		fmt.Printf("records: moved %d payload words in %.3f permutation passes\n",
			rep.PayloadWords, rep.PermutePasses)
	}
	if rep.PrefetchHits+rep.PrefetchStalls > 0 {
		fmt.Printf("pipeline: %.0f%% of streamed reads overlapped (%d hits, %d stalls, %d write stalls)\n",
			100*rep.Overlap, rep.PrefetchHits, rep.PrefetchStalls, rep.WriteStalls)
	}
	if rep.ComputeSeconds > 0 {
		fmt.Printf("compute: %.3fs in parallel sections across %d workers (%.0f%% utilization)\n",
			rep.ComputeSeconds, rep.Workers, 100*rep.WorkerUtilization)
	} else {
		fmt.Printf("compute: serial (workers=%d, nothing crossed the parallel grain)\n", rep.Workers)
	}
	words := rep.N + rep.PayloadWords
	if secs := wall.Seconds(); secs > 0 {
		fmt.Printf("backend: %s — kernel: %s — %.2fM words/sec (%d words in %v)\n",
			backend, kernel, float64(words)/secs/1e6, words, wall.Round(time.Millisecond))
	} else {
		fmt.Printf("backend: %s — kernel: %s\n", backend, kernel)
	}
	fmt.Printf("output: %s\n", out)
}

// parseAlg delegates to the facade's shared name table (pdmd uses the
// same one, so the CLI and the service accept identical spellings).
func parseAlg(name string) (repro.Algorithm, error) {
	return repro.ParseAlgorithm(name)
}

// readCSV parses the file into one record per line: the integer key from
// the requested column and the raw line bytes as the payload.  It reports
// whether the file ended with a newline so the output reproduces it.
//
// Lines are split naively on the separator — RFC-4180 quoting is NOT
// interpreted, because the payload must be the line's exact bytes (an
// encoding/csv round trip would re-quote them).  A quoted field
// containing the separator shifts the key column and fails key parsing
// with a line-numbered error rather than silently mis-keying.
func readCSV(path string, keyCol int, sep string) (keys []int64, lines [][]byte, trailingNL bool, err error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, false, err
	}
	text := string(raw)
	trailingNL = strings.HasSuffix(text, "\n")
	text = strings.TrimSuffix(text, "\n")
	if text == "" {
		return nil, nil, trailingNL, nil
	}
	for ln, line := range strings.Split(text, "\n") {
		fields := strings.Split(strings.TrimSuffix(line, "\r"), sep)
		if keyCol >= len(fields) {
			return nil, nil, false, fmt.Errorf("%s:%d: %d fields, key column %d out of range", path, ln+1, len(fields), keyCol)
		}
		k, err := strconv.ParseInt(strings.TrimSpace(fields[keyCol]), 10, 64)
		if err != nil {
			return nil, nil, false, fmt.Errorf("%s:%d: key column %d: %w", path, ln+1, keyCol, err)
		}
		keys = append(keys, k)
		lines = append(lines, []byte(line))
	}
	return keys, lines, trailingNL, nil
}

// writeLines writes the records back as a delimited text file.
func writeLines(path string, lines [][]byte, trailingNL bool) error {
	var buf []byte
	for i, line := range lines {
		if i > 0 {
			buf = append(buf, '\n')
		}
		buf = append(buf, line...)
	}
	if trailingNL {
		buf = append(buf, '\n')
	}
	return os.WriteFile(path, buf, 0o644)
}

func readKeys(path string) ([]int64, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(raw)%8 != 0 {
		return nil, fmt.Errorf("%s: size %d is not a multiple of 8", path, len(raw))
	}
	keys := make([]int64, len(raw)/8)
	for i := range keys {
		keys[i] = int64(binary.LittleEndian.Uint64(raw[8*i:]))
	}
	return keys, nil
}

func writeKeys(path string, keys []int64) error {
	raw := make([]byte, 8*len(keys))
	for i, k := range keys {
		binary.LittleEndian.PutUint64(raw[8*i:], uint64(k))
	}
	return os.WriteFile(path, raw, 0o644)
}
