package main

import (
	"errors"
	"os"
	"path/filepath"
	"slices"
	"testing"

	"repro"
	"repro/internal/workload"
)

func TestReadWriteKeysRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "keys.bin")
	keys := []int64{-5, 0, 1 << 40, 7}
	if err := writeKeys(path, keys); err != nil {
		t.Fatal(err)
	}
	got, err := readKeys(path)
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(got, keys) {
		t.Fatalf("round trip = %v", got)
	}
	// Corrupt size.
	if err := os.WriteFile(path, []byte{1, 2, 3}, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readKeys(path); err == nil {
		t.Fatal("ragged file accepted")
	}
	if _, err := readKeys(filepath.Join(dir, "missing.bin")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestParseAlg(t *testing.T) {
	cases := map[string]repro.Algorithm{
		"auto":   repro.Auto,
		"mesh3":  repro.ThreePassMesh,
		"mesh2e": repro.TwoPassMeshExpected,
		"lmm3":   repro.ThreePassLMM,
		"exp2":   repro.TwoPassExpected,
		"exp3":   repro.ThreePassExpected,
		"seven":  repro.SevenPass,
		"six":    repro.SixPassExpected,
	}
	for name, want := range cases {
		got, err := parseAlg(name)
		if err != nil || got != want {
			t.Fatalf("parseAlg(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := parseAlg("bogus"); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestRunEndToEnd(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "in.bin")
	out := filepath.Join(dir, "out.bin")
	keys := workload.Perm(3000, 5)
	if err := writeKeys(in, keys); err != nil {
		t.Fatal(err)
	}
	scratch := filepath.Join(dir, "disks")
	if err := os.Mkdir(scratch, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := run(in, out, 256, 0, "lmm3", 1<<32, scratch, 0, 1, repro.PipelineConfig{Prefetch: 2, WriteBehind: 2}, 2); err != nil {
		t.Fatal(err)
	}
	got, err := readKeys(out)
	if err != nil {
		t.Fatal(err)
	}
	if !slices.IsSorted(got) || len(got) != 3000 {
		t.Fatal("output not sorted")
	}
}

func TestRunGenerateAndRadix(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "sorted.bin")
	scratch := filepath.Join(dir, "disks")
	if err := os.Mkdir(scratch, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := run("", out, 256, 4, "radix", 1<<20, scratch, 2000, 7, repro.PipelineConfig{Prefetch: 2, WriteBehind: 2}, 2); err != nil {
		t.Fatal(err)
	}
	got, err := readKeys(out)
	if err != nil {
		t.Fatal(err)
	}
	if !slices.IsSorted(got) || len(got) != 2000 {
		t.Fatal("generated+radix output wrong")
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("", "", 256, 0, "auto", 1<<20, t.TempDir(), 0, 1, repro.PipelineConfig{}, 0); err == nil {
		t.Fatal("no input accepted")
	}
	dir := t.TempDir()
	in := filepath.Join(dir, "in.bin")
	if err := writeKeys(in, []int64{3, 1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := run(in, "", 256, 0, "bogus", 1<<20, dir, 0, 1, repro.PipelineConfig{}, 0); err == nil {
		t.Fatal("bogus algorithm accepted")
	}
}

// TestValidateRejectsBadFlags covers the upfront flag validation: every
// unusable combination must be rejected as a usageError — which main
// turns into a non-zero exit plus the usage text — before any file is
// read, any key generated, or any machine built.
func TestValidateRejectsBadFlags(t *testing.T) {
	ok := repro.PipelineConfig{Prefetch: 2, WriteBehind: 2}
	cases := []struct {
		name     string
		in       string
		mem      int
		disks    int
		alg      string
		universe int64
		gen      int
		pipe     repro.PipelineConfig
		workers  int
	}{
		{name: "unknown alg", in: "x.bin", mem: 256, alg: "bogus", universe: 1, pipe: ok},
		{name: "unknown alg with gen", mem: 256, alg: "quick3", universe: 100, gen: 10, pipe: ok},
		{name: "no input", mem: 256, alg: "auto", universe: 1, pipe: ok},
		{name: "gen and in conflict", in: "x.bin", mem: 256, alg: "auto", universe: 100, gen: 10, pipe: ok},
		{name: "negative gen", mem: 256, alg: "auto", universe: 100, gen: -5, pipe: ok},
		{name: "zero universe radix", in: "x.bin", mem: 256, alg: "radix", universe: 0, pipe: ok},
		{name: "zero universe gen", mem: 256, alg: "auto", universe: 0, gen: 10, pipe: ok},
		{name: "zero mem", in: "x.bin", mem: 0, alg: "auto", universe: 1, pipe: ok},
		{name: "negative disks", in: "x.bin", mem: 256, disks: -1, alg: "auto", universe: 1, pipe: ok},
		{name: "negative prefetch", in: "x.bin", mem: 256, alg: "auto", universe: 1, pipe: repro.PipelineConfig{Prefetch: -1}},
		{name: "negative workers", in: "x.bin", mem: 256, alg: "auto", universe: 1, pipe: ok, workers: -2},
	}
	for _, tc := range cases {
		err := validate(tc.in, tc.mem, tc.disks, tc.alg, tc.universe, tc.gen, tc.pipe, tc.workers)
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		var ue usageError
		if !errors.As(err, &ue) {
			t.Errorf("%s: error %v is not a usageError", tc.name, err)
		}
	}
	// Valid combinations pass.
	if err := validate("x.bin", 256, 0, "sevenmesh", 1, 0, ok, 0); err != nil {
		t.Fatalf("valid flags rejected: %v", err)
	}
	if err := validate("", 256, 4, "radix", 100, 10, ok, 2); err != nil {
		t.Fatalf("valid radix gen rejected: %v", err)
	}
	// run surfaces the usageError without touching the filesystem: the
	// input file does not exist, yet the algorithm error comes first.
	err := run("/nonexistent/keys.bin", "", 256, 0, "bogus", 1, "", 0, 1, ok, 0)
	var ue usageError
	if !errors.As(err, &ue) {
		t.Fatalf("run returned %v, want a usageError before any I/O", err)
	}
}
