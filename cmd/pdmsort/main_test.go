package main

import (
	"os"
	"path/filepath"
	"slices"
	"testing"

	"repro"
	"repro/internal/workload"
)

func TestReadWriteKeysRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "keys.bin")
	keys := []int64{-5, 0, 1 << 40, 7}
	if err := writeKeys(path, keys); err != nil {
		t.Fatal(err)
	}
	got, err := readKeys(path)
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(got, keys) {
		t.Fatalf("round trip = %v", got)
	}
	// Corrupt size.
	if err := os.WriteFile(path, []byte{1, 2, 3}, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readKeys(path); err == nil {
		t.Fatal("ragged file accepted")
	}
	if _, err := readKeys(filepath.Join(dir, "missing.bin")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestParseAlg(t *testing.T) {
	cases := map[string]repro.Algorithm{
		"auto":   repro.Auto,
		"mesh3":  repro.ThreePassMesh,
		"mesh2e": repro.TwoPassMeshExpected,
		"lmm3":   repro.ThreePassLMM,
		"exp2":   repro.TwoPassExpected,
		"exp3":   repro.ThreePassExpected,
		"seven":  repro.SevenPass,
		"six":    repro.SixPassExpected,
	}
	for name, want := range cases {
		got, err := parseAlg(name)
		if err != nil || got != want {
			t.Fatalf("parseAlg(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := parseAlg("bogus"); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestRunEndToEnd(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "in.bin")
	out := filepath.Join(dir, "out.bin")
	keys := workload.Perm(3000, 5)
	if err := writeKeys(in, keys); err != nil {
		t.Fatal(err)
	}
	scratch := filepath.Join(dir, "disks")
	if err := os.Mkdir(scratch, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := run(in, out, 256, 0, "lmm3", 1<<32, scratch, 0, 1, repro.PipelineConfig{Prefetch: 2, WriteBehind: 2}, 2); err != nil {
		t.Fatal(err)
	}
	got, err := readKeys(out)
	if err != nil {
		t.Fatal(err)
	}
	if !slices.IsSorted(got) || len(got) != 3000 {
		t.Fatal("output not sorted")
	}
}

func TestRunGenerateAndRadix(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "sorted.bin")
	scratch := filepath.Join(dir, "disks")
	if err := os.Mkdir(scratch, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := run("", out, 256, 4, "radix", 1<<20, scratch, 2000, 7, repro.PipelineConfig{Prefetch: 2, WriteBehind: 2}, 2); err != nil {
		t.Fatal(err)
	}
	got, err := readKeys(out)
	if err != nil {
		t.Fatal(err)
	}
	if !slices.IsSorted(got) || len(got) != 2000 {
		t.Fatal("generated+radix output wrong")
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("", "", 256, 0, "auto", 1<<20, t.TempDir(), 0, 1, repro.PipelineConfig{}, 0); err == nil {
		t.Fatal("no input accepted")
	}
	dir := t.TempDir()
	in := filepath.Join(dir, "in.bin")
	if err := writeKeys(in, []int64{3, 1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := run(in, "", 256, 0, "bogus", 1<<20, dir, 0, 1, repro.PipelineConfig{}, 0); err == nil {
		t.Fatal("bogus algorithm accepted")
	}
}
