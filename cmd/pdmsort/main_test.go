package main

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"slices"
	"strconv"
	"strings"
	"testing"

	"repro"
	"repro/internal/workload"
)

func TestReadWriteKeysRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "keys.bin")
	keys := []int64{-5, 0, 1 << 40, 7}
	if err := writeKeys(path, keys); err != nil {
		t.Fatal(err)
	}
	got, err := readKeys(path)
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(got, keys) {
		t.Fatalf("round trip = %v", got)
	}
	// Corrupt size.
	if err := os.WriteFile(path, []byte{1, 2, 3}, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readKeys(path); err == nil {
		t.Fatal("ragged file accepted")
	}
	if _, err := readKeys(filepath.Join(dir, "missing.bin")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestParseAlg(t *testing.T) {
	cases := map[string]repro.Algorithm{
		"auto":   repro.Auto,
		"mesh3":  repro.ThreePassMesh,
		"mesh2e": repro.TwoPassMeshExpected,
		"lmm3":   repro.ThreePassLMM,
		"exp2":   repro.TwoPassExpected,
		"exp3":   repro.ThreePassExpected,
		"seven":  repro.SevenPass,
		"six":    repro.SixPassExpected,
	}
	for name, want := range cases {
		got, err := parseAlg(name)
		if err != nil || got != want {
			t.Fatalf("parseAlg(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := parseAlg("bogus"); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestRunEndToEnd(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "in.bin")
	out := filepath.Join(dir, "out.bin")
	keys := workload.Perm(3000, 5)
	if err := writeKeys(in, keys); err != nil {
		t.Fatal(err)
	}
	scratch := filepath.Join(dir, "disks")
	if err := os.Mkdir(scratch, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := run(options{in: in, out: out, mem: 256, alg: "lmm3", universe: 1 << 32, scratch: scratch,
		seed: 1, pipe: repro.PipelineConfig{Prefetch: 2, WriteBehind: 2}, workers: 2}); err != nil {
		t.Fatal(err)
	}
	got, err := readKeys(out)
	if err != nil {
		t.Fatal(err)
	}
	if !slices.IsSorted(got) || len(got) != 3000 {
		t.Fatal("output not sorted")
	}
}

func TestRunGenerateAndRadix(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "sorted.bin")
	scratch := filepath.Join(dir, "disks")
	if err := os.Mkdir(scratch, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := run(options{out: out, mem: 256, disks: 4, alg: "radix", universe: 1 << 20, scratch: scratch,
		gen: 2000, seed: 7, pipe: repro.PipelineConfig{Prefetch: 2, WriteBehind: 2}, workers: 2}); err != nil {
		t.Fatal(err)
	}
	got, err := readKeys(out)
	if err != nil {
		t.Fatal(err)
	}
	if !slices.IsSorted(got) || len(got) != 2000 {
		t.Fatal("generated+radix output wrong")
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(options{mem: 256, alg: "auto", universe: 1 << 20, scratch: t.TempDir(), seed: 1, sep: ","}); err == nil {
		t.Fatal("no input accepted")
	}
	dir := t.TempDir()
	in := filepath.Join(dir, "in.bin")
	if err := writeKeys(in, []int64{3, 1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := run(options{in: in, mem: 256, alg: "bogus", universe: 1 << 20, scratch: dir, seed: 1, sep: ","}); err == nil {
		t.Fatal("bogus algorithm accepted")
	}
}

// TestValidateRejectsBadFlags covers the upfront flag validation: every
// unusable combination must be rejected as a usageError — which main
// turns into a non-zero exit plus the usage text — before any file is
// read, any key generated, or any machine built.
func TestValidateRejectsBadFlags(t *testing.T) {
	ok := repro.PipelineConfig{Prefetch: 2, WriteBehind: 2}
	base := options{mem: 256, alg: "auto", universe: 1, sep: ",", pipe: ok}
	with := func(mut func(*options)) options {
		o := base
		mut(&o)
		return o
	}
	cases := []struct {
		name string
		o    options
	}{
		{"unknown alg", with(func(o *options) { o.in = "x.bin"; o.alg = "bogus" })},
		{"unknown alg with gen", with(func(o *options) { o.alg = "quick3"; o.universe = 100; o.gen = 10 })},
		{"no input", base},
		{"gen and in conflict", with(func(o *options) { o.in = "x.bin"; o.universe = 100; o.gen = 10 })},
		{"csv and in conflict", with(func(o *options) { o.in = "x.bin"; o.csv = "y.csv" })},
		{"csv and gen conflict", with(func(o *options) { o.csv = "y.csv"; o.universe = 100; o.gen = 10 })},
		{"csv with radix", with(func(o *options) { o.csv = "y.csv"; o.alg = "radix" })},
		{"csv negative keycol", with(func(o *options) { o.csv = "y.csv"; o.keyCol = -1 })},
		{"csv empty sep", with(func(o *options) { o.csv = "y.csv"; o.sep = "" })},
		{"negative gen", with(func(o *options) { o.universe = 100; o.gen = -5 })},
		{"zero universe radix", with(func(o *options) { o.in = "x.bin"; o.alg = "radix"; o.universe = 0 })},
		{"zero universe gen", with(func(o *options) { o.universe = 0; o.gen = 10 })},
		{"zero mem", with(func(o *options) { o.in = "x.bin"; o.mem = 0 })},
		{"negative disks", with(func(o *options) { o.in = "x.bin"; o.disks = -1 })},
		{"negative prefetch", with(func(o *options) { o.in = "x.bin"; o.pipe = repro.PipelineConfig{Prefetch: -1} })},
		{"negative workers", with(func(o *options) { o.in = "x.bin"; o.workers = -2 })},
		{"unknown backend", with(func(o *options) { o.in = "x.bin"; o.backend = "ram" })},
		{"unknown kernel", with(func(o *options) { o.in = "x.bin"; o.kernel = "simd" })},
	}
	for _, tc := range cases {
		err := validate(tc.o)
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		var ue usageError
		if !errors.As(err, &ue) {
			t.Errorf("%s: error %v is not a usageError", tc.name, err)
		}
	}
	// Valid combinations pass.
	if err := validate(with(func(o *options) { o.in = "x.bin"; o.alg = "sevenmesh" })); err != nil {
		t.Fatalf("valid flags rejected: %v", err)
	}
	if err := validate(with(func(o *options) { o.disks = 4; o.alg = "radix"; o.universe = 100; o.gen = 10; o.workers = 2 })); err != nil {
		t.Fatalf("valid radix gen rejected: %v", err)
	}
	if err := validate(with(func(o *options) { o.csv = "y.csv"; o.keyCol = 2 })); err != nil {
		t.Fatalf("valid csv flags rejected: %v", err)
	}
	if err := validate(with(func(o *options) { o.in = "x.bin"; o.kernel = "radix" })); err != nil {
		t.Fatalf("valid kernel rejected: %v", err)
	}
	// run surfaces the usageError without touching the filesystem: the
	// input file does not exist, yet the algorithm error comes first.
	err := run(with(func(o *options) { o.in = "/nonexistent/keys.bin"; o.alg = "bogus" }))
	var ue usageError
	if !errors.As(err, &ue) {
		t.Fatalf("run returned %v, want a usageError before any I/O", err)
	}
}

// TestRunCSVEndToEnd is the first end-to-end "sort a file" scenario: a
// CSV on disk, sorted stably by its key column through the full-record
// path, comes back with whole lines intact in key order.
func TestRunCSVEndToEnd(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "table.csv")
	out := filepath.Join(dir, "sorted.csv")
	var b strings.Builder
	n := 400
	for i := 0; i < n; i++ {
		// Key in column 1; duplicates (mod 20) make stability observable
		// through the row id in column 0.
		fmt.Fprintf(&b, "row%04d,%d,payload-%04d\n", i, (i*37)%20, i)
	}
	if err := os.WriteFile(in, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	scratch := filepath.Join(dir, "disks")
	if err := os.Mkdir(scratch, 0o755); err != nil {
		t.Fatal(err)
	}
	err := run(options{csv: in, keyCol: 1, sep: ",", out: out, mem: 256, scratch: scratch,
		alg: "auto", universe: 1, seed: 1, pipe: repro.PipelineConfig{Prefetch: 2, WriteBehind: 2}, workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	if !strings.HasSuffix(text, "\n") {
		t.Fatal("trailing newline lost")
	}
	lines := strings.Split(strings.TrimSuffix(text, "\n"), "\n")
	if len(lines) != n {
		t.Fatalf("%d lines out, want %d", len(lines), n)
	}
	lastKey := int64(-1)
	lastRow := ""
	for _, line := range lines {
		fields := strings.Split(line, ",")
		if len(fields) != 3 {
			t.Fatalf("line %q torn apart", line)
		}
		k, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			t.Fatal(err)
		}
		if k < lastKey {
			t.Fatalf("keys out of order: %d after %d", k, lastKey)
		}
		if k == lastKey && fields[0] <= lastRow {
			t.Fatalf("stability violated: %s after %s for key %d", fields[0], lastRow, k)
		}
		lastKey, lastRow = k, fields[0]
	}
	// Bad key column is a runtime error naming the line, not a usage error.
	if err := os.WriteFile(in, []byte("a,b,c\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	err = run(options{csv: in, keyCol: 1, sep: ",", mem: 256, scratch: scratch,
		alg: "auto", universe: 1, seed: 1})
	if err == nil {
		t.Fatal("unparsable key column accepted")
	}
	var ue usageError
	if errors.As(err, &ue) {
		t.Fatalf("data error %v misclassified as a usage error", err)
	}
	// Key column out of range names the offending line too.
	if err := os.WriteFile(in, []byte("1,2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(options{csv: in, keyCol: 5, sep: ",", mem: 256, scratch: scratch,
		alg: "auto", universe: 1, seed: 1}); err == nil {
		t.Fatal("out-of-range key column accepted")
	}
}

// normalizeExplain replaces the calibrated seconds column with a fixed
// token: every other column (passes, padded lengths, I/O words, permute
// passes, feasibility reasons) is deterministic for a fixed input and
// machine shape, which is what the gold pins.
func normalizeExplain(s string) string {
	s = regexp.MustCompile(`\d+\.\d{3}s`).ReplaceAllString(s, "<T>")
	s = regexp.MustCompile(`\d+\.\d+us`).ReplaceAllString(s, "<U>")
	return regexp.MustCompile(`\d+\.\d+ns`).ReplaceAllString(s, "<N>")
}

// TestExplainGold pins the -explain output (the CI docs leg runs this):
// a bare key plan and a records plan, seconds normalized.
func TestExplainGold(t *testing.T) {
	m, err := repro.NewMachine(repro.MachineConfig{
		Memory: 1024, Dir: t.TempDir(),
		Pipeline: repro.PipelineConfig{Prefetch: 2, WriteBehind: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	var buf bytes.Buffer
	for _, spec := range []repro.SortSpec{
		{N: 2048},
		{N: 1024, PayloadWords: 4096},
		{N: 40000, Universe: 1 << 16},
	} {
		rep, err := m.Explain(spec)
		if err != nil {
			t.Fatal(err)
		}
		printExplain(&buf, rep)
		buf.WriteString("\n")
	}
	got := normalizeExplain(buf.String())
	golden := filepath.Join("testdata", "explain.golden")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run UPDATE_GOLDEN=1 go test ./cmd/pdmsort to regenerate)", err)
	}
	if got != string(want) {
		t.Errorf("-explain output drifted from the gold:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestExplainFlagEndToEnd: -explain plans without sorting — no output
// file may appear.
func TestExplainFlagEndToEnd(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "sorted.bin")
	o := options{
		gen: 1000, seed: 1, universe: 1 << 32, alg: "auto",
		mem: 1024, out: out, scratch: filepath.Join(dir, "scratch"),
		sep: ",", explain: true,
	}
	if err := os.MkdirAll(o.scratch, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := run(o); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(out); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("-explain wrote the output file: %v", err)
	}
}
