package records

import (
	"testing"
	"time"

	"repro/internal/pdm"
)

// latencyFileArray models a realistic device: file-backed disks decorated
// with a fixed per-block service time, the backend where batching and
// prefetch pay off in wall clock.
func latencyFileArray(b *testing.B, mem, d, blk int, perBlock time.Duration) *pdm.Array {
	b.Helper()
	disks, err := pdm.NewFileDisks(b.TempDir(), d, blk)
	if err != nil {
		b.Fatal(err)
	}
	for i, dk := range disks {
		disks[i] = pdm.LatencyDisk{Disk: dk, PerBlock: perBlock}
	}
	a, err := pdm.NewWithDisks(pdm.Config{
		D: d, B: blk, Mem: mem,
		Pipeline: pdm.PipelineConfig{Prefetch: 2, WriteBehind: 2},
	}, disks)
	if err != nil {
		b.Fatal(err)
	}
	return a
}

// The paired permutation benchmarks: the distribution pass against the
// naive per-record gather, on identical latency-modeled file disks.  The
// ratio is the headline number for the records layer — the naive gather
// pays one positioning delay per record, the distribution pass one per
// stripe of every level.
func benchPermute(b *testing.B, naive bool) {
	const n = 2000
	payloads := genPayloads(n, 1, 24, 42)
	perm := randPerm(n, 7)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		a := latencyFileArray(b, 1024, 8, 32, 50*time.Microsecond)
		b.StartTimer()
		var err error
		if naive {
			_, err = NaiveGather(a, payloads, perm)
		} else {
			_, err = Permute(a, payloads, perm)
		}
		b.StopTimer()
		if err != nil {
			b.Fatal(err)
		}
		a.Close()
		b.StartTimer()
	}
	b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "records/s")
}

func BenchmarkPermuteDistribution(b *testing.B) { benchPermute(b, false) }
func BenchmarkPermuteNaiveGather(b *testing.B)  { benchPermute(b, true) }
