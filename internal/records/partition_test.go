package records

import (
	"math/rand"
	"slices"
	"sort"
	"testing"
)

func TestRangeShard(t *testing.T) {
	splitters := []int64{10, 20}
	cases := []struct {
		key  int64
		want int
	}{
		{-5, 0}, {9, 0},
		{10, 1}, // equal to a splitter goes right
		{15, 1}, {19, 1},
		{20, 2}, {100, 2},
	}
	for _, tc := range cases {
		if got := RangeShard(tc.key, splitters); got != tc.want {
			t.Fatalf("RangeShard(%d) = %d, want %d", tc.key, got, tc.want)
		}
	}
	if got := RangeShard(42, nil); got != 0 {
		t.Fatalf("no splitters: shard %d, want 0", got)
	}
}

// TestRangePartition checks the three invariants the distributed sort
// rests on: every index lands in exactly one shard, shards respect the
// ranges, order within a shard is original order, and equal keys share a
// shard.
func TestRangePartition(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	keys := make([]int64, 500)
	for i := range keys {
		keys[i] = int64(rng.Intn(50)) // heavy duplicates
	}
	splitters := []int64{10, 25, 25, 40} // duplicate splitter = empty shard
	shards := RangePartition(keys, splitters)
	if len(shards) != len(splitters)+1 {
		t.Fatalf("%d shards for %d splitters", len(shards), len(splitters))
	}
	seen := make([]bool, len(keys))
	total := 0
	for s, idx := range shards {
		if idx == nil {
			t.Fatalf("shard %d is nil, want empty slice", s)
		}
		if !slices.IsSorted(idx) {
			t.Fatalf("shard %d indices out of original order: %v", s, idx)
		}
		for _, i := range idx {
			if seen[i] {
				t.Fatalf("index %d in two shards", i)
			}
			seen[i] = true
			if got := RangeShard(keys[i], splitters); got != s {
				t.Fatalf("key %d in shard %d, RangeShard says %d", keys[i], s, got)
			}
		}
		total += len(idx)
	}
	if total != len(keys) {
		t.Fatalf("partition covers %d of %d keys", total, len(keys))
	}
	// Shard between the duplicate splitters is necessarily empty.
	if len(shards[2]) != 0 {
		t.Fatalf("degenerate range [25,25) got %d keys", len(shards[2]))
	}
	// Equal keys all share a shard.
	byKey := map[int64]int{}
	for s, idx := range shards {
		for _, i := range idx {
			if prev, ok := byKey[keys[i]]; ok && prev != s {
				t.Fatalf("key %d split across shards %d and %d", keys[i], prev, s)
			}
			byKey[keys[i]] = s
		}
	}
	// Concatenating per-shard sorted keys equals the global sort (the
	// distributed pipeline in miniature).
	var concat []int64
	for _, idx := range shards {
		part := make([]int64, len(idx))
		for j, i := range idx {
			part[j] = keys[i]
		}
		sort.Slice(part, func(a, b int) bool { return part[a] < part[b] })
		concat = append(concat, part...)
	}
	want := append([]int64(nil), keys...)
	sort.Slice(want, func(a, b int) bool { return want[a] < want[b] })
	if !slices.Equal(concat, want) {
		t.Fatal("per-shard sorts do not concatenate to the global sort")
	}
}
