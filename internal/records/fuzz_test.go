package records

import (
	"bytes"
	"testing"

	"repro/internal/pdm"
)

// FuzzRecordsPermutation drives Permute with fuzzer-shaped record sets —
// payload lengths (including empty payloads) and the permutation both come
// from the input bytes — and checks the permutation-layer invariants: every
// output payload is byte-identical to the input record the permutation
// names, the accounted store size matches PayloadWords, and the run leaves
// no arena allocation behind.
func FuzzRecordsPermutation(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9})
	f.Add([]byte("\x20\x00\xff\x10payload-bytes\x00\x00\x07\x83"))
	f.Add(bytes.Repeat([]byte{0x5a, 0x00, 0x13}, 60))
	f.Fuzz(func(t *testing.T, data []byte) {
		next := func() byte {
			if len(data) == 0 {
				return 0
			}
			b := data[0]
			data = data[1:]
			return b
		}
		n := int(next())%48 + 1
		payloads := make([][]byte, n)
		for i := range payloads {
			ln := int(next()) % 25 // empty payloads allowed
			p := make([]byte, ln)
			for j := range p {
				p[j] = next()
			}
			payloads[i] = p
		}
		// A permutation from the remaining bytes (Fisher–Yates with
		// fuzzer-chosen swaps; always a valid permutation).
		perm := make([]int, n)
		for i := range perm {
			perm[i] = i
		}
		for i := n - 1; i > 0; i-- {
			j := int(next()) % (i + 1)
			perm[i], perm[j] = perm[j], perm[i]
		}

		a, err := pdm.New(pdm.Config{
			Mem: 256, D: 4, B: 16,
			Pipeline: pdm.PipelineConfig{Prefetch: 2, WriteBehind: 2},
		})
		if err != nil {
			t.Fatal(err)
		}
		defer a.Close()
		res, err := Permute(a, payloads, perm)
		if err != nil {
			t.Fatalf("Permute: %v", err)
		}
		if res.Words != PayloadWords(payloads) {
			t.Fatalf("accounted %d words, payloads hold %d", res.Words, PayloadWords(payloads))
		}
		if len(res.Out) != n {
			t.Fatalf("got %d outputs for %d records", len(res.Out), n)
		}
		for j, i := range perm {
			if !bytes.Equal(res.Out[j], payloads[i]) {
				t.Fatalf("output %d: got %x, want payload %d = %x", j, res.Out[j], i, payloads[i])
			}
		}
		if leak := a.Arena().InUse(); leak != 0 {
			t.Fatalf("permutation leaked %d arena keys", leak)
		}
	})
}
