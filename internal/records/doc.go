// Package records is the full-record layer's external permutation engine:
// given variable-width byte payloads and a target order, it moves every
// payload byte through the simulated disks from original order into target
// order, with all I/O charged in the PDM's currency.
//
// The permutation is the classic distribution ("scatter") permutation the
// model prices at O(sort(N)) I/Os: the payload store is read sequentially
// once per level and each record is routed toward the memory-sized
// destination chunk it belongs to, recursing with fanout M/B until a
// chunk's worth of destinations fits in internal memory, where the records
// are placed and the chunk is written out sequentially.  Every level is two
// sequential passes over the payload volume (one read, one write), so the
// total cost is 2·(levels+1) passes regardless of record width — against
// which NaiveGather, the obvious per-record random gather, charges one
// vectored read per record.
//
// All reads run through the streaming layer (stream.Reader), so gather and
// scatter prefetch ahead of the consumer when the array's pipeline is
// configured; all buffers come from the array's arena, so the layer's true
// internal-memory footprint is metered like every algorithm's.
package records
