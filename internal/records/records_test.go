package records

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"

	"repro/internal/pdm"
)

// newArray builds a pipelined in-memory array for the tests.
func newArray(t testing.TB, mem, d, b int) *pdm.Array {
	t.Helper()
	a, err := pdm.New(pdm.Config{
		D: d, B: b, Mem: mem,
		Pipeline: pdm.PipelineConfig{Prefetch: 2, WriteBehind: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// genPayloads builds n deterministic payloads with byte lengths in
// [minLen, maxLen] (zero lengths allowed).
func genPayloads(n, minLen, maxLen int, seed int64) [][]byte {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]byte, n)
	for i := range out {
		ln := minLen
		if maxLen > minLen {
			ln += rng.Intn(maxLen - minLen + 1)
		}
		p := make([]byte, ln)
		rng.Read(p)
		out[i] = p
	}
	return out
}

func randPerm(n int, seed int64) []int {
	return rand.New(rand.NewSource(seed)).Perm(n)
}

func checkPermuted(t *testing.T, payloads [][]byte, perm []int, out [][]byte) {
	t.Helper()
	if len(out) != len(perm) {
		t.Fatalf("got %d outputs, want %d", len(out), len(perm))
	}
	for j, i := range perm {
		if !bytes.Equal(out[j], payloads[i]) {
			t.Fatalf("output %d: got %x, want payload %d = %x", j, out[j], i, payloads[i])
		}
	}
}

func TestPermuteMatchesReference(t *testing.T) {
	cases := []struct {
		name              string
		mem, d, b         int
		n, minLen, maxLen int
	}{
		{"single-chunk", 256, 4, 16, 50, 1, 30},
		{"one-level", 256, 4, 16, 400, 1, 24},
		{"fixed-width", 256, 4, 16, 300, 8, 8},
		{"wide-records", 256, 4, 16, 60, 100, 700}, // records span many blocks
		{"zero-lengths", 256, 4, 16, 300, 0, 12},
		{"deep-recursion", 64, 2, 8, 2000, 1, 10}, // tiny memory forces levels >= 2
		{"single-disk", 144, 1, 12, 200, 0, 40},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a := newArray(t, tc.mem, tc.d, tc.b)
			defer a.Close()
			payloads := genPayloads(tc.n, tc.minLen, tc.maxLen, 42)
			perm := randPerm(tc.n, 7)
			res, err := Permute(a, payloads, perm)
			if err != nil {
				t.Fatal(err)
			}
			checkPermuted(t, payloads, perm, res.Out)
			if a.Arena().InUse() != 0 {
				t.Fatalf("arena leak: %d keys in use after Permute", a.Arena().InUse())
			}
			if res.Words > 0 && res.IO.ReadSteps == 0 {
				t.Fatal("permutation charged no read steps")
			}
			if env := DiskEnvelope(tc.n, PayloadWords(payloads), tc.mem, tc.d, tc.b); a.DiskFootprint() > env {
				t.Fatalf("disk footprint %d exceeds the envelope %d", a.DiskFootprint(), env)
			}
			// Levels is the distribution depth (deepest chain of scatter
			// levels), not a count of scatter calls: this geometry needs
			// exactly two.
			if tc.name == "deep-recursion" && res.Levels != 2 {
				t.Fatalf("expected distribution depth 2, got %d", res.Levels)
			}
		})
	}
}

func TestPermuteIdentityAndReverse(t *testing.T) {
	a := newArray(t, 256, 4, 16)
	defer a.Close()
	n := 200
	payloads := genPayloads(n, 1, 20, 3)
	id := make([]int, n)
	rev := make([]int, n)
	for i := range id {
		id[i] = i
		rev[i] = n - 1 - i
	}
	for name, perm := range map[string][]int{"identity": id, "reverse": rev} {
		res, err := Permute(a, payloads, perm)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		checkPermuted(t, payloads, perm, res.Out)
	}
}

func TestPermuteAllEmptyPayloads(t *testing.T) {
	a := newArray(t, 256, 4, 16)
	defer a.Close()
	payloads := make([][]byte, 10)
	for i := range payloads {
		payloads[i] = []byte{}
	}
	res, err := Permute(a, payloads, randPerm(10, 1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Words != 0 || res.IO.ReadSteps != 0 || res.IO.WriteSteps != 0 {
		t.Fatalf("empty payloads moved I/O: %+v", res)
	}
	for j, p := range res.Out {
		if len(p) != 0 {
			t.Fatalf("output %d not empty", j)
		}
	}
}

func TestNaiveGatherMatchesPermute(t *testing.T) {
	a := newArray(t, 256, 4, 16)
	defer a.Close()
	n := 500
	payloads := genPayloads(n, 0, 24, 11)
	perm := randPerm(n, 5)
	want, err := Permute(a, payloads, perm)
	if err != nil {
		t.Fatal(err)
	}
	got, err := NaiveGather(a, payloads, perm)
	if err != nil {
		t.Fatal(err)
	}
	checkPermuted(t, payloads, perm, got.Out)
	if a.Arena().InUse() != 0 {
		t.Fatalf("arena leak after NaiveGather: %d", a.Arena().InUse())
	}
	// The distribution pass must charge far fewer parallel steps than the
	// per-record gather on small records.
	if want.IO.ReadSteps >= got.IO.ReadSteps {
		t.Fatalf("distribution read steps %d not below naive gather's %d",
			want.IO.ReadSteps, got.IO.ReadSteps)
	}
}

func TestPermuteValidation(t *testing.T) {
	a := newArray(t, 256, 4, 16)
	defer a.Close()
	payloads := genPayloads(4, 1, 4, 1)
	for name, perm := range map[string][]int{
		"short":        {0, 1, 2},
		"duplicate":    {0, 1, 1, 3},
		"out-of-range": {0, 1, 2, 4},
		"negative":     {0, 1, 2, -1},
	} {
		if _, err := Permute(a, payloads, perm); err == nil {
			t.Fatalf("%s permutation accepted", name)
		}
	}
	if a.Arena().InUse() != 0 {
		t.Fatal("validation failure leaked arena memory")
	}
}

// faultDisk injects an error on the k-th operation of the given kind.
type faultDisk struct {
	pdm.Disk
	reads, writes *atomic.Int64
	failRead      int64 // fail the Nth read (1-based; 0 = never)
	failWrite     int64
}

var errInjected = fmt.Errorf("records_test: injected disk fault")

func (d faultDisk) ReadBlock(off int, dst []int64) error {
	if n := d.reads.Add(1); d.failRead > 0 && n >= d.failRead {
		return fmt.Errorf("%w (read %d, block %d)", errInjected, n, off)
	}
	return d.Disk.ReadBlock(off, dst)
}

func (d faultDisk) WriteBlock(off int, src []int64) error {
	if n := d.writes.Add(1); d.failWrite > 0 && n >= d.failWrite {
		return fmt.Errorf("%w (write %d, block %d)", errInjected, n, off)
	}
	return d.Disk.WriteBlock(off, src)
}

func faultArray(t *testing.T, mem, d, b int, failRead, failWrite int64) (*pdm.Array, *atomic.Int64, *atomic.Int64) {
	t.Helper()
	reads, writes := new(atomic.Int64), new(atomic.Int64)
	disks := make([]pdm.Disk, d)
	for i := range disks {
		disks[i] = faultDisk{Disk: pdm.NewMemDisk(b), reads: reads, writes: writes,
			failRead: failRead, failWrite: failWrite}
	}
	a, err := pdm.NewWithDisks(pdm.Config{
		D: d, B: b, Mem: mem,
		Pipeline: pdm.PipelineConfig{Prefetch: 2, WriteBehind: 2},
	}, disks)
	if err != nil {
		t.Fatal(err)
	}
	return a, reads, writes
}

// TestPermuteDiskFaultDeterministic injects a read fault mid-permutation
// and checks that the failure surfaces, drains the arena, and names the
// same first failing request on every run.
func TestPermuteDiskFaultDeterministic(t *testing.T) {
	payloads := genPayloads(400, 1, 24, 9)
	perm := randPerm(400, 2)
	run := func() string {
		a, _, _ := faultArray(t, 256, 4, 16, 40, 0)
		defer a.Close()
		_, err := Permute(a, payloads, perm)
		if err == nil {
			t.Fatal("injected read fault did not surface")
		}
		if got := a.Arena().InUse(); got != 0 {
			t.Fatalf("arena holds %d keys after a failed permutation", got)
		}
		return err.Error()
	}
	first := run()
	for i := 0; i < 2; i++ {
		if again := run(); again != first {
			t.Fatalf("fault not deterministic:\nfirst %q\nagain %q", first, again)
		}
	}
	// Write-side faults must surface too (possibly on a later request: the
	// write-behind writer reports transfer errors at the next submission).
	a, _, _ := faultArray(t, 256, 4, 16, 0, 25)
	defer a.Close()
	if _, err := Permute(a, payloads, perm); err == nil {
		t.Fatal("injected write fault did not surface")
	}
	if got := a.Arena().InUse(); got != 0 {
		t.Fatalf("arena holds %d keys after a failed permutation", got)
	}
}

// cancelDisk cancels a context after the k-th read, so the abort lands
// deterministically in the middle of the gather.
type cancelDisk struct {
	pdm.Disk
	reads  *atomic.Int64
	after  int64
	cancel context.CancelFunc
}

func (d cancelDisk) ReadBlock(off int, dst []int64) error {
	if d.reads.Add(1) == d.after {
		d.cancel()
	}
	return d.Disk.ReadBlock(off, dst)
}

// TestPermuteCancellationDrainsArena cancels the array's bound context in
// the middle of the permutation and checks a prompt abort with the arena
// fully drained — the contract the scheduler's envelope accounting needs.
func TestPermuteCancellationDrainsArena(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	reads := new(atomic.Int64)
	const d, b, mem = 4, 16, 256
	disks := make([]pdm.Disk, d)
	for i := range disks {
		disks[i] = cancelDisk{Disk: pdm.NewMemDisk(b), reads: reads, after: 30, cancel: cancel}
	}
	a, err := pdm.NewWithDisks(pdm.Config{
		D: d, B: b, Mem: mem,
		Pipeline: pdm.PipelineConfig{Prefetch: 2, WriteBehind: 2},
	}, disks)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	a.BindContext(ctx)
	defer a.BindContext(nil)

	payloads := genPayloads(600, 1, 24, 13)
	_, err = Permute(a, payloads, randPerm(600, 3))
	if err == nil {
		t.Fatal("canceled permutation succeeded")
	}
	if ctx.Err() == nil {
		t.Fatal("test never reached the cancellation point")
	}
	if got := a.Arena().InUse(); got != 0 {
		t.Fatalf("arena holds %d keys after cancellation", got)
	}
}

func TestPayloadWordsAndEnvelope(t *testing.T) {
	if w := PayloadWords([][]byte{nil, {1}, make([]byte, 8), make([]byte, 9)}); w != 0+1+1+2 {
		t.Fatalf("PayloadWords = %d", w)
	}
	if e := DiskEnvelope(10, 0, 256, 4, 16); e != 0 {
		t.Fatalf("zero-word envelope = %d", e)
	}
	// The envelope must grow with the payload volume and stay finite for
	// deep recursions.
	small := DiskEnvelope(100, 1000, 64, 2, 8)
	large := DiskEnvelope(100, 100000, 64, 2, 8)
	if small <= 0 || large <= small {
		t.Fatalf("envelope not monotone: %d then %d", small, large)
	}
}
