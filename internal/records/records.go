package records

import (
	"fmt"
	"sort"

	"repro/internal/memsort"
	"repro/internal/pdm"
	"repro/internal/stream"
)

// headerWords is the serialized segment header: absolute destination word
// offset and word count.
const headerWords = 2

// Result reports one external permutation.
type Result struct {
	// Out holds the re-materialized payloads in target order: Out[j] is the
	// input payload perm[j], read back from the output store.
	Out [][]byte
	// Words is the payload volume in 8-byte words (excluding padding);
	// PaddedWords is the on-disk store length after padding to the block
	// size.
	Words       int
	PaddedWords int
	// IO is the I/O this permutation charged (a delta over the array's
	// statistics).
	IO pdm.Stats
	// Passes is the charged I/O in the paper's currency: parallel steps
	// times the stripe width, over the padded store length.
	Passes float64
	// Levels is the distribution depth (0 when one memory chunk covered the
	// whole output); Fanout is the scatter width used.
	Levels int
	// Fanout is the number of partitions each scatter level splits into.
	Fanout int
}

// PayloadWords returns the store size, in 8-byte words, of the payloads.
func PayloadWords(payloads [][]byte) int {
	w := 0
	for _, p := range payloads {
		w += wordsFor(len(p))
	}
	return w
}

func wordsFor(nbytes int) int { return (nbytes + 7) / 8 }

// DiskEnvelope returns a conservative bound, in keys, on the scratch the
// permutation of n records totalling at most `words` payload words
// allocates on a machine with internal memory mem and stripe geometry d·b.
// The bound covers the input and output stores plus every distribution
// level's partitions (payload data, segment headers, and block padding);
// the scheduler reserves it for the payload spill of a records job.
func DiskEnvelope(n, words, mem, d, b int) int {
	if words <= 0 {
		return 0
	}
	// Disk space is allocated in whole rows of d·b keys, so every stripe
	// rounds up to the row size.
	row := d * b
	padded := memsort.CeilDiv(words, row) * row
	env := 2 * padded // store + output
	chunk, maxF := scatterGeometry(mem, b)
	span := memsort.CeilDiv(padded, chunk) // in chunks
	for span > 1 {
		f := span
		if f > maxF {
			f = maxF
		}
		span = memsort.CeilDiv(span, f)
		nodes := memsort.CeilDiv(padded, span*chunk)
		// One level's partitions all live at once in the worst case: the
		// data, one header per resident segment (at most one per record
		// plus one per node boundary), and one row of rounding per node.
		env += words + headerWords*(n+nodes) + nodes*row
	}
	return env + row
}

// scatterGeometry resolves the distribution parameters: the destination
// chunk size (one internal memory's worth of words) and the scatter fanout
// (as many single-block partition buffers as fit in one memory).
func scatterGeometry(mem, b int) (chunk, maxF int) {
	maxF = mem / b
	if maxF < 2 {
		maxF = 2
	}
	return mem, maxF
}

// permuter carries the shared state of one permutation.
type permuter struct {
	a     *pdm.Array
	b     int
	chunk int
	maxF  int

	n     int
	lens  []int // payload byte lengths, original order
	wlen  []int // payload word lengths, original order
	perm  []int
	destw []int // destination word offset of record i (original index)

	// Destination-order extents for analytic partition sizing: starts[j] is
	// the first output word of sorted position j, nzcnt[j] the number of
	// non-empty records among sorted positions [0, j).
	starts []int
	nzcnt  []int

	words  int
	padded int

	out    *pdm.Stripe
	outw   *stream.Writer
	levels int
	fanout int
}

// Permute moves payloads into perm order through the array's charged I/O:
// perm[j] names the input record that lands at output position j.  The
// payload store starts on disk (loaded uncharged, like every algorithm's
// input) and the permuted store is read back uncharged for the returned
// Result.Out; everything in between — the scatter levels and the final
// placement — is charged through the normal accounting.
func Permute(a *pdm.Array, payloads [][]byte, perm []int) (*Result, error) {
	p, err := newPermuter(a, payloads, perm)
	if err != nil {
		return nil, err
	}
	if p.words == 0 {
		res := p.result(pdm.Stats{})
		return res, p.unload(res)
	}
	store, err := p.loadStore(payloads)
	if err != nil {
		return nil, err
	}
	before := a.Stats()
	if err := p.runFrom(store); err != nil {
		return nil, err
	}
	res := p.result(a.Stats().Sub(before))
	if err := p.unload(res); err != nil {
		return nil, err
	}
	return res, nil
}

// NaiveGather is the permutation baseline the distribution pass is
// measured against: one vectored read per record, fetching the store
// blocks covering the record in output order and assembling output chunks
// in memory.  For records much smaller than a block it re-reads the same
// store blocks over and over — the access pattern whose cost the paper's
// model makes visible.
func NaiveGather(a *pdm.Array, payloads [][]byte, perm []int) (*Result, error) {
	p, err := newPermuter(a, payloads, perm)
	if err != nil {
		return nil, err
	}
	if p.words == 0 {
		res := p.result(pdm.Stats{})
		return res, p.unload(res)
	}
	store, err := p.loadStore(payloads)
	if err != nil {
		return nil, err
	}
	before := a.Stats()
	if err := p.gatherFrom(store); err != nil {
		return nil, err
	}
	res := p.result(a.Stats().Sub(before))
	if err := p.unload(res); err != nil {
		return nil, err
	}
	return res, nil
}

// gatherFrom reads each record's store blocks with one charged request per
// record, in output order, flushing assembled output chunks sequentially.
func (p *permuter) gatherFrom(store *pdm.Stripe) (err error) {
	defer store.Free()
	out, err := p.a.NewStripe(p.padded)
	if err != nil {
		return err
	}
	p.out = out
	defer func() {
		if err != nil && p.out != nil {
			p.out.Free()
			p.out = nil
		}
	}()
	// srcOff[i] is record i's word offset in the store (original order).
	srcOff := make([]int, p.n)
	off := 0
	for i := 0; i < p.n; i++ {
		srcOff[i] = off
		off += p.wlen[i]
	}
	maxBlocks := 0
	for _, w := range p.wlen {
		if nb := (w + 2*(p.b-1)) / p.b; nb > maxBlocks {
			maxBlocks = nb
		}
	}
	scratch, err := p.a.Arena().Alloc(maxBlocks * p.b)
	if err != nil {
		return err
	}
	defer p.a.Arena().Free(scratch)
	chunkLen := p.a.StripeWidth()
	chunk, err := p.a.Arena().Alloc(chunkLen)
	if err != nil {
		return err
	}
	defer p.a.Arena().Free(chunk)
	flushed := 0
	flush := func(upTo int) error {
		for flushed+chunkLen <= upTo {
			addrs, err := p.out.AddrRange(flushed, chunkLen)
			if err != nil {
				return err
			}
			if err := p.a.WriteV(addrs, splitFlat(chunk, p.b)); err != nil {
				return err
			}
			for i := range chunk {
				chunk[i] = 0
			}
			flushed += chunkLen
		}
		return nil
	}
	for j := 0; j < p.n; j++ {
		i := p.perm[j]
		if p.wlen[i] == 0 {
			continue
		}
		first := srcOff[i] / p.b
		last := (srcOff[i] + p.wlen[i] - 1) / p.b
		nb := last - first + 1
		addrs := make([]pdm.BlockAddr, nb)
		for k := range addrs {
			addrs[k] = store.BlockAddr(first + k)
		}
		if err := p.a.ReadV(addrs, splitFlat(scratch[:nb*p.b], p.b)); err != nil {
			return fmt.Errorf("records: gather of record %d (output position %d): %w", i, j, err)
		}
		words := scratch[srcOff[i]-first*p.b : srcOff[i]-first*p.b+p.wlen[i]]
		for w := 0; w < p.wlen[i]; w++ {
			d := p.starts[j] + w
			for d-flushed >= chunkLen {
				if err := flush(flushed + chunkLen); err != nil {
					return err
				}
			}
			chunk[d-flushed] = words[w]
		}
	}
	if flushed < p.padded {
		addrs, err := p.out.AddrRange(flushed, p.padded-flushed)
		if err != nil {
			return err
		}
		if err := p.a.WriteV(addrs, splitFlat(chunk[:p.padded-flushed], p.b)); err != nil {
			return err
		}
	}
	return nil
}

func splitFlat(flat []int64, b int) [][]int64 {
	out := make([][]int64, len(flat)/b)
	for i := range out {
		out[i] = flat[i*b : (i+1)*b]
	}
	return out
}

func newPermuter(a *pdm.Array, payloads [][]byte, perm []int) (*permuter, error) {
	n := len(payloads)
	if len(perm) != n {
		return nil, fmt.Errorf("records: %d payloads but %d permutation entries", n, len(perm))
	}
	seen := make([]bool, n)
	for j, i := range perm {
		if i < 0 || i >= n || seen[i] {
			return nil, fmt.Errorf("records: perm[%d] = %d is not a permutation of %d records", j, i, n)
		}
		seen[i] = true
	}
	p := &permuter{a: a, b: a.B(), n: n, perm: perm}
	p.chunk, p.maxF = scatterGeometry(a.Mem(), a.B())
	p.lens = make([]int, n)
	p.wlen = make([]int, n)
	for i, pl := range payloads {
		p.lens[i] = len(pl)
		p.wlen[i] = wordsFor(len(pl))
	}
	p.destw = make([]int, n)
	p.starts = make([]int, n+1)
	p.nzcnt = make([]int, n+1)
	off := 0
	for j, i := range perm {
		p.starts[j] = off
		p.nzcnt[j+1] = p.nzcnt[j]
		if p.wlen[i] > 0 {
			p.nzcnt[j+1]++
		}
		p.destw[i] = off
		off += p.wlen[i]
	}
	p.starts[n] = off
	p.words = off
	p.padded = memsort.CeilDiv(off, p.b) * p.b
	return p, nil
}

// loadStore materializes the payload bytes as a word store on disk, in
// original record order, without charging I/O (the input's starting state).
func (p *permuter) loadStore(payloads [][]byte) (*pdm.Stripe, error) {
	data := make([]int64, p.padded)
	off := 0
	for i, pl := range payloads {
		packWords(data[off:off+p.wlen[i]], pl)
		off += p.wlen[i]
	}
	st, err := p.a.NewStripe(p.padded)
	if err != nil {
		return nil, err
	}
	if err := st.Load(data); err != nil {
		st.Free()
		return nil, err
	}
	return st, nil
}

func (p *permuter) result(io pdm.Stats) *Result {
	res := &Result{
		Words:       p.words,
		PaddedWords: p.padded,
		IO:          io,
		Levels:      p.levels,
		Fanout:      p.fanout,
	}
	if p.padded > 0 {
		res.Passes = float64(io.ReadSteps+io.WriteSteps) * float64(p.a.StripeWidth()) / float64(p.padded)
	}
	res.Out = make([][]byte, p.n)
	return res
}

func (p *permuter) unload(res *Result) error {
	var flat []int64
	if p.out != nil {
		var err error
		flat, err = p.out.Unload()
		p.out.Free()
		p.out = nil
		if err != nil {
			return err
		}
	}
	for j, i := range p.perm {
		out := make([]byte, p.lens[i])
		if p.wlen[i] > 0 {
			unpackWords(out, flat[p.starts[j]:p.starts[j]+p.wlen[i]])
		}
		res.Out[j] = out
	}
	return nil
}

// runFrom executes the distribution from an already-loaded store stripe.
func (p *permuter) runFrom(store *pdm.Stripe) (err error) {
	out, err := p.a.NewStripe(p.padded)
	if err != nil {
		store.Free()
		return err
	}
	p.out = out
	defer func() {
		if err != nil && p.out != nil {
			p.out.Free()
			p.out = nil
		}
	}()
	p.outw, err = stream.NewWriter(p.a)
	if err != nil {
		store.Free()
		return err
	}
	defer func() {
		cerr := p.outw.Close()
		if err == nil {
			err = cerr
		}
	}()
	root := &nodeSource{p: p, store: store}
	if err := p.process(0, p.padded, root, 0); err != nil {
		return err
	}
	return nil
}

// process routes the segments of src, all destined for output words
// [lo, hi), to their final positions: directly when the range fits one
// memory chunk, through another scatter level otherwise.  It consumes and
// frees src.  depth is the number of scatter levels above this node; the
// deepest one reached is the distribution depth reported as
// Result.Levels.
func (p *permuter) process(lo, hi int, src *nodeSource, depth int) error {
	if hi-lo <= p.chunk {
		return p.place(lo, hi, src)
	}
	if depth+1 > p.levels {
		p.levels = depth + 1
	}
	children, err := p.scatter(lo, hi, src)
	if err != nil {
		for _, c := range children {
			if c.stripe != nil {
				c.stripe.Free()
			}
		}
		return err
	}
	// Reporting-only boundary: one scatter level of this subtree done.
	// The partition directory lives in memory, so a recovered records
	// job restarts from input rather than resuming mid-tree.
	if err := p.a.PassDone(pdm.Checkpoint{Alg: "permute", Pass: depth + 1, N: p.padded}); err != nil {
		for _, c := range children {
			if c.stripe != nil {
				c.stripe.Free()
			}
		}
		return err
	}
	for _, c := range children {
		// Ownership of the partition stripe transfers to the child source,
		// which frees it when consumed (including on error paths).
		child := &nodeSource{p: p, stripe: c.stripe, words: c.words}
		c.stripe = nil
		if err := p.process(c.lo, c.hi, child, depth+1); err != nil {
			for _, rest := range children {
				if rest.stripe != nil {
					rest.stripe.Free()
				}
			}
			return err
		}
	}
	return nil
}

// child is one partition of a scatter level.
type child struct {
	lo, hi int
	stripe *pdm.Stripe
	words  int // exact serialized words (headers + data)

	buf  []int64 // current block being filled (view into the shared arena buffer)
	fill int
	blk  int // next block index within stripe
}

// nodeWords returns the exact serialized size of the partition holding
// every record piece destined for output words [lo, hi): the clipped data
// plus one header per resident segment.
func (p *permuter) nodeWords(lo, hi int) (words, segments int) {
	if lo >= p.words {
		return 0, 0
	}
	if hi > p.words {
		hi = p.words
	}
	// Sorted positions whose extent overlaps [lo, hi): extents tile
	// [0, words) in destination order, so they form one contiguous run.
	a := sort.Search(p.n, func(j int) bool { return p.starts[j+1] > lo })
	b := sort.Search(p.n, func(j int) bool { return p.starts[j] >= hi })
	segments = p.nzcnt[b] - p.nzcnt[a]
	return (hi - lo) + headerWords*segments, segments
}

// scatter reads src sequentially and routes every segment into one of the
// partitions covering [lo, hi), splitting segments at partition
// boundaries.  Partition block writes are batched into vectored requests
// of up to D blocks, and each partition stripe is skewed by its index so a
// mixed batch spreads across the disks.
func (p *permuter) scatter(lo, hi int, src *nodeSource) (children []*child, err error) {
	chunks := memsort.CeilDiv(hi-lo, p.chunk)
	f := chunks
	if f > p.maxF {
		f = p.maxF
	}
	span := memsort.CeilDiv(chunks, f) * p.chunk
	// The span rounds up to whole chunks, so fewer children than f may be
	// needed to cover the range.
	f = memsort.CeilDiv(hi-lo, span)
	if p.fanout == 0 || f > p.fanout {
		p.fanout = f
	}
	bufs, err := p.a.Arena().Alloc(f * p.b)
	if err != nil {
		src.free()
		return nil, err
	}
	defer p.a.Arena().Free(bufs)
	for c := 0; c < f; c++ {
		clo := lo + c*span
		chi := clo + span
		if chi > hi {
			chi = hi
		}
		words, _ := p.nodeWords(clo, chi)
		ch := &child{lo: clo, hi: chi, words: words, buf: bufs[c*p.b : (c+1)*p.b]}
		if words > 0 {
			stripe, err := p.a.NewStripeSkew(memsort.CeilDiv(words, p.b)*p.b, c)
			if err != nil {
				src.free()
				return children, err
			}
			ch.stripe = stripe
		}
		children = append(children, ch)
	}
	batch, err := newBlockBatch(p.a)
	if err != nil {
		src.free()
		return children, err
	}
	defer batch.release()
	route := func(dest, nw int, ws *wordStream) error {
		for nw > 0 {
			c := (dest - lo) / span
			end := children[c].hi
			if end > dest+nw {
				end = dest + nw
			}
			take := end - dest
			if err := p.emit(children[c], batch, dest, take, ws); err != nil {
				return err
			}
			dest += take
			nw -= take
		}
		return nil
	}
	if err := src.scan(route); err != nil {
		src.free()
		return children, err
	}
	src.free()
	// Flush the partial last block of every partition (zero-padded).
	for _, ch := range children {
		if ch.fill > 0 {
			for i := ch.fill; i < p.b; i++ {
				ch.buf[i] = 0
			}
			if err := batch.add(ch.stripe.BlockAddr(ch.blk), ch.buf); err != nil {
				return children, err
			}
			ch.fill = 0
			ch.blk++
		}
	}
	if err := batch.flush(); err != nil {
		return children, err
	}
	return children, nil
}

// emit appends one segment (header + take data words pulled from ws) to a
// partition, flushing full blocks through the batch.
func (p *permuter) emit(ch *child, batch *blockBatch, dest, take int, ws *wordStream) error {
	if err := p.put(ch, batch, int64(dest)); err != nil {
		return err
	}
	if err := p.put(ch, batch, int64(take)); err != nil {
		return err
	}
	for take > 0 {
		room := p.b - ch.fill
		if room > take {
			room = take
		}
		if err := ws.copyN(ch.buf[ch.fill:ch.fill+room], room); err != nil {
			return err
		}
		ch.fill += room
		take -= room
		if ch.fill == p.b {
			if err := batch.add(ch.stripe.BlockAddr(ch.blk), ch.buf); err != nil {
				return err
			}
			ch.fill = 0
			ch.blk++
		}
	}
	return nil
}

func (p *permuter) put(ch *child, batch *blockBatch, w int64) error {
	ch.buf[ch.fill] = w
	ch.fill++
	if ch.fill == p.b {
		if err := batch.add(ch.stripe.BlockAddr(ch.blk), ch.buf); err != nil {
			return err
		}
		ch.fill = 0
		ch.blk++
	}
	return nil
}

// place is the base case: the whole destination range fits one memory
// chunk, so the node's segments are placed in an arena buffer and written
// out sequentially through the write-behind writer.
func (p *permuter) place(lo, hi int, src *nodeSource) error {
	buf, err := p.a.Arena().Alloc(hi - lo)
	if err != nil {
		src.free()
		return err
	}
	defer p.a.Arena().Free(buf)
	err = src.scan(func(dest, nw int, ws *wordStream) error {
		return ws.copyN(buf[dest-lo:dest-lo+nw], nw)
	})
	src.free()
	if err != nil {
		return err
	}
	addrs, err := p.out.AddrRange(lo, hi-lo)
	if err != nil {
		return err
	}
	return p.outw.WriteFlat(addrs, buf)
}

// nodeSource yields a node's segments in serialized order: either the root
// store (whose record boundaries live in the permuter's in-memory extent
// arrays) or a partition stripe written by a previous scatter level.
type nodeSource struct {
	p      *permuter
	store  *pdm.Stripe // root payload store, record metadata in p
	stripe *pdm.Stripe // serialized segment partition
	words  int         // exact serialized words in stripe
}

func (s *nodeSource) free() {
	if s.store != nil {
		s.store.Free()
		s.store = nil
	}
	if s.stripe != nil {
		s.stripe.Free()
		s.stripe = nil
	}
}

// scan streams the source and calls fn once per segment; fn must consume
// exactly nw words from ws.
func (s *nodeSource) scan(fn func(dest, nw int, ws *wordStream) error) error {
	p := s.p
	if s.store != nil {
		ws, err := newWordStream(p.a, s.store, p.padded)
		if err != nil {
			return err
		}
		defer ws.close()
		for i := 0; i < p.n; i++ {
			if p.wlen[i] == 0 {
				continue
			}
			if err := fn(p.destw[i], p.wlen[i], ws); err != nil {
				return err
			}
		}
		return nil
	}
	if s.stripe == nil || s.words == 0 {
		return nil
	}
	ws, err := newWordStream(p.a, s.stripe, memsort.CeilDiv(s.words, p.b)*p.b)
	if err != nil {
		return err
	}
	defer ws.close()
	consumed := 0
	for consumed < s.words {
		dest, err := ws.next()
		if err != nil {
			return err
		}
		nw, err := ws.next()
		if err != nil {
			return err
		}
		if nw <= 0 || consumed+headerWords+int(nw) > s.words {
			return fmt.Errorf("records: corrupt partition: segment of %d words at serialized offset %d of %d", nw, consumed, s.words)
		}
		if err := fn(int(dest), int(nw), ws); err != nil {
			return err
		}
		consumed += headerWords + int(nw)
	}
	return nil
}

// wordStream pulls a stripe's words sequentially through a prefetching
// stream.Reader, chunked at one stripe width.
type wordStream struct {
	a   *pdm.Array
	r   *stream.Reader
	buf []int64
	pos int
	n   int
	rem int // words not yet fetched from the reader
}

func newWordStream(a *pdm.Array, st *pdm.Stripe, paddedWords int) (*wordStream, error) {
	r, err := stream.NewStripeReader(st, 0, paddedWords, a.StripeWidth())
	if err != nil {
		return nil, err
	}
	buf, err := a.Arena().Alloc(a.StripeWidth())
	if err != nil {
		r.Close()
		return nil, err
	}
	return &wordStream{a: a, r: r, buf: buf, rem: paddedWords}, nil
}

func (ws *wordStream) fill() error {
	if ws.rem == 0 {
		return fmt.Errorf("records: read past the end of the segment stream")
	}
	n := len(ws.buf)
	if n > ws.rem {
		n = ws.rem
	}
	if err := ws.r.FillFlat(ws.buf[:n]); err != nil {
		return err
	}
	ws.pos, ws.n = 0, n
	ws.rem -= n
	return nil
}

func (ws *wordStream) next() (int64, error) {
	if ws.pos == ws.n {
		if err := ws.fill(); err != nil {
			return 0, err
		}
	}
	w := ws.buf[ws.pos]
	ws.pos++
	return w, nil
}

func (ws *wordStream) copyN(dst []int64, n int) error {
	for n > 0 {
		if ws.pos == ws.n {
			if err := ws.fill(); err != nil {
				return err
			}
		}
		take := ws.n - ws.pos
		if take > n {
			take = n
		}
		copy(dst[len(dst)-n:], ws.buf[ws.pos:ws.pos+take])
		ws.pos += take
		n -= take
	}
	return nil
}

func (ws *wordStream) close() {
	ws.r.Close()
	ws.a.Arena().Free(ws.buf)
}

// blockBatch coalesces single-block partition writes into vectored
// requests of up to D blocks, so a scatter level's write cost stays close
// to one parallel step per stripe width.  On zero-copy backends each block
// is copied once, straight into a borrowed destination view, and the batch
// is charged on flush through ChargeV with the exact address list WriteV
// would have used — stats and traces are bit-identical across backends.
type blockBatch struct {
	a     *pdm.Array
	zc    bool
	stage []int64
	addrs []pdm.BlockAddr
	bufs  [][]int64
}

func newBlockBatch(a *pdm.Array) (*blockBatch, error) {
	// The stage stripe is allocated on both paths: the zero-copy one never
	// touches it, but reserving it keeps the memory envelope — and any
	// arena-pressure failure — identical across backends.
	stage, err := a.Arena().Alloc(a.StripeWidth())
	if err != nil {
		return nil, err
	}
	return &blockBatch{a: a, zc: a.ZeroCopy(), stage: stage}, nil
}

func (bb *blockBatch) add(addr pdm.BlockAddr, blk []int64) error {
	if bb.zc {
		dst, err := bb.a.BorrowWrite(addr)
		if err != nil {
			return err
		}
		copy(dst, blk)
		bb.addrs = append(bb.addrs, addr)
	} else {
		b := bb.a.B()
		i := len(bb.addrs)
		dst := bb.stage[i*b : (i+1)*b]
		copy(dst, blk)
		bb.addrs = append(bb.addrs, addr)
		bb.bufs = append(bb.bufs, dst)
	}
	if len(bb.addrs) == bb.a.D() {
		return bb.flush()
	}
	return nil
}

func (bb *blockBatch) flush() error {
	if len(bb.addrs) == 0 {
		return nil
	}
	var err error
	if bb.zc {
		// Reject before charging on a canceled context, exactly where the
		// copying path's WriteV would.
		if err = bb.a.CtxErr(); err == nil {
			bb.a.ChargeV(bb.addrs, true)
		}
	} else {
		err = bb.a.WriteV(bb.addrs, bb.bufs)
	}
	bb.addrs = bb.addrs[:0]
	bb.bufs = bb.bufs[:0]
	return err
}

func (bb *blockBatch) release() {
	bb.a.Arena().Free(bb.stage)
}

// packWords encodes bytes little-endian into words (the last word
// zero-padded); unpackWords is its inverse for a known byte length.
func packWords(dst []int64, src []byte) {
	for w := range dst {
		var v uint64
		for k := 0; k < 8; k++ {
			if i := w*8 + k; i < len(src) {
				v |= uint64(src[i]) << (8 * k)
			}
		}
		dst[w] = int64(v)
	}
}

func unpackWords(dst []byte, src []int64) {
	for i := range dst {
		dst[i] = byte(uint64(src[i/8]) >> (8 * (i % 8)))
	}
}
