package records

import "sort"

// Range partitioning for the distributed coordinator (internal/dist): the
// same order-preserving bucket discipline the external distribution
// permutation uses for its scatter, applied at record granularity across
// worker shards instead of block granularity across scratch chunks.

// RangeShard returns the shard a key belongs to under the given sorted
// splitters: shard i receives keys in [splitters[i-1], splitters[i]), with
// the first shard open below and the last open above.  A key equal to a
// splitter goes right — so every occurrence of a key lands in the same
// shard, which is what keeps a range-partitioned sort stable (ties never
// straddle a shard boundary).
func RangeShard(key int64, splitters []int64) int {
	return sort.Search(len(splitters), func(i int) bool { return key < splitters[i] })
}

// RangePartition buckets keys across len(splitters)+1 shards, preserving
// input order within each shard: shards[s] lists, in increasing original
// position, the indices of the keys shard s receives.  Empty shards come
// back as empty (non-nil) slices so callers can index by shard without
// nil checks.
func RangePartition(keys []int64, splitters []int64) [][]int {
	shards := make([][]int, len(splitters)+1)
	counts := make([]int, len(shards))
	which := make([]int, len(keys))
	for i, k := range keys {
		s := RangeShard(k, splitters)
		which[i] = s
		counts[s]++
	}
	backing := make([]int, len(keys))
	off := 0
	for s := range shards {
		shards[s] = backing[off : off : off+counts[s]]
		off += counts[s]
	}
	for i := range keys {
		s := which[i]
		shards[s] = append(shards[s], i)
	}
	return shards
}
