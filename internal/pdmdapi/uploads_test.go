package pdmdapi

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"slices"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro"
)

// TestHealthz: the liveness probe answers 200 with the scheduler's default
// job geometry — enough for a coordinator to plan shards before submitting.
func TestHealthz(t *testing.T) {
	ts, _ := testServer(t)
	resp, err := testClient.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /healthz = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("healthz content type %q", ct)
	}
	var h repro.SchedHealth
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" {
		t.Fatalf("status = %q", h.Status)
	}
	if h.JobMemory != 1024 || h.Workers != 2 {
		t.Fatalf("geometry = %+v, want jobMemory 1024, workers 2", h)
	}
	if h.BlockSize <= 0 || h.Disks <= 0 || h.Alpha <= 0 {
		t.Fatalf("derived geometry missing: %+v", h)
	}
	if h.Queued != 0 || h.Running != 0 {
		t.Fatalf("idle scheduler reports load: %+v", h)
	}
	// POST is not a liveness probe.
	presp, err := testClient.Post(ts.URL+"/healthz", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	presp.Body.Close()
	if presp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /healthz = %d, want 405", presp.StatusCode)
	}
}

func uploadCreateReq(t *testing.T, base, id string) *http.Response {
	t.Helper()
	resp, err := testClient.Post(base+"/uploads", "application/json",
		bytes.NewReader([]byte(fmt.Sprintf(`{"id":%q}`, id))))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func uploadPageReq(t *testing.T, base, id string, seq int, body any) *http.Response {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := testClient.Post(fmt.Sprintf("%s/uploads/%s/pages?seq=%d", base, id, seq),
		"application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func uploadCommitReq(t *testing.T, base, id string, body any) (*http.Response, map[string]json.RawMessage) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := testClient.Post(base+"/uploads/"+id+"/commit", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	return resp, decodeObject(t, resp)
}

// TestUploadProtocol drives the staged-upload happy path the distributed
// coordinator relies on: create (retried), pages out of order (one
// retried), commit, and a re-commit that must return the same job.
func TestUploadProtocol(t *testing.T) {
	ts, _ := testServer(t)

	for i := 0; i < 2; i++ { // create is idempotent
		resp := uploadCreateReq(t, ts.URL, "shard-0")
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("create #%d = %d", i, resp.StatusCode)
		}
	}

	// Three pages arriving 2, 0, 1, with page 0 retried.
	n := 3 * 1024
	keys := make([]int64, n)
	for i := range keys {
		keys[i] = int64((i * 7919) % 4096)
	}
	pages := [][]int64{keys[:1024], keys[1024:2048], keys[2048:]}
	for _, seq := range []int{2, 0, 0, 1} {
		resp := uploadPageReq(t, ts.URL, "shard-0", seq, map[string]any{"keys": pages[seq]})
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("page %d = %d", seq, resp.StatusCode)
		}
	}

	resp, obj := uploadCommitReq(t, ts.URL, "shard-0", map[string]any{"alg": "lmm3", "keepKeys": true})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("commit = %d: %v", resp.StatusCode, obj)
	}
	var id int
	if err := json.Unmarshal(obj["id"], &id); err != nil {
		t.Fatal(err)
	}
	pollUntil(t, ts.URL, id, repro.JobDone)

	// Re-commit: same job, no duplicate submission.
	resp2, obj2 := uploadCommitReq(t, ts.URL, "shard-0", map[string]any{"alg": "lmm3", "keepKeys": true})
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("re-commit = %d: %v", resp2.StatusCode, obj2)
	}
	var id2 int
	if err := json.Unmarshal(obj2["id"], &id2); err != nil {
		t.Fatal(err)
	}
	if id2 != id {
		t.Fatalf("re-commit made job %d, first commit made %d", id2, id)
	}

	// The sorted output is the pages' concatenation, sorted.
	kresp, err := testClient.Get(fmt.Sprintf("%s/jobs/%d/keys", ts.URL, id))
	if err != nil {
		t.Fatal(err)
	}
	var out struct {
		N    int     `json:"n"`
		Keys []int64 `json:"keys"`
	}
	err = json.NewDecoder(kresp.Body).Decode(&out)
	kresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	want := slices.Clone(keys)
	slices.Sort(want)
	if out.N != n || !slices.Equal(out.Keys, want) {
		t.Fatalf("committed job sorted %d keys, equal=%v", out.N, slices.Equal(out.Keys, want))
	}

	// New pages on a committed upload are 409s, and a new create under the
	// same id is refused rather than silently resurrecting the tombstone.
	presp := uploadPageReq(t, ts.URL, "shard-0", 3, map[string]any{"keys": []int64{1}})
	presp.Body.Close()
	if presp.StatusCode != http.StatusConflict {
		t.Fatalf("page after commit = %d, want 409", presp.StatusCode)
	}
	cresp := uploadCreateReq(t, ts.URL, "shard-0")
	cresp.Body.Close()
	if cresp.StatusCode != http.StatusConflict {
		t.Fatalf("create after commit = %d, want 409", cresp.StatusCode)
	}
}

// TestUploadRecords stages keyed payloads across pages and checks the
// committed records job keeps the pairing.
func TestUploadRecords(t *testing.T) {
	ts, _ := testServer(t)
	resp := uploadCreateReq(t, ts.URL, "rec")
	resp.Body.Close()
	for seq := 0; seq < 2; seq++ {
		keys := make([]int64, 100)
		payloads := make([][]byte, 100)
		for i := range keys {
			keys[i] = int64((seq*100 + i*37) % 53)
			payloads[i] = []byte(fmt.Sprintf("k%03d", keys[i]))
		}
		presp := uploadPageReq(t, ts.URL, "rec", seq, map[string]any{"keys": keys, "payloads": payloads})
		presp.Body.Close()
		if presp.StatusCode != http.StatusOK {
			t.Fatalf("records page %d = %d", seq, presp.StatusCode)
		}
	}
	cresp, obj := uploadCommitReq(t, ts.URL, "rec", map[string]any{"alg": "lmm3", "keepKeys": true})
	if cresp.StatusCode != http.StatusAccepted {
		t.Fatalf("records commit = %d: %v", cresp.StatusCode, obj)
	}
	var id int
	if err := json.Unmarshal(obj["id"], &id); err != nil {
		t.Fatal(err)
	}
	pollUntil(t, ts.URL, id, repro.JobDone)
	rresp, err := testClient.Get(fmt.Sprintf("%s/jobs/%d/records", ts.URL, id))
	if err != nil {
		t.Fatal(err)
	}
	var page struct {
		Keys     []int64  `json:"keys"`
		Payloads [][]byte `json:"payloads"`
	}
	err = json.NewDecoder(rresp.Body).Decode(&page)
	rresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(page.Keys) != 200 || !slices.IsSorted(page.Keys) {
		t.Fatalf("records job: %d keys, sorted=%v", len(page.Keys), slices.IsSorted(page.Keys))
	}
	for i, p := range page.Payloads {
		if want := fmt.Sprintf("k%03d", page.Keys[i]); string(p) != want {
			t.Fatalf("record %d: payload %q rode with key %d", i, p, page.Keys[i])
		}
	}
}

// TestUploadRejections is the error contract: unknown ids are 404s, bad
// pages and gappy commits are 400s, and the staging cap is a 507.
func TestUploadRejections(t *testing.T) {
	ts, _ := testServer(t)

	// Unknown upload id on every mutating route.
	presp := uploadPageReq(t, ts.URL, "ghost", 0, map[string]any{"keys": []int64{1}})
	presp.Body.Close()
	if presp.StatusCode != http.StatusNotFound {
		t.Fatalf("page on unknown upload = %d", presp.StatusCode)
	}
	cresp, _ := uploadCommitReq(t, ts.URL, "ghost", map[string]any{"alg": "lmm3"})
	if cresp.StatusCode != http.StatusNotFound {
		t.Fatalf("commit on unknown upload = %d", cresp.StatusCode)
	}
	dreq, err := http.NewRequest(http.MethodDelete, ts.URL+"/uploads/ghost", nil)
	if err != nil {
		t.Fatal(err)
	}
	dresp, err := testClient.Do(dreq)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusNotFound {
		t.Fatalf("delete unknown upload = %d", dresp.StatusCode)
	}

	// Malformed creates and pages.
	resp := uploadCreateReq(t, ts.URL, "")
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty id create = %d", resp.StatusCode)
	}
	resp = uploadCreateReq(t, ts.URL, "u")
	resp.Body.Close()
	for _, tc := range []struct {
		seq  string
		body map[string]any
	}{
		{"-1", map[string]any{"keys": []int64{1}}},
		{"banana", map[string]any{"keys": []int64{1}}},
		{"0", map[string]any{"keys": []int64{}}},
		{"0", map[string]any{"keys": []int64{1, 2}, "payloads": [][]byte{{1}}}},
	} {
		raw, _ := json.Marshal(tc.body)
		presp, err := testClient.Post(ts.URL+"/uploads/u/pages?seq="+tc.seq, "application/json", bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		presp.Body.Close()
		if presp.StatusCode != http.StatusBadRequest {
			t.Fatalf("page seq=%s body=%v = %d, want 400", tc.seq, tc.body, presp.StatusCode)
		}
	}

	// Commit with no pages, with a gap, or with inline input in the body.
	if cresp, _ := uploadCommitReq(t, ts.URL, "u", map[string]any{"alg": "lmm3"}); cresp.StatusCode != http.StatusBadRequest {
		t.Fatalf("commit with no pages = %d", cresp.StatusCode)
	}
	presp = uploadPageReq(t, ts.URL, "u", 1, map[string]any{"keys": []int64{1}}) // seq 0 missing
	presp.Body.Close()
	if cresp, _ := uploadCommitReq(t, ts.URL, "u", map[string]any{"alg": "lmm3"}); cresp.StatusCode != http.StatusBadRequest {
		t.Fatalf("gappy commit = %d", cresp.StatusCode)
	}
	if cresp, _ := uploadCommitReq(t, ts.URL, "u", map[string]any{"alg": "lmm3", "keys": []int64{1}}); cresp.StatusCode != http.StatusBadRequest {
		t.Fatalf("commit with inline keys = %d", cresp.StatusCode)
	}

	// A commit whose spec the scheduler rejects keeps the pages, so the
	// client can fix the spec and retry the same upload.
	if cresp, _ := uploadCommitReq(t, ts.URL, "u", map[string]any{"alg": "bogus"}); cresp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad alg commit = %d", cresp.StatusCode)
	}
	presp = uploadPageReq(t, ts.URL, "u", 0, map[string]any{"keys": []int64{2}})
	presp.Body.Close()
	cresp2, obj := uploadCommitReq(t, ts.URL, "u", map[string]any{"alg": "lmm3"})
	if cresp2.StatusCode != http.StatusAccepted {
		t.Fatalf("retried commit after fixing spec = %d: %v", cresp2.StatusCode, obj)
	}

	// The staging cap: a handler with a tiny cap refuses the page that
	// would exceed it with 507 and keeps its accounting intact.
	sch, err := repro.NewScheduler(repro.SchedulerConfig{
		Memory: 12000, Workers: 1, JobMemory: 1024,
		Pipeline: repro.PipelineConfig{Prefetch: 2, WriteBehind: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	small := httptest.NewServer(New(sch, Options{MaxBody: 1 << 20, MaxStagedBytes: 1000}))
	defer func() {
		small.Close()
		sch.Close()
	}()
	resp = uploadCreateReq(t, small.URL, "cap")
	resp.Body.Close()
	presp = uploadPageReq(t, small.URL, "cap", 0, map[string]any{"keys": make([]int64, 100)}) // 800 bytes
	presp.Body.Close()
	if presp.StatusCode != http.StatusOK {
		t.Fatalf("first page under cap = %d", presp.StatusCode)
	}
	presp = uploadPageReq(t, small.URL, "cap", 1, map[string]any{"keys": make([]int64, 100)})
	presp.Body.Close()
	if presp.StatusCode != http.StatusInsufficientStorage {
		t.Fatalf("page over cap = %d, want 507", presp.StatusCode)
	}
	// Aborting frees the bytes; the refused page now fits.
	dreq2, _ := http.NewRequest(http.MethodDelete, small.URL+"/uploads/cap", nil)
	dresp2, err := testClient.Do(dreq2)
	if err != nil {
		t.Fatal(err)
	}
	dresp2.Body.Close()
	if dresp2.StatusCode != http.StatusNoContent {
		t.Fatalf("abort = %d", dresp2.StatusCode)
	}
	resp = uploadCreateReq(t, small.URL, "cap2")
	resp.Body.Close()
	presp = uploadPageReq(t, small.URL, "cap2", 0, map[string]any{"keys": make([]int64, 100)})
	presp.Body.Close()
	if presp.StatusCode != http.StatusOK {
		t.Fatalf("page after abort = %d, want 200", presp.StatusCode)
	}
}

// TestUploadExpiry exercises the TTL sweep at the store level with an
// injected clock: an upload a dead coordinator abandoned stops holding
// staged bytes once the TTL passes.
func TestUploadExpiry(t *testing.T) {
	var mu sync.Mutex
	now := time.Unix(1000, 0)
	clock := func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return now
	}
	u := newUploadStore(1<<20, time.Minute)
	u.now = clock
	u.ups["dead"] = &upload{pages: map[int]uploadPage{0: {keys: []int64{1, 2}}}, bytes: 16, touched: clock()}
	u.used = 16
	if u.count() != 1 || u.bytes() != 16 {
		t.Fatalf("fresh upload swept early: count=%d bytes=%d", u.count(), u.bytes())
	}
	mu.Lock()
	now = now.Add(2 * time.Minute)
	mu.Unlock()
	if u.count() != 0 || u.bytes() != 0 {
		t.Fatalf("expired upload survived: count=%d bytes=%d", u.count(), u.bytes())
	}
}

// trackedBody wraps a response body to observe Close.
type trackedBody struct {
	io.ReadCloser
	closed *atomic.Int64
	once   sync.Once
}

func (b *trackedBody) Close() error {
	b.once.Do(func() { b.closed.Add(1) })
	return b.ReadCloser.Close()
}

// leakTransport counts bodies handed out vs closed.
type leakTransport struct {
	opened atomic.Int64
	closed atomic.Int64
}

func (lt *leakTransport) RoundTrip(r *http.Request) (*http.Response, error) {
	resp, err := http.DefaultTransport.RoundTrip(r)
	if resp != nil && resp.Body != nil {
		lt.opened.Add(1)
		resp.Body = &trackedBody{ReadCloser: resp.Body, closed: &lt.closed}
	}
	return resp, err
}

// TestNoBodyLeaks replays a request mix — successes, 400s, 404s, an
// oversized body — through a transport that counts opened response bodies
// against closed ones.  Every body must be closed, including on every
// error path: an unclosed body pins a connection and eventually starves
// the client pool the distributed coordinator shares across workers.
func TestNoBodyLeaks(t *testing.T) {
	ts, _ := testServer(t)
	lt := &leakTransport{}
	client := &http.Client{Transport: lt, Timeout: 60 * time.Second}

	do := func(method, path, body string) int {
		t.Helper()
		var rd io.Reader
		if body != "" {
			rd = bytes.NewReader([]byte(body))
		}
		req, err := http.NewRequest(method, ts.URL+path, rd)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := client.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck // draining for reuse
		resp.Body.Close()
		return resp.StatusCode
	}

	if code := do("GET", "/healthz", ""); code != http.StatusOK {
		t.Fatalf("healthz = %d", code)
	}
	do("GET", "/jobs/99", "")                                // 404
	do("POST", "/jobs", `{"alg":"bogus"}`)                   // 400
	do("POST", "/jobs", `{"nope`)                            // malformed JSON
	do("POST", "/uploads", `{"id":"x"}`)                     // 200
	do("POST", "/uploads/x/pages?seq=banana", `{"keys":[]}`) // 400
	do("DELETE", "/uploads/x", "")                           // 204
	if code := do("POST", "/jobs", `{"workload":{"kind":"perm","n":2048,"seed":1},"alg":"lmm3"}`); code != http.StatusAccepted {
		t.Fatalf("submit = %d", code)
	}

	if opened, closed := lt.opened.Load(), lt.closed.Load(); opened != closed || opened == 0 {
		t.Fatalf("body leak: %d opened, %d closed", opened, closed)
	}
}
