package pdmdapi

import (
	"encoding/json"
	"fmt"
	"net/http"
	"slices"
	"testing"

	"repro"
)

// The scenario surface: POST /jobs with a scenario field, GET
// /jobs/{id}/result and /groups under the shared pagination contract, and
// GET|POST /plan/scenario for the dry-run pricing.

func submitScenario(t *testing.T, base string, body map[string]any) int {
	t.Helper()
	resp, obj := postJSON(t, base+"/jobs", body)
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		t.Fatalf("submit = %d: %v", resp.StatusCode, obj)
	}
	var id int
	if err := json.Unmarshal(obj["id"], &id); err != nil {
		t.Fatal(err)
	}
	return id
}

func TestScenarioJobsOverHTTP(t *testing.T) {
	ts, _ := testServer(t)
	const n = 8192

	// Top-K: /result pages the 64 ascending winners.
	topkID := submitScenario(t, ts.URL, map[string]any{
		"scenario": "topk", "topK": 64,
		"workload": map[string]any{"kind": "uniform", "n": n, "seed": 71},
	})
	st := pollUntil(t, ts.URL, topkID, repro.JobDone)
	if st.Scenario != "topk" {
		t.Fatalf("status scenario = %q", st.Scenario)
	}
	resp, err := testClient.Get(fmt.Sprintf("%s/jobs/%d/result", ts.URL, topkID))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /result = %d", resp.StatusCode)
	}
	var topRes struct {
		Kind   string  `json:"kind"`
		N      int     `json:"n"`
		Offset int     `json:"offset"`
		Keys   []int64 `json:"keys"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&topRes); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if topRes.Kind != "topk" || topRes.N != 64 || len(topRes.Keys) != 64 || !slices.IsSorted(topRes.Keys) {
		t.Fatalf("topk result = %+v", topRes)
	}
	// The shared pagination contract applies to /result too.
	for _, tc := range []struct {
		query    string
		wantCode int
		wantLen  int
	}{
		{"offset=60&limit=10", http.StatusOK, 4},
		{"offset=64", http.StatusOK, 0},
		{"offset=65", http.StatusBadRequest, 0},
		{"limit=banana", http.StatusBadRequest, 0},
	} {
		resp, err := testClient.Get(fmt.Sprintf("%s/jobs/%d/result?%s", ts.URL, topkID, tc.query))
		if err != nil {
			t.Fatal(err)
		}
		var page struct {
			Keys []int64 `json:"keys"`
		}
		err = json.NewDecoder(resp.Body).Decode(&page)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("result?%s: %v", tc.query, err)
		}
		if resp.StatusCode != tc.wantCode {
			t.Fatalf("result?%s = %d, want %d", tc.query, resp.StatusCode, tc.wantCode)
		}
		if tc.wantCode == http.StatusOK && len(page.Keys) != tc.wantLen {
			t.Fatalf("result?%s: %d keys, want %d", tc.query, len(page.Keys), tc.wantLen)
		}
	}
	// /groups on a non-groupby scenario is a 404.
	resp, err = testClient.Get(fmt.Sprintf("%s/jobs/%d/groups", ts.URL, topkID))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET /groups on topk = %d, want 404", resp.StatusCode)
	}

	// Quantile: the value rides inline on /result.
	quantID := submitScenario(t, ts.URL, map[string]any{
		"scenario": "quantile", "rank": n / 2,
		"workload": map[string]any{"kind": "uniform", "n": n, "seed": 72},
	})
	pollUntil(t, ts.URL, quantID, repro.JobDone)
	resp, err = testClient.Get(fmt.Sprintf("%s/jobs/%d/result", ts.URL, quantID))
	if err != nil {
		t.Fatal(err)
	}
	obj := decodeObject(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /result = %d", resp.StatusCode)
	}
	if _, ok := obj["value"]; !ok {
		t.Fatalf("quantile result has no value: %v", obj)
	}

	// Group-by: inline keys + payloads, aggregates paged on /groups.
	keys := []int64{5, 3, 5, 3, 5, 9, 3, 9}
	pays := []int64{1, 10, 2, 20, 3, 100, 30, -100}
	gbID := submitScenario(t, ts.URL, map[string]any{
		"scenario": "groupby", "groups": 3,
		"keys": keys, "groupPayloads": pays,
	})
	pollUntil(t, ts.URL, gbID, repro.JobDone)
	resp, err = testClient.Get(fmt.Sprintf("%s/jobs/%d/groups", ts.URL, gbID))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /groups = %d", resp.StatusCode)
	}
	var groupsRes struct {
		N      int              `json:"n"`
		Groups []repro.GroupAgg `json:"groups"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&groupsRes); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	want := []repro.GroupAgg{
		{Key: 3, Count: 3, Sum: 60, Min: 10, Max: 30},
		{Key: 5, Count: 3, Sum: 6, Min: 1, Max: 3},
		{Key: 9, Count: 2, Sum: 0, Min: -100, Max: 100},
	}
	if groupsRes.N != 3 || !slices.Equal(groupsRes.Groups, want) {
		t.Fatalf("groups = %+v, want %+v", groupsRes.Groups, want)
	}

	// Ingest with keepKeys: /result serves the merged output.
	batch := []int64{-7, 42, 9000000}
	inID := submitScenario(t, ts.URL, map[string]any{
		"scenario": "ingest", "ingestBatch": batch, "keepKeys": true,
		"workload": map[string]any{"kind": "sorted", "n": n},
	})
	pollUntil(t, ts.URL, inID, repro.JobDone)
	resp, err = testClient.Get(fmt.Sprintf("%s/jobs/%d/result", ts.URL, inID))
	if err != nil {
		t.Fatal(err)
	}
	var inRes struct {
		Kind string  `json:"kind"`
		N    int     `json:"n"`
		Keys []int64 `json:"keys"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&inRes); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if inRes.Kind != "ingest" || inRes.N != n+len(batch) || !slices.IsSorted(inRes.Keys) {
		t.Fatalf("ingest result kind=%q n=%d sorted=%v", inRes.Kind, inRes.N, slices.IsSorted(inRes.Keys))
	}

	// /result on a plain sort job is a 404.
	sortID := submitScenario(t, ts.URL, map[string]any{
		"workload": map[string]any{"kind": "perm", "n": 2048, "seed": 73},
	})
	pollUntil(t, ts.URL, sortID, repro.JobDone)
	resp, err = testClient.Get(fmt.Sprintf("%s/jobs/%d/result", ts.URL, sortID))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET /result on a sort job = %d, want 404", resp.StatusCode)
	}
}

func TestPlanScenarioEndpoint(t *testing.T) {
	ts, _ := testServer(t)
	resp, obj := postJSON(t, ts.URL+"/plan/scenario", map[string]any{
		"scenario": "topk", "topK": 64,
		"workload": map[string]any{"kind": "uniform", "n": 65536, "seed": 1},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /plan/scenario = %d: %v", resp.StatusCode, obj)
	}
	var rep repro.ScenarioPlanReport
	raw, _ := json.Marshal(obj)
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Kind != "topk" || !rep.Feasible || !rep.UseScenario || rep.Route != "filter" {
		t.Fatalf("plan = %+v", rep)
	}
	if rep.ReadPasses >= rep.FullSortReadPasses {
		t.Fatalf("scenario %.3f read passes not under full sort %.3f", rep.ReadPasses, rep.FullSortReadPasses)
	}
	// A non-scenario spec is a 400.
	resp, _ = postJSON(t, ts.URL+"/plan/scenario", map[string]any{
		"workload": map[string]any{"kind": "uniform", "n": 1024},
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("plan without scenario = %d, want 400", resp.StatusCode)
	}
}

func TestScenarioSubmitRejections(t *testing.T) {
	ts, _ := testServer(t)
	w := map[string]any{"kind": "uniform", "n": 4096, "seed": 1}
	bad := []map[string]any{
		{"scenario": "topk", "topK": 1, "workload": w, "alg": "seven"},                  // planner picks, not the client
		{"scenario": "topk", "topK": 1, "workload": w, "universe": 1024},                // comparison sorts only
		{"scenario": "median", "workload": w},                                           // unknown kind
		{"scenario": "topk", "workload": w},                                             // k missing
		{"scenario": "ingest", "workload": map[string]any{"kind": "sorted", "n": 4096}}, // batch missing
		{"workload": w, "ingestBatch": []int64{1}},                                      // batch without scenario
	}
	for i, body := range bad {
		resp, obj := postJSON(t, ts.URL+"/jobs", body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("bad[%d] = %d, want 400 (%v)", i, resp.StatusCode, obj)
		}
	}
	// alg "auto" is explicitly fine on a scenario job.
	id := submitScenario(t, ts.URL, map[string]any{
		"scenario": "topk", "topK": 8, "alg": "auto",
		"workload": map[string]any{"kind": "uniform", "n": 4096, "seed": 2},
	})
	pollUntil(t, ts.URL, id, repro.JobDone)
}
