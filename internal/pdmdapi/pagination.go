package pdmdapi

import (
	"fmt"
	"net/http"
	"strconv"
)

// pageBounds parses and validates ?offset=N&limit=M against n records —
// the one pagination contract every result-serving endpoint (/keys,
// /records, /result, /groups) shares.  The limit clamps overflow-safely to
// the remaining records (a huge limit must not overflow offset+limit into
// a negative slice bound), but an offset beyond n is a 400: silently
// rewriting it would hand a client paging with a stale total an empty 200
// page indistinguishable from the end of the data.  offset == n is valid
// and yields the empty final page.
func pageBounds(w http.ResponseWriter, r *http.Request, n int) (offset, limit int, ok bool) {
	offset, limit = 0, n
	var err error
	if v := r.URL.Query().Get("offset"); v != "" {
		if offset, err = strconv.Atoi(v); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad offset %q", v))
			return 0, 0, false
		}
	}
	if v := r.URL.Query().Get("limit"); v != "" {
		if limit, err = strconv.Atoi(v); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad limit %q", v))
			return 0, 0, false
		}
	}
	if offset < 0 || offset > n {
		writeError(w, http.StatusBadRequest, fmt.Errorf("offset %d outside [0, %d]", offset, n))
		return 0, 0, false
	}
	if limit < 0 || limit > n-offset {
		limit = n - offset
	}
	return offset, limit, true
}
