package pdmdapi

import (
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"
)

// Staged uploads let a coordinator ship one shard as many bounded pages
// instead of one giant submit body.  The whole protocol is idempotent so a
// client may retry any request after a timeout without double-counting:
// creates are keyed by a client-chosen id, pages by a client-chosen
// sequence number, and commit parks a tombstone remembering the job it
// created.  Staged bytes are accounted against a global cap (the scheduler
// only budgets bytes it has admitted; staging happens before admission, so
// the cap is the handler's own responsibility), and uploads a dead client
// never finishes expire after a TTL.

type upload struct {
	pages      map[int]uploadPage
	bytes      int64
	touched    time.Time
	committing bool // a commit is between lock releases; duplicates are 409s
	committed  bool
	jobID      int
}

type uploadPage struct {
	keys     []int64
	payloads [][]byte
}

type uploadStore struct {
	mu      sync.Mutex
	maxByte int64
	ttl     time.Duration
	used    int64
	ups     map[string]*upload
	now     func() time.Time // swapped by the TTL tests
}

func newUploadStore(maxBytes int64, ttl time.Duration) *uploadStore {
	return &uploadStore{maxByte: maxBytes, ttl: ttl, ups: make(map[string]*upload), now: time.Now}
}

// sweep drops expired uploads.  Called under mu on every operation; the
// map holds at most a handful of in-flight shards, so a linear walk is
// cheaper than a timer per upload.
func (u *uploadStore) sweep() {
	now := u.now()
	for id, up := range u.ups {
		if now.Sub(up.touched) > u.ttl {
			u.used -= up.bytes
			delete(u.ups, id)
		}
	}
}

func (u *uploadStore) count() int {
	u.mu.Lock()
	defer u.mu.Unlock()
	u.sweep()
	return len(u.ups)
}

func (u *uploadStore) bytes() int64 {
	u.mu.Lock()
	defer u.mu.Unlock()
	u.sweep()
	return u.used
}

func pageSize(keys []int64, payloads [][]byte) int64 {
	n := int64(len(keys)) * 8
	for _, p := range payloads {
		n += int64(len(p))
	}
	return n
}

// uploadCreateRequest is the POST /uploads body.
type uploadCreateRequest struct {
	// ID is the client-chosen upload id; retrying the same create is a
	// no-op, which is what makes the retry safe.
	ID string `json:"id"`
}

func (s *server) uploadCreate(w http.ResponseWriter, r *http.Request) {
	var req uploadCreateRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if req.ID == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("upload id must be non-empty"))
		return
	}
	u := s.ups
	u.mu.Lock()
	defer u.mu.Unlock()
	u.sweep()
	up, exists := u.ups[req.ID]
	if !exists {
		u.ups[req.ID] = &upload{pages: make(map[int]uploadPage), touched: u.now()}
	} else if up.committed {
		writeError(w, http.StatusConflict, fmt.Errorf("upload %q already committed", req.ID))
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"id": req.ID})
}

// uploadPageRequest is the POST /uploads/{id}/pages?seq=K body: one slice
// of the shard, in shard order.
type uploadPageRequest struct {
	Keys     []int64  `json:"keys"`
	Payloads [][]byte `json:"payloads,omitempty"`
}

func (s *server) uploadPage(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	seq, err := strconv.Atoi(r.URL.Query().Get("seq"))
	if err != nil || seq < 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad page seq %q", r.URL.Query().Get("seq")))
		return
	}
	var req uploadPageRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if len(req.Keys) == 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("page %d: no keys", seq))
		return
	}
	if req.Payloads != nil && len(req.Payloads) != len(req.Keys) {
		writeError(w, http.StatusBadRequest, fmt.Errorf("page %d: %d payloads for %d keys", seq, len(req.Payloads), len(req.Keys)))
		return
	}
	u := s.ups
	u.mu.Lock()
	defer u.mu.Unlock()
	u.sweep()
	up, ok := u.ups[id]
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown upload %q", id))
		return
	}
	if up.committed {
		writeError(w, http.StatusConflict, fmt.Errorf("upload %q already committed", id))
		return
	}
	up.touched = u.now()
	if _, dup := up.pages[seq]; dup {
		// A retried page: the first copy won, the retry is a no-op.
		writeJSON(w, http.StatusOK, map[string]any{"seq": seq, "staged": true})
		return
	}
	sz := pageSize(req.Keys, req.Payloads)
	if u.used+sz > u.maxByte {
		writeError(w, http.StatusInsufficientStorage,
			fmt.Errorf("staging full: %d bytes held, page needs %d of %d", u.used, sz, u.maxByte))
		return
	}
	u.used += sz
	up.bytes += sz
	up.pages[seq] = uploadPage{keys: req.Keys, payloads: req.Payloads}
	writeJSON(w, http.StatusOK, map[string]any{"seq": seq, "staged": true})
}

// uploadCommit assembles the staged pages in sequence order into one job
// submission.  The body is a SubmitRequest minus the inline input (keys
// and payloads come from the pages).  Re-committing is idempotent: the
// upload's tombstone remembers the job it created, and the answer is that
// job's current status.
func (s *server) uploadCommit(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	var req SubmitRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if len(req.Keys) > 0 || len(req.Payloads) > 0 || req.Workload != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("commit body must not carry keys, payloads, or a workload"))
		return
	}

	u := s.ups
	u.mu.Lock()
	u.sweep()
	up, ok := u.ups[id]
	if !ok {
		u.mu.Unlock()
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown upload %q", id))
		return
	}
	if up.committed {
		jobID := up.jobID
		up.touched = u.now()
		u.mu.Unlock()
		st, ok := s.sch.Status(jobID)
		if !ok {
			writeError(w, http.StatusNotFound, fmt.Errorf("upload %q committed to evicted job %d", id, jobID))
			return
		}
		writeJSON(w, http.StatusOK, st)
		return
	}
	if up.committing {
		u.mu.Unlock()
		writeError(w, http.StatusConflict, fmt.Errorf("upload %q: commit already in flight", id))
		return
	}
	keys, payloads, err := assemble(up)
	if err != nil {
		u.mu.Unlock()
		writeError(w, http.StatusBadRequest, err)
		return
	}
	up.committing = true
	u.mu.Unlock()

	// Submit outside the store lock: admission may block on the queue.
	req.Keys = keys
	req.Payloads = payloads
	var jobID int
	spec, ok := specFromRequest(w, req)
	if ok {
		jobID, ok = s.submitSpec(w, spec)
	}

	u.mu.Lock()
	if up2, still := u.ups[id]; still {
		up2.committing = false
		if ok {
			// Park the tombstone and free the staged pages — the
			// scheduler has copied what it admitted into its own
			// budgeted arena.  On failure the pages stay so the client
			// can fix the spec and retry the commit.
			u.used -= up2.bytes
			up2.bytes = 0
			up2.pages = nil
			up2.committed = true
			up2.jobID = jobID
		}
		up2.touched = u.now()
	}
	u.mu.Unlock()
}

// assemble concatenates an upload's pages in sequence order.  Sequence
// numbers must be the contiguous range 0..len-1 — a gap means a page the
// client believes it sent never arrived, and committing around it would
// silently sort a hole into the data.
func assemble(up *upload) ([]int64, [][]byte, error) {
	if len(up.pages) == 0 {
		return nil, nil, fmt.Errorf("upload has no pages")
	}
	seqs := make([]int, 0, len(up.pages))
	for seq := range up.pages {
		seqs = append(seqs, seq)
	}
	sort.Ints(seqs)
	if seqs[len(seqs)-1] != len(seqs)-1 {
		return nil, nil, fmt.Errorf("pages not contiguous: have %d pages, highest seq %d", len(seqs), seqs[len(seqs)-1])
	}
	withPayloads := up.pages[0].payloads != nil
	var keys []int64
	var payloads [][]byte
	for _, seq := range seqs {
		pg := up.pages[seq]
		if (pg.payloads != nil) != withPayloads {
			return nil, nil, fmt.Errorf("page %d mixes keys-only and records pages", seq)
		}
		keys = append(keys, pg.keys...)
		payloads = append(payloads, pg.payloads...)
	}
	if !withPayloads {
		payloads = nil
	}
	return keys, payloads, nil
}

func (s *server) uploadAbort(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	u := s.ups
	u.mu.Lock()
	defer u.mu.Unlock()
	u.sweep()
	up, ok := u.ups[id]
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown upload %q", id))
		return
	}
	u.used -= up.bytes
	delete(u.ups, id)
	w.WriteHeader(http.StatusNoContent)
}
