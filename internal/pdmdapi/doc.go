// Package pdmdapi is the pdmd HTTP surface as an importable handler: the
// JSON job API over a repro.Scheduler that cmd/pdmd serves, the
// distributed-sort coordinator (internal/dist) drives as a client, and the
// in-process multi-node tests mount on httptest.
//
// Endpoints:
//
//	GET  /healthz                     liveness + default job geometry
//	POST /jobs                        submit a job (inline keys/payloads
//	                                  or a server-side workload spec)
//	GET|POST /plan                    dry-run the cost-model planner
//	GET  /jobs                        list all jobs
//	GET  /jobs/{id}                   poll one job's status
//	POST /jobs/{id}/cancel            cancel a queued or running job
//	GET  /jobs/{id}/keys              paginated sorted keys
//	GET  /jobs/{id}/records           paginated sorted keys + payloads
//	GET  /stats                       aggregate statistics as JSON
//	GET  /metrics                     the same in Prometheus text format
//	POST /uploads                     create a staged upload (idempotent
//	                                  on the client-chosen id)
//	POST /uploads/{id}/pages?seq=K    append one page (idempotent on seq)
//	POST /uploads/{id}/commit         turn the staged pages into a job
//	                                  (idempotent: re-commit returns the
//	                                  same job)
//	DELETE /uploads/{id}              abort and free a staged upload
//
// The uploads endpoints exist for coordinators shipping shards too large
// for one submit body: pages arrive independently (any order, safely
// retried by sequence number), are byte-accounted against a global staging
// cap, and expire after a TTL if the coordinator dies mid-upload.  Commit
// assembles the pages in sequence order into a normal job submission, so
// the scheduler below never sees a partial input.
//
// Accounting contract: the handler owns no budgets of its own beyond the
// submit-body cap and the staging cap — every admitted byte and key is
// budgeted by the scheduler it fronts, and the pagination contract
// (clamping limits, 400 on offsets beyond the data) keeps clients from
// mistaking a stale total for the end of the data.
package pdmdapi
