package pdmdapi

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"repro"
)

// Options sizes the handler's own limits (everything else is budgeted by
// the scheduler it fronts).
type Options struct {
	// MaxBody caps one request body in bytes; <= 0 selects 64 MiB.
	MaxBody int64
	// MaxStagedBytes caps the total bytes held by in-flight staged uploads
	// across all clients; <= 0 selects 256 MiB.
	MaxStagedBytes int64
	// UploadTTL drops staged uploads (and commit tombstones) not touched
	// for this long, so a dead coordinator cannot pin staging forever;
	// <= 0 selects 15 minutes.
	UploadTTL time.Duration
	// Pprof mounts the net/http/pprof handlers under /debug/pprof/ —
	// opt-in, because profiling endpoints on a job API are an operator
	// decision, not a default.
	Pprof bool
}

// SubmitRequest is the POST /jobs body (and, minus the inline input, the
// POST /uploads/{id}/commit body).
type SubmitRequest struct {
	Keys []int64 `json:"keys,omitempty"`
	// Payloads (base64-encoded byte strings, one per key) make the job a
	// full-record sort; so does a workload with a "payload" spec.
	Payloads [][]byte            `json:"payloads,omitempty"`
	Workload *repro.WorkloadSpec `json:"workload,omitempty"`
	// Alg names the algorithm (auto|one|mesh3|mesh2e|lmm3|exp2|exp3|seven|
	// six|sevenmesh); "radix" selects the Section 7 RadixSort, whose key
	// universe defaults to 2^32 unless set.
	Alg      string `json:"alg,omitempty"`
	Universe int64  `json:"universe,omitempty"`
	Memory   int    `json:"memory,omitempty"`
	Disks    int    `json:"disks,omitempty"`
	Workers  int    `json:"workers,omitempty"`
	// BlockLatencyUS models per-block device latency in microseconds.
	BlockLatencyUS int64 `json:"blockLatencyUs,omitempty"`
	// Backend overrides the scheduler's disk backend for this job ("file"
	// or "mmap"); valid only on a file-backed scheduler.
	Backend string `json:"backend,omitempty"`
	// Kernel overrides the scheduler's in-memory sort kernel for this job
	// ("auto", "comparison", or "radix"); output is identical either way.
	Kernel   string `json:"kernel,omitempty"`
	KeepKeys bool   `json:"keepKeys,omitempty"`
	Label    string `json:"label,omitempty"`

	// Scenario makes the job a query scenario instead of a sort: "topk",
	// "quantile", "groupby", or "ingest", parameterized by the fields
	// below (see repro.JobSpec).  Results come back from GET
	// /jobs/{id}/result (and /groups for groupby).
	Scenario string `json:"scenario,omitempty"`
	TopK     int    `json:"topK,omitempty"`
	Rank     int    `json:"rank,omitempty"`
	Groups   int    `json:"groups,omitempty"`
	// GroupPayloads is the group-by aggregation column, paired with Keys.
	GroupPayloads []int64 `json:"groupPayloads,omitempty"`
	// IngestBatch is the batch folded into the sorted Keys dataset.
	IngestBatch []int64 `json:"ingestBatch,omitempty"`
}

// server wraps the scheduler with the HTTP surface.
type server struct {
	sch  *repro.Scheduler
	opts Options
	ups  *uploadStore
}

// New builds the pdmd handler around a scheduler.  cmd/pdmd serves it;
// tests and benchmarks mount it on httptest to get in-process worker
// nodes.
func New(sch *repro.Scheduler, opts Options) http.Handler {
	if opts.MaxBody <= 0 {
		opts.MaxBody = 64 << 20
	}
	if opts.MaxStagedBytes <= 0 {
		opts.MaxStagedBytes = 256 << 20
	}
	if opts.UploadTTL <= 0 {
		opts.UploadTTL = 15 * time.Minute
	}
	s := &server{sch: sch, opts: opts, ups: newUploadStore(opts.MaxStagedBytes, opts.UploadTTL)}
	mux := http.NewServeMux()
	if opts.Pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	mux.HandleFunc("GET /healthz", s.healthz)
	mux.HandleFunc("POST /jobs", s.submit)
	mux.HandleFunc("GET /plan", s.plan)
	mux.HandleFunc("POST /plan", s.plan)
	mux.HandleFunc("GET /plan/scenario", s.planScenario)
	mux.HandleFunc("POST /plan/scenario", s.planScenario)
	mux.HandleFunc("GET /jobs", s.list)
	mux.HandleFunc("GET /jobs/{id}", s.status)
	mux.HandleFunc("POST /jobs/{id}/cancel", s.cancel)
	mux.HandleFunc("GET /jobs/{id}/keys", s.keys)
	mux.HandleFunc("GET /jobs/{id}/records", s.records)
	mux.HandleFunc("GET /jobs/{id}/result", s.result)
	mux.HandleFunc("GET /jobs/{id}/groups", s.groups)
	mux.HandleFunc("GET /stats", s.stats)
	mux.HandleFunc("GET /metrics", s.metrics)
	mux.HandleFunc("POST /uploads", s.uploadCreate)
	mux.HandleFunc("POST /uploads/{id}/pages", s.uploadPage)
	mux.HandleFunc("POST /uploads/{id}/commit", s.uploadCommit)
	mux.HandleFunc("DELETE /uploads/{id}", s.uploadAbort)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v) //nolint:errcheck // client went away
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

// healthz is the coordinator's liveness probe: cheap (no allocation beyond
// the snapshot, no locks held across I/O), and carrying the default job
// geometry so a distributed-sort coordinator can plan shards for this node
// before submitting anything.
func (s *server) healthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.sch.Health())
}

// decodeBody reads one JSON request body into v with the size cap and
// unknown-field rejection every endpoint shares.
func (s *server) decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.opts.MaxBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		code := http.StatusBadRequest
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			code = http.StatusRequestEntityTooLarge
		}
		writeError(w, code, fmt.Errorf("bad request body: %w", err))
		return false
	}
	return true
}

// specFromRequest validates a SubmitRequest into a JobSpec.  The scheduler
// budgets every byte a job holds; the decode must not be the unbudgeted
// exception, so callers decode through decodeBody's hard cap first.
func specFromRequest(w http.ResponseWriter, req SubmitRequest) (repro.JobSpec, bool) {
	spec := repro.JobSpec{
		Keys:          req.Keys,
		Payloads:      req.Payloads,
		Workload:      req.Workload,
		Universe:      req.Universe,
		Memory:        req.Memory,
		Disks:         req.Disks,
		Workers:       req.Workers,
		BlockLatency:  time.Duration(req.BlockLatencyUS) * time.Microsecond,
		Backend:       req.Backend,
		Kernel:        req.Kernel,
		KeepKeys:      req.KeepKeys,
		Label:         req.Label,
		Scenario:      req.Scenario,
		TopK:          req.TopK,
		Rank:          req.Rank,
		Groups:        req.Groups,
		GroupPayloads: req.GroupPayloads,
		IngestBatch:   req.IngestBatch,
	}
	if req.Scenario != "" {
		// Scenario routes plan their own (fallback) sort; a forced
		// algorithm or radix universe contradicts that.
		if req.Alg != "" && req.Alg != "auto" {
			writeError(w, http.StatusBadRequest, fmt.Errorf("alg %q is not valid on a scenario job (the planner picks)", req.Alg))
			return repro.JobSpec{}, false
		}
		if req.Universe != 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("universe is not valid on a scenario job"))
			return repro.JobSpec{}, false
		}
		return spec, true
	}
	if req.Alg == "radix" {
		if spec.Universe < 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("universe %d: want > 0", spec.Universe))
			return repro.JobSpec{}, false
		}
		if spec.Universe == 0 {
			spec.Universe = 1 << 32
		}
	} else {
		if spec.Universe != 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("universe is only valid with alg=radix"))
			return repro.JobSpec{}, false
		}
		alg, err := repro.ParseAlgorithm(req.Alg)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return repro.JobSpec{}, false
		}
		spec.Algorithm = alg
	}
	return spec, true
}

// decodeSpec reads and validates a submit (or plan) body into a JobSpec.
func (s *server) decodeSpec(w http.ResponseWriter, r *http.Request) (repro.JobSpec, bool) {
	var req SubmitRequest
	if !s.decodeBody(w, r, &req) {
		return repro.JobSpec{}, false
	}
	return specFromRequest(w, req)
}

// submitSpec runs the shared admission path: submit, classify the error,
// answer with the job's initial status.
func (s *server) submitSpec(w http.ResponseWriter, spec repro.JobSpec) (int, bool) {
	id, err := s.sch.Submit(spec)
	if err != nil {
		code := http.StatusBadRequest
		if errors.Is(err, repro.ErrQueueFull) {
			code = http.StatusServiceUnavailable
		}
		writeError(w, code, err)
		return 0, false
	}
	st, _ := s.sch.Status(id)
	writeJSON(w, http.StatusAccepted, st)
	return id, true
}

func (s *server) submit(w http.ResponseWriter, r *http.Request) {
	spec, ok := s.decodeSpec(w, r)
	if !ok {
		return
	}
	s.submitSpec(w, spec)
}

// plan dry-runs the cost model for a would-be job: the body is the same
// JSON a submit takes, the answer the ranked candidate table (predicted
// passes, padded lengths, I/O words, calibrated seconds) with the chosen
// algorithm — no job is created and no resources are reserved.  Accepted
// on GET (the spec is a query, not a mutation) and POST (for clients that
// refuse GET bodies).
func (s *server) plan(w http.ResponseWriter, r *http.Request) {
	spec, ok := s.decodeSpec(w, r)
	if !ok {
		return
	}
	rep, err := s.sch.Explain(spec)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, rep)
}

func (s *server) jobID(w http.ResponseWriter, r *http.Request) (int, bool) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad job id %q", r.PathValue("id")))
		return 0, false
	}
	return id, true
}

func (s *server) status(w http.ResponseWriter, r *http.Request) {
	id, ok := s.jobID(w, r)
	if !ok {
		return
	}
	st, ok := s.sch.Status(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %d", id))
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *server) list(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.sch.Jobs())
}

func (s *server) cancel(w http.ResponseWriter, r *http.Request) {
	id, ok := s.jobID(w, r)
	if !ok {
		return
	}
	if !s.sch.Cancel(id) {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %d", id))
		return
	}
	st, _ := s.sch.Status(id)
	writeJSON(w, http.StatusOK, st)
}

func (s *server) keys(w http.ResponseWriter, r *http.Request) {
	id, ok := s.jobID(w, r)
	if !ok {
		return
	}
	keys, err := s.sch.SortedKeys(id)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	offset, limit, ok := pageBounds(w, r, len(keys))
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"n":      len(keys),
		"offset": offset,
		"keys":   keys[offset : offset+limit],
	})
}

// records serves a completed records job's sorted output — keys paired
// with base64-encoded payloads — with the same pagination contract as
// keys.
func (s *server) records(w http.ResponseWriter, r *http.Request) {
	id, ok := s.jobID(w, r)
	if !ok {
		return
	}
	keys, payloads, err := s.sch.SortedRecords(id)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	offset, limit, ok := pageBounds(w, r, len(keys))
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"n":        len(keys),
		"offset":   offset,
		"keys":     keys[offset : offset+limit],
		"payloads": payloads[offset : offset+limit],
	})
}

// planScenario dry-runs the scenario planner: the same body as a scenario
// submit, the answer the scenario route's predicted steps and passes
// against the full-sort alternative — no job is created.
func (s *server) planScenario(w http.ResponseWriter, r *http.Request) {
	spec, ok := s.decodeSpec(w, r)
	if !ok {
		return
	}
	rep, err := s.sch.ExplainScenario(spec)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, rep)
}

// result serves a completed scenario job's answer: the quantile value
// inline, and the result keys (top-K, or the merged ingest output of a
// KeepKeys job) under the shared pagination contract.  Group-by results
// live on /groups.
func (s *server) result(w http.ResponseWriter, r *http.Request) {
	id, ok := s.jobID(w, r)
	if !ok {
		return
	}
	res, err := s.sch.ScenarioResult(id)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	offset, limit, ok := pageBounds(w, r, len(res.Keys))
	if !ok {
		return
	}
	body := map[string]any{
		"kind":   res.Kind,
		"n":      len(res.Keys),
		"offset": offset,
		"keys":   res.Keys[offset : offset+limit],
	}
	if res.Value != nil {
		body["value"] = *res.Value
	}
	if res.Groups != nil {
		body["groups"] = len(res.Groups)
	}
	writeJSON(w, http.StatusOK, body)
}

// groups serves a completed group-by job's aggregates, sorted by key, with
// the same pagination contract as keys.
func (s *server) groups(w http.ResponseWriter, r *http.Request) {
	id, ok := s.jobID(w, r)
	if !ok {
		return
	}
	res, err := s.sch.ScenarioResult(id)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	if res.Kind != "groupby" {
		writeError(w, http.StatusNotFound, fmt.Errorf("job %d is a %q scenario, not groupby", id, res.Kind))
		return
	}
	offset, limit, ok := pageBounds(w, r, len(res.Groups))
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"n":      len(res.Groups),
		"offset": offset,
		"groups": res.Groups[offset : offset+limit],
	})
}

func (s *server) stats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.sch.Stats())
}

// metrics renders the aggregate statistics in Prometheus text format: the
// per-job pass/overlap/utilization observability rolled up for scraping.
func (s *server) metrics(w http.ResponseWriter, r *http.Request) {
	st := s.sch.Stats()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	p := func(format string, args ...any) { fmt.Fprintf(w, format, args...) }
	p("# TYPE pdmd_jobs_total counter\n")
	p("pdmd_jobs_total{state=\"submitted\"} %d\n", st.Submitted)
	p("pdmd_jobs_total{state=\"completed\"} %d\n", st.Completed)
	p("pdmd_jobs_total{state=\"failed\"} %d\n", st.Failed)
	p("pdmd_jobs_total{state=\"canceled\"} %d\n", st.Canceled)
	p("# TYPE pdmd_jobs gauge\n")
	p("pdmd_jobs{state=\"queued\"} %d\n", st.Queued)
	p("pdmd_jobs{state=\"running\"} %d\n", st.Running)
	p("pdmd_jobs{state=\"suspended\"} %d\n", st.Suspended)
	p("# TYPE pdmd_mem_keys gauge\n")
	p("pdmd_mem_keys{kind=\"in_use\"} %d\n", st.MemInUse)
	p("pdmd_mem_keys{kind=\"capacity\"} %d\n", st.MemCapacity)
	p("# TYPE pdmd_disk_keys gauge\n")
	p("pdmd_disk_keys{kind=\"in_use\"} %d\n", st.DiskInUse)
	p("pdmd_disk_keys{kind=\"capacity\"} %d\n", st.DiskCapacity)
	p("# TYPE pdmd_workers gauge\npdmd_workers %d\n", st.Workers)
	p("# TYPE pdmd_scratch_cleanup_failures_total counter\npdmd_scratch_cleanup_failures_total %d\n", st.CleanupFailures)
	p("# TYPE pdmd_keys_sorted_total counter\npdmd_keys_sorted_total %d\n", st.KeysSorted)
	p("# TYPE pdmd_passes_weighted_avg gauge\npdmd_passes_weighted_avg %g\n", st.PassesWeighted)
	p("# TYPE pdmd_prefetch_chunks_total counter\n")
	p("pdmd_prefetch_chunks_total{result=\"hit\"} %d\n", st.PrefetchHits)
	p("pdmd_prefetch_chunks_total{result=\"stall\"} %d\n", st.PrefetchStalls)
	p("# TYPE pdmd_write_stalls_total counter\npdmd_write_stalls_total %d\n", st.WriteStalls)
	p("# TYPE pdmd_compute_seconds_total counter\npdmd_compute_seconds_total %g\n", st.ComputeSeconds)
	p("# TYPE pdmd_worker_utilization gauge\npdmd_worker_utilization %g\n", st.WorkerUtilization)
	p("# TYPE pdmd_jobs_per_second gauge\npdmd_jobs_per_second %g\n", st.JobsPerSecond)
	p("# TYPE pdmd_uptime_seconds gauge\npdmd_uptime_seconds %g\n", st.UptimeSeconds)
	p("# TYPE pdmd_staged_uploads gauge\npdmd_staged_uploads %d\n", s.ups.count())
	p("# TYPE pdmd_staged_bytes gauge\npdmd_staged_bytes %d\n", s.ups.bytes())
	// Durability: recovery outcomes this life, plus write-ahead-log health.
	// All zero on an unjournaled daemon, emitted anyway so dashboards keyed
	// on these series never see them disappear.
	p("# TYPE pdmd_jobs_recovered_total counter\npdmd_jobs_recovered_total %d\n", st.Recovered)
	p("# TYPE pdmd_jobs_resumed_total counter\npdmd_jobs_resumed_total %d\n", st.JobsResumed)
	p("# TYPE pdmd_jobs_restarted_total counter\npdmd_jobs_restarted_total %d\n", st.JobsRestarted)
	p("# TYPE pdmd_scratch_orphans_swept_total counter\npdmd_scratch_orphans_swept_total %d\n", st.OrphansSwept)
	p("# TYPE pdmd_journal_bytes gauge\npdmd_journal_bytes %d\n", st.JournalBytes)
	p("# TYPE pdmd_journal_segments gauge\npdmd_journal_segments %d\n", st.JournalSegments)
	p("# TYPE pdmd_journal_appends_total counter\npdmd_journal_appends_total %d\n", st.JournalAppends)
	p("# TYPE pdmd_journal_fsync_errors_total counter\npdmd_journal_fsync_errors_total %d\n", st.JournalFsyncErrors)
	p("# TYPE pdmd_journal_compactions_total counter\npdmd_journal_compactions_total %d\n", st.JournalCompactions)
	p("# TYPE pdmd_journal_replayed_records counter\npdmd_journal_replayed_records %d\n", st.JournalReplayed)
	p("# TYPE pdmd_journal_torn_tails_total counter\npdmd_journal_torn_tails_total %d\n", st.JournalTornTails)
	p("# TYPE pdmd_journal_replay_errors_total counter\npdmd_journal_replay_errors_total %d\n", st.JournalReplayErrors)
}
