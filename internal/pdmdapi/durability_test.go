package pdmdapi

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro"
	"repro/internal/journal"
	"repro/internal/pdm"
)

// durableScheduler builds a journaled, file-backed scheduler over the
// given directories: one job envelope, so the handler sees a suspended
// job and a queued one after a drain.
func durableScheduler(t *testing.T, dir, jdir string) *repro.Scheduler {
	t.Helper()
	sch, err := repro.NewScheduler(repro.SchedulerConfig{
		Memory:     4000,
		Workers:    2,
		JobMemory:  1024,
		Dir:        dir,
		JournalDir: jdir,
		Pipeline:   repro.PipelineConfig{Prefetch: 2, WriteBehind: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	return sch
}

// TestDurabilityOverHTTP walks the handler through a daemon restart: a
// drained job reports suspended, the next life's health and status carry
// the recovery provenance, and the Prometheus rendering exposes the
// durability counters.
func TestDurabilityOverHTTP(t *testing.T) {
	dir, jdir := t.TempDir(), t.TempDir()

	// Life 1: a latency-slowed three-pass job plus one queued behind it.
	sch1 := durableScheduler(t, dir, jdir)
	ts1 := httptest.NewServer(New(sch1, Options{MaxBody: 1 << 20}))
	resp, obj := postJSON(t, ts1.URL+"/jobs", map[string]any{
		"workload":       map[string]any{"kind": "perm", "n": 16 * 1024, "seed": 21},
		"alg":            "lmm3",
		"blockLatencyUs": 2000,
		"keepKeys":       true,
		"label":          "durable",
	})
	if resp.StatusCode != 202 {
		t.Fatalf("submit = %d: %v", resp.StatusCode, obj)
	}
	var id int
	if err := json.Unmarshal(obj["id"], &id); err != nil {
		t.Fatal(err)
	}
	_, obj = postJSON(t, ts1.URL+"/jobs", map[string]any{
		"workload": map[string]any{"kind": "sortedruns", "n": 8 * 1024, "seed": 22},
		"alg":      "exp2",
		"label":    "behind",
	})
	var qid int
	if err := json.Unmarshal(obj["id"], &qid); err != nil {
		t.Fatal(err)
	}

	// Wait for the first pass boundary to reach the journal, then drain:
	// the daemon's SIGTERM path minus the process exit.
	deadline := time.Now().Add(30 * time.Second)
	for {
		recs, _, err := journal.Replay(jdir)
		found := false
		if err == nil {
			for _, rec := range recs {
				var cp pdm.Checkpoint
				if rec.Type == journal.Checkpoint && rec.Job == id &&
					json.Unmarshal(rec.Data, &cp) == nil && cp.Pass >= 1 {
					found = true
				}
			}
		}
		if found {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never journaled a checkpoint")
		}
		time.Sleep(2 * time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	err := sch1.Drain(ctx)
	cancel()
	if err != nil {
		t.Fatalf("drain: %v", err)
	}
	if st := getStatus(t, ts1.URL, id); st.State != repro.JobSuspended {
		t.Fatalf("after drain: state %q, want suspended", st.State)
	}
	if st := getStatus(t, ts1.URL, qid); st.State != repro.JobQueued {
		t.Fatalf("after drain: queued job state %q", st.State)
	}
	mtext := metricsText(t, ts1.URL)
	if !strings.Contains(mtext, `pdmd_jobs{state="suspended"} 1`) {
		t.Fatalf("life-1 metrics missing suspended gauge:\n%s", mtext)
	}
	ts1.Close()

	// Life 2: same directories.  Both jobs come back — the suspended one
	// resumes mid-flight — and every durability surface reports it.
	sch2 := durableScheduler(t, dir, jdir)
	ts2 := httptest.NewServer(New(sch2, Options{MaxBody: 1 << 20}))
	defer func() {
		ts2.Close()
		sch2.Close()
	}()
	hresp, err := testClient.Get(ts2.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health repro.SchedHealth
	err = json.NewDecoder(hresp.Body).Decode(&health)
	hresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !health.Durable || health.Recovered != 2 {
		t.Fatalf("life-2 health = %+v, want durable with 2 recovered", health)
	}

	st := pollUntil(t, ts2.URL, id, repro.JobDone)
	if st.Recovery == nil || !st.Recovery.WasRunning || st.Recovery.ResumedFromPass < 1 {
		t.Fatalf("recovered job status carries no resume provenance: %+v", st.Recovery)
	}
	pollUntil(t, ts2.URL, qid, repro.JobDone)

	// The retained output survives the restart through the keys endpoint.
	kresp, err := testClient.Get(fmt.Sprintf("%s/jobs/%d/keys?limit=1", ts2.URL, id))
	if err != nil {
		t.Fatal(err)
	}
	kresp.Body.Close()
	if kresp.StatusCode != 200 {
		t.Fatalf("GET keys after restart = %d", kresp.StatusCode)
	}

	mtext = metricsText(t, ts2.URL)
	for _, want := range []string{
		"pdmd_jobs_recovered_total 2",
		"pdmd_jobs_resumed_total 1",
		"pdmd_jobs_restarted_total 0",
		"pdmd_journal_fsync_errors_total 0",
	} {
		if !strings.Contains(mtext, want) {
			t.Fatalf("life-2 metrics missing %q in:\n%s", want, mtext)
		}
	}
	for _, prefix := range []string{"pdmd_journal_appends_total ", "pdmd_journal_replayed_records ", "pdmd_journal_bytes "} {
		if !metricPositive(mtext, prefix) {
			t.Fatalf("life-2 metrics: %s not positive in:\n%s", prefix, mtext)
		}
	}
}

// metricsText fetches /metrics as a string.
func metricsText(t *testing.T, base string) string {
	t.Helper()
	resp, err := testClient.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// metricPositive reports whether the metric line starting with prefix has
// a value other than 0.
func metricPositive(text, prefix string) bool {
	for _, line := range strings.Split(text, "\n") {
		if v, ok := strings.CutPrefix(line, prefix); ok {
			return v != "0" && v != ""
		}
	}
	return false
}
