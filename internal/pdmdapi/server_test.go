package pdmdapi

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"slices"
	"strings"
	"testing"
	"time"

	"repro"
)

// testClient is the only HTTP client the handler tests use: a hard
// per-request timeout means a wedged handler fails the test instead of
// hanging the suite, the same hygiene the distributed coordinator applies
// to its worker calls.
var testClient = &http.Client{Timeout: 60 * time.Second}

// testServer mounts the pdmd handler on httptest over a small scheduler.
func testServer(t *testing.T) (*httptest.Server, *repro.Scheduler) {
	t.Helper()
	sch, err := repro.NewScheduler(repro.SchedulerConfig{
		Memory:    12000,
		Workers:   2,
		JobMemory: 1024,
		Pipeline:  repro.PipelineConfig{Prefetch: 2, WriteBehind: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(sch, Options{MaxBody: 1 << 20}))
	t.Cleanup(func() {
		ts.Close()
		sch.Close()
	})
	return ts, sch
}

func postJSON(t *testing.T, url string, body any) (*http.Response, map[string]json.RawMessage) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := testClient.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	return resp, decodeObject(t, resp)
}

func decodeObject(t *testing.T, resp *http.Response) map[string]json.RawMessage {
	t.Helper()
	defer resp.Body.Close()
	var obj map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&obj); err != nil {
		t.Fatal(err)
	}
	return obj
}

func getStatus(t *testing.T, base string, id int) repro.JobStatus {
	t.Helper()
	resp, err := testClient.Get(fmt.Sprintf("%s/jobs/%d", base, id))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /jobs/%d = %d", id, resp.StatusCode)
	}
	var st repro.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func pollUntil(t *testing.T, base string, id int, want repro.JobState) repro.JobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		st := getStatus(t, base, id)
		if st.State == want {
			return st
		}
		if st.State == repro.JobFailed {
			t.Fatalf("job %d failed: %s", id, st.Error)
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %d never reached %s", id, want)
	return repro.JobStatus{}
}

// TestSubmitPollResult is the end-to-end happy path of the acceptance
// criteria: submit over HTTP, poll to completion, and fetch a report
// whose pass count matches the paper's bound for the chosen algorithm
// (ThreePass2: exactly 3 passes).
func TestSubmitPollResult(t *testing.T) {
	ts, _ := testServer(t)
	resp, obj := postJSON(t, ts.URL+"/jobs", map[string]any{
		"workload": map[string]any{"kind": "zipf", "n": 16 * 1024, "seed": 7},
		"alg":      "lmm3",
		"keepKeys": true,
		"label":    "e2e",
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d: %v", resp.StatusCode, obj)
	}
	var id int
	if err := json.Unmarshal(obj["id"], &id); err != nil {
		t.Fatal(err)
	}
	st := pollUntil(t, ts.URL, id, repro.JobDone)
	if st.Report == nil {
		t.Fatal("done job has no report")
	}
	if st.Report.Passes > 3+1e-9 {
		t.Fatalf("ThreePass2 took %.3f passes over HTTP, paper bound is 3", st.Report.Passes)
	}
	if st.Report.N != 16*1024 || st.Algorithm != "ThreePass2" {
		t.Fatalf("report mismatch: %+v", st)
	}

	// Fetch the sorted keys, sliced and whole.
	resp2, err := testClient.Get(fmt.Sprintf("%s/jobs/%d/keys", ts.URL, id))
	if err != nil {
		t.Fatal(err)
	}
	var keysResp struct {
		N    int     `json:"n"`
		Keys []int64 `json:"keys"`
	}
	defer resp2.Body.Close()
	if err := json.NewDecoder(resp2.Body).Decode(&keysResp); err != nil {
		t.Fatal(err)
	}
	if keysResp.N != 16*1024 || !slices.IsSorted(keysResp.Keys) {
		t.Fatalf("keys endpoint returned %d keys, sorted=%v", keysResp.N, slices.IsSorted(keysResp.Keys))
	}
	resp3, err := testClient.Get(fmt.Sprintf("%s/jobs/%d/keys?offset=100&limit=10", ts.URL, id))
	if err != nil {
		t.Fatal(err)
	}
	var slice struct {
		Keys []int64 `json:"keys"`
	}
	defer resp3.Body.Close()
	if err := json.NewDecoder(resp3.Body).Decode(&slice); err != nil {
		t.Fatal(err)
	}
	if len(slice.Keys) != 10 || !slices.Equal(slice.Keys, keysResp.Keys[100:110]) {
		t.Fatalf("sliced keys = %v", slice.Keys)
	}
}

// TestCancelOverHTTP submits a latency-slowed job and cancels it through
// the API: the job must abort promptly and report canceled.
func TestCancelOverHTTP(t *testing.T) {
	ts, _ := testServer(t)
	resp, obj := postJSON(t, ts.URL+"/jobs", map[string]any{
		"workload":       map[string]any{"kind": "perm", "n": 16 * 1024, "seed": 1},
		"alg":            "seven",
		"blockLatencyUs": 500,
		"label":          "slow",
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d: %v", resp.StatusCode, obj)
	}
	var id int
	if err := json.Unmarshal(obj["id"], &id); err != nil {
		t.Fatal(err)
	}
	pollUntil(t, ts.URL, id, repro.JobRunning)
	canceledAt := time.Now()
	creq, err := testClient.Post(fmt.Sprintf("%s/jobs/%d/cancel", ts.URL, id), "", nil)
	if err != nil {
		t.Fatal(err)
	}
	creq.Body.Close()
	if creq.StatusCode != http.StatusOK {
		t.Fatalf("cancel = %d", creq.StatusCode)
	}
	st := pollUntil(t, ts.URL, id, repro.JobCanceled)
	if took := time.Since(canceledAt); took > 5*time.Second {
		t.Fatalf("cancellation took %v", took)
	}
	if st.ArenaLeak != 0 {
		t.Fatalf("canceled job leaked %d arena keys", st.ArenaLeak)
	}
	if !strings.Contains(st.Error, "canceled") {
		t.Fatalf("canceled job error = %q", st.Error)
	}
}

func TestSubmitRejections(t *testing.T) {
	ts, _ := testServer(t)
	cases := []map[string]any{
		{"alg": "bogus", "keys": []int64{3, 1, 2}},
		{"alg": "lmm3"}, // no input
		{"alg": "lmm3", "keys": []int64{1}, "workload": map[string]any{"kind": "perm", "n": 4}},
		{"alg": "lmm3", "keys": []int64{1}, "universe": 100},
		{"alg": "radix", "keys": []int64{1}, "universe": -5},
		{"alg": "lmm3", "keys": []int64{1}, "memory": 1000},
		{"alg": "lmm3", "keys": []int64{1}, "nonsense": true},
		{"workload": map[string]any{"kind": "wat", "n": 4}},
	}
	for i, body := range cases {
		resp, obj := postJSON(t, ts.URL+"/jobs", body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("case %d accepted with %d: %v", i, resp.StatusCode, obj)
		}
		if _, ok := obj["error"]; !ok {
			t.Fatalf("case %d: no error field", i)
		}
	}
	// Unknown job ids are 404s.
	for _, path := range []string{"/jobs/99", "/jobs/99/keys"} {
		resp, err := testClient.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("GET %s = %d", path, resp.StatusCode)
		}
	}
	resp, err := testClient.Post(ts.URL+"/jobs/99/cancel", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("cancel unknown job = %d", resp.StatusCode)
	}
	// An oversized body is rejected with 413, not buffered: a valid
	// 2 MiB submission against the test server's 1 MiB cap.
	var big bytes.Buffer
	big.WriteString(`{"alg":"lmm3","keys":[0`)
	big.WriteString(strings.Repeat(",1", 1<<20))
	big.WriteString("]}")
	bresp, err := testClient.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(big.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	bresp.Body.Close()
	if bresp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body = %d, want 413", bresp.StatusCode)
	}
	// A Zipf exponent outside s > 1 must not crash the daemon: the
	// generator clamps and the job completes.
	sresp, obj := postJSON(t, ts.URL+"/jobs", map[string]any{
		"workload": map[string]any{"kind": "zipf", "n": 2048, "seed": 1, "s": 1.0},
		"alg":      "auto",
	})
	if sresp.StatusCode != http.StatusAccepted {
		t.Fatalf("zipf s=1.0 rejected: %v", obj)
	}
	var sid int
	if err := json.Unmarshal(obj["id"], &sid); err != nil {
		t.Fatal(err)
	}
	pollUntil(t, ts.URL, sid, repro.JobDone)
}

// TestPaginationSemantics is the table-driven contract of both output
// endpoints (n = 2048 records): the limit clamps overflow-safely, the
// final empty page at offset == n is a 200 (end of data), and an offset
// beyond n — what a client with a stale total sends — is a 400, never a
// silently rewritten empty page.
func TestPaginationSemantics(t *testing.T) {
	ts, _ := testServer(t)
	const n = 2048
	_, obj := postJSON(t, ts.URL+"/jobs", map[string]any{
		"workload": map[string]any{
			"kind": "perm", "n": n, "seed": 1,
			"payload": map[string]any{"minBytes": 4, "maxBytes": 12},
		},
		"alg":      "lmm3",
		"keepKeys": true,
	})
	var id int
	if err := json.Unmarshal(obj["id"], &id); err != nil {
		t.Fatal(err)
	}
	pollUntil(t, ts.URL, id, repro.JobDone)
	cases := []struct {
		query    string
		wantCode int
		wantLen  int // page length when wantCode is 200
	}{
		{"", http.StatusOK, n},
		{"offset=100&limit=10", http.StatusOK, 10},
		{"offset=1&limit=9223372036854775807", http.StatusOK, n - 1}, // end would overflow: clamp
		{"offset=2040&limit=999", http.StatusOK, 8},                  // limit past the end: clamp
		{"limit=-5", http.StatusOK, n},                               // negative limit: clamp
		{fmt.Sprintf("offset=%d", n), http.StatusOK, 0},              // exactly the end: empty final page
		{fmt.Sprintf("offset=%d&limit=10", n+1), http.StatusBadRequest, 0},
		{"offset=99999&limit=10", http.StatusBadRequest, 0},
		{"offset=-5", http.StatusBadRequest, 0},
		{"offset=99999999999999999999", http.StatusBadRequest, 0}, // unparsable
		{"limit=banana", http.StatusBadRequest, 0},
	}
	for _, endpoint := range []string{"keys", "records"} {
		for _, tc := range cases {
			url := fmt.Sprintf("%s/jobs/%d/%s?%s", ts.URL, id, endpoint, tc.query)
			resp, err := testClient.Get(url)
			if err != nil {
				t.Fatal(err)
			}
			var out struct {
				N        int      `json:"n"`
				Offset   int      `json:"offset"`
				Keys     []int64  `json:"keys"`
				Payloads [][]byte `json:"payloads"`
			}
			err = json.NewDecoder(resp.Body).Decode(&out)
			resp.Body.Close()
			if err != nil {
				t.Fatalf("%s?%s: %v", endpoint, tc.query, err)
			}
			if resp.StatusCode != tc.wantCode {
				t.Fatalf("%s?%s = %d, want %d", endpoint, tc.query, resp.StatusCode, tc.wantCode)
			}
			if tc.wantCode != http.StatusOK {
				continue
			}
			if out.N != n || len(out.Keys) != tc.wantLen {
				t.Fatalf("%s?%s: n=%d, page=%d keys, want %d of %d", endpoint, tc.query, out.N, len(out.Keys), tc.wantLen, n)
			}
			if endpoint == "records" && len(out.Payloads) != tc.wantLen {
				t.Fatalf("records?%s: %d payloads for %d keys", tc.query, len(out.Payloads), tc.wantLen)
			}
		}
	}
}

// TestRecordsJobEndToEnd submits inline keys with byte payloads, polls to
// completion, and checks the paginated records endpoint returns the
// records sorted by key with their payloads still attached.
func TestRecordsJobEndToEnd(t *testing.T) {
	ts, _ := testServer(t)
	n := 500
	keys := make([]int64, n)
	payloads := make([][]byte, n)
	for i := range keys {
		keys[i] = int64((i * 7919) % 101) // duplicates exercise stability
		payloads[i] = []byte(fmt.Sprintf("k%03d-r%04d", keys[i], i))
	}
	resp, obj := postJSON(t, ts.URL+"/jobs", map[string]any{
		"keys":     keys,
		"payloads": payloads,
		"alg":      "lmm3",
		"keepKeys": true,
		"label":    "records-e2e",
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d: %v", resp.StatusCode, obj)
	}
	var id int
	if err := json.Unmarshal(obj["id"], &id); err != nil {
		t.Fatal(err)
	}
	st := pollUntil(t, ts.URL, id, repro.JobDone)
	if st.Report == nil || st.Report.PermutePasses <= 0 || st.Report.PayloadWords == 0 {
		t.Fatalf("records job report missing permutation accounting: %+v", st.Report)
	}
	// Page through the whole output and verify sortedness + pairing.
	var gotKeys []int64
	var gotPayloads [][]byte
	for off := 0; ; {
		resp, err := testClient.Get(fmt.Sprintf("%s/jobs/%d/records?offset=%d&limit=128", ts.URL, id, off))
		if err != nil {
			t.Fatal(err)
		}
		var page struct {
			N        int      `json:"n"`
			Keys     []int64  `json:"keys"`
			Payloads [][]byte `json:"payloads"`
		}
		err = json.NewDecoder(resp.Body).Decode(&page)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("records page at %d: code %d, err %v", off, resp.StatusCode, err)
		}
		if len(page.Keys) == 0 {
			break
		}
		gotKeys = append(gotKeys, page.Keys...)
		gotPayloads = append(gotPayloads, page.Payloads...)
		off += len(page.Keys)
	}
	if len(gotKeys) != n || !slices.IsSorted(gotKeys) {
		t.Fatalf("paged %d keys, sorted=%v", len(gotKeys), slices.IsSorted(gotKeys))
	}
	for i := range gotKeys {
		var k, r int
		if _, err := fmt.Sscanf(string(gotPayloads[i]), "k%03d-r%04d", &k, &r); err != nil {
			t.Fatalf("payload %d corrupt: %q", i, gotPayloads[i])
		}
		if int64(k) != gotKeys[i] {
			t.Fatalf("record %d: payload %q rode with key %d", i, gotPayloads[i], gotKeys[i])
		}
	}
	// The radix path must reject payloads: a records sort is comparison-based.
	resp2, _ := postJSON(t, ts.URL+"/jobs", map[string]any{
		"keys": []int64{1, 2}, "payloads": [][]byte{{1}, {2}}, "alg": "radix",
	})
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("radix records job = %d, want 400", resp2.StatusCode)
	}
}

// TestStatsAndMetrics drives a couple of jobs and checks both telemetry
// surfaces: the JSON stats and the Prometheus text rendering.
func TestStatsAndMetrics(t *testing.T) {
	ts, _ := testServer(t)
	ids := make([]int, 0, 3)
	for seed := 0; seed < 3; seed++ {
		resp, obj := postJSON(t, ts.URL+"/jobs", map[string]any{
			"workload": map[string]any{"kind": "sortedruns", "n": 8 * 1024, "seed": seed},
			"alg":      "auto",
		})
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit = %d: %v", resp.StatusCode, obj)
		}
		var id int
		if err := json.Unmarshal(obj["id"], &id); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	for _, id := range ids {
		pollUntil(t, ts.URL, id, repro.JobDone)
	}

	resp, err := testClient.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats repro.SchedStats
	err = json.NewDecoder(resp.Body).Decode(&stats)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Completed != 3 || stats.KeysSorted != 3*8*1024 || stats.PassesWeighted <= 0 {
		t.Fatalf("stats = %+v", stats)
	}
	if stats.MemInUse != 0 {
		t.Fatalf("memory not drained: %+v", stats)
	}

	mresp, err := testClient.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		`pdmd_jobs_total{state="completed"} 3`,
		"pdmd_keys_sorted_total 24576",
		`pdmd_mem_keys{kind="in_use"} 0`,
		"pdmd_passes_weighted_avg",
		"pdmd_worker_utilization",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics missing %q in:\n%s", want, text)
		}
	}

	// The job list includes all three, in submission order.
	lresp, err := testClient.Get(ts.URL + "/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var list []repro.JobStatus
	err = json.NewDecoder(lresp.Body).Decode(&list)
	lresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 3 || list[0].ID > list[1].ID {
		t.Fatalf("job list = %+v", list)
	}
}

// TestPlanEndpoint: GET /plan dry-runs the cost model — ranked candidate
// table, chosen algorithm, calibration — without creating a job, and
// rejects malformed specs; a completed job's status carries the planned
// prediction next to the measured wall.
func TestPlanEndpoint(t *testing.T) {
	ts, _ := testServer(t)

	plan := func(body any) (*http.Response, *repro.PlanReport) {
		raw, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := testClient.Post(ts.URL+"/plan", "application/json", bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return resp, nil
		}
		var rep repro.PlanReport
		if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
			t.Fatal(err)
		}
		return resp, &rep
	}

	// A workload spec that fits in one memory load must plan the one-pass
	// sort, with the ranked table exposing every candidate.
	resp, rep := plan(map[string]any{"workload": map[string]any{"kind": "perm", "n": 800}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /plan = %d", resp.StatusCode)
	}
	if rep.Chosen != "one" {
		t.Fatalf("chosen = %q, want one", rep.Chosen)
	}
	if len(rep.Candidates) < 5 || !rep.Candidates[0].Feasible || rep.Candidates[0].Algorithm != "one" {
		t.Fatalf("candidate table = %+v", rep.Candidates)
	}
	// Nothing was admitted.
	listResp, err := testClient.Get(ts.URL + "/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer listResp.Body.Close()
	var jobs []repro.JobStatus
	if err := json.NewDecoder(listResp.Body).Decode(&jobs); err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 0 {
		t.Fatalf("plan created %d jobs", len(jobs))
	}

	// A universe spec routes to radix.
	if _, rep := plan(map[string]any{
		"workload": map[string]any{"kind": "uniform", "n": 5000},
		"alg":      "radix", "universe": 1 << 20,
	}); rep == nil || rep.Chosen != "radix" || !rep.ChosenRadix {
		t.Fatalf("radix plan = %+v", rep)
	}

	// Malformed specs are 400s.
	if resp, _ := plan(map[string]any{"workload": map[string]any{"kind": "nope", "n": 10}}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad kind = %d", resp.StatusCode)
	}
	if resp, _ := plan(map[string]any{}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty spec = %d", resp.StatusCode)
	}

	// A real job's status records the planned prediction and, once done,
	// the measured wall and drift.
	resp2, obj := postJSON(t, ts.URL+"/jobs", map[string]any{
		"workload": map[string]any{"kind": "perm", "n": 4096, "seed": 3},
	})
	if resp2.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d", resp2.StatusCode)
	}
	var id int
	if err := json.Unmarshal(obj["id"], &id); err != nil {
		t.Fatal(err)
	}
	st := pollUntil(t, ts.URL, id, repro.JobDone)
	if st.Planned == nil || st.Planned.Algorithm == "" || st.Planned.PredictedSeconds <= 0 {
		t.Fatalf("done job missing plan: %+v", st.Planned)
	}
	if st.MeasuredSeconds <= 0 {
		t.Fatalf("done job missing measured wall: %+v", st)
	}
}

// TestPprofOptIn checks that the profiling handlers exist only when the
// -pprof flag turned them on: same scheduler, two handlers.
func TestPprofOptIn(t *testing.T) {
	ts, _ := testServer(t) // pprof off
	resp, err := testClient.Get(ts.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pprof off: GET /debug/pprof/cmdline = %d, want 404", resp.StatusCode)
	}

	sch, err := repro.NewScheduler(repro.SchedulerConfig{
		Memory: 12000, Workers: 2, JobMemory: 1024,
		Pipeline: repro.PipelineConfig{Prefetch: 2, WriteBehind: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	on := httptest.NewServer(New(sch, Options{MaxBody: 1 << 20, Pprof: true}))
	defer func() {
		on.Close()
		sch.Close()
	}()
	for _, path := range []string{"/debug/pprof/", "/debug/pprof/cmdline"} {
		resp, err := testClient.Get(on.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("pprof on: GET %s = %d, want 200", path, resp.StatusCode)
		}
		if len(body) == 0 {
			t.Fatalf("pprof on: GET %s returned empty body", path)
		}
	}
}

// TestSubmitKernel checks that a submit body's "kernel" reaches the job:
// both kernels produce identical sorted keys, and a bad name is a 400.
func TestSubmitKernel(t *testing.T) {
	ts, _ := testServer(t)
	sortWith := func(kernel string) []int64 {
		t.Helper()
		resp, obj := postJSON(t, ts.URL+"/jobs", map[string]any{
			"workload": map[string]any{"kind": "perm", "n": 4096, "seed": 9},
			"kernel":   kernel, "keepKeys": true,
		})
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit kernel=%q = %d", kernel, resp.StatusCode)
		}
		var id int
		if err := json.Unmarshal(obj["id"], &id); err != nil {
			t.Fatal(err)
		}
		pollUntil(t, ts.URL, id, repro.JobDone)
		keysResp, err := testClient.Get(fmt.Sprintf("%s/jobs/%d/keys", ts.URL, id))
		if err != nil {
			t.Fatal(err)
		}
		if keysResp.StatusCode != http.StatusOK {
			keysResp.Body.Close()
			t.Fatalf("GET keys kernel=%q = %d", kernel, keysResp.StatusCode)
		}
		var page struct {
			Keys []int64 `json:"keys"`
		}
		err = json.NewDecoder(keysResp.Body).Decode(&page)
		keysResp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		return page.Keys
	}
	comparison := sortWith("comparison")
	radix := sortWith("radix")
	if !slices.Equal(comparison, radix) {
		t.Fatalf("kernel outputs differ: comparison %d keys vs radix %d keys",
			len(comparison), len(radix))
	}
	if resp, _ := postJSON(t, ts.URL+"/jobs", map[string]any{
		"workload": map[string]any{"kind": "perm", "n": 1024},
		"kernel":   "simd",
	}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad kernel = %d, want 400", resp.StatusCode)
	}
}
