package par

import "repro/internal/memsort"

// MultiMerge merges k sorted lanes into dst (len = total lane length)
// across the workers: the output range is cut at exact global ranks by
// memsort.CutLanes, and each worker runs the serial loser-tree merge on
// its own slice of every lane into its own slice of dst.  dst must not
// alias the lanes.  The output is bit-identical to memsort.MultiMerge for
// any worker count.
func (p *Pool) MultiMerge(dst []int64, lanes [][]int64) {
	total := 0
	for _, l := range lanes {
		total += len(l)
	}
	if len(dst) != total {
		panic("par: MultiMerge destination size mismatch")
	}
	if p.workers == 1 || total < minParallel || len(lanes) < 2 {
		memsort.MultiMerge(dst, lanes)
		return
	}
	done := p.section()
	p.multiMergeBody(dst, lanes, total)
	done()
}

// multiMergeBody is the partitioned merge without the guard/section
// wrapper, shared with SortKeysScratch.
func (p *Pool) multiMergeBody(dst []int64, lanes [][]int64, total int) {
	w := p.workers
	// Splitters: cuts[s] holds each lane's cut at output rank s·total/w.
	cuts := make([][]int, w+1)
	cuts[0] = make([]int, len(lanes))
	for s := 1; s < w; s++ {
		cuts[s] = memsort.CutLanes(lanes, s*total/w)
	}
	last := make([]int, len(lanes))
	for i, l := range lanes {
		last[i] = len(l)
	}
	cuts[w] = last
	p.parDo(w, func(_, slo, shi int) {
		sub := make([][]int64, len(lanes))
		for s := slo; s < shi; s++ {
			for i, l := range lanes {
				sub[i] = l[cuts[s][i]:cuts[s+1][i]]
			}
			memsort.MultiMerge(dst[s*total/w:(s+1)*total/w], sub)
		}
	})
}
