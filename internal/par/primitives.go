package par

import "sync/atomic"

// Transpose writes the rows×cols row-major matrix src into dst in
// column-major order: dst[c·rows + r] = src[r·cols + c].  It is the
// unshuffle/scatter kernel of the (l,m)-merge passes, parallelized over
// destination columns so every worker writes a contiguous dst range.
func (p *Pool) Transpose(dst, src []int64, rows, cols int) {
	if len(dst) != rows*cols || len(src) != rows*cols {
		panic("par: Transpose size mismatch")
	}
	p.For(rows*cols, cols, func(_, lo, hi int) {
		for c := lo; c < hi; c++ {
			base := c * rows
			for r := 0; r < rows; r++ {
				dst[base+r] = src[r*cols+c]
			}
		}
	})
}

// Histogram counts keys per bucket under bucketOf (which must be pure —
// it is called concurrently): the radix-counting kernel of the integer
// sorts.  Each worker fills a private count vector; the vectors are then
// reduced, so the result is exact and order-independent.  ok is false if
// any key maps outside [0, buckets); the counts are then meaningless.
func (p *Pool) Histogram(keys []int64, buckets int, bucketOf func(int64) int) (counts []int, ok bool) {
	if p.workers == 1 || len(keys) < minParallel {
		counts = make([]int, buckets)
		for _, k := range keys {
			b := bucketOf(k)
			if b < 0 || b >= buckets {
				return nil, false
			}
			counts[b]++
		}
		return counts, true
	}
	done := p.section()
	defer done()
	w := p.workers
	local := make([][]int, w)
	var bad atomic.Bool
	p.parDo(len(keys), func(wi, lo, hi int) {
		c := make([]int, buckets)
		for _, k := range keys[lo:hi] {
			b := bucketOf(k)
			if b < 0 || b >= buckets {
				bad.Store(true)
				return
			}
			c[b]++
		}
		local[wi] = c
	})
	if bad.Load() {
		return nil, false
	}
	counts = make([]int, buckets)
	for _, c := range local {
		for b, n := range c {
			counts[b] += n
		}
	}
	return counts, true
}
