package par

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// minParallel is the work size, in keys, below which every operation runs
// serially: fork/join overhead swamps the win on smaller inputs, and the
// simulator's small test geometries should not pay it.
const minParallel = 1024

// Limiter is a shared compute budget across pools: every unit of worker
// work (each busyDo leaf) on every attached pool must hold one of its slots
// while it executes.  The job scheduler attaches one pool per concurrent
// job to a single limiter, so J jobs fanning out w-wide each still execute
// at most slots leaves at once — the pool width stays a real global budget
// instead of multiplying per job.  Slots are held only around flat leaf
// work, never across a fork/join wait, so attached pools cannot deadlock
// however deeply their merges recurse.
type Limiter struct {
	sem chan struct{}
}

// NewLimiter returns a limiter with the given number of slots; slots <= 0
// selects GOMAXPROCS.
func NewLimiter(slots int) *Limiter {
	if slots <= 0 {
		slots = runtime.GOMAXPROCS(0)
	}
	return &Limiter{sem: make(chan struct{}, slots)}
}

// Slots returns the limiter's capacity.
func (l *Limiter) Slots() int { return cap(l.sem) }

// Pool is a fixed-width fork/join worker pool.  Workers are spawned per
// operation (Go's scheduler makes goroutine reuse unnecessary); the pool
// carries the width, the observability counters, and optionally a shared
// Limiter arbitrating its execution slots against other pools.
type Pool struct {
	workers int
	lim     *Limiter
	kernel  Kernel

	sections  atomic.Int64
	wallNanos atomic.Int64
	busyNanos atomic.Int64
}

// New returns a pool of the given width; workers <= 0 selects GOMAXPROCS.
func New(workers int) *Pool {
	return NewLimited(workers, nil)
}

// NewLimited is New with the pool's leaf execution gated by lim (nil means
// ungated).  Results are identical either way — the limiter only schedules
// when work runs, never how it is partitioned.
func NewLimited(workers int, lim *Limiter) *Pool {
	return NewWithKernel(workers, lim, KernelAuto)
}

// NewWithKernel is NewLimited with an explicit sort kernel.  Results are
// identical for every kernel — the kernel changes only how memory loads get
// sorted, never the sorted keys (see Kernel).
func NewWithKernel(workers int, lim *Limiter, k Kernel) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: workers, lim: lim, kernel: k}
}

// Workers returns the pool width.
func (p *Pool) Workers() int { return p.workers }

// Counters returns the cumulative observability counters: parallel
// sections entered, their summed wall time, and the summed busy time of
// all worker goroutines (including each section's inline share).
func (p *Pool) Counters() (sections, wallNanos, busyNanos int64) {
	return p.sections.Load(), p.wallNanos.Load(), p.busyNanos.Load()
}

// ResetCounters zeroes the observability counters.
func (p *Pool) ResetCounters() {
	p.sections.Store(0)
	p.wallNanos.Store(0)
	p.busyNanos.Store(0)
}

// section starts timing one parallel section; the returned func ends it.
func (p *Pool) section() func() {
	t0 := time.Now()
	return func() {
		p.sections.Add(1)
		p.wallNanos.Add(time.Since(t0).Nanoseconds())
	}
}

// busyDo runs f inline, adding its elapsed time to the busy counter.  With
// a limiter attached it holds one slot for the duration of f — busy time
// starts after the slot is acquired, so waiting for another pool's work
// never counts as utilization.  Every f passed here is flat (it neither
// forks nor waits), which is what makes slot-holding deadlock-free.
func (p *Pool) busyDo(f func()) {
	if p.lim != nil {
		p.lim.sem <- struct{}{}
		defer func() { <-p.lim.sem }()
	}
	t0 := time.Now()
	f()
	p.busyNanos.Add(time.Since(t0).Nanoseconds())
}

// spawn runs f on a new goroutine tracked by wg, recording its busy time.
// Only flat (non-forking) work may go through spawn — a forking f must use
// a plain goroutine and time its own leaves, or the children's work would
// be counted twice.
func (p *Pool) spawn(wg *sync.WaitGroup, f func()) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		p.busyDo(f)
	}()
}

// parDo fans f(w, lo, hi) out over at most p.workers contiguous spans of
// [0, n) and waits.  Callers guard for parallel-worthiness; parDo itself
// records no section.
func (p *Pool) parDo(n int, f func(w, lo, hi int)) {
	w := p.workers
	if w > n {
		w = n
	}
	var wg sync.WaitGroup
	for i := 1; i < w; i++ {
		i := i
		p.spawn(&wg, func() { f(i, i*n/w, (i+1)*n/w) })
	}
	p.busyDo(func() { f(0, 0, n/w) })
	wg.Wait()
}

// For runs f(w, lo, hi) over a partition of [0, n) into at most Workers
// contiguous spans, in parallel when the total work (in keys) warrants it
// and serially — one call f(0, 0, n) — otherwise.  f must only touch state
// owned by its span; the span index w is informational.
func (p *Pool) For(work, n int, f func(w, lo, hi int)) {
	if p.workers == 1 || n < 2 || work < minParallel {
		f(0, 0, n)
		return
	}
	done := p.section()
	p.parDo(n, f)
	done()
}

// Copy copies src into dst (lengths must match) across the workers.
func (p *Pool) Copy(dst, src []int64) {
	if len(dst) != len(src) {
		panic("par: Copy length mismatch")
	}
	p.For(len(dst), len(dst), func(_, lo, hi int) {
		copy(dst[lo:hi], src[lo:hi])
	})
}
