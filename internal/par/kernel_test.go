package par

import (
	"math/rand"
	"runtime/debug"
	"slices"
	"testing"

	"repro/internal/memsort"
)

func TestAutoKernel(t *testing.T) {
	if AutoKernel(autoRadixMinKeys-1) != KernelComparison {
		t.Fatal("below threshold should pick comparison")
	}
	if AutoKernel(autoRadixMinKeys) != KernelRadix {
		t.Fatal("at threshold should pick radix")
	}
	if KernelAuto.String() != "auto" || KernelComparison.String() != "comparison" ||
		KernelRadix.String() != "radix" {
		t.Fatal("kernel names drifted from the canonical flag values")
	}
}

// TestSortKeysKernelsMatch pins the kernel determinism invariant at the pool
// level: every kernel × worker-count combination sorts to the identical
// array, including negative keys and the MaxInt64 padding sentinel.
func TestSortKeysKernelsMatch(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{0, 1, 500, minParallel, minParallel + 13, 20000} {
		src := randKeys(rng, n, 1<<40)
		if n > 2 {
			src[0], src[1] = int64(1)<<62, -(int64(1) << 62)
		}
		want := append([]int64(nil), src...)
		memsort.Keys(want)
		for _, k := range []Kernel{KernelAuto, KernelComparison, KernelRadix} {
			for _, w := range testWidths {
				a := append([]int64(nil), src...)
				NewWithKernel(w, nil, k).SortKeys(a)
				if !slices.Equal(a, want) {
					t.Fatalf("n=%d w=%d kernel=%s: SortKeys differs from serial", n, w, k)
				}
				a = append([]int64(nil), src...)
				NewWithKernel(w, nil, k).SortKeysScratch(a, make([]int64, n))
				if !slices.Equal(a, want) {
					t.Fatalf("n=%d w=%d kernel=%s: SortKeysScratch differs from serial", n, w, k)
				}
			}
		}
	}
}

func TestSortSegmentMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, n := range []int{0, 100, memsort.RadixMinKeys, 5000} {
		src := randKeys(rng, n, 1<<50)
		want := append([]int64(nil), src...)
		memsort.Keys(want)
		for _, k := range []Kernel{KernelAuto, KernelComparison, KernelRadix} {
			a := append([]int64(nil), src...)
			NewWithKernel(4, nil, k).SortSegment(a)
			if !slices.Equal(a, want) {
				t.Fatalf("n=%d kernel=%s: SortSegment differs from serial", n, k)
			}
		}
	}
}

// TestScratchPoolCap pins the scratch-retention cap: buffers at or under
// maxPooledScratchKeys cycle through the free list, while oversized ones are
// used once and dropped — the pool must not pin worker-count × load-size
// bytes after one large-M sort.
func TestScratchPoolCap(t *testing.T) {
	defer debug.SetGCPercent(debug.SetGCPercent(-1)) // no GC: pool entries survive
	drain := func() {
		for scratchPool.Get() != nil {
		}
	}

	drain()
	small := getScratch(maxPooledScratchKeys)
	base := &(*small)[0]
	putScratch(small)
	again := getScratch(1024)
	if &(*again)[0] != base {
		t.Fatal("scratch under the cap was not reused from the free list")
	}
	putScratch(again)

	drain()
	big := getScratch(maxPooledScratchKeys + 1)
	putScratch(big)
	if got := scratchPool.Get(); got != nil {
		t.Fatalf("oversized scratch retained in pool (cap %d keys)",
			cap(*got.(*[]int64)))
	}
}

// TestSortKeysRadixAllocRegression is the alloc-count regression for the
// pooled scratch: after one warm-up sort, radix SortKeys at a load size
// within the cap must not allocate per call.
func TestSortKeysRadixAllocRegression(t *testing.T) {
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	p := NewWithKernel(1, nil, KernelRadix)
	a := make([]int64, maxPooledScratchKeys)
	var x uint64 = 0x9e3779b97f4a7c15
	fill := func() {
		for i := range a {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
			a[i] = int64(x)
		}
	}
	fill()
	p.SortKeys(a) // warm the free list
	allocs := testing.AllocsPerRun(4, func() {
		fill()
		p.SortKeys(a)
	})
	if allocs > 1 {
		t.Fatalf("radix SortKeys allocated %.0f objects per run, want <= 1", allocs)
	}
}
