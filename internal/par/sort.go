package par

import (
	"sync"

	"repro/internal/memsort"
)

// SortKeys sorts a in place across the workers, dispatching on the pool's
// Kernel.  The comparison kernel runs per-worker memsort.Keys on contiguous
// segments, then parallel in-place merge rounds (symmetric merges of
// adjacent segment pairs, each pair's merge itself forked by SymMergeSplit);
// it allocates no key buffers, so it is safe inside any memory envelope.
// The radix kernel borrows ping-pong scratch from the capped free list (see
// maxPooledScratchKeys) — still Go heap, never simulated-arena memory — and
// runs radixSortScratch.  The result is identical to memsort.Keys for any
// kernel and worker count; when a scratch buffer is already available,
// SortKeysScratch avoids the borrow.
func (p *Pool) SortKeys(a []int64) {
	n := len(a)
	k := p.kernelFor(n)
	if p.workers == 1 || n < minParallel {
		p.sortSegmentKernel(a, k)
		return
	}
	done := p.section()
	if k == KernelRadix {
		bp := getScratch(n)
		p.radixSortScratch(a, *bp)
		putScratch(bp)
		done()
		return
	}
	s := p.workers
	bounds := make([]int, s+1)
	for i := range bounds {
		bounds[i] = i * n / s
	}
	p.parDo(s, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			memsort.Keys(a[bounds[i]:bounds[i+1]])
		}
	})
	// Merge rounds: width doubles each round; every pair merge gets an
	// equal share of the workers to fork its symmetric merge with.
	for width := 1; width < s; width *= 2 {
		type pair struct{ lo, mid, hi int }
		var pairs []pair
		for i := 0; i+width < s; i += 2 * width {
			hiIdx := i + 2*width
			if hiIdx > s {
				hiIdx = s
			}
			pairs = append(pairs, pair{bounds[i], bounds[i+width], bounds[hiIdx]})
		}
		budget := p.workers / len(pairs)
		if budget < 1 {
			budget = 1
		}
		// Plain goroutines, not p.spawn: symMergeRec records its own busy
		// time at the leaves, so timing the whole subtree here would count
		// its children's work (and the waits for them) twice.
		var wg sync.WaitGroup
		for _, pr := range pairs[1:] {
			pr := pr
			wg.Add(1)
			go func() {
				defer wg.Done()
				p.symMergeRec(a, pr.lo, pr.mid, pr.hi, budget)
			}()
		}
		p.symMergeRec(a, pairs[0].lo, pairs[0].mid, pairs[0].hi, budget)
		wg.Wait()
	}
	done()
}

// SortKeysScratch sorts a in place using scratch (len ≥ len(a)) as work
// space, dispatching on the pool's Kernel.  The comparison kernel runs
// per-worker memsort.Keys on contiguous segments, one splitter-partitioned
// k-way merge of the segments into scratch, and a parallel copy back; the
// radix kernel uses scratch directly as its ping-pong buffer (no borrow, no
// merge).  Falls back to SortKeys when scratch is too small or the input
// too short to parallelize.
func (p *Pool) SortKeysScratch(a, scratch []int64) {
	n := len(a)
	if p.workers == 1 || n < minParallel || len(scratch) < n {
		p.SortKeys(a)
		return
	}
	if p.kernelFor(n) == KernelRadix {
		done := p.section()
		p.radixSortScratch(a, scratch[:n])
		done()
		return
	}
	done := p.section()
	s := p.workers
	lanes := make([][]int64, s)
	p.parDo(s, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			seg := a[i*n/s : (i+1)*n/s]
			memsort.Keys(seg)
			lanes[i] = seg
		}
	})
	p.multiMergeBody(scratch[:n], lanes, n)
	p.parDo(n, func(_, lo, hi int) {
		copy(a[lo:hi], scratch[lo:hi])
	})
	done()
}

// SymMerge merges the sorted halves a[:m] and a[m:] in place across the
// workers; identical to memsort.SymMerge for any worker count.
func (p *Pool) SymMerge(a []int64, m int) {
	if p.workers == 1 || len(a) < minParallel {
		memsort.SymMerge(a, m)
		return
	}
	done := p.section()
	p.symMergeRec(a, 0, m, len(a), p.workers)
	done()
}

// symMergeRec is the forked symmetric merge: each SymMergeSplit step yields
// two independent subproblems, run concurrently while the goroutine budget
// lasts and serially below it (or below the parallel grain).  Busy time is
// recorded around the actual work — the split steps and the serial leaf
// merges — never around a wait, so WorkerUtilization counts each merged
// key exactly once.
func (p *Pool) symMergeRec(data []int64, a, m, b, budget int) {
	for {
		if budget <= 1 || b-a < minParallel {
			p.busyDo(func() { memsort.SymMergeRange(data, a, m, b) })
			return
		}
		var start, mid, end int
		var split bool
		p.busyDo(func() { start, mid, end, split = memsort.SymMergeSplit(data, a, m, b) })
		if !split {
			return
		}
		left := a < start && start < mid
		right := mid < end && end < b
		switch {
		case left && right:
			var wg sync.WaitGroup
			lo, lm, lhi, lb := a, start, mid, budget/2
			wg.Add(1)
			go func() {
				defer wg.Done()
				p.symMergeRec(data, lo, lm, lhi, lb)
			}()
			p.symMergeRec(data, mid, end, b, budget-budget/2)
			wg.Wait()
			return
		case left:
			m, b = start, mid
		case right:
			a, m = mid, end
		default:
			return
		}
	}
}
