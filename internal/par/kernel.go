package par

import (
	"sync"

	"repro/internal/memsort"
)

// Kernel selects the in-memory sort kernel a Pool uses for load sorts
// (SortKeys, SortKeysScratch, SortSegment).  The kernel changes only how a
// memory load gets sorted — wall-clock and allocation behaviour — never the
// resulting keys, so every choice is bit-identical on output, stats, and
// traces (the root determinism suite proves it per algorithm).
type Kernel int

const (
	// KernelAuto resolves per call via AutoKernel: a pure function of the
	// load size, so the pick is deterministic across workers, backends, and
	// probe noise.  The zero value, so unconfigured pools get it.
	KernelAuto Kernel = iota
	// KernelComparison is the cache-aware comparison introsort
	// (memsort.Keys) plus symmetric-merge combining: no scratch, no
	// assumptions about key distribution.
	KernelComparison
	// KernelRadix is the LSD byte-radix sort (memsort.RadixKeys serial,
	// Pool.radixSortScratch parallel): O(active bytes) moves per key, needs
	// len(a) scratch, wins on uniform keys at memory-load sizes.
	KernelRadix
)

// String returns the canonical kernel name used by the facade, the planner,
// and the CLI flags.
func (k Kernel) String() string {
	switch k {
	case KernelComparison:
		return "comparison"
	case KernelRadix:
		return "radix"
	default:
		return "auto"
	}
}

// autoRadixMinKeys is the load size at which AutoKernel switches from the
// comparison introsort to the radix kernel.  Below it the counting pass and
// bucket tables cost more than they save; at and above it radix wins on the
// paired BenchmarkKernelSort* microbenchmarks with margin to spare.
const autoRadixMinKeys = 4096

// AutoKernel resolves KernelAuto for a load of n keys.  It is the single
// Auto rule in the repository: the planner's ChooseKernel applies it to the
// machine shape's memory-load size, and unconfigured pools apply it per
// call, so every layer agrees on the pick.  It depends only on n — never on
// worker count, backend, or probe measurements — which keeps the choice
// bit-stable (mirroring how plan.Choose prices with fixed DefaultCalibration
// constants rather than probed rates).
func AutoKernel(n int) Kernel {
	if n >= autoRadixMinKeys {
		return KernelRadix
	}
	return KernelComparison
}

// Kernel returns the pool's configured kernel (KernelAuto if unset).
func (p *Pool) Kernel() Kernel { return p.kernel }

// kernelFor resolves the pool's kernel for a load of n keys.
func (p *Pool) kernelFor(n int) Kernel {
	if p.kernel == KernelAuto {
		return AutoKernel(n)
	}
	return p.kernel
}

// maxPooledScratchKeys caps the capacity of radix scratch buffers retained
// by the free list.  sync.Pool keeps one entry per P between collections, so
// without the cap a large-M load would pin GOMAXPROCS × 8·M bytes of dead
// scratch after a single sort (the same failure mode PR 6's
// maxPooledBufBytes fixed for FileDisk's encode buffers).  Oversized
// scratch is allocated fresh, used once, and left to the GC.
const maxPooledScratchKeys = 1 << 16

// scratchPool is the free list behind getScratch/putScratch.  Entries are
// *[]int64 to keep Put calls allocation-free.
var scratchPool sync.Pool

// getScratch returns a scratch slice of exactly n keys, reusing a pooled
// buffer when one is large enough.  Contents are unspecified.
func getScratch(n int) *[]int64 {
	if bp, ok := scratchPool.Get().(*[]int64); ok {
		if cap(*bp) >= n {
			*bp = (*bp)[:n]
			return bp
		}
		// Too small for this load; drop it rather than cycling it back.
	}
	b := make([]int64, n)
	return &b
}

// putScratch returns a scratch buffer to the free list unless it exceeds
// maxPooledScratchKeys (see that constant for why oversized buffers are
// dropped instead).
func putScratch(bp *[]int64) {
	if cap(*bp) > maxPooledScratchKeys {
		return
	}
	scratchPool.Put(bp)
}

// SortSegment sorts one contiguous segment with the pool's kernel, serially
// on the calling goroutine.  It is the per-segment leaf for callers that
// manage their own parallelism — columnsort's independent column sorts run
// it inside a For callback — and is safe to call concurrently: radix scratch
// comes from the capped free list, never shared state.
func (p *Pool) SortSegment(a []int64) {
	p.sortSegmentKernel(a, p.kernelFor(len(a)))
}

// sortSegmentKernel sorts a serially with kernel k.
func (p *Pool) sortSegmentKernel(a []int64, k Kernel) {
	if k == KernelRadix && len(a) >= memsort.RadixMinKeys {
		bp := getScratch(len(a))
		memsort.RadixKeys(a, *bp)
		putScratch(bp)
		return
	}
	memsort.Keys(a)
}

// radixSignBit mirrors memsort's sign-flip: XORing it maps signed key order
// onto unsigned digit order (only the top byte is affected).
const radixSignBit = uint64(1) << 63

// radixSkipDigit reports whether every key shares this digit value, making
// the scatter pass an identity permutation worth skipping.
func radixSkipDigit(c *[256]int, n int) bool {
	for _, cnt := range c {
		if cnt == n {
			return true
		}
		if cnt > 0 {
			return false
		}
	}
	return false
}

// radixSortScratch is the parallel LSD radix sort: a ping-pong between a and
// scratch (len ≥ len(a)) over the active byte digits.  Each pass is the
// Histogram primitive's shape specialized to byte digits — per-worker
// private counts over contiguous spans, reduced serially — followed by a
// stable parallel scatter: offsets are laid out in (digit, worker) order, so
// every worker writes a disjoint dst range and the key order is exactly the
// serial LSD order for any worker count.  The counting work is cache-blocked
// the same way as memsort.RadixKeys: the first scan accumulates all eight
// digit histograms at once, and digits on which all keys agree never scatter.
func (p *Pool) radixSortScratch(a, scratch []int64) {
	n := len(a)
	if p.workers == 1 || n < minParallel {
		memsort.RadixKeys(a, scratch)
		return
	}
	scratch = scratch[:n]
	s := p.workers
	counts8 := make([][8][256]int, s)
	p.parDo(s, func(_, lo, hi int) {
		for w := lo; w < hi; w++ {
			c := &counts8[w]
			for _, v := range a[w*n/s : (w+1)*n/s] {
				u := uint64(v) ^ radixSignBit
				c[0][u&0xff]++
				c[1][u>>8&0xff]++
				c[2][u>>16&0xff]++
				c[3][u>>24&0xff]++
				c[4][u>>32&0xff]++
				c[5][u>>40&0xff]++
				c[6][u>>48&0xff]++
				c[7][u>>56]++
			}
		}
	})
	var global [8][256]int
	for w := range counts8 {
		for pass := 0; pass < 8; pass++ {
			for d, cnt := range counts8[w][pass] {
				global[pass][d] += cnt
			}
		}
	}
	src, dst := a, scratch
	cnt := make([][256]int, s)
	off := make([][256]int, s)
	first := true
	for pass := 0; pass < 8; pass++ {
		if radixSkipDigit(&global[pass], n) {
			continue
		}
		shift := uint(8 * pass)
		if first {
			// The initial scan already counted this digit over a == src.
			for w := range cnt {
				cnt[w] = counts8[w][pass]
			}
			first = false
		} else {
			p.parDo(s, func(_, lo, hi int) {
				for w := lo; w < hi; w++ {
					c := &cnt[w]
					*c = [256]int{}
					for _, v := range src[w*n/s : (w+1)*n/s] {
						c[(uint64(v)^radixSignBit)>>shift&0xff]++
					}
				}
			})
		}
		sum := 0
		for d := 0; d < 256; d++ {
			for w := 0; w < s; w++ {
				off[w][d] = sum
				sum += cnt[w][d]
			}
		}
		p.parDo(s, func(_, lo, hi int) {
			for w := lo; w < hi; w++ {
				o := &off[w]
				for _, v := range src[w*n/s : (w+1)*n/s] {
					d := (uint64(v) ^ radixSignBit) >> shift & 0xff
					dst[o[d]] = v
					o[d]++
				}
			}
		})
		src, dst = dst, src
	}
	if &src[0] != &a[0] {
		p.parDo(n, func(_, lo, hi int) {
			copy(a[lo:hi], src[lo:hi])
		})
	}
}
