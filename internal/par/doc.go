// Package par is the shared worker-pool compute layer between the in-core
// kernels (internal/memsort) and the PDM algorithms: parallel memory-load
// sorting (per-worker run formation + partitioned merge), partitioned
// k-way merging (the loser tree's output range cut by splitters so each
// worker merges an independent slice), parallel in-place symmetric
// merging, and scatter/gather primitives (transpose, copy, radix-style
// histograms).
//
// Each pool carries a compute Kernel that picks the memory-load sort:
// KernelComparison runs the introsort, KernelRadix the LSD radix sort
// (serial per segment, or a deterministic parallel counting/scatter
// pipeline shaped like Histogram/Transpose — per-worker private counts
// over fixed spans, reduced in (digit, worker) order), and KernelAuto
// picks radix at and above a fixed size threshold (AutoKernel).  The
// kernel is priced by internal/plan's per-kernel probe and surfaced
// through every config layer; like the worker count, it may change only
// the wall clock.
//
// The layer is invisible to the PDM cost model and to the algorithms'
// results: every operation produces output bit-identical to its serial
// counterpart for any worker count and any kernel — sorting and merging
// int64 multisets have a unique result, and the partition boundaries are
// exact ranks — so parallelism changes wall-clock only, never pass
// counts, statistics, or I/O traces.  No operation allocates from the pdm
// Arena: the sorts and merges are in-place or write caller-provided
// buffers, keeping the paper's memory envelope untouched.  The radix
// kernel does need one load of Go-heap scratch; it borrows from a small
// free list capped at maxPooledScratchKeys per buffer so a single huge
// sort cannot pin its scratch forever (mirroring the FileDisk buffer
// pool's cap).
//
// A Pool is safe for use from one algorithm goroutine at a time per
// operation; distinct operations on one pool must not run concurrently
// (in-tree callers drive it from the single algorithm goroutine, exactly
// like a stream.Reader).  The pool records observability counters —
// parallel sections entered, their wall time, and the summed per-worker
// busy time — that the pdm Array folds into its Stats, where they are
// scheduling-dependent like the pipeline hit/stall counters and excluded
// from determinism guarantees.
package par
