package par

import (
	"math/rand"
	"slices"
	"sync/atomic"
	"testing"

	"repro/internal/memsort"
)

var testWidths = []int{1, 2, 3, 4, 8}

func randKeys(rng *rand.Rand, n int, span int64) []int64 {
	a := make([]int64, n)
	for i := range a {
		a[i] = rng.Int63n(2*span) - span
	}
	return a
}

func TestNewDefaultsToGOMAXPROCS(t *testing.T) {
	if New(0).Workers() < 1 {
		t.Fatal("zero-worker pool")
	}
	if got := New(5).Workers(); got != 5 {
		t.Fatalf("Workers() = %d, want 5", got)
	}
}

func TestForCoversRangeOnce(t *testing.T) {
	for _, w := range testWidths {
		p := New(w)
		const n = 5000
		hits := make([]int32, n)
		p.For(n, n, func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&hits[i], 1)
			}
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("w=%d: index %d visited %d times", w, i, h)
			}
		}
	}
}

func TestForSmallWorkRunsSerial(t *testing.T) {
	p := New(8)
	calls := 0
	p.For(10, 10, func(w, lo, hi int) {
		calls++
		if w != 0 || lo != 0 || hi != 10 {
			t.Fatalf("serial call = (%d, %d, %d)", w, lo, hi)
		}
	})
	if calls != 1 {
		t.Fatalf("%d calls, want 1", calls)
	}
}

func TestSortKeysMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 500, minParallel, minParallel + 13, 20000} {
		want := randKeys(rng, n, 50) // duplicates likely
		got := append([]int64(nil), want...)
		memsort.Keys(want)
		for _, w := range testWidths {
			a := append([]int64(nil), got...)
			New(w).SortKeys(a)
			if !slices.Equal(a, want) {
				t.Fatalf("n=%d w=%d: SortKeys differs from serial", n, w)
			}
		}
	}
}

func TestSortKeysScratchMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{500, minParallel, 20000} {
		src := randKeys(rng, n, 1<<40)
		want := append([]int64(nil), src...)
		memsort.Keys(want)
		for _, w := range testWidths {
			a := append([]int64(nil), src...)
			New(w).SortKeysScratch(a, make([]int64, n))
			if !slices.Equal(a, want) {
				t.Fatalf("n=%d w=%d: SortKeysScratch differs from serial", n, w)
			}
			// Undersized scratch must fall back, not fail.
			a = append([]int64(nil), src...)
			New(w).SortKeysScratch(a, make([]int64, n/2))
			if !slices.Equal(a, want) {
				t.Fatalf("n=%d w=%d: fallback path differs from serial", n, w)
			}
		}
	}
}

func TestSymMergeMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{16, minParallel, 8192} {
		for trial := 0; trial < 10; trial++ {
			m := rng.Intn(n + 1)
			src := randKeys(rng, n, 40)
			memsort.Keys(src[:m])
			memsort.Keys(src[m:])
			want := append([]int64(nil), src...)
			memsort.SymMerge(want, m)
			for _, w := range testWidths {
				a := append([]int64(nil), src...)
				New(w).SymMerge(a, m)
				if !slices.Equal(a, want) {
					t.Fatalf("n=%d m=%d w=%d: SymMerge differs from serial", n, m, w)
				}
			}
		}
	}
}

func TestMultiMergeMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 50; trial++ {
		k := 1 + rng.Intn(8)
		lanes := make([][]int64, k)
		total := 0
		for i := range lanes {
			n := rng.Intn(1200)
			if trial%5 == 0 && i == 0 {
				n = 0 // empty lanes must be handled
			}
			lanes[i] = randKeys(rng, n, 30)
			memsort.Keys(lanes[i])
			total += n
		}
		want := make([]int64, total)
		memsort.MultiMerge(want, lanes)
		for _, w := range testWidths {
			got := make([]int64, total)
			New(w).MultiMerge(got, lanes)
			if !slices.Equal(got, want) {
				t.Fatalf("trial %d w=%d: MultiMerge differs from serial", trial, w)
			}
		}
	}
}

func TestTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, dims := range [][2]int{{1, 1}, {4, 7}, {64, 64}, {128, 33}} {
		rows, cols := dims[0], dims[1]
		src := randKeys(rng, rows*cols, 1<<30)
		for _, w := range testWidths {
			dst := make([]int64, rows*cols)
			New(w).Transpose(dst, src, rows, cols)
			for r := 0; r < rows; r++ {
				for c := 0; c < cols; c++ {
					if dst[c*rows+r] != src[r*cols+c] {
						t.Fatalf("%dx%d w=%d: dst[%d][%d] wrong", rows, cols, w, c, r)
					}
				}
			}
		}
	}
}

func TestCopy(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	src := randKeys(rng, 9000, 1<<30)
	for _, w := range testWidths {
		dst := make([]int64, len(src))
		New(w).Copy(dst, src)
		if !slices.Equal(dst, src) {
			t.Fatalf("w=%d: Copy mangled data", w)
		}
	}
}

func TestHistogram(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const buckets = 16
	keys := make([]int64, 8000)
	want := make([]int, buckets)
	for i := range keys {
		keys[i] = rng.Int63n(buckets)
		want[keys[i]]++
	}
	for _, w := range testWidths {
		got, ok := New(w).Histogram(keys, buckets, func(k int64) int { return int(k) })
		if !ok || !slices.Equal(got, want) {
			t.Fatalf("w=%d: histogram = %v, %v", w, got, ok)
		}
		// Out-of-range keys must be reported, not counted or crashed on.
		badKeys := append(append([]int64(nil), keys...), int64(buckets))
		if _, ok := New(w).Histogram(badKeys, buckets, func(k int64) int { return int(k) }); ok {
			t.Fatalf("w=%d: out-of-range bucket accepted", w)
		}
	}
}

func TestCountersAdvanceAndReset(t *testing.T) {
	p := New(4)
	a := randKeys(rand.New(rand.NewSource(8)), 4*minParallel, 1<<30)
	p.SortKeys(a)
	sections, wall, busy := p.Counters()
	if sections == 0 || wall <= 0 || busy <= 0 {
		t.Fatalf("counters did not advance: %d, %d, %d", sections, wall, busy)
	}
	p.ResetCounters()
	if s, w, b := p.Counters(); s != 0 || w != 0 || b != 0 {
		t.Fatalf("counters not reset: %d, %d, %d", s, w, b)
	}
	// A serial pool records no sections.
	p1 := New(1)
	p1.SortKeys(a)
	if s, _, _ := p1.Counters(); s != 0 {
		t.Fatalf("serial pool recorded %d sections", s)
	}
}
