package core

import (
	"fmt"

	"repro/internal/memsort"
	"repro/internal/pdm"
	"repro/internal/stream"
)

// SevenPass sorts in with the paper's Section 6.1 algorithm in exactly
// seven passes.  For N = l²·M with l ≤ √M (the paper's headline case is
// l = √M, N = M²):
//
//	passes 1–3: ThreePass2 forms l sorted superruns of l·M keys each, the
//	            final write unshuffled into √M subsequences per superrun
//	            (steps 1–2 combined);
//	pass 4:     unshuffle each subsequence into l parts (the inner
//	            (l,m)-merge's unshuffle);
//	pass 5:     in-memory merges of the inner part groups (step 3's
//	            "mergings ... in one pass through the data" middle pass);
//	pass 6:     shuffle + cleanup per subsequence group, producing the Q_j;
//	pass 7:     shuffle Q_1..Q_√M + cleanup (steps 4–5, dirtiness ≤ M).
//
// l must divide √M so every pass stays block-aligned.
func SevenPass(a *pdm.Array, in *pdm.Stripe) (*Result, error) {
	g, err := checkGeometry(a)
	if err != nil {
		return nil, err
	}
	n := in.Len()
	l := memsort.Isqrt(n / g.m)
	if l*l*g.m != n || l < 1 || l > g.sqM || g.sqM%l != 0 {
		return nil, fmt.Errorf("core: SevenPass needs N = l^2*M with l dividing sqrt(M); N = %d, M = %d", n, g.m)
	}
	start := a.Stats()

	// Passes 1-3: superruns via ThreePass2, written unshuffled.
	subseqs, err := makeSubseqStripes(a, l)
	if err != nil {
		return nil, err
	}
	staging, err := a.Arena().Alloc(g.dxb)
	if err != nil {
		freeAll2(subseqs)
		return nil, err
	}
	for i := 0; i < l; i++ {
		if _, err := threePass2Range(a, in, i*l*g.m, l*g.m, unshuffleEmit(a, subseqs[i], staging), false); err != nil {
			a.Arena().Free(staging)
			freeAll2(subseqs)
			return nil, err
		}
		// Reporting-only boundary: superrun i complete.  The superrun
		// grid is rebuilt from input on recovery (no resume manifest).
		if err := a.PassDone(pdm.Checkpoint{Alg: "seven", Pass: i + 1, N: n}); err != nil {
			a.Arena().Free(staging)
			freeAll2(subseqs)
			return nil, err
		}
	}
	a.Arena().Free(staging)

	// Passes 4-7: the outer (√M-way) merge of the superruns.
	out, err := outerMerge(a, subseqs, l, n)
	freeAll2(subseqs)
	if err != nil {
		return nil, err
	}
	return finish(a, out, n, start, false), nil
}

// makeSubseqStripes allocates the l×√M grid of subsequence stripes: entry
// (i, j) holds subsequence j of superrun i (its elements ≡ j mod √M),
// length l·√M, skewed by i+j so both the unshuffled writes and the grouped
// reads spread across the disks.
func makeSubseqStripes(a *pdm.Array, l int) ([][]*pdm.Stripe, error) {
	g, err := checkGeometry(a)
	if err != nil {
		return nil, err
	}
	out := make([][]*pdm.Stripe, l)
	for i := range out {
		out[i] = make([]*pdm.Stripe, g.sqM)
		for j := range out[i] {
			s, err := a.NewStripeSkew(l*g.b, i+j)
			if err != nil {
				freeAll2(out)
				return nil, err
			}
			out[i][j] = s
		}
	}
	return out, nil
}

// unshuffleEmit returns an emitFunc that scatters each sorted M-chunk into
// the √M subsequence stripes: chunk element u belongs to subsequence
// u mod √M, and the t-th chunk supplies block t of every subsequence.
// Writes go out D blocks at a time through the provided D·B staging buffer,
// so each emit costs the optimal √M/D parallel write steps.  The emitter
// stays synchronous on purpose: it runs nested inside ThreePass2's cleanup,
// whose rolling window plus the streaming reader already fill the arena —
// a write-behind writer here would need a second staging budget beyond the
// memory model's envelope.
func unshuffleEmit(a *pdm.Array, subseqs []*pdm.Stripe, staging []int64) emitFunc {
	sq := len(subseqs)
	b := a.B()
	d := a.D()
	pool := a.Pool()
	return func(t int, chunk []int64) error {
		for j0 := 0; j0 < sq; j0 += d {
			cnt := d
			if j0+cnt > sq {
				cnt = sq - j0
			}
			// The strided gather into the staging blocks splits across the
			// workers; the addressing stays serial and identical.
			pool.For(cnt*b, cnt, func(_, lo, hi int) {
				for dj := lo; dj < hi; dj++ {
					j := j0 + dj
					seg := staging[dj*b : (dj+1)*b]
					for k := 0; k < b; k++ {
						seg[k] = chunk[k*sq+j]
					}
				}
			})
			addrs := make([]pdm.BlockAddr, cnt)
			views := make([][]int64, cnt)
			for dj := 0; dj < cnt; dj++ {
				addrs[dj] = subseqs[j0+dj].BlockAddr(t)
				views[dj] = staging[dj*b : (dj+1)*b]
			}
			if err := a.WriteV(addrs, views); err != nil {
				return err
			}
		}
		return nil
	}
}

// outerMerge performs passes 4-7 of SevenPass (equivalently passes 3-6 of
// ExpectedSixPass): the (l, √M)-merge of l sorted superruns already
// unshuffled into the subseqs grid, each subsequence of length l·√M keys.
func outerMerge(a *pdm.Array, subseqs [][]*pdm.Stripe, l, n int) (*pdm.Stripe, error) {
	g, err := checkGeometry(a)
	if err != nil {
		return nil, err
	}
	sq := g.sqM
	subLen := l * g.b // keys per subsequence

	// Pass 4: unshuffle each subsequence (i,j) into l parts of √M keys;
	// part p occupies block p of the rewritten stripe.
	a.Arena().SetPhase("outer/unshuffle")
	parts := make([][]*pdm.Stripe, len(subseqs))
	for i := range parts {
		parts[i] = make([]*pdm.Stripe, sq)
		for j := range parts[i] {
			s, err := a.NewStripeSkew(subLen, i+j)
			if err != nil {
				freeAll2(parts)
				return nil, err
			}
			parts[i][j] = s
		}
	}
	buf, err := a.Arena().Alloc(subLen)
	if err != nil {
		freeAll2(parts)
		return nil, err
	}
	scatter, err := a.Arena().Alloc(subLen)
	if err != nil {
		a.Arena().Free(buf)
		freeAll2(parts)
		return nil, err
	}
	pass4 := func() error {
		// Subsequences are consumed whole in (i, j) order: pre-plan the
		// sequence so the next one streams in during the in-memory scatter.
		rd, err := stream.NewReader(a, len(subseqs)*sq, func(t int) []pdm.BlockAddr {
			return stripeAddrs(subseqs[t/sq][t%sq], 0, subLen)
		})
		if err != nil {
			return err
		}
		defer rd.Close()
		w, err := stream.NewWriter(a)
		if err != nil {
			return err
		}
		pool := a.Pool()
		for i := range subseqs {
			for j := range subseqs[i] {
				if err := rd.FillFlat(buf); err != nil {
					w.Close() //nolint:errcheck // the read error takes precedence
					return err
				}
				// Part p at scatter[p·B:(p+1)·B] — a transpose of the
				// subsequence viewed as B rows of l keys.
				pool.Transpose(scatter, buf, g.b, l)
				if err := w.WriteFlat(stripeAddrs(parts[i][j], 0, subLen), scatter); err != nil {
					w.Close() //nolint:errcheck // the write error takes precedence
					return err
				}
			}
		}
		return w.Close()
	}
	err = pass4()
	a.Arena().Free(buf)
	a.Arena().Free(scatter)
	if err != nil {
		freeAll2(parts)
		return nil, err
	}

	// Pass 5: inner group merges.  For each (j, p): merge part p of
	// subsequence j across the l superruns — l lanes of √M keys = l·√M ≤ M
	// records per merge — into L2(j,p).
	a.Arena().SetPhase("outer/groupmerge")
	l2 := make([][]*pdm.Stripe, sq)
	for j := range l2 {
		l2[j] = make([]*pdm.Stripe, l)
	}
	inBuf, err := a.Arena().Alloc(subLen)
	if err != nil {
		freeAll2(parts)
		return nil, err
	}
	outBuf, err := a.Arena().Alloc(subLen)
	if err != nil {
		a.Arena().Free(inBuf)
		freeAll2(parts)
		return nil, err
	}
	pass5 := func() error {
		// One group gather per (j, p): block p of part j from every
		// superrun — pre-planned for the prefetcher like pass 4.
		rd, err := stream.NewReader(a, sq*l, func(t int) []pdm.BlockAddr {
			j, p := t/l, t%l
			addrs := make([]pdm.BlockAddr, l)
			for i := 0; i < l; i++ {
				addrs[i] = parts[i][j].BlockAddr(p)
			}
			return addrs
		})
		if err != nil {
			return err
		}
		defer rd.Close()
		w, err := stream.NewWriter(a)
		if err != nil {
			return err
		}
		pool := a.Pool()
		lanes := make([][]int64, l)
		for j := 0; j < sq; j++ {
			for p := 0; p < l; p++ {
				for i := 0; i < l; i++ {
					lanes[i] = inBuf[i*g.b : (i+1)*g.b]
				}
				if err := rd.FillFlat(inBuf); err != nil {
					w.Close() //nolint:errcheck // the read error takes precedence
					return err
				}
				pool.MultiMerge(outBuf, lanes)
				s, err := a.NewStripeSkew(subLen, j+p)
				if err != nil {
					w.Close() //nolint:errcheck // the alloc error takes precedence
					return err
				}
				if err := w.WriteFlat(stripeAddrs(s, 0, subLen), outBuf); err != nil {
					w.Close() //nolint:errcheck // the write error takes precedence
					return err
				}
				l2[j][p] = s
			}
		}
		return w.Close()
	}
	err = pass5()
	a.Arena().Free(inBuf)
	a.Arena().Free(outBuf)
	freeAll2(parts)
	if err != nil {
		freeAll2(l2)
		return nil, err
	}

	// Pass 6: per-j shuffle + cleanup of the l merged part sequences into
	// Q_j.  Inner dirtiness ≤ l·l ≤ l·√M = the chunk size.
	a.Arena().SetPhase("outer/innerclean")
	qs := make([]*pdm.Stripe, sq)
	w6, err := stream.NewWriter(a)
	if err != nil {
		freeAll2(l2)
		return nil, err
	}
	for j := 0; j < sq; j++ {
		q, err := a.NewStripeSkew(l*subLen, j)
		if err != nil {
			w6.Close() //nolint:errcheck // the alloc error takes precedence
			freeAll2(l2)
			freeAll(qs)
			return nil, err
		}
		qs[j] = q
		if err := shuffleCleanup(a, viewsOf(l2[j]), l*g.b, streamEmit(w6, q)); err != nil {
			w6.Close() //nolint:errcheck // the cleanup error takes precedence
			freeAll2(l2)
			freeAll(qs)
			return nil, fmt.Errorf("core: SevenPass inner cleanup: %w", err)
		}
	}
	err = w6.Close()
	freeAll2(l2)
	if err != nil {
		freeAll(qs)
		return nil, err
	}

	// Pass 7: shuffle Q_1..Q_√M + cleanup; outer dirtiness ≤ l·√M ≤ M.
	a.Arena().SetPhase("outer/finalclean")
	out, err := a.NewStripe(n)
	if err != nil {
		freeAll(qs)
		return nil, err
	}
	w7, err := stream.NewWriter(a)
	if err != nil {
		freeAll(qs)
		out.Free()
		return nil, err
	}
	err = shuffleCleanup(a, viewsOf(qs), g.m, streamEmit(w7, out))
	if cerr := w7.Close(); err == nil {
		err = cerr
	}
	freeAll(qs)
	if err != nil {
		out.Free()
		return nil, fmt.Errorf("core: SevenPass final cleanup: %w", err)
	}
	a.Arena().SetPhase("")
	return out, nil
}

// freeAll2 frees a grid of stripes.
func freeAll2(grid [][]*pdm.Stripe) {
	for _, row := range grid {
		freeAll(row)
	}
}
