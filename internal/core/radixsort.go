package core

import (
	"fmt"
	"math/bits"

	"repro/internal/memsort"
	"repro/internal/pdm"
	"repro/internal/stream"
)

// radixNode is one bucket of the forward (most-significant-digit-first)
// radix tree: either a leaf whose keys fit in memory (or are all equal) or
// an internal node whose children refine the next digit.
type radixNode struct {
	seq      blockSeq
	children []*radixNode
}

// RadixSort sorts in with the paper's Section 7 RadixSort: forward radix
// sort over digits of log₂(M/B) bits, each round a scatterPass (IntegerSort
// phase) refining every bucket larger than M, followed by the final step A
// — read each bucket (now ≤ M keys, w.h.p. after (1+δ)·log(N/M)/log(M/B)
// rounds), sort it in memory, and write the output contiguously.
//
// Keys must be integers in [0, universe); universe ≤ 2^62.  M/B must be a
// power of two.  Theorem 7.2 bounds the pass count by
// (1+ν)·log(N/M)/log(M/B) + 1 for random inputs; skewed inputs simply take
// extra refinement rounds, which the measured Result reflects.
func RadixSort(a *pdm.Array, in *pdm.Stripe, universe int64) (*Result, error) {
	g, err := checkGeometry(a)
	if err != nil {
		return nil, err
	}
	r := g.m / g.b
	if r < 2 || r&(r-1) != 0 {
		return nil, fmt.Errorf("core: RadixSort needs M/B a power of two >= 2, got %d", r)
	}
	if universe <= 0 {
		return nil, fmt.Errorf("core: RadixSort needs a positive key universe, got %d", universe)
	}
	w := bits.TrailingZeros(uint(r)) // digit width in bits
	keyBits := bits.Len64(uint64(universe - 1))
	rounds := memsort.CeilDiv(keyBits, w)
	totalBits := rounds * w

	start := a.Stats()
	st := &scatterState{}
	defer st.freeStripes()

	root := &radixNode{seq: stripeBlockSeq(in)}
	level := []*radixNode{root}
	for depth := 0; depth < rounds && len(level) > 0; depth++ {
		shift := uint(totalBits - (depth+1)*w)
		mask := int64(r - 1)
		var next []*radixNode
		for _, node := range level {
			if node.seq.total <= g.m {
				continue // already a leaf
			}
			a.Arena().SetPhase("radixsort/scatter")
			kids, err := scatterPass(a, node.seq, r,
				func(k int64) int { return int((k >> shift) & mask) }, st)
			if err != nil {
				return nil, err
			}
			node.children = make([]*radixNode, 0, r)
			for b := range kids {
				if kids[b].total == 0 {
					continue
				}
				child := &radixNode{seq: kids[b]}
				node.children = append(node.children, child)
				next = append(next, child)
			}
			node.seq = blockSeq{} // parent blocks are dead after refinement
		}
		// Reporting-only round boundary: the radix tree's bucket
		// directory lives in memory, so recovery restarts from input.
		if err := a.PassDone(pdm.Checkpoint{Alg: "radix", Pass: depth + 1, N: in.Len()}); err != nil {
			return nil, err
		}
		level = next
	}

	// Step A: in-order traversal; each leaf is ≤ M keys (or all-equal keys
	// if the digits are exhausted), sorted in memory and appended.  Leaves
	// are read through one batched stream so that tiny buckets do not
	// fragment the parallel reads.
	a.Arena().SetPhase("radixsort/stepA")
	var leaves []blockSeq
	collectRadixLeaves(root, &leaves)
	out, err := a.NewStripe(in.Len())
	if err != nil {
		return nil, err
	}
	raw, err := a.Arena().Alloc(g.m / 2)
	if err != nil {
		out.Free()
		return nil, err
	}
	acc, err := a.Arena().Alloc(g.m)
	if err != nil {
		a.Arena().Free(raw)
		out.Free()
		return nil, err
	}
	apBuf, err := a.Arena().Alloc(g.m/2 + g.b)
	if err != nil {
		a.Arena().Free(raw)
		a.Arena().Free(acc)
		out.Free()
		return nil, err
	}
	sw, err := stream.NewWriter(a)
	if err != nil {
		a.Arena().Free(raw)
		a.Arena().Free(acc)
		a.Arena().Free(apBuf)
		out.Free()
		return nil, err
	}
	ap := &appender{out: out, w: sw, buf: apBuf, b: g.b}
	remaining := make([]int, len(leaves))
	for i, lf := range leaves {
		remaining[i] = lf.total
	}
	accLen := 0
	err = streamBlockSeqs(a, g, leaves, raw, func(leaf int, keys []int64) error {
		if leaves[leaf].total > g.m {
			// Digits exhausted: every key in this bucket is identical, so
			// it streams out unsorted.
			return ap.append(keys)
		}
		copy(acc[accLen:], keys)
		accLen += len(keys)
		remaining[leaf] -= len(keys)
		if remaining[leaf] == 0 {
			a.Pool().SortKeys(acc[:accLen])
			if err := ap.append(acc[:accLen]); err != nil {
				return err
			}
			accLen = 0
		}
		return nil
	})
	if err == nil {
		err = ap.flush()
	}
	if cerr := sw.Close(); err == nil {
		err = cerr
	}
	a.Arena().Free(raw)
	a.Arena().Free(acc)
	a.Arena().Free(apBuf)
	if err != nil {
		out.Free()
		return nil, err
	}
	a.Arena().SetPhase("")
	return finish(a, out, in.Len(), start, false), nil
}

// collectRadixLeaves appends the tree's leaves in value order.
func collectRadixLeaves(node *radixNode, out *[]blockSeq) {
	if node.children != nil {
		for _, c := range node.children {
			collectRadixLeaves(c, out)
		}
		return
	}
	*out = append(*out, node.seq)
}

// RadixSortPredictedPasses returns the Theorem 7.2 estimate
// (1+ν)·log(N/M)/log(M/B) + 1 with ν = 1/C (the paper's example choice
// ε = 1/C), for comparison against measured passes in the harness.
func RadixSortPredictedPasses(n, m, b, d int) float64 {
	c := float64(m) / float64(d*b)
	lnNM := logRatio(n, m)
	lnMB := logRatio(m, b)
	if lnMB == 0 {
		return 1
	}
	return (1+1/c)*lnNM/lnMB + 1
}

func logRatio(x, y int) float64 {
	// log2(x/y) computed exactly enough for the estimate.
	lx := bits.Len(uint(x - 1))
	ly := bits.Len(uint(y - 1))
	return float64(lx - ly)
}
