package core

import (
	"errors"
	"slices"
	"testing"

	"repro/internal/memsort"
	"repro/internal/pdm"
	"repro/internal/workload"
)

func TestCheckGeometryErrors(t *testing.T) {
	cases := []pdm.Config{
		{D: 4, B: 16, Mem: 260 * 4}, // non-square M (1040)
		{D: 4, B: 16, Mem: 1024},    // B != sqrt(M)
		{D: 3, B: 8, Mem: 64},       // D does not divide sqrt(M)
	}
	for i, cfg := range cases {
		a, err := pdm.New(cfg)
		if err != nil {
			t.Fatalf("case %d: config invalid: %v", i, err)
		}
		if _, err := checkGeometry(a); err == nil {
			t.Fatalf("case %d: bad geometry accepted", i)
		}
	}
}

func TestFormRunsValidation(t *testing.T) {
	a := newTestArray(t, 64, 4)
	in, err := a.NewStripe(64 * 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := formRuns(a, in, 0, 128, 65); err == nil {
		t.Fatal("runLen > M accepted")
	}
	if _, err := formRuns(a, in, 0, 100, 64); err == nil {
		t.Fatal("n not multiple of runLen accepted")
	}
	if _, err := formRunsUnshuffled(a, in, 0, 128, 64, 3); err == nil {
		t.Fatal("non-dividing m accepted")
	}
	if _, err := formRunsUnshuffled(a, in, 0, 128, 64, 16); err == nil {
		t.Fatal("part length below B accepted")
	}
}

func TestShuffleCleanupValidation(t *testing.T) {
	a := newTestArray(t, 64, 4)
	s1, err := a.NewStripeSkew(64, 0)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := a.NewStripeSkew(128, 1)
	if err != nil {
		t.Fatal(err)
	}
	emit := func(int, []int64) error { return nil }
	if err := shuffleCleanup(a, nil, 64, emit); err == nil {
		t.Fatal("no sequences accepted")
	}
	if err := shuffleCleanup(a, viewsOf([]*pdm.Stripe{s1, s2}), 64, emit); err == nil {
		t.Fatal("unequal sequence lengths accepted")
	}
	if err := shuffleCleanup(a, viewsOf([]*pdm.Stripe{s1}), 63, emit); err == nil {
		t.Fatal("chunk share not block aligned accepted")
	}
}

func TestMergePartGroupsTooBig(t *testing.T) {
	a := newTestArray(t, 64, 4)
	runs := make([]*pdm.Stripe, 9) // 9 * 8 = 72 > M = 64 per group
	for i := range runs {
		s, err := a.NewStripeSkew(64, i)
		if err != nil {
			t.Fatal(err)
		}
		runs[i] = s
	}
	if _, _, err := mergePartGroups(a, runs, 8, 8); err == nil {
		t.Fatal("oversized merge group accepted")
	}
}

func TestSeqViewAddressing(t *testing.T) {
	a := newTestArray(t, 64, 4)
	s, err := a.NewStripeSkew(64*2, 3)
	if err != nil {
		t.Fatal(err)
	}
	v := seqView{s: s, startBlk: 1, strideBlk: 4, keys: 16}
	if got, want := v.blockAddr(0), s.BlockAddr(1); got != want {
		t.Fatalf("blockAddr(0) = %v, want %v", got, want)
	}
	if got, want := v.blockAddr(2), s.BlockAddr(9); got != want {
		t.Fatalf("blockAddr(2) = %v, want %v", got, want)
	}
	plain := viewOf(s)
	if plain.keys != s.Len() || plain.strideBlk != 1 {
		t.Fatalf("viewOf = %+v", plain)
	}
}

func TestMergeSkewStep(t *testing.T) {
	g := geometry{d: 16}
	if got := mergeSkewStep(g, 8, 1); got != 2 {
		t.Fatalf("l=8 pb=1 D=16: step = %d, want 2", got)
	}
	if got := mergeSkewStep(g, 32, 1); got != 1 {
		t.Fatalf("l=32 pb=1 D=16: step = %d, want 1", got)
	}
	if got := mergeSkewStep(g, 4, 2); got != 4 {
		t.Fatalf("l=4 pb=2 D=16: step = %d, want 4 (batch 2 * pb 2)", got)
	}
	if got := mergeSkewStep(g, 0, 1); got != 1 {
		t.Fatalf("degenerate step = %d", got)
	}
}

func TestRollingPassSingleChunk(t *testing.T) {
	a := newTestArray(t, 64, 4)
	data := workload.ReverseSorted(64)
	var out []int64
	err := rollingPass(a, 64, 1,
		func(t int, dst []int64) error { copy(dst, data); return nil },
		func(t int, chunk []int64) error { out = append(out, chunk...); return nil })
	if err != nil {
		t.Fatal(err)
	}
	if !memsort.IsSorted(out) || len(out) != 64 {
		t.Fatal("single-chunk rolling pass failed")
	}
}

func TestExpectedTwoPassValidation(t *testing.T) {
	a := newTestArray(t, 64, 4)
	in, err := a.NewStripe(64 + 8) // not a multiple of M
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ExpectedTwoPass(a, in); err == nil {
		t.Fatal("non-multiple-of-M accepted")
	}
	in2, err := a.NewStripe(64 * 3) // 3 does not divide sqrt(64) = 8
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ExpectedTwoPass(a, in2); err == nil {
		t.Fatal("run count not dividing sqrt(M) accepted")
	}
}

func TestExpectedSixPassValidation(t *testing.T) {
	a := newTestArray(t, 64, 4)
	in, err := a.NewStripe(64 * 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ExpectedSixPass(a, in); err == nil {
		t.Fatal("non-l^2*M accepted")
	}
}

func TestRadixSortValidation(t *testing.T) {
	a := newTestArray(t, 64, 4)
	in, err := a.NewStripe(64)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RadixSort(a, in, 0); err == nil {
		t.Fatal("zero universe accepted")
	}
}

func TestArenaPhasePeaksAfterRun(t *testing.T) {
	// The per-phase peaks must reflect the paper's envelope: run formation
	// within M + DB-ish, cleanup at 2M.  A synchronous array keeps the
	// figures exact (pipelining would add its staging on top).
	const m = 256
	a := newSyncArray(t, m, 4)
	data := workload.Perm(m*4, 1)
	in := loadInput(t, a, data)
	a.Arena().ResetPeak()
	res, err := ExpectedTwoPass(a, in)
	if err != nil {
		t.Fatal(err)
	}
	res.Out.Free()
	peaks := a.Arena().PhasePeaks()
	if len(peaks) == 0 {
		t.Fatal("no phase peaks recorded")
	}
	found := false
	for _, p := range peaks {
		if p == "expectedtwopass/cleanup=512" { // exactly 2M
			found = true
		}
	}
	if !found {
		t.Fatalf("cleanup peak not 2M: %v", peaks)
	}
}

func TestSortedInputIsAdversarialForNestedExpected(t *testing.T) {
	// Documented behaviour: sorted input concentrates run ranges and lands
	// in the exception set of the nested expected algorithms — the fallback
	// must fire and the output must still be correct.
	const m = 256
	a := newTestArray(t, m, 4)
	n := 16 * m
	data := workload.Sorted(n)
	in := loadInput(t, a, data)
	res, err := ExpectedThreePass(a, in)
	if err != nil {
		t.Fatal(err)
	}
	verifySorted(t, res, data)
	if !res.FellBack {
		t.Log("sorted input stayed on the fast path at this size (window large enough); also fine")
	}
}

func TestLowerBoundMonotonicInB(t *testing.T) {
	// For N > 8M the pass bound (lg N − lg B)/(lg(M/B) + 3) increases with
	// B — which is why the paper's Conclusions report a *lower* bound at
	// B = M^(1/3) (1.75) than at B = √M (2) for the same N = M^1.5.
	small, big := LowerBoundPasses(1<<30, 1<<20, 1<<8), LowerBoundPasses(1<<30, 1<<20, 1<<12)
	if small >= big {
		t.Fatalf("bound not increasing in B for N >> M: %v vs %v", small, big)
	}
}

func TestFreeHelpers(t *testing.T) {
	a := newTestArray(t, 64, 4)
	s, err := a.NewStripe(64)
	if err != nil {
		t.Fatal(err)
	}
	freeAll([]*pdm.Stripe{nil, s})
	freeAll2([][]*pdm.Stripe{nil, {}})
}

func TestIntegerSortEmptyBucketRange(t *testing.T) {
	// All keys in one bucket: maximal skew, still correct.
	const m = 64
	a := newTestArray(t, m, 4)
	n := 8 * m
	data := make([]int64, n)
	for i := range data {
		data[i] = 3
	}
	in := loadInput(t, a, data)
	res, err := IntegerSort(a, in, 8, true)
	if err != nil {
		t.Fatal(err)
	}
	got, err := res.Out.Unload()
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(got, data) {
		t.Fatal("single-bucket input mangled")
	}
}

func TestScatterPassEmptySource(t *testing.T) {
	a := newTestArray(t, 64, 4)
	st := &scatterState{}
	kids, err := scatterPass(a, blockSeq{}, 8, func(k int64) int { return int(k) }, st)
	if err != nil || len(kids) != 8 {
		t.Fatalf("empty scatter = %v, %v", kids, err)
	}
}

func TestRollingPassErrorPropagation(t *testing.T) {
	a := newTestArray(t, 64, 4)
	boom := errors.New("boom")
	err := rollingPass(a, 64, 2,
		func(t int, dst []int64) error { return boom },
		func(int, []int64) error { return nil })
	if !errors.Is(err, boom) {
		t.Fatalf("read error not propagated: %v", err)
	}
}
