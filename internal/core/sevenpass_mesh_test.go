package core

import (
	"testing"

	"repro/internal/pdm"
	"repro/internal/workload"
)

func TestSevenPassMeshSortsMSquared(t *testing.T) {
	for _, m := range []int{64, 256} {
		a := newTestArray(t, m, 4)
		n := m * m
		data := workload.Perm(n, int64(m+3))
		in := loadInput(t, a, data)
		res, err := SevenPassMesh(a, in)
		if err != nil {
			t.Fatalf("M=%d: %v", m, err)
		}
		verifySorted(t, res, data)
		if res.ReadPasses != 7 || res.WritePasses != 7 {
			t.Fatalf("M=%d: passes = %.3f/%.3f, want exactly 7", m, res.ReadPasses, res.WritePasses)
		}
		assertMemoryEnvelope(t, a)
		res.Out.Free()
		in.Free()
	}
}

func TestSevenPassMeshInputClasses(t *testing.T) {
	const m = 64
	a := newTestArray(t, m, 4)
	n := m * m
	for name, data := range inputs(int64(n), 8) {
		in := loadInput(t, a, data)
		res, err := SevenPassMesh(a, in)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		verifySorted(t, res, data)
		res.Out.Free()
		in.Free()
	}
}

func TestSevenPassMeshMatchesSevenPassAccounting(t *testing.T) {
	// Same pass structure as the LMM-based SevenPass: identical I/O totals.
	const m = 256
	n := m * m
	data := workload.Perm(n, 4)
	a1 := newTestArray(t, m, 4)
	in1 := loadInput(t, a1, data)
	r1, err := SevenPass(a1, in1)
	if err != nil {
		t.Fatal(err)
	}
	a2 := newTestArray(t, m, 4)
	in2 := loadInput(t, a2, data)
	r2, err := SevenPassMesh(a2, in2)
	if err != nil {
		t.Fatal(err)
	}
	if r1.IO.ReadSteps != r2.IO.ReadSteps || r1.IO.WriteSteps != r2.IO.WriteSteps {
		t.Fatalf("I/O differs: LMM %v vs mesh %v", r1.IO, r2.IO)
	}
}

func TestSevenPassMeshValidation(t *testing.T) {
	a := newTestArray(t, 64, 4)
	in, err := a.NewStripe(64 * 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SevenPassMesh(a, in); err == nil {
		t.Fatal("non-l^2*M input accepted")
	}
}

func TestSevenPassMeshOblivious(t *testing.T) {
	const m = 64
	n := m * m
	run := func(a *pdm.Array, in *pdm.Stripe) (*Result, error) { return SevenPassMesh(a, in) }
	ref := traceOf(t, m, workload.Perm(n, 1), run)
	if !pdm.TracesEqual(ref, traceOf(t, m, workload.Perm(n, 2), run)) {
		t.Fatal("SevenPassMesh I/O trace depends on the input")
	}
}
