package core

import (
	"errors"
	"fmt"

	"repro/internal/memsort"
	"repro/internal/par"
	"repro/internal/pdm"
	"repro/internal/stream"
)

// ErrCleanupOverflow reports that a probabilistic algorithm's shuffle left
// some key farther from home than the cleanup window, i.e. the "problem
// detected" event of Section 5; callers fall back to a deterministic
// algorithm exactly as the paper prescribes.
var ErrCleanupOverflow = errors.New("core: displacement exceeded the cleanup window")

// Result reports one sorting run: the output stripe, the I/O consumed, and
// the pass counts in the paper's currency (one pass = N/(DB) parallel read
// steps and as many writes).
type Result struct {
	Out *pdm.Stripe
	N   int
	IO  pdm.Stats
	// ReadPasses and WritePasses are the measured pass counts; Passes is
	// their max (the number the paper's theorems bound).
	ReadPasses  float64
	WritePasses float64
	Passes      float64
	// FellBack is set when a probabilistic algorithm detected a cleanup
	// overflow and re-sorted with its deterministic fallback.
	FellBack bool
}

// geometry captures the paper's standing configuration B = √M.
type geometry struct {
	m   int // internal memory, keys
	b   int // block size = √M
	d   int // disks
	sqM int // √M = B
	dxb int // D·B
}

func checkGeometry(a *pdm.Array) (geometry, error) {
	g := geometry{m: a.Mem(), b: a.B(), d: a.D(), dxb: a.StripeWidth()}
	g.sqM = memsort.Isqrt(g.m)
	if g.sqM*g.sqM != g.m {
		return g, fmt.Errorf("core: M = %d is not a perfect square", g.m)
	}
	if g.b != g.sqM {
		return g, fmt.Errorf("core: block size B = %d, the paper's algorithms need B = √M = %d", g.b, g.sqM)
	}
	if g.sqM%g.d != 0 {
		return g, fmt.Errorf("core: D = %d does not divide √M = %d (need M = C·D·B with integer C)", g.d, g.sqM)
	}
	return g, nil
}

// finish assembles a Result from the stats delta since start.
func finish(a *pdm.Array, out *pdm.Stripe, n int, start pdm.Stats, fellBack bool) *Result {
	io := a.Stats().Sub(start)
	return &Result{
		Out:         out,
		N:           n,
		IO:          io,
		ReadPasses:  io.ReadPasses(n, a.StripeWidth()),
		WritePasses: io.WritePasses(n, a.StripeWidth()),
		Passes:      io.Passes(n, a.StripeWidth()),
		FellBack:    fellBack,
	}
}

// seqView addresses a sorted sequence stored as every strideBlk-th block
// of a stripe, starting at startBlk.  Interleaving several sequences on one
// stripe this way lets a pass write small merge outputs with full
// parallelism while a later pass still reads block t of every sequence with
// full parallelism — the layout trick behind mergePartGroups.
type seqView struct {
	s         *pdm.Stripe
	startBlk  int
	strideBlk int
	keys      int
}

func viewOf(s *pdm.Stripe) seqView {
	return seqView{s: s, startBlk: 0, strideBlk: 1, keys: s.Len()}
}

func viewsOf(ss []*pdm.Stripe) []seqView {
	out := make([]seqView, len(ss))
	for i, s := range ss {
		out[i] = viewOf(s)
	}
	return out
}

func (v seqView) blockAddr(i int) pdm.BlockAddr {
	return v.s.BlockAddr(v.startBlk + i*v.strideBlk)
}

// stripeAddrs returns the block addresses of keys [keyOff, keyOff+nKeys) of
// s.  The ranges used by the algorithms are valid by construction, so a
// failure is an internal bug.
func stripeAddrs(s *pdm.Stripe, keyOff, nKeys int) []pdm.BlockAddr {
	addrs, err := s.AddrRange(keyOff, nKeys)
	if err != nil {
		panic(err)
	}
	return addrs
}

// formRuns reads consecutive runLen-key segments of in[off:off+n], sorts
// each in memory, and writes run i to its own stripe with skew i — one
// pass.  The segment reads are prefetched and the run writes staged behind
// the in-memory sort (stream.Reader/stream.Writer), so with pipelining
// configured the pass overlaps I/O with sorting.  runLen must be ≤ M and a
// multiple of B, and n a multiple of runLen.
func formRuns(a *pdm.Array, in *pdm.Stripe, off, n, runLen int) ([]*pdm.Stripe, error) {
	g, err := checkGeometry(a)
	if err != nil {
		return nil, err
	}
	if runLen > g.m || runLen%g.b != 0 || n%runLen != 0 {
		return nil, fmt.Errorf("core: bad run geometry: n = %d, runLen = %d, M = %d, B = %d", n, runLen, g.m, g.b)
	}
	buf, err := a.Arena().Alloc(runLen)
	if err != nil {
		return nil, err
	}
	defer a.Arena().Free(buf)
	rd, err := stream.NewStripeReader(in, off, n, runLen)
	if err != nil {
		return nil, err
	}
	defer rd.Close()
	w, err := stream.NewWriter(a)
	if err != nil {
		return nil, err
	}
	pool := a.Pool()
	numRuns := n / runLen
	// A cleanup chunk reads h = √M/numRuns consecutive blocks from every
	// run, so spacing the run skews by h tiles the disks exactly; unit
	// spacing would overlap the runs' diagonal ranges whenever h < D.
	skewStep := 1
	if numRuns > 0 && g.sqM%numRuns == 0 {
		skewStep = g.sqM / numRuns
	}
	runs := make([]*pdm.Stripe, numRuns)
	for i := range runs {
		if err := rd.FillFlat(buf); err != nil {
			w.Close() //nolint:errcheck // the read error takes precedence
			return nil, err
		}
		pool.SortKeys(buf)
		s, err := a.NewStripeSkew(runLen, i*skewStep)
		if err != nil {
			w.Close() //nolint:errcheck // the alloc error takes precedence
			return nil, err
		}
		if err := w.WriteFlat(stripeAddrs(s, 0, runLen), buf); err != nil {
			w.Close() //nolint:errcheck // the write error takes precedence
			return nil, err
		}
		runs[i] = s
	}
	return runs, w.Close()
}

// formRunsUnshuffled is formRuns combined with the paper's first unshuffle
// (ThreePass2 step 2): each sorted run is written as m parts, part p holding
// the run's elements ≡ p (mod m); part p occupies blocks
// [p·partLen/B, (p+1)·partLen/B) of the run's stripe.  partLen = runLen/m
// must be a multiple of B.  Still exactly one pass.
func formRunsUnshuffled(a *pdm.Array, in *pdm.Stripe, off, n, runLen, m int) ([]*pdm.Stripe, error) {
	g, err := checkGeometry(a)
	if err != nil {
		return nil, err
	}
	if runLen > g.m || n%runLen != 0 || m <= 0 || runLen%m != 0 {
		return nil, fmt.Errorf("core: bad unshuffled-run geometry: n = %d, runLen = %d, m = %d", n, runLen, m)
	}
	partLen := runLen / m
	if partLen%g.b != 0 {
		return nil, fmt.Errorf("core: part length %d not a multiple of B = %d", partLen, g.b)
	}
	buf, err := a.Arena().Alloc(runLen)
	if err != nil {
		return nil, err
	}
	defer a.Arena().Free(buf)
	parts, err := a.Arena().Alloc(runLen)
	if err != nil {
		return nil, err
	}
	defer a.Arena().Free(parts)
	rd, err := stream.NewStripeReader(in, off, n, runLen)
	if err != nil {
		return nil, err
	}
	defer rd.Close()
	w, err := stream.NewWriter(a)
	if err != nil {
		return nil, err
	}
	pool := a.Pool()
	numRuns := n / runLen
	skewStep := mergeSkewStep(g, numRuns, partLen/g.b)
	runs := make([]*pdm.Stripe, numRuns)
	for i := range runs {
		if err := rd.FillFlat(buf); err != nil {
			w.Close() //nolint:errcheck // the read error takes precedence
			return nil, err
		}
		// parts is dead until the unshuffle below, so the sort may use it
		// as partitioned-merge scratch — no extra arena memory.
		pool.SortKeysScratch(buf, parts)
		// Gather part p at parts[p*partLen : (p+1)*partLen] — a transpose
		// of the sorted run viewed as partLen rows of m keys.
		pool.Transpose(parts, buf, partLen, m)
		s, err := a.NewStripeSkew(runLen, i*skewStep)
		if err != nil {
			w.Close() //nolint:errcheck // the alloc error takes precedence
			return nil, err
		}
		if err := w.WriteFlat(stripeAddrs(s, 0, runLen), parts); err != nil {
			w.Close() //nolint:errcheck // the write error takes precedence
			return nil, err
		}
		runs[i] = s
	}
	return runs, w.Close()
}

// mergeSkewStep returns the skew spacing (in blocks) between the stripes of
// l runs whose parts (partBlocks blocks each) will be read group-wise by
// mergePartGroups: spacing of batch·partBlocks with batch = ⌈D/(l·pb)⌉
// makes the l diagonal read windows tile the disks exactly when everything
// is a power of two, and near-evenly otherwise.
func mergeSkewStep(g geometry, l, partBlocks int) int {
	if l <= 0 || partBlocks <= 0 {
		return 1
	}
	batch := memsort.CeilDiv(g.d, l*partBlocks)
	if batch < 1 {
		batch = 1
	}
	return batch * partBlocks
}

// mergePartGroups performs the (l,m)-merge's middle pass (ThreePass2
// step 3): for each part index j, gather part j of every run (l·partLen ≤ M
// keys), k-way merge them into L_j, and write the results out — one pass.
//
// When a single group spans fewer blocks than there are disks, several
// groups are processed per memory load and their output blocks are
// interleaved round-robin on one shared stripe: the batched write is
// contiguous (full write parallelism) and the returned strided views still
// expose block t of every L_j on distinct disks (full read parallelism for
// the following shuffle pass).
func mergePartGroups(a *pdm.Array, runs []*pdm.Stripe, partLen, m int) ([]seqView, []*pdm.Stripe, error) {
	g, err := checkGeometry(a)
	if err != nil {
		return nil, nil, err
	}
	l := len(runs)
	group := l * partLen
	if group > g.m {
		return nil, nil, fmt.Errorf("core: merge group of %d keys exceeds M = %d", group, g.m)
	}
	partBlocks := partLen / g.b
	batch := mergeSkewStep(g, l, partBlocks) / partBlocks
	for batch > 1 && (batch*group > g.m || batch > m) {
		batch--
	}
	if m%batch != 0 {
		batch = 1
	}
	in, err := a.Arena().Alloc(batch * group)
	if err != nil {
		return nil, nil, err
	}
	defer a.Arena().Free(in)
	out, err := a.Arena().Alloc(batch * group)
	if err != nil {
		return nil, nil, err
	}
	defer a.Arena().Free(out)
	// The gather pattern of every batch is pure address arithmetic over the
	// immutable run stripes, so the whole pass pre-plans for the prefetcher:
	// batch bi+1 streams in while batch bi is being merged and its output
	// staged behind the writer.
	gcnt := batch
	rd, err := stream.NewReader(a, m/batch, func(bi int) []pdm.BlockAddr {
		j0 := bi * batch
		addrs := make([]pdm.BlockAddr, 0, gcnt*l*partBlocks)
		for gj := 0; gj < gcnt; gj++ {
			j := j0 + gj
			for _, r := range runs {
				for bidx := 0; bidx < partBlocks; bidx++ {
					addrs = append(addrs, r.BlockAddr(j*partBlocks+bidx))
				}
			}
		}
		return addrs
	})
	if err != nil {
		return nil, nil, err
	}
	defer rd.Close()
	w, err := stream.NewWriter(a)
	if err != nil {
		return nil, nil, err
	}
	pool := a.Pool()
	merged := make([]seqView, m)
	var backing []*pdm.Stripe
	lanes := make([][]int64, l)
	groupBlocks := group / g.b
	fail := func(err error) ([]seqView, []*pdm.Stripe, error) {
		w.Close() //nolint:errcheck // the first error takes precedence
		return nil, nil, err
	}
	for j0 := 0; j0 < m; j0 += batch {
		bi := j0 / batch
		// Gather: part j of run i lands at in[gj*group + i*partLen : ...] —
		// exactly the flat order of the pre-planned chunk.
		if err := rd.FillFlat(in); err != nil {
			return fail(err)
		}
		// Merge each group in the batch: a single resident group gets the
		// partitioned (splitter-cut) merge, several split across the workers
		// group-wise — either way bit-identical to the serial loser tree.
		if gcnt == 1 {
			for i := range runs {
				lanes[i] = in[i*partLen : (i+1)*partLen]
			}
			pool.MultiMerge(out[:group], lanes)
		} else {
			pool.For(gcnt*group, gcnt, func(_, lo, hi int) {
				glanes := make([][]int64, l)
				for gj := lo; gj < hi; gj++ {
					for i := 0; i < l; i++ {
						glanes[i] = in[gj*group+i*partLen : gj*group+(i+1)*partLen]
					}
					memsort.MultiMerge(out[gj*group:(gj+1)*group], glanes)
				}
			})
		}
		// One shared stripe per batch, blocks interleaved round-robin:
		// stripe block p holds block p/gcnt of group j0 + p%gcnt.
		bs, err := a.NewStripeSkew(gcnt*group, bi*gcnt)
		if err != nil {
			return fail(err)
		}
		backing = append(backing, bs)
		waddrs := make([]pdm.BlockAddr, gcnt*groupBlocks)
		wbufs := make([][]int64, gcnt*groupBlocks)
		for p := range waddrs {
			gj := p % gcnt
			blk := p / gcnt
			waddrs[p] = bs.BlockAddr(p)
			wbufs[p] = out[gj*group+blk*g.b : gj*group+(blk+1)*g.b]
		}
		if err := w.Write(waddrs, wbufs); err != nil {
			return fail(err)
		}
		for gj := 0; gj < gcnt; gj++ {
			merged[j0+gj] = seqView{s: bs, startBlk: gj, strideBlk: gcnt, keys: group}
		}
	}
	if err := w.Close(); err != nil {
		return nil, nil, err
	}
	return merged, backing, nil
}

// emitFunc receives the t-th sorted output chunk of a cleanup pass.  The
// slice is reused between calls.
type emitFunc func(t int, chunk []int64) error

// shuffleCleanup performs the paper's combined shuffle + local sort pass
// (ExpectedTwoPass step 2, ThreePass2 step 4): conceptually shuffle the
// sequences into Z and repair bounded displacement; operationally, read the
// t-th chunk-worth of every sequence (chunk/len(seqs) keys each), sort it,
// symmerge with the carried upper half of the previous window, and emit the
// lower half.  Because the rolling clean re-sorts every chunk, the shuffle's
// interleaving order inside a chunk is immaterial, so no in-memory
// permutation is needed.
//
// The emitted stream is verified nondecreasing across chunk boundaries —
// the paper's largest-key-shipped check — and ErrCleanupOverflow is returned
// on violation.  Memory: exactly 2·chunk keys.  One pass.
func shuffleCleanup(a *pdm.Array, seqs []seqView, chunk int, emit emitFunc) error {
	g, err := checkGeometry(a)
	if err != nil {
		return err
	}
	nseq := len(seqs)
	if nseq == 0 || chunk%nseq != 0 {
		return fmt.Errorf("core: chunk %d not divisible by %d sequences", chunk, nseq)
	}
	per := chunk / nseq
	if per%g.b != 0 {
		return fmt.Errorf("core: per-sequence chunk share %d not a multiple of B = %d", per, g.b)
	}
	seqLen := seqs[0].keys
	for i, s := range seqs {
		if s.keys != seqLen {
			return fmt.Errorf("core: sequence %d has %d keys, want %d", i, s.keys, seqLen)
		}
	}
	if seqLen%per != 0 {
		return fmt.Errorf("core: sequence length %d not divisible by per-chunk share %d", seqLen, per)
	}
	chunks := seqLen / per
	perBlocks := per / g.b
	// The t-th gather touches block t·perBlocks.. of every sequence — pure
	// address arithmetic, so the shuffle reads are pre-planned and the
	// prefetcher fetches chunk t+1 while chunk t is sorted and merged.
	rd, err := stream.NewReader(a, chunks, func(t int) []pdm.BlockAddr {
		addrs := make([]pdm.BlockAddr, 0, nseq*perBlocks)
		for _, s := range seqs {
			for bidx := 0; bidx < perBlocks; bidx++ {
				addrs = append(addrs, s.blockAddr(t*perBlocks+bidx))
			}
		}
		return addrs
	})
	if err != nil {
		return err
	}
	defer rd.Close()
	// The chunk layout — sequence i's share at dst[i·per:(i+1)·per] — is
	// exactly the flat order of the planned gather.
	readChunk := func(t int, dst []int64) error {
		return rd.FillFlat(dst)
	}
	return rollingPass(a, chunk, chunks, readChunk, emit)
}

// rollingPass is the carry/merge/emit engine shared by every cleanup pass:
// chunks arrive through read, each is sorted, symmerged in place with the
// carried upper half of the previous window (memory: exactly 2·chunk keys),
// and the lower half is emitted.  Emission order is verified nondecreasing;
// a violation aborts with ErrCleanupOverflow.
func rollingPass(a *pdm.Array, chunk, chunks int, read func(t int, dst []int64) error, emit emitFunc) error {
	buf, err := a.Arena().Alloc(2 * chunk)
	if err != nil {
		return err
	}
	defer a.Arena().Free(buf)
	pool := a.Pool()
	carry := buf[:chunk]
	if err := read(0, carry); err != nil {
		return err
	}
	pool.SortKeys(carry)
	var lastMax int64
	emitted := false
	for t := 1; t < chunks; t++ {
		// Canceled jobs abort between chunks even when every read is
		// served from prefetched staging and every emit is write-behind —
		// the scheduler's cancellation must not wait out a compute-bound
		// cleanup pass.
		if err := a.CtxErr(); err != nil {
			return err
		}
		cur := buf[chunk:]
		if err := read(t, cur); err != nil {
			return err
		}
		pool.SortKeys(cur)
		pool.SymMerge(buf, chunk)
		if emitted && buf[0] < lastMax {
			return ErrCleanupOverflow
		}
		lastMax = buf[chunk-1]
		emitted = true
		if err := emit(t-1, buf[:chunk]); err != nil {
			return err
		}
		copy(buf[:chunk], buf[chunk:])
	}
	if emitted && buf[0] < lastMax {
		return ErrCleanupOverflow
	}
	return emit(chunks-1, buf[:chunk])
}

// sequentialEmit returns an emitFunc writing chunks consecutively to out.
func sequentialEmit(out *pdm.Stripe) emitFunc {
	return func(t int, chunk []int64) error {
		return out.WriteAt(t*len(chunk), chunk)
	}
}

// streamEmit is sequentialEmit through the write-behind writer w: the
// rolling pass hands over a chunk and continues sorting the next one while
// the writer flushes.  The caller owns w and must Close it before reading
// or freeing out.
func streamEmit(w *stream.Writer, out *pdm.Stripe) emitFunc {
	return func(t int, chunk []int64) error {
		return w.WriteFlat(stripeAddrs(out, t*len(chunk), len(chunk)), chunk)
	}
}

// Finish assembles a Result from the stats delta since start.  It is
// exported for the baseline algorithms (internal/baseline), which share the
// Result currency with the paper's algorithms.
func Finish(a *pdm.Array, out *pdm.Stripe, n int, start pdm.Stats, fellBack bool) *Result {
	return finish(a, out, n, start, fellBack)
}

// RollingPass exposes the carry/merge/emit cleanup engine to the baseline
// algorithms: chunks arrive through read, are sorted and symmerged with the
// carried upper half of the previous window, and the lower halves are
// emitted in nondecreasing order (ErrCleanupOverflow otherwise).
func RollingPass(a *pdm.Array, chunk, chunks int, read func(t int, dst []int64) error, emit func(t int, chunk []int64) error) error {
	return rollingPass(a, chunk, chunks, read, emit)
}

// SequentialEmit exposes the consecutive-chunk writer for RollingPass.
func SequentialEmit(out *pdm.Stripe) func(t int, chunk []int64) error {
	return sequentialEmit(out)
}

// sortColumns sorts the cnt contiguous colLen-key columns resident in buf:
// across the workers when several columns are in memory at once, and inside
// the single column otherwise — both bit-identical to serial column sorts.
func sortColumns(pool *par.Pool, buf []int64, colLen, cnt int) {
	if cnt == 1 {
		pool.SortKeys(buf[:colLen])
		return
	}
	pool.For(cnt*colLen, cnt, func(_, lo, hi int) {
		for c := lo; c < hi; c++ {
			pool.SortSegment(buf[c*colLen : (c+1)*colLen])
		}
	})
}

// freeAll frees every stripe in the slice.
func freeAll(ss []*pdm.Stripe) {
	for _, s := range ss {
		if s != nil {
			s.Free()
		}
	}
}
