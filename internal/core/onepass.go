package core

import (
	"fmt"

	"repro/internal/pdm"
	"repro/internal/stream"
)

// OnePass sorts an input that fits in internal memory — N ≤ M — in a
// single load-sort-store: one streamed read pass, one in-memory sort on
// the worker pool, one streamed write pass.  The paper takes this regime
// as given (every algorithm bottoms out in "sort a memory load"), but the
// planner needs it as an explicit candidate: without it, Auto used to run
// ThreePass2 degenerately on one run — three passes where one suffices.
//
// N must be a positive multiple of B with N ≤ M.
func OnePass(a *pdm.Array, in *pdm.Stripe) (*Result, error) {
	g, err := checkGeometry(a)
	if err != nil {
		return nil, err
	}
	n := in.Len()
	if n <= 0 || n > g.m || n%g.b != 0 {
		return nil, fmt.Errorf("core: OnePass needs 0 < N <= M with B | N; N = %d, M = %d", n, g.m)
	}
	start := a.Stats()
	a.Arena().SetPhase("onepass/load")
	buf, err := a.Arena().Alloc(n)
	if err != nil {
		return nil, err
	}
	defer a.Arena().Free(buf)
	rd, err := stream.NewStripeReader(in, 0, n, n)
	if err != nil {
		return nil, err
	}
	defer rd.Close()
	if err := rd.FillFlat(buf); err != nil {
		return nil, err
	}
	a.Arena().SetPhase("onepass/sort")
	a.Pool().SortKeys(buf)
	a.Arena().SetPhase("onepass/store")
	out, err := a.NewStripe(n)
	if err != nil {
		return nil, err
	}
	w, err := stream.NewWriter(a)
	if err != nil {
		out.Free()
		return nil, err
	}
	if err := w.WriteFlat(stripeAddrs(out, 0, n), buf); err != nil {
		w.Close() //nolint:errcheck // the write error takes precedence
		out.Free()
		return nil, err
	}
	if err := w.Close(); err != nil {
		out.Free()
		return nil, err
	}
	return finish(a, out, n, start, false), nil
}
