package core

import (
	"fmt"
	"math"

	"repro/internal/memsort"
	"repro/internal/pdm"
)

// ExpectedSixPassCapacity returns the key count Theorem 6.3 certifies for
// six-pass sorting: M² / √((α+2)·ln M + 2).
func ExpectedSixPassCapacity(m int, alpha float64) int {
	return int(float64(m) * float64(m) / math.Sqrt((alpha+2)*math.Log(float64(m))+2))
}

// ExpectedSixPass sorts in with the paper's Section 6.2 algorithm: SevenPass
// with its three-pass superrun formation replaced by the two-pass
// ExpectedTwoPass (runs of length l·M each, l ≤ the ExpectedTwoPass window),
// for six passes in total when no segment needs the fallback.
//
// If a segment's cleanup detects overflow, that segment alone is re-sorted
// with ThreePass2 (three extra passes over l·M keys) and the result is
// flagged FellBack; the merge phases are unconditional and exact.
//
// N must equal l²·M with l dividing √M.  The reliable-regime capacity is
// bounded by both ExpectedSixPassCapacity and the ExpectedTwoPassRuns
// window for the segment length l·M.
func ExpectedSixPass(a *pdm.Array, in *pdm.Stripe) (*Result, error) {
	g, err := checkGeometry(a)
	if err != nil {
		return nil, err
	}
	n := in.Len()
	l := memsort.Isqrt(n / g.m)
	if l*l*g.m != n || l < 1 || l > g.sqM || g.sqM%l != 0 {
		return nil, fmt.Errorf("core: ExpectedSixPass needs N = l^2*M with l dividing sqrt(M); N = %d, M = %d", n, g.m)
	}
	start := a.Stats()

	// Passes 1-2 (expected): superruns via ExpectedTwoPass, written
	// unshuffled into the subsequence grid.
	subseqs, err := makeSubseqStripes(a, l)
	if err != nil {
		return nil, err
	}
	staging, err := a.Arena().Alloc(g.dxb)
	if err != nil {
		freeAll2(subseqs)
		return nil, err
	}
	fellBack := false
	for i := 0; i < l; i++ {
		_, fb, err := expectedTwoPassRange(a, in, i*l*g.m, l*g.m, unshuffleEmit(a, subseqs[i], staging))
		if err != nil {
			a.Arena().Free(staging)
			freeAll2(subseqs)
			return nil, err
		}
		fellBack = fellBack || fb
		// Reporting-only boundary: superrun i complete (recovery
		// restarts from input).
		if err := a.PassDone(pdm.Checkpoint{Alg: "six", Pass: i + 1, N: n}); err != nil {
			a.Arena().Free(staging)
			freeAll2(subseqs)
			return nil, err
		}
	}
	a.Arena().Free(staging)

	// Passes 3-6: the outer merge, shared with SevenPass.
	out, err := outerMerge(a, subseqs, l, n)
	freeAll2(subseqs)
	if err != nil {
		return nil, err
	}
	return finish(a, out, n, start, fellBack), nil
}
