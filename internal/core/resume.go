package core

import (
	"errors"
	"fmt"

	"repro/internal/pdm"
)

// Resume tags.  They name the pass structure a checkpoint belongs to;
// pdm.Array.TakeResume only matches a manifest whose tag (and padded N)
// equals the algorithm that claims it, so a manifest written by one
// algorithm can never corrupt another.
const (
	algMesh3 = "mesh3" // ThreePass1
	algLMM3  = "lmm3"  // ThreePass2
)

// ErrResumeInvalid marks a checkpoint manifest that does not describe a
// resumable state for the algorithm claiming it.  The scheduler treats
// it (like any other resume-attempt failure) as "restart from input".
var ErrResumeInvalid = errors.New("core: resume checkpoint invalid")

// stripeRefs collects placement records for a checkpoint manifest.
func stripeRefs(ss []*pdm.Stripe) []pdm.StripeRef {
	refs := make([]pdm.StripeRef, len(ss))
	for i, s := range ss {
		refs[i] = s.Ref()
	}
	return refs
}

// adoptStripes rebuilds stripe handles from manifest records.
func adoptStripes(a *pdm.Array, refs []pdm.StripeRef) ([]*pdm.Stripe, error) {
	if len(refs) == 0 {
		return nil, fmt.Errorf("%w: no stripes in manifest", ErrResumeInvalid)
	}
	out := make([]*pdm.Stripe, len(refs))
	for i, r := range refs {
		s, err := a.AdoptStripe(r)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrResumeInvalid, err)
		}
		out[i] = s
	}
	return out, nil
}

// viewRefs serializes strided merge views against their backing-stripe
// list for a checkpoint manifest.
func viewRefs(views []seqView, backing []*pdm.Stripe) ([]pdm.ViewRef, error) {
	index := make(map[*pdm.Stripe]int, len(backing))
	for i, s := range backing {
		index[s] = i
	}
	refs := make([]pdm.ViewRef, len(views))
	for i, v := range views {
		bi, ok := index[v.s]
		if !ok {
			return nil, fmt.Errorf("core: view %d not on a backing stripe", i)
		}
		refs[i] = pdm.ViewRef{Stripe: bi, StartBlk: v.startBlk, StrideBlk: v.strideBlk, Keys: v.keys}
	}
	return refs, nil
}

// adoptViews is the inverse of viewRefs over already-adopted backing
// stripes.
func adoptViews(refs []pdm.ViewRef, backing []*pdm.Stripe) ([]seqView, error) {
	if len(refs) == 0 {
		return nil, fmt.Errorf("%w: no views in manifest", ErrResumeInvalid)
	}
	views := make([]seqView, len(refs))
	for i, r := range refs {
		if r.Stripe < 0 || r.Stripe >= len(backing) {
			return nil, fmt.Errorf("%w: view %d references stripe %d of %d", ErrResumeInvalid, i, r.Stripe, len(backing))
		}
		if r.Keys <= 0 || r.StrideBlk <= 0 || r.StartBlk < 0 {
			return nil, fmt.Errorf("%w: view %d has shape %+v", ErrResumeInvalid, i, r)
		}
		views[i] = seqView{s: backing[r.Stripe], startBlk: r.StartBlk, strideBlk: r.StrideBlk, keys: r.Keys}
	}
	return views, nil
}
