package core

import (
	"fmt"

	"repro/internal/memsort"
	"repro/internal/pdm"
)

// SevenPassMesh realizes the paper's Section 6.2 Remark ("we have designed
// matching mesh-based algorithms"): a seven-pass sort of up to M² keys
// whose superrun formation is the Section 3.1 *mesh* algorithm instead of
// the LMM algorithm.  Passes 1–3 run ThreePass1 over each l·M-key segment,
// with the final cleanup emitting the superrun unshuffled into √M
// subsequences (exactly like SevenPass combines its steps 1–2); passes 4–7
// are the shared outer (l, √M)-merge.
//
// The Conclusions note the authors' own mesh variant reached only M²/4
// keys; this composition — mesh run formation under the LMM merge skeleton
// — keeps the full N = l²·M ≤ M² range, supporting the paper's closing
// suggestion that "combining mesh-based techniques with those of [23] ...
// will yield even better results".
func SevenPassMesh(a *pdm.Array, in *pdm.Stripe) (*Result, error) {
	g, err := checkGeometry(a)
	if err != nil {
		return nil, err
	}
	n := in.Len()
	l := memsort.Isqrt(n / g.m)
	if l*l*g.m != n || l < 1 || l > g.sqM || g.sqM%l != 0 {
		return nil, fmt.Errorf("core: SevenPassMesh needs N = l^2*M with l dividing sqrt(M); N = %d, M = %d", n, g.m)
	}
	start := a.Stats()

	subseqs, err := makeSubseqStripes(a, l)
	if err != nil {
		return nil, err
	}
	staging, err := a.Arena().Alloc(g.dxb)
	if err != nil {
		freeAll2(subseqs)
		return nil, err
	}
	for i := 0; i < l; i++ {
		if _, err := threePass1Range(a, in, i*l*g.m, l*g.m, unshuffleEmit(a, subseqs[i], staging), false); err != nil {
			a.Arena().Free(staging)
			freeAll2(subseqs)
			return nil, err
		}
		// Reporting-only boundary: superrun i complete (recovery
		// restarts from input).
		if err := a.PassDone(pdm.Checkpoint{Alg: "sevenmesh", Pass: i + 1, N: n}); err != nil {
			a.Arena().Free(staging)
			freeAll2(subseqs)
			return nil, err
		}
	}
	a.Arena().Free(staging)

	out, err := outerMerge(a, subseqs, l, n)
	freeAll2(subseqs)
	if err != nil {
		return nil, err
	}
	return finish(a, out, n, start, false), nil
}
