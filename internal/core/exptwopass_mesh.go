package core

import (
	"errors"
	"fmt"

	"repro/internal/pdm"
	"repro/internal/stream"
)

// ExpTwoPassMesh sorts in with the Section 3.2 variant of the mesh
// algorithm (Theorem 3.2): Step 1 (the submesh sort) is skipped, leaving
// two passes — sort the columns of the (N/√M)×√M mesh view, then the
// rolling cleanup.  Without the submesh pass the dirty band after the
// column sort is only probabilistically small (O(√(rows·log)) rows for a
// random input permutation), so the cleanup verifies its emission order and
// on overflow the algorithm falls back to ThreePass2 on the untouched
// input, exactly as the paper prescribes (2 passes w.h.p., 2+3 on failure).
//
// The mesh view assigns column c the input range [c·(N/√M), (c+1)·(N/√M));
// any fixed relabeling is legitimate since the input is an arbitrary
// striped multiset.  N must be a multiple of M with N/M ≤ √M; the
// Theorem 3.2 capacity for reliable two-pass behaviour is
// N ≈ M·√M / (c·α·ln M).
func ExpTwoPassMesh(a *pdm.Array, in *pdm.Stripe) (*Result, error) {
	g, err := checkGeometry(a)
	if err != nil {
		return nil, err
	}
	n := in.Len()
	l := n / g.m
	if n <= 0 || n%g.m != 0 || l > g.sqM {
		return nil, fmt.Errorf("core: ExpTwoPassMesh needs N a multiple of M with N/M <= sqrt(M); N = %d, M = %d", n, g.m)
	}
	start := a.Stats()
	sq := g.sqM
	colLen := n / sq // rows of the mesh view; ≤ M since l ≤ √M

	// Pass 1: sort columns.  Column c = in[c·colLen, (c+1)·colLen); its
	// segment j (√M keys) goes to block c of band-stripe j.  Columns are
	// processed G = M/colLen at a time so the pass stays fully parallel
	// even for short columns (l < D).
	a.Arena().SetPhase("exptwopassmesh/columns")
	bands := make([]*pdm.Stripe, l)
	for j := range bands {
		s, err := a.NewStripeSkew(g.m, j)
		if err != nil {
			return nil, err
		}
		bands[j] = s
	}
	batch := g.m / colLen
	if batch > sq {
		batch = sq
	}
	colBuf, err := a.Arena().Alloc(batch * colLen)
	if err != nil {
		freeAll(bands)
		return nil, err
	}
	segs := colLen / sq // band segments per column = l
	pass1 := func() error {
		rd, err := stream.NewStripeReader(in, 0, n, batch*colLen)
		if err != nil {
			return err
		}
		defer rd.Close()
		w, err := stream.NewWriter(a)
		if err != nil {
			return err
		}
		for c0 := 0; c0 < sq; c0 += batch {
			cnt := batch
			if c0+cnt > sq {
				cnt = sq - c0
			}
			if err := rd.FillFlat(colBuf[:cnt*colLen]); err != nil {
				w.Close() //nolint:errcheck // the read error takes precedence
				return err
			}
			sortColumns(a.Pool(), colBuf, colLen, cnt)
			addrs := make([]pdm.BlockAddr, 0, cnt*segs)
			views := make([][]int64, 0, cnt*segs)
			for ci := 0; ci < cnt; ci++ {
				col := colBuf[ci*colLen : (ci+1)*colLen]
				for j := 0; j < segs; j++ {
					addrs = append(addrs, bands[j].BlockAddr(c0+ci))
					views = append(views, col[j*sq:(j+1)*sq])
				}
			}
			if err := w.Write(addrs, views); err != nil {
				w.Close() //nolint:errcheck // the write error takes precedence
				return err
			}
		}
		return w.Close()
	}
	err = pass1()
	a.Arena().Free(colBuf)
	if err != nil {
		freeAll(bands)
		return nil, err
	}

	// Pass 2: rolling cleanup over the bands, with detection.
	a.Arena().SetPhase("exptwopassmesh/cleanup")
	out, err := a.NewStripe(n)
	if err != nil {
		freeAll(bands)
		return nil, err
	}
	cleanup := func() error {
		w, err := stream.NewWriter(a)
		if err != nil {
			return err
		}
		rd, err := stream.NewReader(a, l, func(t int) []pdm.BlockAddr {
			return stripeAddrs(bands[t], 0, g.m)
		})
		if err != nil {
			w.Close() //nolint:errcheck // the alloc error takes precedence
			return err
		}
		defer rd.Close()
		readBand := func(t int, dst []int64) error {
			return rd.FillFlat(dst)
		}
		err = rollingPass(a, g.m, l, readBand, streamEmit(w, out))
		if cerr := w.Close(); err == nil {
			err = cerr
		}
		return err
	}
	err = cleanup()
	freeAll(bands)
	a.Arena().SetPhase("")
	if err == nil {
		return finish(a, out, n, start, false), nil
	}
	out.Free()
	if !errors.Is(err, ErrCleanupOverflow) {
		return nil, err
	}
	// Problem detected: abort and re-sort with the Lemma 4.1 algorithm.
	fallback, err := threePass2Range(a, in, 0, n, nil, false)
	if err != nil {
		return nil, err
	}
	return finish(a, fallback, n, start, true), nil
}
