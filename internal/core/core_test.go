package core

import (
	"errors"
	"math"
	"slices"
	"testing"

	"repro/internal/memsort"
	"repro/internal/pdm"
	"repro/internal/workload"
)

// newTestArray builds a PDM with the paper's geometry B = √M and M = C·D·B.
// The whole suite runs with pipelining enabled (prefetch depth > 1): the
// pass counts, traces, and sortedness assertions below therefore prove that
// the streaming layer is invisible to the PDM cost model.
func newTestArray(t *testing.T, m, d int) *pdm.Array {
	t.Helper()
	b := memsort.Isqrt(m)
	a, err := pdm.New(pdm.Config{D: d, B: b, Mem: m,
		Pipeline: pdm.PipelineConfig{Prefetch: 2, WriteBehind: 2}})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// newSyncArray builds the same PDM without pipelining, for assertions about
// the paper's exact memory envelope (the streaming layer legitimately adds
// its configured staging on top).
func newSyncArray(t *testing.T, m, d int) *pdm.Array {
	t.Helper()
	b := memsort.Isqrt(m)
	a, err := pdm.New(pdm.Config{D: d, B: b, Mem: m})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// loadInput stores data on the disks without touching the I/O stats.
func loadInput(t *testing.T, a *pdm.Array, data []int64) *pdm.Stripe {
	t.Helper()
	s, err := a.NewStripe(len(data))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Load(data); err != nil {
		t.Fatal(err)
	}
	a.ResetStats()
	return s
}

// verifySorted checks that res.Out holds exactly the sorted input.
func verifySorted(t *testing.T, res *Result, input []int64) {
	t.Helper()
	if res.Out == nil {
		t.Fatal("nil output stripe")
	}
	got, err := res.Out.Unload()
	if err != nil {
		t.Fatal(err)
	}
	want := append([]int64(nil), input...)
	memsort.Keys(want)
	if !slices.Equal(got, want) {
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("output differs from sorted input first at %d: got %d, want %d", i, got[i], want[i])
			}
		}
		t.Fatalf("output length %d, want %d", len(got), len(want))
	}
}

// assertMemoryEnvelope checks the arena peak stayed within the paper's
// 2M + DB plus the configured pipeline staging (the streaming layer's
// buffers come from the same arena, so its budget is part of the envelope).
func assertMemoryEnvelope(t *testing.T, a *pdm.Array) {
	t.Helper()
	limit := 2*a.Mem() + a.StripeWidth() + a.Config().PipelineStaging()
	if peak := a.Arena().Peak(); peak > limit {
		t.Fatalf("arena peak %d exceeds 2M+DB+staging = %d (phases: %v)", peak, limit, a.Arena().PhasePeaks())
	}
}

func inputs(n, seed int64) map[string][]int64 {
	return map[string][]int64{
		"random":   workload.Perm(int(n), seed),
		"sorted":   workload.Sorted(int(n)),
		"reversed": workload.ReverseSorted(int(n)),
		"dups":     workload.FewDistinct(int(n), 7, seed),
		"zeroone":  workload.ZeroOneK(int(n), int(n)/3, seed),
		"organ":    workload.Organ(int(n)),
	}
}

func TestThreePass1SortsAndTakesThreePasses(t *testing.T) {
	for _, m := range []int{64, 256} {
		a := newTestArray(t, m, 4)
		sq := memsort.Isqrt(m)
		n := m * sq // full capacity M·√M
		for name, data := range inputs(int64(n), int64(m)) {
			in := loadInput(t, a, data)
			res, err := ThreePass1(a, in)
			if err != nil {
				t.Fatalf("M=%d %s: %v", m, name, err)
			}
			verifySorted(t, res, data)
			if res.ReadPasses != 3 || res.WritePasses != 3 {
				t.Fatalf("M=%d %s: passes = %.3f read / %.3f write, want exactly 3",
					m, name, res.ReadPasses, res.WritePasses)
			}
			assertMemoryEnvelope(t, a)
			res.Out.Free()
			in.Free()
		}
	}
}

func TestThreePass1SmallerInputStillSorts(t *testing.T) {
	a := newTestArray(t, 64, 4)
	n := 4 * 64 // l = 4 < √M
	data := workload.Perm(n, 2)
	in := loadInput(t, a, data)
	res, err := ThreePass1(a, in)
	if err != nil {
		t.Fatal(err)
	}
	verifySorted(t, res, data)
}

func TestThreePass1Validation(t *testing.T) {
	a := newTestArray(t, 64, 4)
	in, err := a.NewStripe(64 * 9) // l = 9 > √M = 8
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ThreePass1(a, in); err == nil {
		t.Fatal("oversized input accepted")
	}
	// Wrong block size.
	bad, err := pdm.New(pdm.Config{D: 4, B: 16, Mem: 64})
	if err != nil {
		t.Fatal(err)
	}
	s, err := bad.NewStripe(64)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ThreePass1(bad, s); err == nil {
		t.Fatal("B != sqrt(M) accepted")
	}
}

func TestThreePass2SortsAndTakesThreePasses(t *testing.T) {
	for _, m := range []int{64, 256} {
		a := newTestArray(t, m, 4)
		sq := memsort.Isqrt(m)
		n := m * sq
		for name, data := range inputs(int64(n), int64(m+1)) {
			in := loadInput(t, a, data)
			res, err := ThreePass2(a, in)
			if err != nil {
				t.Fatalf("M=%d %s: %v", m, name, err)
			}
			verifySorted(t, res, data)
			if res.ReadPasses != 3 || res.WritePasses != 3 {
				t.Fatalf("M=%d %s: passes = %.3f read / %.3f write, want exactly 3",
					m, name, res.ReadPasses, res.WritePasses)
			}
			assertMemoryEnvelope(t, a)
			res.Out.Free()
			in.Free()
		}
	}
}

func TestThreePass2PartialCapacity(t *testing.T) {
	a := newTestArray(t, 64, 4)
	for _, l := range []int{1, 2, 4} {
		n := l * 64
		data := workload.Perm(n, int64(l))
		in := loadInput(t, a, data)
		res, err := ThreePass2(a, in)
		if err != nil {
			t.Fatalf("l=%d: %v", l, err)
		}
		verifySorted(t, res, data)
		res.Out.Free()
		in.Free()
	}
}

func TestThreePass2Validation(t *testing.T) {
	a := newTestArray(t, 64, 4)
	in, err := a.NewStripe(64*8 + 64) // l = 9 > √M
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ThreePass2(a, in); err == nil {
		t.Fatal("oversized input accepted")
	}
}

func TestExpTwoPassMeshRandomTwoPasses(t *testing.T) {
	const m = 256
	a := newTestArray(t, m, 4)
	n := 4 * m // well under capacity: dirty band stays narrow
	fellBack := 0
	for trial := 0; trial < 10; trial++ {
		data := workload.Perm(n, int64(trial))
		in := loadInput(t, a, data)
		res, err := ExpTwoPassMesh(a, in)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		verifySorted(t, res, data)
		if res.FellBack {
			fellBack++
		} else if res.ReadPasses != 2 || res.WritePasses != 2 {
			t.Fatalf("trial %d: passes = %.3f/%.3f, want exactly 2", trial, res.ReadPasses, res.WritePasses)
		}
		assertMemoryEnvelope(t, a)
		res.Out.Free()
		in.Free()
	}
	if fellBack > 1 {
		t.Fatalf("%d/10 random trials fell back", fellBack)
	}
}

func TestExpTwoPassMeshAdversarialFallsBack(t *testing.T) {
	const m = 256
	a := newTestArray(t, m, 4)
	sq := memsort.Isqrt(m)
	n := 4 * m
	data := workload.ColumnLoaded(n, sq)
	// The mesh view is column-contiguous, so translate: keys loaded into
	// one mesh column = one contiguous input range; SegmentReversed puts
	// the smallest keys in the last column-range, which the column sort
	// cannot fix.
	data = workload.SegmentReversed(n, n/sq)
	in := loadInput(t, a, data)
	res, err := ExpTwoPassMesh(a, in)
	if err != nil {
		t.Fatal(err)
	}
	verifySorted(t, res, data)
	if !res.FellBack {
		t.Fatal("adversarial input did not trigger fallback")
	}
	// The paper charges 2 wasted + 3 fallback = 5 passes; the detection
	// fires mid-cleanup, so the measured figure is ≤ 5 and > 3.
	if res.ReadPasses <= 3 || res.ReadPasses > 5 {
		t.Fatalf("fallback passes = %.3f read / %.3f write, want in (3, 5]", res.ReadPasses, res.WritePasses)
	}
}

func TestExpectedTwoPassRandom(t *testing.T) {
	for _, m := range []int{256, 1024} {
		a := newTestArray(t, m, 4)
		n1 := ExpectedTwoPassRuns(m, 1)
		if n1 < 2 {
			n1 = 2
		}
		n := n1 * m
		fellBack := 0
		for trial := 0; trial < 10; trial++ {
			data := workload.Perm(n, int64(trial*7))
			in := loadInput(t, a, data)
			res, err := ExpectedTwoPass(a, in)
			if err != nil {
				t.Fatalf("M=%d trial %d: %v", m, trial, err)
			}
			verifySorted(t, res, data)
			if res.FellBack {
				fellBack++
			} else if res.ReadPasses != 2 || res.WritePasses != 2 {
				t.Fatalf("M=%d trial %d: passes = %.3f/%.3f, want exactly 2",
					m, trial, res.ReadPasses, res.WritePasses)
			}
			assertMemoryEnvelope(t, a)
			res.Out.Free()
			in.Free()
		}
		if fellBack > 1 {
			t.Fatalf("M=%d: %d/10 random trials fell back", m, fellBack)
		}
	}
}

func TestExpectedTwoPassAdversarialFallsBack(t *testing.T) {
	const m = 256
	a := newTestArray(t, m, 4)
	n := 4 * m
	data := workload.SegmentReversed(n, m)
	in := loadInput(t, a, data)
	res, err := ExpectedTwoPass(a, in)
	if err != nil {
		t.Fatal(err)
	}
	verifySorted(t, res, data)
	if !res.FellBack {
		t.Fatal("segment-reversed input did not trigger fallback")
	}
	// ≤ 5 = 2 wasted + 3 fallback; detection aborts the wasted pass early.
	if res.ReadPasses <= 3 || res.ReadPasses > 5 {
		t.Fatalf("fallback read passes = %.3f, want in (3, 5]", res.ReadPasses)
	}
}

func TestExpectedTwoPassCapacityFormula(t *testing.T) {
	// Theorem 5.1 formula sanity: capacity grows with M and shrinks with α.
	if ExpectedTwoPassCapacity(1<<20, 1) <= ExpectedTwoPassCapacity(1<<16, 1) {
		t.Fatal("capacity not increasing in M")
	}
	if ExpectedTwoPassCapacity(1<<20, 1) <= ExpectedTwoPassCapacity(1<<20, 3) {
		t.Fatal("capacity not decreasing in alpha")
	}
	// And the run-count helper respects divisibility.
	for _, m := range []int{64, 256, 1024} {
		n1 := ExpectedTwoPassRuns(m, 1)
		if memsort.Isqrt(m)%n1 != 0 {
			t.Fatalf("M=%d: N1 = %d does not divide sqrt(M)", m, n1)
		}
	}
}

func TestSevenPassSortsMSquared(t *testing.T) {
	for _, m := range []int{64, 256} {
		a := newTestArray(t, m, 4)
		n := m * m // l = √M
		data := workload.Perm(n, int64(m))
		in := loadInput(t, a, data)
		res, err := SevenPass(a, in)
		if err != nil {
			t.Fatalf("M=%d: %v", m, err)
		}
		verifySorted(t, res, data)
		if res.ReadPasses != 7 || res.WritePasses != 7 {
			t.Fatalf("M=%d: passes = %.3f read / %.3f write, want exactly 7",
				m, res.ReadPasses, res.WritePasses)
		}
		assertMemoryEnvelope(t, a)
		res.Out.Free()
		in.Free()
	}
}

func TestSevenPassSmallerL(t *testing.T) {
	const m = 64
	a := newTestArray(t, m, 4)
	for _, l := range []int{1, 2, 4} {
		n := l * l * m
		data := workload.Perm(n, int64(l*11))
		in := loadInput(t, a, data)
		res, err := SevenPass(a, in)
		if err != nil {
			t.Fatalf("l=%d: %v", l, err)
		}
		verifySorted(t, res, data)
		res.Out.Free()
		in.Free()
	}
}

func TestSevenPassInputClasses(t *testing.T) {
	const m = 64
	a := newTestArray(t, m, 4)
	n := m * m
	for name, data := range inputs(int64(n), 5) {
		in := loadInput(t, a, data)
		res, err := SevenPass(a, in)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		verifySorted(t, res, data)
		res.Out.Free()
		in.Free()
	}
}

func TestSevenPassValidation(t *testing.T) {
	a := newTestArray(t, 64, 4)
	in, err := a.NewStripe(64 * 3) // not l²M
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SevenPass(a, in); err == nil {
		t.Fatal("non-l²M input accepted")
	}
}

func TestExpectedSixPass(t *testing.T) {
	const m = 256
	a := newTestArray(t, m, 4)
	for _, l := range []int{2, 4} {
		n := l * l * m
		fellBack := 0
		for trial := 0; trial < 5; trial++ {
			data := workload.Perm(n, int64(trial+l*100))
			in := loadInput(t, a, data)
			res, err := ExpectedSixPass(a, in)
			if err != nil {
				t.Fatalf("l=%d trial %d: %v", l, trial, err)
			}
			verifySorted(t, res, data)
			if res.FellBack {
				fellBack++
			} else if l >= a.D() && (res.ReadPasses != 6 || res.WritePasses != 6) {
				// Exact pass counts hold at full parallel occupancy
				// (l ≥ D); below it the per-request step floor inflates
				// the measured figure (the algorithm is designed for
				// l = √M).
				t.Fatalf("l=%d trial %d: passes = %.3f/%.3f, want exactly 6",
					l, trial, res.ReadPasses, res.WritePasses)
			}
			assertMemoryEnvelope(t, a)
			res.Out.Free()
			in.Free()
		}
		if fellBack > 1 {
			t.Fatalf("l=%d: %d/5 trials fell back", l, fellBack)
		}
	}
}

func TestExpectedThreePass(t *testing.T) {
	const m = 256
	a := newTestArray(t, m, 4)
	l := 4
	n := l * l * m
	fellBack := 0
	for trial := 0; trial < 8; trial++ {
		data := workload.Perm(n, int64(trial*31))
		in := loadInput(t, a, data)
		res, err := ExpectedThreePass(a, in)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		verifySorted(t, res, data)
		if res.FellBack {
			fellBack++
		} else if res.ReadPasses != 3 || res.WritePasses != 3 {
			t.Fatalf("trial %d: passes = %.3f/%.3f, want exactly 3",
				trial, res.ReadPasses, res.WritePasses)
		}
		assertMemoryEnvelope(t, a)
		res.Out.Free()
		in.Free()
	}
	if fellBack > 2 {
		t.Fatalf("%d/8 trials fell back", fellBack)
	}
}

func TestExpectedThreePassAdversarial(t *testing.T) {
	const m = 256
	a := newTestArray(t, m, 4)
	l := 4
	n := l * l * m
	data := workload.SegmentReversed(n, l*m)
	in := loadInput(t, a, data)
	res, err := ExpectedThreePass(a, in)
	if err != nil {
		t.Fatal(err)
	}
	verifySorted(t, res, data)
	if !res.FellBack {
		t.Fatal("segment-reversed input did not trigger any fallback")
	}
}

func TestCapacityFormulas(t *testing.T) {
	m := 1 << 20
	if c := ExpectedThreePassCapacity(m, 1); c <= ExpectedTwoPassCapacity(m, 1) {
		t.Fatalf("M^1.75 capacity %d not above M^1.5 capacity %d", c, ExpectedTwoPassCapacity(m, 1))
	}
	if c := ExpectedSixPassCapacity(m, 1); c <= ExpectedThreePassCapacity(m, 1) {
		t.Fatalf("M^2 capacity %d not above M^1.75 capacity %d", c, ExpectedThreePassCapacity(m, 1))
	}
	if ExpectedSixPassCapacity(m, 1) >= m*m {
		t.Fatal("six-pass capacity should be below M^2")
	}
}

func TestIntegerSort(t *testing.T) {
	const m = 64
	a := newTestArray(t, m, 4)
	r := m / memsort.Isqrt(m) // M/B = 8
	n := 64 * m
	data := workload.Uniform(n, 0, int64(r-1), 3)
	in := loadInput(t, a, data)
	res, err := IntegerSort(a, in, r, true)
	if err != nil {
		t.Fatal(err)
	}
	verifySorted(t, res, data)
	// Theorem 7.1: 2(1+µ) passes with µ < 1 including step A.
	if res.ReadPasses >= 4 {
		t.Fatalf("read passes = %.3f, want < 4 = 2(1+µ) with µ<1", res.ReadPasses)
	}
	assertMemoryEnvelope(t, a)
	res.Out.Free()
	in.Free()

	// Without step A: (1+µ) passes, no output stripe.
	in2 := loadInput(t, a, data)
	res2, err := IntegerSort(a, in2, r, false)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Out != nil {
		t.Fatal("unexpected output stripe without rearrange")
	}
	if res2.ReadPasses >= 2 {
		t.Fatalf("read passes = %.3f without step A, want < 2 = 1+µ", res2.ReadPasses)
	}
}

func TestIntegerSortSkewed(t *testing.T) {
	// Heavily skewed buckets still sort correctly; the write steps inflate
	// (the bound degrades toward max_i ceil(N_i/B)) but correctness holds.
	const m = 64
	a := newTestArray(t, m, 4)
	n := 16 * m
	data := workload.Zipf(n, 1.5, 7, 5)
	in := loadInput(t, a, data)
	res, err := IntegerSort(a, in, 8, true)
	if err != nil {
		t.Fatal(err)
	}
	verifySorted(t, res, data)
}

func TestIntegerSortRejectsOutOfRange(t *testing.T) {
	const m = 64
	a := newTestArray(t, m, 4)
	data := workload.Uniform(m, 0, 100, 1) // beyond R = 8
	in := loadInput(t, a, data)
	if _, err := IntegerSort(a, in, 8, true); err == nil {
		t.Fatal("out-of-range keys accepted")
	}
	// The error path must release every streaming buffer (leak regression:
	// a writer left unclosed would pin its staging and flusher goroutine).
	if got := a.Arena().InUse(); got != 0 {
		t.Fatalf("arena holds %d keys after the error path, want 0", got)
	}
}

func TestRadixSort(t *testing.T) {
	const m = 256 // B = 16: large enough for the bucket concentration
	a := newTestArray(t, m, 4)
	n := 64 * m
	universe := int64(1) << 16
	data := workload.Uniform(n, 0, universe-1, 7)
	in := loadInput(t, a, data)
	res, err := RadixSort(a, in, universe)
	if err != nil {
		t.Fatal(err)
	}
	verifySorted(t, res, data)
	// Observation 7.2 shape: (1+ν)·log(N/M)/log(M/B) + 1 passes with ν < 1.
	// log(N/M)/log(M/B) = log_16(64) → 2 scatter rounds, so passes must be
	// below 2·2+1 = 5 (ν < 1) and the prediction with ν = 1/C below that.
	if res.ReadPasses >= 5 {
		t.Fatalf("read passes = %.3f, want < 5 (2 rounds with nu < 1, plus step A)", res.ReadPasses)
	}
	if pred := RadixSortPredictedPasses(n, m, memsort.Isqrt(m), 4); pred >= 5 {
		t.Fatalf("prediction %.3f out of the theorem's range", pred)
	}
	assertMemoryEnvelope(t, a)
	res.Out.Free()
	in.Free()
}

func TestRadixSortMoreRoundsForBiggerN(t *testing.T) {
	const m = 64
	a := newTestArray(t, m, 4)
	universe := int64(1) << 15
	measure := func(n int) float64 {
		data := workload.Uniform(n, 0, universe-1, 3)
		in := loadInput(t, a, data)
		res, err := RadixSort(a, in, universe)
		if err != nil {
			t.Fatal(err)
		}
		verifySorted(t, res, data)
		res.Out.Free()
		in.Free()
		return res.ReadPasses
	}
	small := measure(8 * m)   // 1 scatter round
	large := measure(512 * m) // 3 scatter rounds
	if large <= small {
		t.Fatalf("passes should grow with N: %.3f (small) vs %.3f (large)", small, large)
	}
}

func TestRadixSortAllEqualKeys(t *testing.T) {
	const m = 64
	a := newTestArray(t, m, 4)
	n := 16 * m
	data := make([]int64, n)
	for i := range data {
		data[i] = 42
	}
	in := loadInput(t, a, data)
	res, err := RadixSort(a, in, 1<<12)
	if err != nil {
		t.Fatal(err)
	}
	verifySorted(t, res, data)
}

func TestRadixSortSmallInput(t *testing.T) {
	const m = 64
	a := newTestArray(t, m, 4)
	data := workload.Uniform(m/2, 0, 1000, 9) // fits in memory: 0 rounds
	in := loadInput(t, a, data)
	res, err := RadixSort(a, in, 1024)
	if err != nil {
		t.Fatal(err)
	}
	verifySorted(t, res, data)
	if res.ReadPasses > 1.01 {
		t.Fatalf("in-memory-sized input took %.3f read passes", res.ReadPasses)
	}
}

func TestRadixSortZipf(t *testing.T) {
	const m = 64
	a := newTestArray(t, m, 4)
	n := 32 * m
	data := workload.Zipf(n, 1.2, 1<<12-1, 11)
	in := loadInput(t, a, data)
	res, err := RadixSort(a, in, 1<<12)
	if err != nil {
		t.Fatal(err)
	}
	verifySorted(t, res, data)
}

func TestLowerBound(t *testing.T) {
	// Lemma 2.1 evaluates the Arge–Knudsen–Larsen inequality; the "nearly
	// 2 / nearly 3 passes" readings hold as B·log(M/B) ≫ 3B, i.e. for
	// large M.  Check the formula against the paper's own closed form at
	// the paper-scale M and the asymptotic trend at large M.
	const m = 1024
	b := 32
	p15 := LowerBoundPasses(m*b, m, b)
	// Paper's closed form: I ≥ 2M·(1 − 1.45/lg M)/(1 + 6/lg M), i.e.
	// passes ≥ 2·(1 − 1.45/lg M)/(1 + 6/lg M).
	lgM := math.Log2(float64(m))
	paper := 2 * (1 - 1.45/lgM) / (1 + 6/lgM)
	if math.Abs(p15-paper) > 0.15 {
		t.Fatalf("lower bound %.3f disagrees with the paper's closed form %.3f", p15, paper)
	}
	p20 := LowerBoundPasses(m*m, m, b)
	if p20 <= p15 {
		t.Fatal("bound not increasing in N")
	}
	// Asymptotics: at M = 2^40, B = 2^20 the M^1.5 bound exceeds 1.5 and
	// the M^2-style bound (at M = 2^30) exceeds 2.
	big15 := LowerBoundPasses(1<<60, 1<<40, 1<<20)
	if big15 < 1.5 || big15 > 2 {
		t.Fatalf("asymptotic M^1.5 bound = %.3f, want in [1.5, 2]", big15)
	}
	big20 := LowerBoundPasses(1<<60, 1<<30, 1<<15)
	if big20 < 2 || big20 > 3 {
		t.Fatalf("asymptotic M^2 bound = %.3f, want in [2, 3]", big20)
	}
	if LowerBoundPasses(1, m, b) != 0 || LowerBoundPasses(100, 8, 16) != 0 {
		t.Fatal("degenerate bounds should be 0")
	}
	// The matching algorithms respect the bound: 3 ≥ p15, 7 ≥ p20.
	if 3 < p15 || 7 < p20 {
		t.Fatal("inconsistent bound")
	}
}

func TestLowerBoundB13(t *testing.T) {
	// The paper's Conclusions: with B = M^(1/3) the bound for M√M keys is
	// about 1.75 passes — lower than the 2 at B = √M.
	const m = 1 << 18 // 2^18: B13 = 64, B12 = 512
	b13 := 64
	b12 := 512
	p13 := LowerBoundPasses(m*512, m, b13)
	p12 := LowerBoundPasses(m*512, m, b12)
	if p13 >= p12 {
		t.Fatalf("bound at B=M^1/3 (%.3f) should be below bound at B=sqrt(M) (%.3f)", p13, p12)
	}
}

func TestRollingPassDetectionExactness(t *testing.T) {
	// White-box: rollingPass must accept displacement exactly at the window
	// and reject one past it.
	const m = 64
	a := newTestArray(t, m, 4)
	n := 4 * m
	ok := workload.NearlySorted(n, m, 1)
	chunks := n / m
	read := func(data []int64) func(int, []int64) error {
		return func(t int, dst []int64) error {
			copy(dst, data[t*m:(t+1)*m])
			return nil
		}
	}
	var out []int64
	emit := func(t int, chunk []int64) error {
		out = append(out, chunk...)
		return nil
	}
	if err := rollingPass(a, m, chunks, read(ok), emit); err != nil {
		t.Fatalf("window-sized displacement rejected: %v", err)
	}
	if !memsort.IsSorted(out) {
		t.Fatal("not sorted")
	}
	// Swap two keys 2 chunks apart: displacement 2M > window.
	bad := workload.Sorted(n)
	bad[0], bad[3*m] = bad[3*m], bad[0]
	out = nil
	if err := rollingPass(a, m, chunks, read(bad), emit); !errors.Is(err, ErrCleanupOverflow) {
		t.Fatalf("err = %v, want ErrCleanupOverflow", err)
	}
}

func TestFinishPassArithmetic(t *testing.T) {
	st := pdm.Stats{ReadSteps: 24, WriteSteps: 12}
	_ = st
	if math.Abs(LowerBoundPasses(1024*32, 1024, 32)-LowerBoundPasses(1024*32, 1024, 32)) > 0 {
		t.Fatal("nondeterministic bound")
	}
}
