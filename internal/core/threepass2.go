package core

import (
	"fmt"

	"repro/internal/pdm"
	"repro/internal/stream"
)

// ThreePass2 sorts in with the paper's Section 4 algorithm — the LMM sort
// specialized to B = √M, N ≤ M·√M (Lemma 4.1) — in exactly three passes:
//
//	pass 1: form l = N/M sorted runs of M keys, written unshuffled into
//	        m = √M parts of √M keys each (steps 1–2 combined);
//	pass 2: for each part index j, merge part j of every run in memory
//	        (l·√M ≤ M records per merge, step 3);
//	pass 3: shuffle the merged sequences and repair the ≤ l·m ≤ M dirtiness
//	        with the rolling local sort (step 4).
//
// N must be a positive multiple of M with N/M ≤ √M.
func ThreePass2(a *pdm.Array, in *pdm.Stripe) (*Result, error) {
	start := a.Stats()
	out, err := threePass2Range(a, in, 0, in.Len(), nil)
	if err != nil {
		return nil, err
	}
	return finish(a, out, in.Len(), start, false), nil
}

// threePass2Range runs ThreePass2 over in[off:off+n].  When emit is nil the
// sorted output is written sequentially to a fresh stripe, which is
// returned; otherwise every sorted M-chunk is handed to emit (SevenPass uses
// this to combine its step 2 unshuffle with the final write) and the
// returned stripe is nil.
func threePass2Range(a *pdm.Array, in *pdm.Stripe, off, n int, emit emitFunc) (*pdm.Stripe, error) {
	g, err := checkGeometry(a)
	if err != nil {
		return nil, err
	}
	if n <= 0 || n%g.m != 0 || n/g.m > g.sqM {
		return nil, fmt.Errorf("core: ThreePass2 needs N a multiple of M with N/M <= sqrt(M); N = %d, M = %d", n, g.m)
	}
	a.Arena().SetPhase("threepass2/runs")
	runs, err := formRunsUnshuffled(a, in, off, n, g.m, g.sqM) // pass 1
	if err != nil {
		return nil, err
	}
	a.Arena().SetPhase("threepass2/merge")
	merged, backing, err := mergePartGroups(a, runs, g.sqM, g.sqM) // pass 2
	freeAll(runs)
	if err != nil {
		freeAll(backing)
		return nil, err
	}
	defer freeAll(backing)
	var out *pdm.Stripe
	var w *stream.Writer
	if emit == nil {
		out, err = a.NewStripe(n)
		if err != nil {
			return nil, err
		}
		w, err = stream.NewWriter(a)
		if err != nil {
			out.Free()
			return nil, err
		}
		emit = streamEmit(w, out)
	}
	a.Arena().SetPhase("threepass2/cleanup")
	// Displacement after the shuffle is at most l·m = (N/M)·√M ≤ M, so the
	// M-chunk rolling clean below never overflows; an overflow would be an
	// implementation bug, not an input property.
	err = shuffleCleanup(a, merged, g.m, emit) // pass 3
	if w != nil {
		if cerr := w.Close(); err == nil {
			err = cerr
		}
	}
	if err != nil {
		if out != nil {
			out.Free()
		}
		return nil, fmt.Errorf("core: ThreePass2 internal error: %w", err)
	}
	a.Arena().SetPhase("")
	return out, nil
}
