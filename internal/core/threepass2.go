package core

import (
	"fmt"

	"repro/internal/pdm"
	"repro/internal/stream"
)

// ThreePass2 sorts in with the paper's Section 4 algorithm — the LMM sort
// specialized to B = √M, N ≤ M·√M (Lemma 4.1) — in exactly three passes:
//
//	pass 1: form l = N/M sorted runs of M keys, written unshuffled into
//	        m = √M parts of √M keys each (steps 1–2 combined);
//	pass 2: for each part index j, merge part j of every run in memory
//	        (l·√M ≤ M records per merge, step 3);
//	pass 3: shuffle the merged sequences and repair the ≤ l·m ≤ M dirtiness
//	        with the rolling local sort (step 4).
//
// N must be a positive multiple of M with N/M ≤ √M.
func ThreePass2(a *pdm.Array, in *pdm.Stripe) (*Result, error) {
	start := a.Stats()
	out, err := threePass2Range(a, in, 0, in.Len(), nil, true)
	if err != nil {
		return nil, err
	}
	return finish(a, out, in.Len(), start, false), nil
}

// threePass2Range runs ThreePass2 over in[off:off+n].  When emit is nil the
// sorted output is written sequentially to a fresh stripe, which is
// returned; otherwise every sorted M-chunk is handed to emit (SevenPass uses
// this to combine its step 2 unshuffle with the final write) and the
// returned stripe is nil.
//
// ckpt marks the top-level three-pass invocation: only then does the range
// report pass boundaries through the array's checkpointer and honor an
// armed resume point (nested invocations — SevenPass superruns, the
// expected-algorithm fallbacks — are passes of someone else's structure,
// whose cumulative statistics a mid-range manifest could not reconstruct).
func threePass2Range(a *pdm.Array, in *pdm.Stripe, off, n int, emit emitFunc, ckpt bool) (*pdm.Stripe, error) {
	g, err := checkGeometry(a)
	if err != nil {
		return nil, err
	}
	if n <= 0 || n%g.m != 0 || n/g.m > g.sqM {
		return nil, fmt.Errorf("core: ThreePass2 needs N a multiple of M with N/M <= sqrt(M); N = %d, M = %d", n, g.m)
	}
	var (
		runs      []*pdm.Stripe
		merged    []seqView
		backing   []*pdm.Stripe
		startPass int
	)
	if ckpt {
		if cp := a.TakeResume(algLMM3, n); cp != nil {
			switch cp.Pass {
			case 1:
				runs, err = adoptStripes(a, cp.Stripes["runs"])
			case 2:
				backing, err = adoptStripes(a, cp.Stripes["backing"])
				if err == nil {
					merged, err = adoptViews(cp.Views, backing)
				}
			default:
				err = fmt.Errorf("%w: ThreePass2 manifest at pass %d", ErrResumeInvalid, cp.Pass)
			}
			if err != nil {
				return nil, err
			}
			startPass = cp.Pass
		}
	}
	if startPass < 1 {
		a.Arena().SetPhase("threepass2/runs")
		runs, err = formRunsUnshuffled(a, in, off, n, g.m, g.sqM) // pass 1
		if err != nil {
			return nil, err
		}
		if ckpt {
			if err := a.PassDone(pdm.Checkpoint{Alg: algLMM3, Pass: 1, N: n,
				Stripes: map[string][]pdm.StripeRef{"runs": stripeRefs(runs)}}); err != nil {
				freeAll(runs)
				return nil, err
			}
		}
	}
	if startPass < 2 {
		a.Arena().SetPhase("threepass2/merge")
		merged, backing, err = mergePartGroups(a, runs, g.sqM, g.sqM) // pass 2
		freeAll(runs)
		if err != nil {
			freeAll(backing)
			return nil, err
		}
		if ckpt {
			vrefs, verr := viewRefs(merged, backing)
			if verr == nil {
				verr = a.PassDone(pdm.Checkpoint{Alg: algLMM3, Pass: 2, N: n,
					Stripes: map[string][]pdm.StripeRef{"backing": stripeRefs(backing)},
					Views:   vrefs})
			}
			if verr != nil {
				freeAll(backing)
				return nil, verr
			}
		}
	}
	defer freeAll(backing)
	var out *pdm.Stripe
	var w *stream.Writer
	if emit == nil {
		out, err = a.NewStripe(n)
		if err != nil {
			return nil, err
		}
		w, err = stream.NewWriter(a)
		if err != nil {
			out.Free()
			return nil, err
		}
		emit = streamEmit(w, out)
	}
	a.Arena().SetPhase("threepass2/cleanup")
	// Displacement after the shuffle is at most l·m = (N/M)·√M ≤ M, so the
	// M-chunk rolling clean below never overflows; an overflow would be an
	// implementation bug, not an input property.
	err = shuffleCleanup(a, merged, g.m, emit) // pass 3
	if w != nil {
		if cerr := w.Close(); err == nil {
			err = cerr
		}
	}
	if err != nil {
		if out != nil {
			out.Free()
		}
		return nil, fmt.Errorf("core: ThreePass2 internal error: %w", err)
	}
	a.Arena().SetPhase("")
	return out, nil
}
