package core

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/memsort"
	"repro/internal/pdm"
	"repro/internal/stream"
)

// ExpectedTwoPassCapacity returns the number of keys Theorem 5.1 certifies
// for two-pass sorting at confidence parameter α:
// N = M·√M / ((α+2)·ln M + 2).
func ExpectedTwoPassCapacity(m int, alpha float64) int {
	return int(float64(m) * math.Sqrt(float64(m)) / ((alpha+2)*math.Log(float64(m)) + 2))
}

// ExpectedTwoPassRuns returns the largest usable run count N1 = N/M for a
// PDM with memory m: the largest divisor of √M such that the Lemma 4.2
// displacement bound for N = N1·M keys split into M-key runs stays within
// the M-key cleanup window.  (Divisibility keeps every pass block-aligned.)
func ExpectedTwoPassRuns(m int, alpha float64) int {
	sq := memsort.Isqrt(m)
	best := 1
	for n1 := 1; n1 <= sq; n1++ {
		if sq%n1 != 0 {
			continue
		}
		n := n1 * m
		bound := float64(n)/math.Sqrt(float64(m))*
			math.Sqrt((alpha+2)*math.Log(float64(n))+1) + float64(n)/float64(m)
		if bound <= float64(m) {
			best = n1
		}
	}
	return best
}

// ExpectedTwoPass sorts in with the paper's Section 5 algorithm:
//
//	pass 1: form N1 = N/M sorted runs of M keys each;
//	pass 2: shuffle the runs and repair the Lemma 4.2 displacement with the
//	        rolling local sort, tracking the largest key shipped out.
//
// If the displacement ever exceeds the window — the paper's "problem
// detected" event — the partial output is discarded and the untouched input
// is re-sorted with ThreePass2 (Lemma 4.1), for 2+3 passes total.
//
// N must be a multiple of M with N1 = N/M dividing √M (block alignment of
// the shuffled reads); Theorem 5.1 reliability needs N within
// ExpectedTwoPassCapacity.
func ExpectedTwoPass(a *pdm.Array, in *pdm.Stripe) (*Result, error) {
	start := a.Stats()
	out, fellBack, err := expectedTwoPassRange(a, in, 0, in.Len(), nil)
	if err != nil {
		return nil, err
	}
	return finish(a, out, in.Len(), start, fellBack), nil
}

// expectedTwoPassRange is ExpectedTwoPass over in[off:off+n] with an
// optional emit override (ExpectedSixPass feeds its unshuffling emitter
// here).  It reports whether the fallback path ran.
func expectedTwoPassRange(a *pdm.Array, in *pdm.Stripe, off, n int, emit emitFunc) (*pdm.Stripe, bool, error) {
	g, err := checkGeometry(a)
	if err != nil {
		return nil, false, err
	}
	if n <= 0 || n%g.m != 0 {
		return nil, false, fmt.Errorf("core: ExpectedTwoPass needs N a multiple of M; N = %d, M = %d", n, g.m)
	}
	n1 := n / g.m
	if n1 > g.sqM || g.sqM%n1 != 0 {
		return nil, false, fmt.Errorf("core: ExpectedTwoPass needs N/M dividing sqrt(M); N/M = %d, sqrt(M) = %d", n1, g.sqM)
	}
	a.Arena().SetPhase("expectedtwopass/runs")
	runs, err := formRuns(a, in, off, n, g.m) // pass 1
	if err != nil {
		return nil, false, err
	}
	// Reporting-only boundary at the top-level invocation (nested calls
	// — ExpectedSixPass superruns, ExpectedThreePass segments — report
	// their own structure).  No resume manifest: the expected algorithm
	// must rerun its shuffle gamble from input to keep the fallback
	// decision deterministic.
	if emit == nil {
		if err := a.PassDone(pdm.Checkpoint{Alg: "exp2", Pass: 1, N: n}); err != nil {
			freeAll(runs)
			return nil, false, err
		}
	}
	var out *pdm.Stripe
	var w *stream.Writer
	userEmit := emit != nil
	if !userEmit {
		out, err = a.NewStripe(n)
		if err != nil {
			freeAll(runs)
			return nil, false, err
		}
		w, err = stream.NewWriter(a)
		if err != nil {
			out.Free()
			freeAll(runs)
			return nil, false, err
		}
		emit = streamEmit(w, out)
	}
	a.Arena().SetPhase("expectedtwopass/cleanup")
	err = shuffleCleanup(a, viewsOf(runs), g.m, emit) // pass 2
	if w != nil {
		if cerr := w.Close(); err == nil {
			err = cerr
		}
	}
	freeAll(runs)
	a.Arena().SetPhase("")
	if err == nil {
		return out, false, nil
	}
	if out != nil {
		out.Free()
	}
	if !errors.Is(err, ErrCleanupOverflow) {
		return nil, false, err
	}
	// Problem detected: abort, re-sort the untouched input with the
	// three-pass LMM algorithm, re-emitting through the caller's emitter.
	var fbEmit emitFunc
	if userEmit {
		fbEmit = emit
	}
	fb, err := threePass2Range(a, in, off, n, fbEmit, false)
	if err != nil {
		return nil, true, err
	}
	return fb, true, nil
}
