package core

import (
	"fmt"

	"repro/internal/pdm"
	"repro/internal/stream"
)

// ThreePass1 sorts in with the paper's Section 3.1 mesh algorithm in exactly
// three passes.  The input is viewed as an (N/√M)×√M mesh in row-major
// order (a fixed relabeling of the stripe, so no physical layout assumption
// is needed):
//
//	pass 1: sort each √M×√M submesh into row-major order, vertically
//	        consecutive submeshes with opposite row directions, writing the
//	        submesh out as √M column blocks on per-column skewed stripes;
//	pass 2: sort every column of the whole mesh, writing each sorted column
//	        as √M-row band segments on per-band skewed stripes;
//	pass 3: rolling cleanup over the row-major band sequence.  By the
//	        Shearsort principle at most (N/M)/2 rows are dirty after pass 2
//	        — a contiguous band of ≤ M/2 keys — so the M-key window always
//	        suffices (Theorem 3.1).
//
// N must be a positive multiple of M with N/M ≤ √M (N = M·√M is the
// paper's headline case).
func ThreePass1(a *pdm.Array, in *pdm.Stripe) (*Result, error) {
	start := a.Stats()
	out, err := threePass1Range(a, in, 0, in.Len(), nil, true)
	if err != nil {
		return nil, err
	}
	return finish(a, out, in.Len(), start, false), nil
}

// threePass1Range runs ThreePass1 over in[off:off+n].  When emit is nil the
// sorted output is written sequentially to a fresh stripe, which is
// returned; otherwise every sorted M-chunk is handed to emit (SevenPassMesh
// uses this to write its superruns unshuffled) and the returned stripe is
// nil.
//
// ckpt marks the top-level three-pass invocation: only then does the range
// report pass boundaries through the array's checkpointer and honor an
// armed resume point (see threePass2Range).
func threePass1Range(a *pdm.Array, in *pdm.Stripe, off, n int, emit emitFunc, ckpt bool) (*pdm.Stripe, error) {
	g, err := checkGeometry(a)
	if err != nil {
		return nil, err
	}
	l := n / g.m // number of √M×√M submeshes (and of M-key bands)
	if n <= 0 || n%g.m != 0 || l > g.sqM {
		return nil, fmt.Errorf("core: ThreePass1 needs N a multiple of M with N/M <= sqrt(M); N = %d, M = %d", n, g.m)
	}
	sq := g.sqM

	var cols, bands []*pdm.Stripe
	startPass := 0
	if ckpt {
		if cp := a.TakeResume(algMesh3, n); cp != nil {
			if cp.Pass < 1 || cp.Pass > 2 {
				return nil, fmt.Errorf("%w: ThreePass1 manifest at pass %d", ErrResumeInvalid, cp.Pass)
			}
			// The column stripes stay allocated until the function
			// returns (the uninterrupted run frees them on exit), so
			// every manifest names them alongside the pass-2 bands.
			cols, err = adoptStripes(a, cp.Stripes["cols"])
			if err != nil {
				return nil, err
			}
			if cp.Pass >= 2 {
				bands, err = adoptStripes(a, cp.Stripes["bands"])
				if err != nil {
					return nil, err
				}
			}
			startPass = cp.Pass
		}
	}

	// Pass 1: submesh sort.  Submesh k is the input range [k·M, (k+1)·M);
	// its column c goes to block k of column-stripe c.
	if startPass < 1 {
		a.Arena().SetPhase("threepass1/submesh")
		cols = make([]*pdm.Stripe, sq)
		for c := range cols {
			s, err := a.NewStripeSkew(l*g.b, c)
			if err != nil {
				return nil, err
			}
			cols[c] = s
		}
	}
	defer freeAll(cols)
	if startPass < 1 {
		if err := threePass1Submesh(a, in, cols, off, n, l); err != nil {
			return nil, err
		}
		if ckpt {
			if err := a.PassDone(pdm.Checkpoint{Alg: algMesh3, Pass: 1, N: n,
				Stripes: map[string][]pdm.StripeRef{"cols": stripeRefs(cols)}}); err != nil {
				return nil, err
			}
		}
	}

	// Pass 2: column sort (threePass1Columns).  Band stripes are created
	// here and freed on exit.
	if startPass < 2 {
		a.Arena().SetPhase("threepass1/columns")
		bands = make([]*pdm.Stripe, l)
		for j := range bands {
			s, err := a.NewStripeSkew(g.m, j)
			if err != nil {
				return nil, err
			}
			bands[j] = s
		}
	}
	defer freeAll(bands)
	if startPass < 2 {
		if err := threePass1Columns(a, cols, bands, l); err != nil {
			return nil, err
		}
		if ckpt {
			if err := a.PassDone(pdm.Checkpoint{Alg: algMesh3, Pass: 2, N: n,
				Stripes: map[string][]pdm.StripeRef{
					"cols":  stripeRefs(cols),
					"bands": stripeRefs(bands),
				}}); err != nil {
				return nil, err
			}
		}
	}

	// Pass 3: rolling cleanup over bands in row-major order.  Band j holds
	// exactly the mesh rows [j·√M, (j+1)·√M) as a set; the rolling pass
	// re-sorts each chunk, so the within-band order is immaterial.
	a.Arena().SetPhase("threepass1/cleanup")
	var out *pdm.Stripe
	var w *stream.Writer
	if emit == nil {
		out, err = a.NewStripe(n)
		if err != nil {
			return nil, err
		}
		w, err = stream.NewWriter(a)
		if err != nil {
			out.Free()
			return nil, err
		}
		emit = streamEmit(w, out)
	}
	rd, err := stream.NewReader(a, l, func(t int) []pdm.BlockAddr {
		return stripeAddrs(bands[t], 0, g.m)
	})
	if err != nil {
		if w != nil {
			w.Close() //nolint:errcheck // the alloc error takes precedence
		}
		if out != nil {
			out.Free()
		}
		return nil, err
	}
	readBand := func(t int, dst []int64) error {
		return rd.FillFlat(dst)
	}
	err = rollingPass(a, g.m, l, readBand, emit)
	rd.Close()
	if w != nil {
		if cerr := w.Close(); err == nil {
			err = cerr
		}
	}
	if err != nil {
		if out != nil {
			out.Free()
		}
		return nil, fmt.Errorf("core: ThreePass1 internal error: %w", err)
	}
	a.Arena().SetPhase("")
	return out, nil
}

// threePass1Submesh is pass 1 of ThreePass1: sort each √M×√M submesh and
// scatter its columns (snake direction) into the per-column skewed
// stripes.
func threePass1Submesh(a *pdm.Array, in *pdm.Stripe, cols []*pdm.Stripe, off, n, l int) error {
	g, err := checkGeometry(a)
	if err != nil {
		return err
	}
	sq := g.sqM
	buf, err := a.Arena().Alloc(g.m)
	if err != nil {
		return err
	}
	gather, err := a.Arena().Alloc(g.m)
	if err != nil {
		a.Arena().Free(buf)
		return err
	}
	pass1 := func() error {
		rd, err := stream.NewStripeReader(in, off, n, g.m)
		if err != nil {
			return err
		}
		defer rd.Close()
		w, err := stream.NewWriter(a)
		if err != nil {
			return err
		}
		pool := a.Pool()
		for k := 0; k < l; k++ {
			if err := rd.FillFlat(buf); err != nil {
				w.Close() //nolint:errcheck // the read error takes precedence
				return err
			}
			// gather is dead until the transpose below, so the sort may use
			// it as partitioned-merge scratch.
			pool.SortKeysScratch(buf, gather)
			reversed := k%2 == 1
			// gather[c*√M + r] = column c, row r of the sorted submesh — the
			// snake-direction transpose, split across the workers by column.
			pool.For(g.m, sq, func(_, lo, hi int) {
				for c := lo; c < hi; c++ {
					src := c
					if reversed {
						src = sq - 1 - c
					}
					for r := 0; r < sq; r++ {
						gather[c*sq+r] = buf[r*sq+src]
					}
				}
			})
			addrs := make([]pdm.BlockAddr, sq)
			for c := 0; c < sq; c++ {
				addrs[c] = cols[c].BlockAddr(k)
			}
			if err := w.WriteFlat(addrs, gather); err != nil {
				w.Close() //nolint:errcheck // the write error takes precedence
				return err
			}
		}
		return w.Close()
	}
	err = pass1()
	a.Arena().Free(buf)
	a.Arena().Free(gather)
	return err
}

// threePass1Columns is pass 2 of ThreePass1: sort every mesh column,
// writing each sorted column's band segments into the per-band skewed
// stripes.  Column c is l·√M ≤ M keys; its sorted segment j (√M keys =
// the column's share of band j) goes to block c of band-stripe j.
// Columns are processed G = min(√M, M/colLen) at a time so every I/O
// request spans ~√M blocks even when the columns are short (l < D),
// keeping the pass fully parallel at any input size.
func threePass1Columns(a *pdm.Array, cols, bands []*pdm.Stripe, l int) error {
	g, err := checkGeometry(a)
	if err != nil {
		return err
	}
	sq := g.sqM
	colLen := l * sq
	batch := g.m / colLen // = √M/l ≥ 1
	if batch > sq {
		batch = sq
	}
	colBuf, err := a.Arena().Alloc(batch * colLen)
	if err != nil {
		return err
	}
	pass2 := func() error {
		// The column gathers are pure address arithmetic over the immutable
		// column stripes: pre-plan them so the next batch of columns streams
		// in while this one is sorted and its bands staged behind the writer.
		chunks := (sq + batch - 1) / batch
		rd, err := stream.NewReader(a, chunks, func(bi int) []pdm.BlockAddr {
			c0 := bi * batch
			cnt := batch
			if c0+cnt > sq {
				cnt = sq - c0
			}
			raddrs := make([]pdm.BlockAddr, 0, cnt*l)
			for ci := 0; ci < cnt; ci++ {
				for k := 0; k < l; k++ {
					raddrs = append(raddrs, cols[c0+ci].BlockAddr(k))
				}
			}
			return raddrs
		})
		if err != nil {
			return err
		}
		defer rd.Close()
		w, err := stream.NewWriter(a)
		if err != nil {
			return err
		}
		for c0 := 0; c0 < sq; c0 += batch {
			cnt := batch
			if c0+cnt > sq {
				cnt = sq - c0
			}
			if err := rd.FillFlat(colBuf[:cnt*colLen]); err != nil {
				w.Close() //nolint:errcheck // the read error takes precedence
				return err
			}
			sortColumns(a.Pool(), colBuf, colLen, cnt)
			waddrs := make([]pdm.BlockAddr, 0, cnt*l)
			wviews := make([][]int64, 0, cnt*l)
			for ci := 0; ci < cnt; ci++ {
				col := colBuf[ci*colLen : (ci+1)*colLen]
				for j := 0; j < l; j++ {
					waddrs = append(waddrs, bands[j].BlockAddr(c0+ci))
					wviews = append(wviews, col[j*sq:(j+1)*sq])
				}
			}
			if err := w.Write(waddrs, wviews); err != nil {
				w.Close() //nolint:errcheck // the write error takes precedence
				return err
			}
		}
		return w.Close()
	}
	err = pass2()
	a.Arena().Free(colBuf)
	return err
}
