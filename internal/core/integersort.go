package core

import (
	"fmt"

	"repro/internal/memsort"
	"repro/internal/pdm"
	"repro/internal/stream"
)

// blockSeq is a sequence of keys stored as addressed blocks with per-block
// valid counts — the representation of the bucket runs IntegerSort builds.
// Blocks may be partially full (the paper's "some of the blocks could be
// nonfull"); the directory of counts is in-memory metadata, as in the paper.
type blockSeq struct {
	addrs  []pdm.BlockAddr
	counts []int
	total  int
}

// stripeBlockSeq views a whole stripe as a blockSeq of full blocks.
func stripeBlockSeq(s *pdm.Stripe) blockSeq {
	b := s.Array().B()
	seq := blockSeq{
		addrs:  make([]pdm.BlockAddr, s.Blocks()),
		counts: make([]int, s.Blocks()),
		total:  s.Len(),
	}
	for j := range seq.addrs {
		seq.addrs[j] = s.BlockAddr(j)
		seq.counts[j] = b
	}
	return seq
}

// scatterState carries the per-bucket disk-rotation cursors and the stripes
// backing the scattered runs across scatter passes: every bucket's run is
// striped round-robin across the disks in its own right, continuing across
// phases — the LMM striping of [23] the paper prescribes — so later
// sequential reads of any run achieve full parallelism.
type scatterState struct {
	nextDisk []int
	stripes  []*pdm.Stripe
}

func (st *scatterState) freeStripes() {
	for _, s := range st.stripes {
		s.Free()
	}
	st.stripes = nil
}

// planScatterReads replays scatterPass's accumulate loop against the source
// metadata only (block counts, never key values), yielding the {first
// block, block count} of every vectored read of the pass so the requests
// can be pre-planned for the prefetcher.
func planScatterReads(bufLen, b, m int, counts []int) [][2]int {
	var plan [][2]int
	for blk := 0; blk < len(counts); {
		valid := 0
		for blk < len(counts) {
			aligned := memsort.CeilDiv(valid, b) * b
			slots := (bufLen - aligned) / b
			if slots == 0 || valid >= m {
				break
			}
			batch := len(counts) - blk
			if batch > slots {
				batch = slots
			}
			plan = append(plan, [2]int{blk, batch})
			for i := 0; i < batch; i++ {
				valid += counts[blk+i]
			}
			blk += batch
		}
	}
	return plan
}

// scatterPass streams src and distributes its keys into r bucket runs
// according to bucketOf, which must be monotone nondecreasing in the key
// (true for identity buckets and for any most-significant-digit extractor).
//
// Each phase reads ~M valid keys, groups them in memory, and writes only
// FULL blocks: every bucket keeps one partial "carry" block in memory
// between phases (R·B = M extra keys, inside the paper's memory envelope),
// so padding appears only in the final flush — at most one non-full block
// per bucket for the whole pass, which is what keeps the paper's µ < 1.
// Blocks are placed on each bucket's own round-robin disk rotation (the LMM
// striping of [23]), so later sequential reads of any run are fully
// parallel.
func scatterPass(a *pdm.Array, src blockSeq, r int, bucketOf func(int64) int, st *scatterState) ([]blockSeq, error) {
	g, err := checkGeometry(a)
	if err != nil {
		return nil, err
	}
	children := make([]blockSeq, r)
	if src.total == 0 {
		return children, nil
	}
	buf, err := a.Arena().Alloc(g.m + g.b)
	if err != nil {
		return nil, err
	}
	defer a.Arena().Free(buf)
	carry, err := a.Arena().Alloc(r * g.b)
	if err != nil {
		return nil, err
	}
	defer a.Arena().Free(carry)
	carryCnt := make([]int, r)
	if st.nextDisk == nil {
		st.nextDisk = make([]int, r)
		for i := range st.nextDisk {
			st.nextDisk[i] = i % g.d
		}
	}
	// The read batching depends only on the source block counts, so the
	// whole pass pre-plans and the prefetcher streams the next batch while
	// this one is grouped and scattered.
	plan := planScatterReads(len(buf), g.b, g.m, src.counts)
	rd, err := stream.NewReader(a, len(plan), func(t int) []pdm.BlockAddr {
		return src.addrs[plan[t][0] : plan[t][0]+plan[t][1]]
	})
	if err != nil {
		return nil, err
	}
	defer rd.Close()
	w, err := stream.NewWriter(a)
	if err != nil {
		return nil, err
	}

	// placeAndWrite assigns each pending block to its bucket's next
	// rotation disk, backs them with a fresh stripe sized by the most
	// loaded disk, performs one vectored write, and records the blocks in
	// the children directory.
	type pending struct {
		bucket, count int
	}
	placeAndWrite := func(wviews [][]int64, meta []pending) error {
		if len(meta) == 0 {
			return nil
		}
		perDisk := make([]int, g.d)
		targets := make([]int, len(meta))
		for i, m := range meta {
			d := st.nextDisk[m.bucket]
			st.nextDisk[m.bucket] = (d + 1) % g.d
			targets[i] = d
			perDisk[d]++
		}
		rows := 0
		for _, c := range perDisk {
			if c > rows {
				rows = c
			}
		}
		ps, err := a.NewStripe(rows * g.d * g.b)
		if err != nil {
			return err
		}
		st.stripes = append(st.stripes, ps)
		addrs := make([]pdm.BlockAddr, len(meta))
		usedRows := make([]int, g.d)
		for i, d := range targets {
			addrs[i] = ps.BlockAddr(usedRows[d]*g.d + d)
			usedRows[d]++
		}
		if err := w.Write(addrs, wviews); err != nil {
			return err
		}
		for i, m := range meta {
			c := &children[m.bucket]
			c.addrs = append(c.addrs, addrs[i])
			c.counts = append(c.counts, m.count)
			c.total += m.count
		}
		return nil
	}
	fail := func(err error) ([]blockSeq, error) {
		w.Close() //nolint:errcheck // the first error takes precedence
		return nil, err
	}

	for blk := 0; blk < len(src.addrs); {
		// Accumulate close to M *valid* keys before scattering, compacting
		// out the padding of partially-full source blocks after each read.
		valid := 0
		for blk < len(src.addrs) {
			aligned := memsort.CeilDiv(valid, g.b) * g.b
			slots := (len(buf) - aligned) / g.b
			if slots == 0 || valid >= g.m {
				break
			}
			batch := len(src.addrs) - blk
			if batch > slots {
				batch = slots
			}
			// This is, by construction, the next pre-planned request.
			views := make([][]int64, batch)
			for i := range views {
				views[i] = buf[aligned+i*g.b : aligned+(i+1)*g.b]
			}
			if err := rd.Fill(views); err != nil {
				return fail(err)
			}
			for i := 0; i < batch; i++ {
				cnt := src.counts[blk+i]
				copy(buf[valid:valid+cnt], buf[aligned+i*g.b:aligned+i*g.b+cnt])
				valid += cnt
			}
			blk += batch
		}

		// Group by bucket: bucketOf is monotone in the key, so a key sort
		// groups the buckets in value order, and the parallel histogram
		// yields each bucket's extent without rescanning the keys.
		pool := a.Pool()
		pool.SortKeys(buf[:valid])
		bcounts, ok := pool.Histogram(buf[:valid], r, bucketOf)
		if !ok {
			for _, k := range buf[:valid] {
				if bkt := bucketOf(k); bkt < 0 || bkt >= r {
					return fail(fmt.Errorf("core: key %d maps to bucket %d outside [0,%d)", k, bkt, r))
				}
			}
			return fail(fmt.Errorf("core: bucket histogram failed without an offending key"))
		}

		// Assemble this phase's full blocks: carry-completion blocks (the
		// in-memory partial topped up from the group) followed by direct
		// full blocks out of buf.  Sub-block remainders are recorded and
		// moved into the carry after the write (the carry segment may be
		// serving as a completion-block view until then).
		var wviews [][]int64
		var meta []pending
		type tail struct {
			bucket, from, to int
		}
		var tails []tail
		pos := 0
		for bkt := 0; bkt < r; bkt++ {
			if bcounts[bkt] == 0 {
				continue
			}
			end := pos + bcounts[bkt]
			c := carryCnt[bkt]
			seg := carry[bkt*g.b : (bkt+1)*g.b]
			if c+(end-pos) < g.b {
				// Not enough for a block: everything joins the carry now
				// (the segment is not pending a write in this case).
				copy(seg[c:], buf[pos:end])
				carryCnt[bkt] += end - pos
				pos = end
				continue
			}
			if c > 0 {
				copy(seg[c:], buf[pos:pos+g.b-c])
				pos += g.b - c
				wviews = append(wviews, seg)
				meta = append(meta, pending{bkt, g.b})
				carryCnt[bkt] = 0
			}
			for end-pos >= g.b {
				wviews = append(wviews, buf[pos:pos+g.b])
				meta = append(meta, pending{bkt, g.b})
				pos += g.b
			}
			if pos < end {
				tails = append(tails, tail{bkt, pos, end})
				pos = end
			}
		}
		if err := placeAndWrite(wviews, meta); err != nil {
			return fail(err)
		}
		for _, tl := range tails {
			seg := carry[tl.bucket*g.b : (tl.bucket+1)*g.b]
			copy(seg, buf[tl.from:tl.to])
			carryCnt[tl.bucket] = tl.to - tl.from
		}
	}

	// Final flush: one padded non-full block per bucket still carrying keys
	// — the only padding of the whole pass.
	var wviews [][]int64
	var meta []pending
	for bkt := 0; bkt < r; bkt++ {
		if carryCnt[bkt] > 0 {
			wviews = append(wviews, carry[bkt*g.b:(bkt+1)*g.b])
			meta = append(meta, pending{bkt, carryCnt[bkt]})
		}
	}
	if err := placeAndWrite(wviews, meta); err != nil {
		return fail(err)
	}
	return children, w.Close()
}

// appender streams compacted keys into a stripe through a write-behind
// writer.  It buffers internally and writes only when its buffer fills, so
// callers may feed it arbitrarily small pieces without degrading the
// parallel write efficiency: every submitted request moves ⌊cap/B⌋ blocks.
// The owner of w must Close it after flush to join the in-flight writes.
type appender struct {
	out  *pdm.Stripe
	w    *stream.Writer
	buf  []int64 // buf[:fill] is pending output
	fill int
	pos  int
	b    int
}

func (ap *appender) append(keys []int64) error {
	for len(keys) > 0 {
		n := len(ap.buf) - ap.fill
		if n > len(keys) {
			n = len(keys)
		}
		copy(ap.buf[ap.fill:], keys[:n])
		ap.fill += n
		keys = keys[n:]
		if ap.fill == len(ap.buf) {
			full := (ap.fill / ap.b) * ap.b
			if err := ap.w.WriteFlat(stripeAddrs(ap.out, ap.pos, full), ap.buf[:full]); err != nil {
				return err
			}
			ap.pos += full
			copy(ap.buf, ap.buf[full:ap.fill])
			ap.fill -= full
		}
	}
	return nil
}

func (ap *appender) flush() error {
	if ap.fill == 0 {
		return nil
	}
	if ap.fill%ap.b != 0 {
		return fmt.Errorf("core: appender flush with %d keys not block aligned", ap.fill)
	}
	err := ap.w.WriteFlat(stripeAddrs(ap.out, ap.pos, ap.fill), ap.buf[:ap.fill])
	ap.pos += ap.fill
	ap.fill = 0
	return err
}

// streamBlockSeqs reads the concatenation of the given runs' blocks in
// large balanced batches (batchBlocks per vectored request) and hands each
// block's compacted keys to sink(run index, keys).  The per-run round-robin
// striping makes every batch spread evenly across the disks regardless of
// where run boundaries fall.
func streamBlockSeqs(a *pdm.Array, g geometry, runs []blockSeq, raw []int64, sink func(run int, keys []int64) error) error {
	batchBlocks := len(raw) / g.b
	if batchBlocks == 0 {
		return fmt.Errorf("core: raw buffer smaller than one block")
	}
	var addrs []pdm.BlockAddr
	var counts []int
	var owner []int
	for ri, run := range runs {
		addrs = append(addrs, run.addrs...)
		counts = append(counts, run.counts...)
		for range run.addrs {
			owner = append(owner, ri)
		}
	}
	chunks := memsort.CeilDiv(len(addrs), batchBlocks)
	rd, err := stream.NewReader(a, chunks, func(t int) []pdm.BlockAddr {
		lo := t * batchBlocks
		hi := lo + batchBlocks
		if hi > len(addrs) {
			hi = len(addrs)
		}
		return addrs[lo:hi]
	})
	if err != nil {
		return err
	}
	defer rd.Close()
	for pos := 0; pos < len(addrs); {
		batch := len(addrs) - pos
		if batch > batchBlocks {
			batch = batchBlocks
		}
		if err := rd.FillFlat(raw[:batch*g.b]); err != nil {
			return err
		}
		for i := 0; i < batch; i++ {
			if err := sink(owner[pos+i], raw[i*g.b:i*g.b+counts[pos+i]]); err != nil {
				return err
			}
		}
		pos += batch
	}
	return nil
}

// rearrangePass is the paper's step A: read the bucket runs in value order
// and write the keys placed contiguously across the disks.  Keys within one
// bucket are equal (bucket = value), so no re-sorting is needed.
func rearrangePass(a *pdm.Array, runs []blockSeq, n int) (*pdm.Stripe, error) {
	g, err := checkGeometry(a)
	if err != nil {
		return nil, err
	}
	out, err := a.NewStripe(n)
	if err != nil {
		return nil, err
	}
	raw, err := a.Arena().Alloc(g.m / 2)
	if err != nil {
		out.Free()
		return nil, err
	}
	defer a.Arena().Free(raw)
	apBuf, err := a.Arena().Alloc(g.m + g.b)
	if err != nil {
		out.Free()
		return nil, err
	}
	defer a.Arena().Free(apBuf)
	w, err := stream.NewWriter(a)
	if err != nil {
		out.Free()
		return nil, err
	}
	ap := &appender{out: out, w: w, buf: apBuf, b: g.b}
	err = streamBlockSeqs(a, g, runs, raw, func(_ int, keys []int64) error {
		return ap.append(keys)
	})
	if err == nil {
		err = ap.flush()
	}
	if cerr := w.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		out.Free()
		return nil, err
	}
	return out, nil
}

// IntegerSort sorts in with the paper's Section 7 algorithm: the keys,
// integers in [0, r) with r defaulting to M/B when r ≤ 0, are distributed
// into r bucket runs in one streaming pass of bucketed block writes
// ((1+µ) passes, µ < 1, from the padding of partial blocks — Theorem 7.1).
// With rearrange, step A places the output contiguously for another (1+µ)
// passes; without it the result remains as padded bucket runs and Out is
// nil (the Result then only reports the I/O accounting).
//
// Keys equal within a bucket are not ordered further — with r = M/B and
// bucket = key value this is a full sort of the bounded-universe keys.
func IntegerSort(a *pdm.Array, in *pdm.Stripe, r int, rearrange bool) (*Result, error) {
	g, err := checkGeometry(a)
	if err != nil {
		return nil, err
	}
	if r <= 0 {
		r = g.m / g.b
	}
	start := a.Stats()
	st := &scatterState{}
	defer st.freeStripes()
	a.Arena().SetPhase("integersort/scatter")
	runs, err := scatterPass(a, stripeBlockSeq(in), r, func(k int64) int { return int(k) }, st)
	if err != nil {
		return nil, err
	}
	// Reporting-only pass boundary: the scatter's bucket directory lives
	// in memory, so recovery restarts from input rather than resuming.
	if err := a.PassDone(pdm.Checkpoint{Alg: "intsort", Pass: 1, N: in.Len()}); err != nil {
		return nil, err
	}
	var out *pdm.Stripe
	if rearrange {
		a.Arena().SetPhase("integersort/rearrange")
		out, err = rearrangePass(a, runs, in.Len())
		if err != nil {
			return nil, err
		}
		if err := a.PassDone(pdm.Checkpoint{Alg: "intsort", Pass: 2, N: in.Len()}); err != nil {
			return nil, err
		}
	}
	a.Arena().SetPhase("")
	return finish(a, out, in.Len(), start, false), nil
}
