package core

import (
	"math"
)

// LowerBoundIOs returns the Arge–Knudsen–Larsen lower bound on the number
// of block I/O operations any comparison-based algorithm needs to sort n
// keys on a single disk with block size b and memory m (Lemma 2.1's source):
//
//	log(N!) ≤ N·log B + I·(B·log((M−B)/B) + 3B)
//
// solved for I.  Logs are base 2; log(N!) is computed exactly via lgamma.
func LowerBoundIOs(n, m, b int) float64 {
	if n <= 1 || b <= 0 || m <= b {
		return 0
	}
	lgFact, _ := math.Lgamma(float64(n) + 1)
	lgFact /= math.Ln2
	num := lgFact - float64(n)*math.Log2(float64(b))
	den := float64(b)*math.Log2(float64(m-b)/float64(b)) + 3*float64(b)
	if den <= 0 || num <= 0 {
		return 0
	}
	return num / den
}

// LowerBoundPasses converts LowerBoundIOs into read passes: one pass over n
// keys is n/b block reads (the PDM with D disks performs them D at a time,
// which changes the wall-clock but not the pass count, so the bound holds
// for the PDM as well — the argument of Lemma 2.1).
func LowerBoundPasses(n, m, b int) float64 {
	ios := LowerBoundIOs(n, m, b)
	return ios * float64(b) / float64(n)
}
