// Package core implements the paper's PDM sorting algorithms — the primary
// contribution of Rajasekaran & Sen (IPPS 2005) — as explicitly scheduled
// passes over a pdm.Array:
//
//   - ThreePass1 (§3.1): mesh-based, 3 passes, M·√M keys.
//   - ExpTwoPassMesh (§3.2): 2 passes w.h.p., ~M·√M/log M keys.
//   - ThreePass2 (§4): LMM-based, 3 passes, M·√M keys.
//   - ExpectedTwoPass (§5): 2 passes w.h.p., ~M·√M/log M keys.
//   - ExpectedThreePass (§6): 3 passes w.h.p., ~M^1.75 keys.
//   - SevenPass (§6.1): 7 passes, M² keys.
//   - ExpectedSixPass (§6.2): 6 passes w.h.p., ~M²/log M keys.
//   - IntegerSort / RadixSort (§7): O(1)-pass integer sorting.
//
// All comparison algorithms use block size B = √M, per the paper.  Every
// in-core buffer comes from the array's Arena, so tests can assert the
// algorithms respect the memory model (2M peak during cleanup phases — the
// paper's own Section 5 envelope — and M + DB elsewhere).
package core
