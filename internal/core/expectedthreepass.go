package core

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/memsort"
	"repro/internal/pdm"
)

// ExpectedThreePassCapacity returns the key count Theorem 6.1 certifies for
// three-pass sorting: M^1.75 / ((α+2)·ln M + 2)^(3/4).
func ExpectedThreePassCapacity(m int, alpha float64) int {
	return int(math.Pow(float64(m), 1.75) / math.Pow((alpha+2)*math.Log(float64(m))+2, 0.75))
}

// ExpectedThreePass sorts in with the paper's Section 6 algorithm:
//
//	passes 1-2 (expected): form N2 = N/(l·M) long runs of l·M keys each
//	        using ExpectedTwoPass on each segment;
//	pass 3: shuffle the N2 long runs and repair the Lemma 4.2 displacement
//	        with the rolling local sort, exactly as in ExpectedTwoPass's
//	        second pass.
//
// Failures are detected by the largest-key-shipped check at either level.
// A segment-level overflow falls back to ThreePass2 on that segment (+3
// passes over it); an overflow in the final pass falls back to SevenPass on
// the whole input (+7 passes), the alternate the paper names in Section 6.
//
// N must equal l²·M with l dividing √M (so the fallback geometry is always
// valid); the reliable-regime capacity is ExpectedThreePassCapacity.
func ExpectedThreePass(a *pdm.Array, in *pdm.Stripe) (*Result, error) {
	g, err := checkGeometry(a)
	if err != nil {
		return nil, err
	}
	n := in.Len()
	l := memsort.Isqrt(n / g.m)
	if l*l*g.m != n || l < 1 || l > g.sqM || g.sqM%l != 0 {
		return nil, fmt.Errorf("core: ExpectedThreePass needs N = l^2*M with l dividing sqrt(M); N = %d, M = %d", n, g.m)
	}
	start := a.Stats()
	segLen := l * g.m

	// Passes 1-2 (expected): long runs via ExpectedTwoPass per segment.
	longRuns := make([]*pdm.Stripe, l)
	fellBack := false
	for i := 0; i < l; i++ {
		// Each long run lives on its own skewed stripe; skews are spaced
		// by the per-chunk block count √M/l so the final shuffled reads
		// tile the disks exactly.
		run, fb, err := expectedTwoPassSkewed(a, in, i*segLen, segLen, i*(g.sqM/l))
		if err != nil {
			freeAll(longRuns)
			return nil, err
		}
		fellBack = fellBack || fb
		longRuns[i] = run
	}

	// Pass 3: shuffle the long runs + rolling cleanup.
	a.Arena().SetPhase("expectedthreepass/cleanup")
	out, err := a.NewStripe(n)
	if err != nil {
		freeAll(longRuns)
		return nil, err
	}
	err = shuffleCleanup(a, viewsOf(longRuns), g.m, sequentialEmit(out))
	freeAll(longRuns)
	a.Arena().SetPhase("")
	if err == nil {
		return finish(a, out, n, start, fellBack), nil
	}
	out.Free()
	if !errors.Is(err, ErrCleanupOverflow) {
		return nil, err
	}
	// Final-pass overflow: the paper's named alternate is the seven-pass
	// algorithm on the whole (untouched) input.
	res, err := SevenPass(a, in)
	if err != nil {
		return nil, err
	}
	return finish(a, res.Out, n, start, true), nil
}

// expectedTwoPassSkewed runs expectedTwoPassRange over in[off:off+n] but
// writes the sorted result to a stripe with the given skew (the emit path
// writes sequentially, so only the stripe allocation differs).
func expectedTwoPassSkewed(a *pdm.Array, in *pdm.Stripe, off, n, skew int) (*pdm.Stripe, bool, error) {
	out, err := a.NewStripeSkew(n, skew)
	if err != nil {
		return nil, false, err
	}
	_, fb, err := expectedTwoPassRange(a, in, off, n, sequentialEmit(out))
	if err != nil {
		out.Free()
		return nil, false, err
	}
	return out, fb, nil
}
