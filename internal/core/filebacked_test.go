package core

import (
	"testing"

	"repro/internal/memsort"
	"repro/internal/pdm"
	"repro/internal/workload"
)

// TestAllAlgorithmsOnFileDisks runs every algorithm end-to-end against
// real file-backed disks (one goroutine per disk), asserting identical
// results and identical pass accounting to the in-memory backend.
func TestAllAlgorithmsOnFileDisks(t *testing.T) {
	const m = 256
	b := memsort.Isqrt(m)
	cfg := pdm.Config{D: 4, B: b, Mem: m}

	algs := map[string]struct {
		n   int
		run func(*pdm.Array, *pdm.Stripe) (*Result, error)
	}{
		"ThreePass1":        {m * 16, ThreePass1},
		"ThreePass2":        {m * 16, ThreePass2},
		"ExpTwoPassMesh":    {m * 4, ExpTwoPassMesh},
		"ExpectedTwoPass":   {m * 2, ExpectedTwoPass},
		"ExpectedThreePass": {m * 4, ExpectedThreePass},
		"SevenPass":         {m * 16, SevenPass},
		"ExpectedSixPass":   {m * 4, ExpectedSixPass},
		"IntegerSort": {m * 8, func(a *pdm.Array, in *pdm.Stripe) (*Result, error) {
			return IntegerSort(a, in, m/b, true)
		}},
		"RadixSort": {m * 8, func(a *pdm.Array, in *pdm.Stripe) (*Result, error) {
			return RadixSort(a, in, 1<<20)
		}},
	}
	for name, tc := range algs {
		t.Run(name, func(t *testing.T) {
			var data []int64
			switch name {
			case "IntegerSort":
				data = workload.Uniform(tc.n, 0, int64(m/b-1), 7)
			case "RadixSort":
				data = workload.Uniform(tc.n, 0, (1<<20)-1, 7)
			default:
				data = workload.Perm(tc.n, 7)
			}

			// In-memory reference run.
			am, err := pdm.New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			inm := loadInput(t, am, data)
			resm, err := tc.run(am, inm)
			if err != nil {
				t.Fatal(err)
			}

			// File-backed run.
			af, err := pdm.NewFileArray(cfg, t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			defer af.Close()
			inf := loadInput(t, af, data)
			resf, err := tc.run(af, inf)
			if err != nil {
				t.Fatal(err)
			}
			verifySorted(t, resf, data)
			if resf.ReadPasses != resm.ReadPasses || resf.WritePasses != resm.WritePasses {
				t.Fatalf("file-backed passes %.3f/%.3f differ from in-memory %.3f/%.3f",
					resf.ReadPasses, resf.WritePasses, resm.ReadPasses, resm.WritePasses)
			}
			if resf.FellBack != resm.FellBack {
				t.Fatal("fallback behaviour differs between backends")
			}
		})
	}
}
