package core

import (
	"testing"

	"repro/internal/pdm"
	"repro/internal/workload"
)

// traceOf runs alg on a fresh machine over the given input and returns the
// complete I/O trace (block addresses in request order).
func traceOf(t *testing.T, m int, data []int64, alg func(*pdm.Array, *pdm.Stripe) (*Result, error)) []pdm.TraceOp {
	t.Helper()
	a := newTestArray(t, m, 4)
	in := loadInput(t, a, data)
	a.EnableTrace()
	res, err := alg(a, in)
	if err != nil {
		t.Fatal(err)
	}
	if res.FellBack {
		t.Fatal("input unexpectedly triggered the fallback; pick a tamer one for the obliviousness check")
	}
	verifySorted(t, res, data)
	return a.Trace()
}

// TestComparisonAlgorithmsAreOblivious verifies the paper's Section 1
// claim: "the LMM sort ... and all the algorithms in this paper (except for
// the integer sorting algorithm) are oblivious".  An oblivious algorithm's
// I/O request sequence depends only on N and the machine, never on the key
// values — checked here by comparing complete traces across different
// inputs of the same size.
func TestComparisonAlgorithmsAreOblivious(t *testing.T) {
	algs := map[string]struct {
		m, n int
		run  func(*pdm.Array, *pdm.Stripe) (*Result, error)
	}{
		"ThreePass1":      {256, 256 * 16, ThreePass1},
		"ThreePass2":      {256, 256 * 16, ThreePass2},
		"SevenPass":       {256, 256 * 256, SevenPass},
		"ExpectedTwoPass": {256, 256 * 2, ExpectedTwoPass}, // success path
		"ExpTwoPassMesh":  {256, 256 * 2, ExpTwoPassMesh},  // success path
		// The nested probabilistic algorithms need comfortable Lemma 4.2
		// margins to stay on the success path across all seeds.
		"ExpectedThreePass": {1024, 1024 * 4, ExpectedThreePass},
		"ExpectedSixPass":   {1024, 1024 * 4, ExpectedSixPass},
	}
	for name, tc := range algs {
		t.Run(name, func(t *testing.T) {
			ref := traceOf(t, tc.m, workload.Perm(tc.n, 1), tc.run)
			if len(ref) == 0 {
				t.Fatal("empty trace")
			}
			for seed := int64(2); seed <= 4; seed++ {
				got := traceOf(t, tc.m, workload.Perm(tc.n, seed), tc.run)
				if !pdm.TracesEqual(ref, got) {
					t.Fatalf("I/O trace depends on the input (seed %d differs)", seed)
				}
			}
			// Structured inputs too, not just permutations.  Sorted input
			// is avoided for the nested probabilistic algorithms: runs
			// formed from it concentrate disjoint ranges, which is exactly
			// the exception set their fallback exists for (E07/E09 cover
			// that path); here we need the success path on every input.
			structured := [][]int64{
				workload.Organ(tc.n),
				workload.FewDistinct(tc.n, 3, 9),
			}
			if name == "ThreePass1" || name == "ThreePass2" || name == "SevenPass" {
				structured = append(structured, workload.Sorted(tc.n))
			}
			for _, data := range structured {
				if !pdm.TracesEqual(ref, traceOf(t, tc.m, data, tc.run)) {
					t.Fatal("I/O trace depends on the input (structured input differs)")
				}
			}
		})
	}
}

// TestIntegerSortIsNotOblivious confirms the paper's explicit exception:
// the integer sorting algorithm's I/O depends on the key values (bucket
// populations decide the block writes).
func TestIntegerSortIsNotOblivious(t *testing.T) {
	const m = 256
	run := func(data []int64) []pdm.TraceOp {
		a := newTestArray(t, m, 4)
		in := loadInput(t, a, data)
		a.EnableTrace()
		if _, err := IntegerSort(a, in, 16, true); err != nil {
			t.Fatal(err)
		}
		return a.Trace()
	}
	n := m * 8
	uniform := run(workload.Uniform(n, 0, 15, 1))
	skewed := run(workload.FewDistinct(n, 2, 2))
	if pdm.TracesEqual(uniform, skewed) {
		t.Fatal("IntegerSort traces identical across radically different bucket populations")
	}
}

// TestTraceMachinery exercises the recorder itself.
func TestTraceMachinery(t *testing.T) {
	a := newTestArray(t, 64, 4)
	s, err := a.NewStripe(64)
	if err != nil {
		t.Fatal(err)
	}
	a.EnableTrace()
	if err := s.WriteAt(0, make([]int64, 64)); err != nil {
		t.Fatal(err)
	}
	if got := len(a.Trace()); got != 1 {
		t.Fatalf("trace length = %d, want 1", got)
	}
	if !a.Trace()[0].Write {
		t.Fatal("write not recorded as write")
	}
	// Load/Unload must not pollute the trace.
	if err := s.Load(make([]int64, 64)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Unload(); err != nil {
		t.Fatal(err)
	}
	if got := len(a.Trace()); got != 1 {
		t.Fatalf("trace polluted by Load/Unload: length = %d", got)
	}
	a.DisableTrace()
	if a.Trace() != nil {
		t.Fatal("trace survives DisableTrace")
	}
	if !pdm.TracesEqual(nil, nil) {
		t.Fatal("empty traces should be equal")
	}
	if pdm.TracesEqual([]pdm.TraceOp{{Write: true}}, []pdm.TraceOp{{Write: false}}) {
		t.Fatal("direction mismatch not detected")
	}
}
