package core

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/pdm"
)

// errStopAfterPass aborts a run from inside the checkpointer, freezing
// the disks exactly at a pass boundary — the in-process stand-in for a
// crash that happened right after the manifest was journaled.
var errStopAfterPass = errors.New("stop after pass")

type resumeAlg struct {
	name string
	run  func(*pdm.Array, *pdm.Stripe) (*Result, error)
}

func resumeAlgs() []resumeAlg {
	return []resumeAlg{
		{"lmm3", ThreePass2},
		{"mesh3", ThreePass1},
	}
}

// TestResumeBitIdentical interrupts a three-pass sort after each
// completed pass, resumes it on a fresh array over the same disk files,
// and checks the output and the cumulative deterministic statistics are
// bit-identical to an uninterrupted control run.
func TestResumeBitIdentical(t *testing.T) {
	cfg := pdm.Config{D: 4, B: 32, Mem: 1024}
	n := 4 * cfg.Mem
	rng := rand.New(rand.NewSource(42))
	data := make([]int64, n)
	for i := range data {
		data[i] = rng.Int63n(1 << 40)
	}

	for _, alg := range resumeAlgs() {
		t.Run(alg.name, func(t *testing.T) {
			// Control: uninterrupted run.
			ctrl, err := pdm.New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer ctrl.Close()
			in, err := ctrl.NewStripe(n)
			if err != nil {
				t.Fatal(err)
			}
			if err := in.Load(data); err != nil {
				t.Fatal(err)
			}
			want, err := alg.run(ctrl, in)
			if err != nil {
				t.Fatal(err)
			}
			wantOut, err := want.Out.Unload()
			if err != nil {
				t.Fatal(err)
			}

			for stopAfter := 1; stopAfter <= 2; stopAfter++ {
				// Interrupted run on file disks: the checkpointer
				// captures each manifest and kills the run right after
				// pass stopAfter completes.
				dir := t.TempDir()
				a, err := pdm.NewFileArray(cfg, dir)
				if err != nil {
					t.Fatal(err)
				}
				var last *pdm.Checkpoint
				a.SetCheckpointer(func(cp pdm.Checkpoint) error {
					c := cp
					last = &c
					if cp.Pass >= stopAfter {
						return errStopAfterPass
					}
					return nil
				})
				ain, err := a.NewStripe(n)
				if err != nil {
					t.Fatal(err)
				}
				if err := ain.Load(data); err != nil {
					t.Fatal(err)
				}
				if _, err := alg.run(a, ain); !errors.Is(err, errStopAfterPass) {
					t.Fatalf("interrupted run: err = %v, want errStopAfterPass", err)
				}
				if err := a.Close(); err != nil {
					t.Fatal(err)
				}
				if last == nil || last.Pass != stopAfter {
					t.Fatalf("last manifest: %+v, want pass %d", last, stopAfter)
				}

				// Resume on a fresh array over the surviving files.
				disks, err := pdm.OpenFileDisks(dir, cfg.D, cfg.B)
				if err != nil {
					t.Fatal(err)
				}
				b, err := pdm.NewWithDisks(cfg, disks)
				if err != nil {
					t.Fatal(err)
				}
				defer b.Close()
				bin, err := b.NewStripe(n)
				if err != nil {
					t.Fatal(err)
				}
				if err := bin.Load(data); err != nil {
					t.Fatal(err)
				}
				b.SetResume(last)
				got, err := alg.run(b, bin)
				if err != nil {
					t.Fatalf("resumed run (after pass %d): %v", stopAfter, err)
				}
				if !b.ResumeConsumed() {
					t.Fatalf("resume point not consumed (after pass %d)", stopAfter)
				}
				gotOut, err := got.Out.Unload()
				if err != nil {
					t.Fatal(err)
				}
				for i := range wantOut {
					if gotOut[i] != wantOut[i] {
						t.Fatalf("after pass %d: output[%d] = %d, want %d", stopAfter, i, gotOut[i], wantOut[i])
					}
				}
				// Cumulative deterministic stats must be bit-identical.
				if got.IO.BlocksRead != want.IO.BlocksRead ||
					got.IO.BlocksWritten != want.IO.BlocksWritten ||
					got.IO.ReadSteps != want.IO.ReadSteps ||
					got.IO.WriteSteps != want.IO.WriteSteps ||
					got.IO.SimTime != want.IO.SimTime {
					t.Fatalf("after pass %d: resumed IO %+v != control %+v", stopAfter, got.IO, want.IO)
				}
				if got.Passes != want.Passes || got.ReadPasses != want.ReadPasses || got.WritePasses != want.WritePasses {
					t.Fatalf("after pass %d: resumed passes %v/%v/%v != control %v/%v/%v",
						stopAfter, got.ReadPasses, got.WritePasses, got.Passes,
						want.ReadPasses, want.WritePasses, want.Passes)
				}
				// The resumed run's footprint matches too: the restored
				// allocator places everything where the control did.
				if bf, cf := b.DiskFootprint(), ctrl.DiskFootprint(); bf != cf {
					t.Fatalf("after pass %d: footprint %d != control %d", stopAfter, bf, cf)
				}
			}
		})
	}
}

// TestResumeInvalidManifest checks that a manifest lying about its
// stripes fails cleanly (the scheduler's restart-from-input trigger).
func TestResumeInvalidManifest(t *testing.T) {
	cfg := pdm.Config{D: 4, B: 32, Mem: 1024}
	n := 4 * cfg.Mem
	a, err := pdm.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	in, err := a.NewStripe(n)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]int64, n)
	if err := in.Load(data); err != nil {
		t.Fatal(err)
	}
	a.SetResume(&pdm.Checkpoint{Alg: "lmm3", Pass: 1, N: n,
		Alloc: pdm.AllocState{Next: 2},
		Stripes: map[string][]pdm.StripeRef{
			"runs": {{Row0: 100, Skew: 0, Keys: cfg.Mem}},
		}})
	if _, err := ThreePass2(a, in); !errors.Is(err, ErrResumeInvalid) {
		t.Fatalf("resume with bogus manifest: %v, want ErrResumeInvalid", err)
	}
}
