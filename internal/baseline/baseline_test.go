package baseline

import (
	"slices"
	"testing"

	"repro/internal/core"
	"repro/internal/memsort"
	"repro/internal/pdm"
	"repro/internal/workload"
)

// newColumnsortArray builds a PDM with B ≈ M^(1/3), the columnsort regime.
func newColumnsortArray(t *testing.T, m, b, d int) *pdm.Array {
	t.Helper()
	a, err := pdm.New(pdm.Config{D: d, B: b, Mem: m})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func loadInput(t *testing.T, a *pdm.Array, data []int64) *pdm.Stripe {
	t.Helper()
	s, err := a.NewStripe(len(data))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Load(data); err != nil {
		t.Fatal(err)
	}
	a.ResetStats()
	return s
}

func verifySorted(t *testing.T, res *core.Result, input []int64) {
	t.Helper()
	got, err := res.Out.Unload()
	if err != nil {
		t.Fatal(err)
	}
	want := append([]int64(nil), input...)
	memsort.Keys(want)
	if !slices.Equal(got, want) {
		t.Fatal("output differs from sorted input")
	}
}

func TestColumnsortGeometry(t *testing.T) {
	r, s, err := ColumnsortGeometry(4096, 16)
	if err != nil {
		t.Fatal(err)
	}
	if r != 4096 || s != 32 {
		t.Fatalf("geometry = (%d, %d), want (4096, 32)", r, s)
	}
	if 2*(s-1)*(s-1) > r {
		t.Fatal("geometry violates Leighton's condition")
	}
	if _, _, err := ColumnsortGeometry(4097, 16); err == nil {
		t.Fatal("non-dividing block size accepted")
	}
}

func TestColumnsortSortsInThreePasses(t *testing.T) {
	// M = 4096, B = 16 = M^(1/3), D = 8.
	a := newColumnsortArray(t, 4096, 16, 8)
	r, s, err := ColumnsortGeometry(a.Mem(), a.B())
	if err != nil {
		t.Fatal(err)
	}
	n := r * s
	for name, data := range map[string][]int64{
		"random":   workload.Perm(n, 1),
		"sorted":   workload.Sorted(n),
		"reversed": workload.ReverseSorted(n),
		"dups":     workload.FewDistinct(n, 5, 2),
		"zeroone":  workload.ZeroOneK(n, n/2, 3),
	} {
		in := loadInput(t, a, data)
		res, err := Columnsort(a, in, r, s)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		verifySorted(t, res, data)
		if res.ReadPasses != 3 || res.WritePasses != 3 {
			t.Fatalf("%s: passes = %.3f read / %.3f write, want exactly 3",
				name, res.ReadPasses, res.WritePasses)
		}
		res.Out.Free()
		in.Free()
	}
}

func TestColumnsortCapacityBelowLMM(t *testing.T) {
	// Observation 4.1: columnsort sorts ~M^1.5/sqrt(2) keys in 3 passes vs
	// M^1.5 for ThreePass2 — capacity ratio strictly below 1.
	m := 4096
	r, s, err := ColumnsortGeometry(m, 16)
	if err != nil {
		t.Fatal(err)
	}
	lmmCap := m * memsort.Isqrt(m)
	if r*s >= lmmCap {
		t.Fatalf("columnsort capacity %d not below LMM capacity %d", r*s, lmmCap)
	}
	if float64(r*s) < float64(lmmCap)/4 {
		t.Fatalf("columnsort capacity %d implausibly small vs %d", r*s, lmmCap)
	}
}

func TestColumnsortValidation(t *testing.T) {
	a := newColumnsortArray(t, 4096, 16, 8)
	in, err := a.NewStripe(64 * 16)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Columnsort(a, in, 64, 16); err == nil {
		t.Fatal("r < 2(s-1)^2 accepted")
	}
	if _, err := Columnsort(a, in, 128, 8); err == nil {
		t.Fatal("size mismatch accepted")
	}
}

func TestModifiedColumnsortRandomTwoPasses(t *testing.T) {
	a := newColumnsortArray(t, 4096, 16, 8)
	// Far fewer columns than the deterministic geometry allows: random
	// inputs then clean up within the window w.h.p.
	r, s := 4096, 8
	n := r * s
	fellBack := 0
	for trial := 0; trial < 8; trial++ {
		data := workload.Perm(n, int64(trial))
		in := loadInput(t, a, data)
		res, err := ModifiedColumnsort(a, in, r, s)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		verifySorted(t, res, data)
		if res.FellBack {
			fellBack++
		} else if res.ReadPasses != 2 || res.WritePasses != 2 {
			t.Fatalf("trial %d: passes = %.3f/%.3f, want exactly 2",
				trial, res.ReadPasses, res.WritePasses)
		}
		res.Out.Free()
		in.Free()
	}
	if fellBack > 1 {
		t.Fatalf("%d/8 random trials fell back", fellBack)
	}
}

func TestModifiedColumnsortAdversarialFallsBack(t *testing.T) {
	a := newColumnsortArray(t, 4096, 16, 8)
	r, s := 4096, 8
	n := r * s
	// All small keys in one input column: the column sorts cannot spread
	// them, so the window overflows and the fallback must run.
	data := workload.SegmentReversed(n, r)
	in := loadInput(t, a, data)
	res, err := ModifiedColumnsort(a, in, r, s)
	if err != nil {
		t.Fatal(err)
	}
	verifySorted(t, res, data)
	if !res.FellBack {
		t.Fatal("adversarial input did not fall back")
	}
	if res.ReadPasses <= 3 || res.ReadPasses > 5 {
		t.Fatalf("fallback read passes = %.3f, want in (3, 5]", res.ReadPasses)
	}
}

func TestSubblockGeometry(t *testing.T) {
	r, s, b, err := SubblockGeometry(4096)
	if err != nil {
		t.Fatal(err)
	}
	if r > 4096 || r != 4*s*b || b*b != s {
		t.Fatalf("geometry = (r=%d, s=%d, b=%d)", r, s, b)
	}
	if _, _, _, err := SubblockGeometry(8); err == nil {
		t.Fatal("tiny memory accepted")
	}
}

func TestSubblockColumnsortSorts(t *testing.T) {
	m := 4096
	r, s, b, err := SubblockGeometry(m)
	if err != nil {
		t.Fatal(err)
	}
	a := newColumnsortArray(t, m, b, 8)
	n := r * s
	for name, data := range map[string][]int64{
		"random":  workload.Perm(n, 4),
		"zeroone": workload.ZeroOneK(n, n/3, 5),
		"dups":    workload.FewDistinct(n, 9, 6),
	} {
		in := loadInput(t, a, data)
		res, err := SubblockColumnsort(a, in, r, s)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		verifySorted(t, res, data)
		// Five scheduled passes (see doc comment: the original's 4 needs
		// layout tricks beyond this simulator's block model).
		if res.ReadPasses != 5 || res.WritePasses != 5 {
			t.Fatalf("%s: passes = %.3f read / %.3f write, want exactly 5",
				name, res.ReadPasses, res.WritePasses)
		}
		res.Out.Free()
		in.Free()
	}
}

func TestSubblockCapacityBetweenColumnsortAndLMMSquared(t *testing.T) {
	// Observation 6.1's headline: M^(5/3)/4^(2/3) sits between columnsort's
	// M^1.5/sqrt(2) and SevenPass's M^2.  M = 16384 avoids the power-of-
	// four rounding cliff (s = 256 = (M/4)^(2/3) exactly).
	m := 16384
	r, s, _, err := SubblockGeometry(m)
	if err != nil {
		t.Fatal(err)
	}
	rc, sc, err := ColumnsortGeometry(m, 32)
	if err != nil {
		t.Fatal(err)
	}
	if r*s <= rc*sc {
		t.Fatalf("subblock capacity %d not above columnsort capacity %d", r*s, rc*sc)
	}
	if r*s >= m*m {
		t.Fatalf("subblock capacity %d not below M^2 = %d", r*s, m*m)
	}
}

func TestSubblockValidation(t *testing.T) {
	a := newColumnsortArray(t, 4096, 4, 8)
	in, err := a.NewStripe(16 * 16)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SubblockColumnsort(a, in, 16, 16); err == nil {
		t.Fatal("r < 4 s^1.5 accepted")
	}
}

func TestMultiwayMergeSort(t *testing.T) {
	// B = sqrt(M) machine, same as the core algorithms, for an apples-to-
	// apples pass comparison.
	a, err := pdm.New(pdm.Config{D: 4, B: 16, Mem: 256})
	if err != nil {
		t.Fatal(err)
	}
	for _, nM := range []int{1, 4, 16, 64} {
		n := nM * 256
		data := workload.Perm(n, int64(nM))
		in := loadInput(t, a, data)
		res, err := MultiwayMergeSort(a, in)
		if err != nil {
			t.Fatalf("N=%dM: %v", nM, err)
		}
		verifySorted(t, res, data)
		predicted := MultiwayPredictedPasses(n, 256, 16)
		if res.ReadPasses < predicted {
			t.Fatalf("N=%dM: read passes %.3f below the textbook count %.0f?", nM, res.ReadPasses, predicted)
		}
		// Demand reads lose some parallelism but should stay within 2x.
		if res.ReadPasses > 2*predicted {
			t.Fatalf("N=%dM: read passes %.3f far above predicted %.0f", nM, res.ReadPasses, predicted)
		}
		res.Out.Free()
		in.Free()
	}
}

func TestMultiwayPipelinedMatchesSynchronous(t *testing.T) {
	// The streamed merge (prefetched run formation, overlapped lane
	// refills, write-behind output) must issue the identical request
	// sequence: same steps, same blocks, same sorted output.
	cfg := pdm.Config{D: 4, B: 16, Mem: 256}
	pcfg := cfg
	pcfg.Pipeline = pdm.PipelineConfig{Prefetch: 2, WriteBehind: 2}
	for _, nM := range []int{4, 32} {
		n := nM * 256
		data := workload.Perm(n, int64(nM))

		as, err := pdm.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ins := loadInput(t, as, data)
		ress, err := MultiwayMergeSort(as, ins)
		if err != nil {
			t.Fatal(err)
		}

		ap, err := pdm.New(pcfg)
		if err != nil {
			t.Fatal(err)
		}
		inp := loadInput(t, ap, data)
		resp, err := MultiwayMergeSort(ap, inp)
		if err != nil {
			t.Fatal(err)
		}
		verifySorted(t, resp, data)
		if resp.ReadPasses != ress.ReadPasses || resp.WritePasses != ress.WritePasses {
			t.Fatalf("N=%dM: pipelined passes %.3f/%.3f differ from synchronous %.3f/%.3f",
				nM, resp.ReadPasses, resp.WritePasses, ress.ReadPasses, ress.WritePasses)
		}
		if resp.IO.BlocksRead != ress.IO.BlocksRead || resp.IO.BlocksWritten != ress.IO.BlocksWritten {
			t.Fatalf("N=%dM: pipelined blocks %d/%d differ from synchronous %d/%d",
				nM, resp.IO.BlocksRead, resp.IO.BlocksWritten, ress.IO.BlocksRead, ress.IO.BlocksWritten)
		}
	}
}

func TestMultiwayTakesMorePassesThanLMMAtMSquared(t *testing.T) {
	// The paper's framing: at N = M², SevenPass does 7 passes while
	// multiway merge needs 1 + ceil(log_{M/2B}(M)) rounds — compare the
	// textbook numbers (at paper scale M = 10^8, B = 10^4: multiway does
	// 1+2 rounds = 3 passes... the interesting regime is small fan-in).
	// Here just confirm prediction monotonicity and measurement agreement.
	if MultiwayPredictedPasses(256*256, 256, 16) <= MultiwayPredictedPasses(256*4, 256, 16) {
		t.Fatal("prediction not increasing in N")
	}
}

func TestMultiwayValidation(t *testing.T) {
	a, err := pdm.New(pdm.Config{D: 4, B: 16, Mem: 256})
	if err != nil {
		t.Fatal(err)
	}
	in, err := a.NewStripe(16 * 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := MultiwayMergeSort(a, in); err == nil {
		t.Fatal("non-multiple-of-M input accepted")
	}
}
