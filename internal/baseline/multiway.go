package baseline

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/memsort"
	"repro/internal/pdm"
	"repro/internal/stream"
)

// MultiwayMergeSort sorts in with the classical external merge sort the
// paper positions itself against (Section 1: asymptotically optimal — e.g.
// Dementiev–Sanders — but taking more passes at practical sizes): one run
// formation pass, then ⌈log_k(N/M)⌉ k-way merge passes with fan-in
// k = M/(2B) (each lane double-buffered: one block being consumed, one
// block of lookahead, plus a D·B output buffer).
//
// Reads during a merge are demand-driven: whenever a lane's buffer drains
// below one block, the refills are batched into one vectored request.  Runs
// are placed on skewed stripes, so refill batches usually spread across the
// disks, but — unlike the oblivious algorithms — balance is not guaranteed;
// the measured efficiency quantifies the gap (this is the phenomenon that
// motivates forecasting/randomized-cycling in the literature).
func MultiwayMergeSort(a *pdm.Array, in *pdm.Stripe) (*core.Result, error) {
	m, b := a.Mem(), a.B()
	n := in.Len()
	if n%m != 0 {
		return nil, fmt.Errorf("baseline: multiway merge sort needs N a multiple of M; N = %d, M = %d", n, m)
	}
	fanIn := m / (2 * b)
	if fanIn < 2 {
		return nil, fmt.Errorf("baseline: M/(2B) = %d too small for merging", fanIn)
	}
	start := a.Stats()

	// Run formation pass: segment reads prefetched, run writes staged
	// behind the in-memory sorts.
	buf, err := a.Arena().Alloc(m)
	if err != nil {
		return nil, err
	}
	type run struct {
		s   *pdm.Stripe
		len int
	}
	var runs []run
	form := func() error {
		rd, err := stream.NewStripeReader(in, 0, n, m)
		if err != nil {
			return err
		}
		defer rd.Close()
		w, err := stream.NewWriter(a)
		if err != nil {
			return err
		}
		pool := a.Pool()
		for off := 0; off < n; off += m {
			if err := rd.FillFlat(buf); err != nil {
				w.Close() //nolint:errcheck // the read error takes precedence
				return err
			}
			pool.SortKeys(buf)
			st, err := a.NewStripeSkew(m, len(runs))
			if err != nil {
				w.Close() //nolint:errcheck // the alloc error takes precedence
				return err
			}
			addrs, err := st.AddrRange(0, m)
			if err != nil {
				w.Close() //nolint:errcheck // the range error takes precedence
				return err
			}
			if err := w.WriteFlat(addrs, buf); err != nil {
				w.Close() //nolint:errcheck // the write error takes precedence
				return err
			}
			runs = append(runs, run{st, m})
		}
		return w.Close()
	}
	err = form()
	a.Arena().Free(buf)
	if err != nil {
		return nil, err
	}

	// Merge rounds.  The k-way lane merge below stays a serial loser-tree
	// emission on purpose: it is demand-driven (one key per comparison,
	// refills interleaved mid-stream), so there is no resident memory load
	// to cut by splitters — the measured gap against the oblivious
	// algorithms' partitioned merges is part of what the baseline shows.
	for len(runs) > 1 {
		var next []run
		for lo := 0; lo < len(runs); lo += fanIn {
			hi := lo + fanIn
			if hi > len(runs) {
				hi = len(runs)
			}
			srcs := make([]*pdm.Stripe, hi-lo)
			for i, r := range runs[lo:hi] {
				srcs[i] = r.s
			}
			merged, err := mergeRuns(a, srcs, len(next))
			if err != nil {
				return nil, err
			}
			for _, r := range runs[lo:hi] {
				r.s.Free()
			}
			next = append(next, run{merged, merged.Len()})
		}
		runs = next
	}
	out := runs[0].s
	return core.Finish(a, out, n, start, false), nil
}

// lane is one input of a k-way merge: a source stripe with a two-block
// double buffer.
type lane struct {
	s        *pdm.Stripe
	nextBlk  int // next block to fetch
	buf      []int64
	pos, end int // consumable window within buf
}

func mergeRuns(a *pdm.Array, srcs []*pdm.Stripe, skew int) (*pdm.Stripe, error) {
	b := a.B()
	total := 0
	for _, s := range srcs {
		total += s.Len()
	}
	out, err := a.NewStripeSkew(total, skew)
	if err != nil {
		return nil, err
	}
	k := len(srcs)
	laneBuf, err := a.Arena().Alloc(2 * b * k)
	if err != nil {
		out.Free()
		return nil, err
	}
	defer a.Arena().Free(laneBuf)
	outBuf, err := a.Arena().Alloc(a.StripeWidth())
	if err != nil {
		out.Free()
		return nil, err
	}
	defer a.Arena().Free(outBuf)

	lanes := make([]lane, k)
	for i, s := range srcs {
		lanes[i] = lane{s: s, buf: laneBuf[i*2*b : (i+1)*2*b]}
	}

	// Refills are overlapped with merging: each batched top-up request is
	// issued at exactly the point the synchronous code called refill — so
	// the request sequence, statistics, and steps are unchanged — but the
	// transfer runs behind the loser-tree emission and is only joined
	// ("applied") when a lane actually drains.  The in-flight region
	// [end, newEnd) of a lane buffer is disjoint from the consumable window
	// [pos, end), so merging continues safely while the refill lands.
	type update struct{ lane, end int }
	type refillState struct {
		x    *stream.Async
		ends []update
	}
	var pending *refillState
	// Join any in-flight refill before the lane buffers go back to the
	// arena (registered after the Free defers, so it runs first).
	defer func() {
		if pending != nil {
			pending.x.Wait() //nolint:errcheck // shutdown path
		}
	}()
	issueRefill := func() (*refillState, error) {
		var addrs []pdm.BlockAddr
		var views [][]int64
		var ends []update
		for i := range lanes {
			ln := &lanes[i]
			if ln.nextBlk >= ln.s.Blocks() {
				continue
			}
			// Compact the unconsumed tail to the front.
			if ln.pos > 0 {
				copy(ln.buf, ln.buf[ln.pos:ln.end])
				ln.end -= ln.pos
				ln.pos = 0
			}
			end := ln.end
			for end+b <= len(ln.buf) && ln.nextBlk < ln.s.Blocks() {
				addrs = append(addrs, ln.s.BlockAddr(ln.nextBlk))
				views = append(views, ln.buf[end:end+b])
				ln.nextBlk++
				end += b
			}
			if end != ln.end {
				ends = append(ends, update{i, end})
			}
		}
		if len(addrs) == 0 {
			return nil, nil
		}
		x, err := stream.ReadAsync(a, addrs, views)
		if err != nil {
			return nil, err
		}
		return &refillState{x: x, ends: ends}, nil
	}
	apply := func(p *refillState) error {
		if p == nil {
			return nil
		}
		if err := p.x.Wait(); err != nil {
			return err
		}
		for _, u := range p.ends {
			lanes[u.lane].end = u.end
		}
		return nil
	}
	pending, err = issueRefill()
	if err != nil {
		out.Free()
		return nil, err
	}

	w, err := stream.NewWriter(a)
	if err != nil {
		out.Free()
		return nil, err
	}
	fail := func(err error) (*pdm.Stripe, error) {
		w.Close() //nolint:errcheck // the first error takes precedence
		out.Free()
		return nil, err
	}
	written := 0
	outFill := 0
	for written+outFill < total {
		// Emit until some unexhausted lane's buffer drains or the output
		// buffer fills.
		best := -1
		for i := range lanes {
			ln := &lanes[i]
			if ln.pos == ln.end {
				// More of this run is on disk or possibly in flight: the
				// merge cannot proceed past it until a refill lands.
				if ln.nextBlk < ln.s.Blocks() || pending != nil {
					best = -2
					break
				}
				continue
			}
			if best < 0 || lanes[best].buf[lanes[best].pos] > ln.buf[ln.pos] {
				best = i
			}
		}
		switch {
		case best == -2:
			// Join the in-flight refill; if the starving lane is still dry,
			// this is a genuine refill point of the synchronous schedule.
			if pending != nil {
				if err := apply(pending); err != nil {
					return fail(err)
				}
				pending = nil
				continue
			}
			p, err := issueRefill()
			if err != nil {
				return fail(err)
			}
			if err := apply(p); err != nil {
				return fail(err)
			}
		case best >= 0:
			ln := &lanes[best]
			outBuf[outFill] = ln.buf[ln.pos]
			ln.pos++
			outFill++
			if outFill == len(outBuf) {
				waddrs, err := out.AddrRange(written, outFill)
				if err != nil {
					return fail(err)
				}
				if err := w.WriteFlat(waddrs, outBuf); err != nil {
					return fail(err)
				}
				written += outFill
				outFill = 0
				// The synchronous code refilled here; issue the same request
				// and let it fly behind the next stretch of merging.
				if err := apply(pending); err != nil {
					return fail(err)
				}
				pending, err = issueRefill()
				if err != nil {
					return fail(err)
				}
			}
		default:
			return fail(fmt.Errorf("baseline: merge ran dry with %d of %d keys emitted", written+outFill, total))
		}
	}
	if outFill > 0 {
		waddrs, err := out.AddrRange(written, outFill)
		if err != nil {
			return fail(err)
		}
		if err := w.WriteFlat(waddrs, outBuf[:outFill]); err != nil {
			return fail(err)
		}
	}
	if err := w.Close(); err != nil {
		out.Free()
		return nil, err
	}
	return out, nil
}

// MultiwayPredictedPasses returns the textbook pass count for external
// multiway merge sort: 1 + ⌈log_k(N/M)⌉ with k = M/(2B).
func MultiwayPredictedPasses(n, m, b int) float64 {
	k := m / (2 * b)
	if n <= m || k < 2 {
		return 1
	}
	rounds := 0
	runs := memsort.CeilDiv(n, m)
	for runs > 1 {
		runs = memsort.CeilDiv(runs, k)
		rounds++
	}
	return float64(1 + rounds)
}
