package baseline

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/memsort"
	"repro/internal/pdm"
)

// MultiwayMergeSort sorts in with the classical external merge sort the
// paper positions itself against (Section 1: asymptotically optimal — e.g.
// Dementiev–Sanders — but taking more passes at practical sizes): one run
// formation pass, then ⌈log_k(N/M)⌉ k-way merge passes with fan-in
// k = M/(2B) (each lane double-buffered: one block being consumed, one
// block of lookahead, plus a D·B output buffer).
//
// Reads during a merge are demand-driven: whenever a lane's buffer drains
// below one block, the refills are batched into one vectored request.  Runs
// are placed on skewed stripes, so refill batches usually spread across the
// disks, but — unlike the oblivious algorithms — balance is not guaranteed;
// the measured efficiency quantifies the gap (this is the phenomenon that
// motivates forecasting/randomized-cycling in the literature).
func MultiwayMergeSort(a *pdm.Array, in *pdm.Stripe) (*core.Result, error) {
	m, b := a.Mem(), a.B()
	n := in.Len()
	if n%m != 0 {
		return nil, fmt.Errorf("baseline: multiway merge sort needs N a multiple of M; N = %d, M = %d", n, m)
	}
	fanIn := m / (2 * b)
	if fanIn < 2 {
		return nil, fmt.Errorf("baseline: M/(2B) = %d too small for merging", fanIn)
	}
	start := a.Stats()

	// Run formation pass.
	buf, err := a.Arena().Alloc(m)
	if err != nil {
		return nil, err
	}
	type run struct {
		s   *pdm.Stripe
		len int
	}
	var runs []run
	for off := 0; off < n; off += m {
		if err := in.ReadAt(off, buf); err != nil {
			a.Arena().Free(buf)
			return nil, err
		}
		memsort.Keys(buf)
		st, err := a.NewStripeSkew(m, len(runs))
		if err != nil {
			a.Arena().Free(buf)
			return nil, err
		}
		if err := st.WriteAt(0, buf); err != nil {
			a.Arena().Free(buf)
			return nil, err
		}
		runs = append(runs, run{st, m})
	}
	a.Arena().Free(buf)

	// Merge rounds.
	for len(runs) > 1 {
		var next []run
		for lo := 0; lo < len(runs); lo += fanIn {
			hi := lo + fanIn
			if hi > len(runs) {
				hi = len(runs)
			}
			srcs := make([]*pdm.Stripe, hi-lo)
			for i, r := range runs[lo:hi] {
				srcs[i] = r.s
			}
			merged, err := mergeRuns(a, srcs, len(next))
			if err != nil {
				return nil, err
			}
			for _, r := range runs[lo:hi] {
				r.s.Free()
			}
			next = append(next, run{merged, merged.Len()})
		}
		runs = next
	}
	out := runs[0].s
	return core.Finish(a, out, n, start, false), nil
}

// lane is one input of a k-way merge: a source stripe with a two-block
// double buffer.
type lane struct {
	s        *pdm.Stripe
	nextBlk  int // next block to fetch
	buf      []int64
	pos, end int // consumable window within buf
}

func mergeRuns(a *pdm.Array, srcs []*pdm.Stripe, skew int) (*pdm.Stripe, error) {
	b := a.B()
	total := 0
	for _, s := range srcs {
		total += s.Len()
	}
	out, err := a.NewStripeSkew(total, skew)
	if err != nil {
		return nil, err
	}
	k := len(srcs)
	laneBuf, err := a.Arena().Alloc(2 * b * k)
	if err != nil {
		out.Free()
		return nil, err
	}
	defer a.Arena().Free(laneBuf)
	outBuf, err := a.Arena().Alloc(a.StripeWidth())
	if err != nil {
		out.Free()
		return nil, err
	}
	defer a.Arena().Free(outBuf)

	lanes := make([]lane, k)
	for i, s := range srcs {
		lanes[i] = lane{s: s, buf: laneBuf[i*2*b : (i+1)*2*b]}
	}
	// refill tops up every lane that can accept a block, in one request.
	refill := func() error {
		var addrs []pdm.BlockAddr
		var views [][]int64
		for i := range lanes {
			ln := &lanes[i]
			if ln.nextBlk >= ln.s.Blocks() {
				continue
			}
			// Compact the unconsumed tail to the front.
			if ln.pos > 0 {
				copy(ln.buf, ln.buf[ln.pos:ln.end])
				ln.end -= ln.pos
				ln.pos = 0
			}
			for ln.end+b <= len(ln.buf) && ln.nextBlk < ln.s.Blocks() {
				addrs = append(addrs, ln.s.BlockAddr(ln.nextBlk))
				views = append(views, ln.buf[ln.end:ln.end+b])
				ln.nextBlk++
				ln.end += b
			}
		}
		if len(addrs) == 0 {
			return nil
		}
		return a.ReadV(addrs, views)
	}
	if err := refill(); err != nil {
		out.Free()
		return nil, err
	}

	written := 0
	outFill := 0
	for written+outFill < total {
		// Emit until some unexhausted lane's buffer drains or the output
		// buffer fills.
		best := -1
		for i := range lanes {
			ln := &lanes[i]
			if ln.pos == ln.end {
				if ln.nextBlk < ln.s.Blocks() {
					best = -2 // needs refill before we can continue
					break
				}
				continue
			}
			if best < 0 || lanes[best].buf[lanes[best].pos] > ln.buf[ln.pos] {
				best = i
			}
		}
		switch {
		case best == -2:
			if err := refill(); err != nil {
				out.Free()
				return nil, err
			}
		case best >= 0:
			ln := &lanes[best]
			outBuf[outFill] = ln.buf[ln.pos]
			ln.pos++
			outFill++
			if outFill == len(outBuf) {
				if err := out.WriteAt(written, outBuf); err != nil {
					out.Free()
					return nil, err
				}
				written += outFill
				outFill = 0
				if err := refill(); err != nil {
					out.Free()
					return nil, err
				}
			}
		default:
			return nil, fmt.Errorf("baseline: merge ran dry with %d of %d keys emitted", written+outFill, total)
		}
	}
	if outFill > 0 {
		if err := out.WriteAt(written, outBuf[:outFill]); err != nil {
			out.Free()
			return nil, err
		}
	}
	return out, nil
}

// MultiwayPredictedPasses returns the textbook pass count for external
// multiway merge sort: 1 + ⌈log_k(N/M)⌉ with k = M/(2B).
func MultiwayPredictedPasses(n, m, b int) float64 {
	k := m / (2 * b)
	if n <= m || k < 2 {
		return 1
	}
	rounds := 0
	runs := memsort.CeilDiv(n, m)
	for runs > 1 {
		runs = memsort.CeilDiv(runs, k)
		rounds++
	}
	return float64(1 + rounds)
}
