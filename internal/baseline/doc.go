// Package baseline implements the out-of-core sorting algorithms the paper
// compares against, scheduled as accounted PDM passes:
//
//   - Chaudhry–Cormen three-pass columnsort (Observation 4.1) and its
//     probabilistic two-pass variant that skips steps 1–2 (Observation 5.1);
//   - subblock columnsort of Chaudhry–Cormen–Hamon (Observation 6.1);
//   - classical multiway external merge sort (the Section 1 context:
//     asymptotically optimal, but more passes at practical sizes).
//
// The baselines use their own block-size regimes (columnsort wants
// B ≈ M^(1/3); multiway merge works at any B), so harnesses build separate
// pdm.Array instances for them rather than reusing the B = √M arrays of the
// core algorithms — exactly the comparison the paper draws.
package baseline
