package baseline

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/memsort"
	"repro/internal/pdm"
)

// ColumnsortGeometry picks the largest power-of-two column count s (and
// column length r = M) satisfying Leighton's r ≥ 2(s−1)² on a machine with
// memory m and block size b, with the divisibility the PDM schedule needs
// (b | r/s).  Capacity r·s approaches the paper's M·√(M/2) up to
// power-of-two rounding.
func ColumnsortGeometry(m, b int) (r, s int, err error) {
	if m%b != 0 {
		return 0, 0, fmt.Errorf("baseline: B = %d does not divide M = %d", b, m)
	}
	r = m
	for cand := 2; ; cand *= 2 {
		if 2*(cand-1)*(cand-1) > r || r%(cand*b) != 0 || cand > r/b {
			break
		}
		s = cand
	}
	if s == 0 {
		return 0, 0, fmt.Errorf("baseline: no feasible columnsort geometry for M = %d, B = %d", m, b)
	}
	return r, s, nil
}

// Columnsort sorts in with Leighton's columnsort adapted to the PDM the way
// Chaudhry and Cormen do, in exactly three passes:
//
//	pass 1: read each column, sort it (step 1), scatter-write the transpose
//	        (step 2) — source column j lands as s contiguous segments of
//	        r/s keys, one per destination column;
//	pass 2: read each column of the transposed matrix, sort it (step 3),
//	        write it back in place;
//	pass 3: steps 4–8 in one rolling pass: each chunk gathers one column of
//	        the *untransposed* view (s segments of r/s keys), and the
//	        rolling window performs the step-5 sort plus the steps-6–8
//	        half-column merge (every key is within r/2 < r of home).
//
// in must hold exactly r·s keys laid out column-major (any fixed
// relabeling of the stripe).
func Columnsort(a *pdm.Array, in *pdm.Stripe, r, s int) (*core.Result, error) {
	if err := checkColGeometry(a, in, r, s, true); err != nil {
		return nil, err
	}
	start := a.Stats()
	out, err := columnsortTail(a, in, r, s, true)
	if err != nil {
		return nil, err
	}
	return core.Finish(a, out, in.Len(), start, false), nil
}

// ModifiedColumnsort is the Observation 5.1 variant: steps 1–2 are skipped,
// so only passes 2–3 run (two passes).  For a random input permutation the
// rolling window suffices with high probability when r is comfortably above
// the Lemma 4.2 displacement scale; on overflow the untouched input is
// re-sorted with the full three-pass Columnsort (2+3 passes total).
func ModifiedColumnsort(a *pdm.Array, in *pdm.Stripe, r, s int) (*core.Result, error) {
	if err := checkColGeometry(a, in, r, s, false); err != nil {
		return nil, err
	}
	start := a.Stats()
	out, err := columnsortTail(a, in, r, s, false)
	if err == nil {
		return core.Finish(a, out, in.Len(), start, false), nil
	}
	if !errors.Is(err, core.ErrCleanupOverflow) {
		return nil, err
	}
	if r < 2*(s-1)*(s-1) {
		return nil, fmt.Errorf("baseline: fallback infeasible: r = %d < 2(s-1)^2; %w", r, err)
	}
	out, err = columnsortTail(a, in, r, s, true)
	if err != nil {
		return nil, err
	}
	return core.Finish(a, out, in.Len(), start, true), nil
}

func checkColGeometry(a *pdm.Array, in *pdm.Stripe, r, s int, requireTall bool) error {
	b := a.B()
	switch {
	case r <= 0 || s <= 0 || in.Len() != r*s:
		return fmt.Errorf("baseline: %d keys cannot form an %dx%d matrix", in.Len(), r, s)
	case r > a.Mem():
		return fmt.Errorf("baseline: column length %d exceeds memory %d", r, a.Mem())
	case r%b != 0 || (r/s)%b != 0:
		return fmt.Errorf("baseline: geometry r=%d s=%d not block aligned at B=%d", r, s, b)
	case r%2 != 0:
		return fmt.Errorf("baseline: columnsort needs even r, got %d", r)
	case requireTall && r < 2*(s-1)*(s-1):
		return fmt.Errorf("baseline: columnsort needs r >= 2(s-1)^2 = %d, got %d", 2*(s-1)*(s-1), r)
	}
	return nil
}

// columnsortTail runs passes 1–3 (or 2–3 when full is false) and returns
// the sorted output stripe, or core.ErrCleanupOverflow if the final rolling
// pass detects dirt beyond its window (only possible when full is false).
func columnsortTail(a *pdm.Array, in *pdm.Stripe, r, s int, full bool) (*pdm.Stripe, error) {
	b := a.B()
	seg := r / s
	cur := in
	var cols []*pdm.Stripe

	// Pass 1 (steps 1–2), only in the full algorithm: sort source columns
	// and scatter the transpose.  Transpose sends column-major index p to
	// (p mod s)·r + p÷s, so source column j writes destination column d's
	// positions [j·seg, (j+1)·seg) — the d-th residue class of j's keys.
	if full {
		tcols := make([]*pdm.Stripe, s)
		for d := range tcols {
			st, err := a.NewStripeSkew(r, d)
			if err != nil {
				return nil, err
			}
			tcols[d] = st
		}
		buf, err := a.Arena().Alloc(r)
		if err != nil {
			freeStripes(tcols)
			return nil, err
		}
		gather, err := a.Arena().Alloc(r)
		if err != nil {
			a.Arena().Free(buf)
			freeStripes(tcols)
			return nil, err
		}
		for j := 0; j < s; j++ {
			if err := in.ReadAt(j*r, buf); err != nil {
				a.Arena().Free(buf)
				a.Arena().Free(gather)
				freeStripes(tcols)
				return nil, err
			}
			memsort.Keys(buf)
			// Element i of sorted column j has column-major index p=j·r+i;
			// destination column d = p mod s, position p/s.  Since
			// p = j·r + i and consecutive i with i ≡ d−j·r (mod s) map to
			// consecutive destination positions, each destination column
			// receives one contiguous segment.
			addrs := make([]pdm.BlockAddr, 0, r/b)
			views := make([][]int64, 0, r/b)
			for d := 0; d < s; d++ {
				first := ((d-j*r)%s + s) % s // smallest i with (j·r+i) ≡ d (mod s)
				dstOff := (j*r + first) / s
				segBuf := gather[d*seg : (d+1)*seg]
				for k := 0; k < seg; k++ {
					segBuf[k] = buf[first+k*s]
				}
				for blk := 0; blk < seg/b; blk++ {
					addrs = append(addrs, tcols[d].BlockAddr(dstOff/b+blk))
					views = append(views, segBuf[blk*b:(blk+1)*b])
				}
			}
			if err := a.WriteV(addrs, views); err != nil {
				a.Arena().Free(buf)
				a.Arena().Free(gather)
				freeStripes(tcols)
				return nil, err
			}
		}
		a.Arena().Free(buf)
		a.Arena().Free(gather)
		cols = tcols
	} else {
		// Steps 1–2 skipped: the "transposed matrix" is the raw input;
		// view its columns as contiguous ranges of the input stripe.
		cols = nil
	}

	// Pass 2 (step 3): sort each column of the (possibly skipped-)
	// transposed matrix in memory and write it to a fresh column stripe.
	sorted := make([]*pdm.Stripe, s)
	buf, err := a.Arena().Alloc(r)
	if err != nil {
		freeStripes(cols)
		return nil, err
	}
	for j := 0; j < s; j++ {
		var err error
		if cols != nil {
			err = cols[j].ReadAt(0, buf)
		} else {
			err = cur.ReadAt(j*r, buf)
		}
		if err == nil {
			memsort.Keys(buf)
			var st *pdm.Stripe
			st, err = a.NewStripeSkew(r, j)
			if err == nil {
				err = st.WriteAt(0, buf)
				sorted[j] = st
			}
		}
		if err != nil {
			a.Arena().Free(buf)
			freeStripes(cols)
			freeStripes(sorted)
			return nil, err
		}
	}
	a.Arena().Free(buf)
	freeStripes(cols)

	// Pass 3 (steps 4–8): rolling window over the columns of the
	// untransposed view.  Untransposed column c gathers, from each sorted
	// column j, the segment of positions whose untranspose image lies in
	// column c: destination q = i·s + j for source (i, j), so column c
	// receives source positions i ∈ [c·seg, (c+1)·seg) of every j.
	out, err := a.NewStripe(r * s)
	if err != nil {
		freeStripes(sorted)
		return nil, err
	}
	segBlocks := seg / b
	read := func(c int, dst []int64) error {
		addrs := make([]pdm.BlockAddr, 0, s*segBlocks)
		views := make([][]int64, 0, s*segBlocks)
		for j := 0; j < s; j++ {
			for blk := 0; blk < segBlocks; blk++ {
				addrs = append(addrs, sorted[j].BlockAddr(c*segBlocks+blk))
				views = append(views, dst[j*seg+blk*b:j*seg+(blk+1)*b])
			}
		}
		return a.ReadV(addrs, views)
	}
	err = core.RollingPass(a, r, s, read, core.SequentialEmit(out))
	freeStripes(sorted)
	if err != nil {
		out.Free()
		return nil, err
	}
	return out, nil
}

func freeStripes(ss []*pdm.Stripe) {
	for _, s := range ss {
		if s != nil {
			s.Free()
		}
	}
}
