package baseline

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/memsort"
	"repro/internal/pdm"
)

// SubblockGeometry picks the subblock-columnsort geometry for memory m:
// s the largest power-of-four with r = 4·s^1.5 ≤ m (power of four so √s is
// a power of two), block size b = √s, and capacity r·s = 4·s^2.5 — the
// paper's M^(5/3)/4^(2/3) up to rounding.  The harness builds the PDM array
// with the returned block size.
func SubblockGeometry(m int) (r, s, b int, err error) {
	for cand := 4; ; cand *= 4 {
		sq := memsort.Isqrt(cand)
		if 4*cand*sq > m {
			break
		}
		r, s, b = 4*cand*sq, cand, sq
	}
	if s == 0 {
		return 0, 0, 0, fmt.Errorf("baseline: no feasible subblock geometry for M = %d", m)
	}
	return r, s, b, nil
}

// SubblockColumnsort sorts in with the Chaudhry–Cormen–Hamon subblock
// columnsort (the paper's Observation 6.1): columnsort steps 1–3, then the
// new subblock step — partition into √s×√s subblocks, spread each subblock
// across the s columns (one entry per column), sort columns — then steps
// 4–8.  It requires r ≥ 4·s^1.5 and sorts r·s ≈ M^(5/3)/4^(2/3) keys.
//
// Scheduling: five passes on this simulator —
//
//	pass 1: steps 1–2 (sort columns, scatter transpose);
//	pass 2: step 3 (sort columns);
//	pass 3: subblock conversion (read 4-grid-row groups of whole
//	        subblocks = M keys, write one contiguous segment per
//	        destination column);
//	pass 4: sort the converted columns;
//	pass 5: steps 4–8 as one rolling pass over the untransposed view
//	        (the ≤ 2√s dirty rows span ≤ 2·s^1.5 = r/2 keys < the window).
//
// The original achieves four passes with B = Θ(M^(2/5)) via layout tricks
// specific to their disk format; the extra pass here is documented in
// DESIGN.md (the capacity and the asymptotic pass count are preserved).
func SubblockColumnsort(a *pdm.Array, in *pdm.Stripe, r, s int) (*core.Result, error) {
	b := a.B()
	sq := memsort.Isqrt(s)
	switch {
	case sq*sq != s:
		return nil, fmt.Errorf("baseline: subblock columnsort needs square s, got %d", s)
	case r < 4*s*sq:
		return nil, fmt.Errorf("baseline: subblock columnsort needs r >= 4*s^1.5 = %d, got %d", 4*s*sq, r)
	case b != sq:
		return nil, fmt.Errorf("baseline: subblock schedule needs B = sqrt(s) = %d, got %d", sq, b)
	case in.Len() != r*s || r%sq != 0 || r > a.Mem() || r%2 != 0:
		return nil, fmt.Errorf("baseline: bad subblock geometry r=%d s=%d n=%d", r, s, in.Len())
	}
	start := a.Stats()
	seg := r / s

	// Pass 1 (steps 1–2) and pass 2 (step 3) reuse the columnsort passes:
	// sort columns + scatter transpose, then sort the transposed columns.
	sorted, err := sortScatterTranspose(a, in, r, s)
	if err != nil {
		return nil, err
	}
	resorted, err := sortColumnsPass(a, sorted, r, s)
	freeStripes(sorted)
	if err != nil {
		return nil, err
	}

	// Pass 3: subblock conversion.  Subblock q (grid row-major: gr = q/√s,
	// gc = q mod √s) holds rows [gr√s,(gr+1)√s) of columns
	// [gc√s,(gc+1)√s); its s entries become row q of the converted matrix,
	// i.e. entry e lands in converted column e at position q.  Reading
	// whole grid rows (√s·s = s^1.5 keys each, √s-key block-aligned
	// segments) in groups that fill memory makes both sides contiguous:
	// a group of G grid rows supplies G·√s consecutive positions of every
	// converted column.
	groupRows := a.Mem() / (s * sq) // grid rows per memory load
	if groupRows == 0 {
		groupRows = 1
	}
	gridRows := r / sq
	conv := make([]*pdm.Stripe, s)
	for e := range conv {
		st, err := a.NewStripeSkew(r, e)
		if err != nil {
			freeStripes(resorted)
			freeStripes(conv)
			return nil, err
		}
		conv[e] = st
	}
	buf, err := a.Arena().Alloc(groupRows * s * sq)
	if err != nil {
		freeStripes(resorted)
		freeStripes(conv)
		return nil, err
	}
	gather, err := a.Arena().Alloc(groupRows * s * sq)
	if err != nil {
		a.Arena().Free(buf)
		freeStripes(resorted)
		freeStripes(conv)
		return nil, err
	}
	for gr0 := 0; gr0 < gridRows; gr0 += groupRows {
		g := groupRows
		if gr0+g > gridRows {
			g = gridRows - gr0
		}
		// Read rows [gr0·√s, (gr0+g)·√s) of every column: per column one
		// contiguous segment of g·√s keys.
		segKeys := g * sq
		addrs := make([]pdm.BlockAddr, 0, s*segKeys/b)
		views := make([][]int64, 0, s*segKeys/b)
		for j := 0; j < s; j++ {
			for blk := 0; blk < segKeys/b; blk++ {
				addrs = append(addrs, resorted[j].BlockAddr(gr0*sq/b+blk))
				views = append(views, buf[j*segKeys+blk*b:j*segKeys+(blk+1)*b])
			}
		}
		if err := a.ReadV(addrs, views); err != nil {
			a.Arena().Free(buf)
			a.Arena().Free(gather)
			freeStripes(resorted)
			freeStripes(conv)
			return nil, err
		}
		// buf[j*segKeys + i] = column j, row gr0·√s + i.  Convert: entry e
		// of subblock (gr0+gg, gc) = column gc√s + e/√s, row offset
		// gg·√s + e mod √s → converted column e, position q = (gr0+gg)√s+gc.
		// Gather converted column e's g·√s consecutive positions.
		for e := 0; e < s; e++ {
			cLocal := e / sq // column within the subblock
			rowOff := e % sq // row within the subblock
			dst := gather[e*segKeys : (e+1)*segKeys]
			for gg := 0; gg < g; gg++ {
				for gc := 0; gc < sq; gc++ {
					dst[gg*sq+gc] = buf[(gc*sq+cLocal)*segKeys+gg*sq+rowOff]
				}
			}
		}
		waddrs := make([]pdm.BlockAddr, 0, s*segKeys/b)
		wviews := make([][]int64, 0, s*segKeys/b)
		for e := 0; e < s; e++ {
			for blk := 0; blk < segKeys/b; blk++ {
				waddrs = append(waddrs, conv[e].BlockAddr(gr0*sq/b+blk))
				wviews = append(wviews, gather[e*segKeys+blk*b:e*segKeys+(blk+1)*b])
			}
		}
		if err := a.WriteV(waddrs, wviews); err != nil {
			a.Arena().Free(buf)
			a.Arena().Free(gather)
			freeStripes(resorted)
			freeStripes(conv)
			return nil, err
		}
	}
	a.Arena().Free(buf)
	a.Arena().Free(gather)
	freeStripes(resorted)

	// Pass 4: sort the converted columns.
	convSorted, err := sortColumnsPassStripes(a, conv, r, s)
	freeStripes(conv)
	if err != nil {
		return nil, err
	}

	// Pass 5: steps 4–8 as one rolling pass over the untransposed view.
	out, err := a.NewStripe(r * s)
	if err != nil {
		freeStripes(convSorted)
		return nil, err
	}
	segBlocks := seg / b
	read := func(c int, dst []int64) error {
		addrs := make([]pdm.BlockAddr, 0, s*segBlocks)
		views := make([][]int64, 0, s*segBlocks)
		for j := 0; j < s; j++ {
			for blk := 0; blk < segBlocks; blk++ {
				addrs = append(addrs, convSorted[j].BlockAddr(c*segBlocks+blk))
				views = append(views, dst[j*seg+blk*b:j*seg+(blk+1)*b])
			}
		}
		return a.ReadV(addrs, views)
	}
	err = core.RollingPass(a, r, s, read, core.SequentialEmit(out))
	freeStripes(convSorted)
	if err != nil {
		out.Free()
		return nil, fmt.Errorf("baseline: subblock columnsort final pass: %w", err)
	}
	return core.Finish(a, out, r*s, start, false), nil
}

// sortScatterTranspose is columnsort pass 1 (steps 1–2) extracted for reuse.
func sortScatterTranspose(a *pdm.Array, in *pdm.Stripe, r, s int) ([]*pdm.Stripe, error) {
	b := a.B()
	seg := r / s
	tcols := make([]*pdm.Stripe, s)
	for d := range tcols {
		st, err := a.NewStripeSkew(r, d)
		if err != nil {
			freeStripes(tcols)
			return nil, err
		}
		tcols[d] = st
	}
	buf, err := a.Arena().Alloc(r)
	if err != nil {
		freeStripes(tcols)
		return nil, err
	}
	defer a.Arena().Free(buf)
	gather, err := a.Arena().Alloc(r)
	if err != nil {
		freeStripes(tcols)
		return nil, err
	}
	defer a.Arena().Free(gather)
	for j := 0; j < s; j++ {
		if err := in.ReadAt(j*r, buf); err != nil {
			freeStripes(tcols)
			return nil, err
		}
		memsort.Keys(buf)
		addrs := make([]pdm.BlockAddr, 0, r/b)
		views := make([][]int64, 0, r/b)
		for d := 0; d < s; d++ {
			first := ((d-j*r%s)%s + s) % s
			segBuf := gather[d*seg : (d+1)*seg]
			for k := 0; k < seg; k++ {
				segBuf[k] = buf[first+k*s]
			}
			for blk := 0; blk < seg/b; blk++ {
				addrs = append(addrs, tcols[d].BlockAddr(j*seg/b+blk))
				views = append(views, segBuf[blk*b:(blk+1)*b])
			}
		}
		if err := a.WriteV(addrs, views); err != nil {
			freeStripes(tcols)
			return nil, err
		}
	}
	return tcols, nil
}

// sortColumnsPass reads each column stripe, sorts it, and writes it to a
// fresh skewed stripe — one full pass.
func sortColumnsPassStripes(a *pdm.Array, cols []*pdm.Stripe, r, s int) ([]*pdm.Stripe, error) {
	out := make([]*pdm.Stripe, s)
	buf, err := a.Arena().Alloc(r)
	if err != nil {
		return nil, err
	}
	defer a.Arena().Free(buf)
	for j := 0; j < s; j++ {
		if err := cols[j].ReadAt(0, buf); err != nil {
			freeStripes(out)
			return nil, err
		}
		memsort.Keys(buf)
		st, err := a.NewStripeSkew(r, j)
		if err != nil {
			freeStripes(out)
			return nil, err
		}
		if err := st.WriteAt(0, buf); err != nil {
			st.Free()
			freeStripes(out)
			return nil, err
		}
		out[j] = st
	}
	return out, nil
}

// sortColumnsPass is sortColumnsPassStripes for columns already on stripes.
func sortColumnsPass(a *pdm.Array, cols []*pdm.Stripe, r, s int) ([]*pdm.Stripe, error) {
	return sortColumnsPassStripes(a, cols, r, s)
}
