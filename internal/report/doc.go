// Package report renders the plain-text tables produced by the experiment
// harness (cmd/experiments) and the benchmark suite.  Every experiment in
// EXPERIMENTS.md is a Table; keeping the rendering in one place guarantees
// the harness and the docs stay in the same format.  Rendering is pure
// formatting: it performs no I/O on any pdm machine and charges nothing.
package report
