package report

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := NewTable("E00: demo", "alg", "passes", "keys")
	tb.AddRow("ThreePass1", 3.0, 32768)
	tb.AddRow("ExpectedTwoPass", 2.0001, 1024)
	tb.Note = "measured at M=1024"
	out := tb.String()
	for _, want := range []string{"E00: demo", "ThreePass1", "2", "32768", "note: measured"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	if tb.Rows() != 2 {
		t.Fatalf("Rows = %d, want 2", tb.Rows())
	}
}

func TestTableAlignment(t *testing.T) {
	tb := NewTable("", "a", "longheader")
	tb.AddRow("x", "y")
	lines := strings.Split(strings.TrimSpace(tb.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3 (header, rule, row)", len(lines))
	}
	if !strings.HasPrefix(lines[1], "---") {
		t.Fatalf("missing rule line: %q", lines[1])
	}
}

func TestCellFormatting(t *testing.T) {
	cases := []struct {
		in   any
		want string
	}{
		{3.0, "3"},
		{float32(2), "2"},
		{0.5, "0.5"},
		{1.0 / 3.0, "0.3333"},
		{1e-9, "1.000e-09"},
		{12345678.9, "1.235e+07"},
		{"s", "s"},
		{42, "42"},
		{0.0, "0"},
	}
	for _, tc := range cases {
		if got := Cell(tc.in); got != tc.want {
			t.Errorf("Cell(%v) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestFixedAndRatio(t *testing.T) {
	if got := Fixed(3.14159, 2); got != "3.14" {
		t.Fatalf("Fixed = %q", got)
	}
	if got := Ratio(3, 2, 1); got != "1.5x" {
		t.Fatalf("Ratio = %q", got)
	}
	if got := Ratio(1, 0, 1); got != "inf" {
		t.Fatalf("Ratio by zero = %q", got)
	}
}
