package report

import (
	"fmt"
	"strings"
)

// Table is a titled grid of cells with a header row.
type Table struct {
	Title string
	Note  string
	cols  []string
	rows  [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, cols ...string) *Table {
	return &Table{Title: title, cols: cols}
}

// AddRow appends a row; cells are rendered with %v, with floats formatted to
// four significant digits.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = Cell(c)
	}
	t.rows = append(t.rows, row)
}

// Rows returns the number of data rows.
func (t *Table) Rows() int { return len(t.rows) }

// Cell renders a single value the way AddRow does.
func Cell(c any) string {
	switch v := c.(type) {
	case float64:
		return formatFloat(v)
	case float32:
		return formatFloat(float64(v))
	case string:
		return v
	default:
		return fmt.Sprintf("%v", c)
	}
}

func formatFloat(v float64) string {
	switch {
	case v == float64(int64(v)) && v < 1e15 && v > -1e15:
		return fmt.Sprintf("%d", int64(v))
	case v != 0 && (v < 1e-3 || v >= 1e7):
		return fmt.Sprintf("%.3e", v)
	default:
		return fmt.Sprintf("%.4g", v)
	}
}

// String renders the table with aligned columns, a title rule, and the
// optional note.
func (t *Table) String() string {
	widths := make([]int, len(t.cols))
	for i, c := range t.cols {
		widths[i] = len(c)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title)
		sb.WriteByte('\n')
		sb.WriteString(strings.Repeat("=", len(t.Title)))
		sb.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(cell)
			if i < len(cells)-1 {
				sb.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
			}
		}
		sb.WriteByte('\n')
	}
	writeRow(t.cols)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	sb.WriteString(strings.Repeat("-", total))
	sb.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	if t.Note != "" {
		sb.WriteString("note: ")
		sb.WriteString(t.Note)
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Fixed renders v with exactly prec decimals — for pass counts where "3.000"
// is the point.
func Fixed(v float64, prec int) string {
	return fmt.Sprintf("%.*f", prec, v)
}

// Ratio renders a/b as a fixed-precision quotient, or "inf" when b is zero.
func Ratio(a, b float64, prec int) string {
	if b == 0 {
		return "inf"
	}
	return fmt.Sprintf("%.*fx", prec, a/b)
}
