package pdm

import (
	"fmt"
	"sync"
)

// ioOp pairs a block address with the buffer it reads into or writes from.
type ioOp struct {
	addr BlockAddr
	buf  []int64
}

// ReadV reads addrs[i] into bufs[i] for all i.  The request is charged
// max_d(#blocks on disk d) parallel I/O steps — the PDM cost of a vectored
// transfer — and the per-disk operations execute concurrently, one goroutine
// per participating disk.  Buffers must each have length B.
func (a *Array) ReadV(addrs []BlockAddr, bufs [][]int64) error {
	return a.execV(addrs, bufs, false)
}

// WriteV writes bufs[i] to addrs[i] for all i, with the same cost accounting
// and concurrency as ReadV.
func (a *Array) WriteV(addrs []BlockAddr, bufs [][]int64) error {
	return a.execV(addrs, bufs, true)
}

func (a *Array) execV(addrs []BlockAddr, bufs [][]int64, write bool) error {
	if len(addrs) != len(bufs) {
		return fmt.Errorf("pdm: %d addrs but %d buffers", len(addrs), len(bufs))
	}
	if len(addrs) == 0 {
		return nil
	}
	perDisk := make([][]ioOp, a.cfg.D)
	for i, ad := range addrs {
		if ad.Disk < 0 || ad.Disk >= a.cfg.D {
			return fmt.Errorf("%w: disk %d of %d", ErrOutOfRange, ad.Disk, a.cfg.D)
		}
		if len(bufs[i]) != a.cfg.B {
			return ErrBadBlock
		}
		perDisk[ad.Disk] = append(perDisk[ad.Disk], ioOp{ad, bufs[i]})
	}

	steps := 0
	for _, ops := range perDisk {
		if len(ops) > steps {
			steps = len(ops)
		}
	}

	var wg sync.WaitGroup
	errs := make([]error, a.cfg.D)
	for d, ops := range perDisk {
		if len(ops) == 0 {
			continue
		}
		wg.Add(1)
		go func(d int, ops []ioOp) {
			defer wg.Done()
			disk := a.disks[d]
			for _, op := range ops {
				var err error
				if write {
					err = disk.WriteBlock(op.addr.Off, op.buf)
				} else {
					err = disk.ReadBlock(op.addr.Off, op.buf)
				}
				if err != nil {
					errs[d] = err
					return
				}
			}
		}(d, ops)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}

	a.account(len(addrs), steps, write)
	a.recordTrace(addrs, write)
	return nil
}

func (a *Array) account(blocks, steps int, write bool) {
	if write {
		a.stats.BlocksWritten += int64(blocks)
		a.stats.WriteSteps += int64(steps)
	} else {
		a.stats.BlocksRead += int64(blocks)
		a.stats.ReadSteps += int64(steps)
	}
	a.stats.SimTime += float64(steps) * (a.cfg.SeekTime + float64(a.cfg.B)*a.cfg.TransferPerKey)
}

// splitBlocks carves flat (len a multiple of B) into B-key block views.
func (a *Array) splitBlocks(flat []int64) [][]int64 {
	nb := len(flat) / a.cfg.B
	bufs := make([][]int64, nb)
	for i := range bufs {
		bufs[i] = flat[i*a.cfg.B : (i+1)*a.cfg.B]
	}
	return bufs
}
