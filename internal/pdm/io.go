package pdm

import (
	"fmt"
	"sync"
)

// ioOp pairs a block address with the buffer it reads into or writes from.
type ioOp struct {
	addr BlockAddr
	buf  []int64
}

// ReadV reads addrs[i] into bufs[i] for all i.  The request is charged
// max_d(#blocks on disk d) parallel I/O steps — the PDM cost of a vectored
// transfer — and the per-disk operations execute concurrently, one goroutine
// per participating disk.  Buffers must each have length B.
func (a *Array) ReadV(addrs []BlockAddr, bufs [][]int64) error {
	return a.execV(addrs, bufs, false)
}

// WriteV writes bufs[i] to addrs[i] for all i, with the same cost accounting
// and concurrency as ReadV.
func (a *Array) WriteV(addrs []BlockAddr, bufs [][]int64) error {
	return a.execV(addrs, bufs, true)
}

func (a *Array) execV(addrs []BlockAddr, bufs [][]int64, write bool) error {
	if err := a.CtxErr(); err != nil {
		return err
	}
	if err := a.validateV(addrs, bufs); err != nil {
		return err
	}
	if len(addrs) == 0 {
		return nil
	}
	if err := a.transferV(addrs, bufs, write); err != nil {
		return err
	}
	a.ChargeV(addrs, write)
	return nil
}

// ValidateV checks a vectored request — matching lengths, addresses on
// existing disks, B-key buffers — without touching the disks or the
// accounting.  The streaming layer validates before charging so that a
// rejected request leaves no trace, exactly like ReadV/WriteV.
func (a *Array) ValidateV(addrs []BlockAddr, bufs [][]int64) error {
	return a.validateV(addrs, bufs)
}

// validateV checks a vectored request without touching the disks.
func (a *Array) validateV(addrs []BlockAddr, bufs [][]int64) error {
	if len(addrs) != len(bufs) {
		return fmt.Errorf("pdm: %d addrs but %d buffers", len(addrs), len(bufs))
	}
	for i, ad := range addrs {
		if ad.Disk < 0 || ad.Disk >= a.cfg.D {
			return fmt.Errorf("%w: disk %d of %d", ErrOutOfRange, ad.Disk, a.cfg.D)
		}
		if len(bufs[i]) != a.cfg.B {
			return ErrBadBlock
		}
	}
	return nil
}

// TransferV moves the data of a vectored request — addrs[i] into/out of
// bufs[i] — WITHOUT charging steps or recording the trace.  The streaming
// layer (internal/stream) uses it to overlap physical transfers with
// computation while charging each logical request exactly once through
// ChargeV, so the PDM cost model cannot observe the overlap.
func (a *Array) TransferV(addrs []BlockAddr, bufs [][]int64, write bool) error {
	if err := a.CtxErr(); err != nil {
		return err
	}
	if err := a.validateV(addrs, bufs); err != nil {
		return err
	}
	if len(addrs) == 0 {
		return nil
	}
	return a.transferV(addrs, bufs, write)
}

func (a *Array) transferV(addrs []BlockAddr, bufs [][]int64, write bool) error {
	perDisk := make([][]ioOp, a.cfg.D)
	for i, ad := range addrs {
		perDisk[ad.Disk] = append(perDisk[ad.Disk], ioOp{ad, bufs[i]})
	}
	var wg sync.WaitGroup
	errs := make([]error, a.cfg.D)
	for d, ops := range perDisk {
		if len(ops) == 0 {
			continue
		}
		wg.Add(1)
		go func(d int, ops []ioOp) {
			defer wg.Done()
			disk := a.disks[d]
			for _, op := range ops {
				var err error
				if write {
					err = disk.WriteBlock(op.addr.Off, op.buf)
				} else {
					err = disk.ReadBlock(op.addr.Off, op.buf)
				}
				if err != nil {
					errs[d] = err
					return
				}
			}
		}(d, ops)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// ZeroCopy reports whether every disk in the array serves borrowed block
// views, i.e. whether the Borrow APIs below work.  It is decided once at
// construction: an array mixing capable and incapable disks (or wrapping
// them in LatencyDisk) reports false and callers use the copying path.
func (a *Array) ZeroCopy() bool { return a.zc != nil }

// BorrowReadV returns direct views of the addressed blocks, in request
// order, WITHOUT copying, charging steps, or recording the trace — the
// zero-copy analogue of TransferV(write=false).  Callers pair it with
// ChargeV exactly once per logical request, in program order, so stats
// and traces are identical to the copying execution.  Views stay valid
// until the array is closed and must not be written through.
func (a *Array) BorrowReadV(addrs []BlockAddr) ([][]int64, error) {
	if a.zc == nil {
		return nil, errNoZeroCopy
	}
	if err := a.CtxErr(); err != nil {
		return nil, err
	}
	if err := a.validateAddrs(addrs); err != nil {
		return nil, err
	}
	views := make([][]int64, len(addrs))
	for i, ad := range addrs {
		v, err := a.zc[ad.Disk].ReadBlockZero(ad.Off)
		if err != nil {
			return nil, err
		}
		views[i] = v
	}
	return views, nil
}

// BorrowWrite returns a writable view of block addr, growing the disk to
// cover it — the zero-copy analogue of one block of TransferV(write=true).
// The block counts as written immediately; the caller fills the view and
// charges the request through ChargeV exactly as a TransferV user would.
func (a *Array) BorrowWrite(addr BlockAddr) ([]int64, error) {
	if a.zc == nil {
		return nil, errNoZeroCopy
	}
	if err := a.CtxErr(); err != nil {
		return nil, err
	}
	if addr.Disk < 0 || addr.Disk >= a.cfg.D {
		return nil, fmt.Errorf("%w: disk %d of %d", ErrOutOfRange, addr.Disk, a.cfg.D)
	}
	return a.zc[addr.Disk].WriteBlockZero(addr.Off)
}

// validateAddrs checks that every address names an existing disk.
func (a *Array) validateAddrs(addrs []BlockAddr) error {
	for _, ad := range addrs {
		if ad.Disk < 0 || ad.Disk >= a.cfg.D {
			return fmt.Errorf("%w: disk %d of %d", ErrOutOfRange, ad.Disk, a.cfg.D)
		}
	}
	return nil
}

// ChargeV records the accounting of one vectored request as if it executed
// synchronously now: max-per-disk parallel steps, block counters, simulated
// time, and the trace entry.  Callers pairing it with TransferV must invoke
// it exactly once per logical request, in the algorithm's program order, so
// that stats and traces are identical to the unpipelined execution.
func (a *Array) ChargeV(addrs []BlockAddr, write bool) {
	if len(addrs) == 0 {
		return
	}
	perDisk := make([]int, a.cfg.D)
	steps := 0
	for _, ad := range addrs {
		perDisk[ad.Disk]++
		if perDisk[ad.Disk] > steps {
			steps = perDisk[ad.Disk]
		}
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.account(len(addrs), steps, write)
	a.recordTrace(addrs, write)
}

// account assumes a.mu is held.
func (a *Array) account(blocks, steps int, write bool) {
	if write {
		a.stats.BlocksWritten += int64(blocks)
		a.stats.WriteSteps += int64(steps)
	} else {
		a.stats.BlocksRead += int64(blocks)
		a.stats.ReadSteps += int64(steps)
	}
	a.stats.SimTime += float64(steps) * (a.cfg.SeekTime + float64(a.cfg.B)*a.cfg.TransferPerKey)
}

// RecordPrefetch counts one streamed read chunk: a hit if the prefetcher had
// it ready when the consumer asked, a stall otherwise.
func (a *Array) RecordPrefetch(hit bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if hit {
		a.stats.PrefetchHits++
	} else {
		a.stats.PrefetchStalls++
	}
}

// RecordWriteBehind counts one streamed write request: a hit if staging was
// free when the producer pushed, a stall if the producer had to wait.
func (a *Array) RecordWriteBehind(hit bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if hit {
		a.stats.WriteBehindHits++
	} else {
		a.stats.WriteBehindStalls++
	}
}

// splitBlocks carves flat (len a multiple of B) into B-key block views.
func (a *Array) splitBlocks(flat []int64) [][]int64 {
	nb := len(flat) / a.cfg.B
	bufs := make([][]int64, nb)
	for i := range bufs {
		bufs[i] = flat[i*a.cfg.B : (i+1)*a.cfg.B]
	}
	return bufs
}
