package pdm

// TraceOp records one vectored I/O request: its direction and the exact
// block addresses touched, in request order.
type TraceOp struct {
	Write bool
	Addrs []BlockAddr
}

// EnableTrace starts recording every subsequent I/O request.  The paper
// emphasizes that all of its comparison-based algorithms are *oblivious*:
// the sequence of I/O requests depends only on N and the machine geometry,
// never on the key values.  Recording the trace lets tests assert exactly
// that, by comparing traces across different inputs of the same size.
func (a *Array) EnableTrace() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.trace = []TraceOp{}
}

// DisableTrace stops recording and drops the trace.
func (a *Array) DisableTrace() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.trace = nil
}

// Trace returns the recorded requests since EnableTrace.
func (a *Array) Trace() []TraceOp {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.trace
}

// recordTrace appends one request if tracing is enabled.  a.mu must be held.
func (a *Array) recordTrace(addrs []BlockAddr, write bool) {
	if a.trace == nil {
		return
	}
	cp := make([]BlockAddr, len(addrs))
	copy(cp, addrs)
	a.trace = append(a.trace, TraceOp{Write: write, Addrs: cp})
}

// TracesEqual reports whether two traces are identical request for request
// and address for address.
func TracesEqual(x, y []TraceOp) bool {
	if len(x) != len(y) {
		return false
	}
	for i := range x {
		if x[i].Write != y[i].Write || len(x[i].Addrs) != len(y[i].Addrs) {
			return false
		}
		for j := range x[i].Addrs {
			if x[i].Addrs[j] != y[i].Addrs[j] {
				return false
			}
		}
	}
	return true
}
