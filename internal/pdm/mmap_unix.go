//go:build linux || darwin || freebsd || netbsd || openbsd || dragonfly

package pdm

import (
	"encoding/binary"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"syscall"
)

// MmapDisk is a Disk backed by a single ordinary file that is memory-mapped
// (MAP_SHARED) rather than accessed through read/write syscalls.  The
// on-disk format is identical to FileDisk — little-endian int64s at offset
// off·B·8 — so the two backends are interchangeable on the same scratch
// directory.  On little-endian architectures the mapping is reinterpreted
// in place as []int64, making ReadBlock/WriteBlock a single copy and the
// borrow APIs (ReadBlockZero/WriteBlockZero) completely copy-free; on
// big-endian architectures blocks are encoded/decoded per word against the
// mapped bytes and the borrow APIs report unsupported.
//
// The backing file grows in chunks like FileDisk, but each growth doubles
// the mapped size (geometric growth bounds remapping to O(log N) times).
// Superseded mappings are kept mapped until Close: a borrowed view handed
// out before a growth still points into an old mapping, and MAP_SHARED
// mappings of the same file are coherent, so the old view stays valid and
// sees all subsequent writes.  The total kept-alive address space is at
// most 2× the final file size — address space, not resident memory.
type MmapDisk struct {
	f      *os.File
	b      int
	blocks atomic.Int64 // block count = write frontier
	grown  atomic.Int64 // mapped/preallocated size of the file, in blocks
	growMu sync.Mutex   // serializes growth and guards old
	cur    atomic.Pointer[mapping]
	old    []*mapping // superseded mappings, unmapped at Close
}

// mapping is one mmap of the backing file from offset 0.
type mapping struct {
	bytes []byte
	words []int64 // in-place view of bytes; nil on big-endian architectures
}

// NewMmapDisk creates (truncating) an mmap-backed disk at path with block
// size b keys.
func NewMmapDisk(path string, b int) (*MmapDisk, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("pdm: creating mmap disk: %w", err)
	}
	return &MmapDisk{f: f, b: b}, nil
}

// ReadBlock implements Disk.
func (d *MmapDisk) ReadBlock(off int, dst []int64) error {
	if len(dst) != d.b {
		return ErrBadBlock
	}
	if off < 0 || int64(off) >= d.blocks.Load() {
		return fmt.Errorf("%w: read of block %d (disk holds %d)", ErrOutOfRange, off, d.blocks.Load())
	}
	m := d.cur.Load()
	if m.words != nil {
		copy(dst, m.words[off*d.b:(off+1)*d.b])
		return nil
	}
	base := off * d.b * 8
	for i := range dst {
		dst[i] = int64(binary.LittleEndian.Uint64(m.bytes[base+8*i:]))
	}
	return nil
}

// WriteBlock implements Disk.
func (d *MmapDisk) WriteBlock(off int, src []int64) error {
	if len(src) != d.b {
		return ErrBadBlock
	}
	if off < 0 {
		return fmt.Errorf("%w: write of block %d", ErrOutOfRange, off)
	}
	if err := d.grow(off + 1); err != nil {
		return err
	}
	m := d.cur.Load()
	if m.words != nil {
		copy(m.words[off*d.b:(off+1)*d.b], src)
	} else {
		base := off * d.b * 8
		for i, v := range src {
			binary.LittleEndian.PutUint64(m.bytes[base+8*i:], uint64(v))
		}
	}
	d.advance(off)
	return nil
}

// advance moves the write frontier to cover off.
func (d *MmapDisk) advance(off int) {
	for {
		cur := d.blocks.Load()
		if int64(off) < cur || d.blocks.CompareAndSwap(cur, int64(off)+1) {
			return
		}
	}
}

// ZeroCopy implements ZeroCopyDisk: borrowed views are available whenever
// the mapping can be reinterpreted as words in place.
func (d *MmapDisk) ZeroCopy() bool { return canWordView }

// ReadBlockZero implements ZeroCopyDisk: it returns a direct view of block
// off, valid until Close.  The caller must not write through it.
func (d *MmapDisk) ReadBlockZero(off int) ([]int64, error) {
	if !canWordView {
		return nil, errNoZeroCopy
	}
	if off < 0 || int64(off) >= d.blocks.Load() {
		return nil, fmt.Errorf("%w: read of block %d (disk holds %d)", ErrOutOfRange, off, d.blocks.Load())
	}
	m := d.cur.Load()
	lo := off * d.b
	return m.words[lo : lo+d.b : lo+d.b], nil
}

// WriteBlockZero implements ZeroCopyDisk: it grows the disk to cover off,
// advances the write frontier, and returns a writable view of block off
// for the caller to fill, valid until Close.
func (d *MmapDisk) WriteBlockZero(off int) ([]int64, error) {
	if !canWordView {
		return nil, errNoZeroCopy
	}
	if off < 0 {
		return nil, fmt.Errorf("%w: write of block %d", ErrOutOfRange, off)
	}
	if err := d.grow(off + 1); err != nil {
		return nil, err
	}
	d.advance(off)
	m := d.cur.Load()
	lo := off * d.b
	return m.words[lo : lo+d.b : lo+d.b], nil
}

// grow extends the backing file and its mapping to hold at least want
// blocks: growBlocks-chunked like FileDisk.grow, plus doubling so the
// number of remaps stays logarithmic in the final size.
func (d *MmapDisk) grow(want int) error {
	if int64(want) <= d.grown.Load() {
		return nil
	}
	d.growMu.Lock()
	defer d.growMu.Unlock()
	prev := d.grown.Load()
	if int64(want) <= prev {
		return nil
	}
	target := (int64(want) + growBlocks - 1) / growBlocks * growBlocks
	if dbl := 2 * prev; target < dbl {
		target = dbl
	}
	if err := d.f.Truncate(target * int64(d.b) * 8); err != nil {
		return fmt.Errorf("pdm: mmap disk grow: %w", err)
	}
	bs, err := syscall.Mmap(int(d.f.Fd()), 0, int(target)*d.b*8,
		syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED)
	if err != nil {
		return fmt.Errorf("pdm: mmap disk map: %w", err)
	}
	m := &mapping{bytes: bs}
	if canWordView {
		m.words = bytesToWords(bs)
	}
	if old := d.cur.Load(); old != nil {
		d.old = append(d.old, old)
	}
	d.cur.Store(m)
	d.grown.Store(target)
	return nil
}

// Blocks implements Disk.
func (d *MmapDisk) Blocks() int {
	return int(d.blocks.Load())
}

// Close implements Disk.  Every mapping (current and superseded) is
// unmapped — borrowed views die here — then the file is trimmed to the
// written frontier and closed, but not removed, so callers can inspect
// the sorted output.
func (d *MmapDisk) Close() error {
	d.growMu.Lock()
	defer d.growMu.Unlock()
	var first error
	if m := d.cur.Swap(nil); m != nil {
		d.old = append(d.old, m)
	}
	for _, m := range d.old {
		if err := syscall.Munmap(m.bytes); err != nil && first == nil {
			first = fmt.Errorf("pdm: mmap disk unmap: %w", err)
		}
	}
	d.old = nil
	if d.grown.Load() > d.blocks.Load() {
		if err := d.f.Truncate(d.blocks.Load() * int64(d.b) * 8); err != nil {
			d.f.Close() //nolint:errcheck // surface the truncate error instead
			if first == nil {
				first = fmt.Errorf("pdm: mmap disk trim: %w", err)
			}
			return first
		}
	}
	if err := d.f.Close(); err != nil && first == nil {
		first = err
	}
	return first
}

// Path returns the backing file's name.
func (d *MmapDisk) Path() string { return d.f.Name() }
