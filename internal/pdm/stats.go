package pdm

import "fmt"

// Stats accumulates the I/O accounting of an Array.  All counters are in the
// PDM's native units: blocks and parallel I/O steps.
type Stats struct {
	// BlocksRead and BlocksWritten count individual block transfers.
	BlocksRead    int64
	BlocksWritten int64
	// ReadSteps and WriteSteps count parallel I/O steps.  A vectored request
	// touching k_d blocks on disk d costs max_d k_d steps.
	ReadSteps  int64
	WriteSteps int64
	// SimTime is the simulated elapsed time under the configured cost model
	// (zero if the cost model is disabled).
	SimTime float64

	// Pipeline observability, maintained by internal/stream.  These do not
	// affect the cost model: a transfer costs the same steps whether or not
	// it was overlapped.  They are scheduling-dependent (hence excluded from
	// determinism checks): PrefetchHits counts streamed read chunks whose
	// data was already resident when the consumer asked, PrefetchStalls
	// those the consumer had to wait for; WriteBehindHits/-Stalls are the
	// producer-side analogue for staged writes.
	PrefetchHits      int64
	PrefetchStalls    int64
	WriteBehindHits   int64
	WriteBehindStalls int64

	// Compute observability, maintained by the array's worker pool
	// (internal/par) and — like the pipeline counters — scheduling-dependent
	// and excluded from determinism checks: ComputeSections counts parallel
	// compute sections entered, ComputeWallNanos their summed wall time, and
	// ComputeBusyNanos the summed busy time of all workers inside them.  All
	// zero when the pool runs serially (Workers = 1 or small inputs).
	ComputeSections  int64
	ComputeWallNanos int64
	ComputeBusyNanos int64
}

// Add returns the componentwise sum of s and t.
func (s Stats) Add(t Stats) Stats {
	return Stats{
		BlocksRead:        s.BlocksRead + t.BlocksRead,
		BlocksWritten:     s.BlocksWritten + t.BlocksWritten,
		ReadSteps:         s.ReadSteps + t.ReadSteps,
		WriteSteps:        s.WriteSteps + t.WriteSteps,
		SimTime:           s.SimTime + t.SimTime,
		PrefetchHits:      s.PrefetchHits + t.PrefetchHits,
		PrefetchStalls:    s.PrefetchStalls + t.PrefetchStalls,
		WriteBehindHits:   s.WriteBehindHits + t.WriteBehindHits,
		WriteBehindStalls: s.WriteBehindStalls + t.WriteBehindStalls,
		ComputeSections:   s.ComputeSections + t.ComputeSections,
		ComputeWallNanos:  s.ComputeWallNanos + t.ComputeWallNanos,
		ComputeBusyNanos:  s.ComputeBusyNanos + t.ComputeBusyNanos,
	}
}

// Sub returns the componentwise difference s − t, for measuring a phase
// between two snapshots.
func (s Stats) Sub(t Stats) Stats {
	return Stats{
		BlocksRead:        s.BlocksRead - t.BlocksRead,
		BlocksWritten:     s.BlocksWritten - t.BlocksWritten,
		ReadSteps:         s.ReadSteps - t.ReadSteps,
		WriteSteps:        s.WriteSteps - t.WriteSteps,
		SimTime:           s.SimTime - t.SimTime,
		PrefetchHits:      s.PrefetchHits - t.PrefetchHits,
		PrefetchStalls:    s.PrefetchStalls - t.PrefetchStalls,
		WriteBehindHits:   s.WriteBehindHits - t.WriteBehindHits,
		WriteBehindStalls: s.WriteBehindStalls - t.WriteBehindStalls,
		ComputeSections:   s.ComputeSections - t.ComputeSections,
		ComputeWallNanos:  s.ComputeWallNanos - t.ComputeWallNanos,
		ComputeBusyNanos:  s.ComputeBusyNanos - t.ComputeBusyNanos,
	}
}

// Overlap reports the fraction of streamed read chunks served without a
// stall: 1.0 means the prefetcher always had the next chunk ready.  It
// returns 1 when nothing was streamed.
func (s Stats) Overlap() float64 {
	total := s.PrefetchHits + s.PrefetchStalls
	if total == 0 {
		return 1
	}
	return float64(s.PrefetchHits) / float64(total)
}

// ComputeSeconds returns the wall time, in seconds, spent inside parallel
// compute sections.
func (s Stats) ComputeSeconds() float64 {
	return float64(s.ComputeWallNanos) / 1e9
}

// WorkerUtilization reports the busy fraction of the worker pool over the
// parallel compute sections: busy/(wall·workers).  It returns 1 when no
// parallel section ran (nothing was wasted).
func (s Stats) WorkerUtilization(workers int) float64 {
	if s.ComputeWallNanos <= 0 || workers <= 0 {
		return 1
	}
	u := float64(s.ComputeBusyNanos) / (float64(s.ComputeWallNanos) * float64(workers))
	if u > 1 {
		u = 1
	}
	return u
}

// ReadPasses converts read steps into passes over n keys on a machine with
// stripe width dTimesB = D·B: one pass is n/(D·B) parallel read steps.
func (s Stats) ReadPasses(n, dTimesB int) float64 {
	if n == 0 {
		return 0
	}
	return float64(s.ReadSteps) * float64(dTimesB) / float64(n)
}

// WritePasses is the write-side analogue of ReadPasses.
func (s Stats) WritePasses(n, dTimesB int) float64 {
	if n == 0 {
		return 0
	}
	return float64(s.WriteSteps) * float64(dTimesB) / float64(n)
}

// Passes reports the number of passes over n keys, defined (as in the paper)
// by the read side: a pass is N/(DB) read I/O operations and the same number
// of writes.  Algorithms that read and write asymmetrically show the
// difference in ReadPasses/WritePasses.
func (s Stats) Passes(n, dTimesB int) float64 {
	r, w := s.ReadPasses(n, dTimesB), s.WritePasses(n, dTimesB)
	if w > r {
		return w
	}
	return r
}

// ReadEfficiency reports the fraction of full parallelism achieved by reads:
// blocks transferred divided by D·steps.  1.0 means every read step moved a
// block on every disk.
func (s Stats) ReadEfficiency(d int) float64 {
	if s.ReadSteps == 0 {
		return 1
	}
	return float64(s.BlocksRead) / float64(int64(d)*s.ReadSteps)
}

// WriteEfficiency is the write-side analogue of ReadEfficiency.
func (s Stats) WriteEfficiency(d int) float64 {
	if s.WriteSteps == 0 {
		return 1
	}
	return float64(s.BlocksWritten) / float64(int64(d)*s.WriteSteps)
}

// String renders the statistics compactly for logs and reports.
func (s Stats) String() string {
	return fmt.Sprintf("reads=%d blocks/%d steps, writes=%d blocks/%d steps, simTime=%.3f",
		s.BlocksRead, s.ReadSteps, s.BlocksWritten, s.WriteSteps, s.SimTime)
}
