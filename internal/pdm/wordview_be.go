//go:build !(amd64 || arm64 || 386 || arm || riscv64 || loong64 || ppc64le || mipsle || mips64le || wasm)

package pdm

// canWordView is false on big-endian architectures: the on-disk format is
// little-endian int64s, so mapped bytes cannot be reinterpreted in place
// and MmapDisk falls back to per-word encode/decode against the mapping.
const canWordView = false

// bytesToWords is unreachable when canWordView is false.
func bytesToWords(b []byte) []int64 {
	panic("pdm: bytesToWords on a big-endian architecture")
}
