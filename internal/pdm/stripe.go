package pdm

import (
	"fmt"
)

// extent is a run of free rows in the row allocator.
type extent struct{ start, n int }

// rowAllocator hands out "rows" of disk space.  A row is one block at the
// same offset on every disk, i.e. D·B keys of capacity.  Stripes occupy whole
// rows so that consecutive logical blocks land on consecutive disks —
// the round-robin striping all of the paper's layouts build on.
type rowAllocator struct {
	next int
	free []extent
}

func (ra *rowAllocator) alloc(n int) int {
	for i, e := range ra.free {
		if e.n >= n {
			start := e.start
			if e.n == n {
				ra.free = append(ra.free[:i], ra.free[i+1:]...)
			} else {
				ra.free[i] = extent{e.start + n, e.n - n}
			}
			return start
		}
	}
	start := ra.next
	ra.next += n
	return start
}

func (ra *rowAllocator) release(start, n int) {
	if n <= 0 {
		return
	}
	// Coalescing keeps the free list small across the many alloc/free cycles
	// of multi-phase algorithms.
	merged := extent{start, n}
	out := ra.free[:0]
	for _, e := range ra.free {
		switch {
		case e.start+e.n == merged.start:
			merged = extent{e.start, e.n + merged.n}
		case merged.start+merged.n == e.start:
			merged = extent{merged.start, merged.n + e.n}
		default:
			out = append(out, e)
		}
	}
	ra.free = append(out, merged)
}

// Stripe is a logical array of keys striped round-robin across all D disks:
// logical block j lives on disk (j+skew) mod D at row row0 + j/D.  Reading
// any D consecutive blocks therefore touches every disk exactly once — a
// fully parallel I/O step.
//
// The skew implements the rotated ("diagonal") striping of Rajasekaran's LMM
// sort: when an algorithm keeps one stripe per run and gives run i skew i,
// reading block j of every run in one request spreads the blocks across the
// disks, and so does writing block j of run i for all j.  Both access
// directions of the paper's unshuffle/merge/shuffle phases achieve full
// parallelism this way.
type Stripe struct {
	a    *Array
	row0 int
	skew int
	n    int // keys
	nb   int // blocks
	rows int
}

// NewStripe allocates disk space for nKeys keys (which must be a multiple of
// the block size B) striped across all disks.
func (a *Array) NewStripe(nKeys int) (*Stripe, error) {
	return a.NewStripeSkew(nKeys, 0)
}

// NewStripeSkew is NewStripe with the disk assignment of every block rotated
// by skew.
func (a *Array) NewStripeSkew(nKeys, skew int) (*Stripe, error) {
	if nKeys <= 0 || nKeys%a.cfg.B != 0 {
		return nil, fmt.Errorf("%w: stripe of %d keys with B = %d", ErrUnaligned, nKeys, a.cfg.B)
	}
	nb := nKeys / a.cfg.B
	rows := (nb + a.cfg.D - 1) / a.cfg.D
	skew %= a.cfg.D
	if skew < 0 {
		skew += a.cfg.D
	}
	a.mu.Lock()
	row0 := a.alloc.alloc(rows)
	a.mu.Unlock()
	return &Stripe{a: a, row0: row0, skew: skew, n: nKeys, nb: nb, rows: rows}, nil
}

// Len returns the stripe's length in keys.
func (s *Stripe) Len() int { return s.n }

// Blocks returns the stripe's length in blocks.
func (s *Stripe) Blocks() int { return s.nb }

// Array returns the array the stripe lives on.
func (s *Stripe) Array() *Array { return s.a }

// Free returns the stripe's rows to the allocator.  The stripe must not be
// used afterwards.
func (s *Stripe) Free() {
	s.a.mu.Lock()
	s.a.alloc.release(s.row0, s.rows)
	s.a.mu.Unlock()
	s.rows = 0
}

// BlockAddr maps logical block j of the stripe to its physical address.
// Blocks of one row (j in [rD, (r+1)D)) map bijectively onto the disks, so
// stripes never collide regardless of skew.
func (s *Stripe) BlockAddr(j int) BlockAddr {
	return BlockAddr{Disk: (j + s.skew) % s.a.cfg.D, Off: s.row0 + j/s.a.cfg.D}
}

// Skew returns the stripe's disk-rotation offset.
func (s *Stripe) Skew() int { return s.skew }

// AddrRange returns the addresses of the blocks covering keys
// [keyOff, keyOff+nKeys), in logical order — the request the sequential
// ReadAt/WriteAt would issue.  The streaming layer uses it to pre-plan
// chunk requests.
func (s *Stripe) AddrRange(keyOff, nKeys int) ([]BlockAddr, error) {
	return s.addrRange(keyOff, nKeys)
}

// addrRange returns the addresses of the blocks covering keys
// [keyOff, keyOff+nKeys).
func (s *Stripe) addrRange(keyOff, nKeys int) ([]BlockAddr, error) {
	b := s.a.cfg.B
	if keyOff%b != 0 || nKeys%b != 0 {
		return nil, fmt.Errorf("%w: range [%d, %d) with B = %d", ErrUnaligned, keyOff, keyOff+nKeys, b)
	}
	if keyOff < 0 || keyOff+nKeys > s.n {
		return nil, fmt.Errorf("%w: range [%d, %d) of stripe with %d keys", ErrOutOfRange, keyOff, keyOff+nKeys, s.n)
	}
	first := keyOff / b
	addrs := make([]BlockAddr, nKeys/b)
	for i := range addrs {
		addrs[i] = s.BlockAddr(first + i)
	}
	return addrs, nil
}

// ReadAt reads keys [keyOff, keyOff+len(dst)) into dst.  Both keyOff and
// len(dst) must be multiples of B.  D consecutive blocks cost one parallel
// step.
func (s *Stripe) ReadAt(keyOff int, dst []int64) error {
	addrs, err := s.addrRange(keyOff, len(dst))
	if err != nil {
		return err
	}
	return s.a.ReadV(addrs, s.a.splitBlocks(dst))
}

// WriteAt writes src to keys [keyOff, keyOff+len(src)), with the same
// alignment rules as ReadAt.
func (s *Stripe) WriteAt(keyOff int, src []int64) error {
	addrs, err := s.addrRange(keyOff, len(src))
	if err != nil {
		return err
	}
	return s.a.WriteV(addrs, s.a.splitBlocks(src))
}

// Load writes data into the stripe without touching the I/O statistics or
// the trace.  It models the input already residing on the disks, which is
// the starting state of every PDM algorithm; use it only from harnesses.
func (s *Stripe) Load(data []int64) error {
	if len(data) != s.n {
		return fmt.Errorf("pdm: Load of %d keys into stripe of %d", len(data), s.n)
	}
	addrs, err := s.addrRange(0, len(data))
	if err != nil {
		return err
	}
	return s.a.TransferV(addrs, s.a.splitBlocks(data), true)
}

// Unload reads the whole stripe without touching the I/O statistics or the
// trace, for verification in harnesses.
func (s *Stripe) Unload() ([]int64, error) {
	out := make([]int64, s.n)
	addrs, err := s.addrRange(0, len(out))
	if err != nil {
		return nil, err
	}
	return out, s.a.TransferV(addrs, s.a.splitBlocks(out), false)
}

// Reader streams a stripe (or a sub-range of one) sequentially.
type Reader struct {
	s   *Stripe
	pos int
	end int
}

// NewReader returns a Reader over keys [start, start+n) of the stripe.
func (s *Stripe) NewReader(start, n int) *Reader {
	return &Reader{s: s, pos: start, end: start + n}
}

// Remaining returns the number of keys not yet read.
func (r *Reader) Remaining() int { return r.end - r.pos }

// Next fills dst (len a multiple of B) with the next keys and returns the
// number read, which is less than len(dst) only at the end of the range.
func (r *Reader) Next(dst []int64) (int, error) {
	n := len(dst)
	if rem := r.end - r.pos; n > rem {
		n = rem
	}
	if n == 0 {
		return 0, nil
	}
	if err := r.s.ReadAt(r.pos, dst[:n]); err != nil {
		return 0, err
	}
	r.pos += n
	return n, nil
}

// Writer streams keys into a stripe sequentially.
type Writer struct {
	s   *Stripe
	pos int
}

// NewWriter returns a Writer appending from key offset start.
func (s *Stripe) NewWriter(start int) *Writer {
	return &Writer{s: s, pos: start}
}

// Write appends src (len a multiple of B) to the stripe.
func (w *Writer) Write(src []int64) error {
	if err := w.s.WriteAt(w.pos, src); err != nil {
		return err
	}
	w.pos += len(src)
	return nil
}

// Pos returns the key offset the next Write will land at.
func (w *Writer) Pos() int { return w.pos }
