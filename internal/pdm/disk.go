package pdm

import (
	"fmt"
	"sync"
)

// Disk is one disk of a PDM array.  Offsets are in blocks; every transfer
// moves exactly one block of B keys.  Implementations must be safe for
// fully concurrent use: besides the array's per-disk I/O goroutines, the
// streaming layer (internal/stream) overlaps prefetch and write-behind
// transfers with the algorithm's own requests, so one disk may see several
// concurrent operations (always on distinct blocks).
type Disk interface {
	// ReadBlock copies block off into dst (len(dst) == B).
	ReadBlock(off int, dst []int64) error
	// WriteBlock stores src (len(src) == B) as block off, extending the disk
	// if off is the first unused offset or beyond.
	WriteBlock(off int, src []int64) error
	// Blocks returns the number of blocks currently stored.
	Blocks() int
	// Close releases any resources held by the disk.
	Close() error
}

// ZeroCopyDisk is the optional capability a Disk may implement to serve
// blocks as direct word views into its own storage, skipping the caller's
// staging copy.  Views obey the borrow contract: they stay valid until the
// disk is closed (even across growth), read views must not be written
// through, and a write view's contents count as written the moment it is
// handed out.  The capability is advisory — ZeroCopy may report false on
// platforms or configurations where views cannot be served, in which case
// the borrow methods return an error and callers use the copying path.
type ZeroCopyDisk interface {
	Disk
	// ZeroCopy reports whether the borrow methods actually work.
	ZeroCopy() bool
	// ReadBlockZero returns a read-only view of block off.
	ReadBlockZero(off int) ([]int64, error)
	// WriteBlockZero extends the disk to cover off and returns a writable
	// view of block off for the caller to fill.
	WriteBlockZero(off int) ([]int64, error)
}

// MemDisk is an in-memory Disk: a growable store of B-key blocks.  It is the
// default backend for tests and benchmarks — exact, deterministic, and fast.
type MemDisk struct {
	mu     sync.Mutex
	b      int
	blocks [][]int64
}

// NewMemDisk returns an empty in-memory disk with block size b.
func NewMemDisk(b int) *MemDisk {
	return &MemDisk{b: b}
}

// ReadBlock implements Disk.
func (d *MemDisk) ReadBlock(off int, dst []int64) error {
	if len(dst) != d.b {
		return ErrBadBlock
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if off < 0 || off >= len(d.blocks) || d.blocks[off] == nil {
		return fmt.Errorf("%w: read of block %d (disk holds %d)", ErrOutOfRange, off, len(d.blocks))
	}
	copy(dst, d.blocks[off])
	return nil
}

// WriteBlock implements Disk.
func (d *MemDisk) WriteBlock(off int, src []int64) error {
	if len(src) != d.b {
		return ErrBadBlock
	}
	if off < 0 {
		return fmt.Errorf("%w: write of block %d", ErrOutOfRange, off)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	for off >= len(d.blocks) {
		d.blocks = append(d.blocks, nil)
	}
	if d.blocks[off] == nil {
		d.blocks[off] = make([]int64, d.b)
	}
	copy(d.blocks[off], src)
	return nil
}

// Blocks implements Disk.
func (d *MemDisk) Blocks() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.blocks)
}

// Close implements Disk.  It frees the block store.
func (d *MemDisk) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.blocks = nil
	return nil
}
