package pdm

import (
	"fmt"
	"sort"
	"sync"
)

// Arena meters the internal memory used by an algorithm.  Every in-core
// buffer a PDM algorithm holds must be obtained from the array's arena, so
// the peak usage recorded here is the algorithm's true internal-memory
// footprint in keys, checked against the model's M (times the configured
// slack) in tests.
type Arena struct {
	mu       sync.Mutex
	capacity int
	used     int
	peak     int
	phases   map[string]int
	phase    string
}

// NewArena returns an arena with the given capacity in keys.
func NewArena(capacity int) *Arena {
	return &Arena{capacity: capacity, phases: make(map[string]int)}
}

// Alloc reserves and returns a zeroed buffer of n keys, or
// ErrMemoryExceeded if the reservation would exceed the arena capacity.
func (ar *Arena) Alloc(n int) ([]int64, error) {
	if err := ar.Reserve(n); err != nil {
		return nil, err
	}
	return make([]int64, n), nil
}

// MustAlloc is Alloc for callers (tests, examples) that treat exhaustion as
// a fatal bug.
func (ar *Arena) MustAlloc(n int) []int64 {
	buf, err := ar.Alloc(n)
	if err != nil {
		panic(err)
	}
	return buf
}

// Free releases a buffer previously returned by Alloc.  Only the length
// matters; the arena does not track identity.
func (ar *Arena) Free(buf []int64) {
	ar.Release(len(buf))
}

// Reserve charges n keys against the arena without handing out a buffer —
// the sub-budgeting primitive the job scheduler carves per-job memory
// envelopes with: a whole child machine's arena capacity is reserved on a
// global ledger arena at admission and Released when the job's resources
// are torn down, so concurrent jobs can never oversubscribe the machine's
// internal memory.  It fails with ErrMemoryExceeded exactly like Alloc.
func (ar *Arena) Reserve(n int) error {
	if n < 0 {
		return fmt.Errorf("pdm: negative arena request %d", n)
	}
	ar.mu.Lock()
	defer ar.mu.Unlock()
	if ar.used+n > ar.capacity {
		return fmt.Errorf("%w: in use %d + reservation %d > capacity %d",
			ErrMemoryExceeded, ar.used, n, ar.capacity)
	}
	ar.used += n
	if ar.used > ar.peak {
		ar.peak = ar.used
	}
	if ar.phase != "" && ar.used > ar.phases[ar.phase] {
		ar.phases[ar.phase] = ar.used
	}
	return nil
}

// Release returns n keys previously charged by Reserve (or by Alloc, whose
// Free delegates here).
func (ar *Arena) Release(n int) {
	ar.mu.Lock()
	defer ar.mu.Unlock()
	ar.used -= n
	if ar.used < 0 {
		// Releasing more than was charged is a caller bug severe enough to
		// surface loudly: it would silently defeat the memory model.
		panic(fmt.Sprintf("pdm: arena underflow: released %d with only %d in use", n, ar.used+n))
	}
}

// SetPhase labels subsequent allocations so that per-phase peaks can be
// reported (e.g. "run formation" vs "cleanup").  An empty name disables
// labeling.
func (ar *Arena) SetPhase(name string) {
	ar.mu.Lock()
	defer ar.mu.Unlock()
	ar.phase = name
	if name != "" && ar.phases[name] < ar.used {
		ar.phases[name] = ar.used
	}
}

// InUse returns the number of keys currently allocated.
func (ar *Arena) InUse() int {
	ar.mu.Lock()
	defer ar.mu.Unlock()
	return ar.used
}

// Peak returns the maximum number of keys ever simultaneously allocated.
func (ar *Arena) Peak() int {
	ar.mu.Lock()
	defer ar.mu.Unlock()
	return ar.peak
}

// Capacity returns the arena capacity in keys.
func (ar *Arena) Capacity() int {
	ar.mu.Lock()
	defer ar.mu.Unlock()
	return ar.capacity
}

// ResetPeak zeroes the recorded peaks (global and per phase) without touching
// live allocations, so a harness can meter phases independently.
func (ar *Arena) ResetPeak() {
	ar.mu.Lock()
	defer ar.mu.Unlock()
	ar.peak = ar.used
	ar.phases = make(map[string]int)
}

// PhasePeaks returns the recorded per-phase peaks as "name=peak" lines,
// sorted by name, for reports.
func (ar *Arena) PhasePeaks() []string {
	ar.mu.Lock()
	defer ar.mu.Unlock()
	names := make([]string, 0, len(ar.phases))
	for name := range ar.phases {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]string, len(names))
	for i, name := range names {
		out[i] = fmt.Sprintf("%s=%d", name, ar.phases[name])
	}
	return out
}
