package pdm

import (
	"testing"
	"testing/quick"
)

func TestStripeSkewRotation(t *testing.T) {
	a, err := New(testConfig()) // D = 4
	if err != nil {
		t.Fatal(err)
	}
	for _, skew := range []int{0, 1, 3, 4, 7, -1} {
		s, err := a.NewStripeSkew(a.B()*8, skew)
		if err != nil {
			t.Fatal(err)
		}
		want := ((skew % 4) + 4) % 4
		if s.Skew() != want {
			t.Fatalf("skew %d normalized to %d, want %d", skew, s.Skew(), want)
		}
		if got := s.BlockAddr(0).Disk; got != want {
			t.Fatalf("skew %d: block 0 on disk %d, want %d", skew, got, want)
		}
		// Each row's D blocks must still map bijectively onto the disks.
		seen := map[int]bool{}
		for j := 0; j < a.D(); j++ {
			ad := s.BlockAddr(j)
			if seen[ad.Disk] {
				t.Fatalf("skew %d: disk %d used twice in one row", skew, ad.Disk)
			}
			seen[ad.Disk] = true
		}
	}
}

func TestSkewedStripesDoNotCollide(t *testing.T) {
	// Two stripes with different skews must occupy disjoint physical
	// blocks; writing one must not disturb the other.
	a, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	s1, err := a.NewStripeSkew(a.StripeWidth(), 1)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := a.NewStripeSkew(a.StripeWidth(), 3)
	if err != nil {
		t.Fatal(err)
	}
	d1 := make([]int64, s1.Len())
	d2 := make([]int64, s2.Len())
	for i := range d1 {
		d1[i] = int64(i)
		d2[i] = int64(-i)
	}
	if err := s1.WriteAt(0, d1); err != nil {
		t.Fatal(err)
	}
	if err := s2.WriteAt(0, d2); err != nil {
		t.Fatal(err)
	}
	got1 := make([]int64, s1.Len())
	if err := s1.ReadAt(0, got1); err != nil {
		t.Fatal(err)
	}
	for i := range d1 {
		if got1[i] != d1[i] {
			t.Fatalf("stripe 1 corrupted at %d", i)
		}
	}
}

func TestSkewQuickBijection(t *testing.T) {
	a, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	f := func(skewRaw uint8, rowRaw uint8) bool {
		s, err := a.NewStripeSkew(a.StripeWidth()*4, int(skewRaw))
		if err != nil {
			return false
		}
		defer s.Free()
		row := int(rowRaw) % 4
		seen := map[BlockAddr]bool{}
		for j := row * a.D(); j < (row+1)*a.D(); j++ {
			ad := s.BlockAddr(j)
			if seen[ad] {
				return false
			}
			seen[ad] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestWriteVPartialDiskParticipation(t *testing.T) {
	// A request touching a strict subset of disks is charged by its most
	// loaded disk only.
	a, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	bufs := [][]int64{make([]int64, a.B()), make([]int64, a.B())}
	if err := a.WriteV([]BlockAddr{{1, 0}, {2, 0}}, bufs); err != nil {
		t.Fatal(err)
	}
	if s := a.Stats(); s.WriteSteps != 1 {
		t.Fatalf("two blocks on two disks cost %d steps, want 1", s.WriteSteps)
	}
}
