package pdm

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestStripeRoundTrip(t *testing.T) {
	a, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	n := a.StripeWidth() * 3 // 96 keys
	s, err := a.NewStripe(n)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]int64, n)
	for i := range data {
		data[i] = int64(n - i)
	}
	if err := s.WriteAt(0, data); err != nil {
		t.Fatal(err)
	}
	got := make([]int64, n)
	if err := s.ReadAt(0, got); err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("key %d = %d, want %d", i, got[i], data[i])
		}
	}
}

func TestStripeFullParallelism(t *testing.T) {
	// Sequential access to a stripe must achieve one step per D blocks.
	a, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	n := a.StripeWidth() * 4
	s, err := a.NewStripe(n)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]int64, n)
	if err := s.WriteAt(0, data); err != nil {
		t.Fatal(err)
	}
	st := a.Stats()
	if want := int64(4); st.WriteSteps != want {
		t.Fatalf("WriteSteps = %d, want %d (full parallelism)", st.WriteSteps, want)
	}
	if eff := st.WriteEfficiency(a.D()); eff != 1 {
		t.Fatalf("WriteEfficiency = %v, want 1", eff)
	}
}

func TestStripeAlignmentAndRange(t *testing.T) {
	a, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.NewStripe(a.B() + 1); !errors.Is(err, ErrUnaligned) {
		t.Fatalf("unaligned stripe: err = %v, want ErrUnaligned", err)
	}
	if _, err := a.NewStripe(0); !errors.Is(err, ErrUnaligned) {
		t.Fatalf("empty stripe: err = %v, want ErrUnaligned", err)
	}
	s, err := a.NewStripe(a.B() * 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.ReadAt(1, make([]int64, a.B())); !errors.Is(err, ErrUnaligned) {
		t.Fatalf("unaligned offset: err = %v, want ErrUnaligned", err)
	}
	if err := s.ReadAt(0, make([]int64, a.B()*3)); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("over-read: err = %v, want ErrOutOfRange", err)
	}
}

func TestStripeBlockAddrRoundRobin(t *testing.T) {
	a, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	s, err := a.NewStripe(a.StripeWidth() * 2)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < s.Blocks(); j++ {
		ad := s.BlockAddr(j)
		if ad.Disk != j%a.D() {
			t.Fatalf("block %d on disk %d, want %d", j, ad.Disk, j%a.D())
		}
	}
}

func TestRowAllocatorReuse(t *testing.T) {
	a, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	s1, err := a.NewStripe(a.StripeWidth() * 2)
	if err != nil {
		t.Fatal(err)
	}
	addr := s1.BlockAddr(0)
	s1.Free()
	s2, err := a.NewStripe(a.StripeWidth() * 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := s2.BlockAddr(0); got != addr {
		t.Fatalf("freed rows not reused: got %+v, want %+v", got, addr)
	}
}

func TestRowAllocatorCoalesce(t *testing.T) {
	var ra rowAllocator
	a := ra.alloc(2)
	b := ra.alloc(3)
	ra.release(a, 2)
	ra.release(b, 3)
	if got := ra.alloc(5); got != a {
		t.Fatalf("coalesced alloc = %d, want %d", got, a)
	}
}

func TestLoadUnloadDoNotCount(t *testing.T) {
	a, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	s, err := a.NewStripe(a.StripeWidth())
	if err != nil {
		t.Fatal(err)
	}
	data := make([]int64, s.Len())
	for i := range data {
		data[i] = int64(i * 7)
	}
	if err := s.Load(data); err != nil {
		t.Fatal(err)
	}
	got, err := s.Unload()
	if err != nil {
		t.Fatal(err)
	}
	if st := a.Stats(); st != (Stats{}) {
		t.Fatalf("Load/Unload changed stats: %+v", st)
	}
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("key %d = %d, want %d", i, got[i], data[i])
		}
	}
	if err := s.Load(data[:1]); err == nil {
		t.Fatal("short Load accepted")
	}
}

func TestReaderWriterStreaming(t *testing.T) {
	a, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	n := a.StripeWidth() * 3
	s, err := a.NewStripe(n)
	if err != nil {
		t.Fatal(err)
	}
	w := s.NewWriter(0)
	chunk := a.B() * 2
	next := int64(0)
	for w.Pos() < n {
		buf := make([]int64, chunk)
		for i := range buf {
			buf[i] = next
			next++
		}
		if err := w.Write(buf); err != nil {
			t.Fatal(err)
		}
	}
	r := s.NewReader(0, n)
	if r.Remaining() != n {
		t.Fatalf("Remaining = %d, want %d", r.Remaining(), n)
	}
	var out []int64
	buf := make([]int64, chunk)
	for {
		k, err := r.Next(buf)
		if err != nil {
			t.Fatal(err)
		}
		if k == 0 {
			break
		}
		out = append(out, buf[:k]...)
	}
	if len(out) != n {
		t.Fatalf("read %d keys, want %d", len(out), n)
	}
	for i, v := range out {
		if v != int64(i) {
			t.Fatalf("key %d = %d, want %d", i, v, i)
		}
	}
}

func TestStripeQuickRoundTrip(t *testing.T) {
	// Property: for any block-aligned write inside the stripe, reading the
	// same range returns the written data.
	a, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	s, err := a.NewStripe(a.StripeWidth() * 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.WriteAt(0, make([]int64, s.Len())); err != nil {
		t.Fatal(err)
	}
	f := func(blockOff uint8, nBlocks uint8, fill int64) bool {
		b := a.B()
		off := (int(blockOff) % s.Blocks()) * b
		nb := 1 + int(nBlocks)%4
		if off+nb*b > s.Len() {
			nb = (s.Len() - off) / b
		}
		src := make([]int64, nb*b)
		for i := range src {
			src[i] = fill + int64(i)
		}
		if err := s.WriteAt(off, src); err != nil {
			return false
		}
		dst := make([]int64, len(src))
		if err := s.ReadAt(off, dst); err != nil {
			return false
		}
		for i := range src {
			if dst[i] != src[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
