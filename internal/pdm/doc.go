// Package pdm implements the Parallel Disk Model (PDM) of Vitter and Shriver
// as used by Rajasekaran and Sen (IPPS 2005): a machine with D independent
// disks, block size B, and internal memory of M keys.  In one parallel I/O
// step the machine may transfer at most one block per disk.  A "pass" over N
// keys is N/(DB) parallel read steps plus the same number of write steps.
//
// The package provides disk backends — an in-memory block store (MemDisk),
// which is exact and deterministic, a real-file backend (FileDisk) safe for
// fully concurrent per-disk I/O, a memory-mapped backend (MmapDisk) that
// serves blocks as in-place word views with the same on-disk format, and a
// latency-modeling decorator (LatencyDisk) — plus the machinery every PDM
// algorithm in this repository is written against: vectored block I/O with
// step accounting (Array.ReadV / Array.WriteV), the transfer/charge split
// the streaming layer builds on (Array.TransferV / Array.ChargeV, see
// internal/stream), zero-copy block borrowing where the backend supports
// it (ZeroCopyDisk, Array.BorrowReadV / Array.BorrowWrite — physical
// transfers the caller pairs with ChargeV, so accounting stays identical
// across backends), striped logical arrays (Stripe), sequential striped
// streams (Reader, Writer), and a metered internal-memory arena (Arena).
//
// The unit of data is the key, an int64.  Records are keys, as in the paper.
package pdm
