//go:build !(linux || darwin || freebsd || netbsd || openbsd || dragonfly)

package pdm

// MmapDisk on platforms without mmap support is a thin wrapper over
// FileDisk: the same on-disk format and semantics, no zero-copy views.
type MmapDisk struct {
	*FileDisk
}

// NewMmapDisk creates (truncating) a disk at path with block size b keys,
// falling back to the read/write FileDisk implementation.
func NewMmapDisk(path string, b int) (*MmapDisk, error) {
	fd, err := NewFileDisk(path, b)
	if err != nil {
		return nil, err
	}
	return &MmapDisk{fd}, nil
}

// ZeroCopy implements ZeroCopyDisk: the fallback cannot serve views.
func (d *MmapDisk) ZeroCopy() bool { return false }

// ReadBlockZero implements ZeroCopyDisk.
func (d *MmapDisk) ReadBlockZero(off int) ([]int64, error) {
	return nil, errNoZeroCopy
}

// WriteBlockZero implements ZeroCopyDisk.
func (d *MmapDisk) WriteBlockZero(off int) ([]int64, error) {
	return nil, errNoZeroCopy
}
