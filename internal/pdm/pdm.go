package pdm

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/par"
)

// Common errors returned by the simulator.
var (
	// ErrMemoryExceeded is returned by Arena.Alloc when an allocation would
	// push the total in-use memory past the configured capacity.
	ErrMemoryExceeded = errors.New("pdm: internal memory capacity exceeded")

	// ErrBadBlock is returned when a buffer passed to block I/O does not have
	// length exactly B.
	ErrBadBlock = errors.New("pdm: buffer length is not the block size")

	// ErrOutOfRange is returned for block offsets or key ranges outside the
	// allocated region.
	ErrOutOfRange = errors.New("pdm: address out of range")

	// ErrUnaligned is returned when a key range is not block aligned.
	ErrUnaligned = errors.New("pdm: key range not block aligned")
)

// Config describes a PDM instance.
type Config struct {
	// D is the number of independent disks.
	D int
	// B is the block size in keys.  One parallel I/O step moves at most one
	// block per disk.
	B int
	// Mem is the internal memory size M in keys.  The paper assumes
	// M = C·D·B for a small constant C.
	Mem int
	// MemSlack scales the arena capacity: capacity = MemSlack·M + D·B.
	// The paper's cleanup phases hold two length-M chunks simultaneously
	// (Section 5, step 2), i.e. the paper implicitly allows a small
	// constant multiple of M during local sorting; the D·B term is one
	// stripe of I/O staging for scatter/gather writes.  Zero means the
	// default of 2.
	MemSlack float64

	// SeekTime and TransferPerKey parameterize the optional simulated-time
	// model: each parallel I/O step costs SeekTime + B·TransferPerKey time
	// units.  Zero values disable the respective component.
	SeekTime       float64
	TransferPerKey float64

	// Pipeline configures the streaming I/O layer (internal/stream) built
	// on this array.  The zero value keeps every transfer synchronous.
	Pipeline PipelineConfig

	// Workers sizes the compute worker pool (internal/par) the algorithms
	// use for in-memory sorting, merging, and shuffling; zero selects
	// GOMAXPROCS.  Any value yields bit-identical output, statistics, and
	// I/O traces — the pool changes wall-clock only.
	Workers int

	// Limiter, when non-nil, attaches this array's compute pool to a
	// cross-array worker budget: the job scheduler passes one limiter to
	// every concurrent job's array so their pools share a single global
	// compute width instead of multiplying it.  Results are unaffected.
	Limiter *par.Limiter

	// Kernel selects the pool's in-memory sort kernel (par.KernelAuto,
	// par.KernelComparison, par.KernelRadix).  Like Workers, it changes
	// wall-clock only: output, pass counts, statistics, and I/O traces are
	// bit-identical for every kernel.  The zero value (Auto) resolves per
	// load size via par.AutoKernel.
	Kernel par.Kernel
}

// PipelineConfig sizes the pipelined I/O layer.  Depths are measured in
// stripes (D·B keys each); the staging buffers come out of the arena, so
// the capacity formula grows by PipelineStaging() — the memory cost of
// overlapping transfer with computation is charged like any other buffer.
type PipelineConfig struct {
	// Prefetch is the number of stripe buffers a stream.Reader may fill
	// ahead of the consumer.  Zero means synchronous reads.
	Prefetch int
	// WriteBehind is the number of stripe buffers a stream.Writer may
	// hold in flight behind the producer.  Zero means synchronous writes.
	WriteBehind int
}

// PipelineStaging returns the extra arena capacity, in keys, the pipeline
// configuration reserves: one stripe per prefetch or write-behind slot.
func (c Config) PipelineStaging() int {
	return (c.Pipeline.Prefetch + c.Pipeline.WriteBehind) * c.D * c.B
}

// ArenaCapacity returns the arena capacity, in keys, an Array built from
// this configuration provisions: MemSlack·M of algorithm envelope (the
// paper's cleanup phases hold two M-key chunks), one stripe of scatter/
// gather staging, and the pipeline's staging.  The scheduler reserves
// exactly this amount per job on its global memory ledger.
func (c Config) ArenaCapacity() int {
	slack := c.MemSlack
	if slack == 0 {
		slack = 2
	}
	return int(float64(c.Mem)*slack) + c.D*c.B + c.PipelineStaging()
}

// C returns the memory-to-stripe ratio M/(D·B), the constant the paper
// calls C.
func (c Config) C() float64 { return float64(c.Mem) / float64(c.D*c.B) }

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	switch {
	case c.D < 1:
		return fmt.Errorf("pdm: D = %d, want >= 1", c.D)
	case c.B < 1:
		return fmt.Errorf("pdm: B = %d, want >= 1", c.B)
	case c.Mem < c.D*c.B:
		return fmt.Errorf("pdm: M = %d smaller than one stripe D*B = %d", c.Mem, c.D*c.B)
	case c.MemSlack < 0:
		return fmt.Errorf("pdm: MemSlack = %v, want >= 0", c.MemSlack)
	case c.Pipeline.Prefetch < 0 || c.Pipeline.WriteBehind < 0:
		return fmt.Errorf("pdm: pipeline depths %+v, want >= 0", c.Pipeline)
	case c.Workers < 0:
		return fmt.Errorf("pdm: Workers = %d, want >= 0", c.Workers)
	case c.Kernel < par.KernelAuto || c.Kernel > par.KernelRadix:
		return fmt.Errorf("pdm: Kernel = %d, want a par.Kernel value", c.Kernel)
	}
	return nil
}

// BlockAddr names one physical block: block Off on disk Disk.
type BlockAddr struct {
	Disk int
	Off  int
}

// Array is a PDM disk array: D disks plus the accounting state shared by all
// algorithms running against it (I/O statistics, memory arena, and the block
// allocator used by Stripe).
//
// The accounting state (stats, trace, block allocator) is guarded by mu so
// that the streaming layer's background transfer goroutines can run while
// the algorithm goroutine keeps charging I/O.
type Array struct {
	cfg   Config
	disks []Disk
	arena *Arena
	pool  *par.Pool

	// ctx, when bound, aborts every subsequent I/O once canceled — the
	// scheduler's cancellation path down into the pass helpers.
	ctx atomic.Pointer[context.Context]

	// zc is non-nil iff every disk serves zero-copy views (ZeroCopyDisk
	// with ZeroCopy() true); the borrow APIs in io.go require all-or-
	// nothing so a vectored request never mixes borrowed and copied blocks.
	zc []ZeroCopyDisk

	mu    sync.Mutex
	stats Stats
	alloc rowAllocator
	trace []TraceOp

	// ckpt/resume are the pass-boundary durability seam (checkpoint.go):
	// PassDone hands completed-pass manifests to ckpt, and TakeResume
	// lets the owning algorithm claim resume to skip finished passes.
	ckpt           Checkpointer
	resume         *Checkpoint
	resumeConsumed bool
}

// NewMemDisks creates d in-memory disks with block size b keys.
func NewMemDisks(d, b int) []Disk {
	disks := make([]Disk, d)
	for i := range disks {
		disks[i] = NewMemDisk(b)
	}
	return disks
}

// New creates an Array backed by fresh in-memory disks.
func New(cfg Config) (*Array, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return NewWithDisks(cfg, NewMemDisks(cfg.D, cfg.B))
}

// NewWithDisks creates an Array from caller-provided disks (for example
// FileDisk instances).  len(disks) must equal cfg.D.
func NewWithDisks(cfg Config, disks []Disk) (*Array, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(disks) != cfg.D {
		return nil, fmt.Errorf("pdm: got %d disks, config says D = %d", len(disks), cfg.D)
	}
	a := &Array{
		cfg:   cfg,
		disks: disks,
		arena: NewArena(cfg.ArenaCapacity()),
		pool:  par.NewWithKernel(cfg.Workers, cfg.Limiter, cfg.Kernel),
	}
	zc := make([]ZeroCopyDisk, len(disks))
	for i, d := range disks {
		z, ok := d.(ZeroCopyDisk)
		if !ok || !z.ZeroCopy() {
			zc = nil
			break
		}
		zc[i] = z
	}
	a.zc = zc
	return a, nil
}

// BindContext ties subsequent I/O on the array to ctx: once ctx is
// canceled, every ReadV, WriteV, and TransferV — and therefore every pass
// helper and streaming transfer built on them — fails with an error
// wrapping ctx.Err().  The facade's SortContext binds the job's context
// for the duration of one sort; a nil ctx unbinds.  Accounting stays
// honest: a request rejected here charges no steps and records no trace,
// exactly like any other validation failure.
func (a *Array) BindContext(ctx context.Context) {
	if ctx == nil {
		a.ctx.Store(nil)
		return
	}
	a.ctx.Store(&ctx)
}

// CtxErr reports whether the bound context (if any) has been canceled,
// wrapping its error so callers can errors.Is against context.Canceled.
func (a *Array) CtxErr() error {
	p := a.ctx.Load()
	if p == nil {
		return nil
	}
	if err := (*p).Err(); err != nil {
		return fmt.Errorf("pdm: aborted: %w", err)
	}
	return nil
}

// Config returns the array's configuration.
func (a *Array) Config() Config { return a.cfg }

// D returns the number of disks.
func (a *Array) D() int { return a.cfg.D }

// B returns the block size in keys.
func (a *Array) B() int { return a.cfg.B }

// Mem returns the nominal internal memory size M in keys.
func (a *Array) Mem() int { return a.cfg.Mem }

// StripeWidth returns D·B, the number of keys moved by one fully parallel
// I/O step.
func (a *Array) StripeWidth() int { return a.cfg.D * a.cfg.B }

// Arena returns the internal-memory arena shared by algorithms on this array.
func (a *Array) Arena() *Arena { return a.arena }

// Pipeline returns the array's pipeline configuration.
func (a *Array) Pipeline() PipelineConfig { return a.cfg.Pipeline }

// Pool returns the compute worker pool shared by algorithms on this array.
func (a *Array) Pool() *par.Pool { return a.pool }

// Workers returns the resolved width of the compute worker pool.
func (a *Array) Workers() int { return a.pool.Workers() }

// Stats returns a snapshot of the accumulated I/O statistics, with the
// compute pool's observability counters folded in.
func (a *Array) Stats() Stats {
	a.mu.Lock()
	s := a.stats
	a.mu.Unlock()
	s.ComputeSections, s.ComputeWallNanos, s.ComputeBusyNanos = a.pool.Counters()
	return s
}

// DiskFootprint returns the high-water on-disk footprint in keys: the rows
// the block allocator has ever handed out (they are reused but never
// shrunk) times the stripe width.  The scheduler checks it against each
// job's admitted disk envelope.
func (a *Array) DiskFootprint() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.alloc.next * a.cfg.D * a.cfg.B
}

// ResetStats zeroes the I/O statistics and the compute counters (the arena
// and disk contents are untouched).
func (a *Array) ResetStats() {
	a.mu.Lock()
	a.stats = Stats{}
	a.mu.Unlock()
	a.pool.ResetCounters()
}

// Close closes all disks, returning the first error encountered.
func (a *Array) Close() error {
	var first error
	for _, d := range a.disks {
		if err := d.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
