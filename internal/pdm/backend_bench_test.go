package pdm

import (
	"path/filepath"
	"testing"
)

// Backend micro-benchmarks: one block read or write per iteration on each
// disk backend, at a block size typical of the facade's default geometry.
// CI's short-bench leg runs these; the end-to-end pairing lives in
// cmd/benchjson's backends series.

const benchBlockKeys = 1024 // 8 KiB blocks

func newBenchDisk(b *testing.B, kind string) Disk {
	b.Helper()
	var d Disk
	var err error
	switch kind {
	case "mem":
		d = NewMemDisk(benchBlockKeys)
	case "file":
		d, err = NewFileDisk(filepath.Join(b.TempDir(), "d0.bin"), benchBlockKeys)
	case "mmap":
		d, err = NewMmapDisk(filepath.Join(b.TempDir(), "d0.bin"), benchBlockKeys)
	}
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { d.Close() }) //nolint:errcheck // bench teardown
	return d
}

func BenchmarkBackendWriteBlock(b *testing.B) {
	for _, kind := range []string{"mem", "file", "mmap"} {
		b.Run(kind, func(b *testing.B) {
			d := newBenchDisk(b, kind)
			blk := make([]int64, benchBlockKeys)
			for i := range blk {
				blk[i] = int64(i) * 11
			}
			const window = 64 // rewrite a fixed window: no unbounded growth
			b.SetBytes(benchBlockKeys * 8)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := d.WriteBlock(i%window, blk); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkBackendReadBlock(b *testing.B) {
	for _, kind := range []string{"mem", "file", "mmap"} {
		b.Run(kind, func(b *testing.B) {
			d := newBenchDisk(b, kind)
			blk := make([]int64, benchBlockKeys)
			const window = 64
			for off := 0; off < window; off++ {
				if err := d.WriteBlock(off, blk); err != nil {
					b.Fatal(err)
				}
			}
			b.SetBytes(benchBlockKeys * 8)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := d.ReadBlock(i%window, blk); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
