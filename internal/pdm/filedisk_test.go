package pdm

import (
	"errors"
	"testing"
)

func TestFileDiskRoundTrip(t *testing.T) {
	dir := t.TempDir()
	d, err := NewFileDisk(dir+"/d0.bin", 4)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	src := []int64{-1, 0, 1, 1 << 40}
	if err := d.WriteBlock(2, src); err != nil {
		t.Fatal(err)
	}
	if got := d.Blocks(); got != 3 {
		t.Fatalf("Blocks = %d, want 3", got)
	}
	dst := make([]int64, 4)
	if err := d.ReadBlock(2, dst); err != nil {
		t.Fatal(err)
	}
	for i := range src {
		if dst[i] != src[i] {
			t.Fatalf("key %d = %d, want %d", i, dst[i], src[i])
		}
	}
	if err := d.ReadBlock(5, dst); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("read past end: err = %v, want ErrOutOfRange", err)
	}
	if err := d.ReadBlock(0, make([]int64, 1)); !errors.Is(err, ErrBadBlock) {
		t.Fatalf("bad buffer: err = %v, want ErrBadBlock", err)
	}
	if d.Path() == "" {
		t.Fatal("Path is empty")
	}
}

func TestFileArrayEndToEnd(t *testing.T) {
	cfg := Config{D: 3, B: 4, Mem: 48}
	a, err := NewFileArray(cfg, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	n := a.StripeWidth() * 2
	s, err := a.NewStripe(n)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]int64, n)
	for i := range data {
		data[i] = int64(i * 3)
	}
	if err := s.WriteAt(0, data); err != nil {
		t.Fatal(err)
	}
	got := make([]int64, n)
	if err := s.ReadAt(0, got); err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("key %d = %d, want %d", i, got[i], data[i])
		}
	}
	if st := a.Stats(); st.WriteSteps != 2 || st.ReadSteps != 2 {
		t.Fatalf("stats = %+v, want 2 read and 2 write steps", st)
	}
}
