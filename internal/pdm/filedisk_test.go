package pdm

import (
	"errors"
	"runtime/debug"
	"strings"
	"sync/atomic"
	"testing"
)

func TestFileDiskRoundTrip(t *testing.T) {
	dir := t.TempDir()
	d, err := NewFileDisk(dir+"/d0.bin", 4)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	src := []int64{-1, 0, 1, 1 << 40}
	if err := d.WriteBlock(2, src); err != nil {
		t.Fatal(err)
	}
	if got := d.Blocks(); got != 3 {
		t.Fatalf("Blocks = %d, want 3", got)
	}
	dst := make([]int64, 4)
	if err := d.ReadBlock(2, dst); err != nil {
		t.Fatal(err)
	}
	for i := range src {
		if dst[i] != src[i] {
			t.Fatalf("key %d = %d, want %d", i, dst[i], src[i])
		}
	}
	if err := d.ReadBlock(5, dst); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("read past end: err = %v, want ErrOutOfRange", err)
	}
	if err := d.ReadBlock(0, make([]int64, 1)); !errors.Is(err, ErrBadBlock) {
		t.Fatalf("bad buffer: err = %v, want ErrBadBlock", err)
	}
	if d.Path() == "" {
		t.Fatal("Path is empty")
	}
}

// TestFileDiskBufPoolCap pins the pool-retention fix: small blocks reuse
// one pooled encode buffer across operations, while blocks above
// maxPooledBufBytes are allocated per operation and dropped — the pool
// must not pin GOMAXPROCS × 8·B bytes for the disk's lifetime at large B.
func TestFileDiskBufPoolCap(t *testing.T) {
	defer debug.SetGCPercent(debug.SetGCPercent(-1)) // no GC: pool entries survive
	const iters = 16
	for _, tc := range []struct {
		name   string
		b      int
		pooled bool
	}{
		{"small-pooled", 512, true},         // 4 KiB buffer, under the cap
		{"large-dropped", 16 * 1024, false}, // 128 KiB buffer, over the cap
	} {
		t.Run(tc.name, func(t *testing.T) {
			d, err := NewFileDisk(t.TempDir()+"/d0.bin", tc.b)
			if err != nil {
				t.Fatal(err)
			}
			defer d.Close()
			var allocs atomic.Int64
			base := d.bufs.New
			d.bufs.New = func() any {
				allocs.Add(1)
				return base()
			}
			blk := make([]int64, tc.b)
			for i := 0; i < iters; i++ {
				if err := d.WriteBlock(i, blk); err != nil {
					t.Fatal(err)
				}
				if err := d.ReadBlock(i, blk); err != nil {
					t.Fatal(err)
				}
			}
			got := allocs.Load()
			if tc.pooled && got > 2 {
				t.Fatalf("pooled case allocated %d buffers over %d ops, want <= 2", got, 2*iters)
			}
			if !tc.pooled && got < 2*iters {
				t.Fatalf("oversized case allocated %d buffers over %d ops, want one per op", got, 2*iters)
			}
		})
	}
}

// TestFileDiskErrors drives the failure paths: a backing file shorter
// than the frontier claims (torn scratch), and growth / Close-trim on a
// dead file descriptor.
func TestFileDiskErrors(t *testing.T) {
	t.Run("short-read", func(t *testing.T) {
		path := t.TempDir() + "/d0.bin"
		d, err := NewFileDisk(path, 4)
		if err != nil {
			t.Fatal(err)
		}
		defer d.Close()
		if err := d.WriteBlock(0, []int64{1, 2, 3, 4}); err != nil {
			t.Fatal(err)
		}
		// Truncate the backing file beneath the frontier: the next read
		// must fail loudly, not hand back half a block.
		if err := d.f.Truncate(8); err != nil {
			t.Fatal(err)
		}
		if err := d.ReadBlock(0, make([]int64, 4)); err == nil || !strings.Contains(err.Error(), "read") {
			t.Fatalf("short read: err = %v, want wrapped read error", err)
		}
	})
	t.Run("grow-failure", func(t *testing.T) {
		d, err := NewFileDisk(t.TempDir()+"/d0.bin", 4)
		if err != nil {
			t.Fatal(err)
		}
		if err := d.f.Close(); err != nil {
			t.Fatal(err)
		}
		if err := d.WriteBlock(0, make([]int64, 4)); err == nil || !strings.Contains(err.Error(), "grow") {
			t.Fatalf("write on dead fd: err = %v, want grow error", err)
		}
	})
	t.Run("close-trim-failure", func(t *testing.T) {
		d, err := NewFileDisk(t.TempDir()+"/d0.bin", 4)
		if err != nil {
			t.Fatal(err)
		}
		if err := d.WriteBlock(0, make([]int64, 4)); err != nil {
			t.Fatal(err)
		}
		// Kill the fd under the disk: Close's trim truncate must surface.
		if err := d.f.Close(); err != nil {
			t.Fatal(err)
		}
		if err := d.Close(); err == nil || !strings.Contains(err.Error(), "trim") {
			t.Fatalf("Close on dead fd: err = %v, want trim error", err)
		}
	})
}

func TestFileArrayEndToEnd(t *testing.T) {
	cfg := Config{D: 3, B: 4, Mem: 48}
	a, err := NewFileArray(cfg, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	n := a.StripeWidth() * 2
	s, err := a.NewStripe(n)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]int64, n)
	for i := range data {
		data[i] = int64(i * 3)
	}
	if err := s.WriteAt(0, data); err != nil {
		t.Fatal(err)
	}
	got := make([]int64, n)
	if err := s.ReadAt(0, got); err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("key %d = %d, want %d", i, got[i], data[i])
		}
	}
	if st := a.Stats(); st.WriteSteps != 2 || st.ReadSteps != 2 {
		t.Fatalf("stats = %+v, want 2 read and 2 write steps", st)
	}
}
