package pdm

import (
	"errors"
	"fmt"
	"path/filepath"
)

// errNoZeroCopy is returned by the borrow APIs on disks (or platforms)
// that cannot serve direct block views.
var errNoZeroCopy = errors.New("pdm: disk does not support zero-copy block views")

// NewMmapDisks creates d mmap-backed disks named disk0000.bin … inside
// dir, with block size b keys, closing any already-created disks on
// failure.  The file naming matches NewFileDisks, so the two backends
// produce byte-identical scratch directories.
func NewMmapDisks(dir string, d, b int) ([]Disk, error) {
	disks := make([]Disk, d)
	for i := range disks {
		md, err := NewMmapDisk(filepath.Join(dir, fmt.Sprintf("disk%04d.bin", i)), b)
		if err != nil {
			for _, prev := range disks[:i] {
				prev.Close() //nolint:errcheck // best-effort cleanup
			}
			return nil, err
		}
		disks[i] = md
	}
	return disks, nil
}

// NewMmapArray creates a PDM array of cfg.D mmap-backed disks named
// disk0000.bin … inside dir.
func NewMmapArray(cfg Config, dir string) (*Array, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	disks, err := NewMmapDisks(dir, cfg.D, cfg.B)
	if err != nil {
		return nil, err
	}
	return NewWithDisks(cfg, disks)
}
