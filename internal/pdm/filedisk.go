package pdm

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// FileDisk is a Disk backed by a single ordinary file, with blocks stored as
// little-endian int64s at offset off·B·8.  An Array built from D FileDisks
// performs genuinely concurrent I/O: each parallel step issues its per-disk
// operations from separate goroutines, so on a machine where the files live
// on independent devices the transfer really is overlapped.
type FileDisk struct {
	mu     sync.Mutex
	f      *os.File
	b      int
	blocks int
	buf    []byte
}

// NewFileDisk creates (truncating) a file-backed disk at path with block
// size b keys.
func NewFileDisk(path string, b int) (*FileDisk, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("pdm: creating file disk: %w", err)
	}
	return &FileDisk{f: f, b: b, buf: make([]byte, 8*b)}, nil
}

// NewFileArray creates a PDM array of cfg.D file disks named disk0000.bin …
// inside dir.
func NewFileArray(cfg Config, dir string) (*Array, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	disks := make([]Disk, cfg.D)
	for i := range disks {
		fd, err := NewFileDisk(filepath.Join(dir, fmt.Sprintf("disk%04d.bin", i)), cfg.B)
		if err != nil {
			for _, d := range disks[:i] {
				d.Close() //nolint:errcheck // best-effort cleanup
			}
			return nil, err
		}
		disks[i] = fd
	}
	return NewWithDisks(cfg, disks)
}

// ReadBlock implements Disk.
func (d *FileDisk) ReadBlock(off int, dst []int64) error {
	if len(dst) != d.b {
		return ErrBadBlock
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if off < 0 || off >= d.blocks {
		return fmt.Errorf("%w: read of block %d (disk holds %d)", ErrOutOfRange, off, d.blocks)
	}
	if _, err := d.f.ReadAt(d.buf, int64(off)*int64(d.b)*8); err != nil {
		return fmt.Errorf("pdm: file disk read: %w", err)
	}
	for i := range dst {
		dst[i] = int64(binary.LittleEndian.Uint64(d.buf[8*i:]))
	}
	return nil
}

// WriteBlock implements Disk.
func (d *FileDisk) WriteBlock(off int, src []int64) error {
	if len(src) != d.b {
		return ErrBadBlock
	}
	if off < 0 {
		return fmt.Errorf("%w: write of block %d", ErrOutOfRange, off)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	for i, v := range src {
		binary.LittleEndian.PutUint64(d.buf[8*i:], uint64(v))
	}
	if _, err := d.f.WriteAt(d.buf, int64(off)*int64(d.b)*8); err != nil {
		return fmt.Errorf("pdm: file disk write: %w", err)
	}
	if off >= d.blocks {
		d.blocks = off + 1
	}
	return nil
}

// Blocks implements Disk.
func (d *FileDisk) Blocks() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.blocks
}

// Close implements Disk, closing and removing nothing: the file is left on
// disk so callers can inspect the sorted output.
func (d *FileDisk) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.f.Close()
}

// Path returns the backing file's name.
func (d *FileDisk) Path() string { return d.f.Name() }
