package pdm

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
)

// FileDisk is a Disk backed by a single ordinary file, with blocks stored as
// little-endian int64s at offset off·B·8.  All I/O goes through ReadAt /
// WriteAt on one persistent handle — no seek-then-read — so any number of
// goroutines may operate on the disk concurrently: an Array built from D
// FileDisks overlaps its per-disk operations, and the streaming layer's
// prefetchers and write-behind flushers can run alongside the algorithm.
//
// The backing file is grown in chunks of growBlocks blocks ahead of the
// write frontier, so steady sequential writes extend the file's metadata
// O(N/growBlocks) times instead of every block.
type FileDisk struct {
	f      *os.File
	b      int
	blocks atomic.Int64 // block count = write frontier
	grown  atomic.Int64 // preallocated size of the file, in blocks
	growMu sync.Mutex   // serializes Truncate growth
	bufs   sync.Pool    // *[]byte encode/decode buffers of 8·b bytes
}

// growBlocks is the file-preallocation chunk: the file is extended this many
// blocks at a time.
const growBlocks = 256

// maxPooledBufBytes caps the encode/decode buffers the pool retains.
// sync.Pool holds one entry per P between collections, so at large B the
// pool would pin GOMAXPROCS × 8·B bytes for the disk's whole lifetime;
// oversized buffers are used once and dropped instead.
const maxPooledBufBytes = 1 << 16

// putBuf returns an encode/decode buffer to the pool unless it exceeds the
// retention cap.
func (d *FileDisk) putBuf(bp *[]byte) {
	if len(*bp) > maxPooledBufBytes {
		return
	}
	d.bufs.Put(bp)
}

// NewFileDisk creates (truncating) a file-backed disk at path with block
// size b keys.
func NewFileDisk(path string, b int) (*FileDisk, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("pdm: creating file disk: %w", err)
	}
	d := &FileDisk{f: f, b: b}
	d.bufs.New = func() any {
		buf := make([]byte, 8*b)
		return &buf
	}
	return d, nil
}

// OpenFileDisk reopens an existing file-backed disk at path without
// truncating it: the write frontier is initialized from the file size,
// so blocks written by a previous process stay readable.  The resume
// path uses it to re-attach a job's surviving scratch files.
func OpenFileDisk(path string, b int) (*FileDisk, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("pdm: opening file disk: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close() //nolint:errcheck // surface the stat error instead
		return nil, fmt.Errorf("pdm: opening file disk: %w", err)
	}
	d := &FileDisk{f: f, b: b}
	blocks := st.Size() / (int64(b) * 8)
	d.blocks.Store(blocks)
	d.grown.Store(blocks)
	d.bufs.New = func() any {
		buf := make([]byte, 8*b)
		return &buf
	}
	return d, nil
}

// OpenFileDisks reopens d existing file disks named disk0000.bin …
// inside dir without truncating them (see OpenFileDisk).
func OpenFileDisks(dir string, d, b int) ([]Disk, error) {
	disks := make([]Disk, d)
	for i := range disks {
		fd, err := OpenFileDisk(filepath.Join(dir, fmt.Sprintf("disk%04d.bin", i)), b)
		if err != nil {
			for _, prev := range disks[:i] {
				prev.Close() //nolint:errcheck // best-effort cleanup
			}
			return nil, err
		}
		disks[i] = fd
	}
	return disks, nil
}

// NewFileDisks creates d file-backed disks named disk0000.bin … inside
// dir, with block size b keys, closing any already-created disks on
// failure.  NewFileArray and the facade's machine constructor share it.
func NewFileDisks(dir string, d, b int) ([]Disk, error) {
	disks := make([]Disk, d)
	for i := range disks {
		fd, err := NewFileDisk(filepath.Join(dir, fmt.Sprintf("disk%04d.bin", i)), b)
		if err != nil {
			for _, prev := range disks[:i] {
				prev.Close() //nolint:errcheck // best-effort cleanup
			}
			return nil, err
		}
		disks[i] = fd
	}
	return disks, nil
}

// NewFileArray creates a PDM array of cfg.D file disks named disk0000.bin …
// inside dir.
func NewFileArray(cfg Config, dir string) (*Array, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	disks, err := NewFileDisks(dir, cfg.D, cfg.B)
	if err != nil {
		return nil, err
	}
	return NewWithDisks(cfg, disks)
}

// ReadBlock implements Disk.
func (d *FileDisk) ReadBlock(off int, dst []int64) error {
	if len(dst) != d.b {
		return ErrBadBlock
	}
	if off < 0 || int64(off) >= d.blocks.Load() {
		return fmt.Errorf("%w: read of block %d (disk holds %d)", ErrOutOfRange, off, d.blocks.Load())
	}
	bp := d.bufs.Get().(*[]byte)
	buf := *bp
	defer d.putBuf(bp)
	if _, err := d.f.ReadAt(buf, int64(off)*int64(d.b)*8); err != nil {
		return fmt.Errorf("pdm: file disk read: %w", err)
	}
	for i := range dst {
		dst[i] = int64(binary.LittleEndian.Uint64(buf[8*i:]))
	}
	return nil
}

// WriteBlock implements Disk.
func (d *FileDisk) WriteBlock(off int, src []int64) error {
	if len(src) != d.b {
		return ErrBadBlock
	}
	if off < 0 {
		return fmt.Errorf("%w: write of block %d", ErrOutOfRange, off)
	}
	if err := d.grow(off + 1); err != nil {
		return err
	}
	bp := d.bufs.Get().(*[]byte)
	buf := *bp
	defer d.putBuf(bp)
	for i, v := range src {
		binary.LittleEndian.PutUint64(buf[8*i:], uint64(v))
	}
	if _, err := d.f.WriteAt(buf, int64(off)*int64(d.b)*8); err != nil {
		return fmt.Errorf("pdm: file disk write: %w", err)
	}
	// Advance the frontier to cover off.
	for {
		cur := d.blocks.Load()
		if int64(off) < cur || d.blocks.CompareAndSwap(cur, int64(off)+1) {
			return nil
		}
	}
}

// grow preallocates the backing file to hold at least want blocks, extending
// in growBlocks chunks.
func (d *FileDisk) grow(want int) error {
	if int64(want) <= d.grown.Load() {
		return nil
	}
	d.growMu.Lock()
	defer d.growMu.Unlock()
	if int64(want) <= d.grown.Load() {
		return nil
	}
	target := (int64(want) + growBlocks - 1) / growBlocks * growBlocks
	if err := d.f.Truncate(target * int64(d.b) * 8); err != nil {
		return fmt.Errorf("pdm: file disk grow: %w", err)
	}
	d.grown.Store(target)
	return nil
}

// Blocks implements Disk.
func (d *FileDisk) Blocks() int {
	return int(d.blocks.Load())
}

// Close implements Disk.  The file is trimmed to the written frontier (undo
// the chunked preallocation) and closed, but not removed, so callers can
// inspect the sorted output.
func (d *FileDisk) Close() error {
	if d.grown.Load() > d.blocks.Load() {
		if err := d.f.Truncate(d.blocks.Load() * int64(d.b) * 8); err != nil {
			d.f.Close() //nolint:errcheck // surface the truncate error instead
			return fmt.Errorf("pdm: file disk trim: %w", err)
		}
	}
	return d.f.Close()
}

// Path returns the backing file's name.
func (d *FileDisk) Path() string { return d.f.Name() }
