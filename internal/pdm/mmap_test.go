//go:build linux || darwin || freebsd || netbsd || openbsd || dragonfly

package pdm

import (
	"bytes"
	"errors"
	"os"
	"strings"
	"testing"
)

func TestMmapDiskRoundTrip(t *testing.T) {
	dir := t.TempDir()
	d, err := NewMmapDisk(dir+"/d0.bin", 4)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	src := []int64{-1, 0, 1, 1 << 40}
	if err := d.WriteBlock(2, src); err != nil {
		t.Fatal(err)
	}
	if got := d.Blocks(); got != 3 {
		t.Fatalf("Blocks = %d, want 3", got)
	}
	dst := make([]int64, 4)
	if err := d.ReadBlock(2, dst); err != nil {
		t.Fatal(err)
	}
	for i := range src {
		if dst[i] != src[i] {
			t.Fatalf("key %d = %d, want %d", i, dst[i], src[i])
		}
	}
	if err := d.ReadBlock(5, dst); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("read past end: err = %v, want ErrOutOfRange", err)
	}
	if err := d.ReadBlock(0, make([]int64, 1)); !errors.Is(err, ErrBadBlock) {
		t.Fatalf("bad buffer: err = %v, want ErrBadBlock", err)
	}
	if err := d.WriteBlock(0, make([]int64, 1)); !errors.Is(err, ErrBadBlock) {
		t.Fatalf("bad write buffer: err = %v, want ErrBadBlock", err)
	}
	if d.Path() == "" {
		t.Fatal("Path is empty")
	}
}

// TestMmapDiskGrowthAndTrim writes across several growth chunks — forcing
// remaps — and checks every block survives them, then checks Close trims
// the chunked preallocation back to the written frontier.
func TestMmapDiskGrowthAndTrim(t *testing.T) {
	const b = 8
	path := t.TempDir() + "/d0.bin"
	d, err := NewMmapDisk(path, b)
	if err != nil {
		t.Fatal(err)
	}
	n := 3*growBlocks + 5 // crosses chunk boundaries and the doubling path
	blk := make([]int64, b)
	for off := 0; off < n; off++ {
		for i := range blk {
			blk[i] = int64(off*b + i)
		}
		if err := d.WriteBlock(off, blk); err != nil {
			t.Fatalf("write %d: %v", off, err)
		}
	}
	if got := d.Blocks(); got != n {
		t.Fatalf("Blocks = %d, want %d", got, n)
	}
	for off := 0; off < n; off++ {
		if err := d.ReadBlock(off, blk); err != nil {
			t.Fatalf("read %d: %v", off, err)
		}
		for i := range blk {
			if blk[i] != int64(off*b+i) {
				t.Fatalf("block %d word %d = %d, want %d", off, i, blk[i], off*b+i)
			}
		}
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(n * b * 8); st.Size() != want {
		t.Fatalf("file size after Close = %d, want %d (trimmed to frontier)", st.Size(), want)
	}
}

// TestMmapDiskBorrowViews exercises the zero-copy contract: borrowed
// views alias the store directly, and a view handed out before a growth
// remap stays valid and coherent (MAP_SHARED mappings of one file see
// each other's writes).
func TestMmapDiskBorrowViews(t *testing.T) {
	if !canWordView {
		t.Skip("no in-place word views on this architecture")
	}
	const b = 8
	d, err := NewMmapDisk(t.TempDir()+"/d0.bin", b)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	w, err := d.WriteBlockZero(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(w) != b || cap(w) != b {
		t.Fatalf("write view len/cap = %d/%d, want %d/%d", len(w), cap(w), b, b)
	}
	for i := range w {
		w[i] = int64(100 + i)
	}
	if got := d.Blocks(); got != 1 {
		t.Fatalf("Blocks after WriteBlockZero = %d, want 1", got)
	}
	r, err := d.ReadBlockZero(0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range r {
		if r[i] != int64(100+i) {
			t.Fatalf("read view word %d = %d, want %d", i, r[i], 100+i)
		}
	}

	// Force a remap by growing far past the first chunk, then write block 0
	// through the new mapping: the old borrowed view must see the update.
	if err := d.WriteBlock(4*growBlocks, make([]int64, b)); err != nil {
		t.Fatal(err)
	}
	fresh := make([]int64, b)
	for i := range fresh {
		fresh[i] = int64(1000 + i)
	}
	if err := d.WriteBlock(0, fresh); err != nil {
		t.Fatal(err)
	}
	for i := range r {
		if r[i] != int64(1000+i) {
			t.Fatalf("stale borrowed view after remap: word %d = %d, want %d", i, r[i], 1000+i)
		}
	}

	if _, err := d.ReadBlockZero(4*growBlocks + 1); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("borrow past frontier: err = %v, want ErrOutOfRange", err)
	}
	if _, err := d.WriteBlockZero(-1); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("borrow negative block: err = %v, want ErrOutOfRange", err)
	}
}

// TestMmapDiskBytesMatchFileDisk pins the interchangeable on-disk format:
// the same writes through FileDisk and MmapDisk leave byte-identical
// files after Close.
func TestMmapDiskBytesMatchFileDisk(t *testing.T) {
	const b = 16
	dir := t.TempDir()
	fd, err := NewFileDisk(dir+"/file.bin", b)
	if err != nil {
		t.Fatal(err)
	}
	md, err := NewMmapDisk(dir+"/mmap.bin", b)
	if err != nil {
		t.Fatal(err)
	}
	blk := make([]int64, b)
	for off := 0; off < 10; off++ {
		for i := range blk {
			blk[i] = int64(off)<<32 - int64(i*7)
		}
		if err := fd.WriteBlock(off, blk); err != nil {
			t.Fatal(err)
		}
		if err := md.WriteBlock(off, blk); err != nil {
			t.Fatal(err)
		}
	}
	if err := fd.Close(); err != nil {
		t.Fatal(err)
	}
	if err := md.Close(); err != nil {
		t.Fatal(err)
	}
	fb, err := os.ReadFile(dir + "/file.bin")
	if err != nil {
		t.Fatal(err)
	}
	mb, err := os.ReadFile(dir + "/mmap.bin")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fb, mb) {
		t.Fatalf("on-disk bytes differ: file %d bytes, mmap %d bytes", len(fb), len(mb))
	}
}

// TestMmapDiskGrowFailure checks the error paths when the backing fd dies
// under the disk: growth and the Close trim must surface errors instead
// of corrupting state.
func TestMmapDiskGrowFailure(t *testing.T) {
	d, err := NewMmapDisk(t.TempDir()+"/d0.bin", 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := d.WriteBlock(0, make([]int64, 4)); err == nil || !strings.Contains(err.Error(), "grow") {
		t.Fatalf("write on dead fd: err = %v, want grow error", err)
	}
	if _, err := d.WriteBlockZero(0); err == nil {
		t.Fatal("borrow-write on dead fd succeeded")
	}
}

func TestNewMmapArrayEndToEnd(t *testing.T) {
	cfg := Config{D: 3, B: 4, Mem: 48}
	a, err := NewMmapArray(cfg, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	n := a.StripeWidth() * 2
	s, err := a.NewStripe(n)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]int64, n)
	for i := range data {
		data[i] = int64(i * 3)
	}
	if err := s.WriteAt(0, data); err != nil {
		t.Fatal(err)
	}
	got := make([]int64, n)
	if err := s.ReadAt(0, got); err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("key %d = %d, want %d", i, got[i], data[i])
		}
	}
	if st := a.Stats(); st.WriteSteps != 2 || st.ReadSteps != 2 {
		t.Fatalf("stats = %+v, want 2 read and 2 write steps", st)
	}
}

// TestArrayBorrowReadV checks the Array-level borrow API: on an mmap
// array the views alias the written data; on a MemDisk array the
// capability is absent and the borrow calls refuse.
func TestArrayBorrowReadV(t *testing.T) {
	cfg := Config{D: 2, B: 4, Mem: 16}
	a, err := NewMmapArray(cfg, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if !canWordView {
		if a.ZeroCopy() {
			t.Fatal("ZeroCopy true without word views")
		}
		t.Skip("no in-place word views on this architecture")
	}
	if !a.ZeroCopy() {
		t.Fatal("mmap array does not report ZeroCopy")
	}
	addrs := []BlockAddr{{Disk: 0, Off: 0}, {Disk: 1, Off: 0}}
	bufs := [][]int64{{1, 2, 3, 4}, {5, 6, 7, 8}}
	if err := a.WriteV(addrs, bufs); err != nil {
		t.Fatal(err)
	}
	views, err := a.BorrowReadV(addrs)
	if err != nil {
		t.Fatal(err)
	}
	for k := range views {
		for i := range views[k] {
			if views[k][i] != bufs[k][i] {
				t.Fatalf("view %d word %d = %d, want %d", k, i, views[k][i], bufs[k][i])
			}
		}
	}
	if _, err := a.BorrowWrite(BlockAddr{Disk: 5, Off: 0}); err == nil {
		t.Fatal("borrow-write on bad disk index succeeded")
	}

	mem, err := New(Config{D: 2, B: 4, Mem: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer mem.Close()
	if mem.ZeroCopy() {
		t.Fatal("MemDisk array reports ZeroCopy")
	}
	if _, err := mem.BorrowReadV(addrs); !errors.Is(err, errNoZeroCopy) {
		t.Fatalf("BorrowReadV on mem array: err = %v, want errNoZeroCopy", err)
	}
	if _, err := mem.BorrowWrite(addrs[0]); !errors.Is(err, errNoZeroCopy) {
		t.Fatalf("BorrowWrite on mem array: err = %v, want errNoZeroCopy", err)
	}
}
