package pdm

import (
	"errors"
	"testing"
)

func TestArenaAllocFree(t *testing.T) {
	ar := NewArena(100)
	b1, err := ar.Alloc(60)
	if err != nil {
		t.Fatal(err)
	}
	if ar.InUse() != 60 {
		t.Fatalf("InUse = %d, want 60", ar.InUse())
	}
	if _, err := ar.Alloc(50); !errors.Is(err, ErrMemoryExceeded) {
		t.Fatalf("over-alloc: err = %v, want ErrMemoryExceeded", err)
	}
	b2, err := ar.Alloc(40)
	if err != nil {
		t.Fatal(err)
	}
	if ar.Peak() != 100 {
		t.Fatalf("Peak = %d, want 100", ar.Peak())
	}
	ar.Free(b1)
	ar.Free(b2)
	if ar.InUse() != 0 {
		t.Fatalf("InUse after frees = %d, want 0", ar.InUse())
	}
	if ar.Peak() != 100 {
		t.Fatalf("Peak after frees = %d, want 100", ar.Peak())
	}
	if ar.Capacity() != 100 {
		t.Fatalf("Capacity = %d, want 100", ar.Capacity())
	}
}

func TestArenaNegativeAlloc(t *testing.T) {
	ar := NewArena(10)
	if _, err := ar.Alloc(-1); err == nil {
		t.Fatal("negative alloc accepted")
	}
}

func TestArenaUnderflowPanics(t *testing.T) {
	ar := NewArena(10)
	defer func() {
		if recover() == nil {
			t.Fatal("double free did not panic")
		}
	}()
	ar.Free(make([]int64, 5))
}

func TestArenaPhases(t *testing.T) {
	ar := NewArena(100)
	ar.SetPhase("runs")
	b1 := ar.MustAlloc(30)
	ar.Free(b1)
	ar.SetPhase("cleanup")
	b2 := ar.MustAlloc(70)
	ar.Free(b2)
	ar.SetPhase("")
	peaks := ar.PhasePeaks()
	if len(peaks) != 2 {
		t.Fatalf("PhasePeaks = %v, want 2 entries", peaks)
	}
	if peaks[0] != "cleanup=70" || peaks[1] != "runs=30" {
		t.Fatalf("PhasePeaks = %v", peaks)
	}
	ar.ResetPeak()
	if ar.Peak() != 0 {
		t.Fatalf("Peak after reset = %d, want 0", ar.Peak())
	}
	if len(ar.PhasePeaks()) != 0 {
		t.Fatalf("phases survived reset: %v", ar.PhasePeaks())
	}
}

func TestArenaMustAllocPanics(t *testing.T) {
	ar := NewArena(1)
	defer func() {
		if recover() == nil {
			t.Fatal("MustAlloc over capacity did not panic")
		}
	}()
	ar.MustAlloc(2)
}

func TestArenaZeroed(t *testing.T) {
	ar := NewArena(10)
	buf := ar.MustAlloc(10)
	for i, v := range buf {
		if v != 0 {
			t.Fatalf("buf[%d] = %d, want 0", i, v)
		}
	}
}

func TestArenaReserveRelease(t *testing.T) {
	// The scheduler's sub-budgeting: whole job envelopes are carved from
	// a ledger arena without materializing buffers.
	ledger := NewArena(100)
	if err := ledger.Reserve(60); err != nil {
		t.Fatal(err)
	}
	if err := ledger.Reserve(40); err != nil {
		t.Fatal(err)
	}
	if err := ledger.Reserve(1); err == nil {
		t.Fatal("over-reservation accepted")
	}
	if got := ledger.InUse(); got != 100 {
		t.Fatalf("InUse = %d, want 100", got)
	}
	ledger.Release(40)
	// Reservations and allocations share one accounting.
	buf, err := ledger.Alloc(30)
	if err != nil {
		t.Fatal(err)
	}
	if err := ledger.Reserve(11); err == nil {
		t.Fatal("reservation past alloc+reserve accepted")
	}
	ledger.Free(buf)
	ledger.Release(60)
	if got := ledger.InUse(); got != 0 {
		t.Fatalf("InUse after drain = %d", got)
	}
	if got := ledger.Peak(); got != 100 {
		t.Fatalf("Peak = %d, want 100", got)
	}
	if err := ledger.Reserve(-1); err == nil {
		t.Fatal("negative reservation accepted")
	}
}

func TestArenaReleaseUnderflowPanics(t *testing.T) {
	ar := NewArena(10)
	if err := ar.Reserve(5); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("over-release did not panic")
		}
	}()
	ar.Release(6)
}
