package pdm

import (
	"path/filepath"
	"slices"
	"testing"
	"time"
)

// latencyPair builds two identical 4-disk arrays, one on plain MemDisks
// and one with every disk wrapped in LatencyDisk.
func latencyPair(t *testing.T, perBlock time.Duration) (plain, slow *Array) {
	t.Helper()
	cfg := Config{D: 4, B: 8, Mem: 64}
	var err error
	plain, err = New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	disks := make([]Disk, cfg.D)
	for i := range disks {
		disks[i] = LatencyDisk{Disk: NewMemDisk(cfg.B), PerBlock: perBlock}
	}
	slow, err = NewWithDisks(cfg, disks)
	if err != nil {
		t.Fatal(err)
	}
	return plain, slow
}

// TestLatencyDiskStatsUnchanged: the decorator must be invisible to the
// cost model — identical charged steps, blocks, and simulated time for an
// identical request sequence.
func TestLatencyDiskStatsUnchanged(t *testing.T) {
	plain, slow := latencyPair(t, 100*time.Microsecond)
	defer plain.Close()
	defer slow.Close()
	for _, a := range []*Array{plain, slow} {
		s, err := a.NewStripe(64)
		if err != nil {
			t.Fatal(err)
		}
		data := make([]int64, 64)
		for i := range data {
			data[i] = int64(i * 3)
		}
		if err := s.WriteAt(0, data); err != nil {
			t.Fatal(err)
		}
		got := make([]int64, 64)
		if err := s.ReadAt(0, got); err != nil {
			t.Fatal(err)
		}
		if !slices.Equal(got, data) {
			t.Fatal("latency disk corrupted the data")
		}
		// An uneven vectored read: 2 blocks on one disk, 1 on another.
		addrs := []BlockAddr{s.BlockAddr(0), s.BlockAddr(4), s.BlockAddr(1)}
		bufs := make([][]int64, len(addrs))
		for i := range bufs {
			bufs[i] = make([]int64, 8)
		}
		if err := a.ReadV(addrs, bufs); err != nil {
			t.Fatal(err)
		}
	}
	ps, ss := plain.Stats(), slow.Stats()
	ps.ComputeSections, ps.ComputeWallNanos, ps.ComputeBusyNanos = 0, 0, 0
	ss.ComputeSections, ss.ComputeWallNanos, ss.ComputeBusyNanos = 0, 0, 0
	if ps != ss {
		t.Fatalf("stats diverge:\nplain %+v\nslow  %+v", ps, ss)
	}
}

// TestLatencyAccruesPerParallelStep: D concurrent single-block operations
// (one per disk) cost ~one PerBlock wait because the array fans out per
// disk, while k blocks queued on a single disk serialize into ~k waits —
// the behavior that makes overlap worth having.
func TestLatencyAccruesPerParallelStep(t *testing.T) {
	const perBlock = 20 * time.Millisecond
	_, slow := latencyPair(t, perBlock)
	defer slow.Close()
	s, err := slow.NewStripe(8 * 16) // 16 blocks: 4 rows of 4 disks
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]int64, 8*4)
	// Warm the disks (writes also sleep; do it once per block we read).
	if err := s.WriteAt(0, make([]int64, 8*16)); err != nil {
		t.Fatal(err)
	}

	// One block on each of the 4 disks: one parallel step.
	t0 := time.Now()
	if err := s.ReadAt(0, buf); err != nil {
		t.Fatal(err)
	}
	parallel := time.Since(t0)

	// 4 blocks on the same disk (stride D): serialized on that disk.
	addrs := []BlockAddr{s.BlockAddr(0), s.BlockAddr(4), s.BlockAddr(8), s.BlockAddr(12)}
	bufs := [][]int64{buf[0:8], buf[8:16], buf[16:24], buf[24:32]}
	t0 = time.Now()
	if err := slow.ReadV(addrs, bufs); err != nil {
		t.Fatal(err)
	}
	serial := time.Since(t0)

	if parallel < perBlock {
		t.Fatalf("parallel step took %v, latency %v never applied", parallel, perBlock)
	}
	if parallel >= 3*perBlock {
		t.Fatalf("parallel step took %v — per-disk fan-out did not overlap the %v waits", parallel, perBlock)
	}
	if serial < 4*perBlock {
		t.Fatalf("4 same-disk blocks took %v, want >= %v (one wait per block)", serial, 4*perBlock)
	}
}

// TestLatencyComposesWithFileDisk: the decorator wraps any backend; a
// latency-wrapped FileDisk still round-trips data and still sleeps.
func TestLatencyComposesWithFileDisk(t *testing.T) {
	const perBlock = 10 * time.Millisecond
	fd, err := NewFileDisk(filepath.Join(t.TempDir(), "disk0.bin"), 8)
	if err != nil {
		t.Fatal(err)
	}
	d := LatencyDisk{Disk: fd, PerBlock: perBlock}
	defer d.Close()
	src := []int64{7, 6, 5, 4, 3, 2, 1, 0}
	t0 := time.Now()
	if err := d.WriteBlock(0, src); err != nil {
		t.Fatal(err)
	}
	got := make([]int64, 8)
	if err := d.ReadBlock(0, got); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(t0); elapsed < 2*perBlock {
		t.Fatalf("write+read took %v, want >= %v", elapsed, 2*perBlock)
	}
	if !slices.Equal(got, src) {
		t.Fatalf("file round trip through LatencyDisk = %v", got)
	}
}
