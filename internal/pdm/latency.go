package pdm

import "time"

// LatencyDisk decorates a Disk with a fixed service time per block
// operation, modeling a device with real positioning and transfer latency
// (a spinning disk, a network volume).  The wait parks the calling
// goroutine, so overlapped transfers — the array's per-disk fan-out and the
// streaming layer's prefetch/write-behind — genuinely hide it, exactly as
// they would on hardware.  Intended for benchmarks and tests; the cost
// accounting (Stats, SimTime) is unaffected.
type LatencyDisk struct {
	Disk
	// PerBlock is the added service time of every ReadBlock/WriteBlock.
	PerBlock time.Duration
}

// ReadBlock implements Disk.
func (d LatencyDisk) ReadBlock(off int, dst []int64) error {
	time.Sleep(d.PerBlock)
	return d.Disk.ReadBlock(off, dst)
}

// WriteBlock implements Disk.
func (d LatencyDisk) WriteBlock(off int, src []int64) error {
	time.Sleep(d.PerBlock)
	return d.Disk.WriteBlock(off, src)
}
