package pdm

import (
	"fmt"
)

// StripeRef names a stripe purely by its physical placement.  Together
// with the array geometry (D, B) it fully determines every block
// address the stripe maps to, so a stripe written before a crash can be
// re-adopted by a fresh Array over the same disks.
type StripeRef struct {
	Row0 int `json:"row0"`
	Skew int `json:"skew"`
	Keys int `json:"keys"`
}

// Ref returns the stripe's placement record for a checkpoint manifest.
func (s *Stripe) Ref() StripeRef { return StripeRef{Row0: s.row0, Skew: s.skew, Keys: s.n} }

// Extent is one free run of rows in an allocator snapshot.
type Extent struct {
	Start int `json:"start"`
	Rows  int `json:"rows"`
}

// AllocState is an exact snapshot of the row allocator: the high-water
// mark plus the free list.  Restoring it on a fresh array makes every
// subsequent allocation land on the same rows the uninterrupted run
// would have used — the placement half of the resume-bit-identity
// invariant.
type AllocState struct {
	Next int      `json:"next"`
	Free []Extent `json:"free,omitempty"`
}

// ViewRef names a strided sequential view into one of a checkpoint's
// stripes: keys are read as blocks StartBlk, StartBlk+StrideBlk, … of
// the stripe at index Stripe in the list the algorithm designates
// (ThreePass2 stores its merge views against the "backing" list).
type ViewRef struct {
	Stripe    int `json:"stripe"`
	StartBlk  int `json:"startBlk"`
	StrideBlk int `json:"strideBlk"`
	Keys      int `json:"keys"`
}

// Checkpoint is the manifest an algorithm emits at a completed pass
// boundary: which passes are done, which scratch stripes are live, the
// allocator state, and the cumulative statistics up to the boundary.
// It is the unit the scheduler journals and the resume point a
// restarted job is handed back.
type Checkpoint struct {
	// Alg is the algorithm's resume tag; TakeResume only matches a
	// checkpoint whose Alg and N equal the caller's.
	Alg string `json:"alg"`
	// Pass counts completed passes: a resumed run skips passes 1..Pass.
	Pass int `json:"pass"`
	// N is the padded input length in keys.
	N int `json:"n"`
	// Alloc is the allocator snapshot taken at the boundary.
	Alloc AllocState `json:"alloc"`
	// Stripes holds the live scratch stripes by role ("runs", "cols",
	// "bands", "backing", …).
	Stripes map[string][]StripeRef `json:"stripes,omitempty"`
	// Views holds strided views for algorithms whose pass output is
	// finer-grained than whole stripes.
	Views []ViewRef `json:"views,omitempty"`
	// Params carries small algorithm-specific integers a resume needs.
	Params map[string]int `json:"params,omitempty"`
	// Stats is the cumulative statistics at the boundary; a resumed
	// array seeds its counters from it so the final report is
	// bit-identical (deterministic subset) to an uninterrupted run.
	Stats Stats `json:"stats"`
}

// Checkpointer receives each completed pass boundary.  Returning an
// error aborts the run (the scheduler's drain path returns one to stop
// cleanly at the boundary it just journaled).
type Checkpointer func(Checkpoint) error

// SetCheckpointer installs the pass-boundary callback.  A nil
// checkpointer (the default) makes PassDone a cheap no-op.
func (a *Array) SetCheckpointer(ck Checkpointer) {
	a.mu.Lock()
	a.ckpt = ck
	a.mu.Unlock()
}

// PassDone reports a completed pass boundary.  The caller fills Alg,
// Pass, N and the live stripe/view/param sets; PassDone completes the
// manifest with the allocator snapshot and cumulative statistics, then
// hands it to the installed checkpointer, if any.
func (a *Array) PassDone(cp Checkpoint) error {
	a.mu.Lock()
	ck := a.ckpt
	if ck == nil {
		a.mu.Unlock()
		return nil
	}
	cp.Alloc = AllocState{Next: a.alloc.next}
	for _, e := range a.alloc.free {
		cp.Alloc.Free = append(cp.Alloc.Free, Extent{Start: e.start, Rows: e.n})
	}
	st := a.stats
	a.mu.Unlock()
	st.ComputeSections, st.ComputeWallNanos, st.ComputeBusyNanos = a.pool.Counters()
	cp.Stats = st
	return ck(cp)
}

// SetResume arms the array with a resume point.  The owning algorithm
// claims it via TakeResume; until then the array behaves normally.
func (a *Array) SetResume(cp *Checkpoint) {
	a.mu.Lock()
	a.resume = cp
	a.resumeConsumed = false
	a.mu.Unlock()
}

// TakeResume hands the armed resume point to the algorithm that owns it
// (matching Alg and padded N), or nil.  Claiming the checkpoint
// restores the allocator snapshot and seeds the statistics with the
// checkpoint's cumulative counters, so the rest of the run allocates
// and accounts exactly as the uninterrupted run would have.
func (a *Array) TakeResume(alg string, n int) *Checkpoint {
	a.mu.Lock()
	defer a.mu.Unlock()
	cp := a.resume
	if cp == nil || cp.Alg != alg || cp.N != n {
		return nil
	}
	a.resume = nil
	a.resumeConsumed = true
	a.alloc.next = cp.Alloc.Next
	a.alloc.free = a.alloc.free[:0]
	for _, e := range cp.Alloc.Free {
		a.alloc.free = append(a.alloc.free, extent{start: e.Start, n: e.Rows})
	}
	a.stats = a.stats.Add(cp.Stats)
	return cp
}

// ResumeConsumed reports whether a TakeResume claimed the armed resume
// point — the provenance bit between "resumed from pass k" and
// "restarted from input".
func (a *Array) ResumeConsumed() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.resumeConsumed
}

// AdoptStripe rebuilds a Stripe handle from a checkpoint reference
// without touching the allocator — the restored AllocState already
// accounts its rows as in use.  Only light shape validation is
// possible; a manifest that lies about its stripes surfaces later as
// an I/O error (reads past the disks' write frontier), which the
// scheduler converts into a restart-from-input.
func (a *Array) AdoptStripe(ref StripeRef) (*Stripe, error) {
	b, d := a.cfg.B, a.cfg.D
	if ref.Keys <= 0 || ref.Keys%b != 0 {
		return nil, fmt.Errorf("%w: adopt stripe of %d keys with B = %d", ErrUnaligned, ref.Keys, b)
	}
	nb := ref.Keys / b
	rows := (nb + d - 1) / d
	skew := ref.Skew % d
	if skew < 0 {
		skew += d
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if ref.Row0 < 0 || ref.Row0+rows > a.alloc.next {
		return nil, fmt.Errorf("%w: adopt rows [%d, %d) with allocator high water %d",
			ErrOutOfRange, ref.Row0, ref.Row0+rows, a.alloc.next)
	}
	return &Stripe{a: a, row0: ref.Row0, skew: skew, n: ref.Keys, nb: nb, rows: rows}, nil
}
