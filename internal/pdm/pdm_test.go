package pdm

import (
	"errors"
	"testing"
)

func testConfig() Config {
	return Config{D: 4, B: 8, Mem: 128}
}

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"valid", Config{D: 4, B: 8, Mem: 128}, true},
		{"zero disks", Config{D: 0, B: 8, Mem: 128}, false},
		{"zero block", Config{D: 4, B: 0, Mem: 128}, false},
		{"memory below one stripe", Config{D: 4, B: 8, Mem: 16}, false},
		{"negative slack", Config{D: 4, B: 8, Mem: 128, MemSlack: -1}, false},
		{"single disk", Config{D: 1, B: 1, Mem: 1}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.Validate()
			if (err == nil) != tc.ok {
				t.Fatalf("Validate() = %v, want ok=%v", err, tc.ok)
			}
		})
	}
}

func TestConfigC(t *testing.T) {
	cfg := Config{D: 4, B: 8, Mem: 128}
	if got := cfg.C(); got != 4 {
		t.Fatalf("C() = %v, want 4", got)
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New with zero config succeeded, want error")
	}
}

func TestNewWithDisksCountMismatch(t *testing.T) {
	cfg := testConfig()
	if _, err := NewWithDisks(cfg, []Disk{NewMemDisk(cfg.B)}); err == nil {
		t.Fatal("NewWithDisks with 1 disk for D=4 succeeded, want error")
	}
}

func TestMemDiskRoundTrip(t *testing.T) {
	d := NewMemDisk(4)
	src := []int64{1, 2, 3, 4}
	if err := d.WriteBlock(0, src); err != nil {
		t.Fatal(err)
	}
	if err := d.WriteBlock(3, []int64{9, 9, 9, 9}); err != nil {
		t.Fatal(err)
	}
	if got := d.Blocks(); got != 4 {
		t.Fatalf("Blocks() = %d, want 4", got)
	}
	dst := make([]int64, 4)
	if err := d.ReadBlock(0, dst); err != nil {
		t.Fatal(err)
	}
	for i := range src {
		if dst[i] != src[i] {
			t.Fatalf("block 0 key %d = %d, want %d", i, dst[i], src[i])
		}
	}
}

func TestMemDiskErrors(t *testing.T) {
	d := NewMemDisk(4)
	if err := d.ReadBlock(0, make([]int64, 4)); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("read of missing block: err = %v, want ErrOutOfRange", err)
	}
	if err := d.ReadBlock(0, make([]int64, 3)); !errors.Is(err, ErrBadBlock) {
		t.Fatalf("short buffer: err = %v, want ErrBadBlock", err)
	}
	if err := d.WriteBlock(-1, make([]int64, 4)); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("negative write: err = %v, want ErrOutOfRange", err)
	}
	if err := d.WriteBlock(0, make([]int64, 5)); !errors.Is(err, ErrBadBlock) {
		t.Fatalf("long buffer: err = %v, want ErrBadBlock", err)
	}
	// Reading a hole (beyond any write) fails even below Blocks().
	if err := d.WriteBlock(2, make([]int64, 4)); err != nil {
		t.Fatal(err)
	}
	if err := d.ReadBlock(1, make([]int64, 4)); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("read of hole: err = %v, want ErrOutOfRange", err)
	}
}

func TestReadVWriteVStepAccounting(t *testing.T) {
	a, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	b := a.B()
	// Writing one block on each of the 4 disks costs exactly 1 step.
	addrs := make([]BlockAddr, a.D())
	bufs := make([][]int64, a.D())
	for i := range addrs {
		addrs[i] = BlockAddr{Disk: i, Off: 0}
		bufs[i] = make([]int64, b)
		for j := range bufs[i] {
			bufs[i][j] = int64(i*b + j)
		}
	}
	if err := a.WriteV(addrs, bufs); err != nil {
		t.Fatal(err)
	}
	if s := a.Stats(); s.WriteSteps != 1 || s.BlocksWritten != 4 {
		t.Fatalf("balanced write: stats = %+v, want 1 step / 4 blocks", s)
	}

	// Three blocks on the same disk cost 3 steps.
	a.ResetStats()
	skew := []BlockAddr{{0, 1}, {0, 2}, {0, 3}}
	sbufs := [][]int64{make([]int64, b), make([]int64, b), make([]int64, b)}
	if err := a.WriteV(skew, sbufs); err != nil {
		t.Fatal(err)
	}
	if s := a.Stats(); s.WriteSteps != 3 || s.BlocksWritten != 3 {
		t.Fatalf("skewed write: stats = %+v, want 3 steps / 3 blocks", s)
	}

	// Read back the balanced row and check contents and read accounting.
	a.ResetStats()
	got := make([][]int64, a.D())
	for i := range got {
		got[i] = make([]int64, b)
	}
	if err := a.ReadV(addrs, got); err != nil {
		t.Fatal(err)
	}
	if s := a.Stats(); s.ReadSteps != 1 || s.BlocksRead != 4 {
		t.Fatalf("balanced read: stats = %+v, want 1 step / 4 blocks", s)
	}
	for i := range got {
		for j := range got[i] {
			if got[i][j] != bufs[i][j] {
				t.Fatalf("disk %d key %d = %d, want %d", i, j, got[i][j], bufs[i][j])
			}
		}
	}
}

func TestReadVValidation(t *testing.T) {
	a, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := a.ReadV([]BlockAddr{{0, 0}}, nil); err == nil {
		t.Fatal("mismatched lengths accepted")
	}
	if err := a.ReadV([]BlockAddr{{9, 0}}, [][]int64{make([]int64, a.B())}); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("bad disk: err = %v, want ErrOutOfRange", err)
	}
	if err := a.ReadV([]BlockAddr{{0, 0}}, [][]int64{make([]int64, 1)}); !errors.Is(err, ErrBadBlock) {
		t.Fatalf("bad buffer: err = %v, want ErrBadBlock", err)
	}
	if err := a.ReadV(nil, nil); err != nil {
		t.Fatalf("empty request: err = %v, want nil", err)
	}
}

func TestSimTimeCostModel(t *testing.T) {
	cfg := testConfig()
	cfg.SeekTime = 10
	cfg.TransferPerKey = 0.5
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	buf := [][]int64{make([]int64, cfg.B)}
	if err := a.WriteV([]BlockAddr{{0, 0}}, buf); err != nil {
		t.Fatal(err)
	}
	want := 10 + float64(cfg.B)*0.5
	if got := a.Stats().SimTime; got != want {
		t.Fatalf("SimTime = %v, want %v", got, want)
	}
}

func TestStatsArithmetic(t *testing.T) {
	s := Stats{BlocksRead: 10, BlocksWritten: 20, ReadSteps: 3, WriteSteps: 5, SimTime: 1.5}
	tt := Stats{BlocksRead: 1, BlocksWritten: 2, ReadSteps: 1, WriteSteps: 1, SimTime: 0.5}
	sum := s.Add(tt)
	if sum.BlocksRead != 11 || sum.WriteSteps != 6 || sum.SimTime != 2 {
		t.Fatalf("Add = %+v", sum)
	}
	diff := sum.Sub(tt)
	if diff != s {
		t.Fatalf("Sub = %+v, want %+v", diff, s)
	}
}

func TestStatsPasses(t *testing.T) {
	// 64 keys, stripe width 32: one pass is 2 read steps.
	s := Stats{ReadSteps: 4, WriteSteps: 2}
	if got := s.ReadPasses(64, 32); got != 2 {
		t.Fatalf("ReadPasses = %v, want 2", got)
	}
	if got := s.WritePasses(64, 32); got != 1 {
		t.Fatalf("WritePasses = %v, want 1", got)
	}
	if got := s.Passes(64, 32); got != 2 {
		t.Fatalf("Passes = %v, want 2 (max of read/write)", got)
	}
	if got := (Stats{}).Passes(0, 32); got != 0 {
		t.Fatalf("Passes(0) = %v, want 0", got)
	}
}

func TestStatsEfficiency(t *testing.T) {
	s := Stats{BlocksRead: 8, ReadSteps: 2, BlocksWritten: 4, WriteSteps: 4}
	if got := s.ReadEfficiency(4); got != 1 {
		t.Fatalf("ReadEfficiency = %v, want 1", got)
	}
	if got := s.WriteEfficiency(4); got != 0.25 {
		t.Fatalf("WriteEfficiency = %v, want 0.25", got)
	}
	if got := (Stats{}).ReadEfficiency(4); got != 1 {
		t.Fatalf("empty ReadEfficiency = %v, want 1", got)
	}
}
