package pdm

import (
	"errors"
	"path/filepath"
	"testing"
)

func testCfg() Config {
	return Config{D: 4, B: 16, Mem: 1024}
}

func TestStripeRefAdoptRoundTrip(t *testing.T) {
	dir := t.TempDir()
	a, err := NewFileArray(testCfg(), dir)
	if err != nil {
		t.Fatalf("NewFileArray: %v", err)
	}
	s, err := a.NewStripeSkew(256, 3)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]int64, 256)
	for i := range data {
		data[i] = int64(i * 7)
	}
	if err := s.Load(data); err != nil {
		t.Fatal(err)
	}
	ref := s.Ref()
	st := a.allocSnapshot()
	cum := a.Stats()
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}

	// A fresh array over the same files, armed with the checkpoint,
	// adopts the stripe and reads the same bytes.
	disks, err := OpenFileDisks(dir, 4, 16)
	if err != nil {
		t.Fatalf("OpenFileDisks: %v", err)
	}
	b, err := NewWithDisks(testCfg(), disks)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	b.SetResume(&Checkpoint{Alg: "x", N: 256, Alloc: st, Stats: cum})
	if cp := b.TakeResume("y", 256); cp != nil {
		t.Fatalf("TakeResume matched wrong alg")
	}
	if cp := b.TakeResume("x", 128); cp != nil {
		t.Fatalf("TakeResume matched wrong n")
	}
	cp := b.TakeResume("x", 256)
	if cp == nil {
		t.Fatalf("TakeResume returned nil")
	}
	if !b.ResumeConsumed() {
		t.Fatalf("ResumeConsumed = false after TakeResume")
	}
	s2, err := b.AdoptStripe(ref)
	if err != nil {
		t.Fatalf("AdoptStripe: %v", err)
	}
	got, err := s2.Unload()
	if err != nil {
		t.Fatalf("Unload: %v", err)
	}
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("key %d: got %d want %d", i, got[i], data[i])
		}
	}
	// The restored allocator places the next stripe exactly where the
	// original array would have.
	s3, err := a2NextStripe(b, 128)
	if err != nil {
		t.Fatal(err)
	}
	want := st.Next
	if s3.row0 != want {
		t.Fatalf("next allocation at row %d, want %d", s3.row0, want)
	}
}

func a2NextStripe(a *Array, n int) (*Stripe, error) { return a.NewStripe(n) }

// allocSnapshot exposes the allocator state for tests, mirroring what
// PassDone embeds in a manifest.
func (a *Array) allocSnapshot() AllocState {
	a.mu.Lock()
	defer a.mu.Unlock()
	st := AllocState{Next: a.alloc.next}
	for _, e := range a.alloc.free {
		st.Free = append(st.Free, Extent{Start: e.start, Rows: e.n})
	}
	return st
}

func TestAdoptStripeValidation(t *testing.T) {
	a, err := New(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if _, err := a.AdoptStripe(StripeRef{Row0: 0, Keys: 10}); !errors.Is(err, ErrUnaligned) {
		t.Fatalf("unaligned adopt: %v", err)
	}
	if _, err := a.AdoptStripe(StripeRef{Row0: 5, Keys: 64}); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("out-of-range adopt: %v", err)
	}
}

func TestPassDoneFillsManifest(t *testing.T) {
	a, err := New(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	// No checkpointer: PassDone is a no-op.
	if err := a.PassDone(Checkpoint{Alg: "x", Pass: 1, N: 64}); err != nil {
		t.Fatalf("PassDone without checkpointer: %v", err)
	}
	s, err := a.NewStripe(128)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]int64, 128)
	if err := s.WriteAt(0, buf); err != nil {
		t.Fatal(err)
	}
	var got Checkpoint
	a.SetCheckpointer(func(cp Checkpoint) error {
		got = cp
		return nil
	})
	if err := a.PassDone(Checkpoint{Alg: "x", Pass: 1, N: 128,
		Stripes: map[string][]StripeRef{"out": {s.Ref()}}}); err != nil {
		t.Fatalf("PassDone: %v", err)
	}
	if got.Alloc.Next != 2 { // 128 keys / (D·B=64) = 2 rows
		t.Fatalf("manifest alloc next = %d, want 2", got.Alloc.Next)
	}
	if got.Stats.BlocksWritten != 8 {
		t.Fatalf("manifest stats blocks written = %d, want 8", got.Stats.BlocksWritten)
	}
	if len(got.Stripes["out"]) != 1 {
		t.Fatalf("manifest stripes: %+v", got.Stripes)
	}
	sentinel := errors.New("stop here")
	a.SetCheckpointer(func(Checkpoint) error { return sentinel })
	if err := a.PassDone(Checkpoint{}); !errors.Is(err, sentinel) {
		t.Fatalf("checkpointer error not propagated: %v", err)
	}
}

func TestTakeResumeSeedsStats(t *testing.T) {
	a, err := New(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	seed := Stats{BlocksRead: 10, BlocksWritten: 20, ReadSteps: 3, WriteSteps: 5, SimTime: 1.5}
	a.SetResume(&Checkpoint{Alg: "x", N: 64, Stats: seed, Alloc: AllocState{Next: 7}})
	cp := a.TakeResume("x", 64)
	if cp == nil {
		t.Fatal("TakeResume returned nil")
	}
	st := a.Stats()
	if st.BlocksRead != 10 || st.BlocksWritten != 20 || st.ReadSteps != 3 || st.WriteSteps != 5 {
		t.Fatalf("seeded stats: %+v", st)
	}
	if a.DiskFootprint() != 7*a.StripeWidth() {
		t.Fatalf("footprint %d, want %d", a.DiskFootprint(), 7*a.StripeWidth())
	}
	// A second TakeResume finds nothing.
	if cp := a.TakeResume("x", 64); cp != nil {
		t.Fatalf("resume claimed twice")
	}
}

func TestOpenFileDiskPreservesFrontier(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "disk0000.bin")
	d, err := NewFileDisk(path, 8)
	if err != nil {
		t.Fatal(err)
	}
	src := []int64{1, 2, 3, 4, 5, 6, 7, 8}
	if err := d.WriteBlock(0, src); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	d2, err := OpenFileDisk(path, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if d2.Blocks() != 1 {
		t.Fatalf("reopened frontier = %d blocks, want 1", d2.Blocks())
	}
	dst := make([]int64, 8)
	if err := d2.ReadBlock(0, dst); err != nil {
		t.Fatal(err)
	}
	for i := range src {
		if dst[i] != src[i] {
			t.Fatalf("block round trip: %v != %v", dst, src)
		}
	}
	// NewFileDisk on the same path truncates: the old block is gone.
	d3, err := NewFileDisk(path, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer d3.Close()
	if err := d3.ReadBlock(0, dst); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("read after truncating reopen: %v", err)
	}
}
