//go:build amd64 || arm64 || 386 || arm || riscv64 || loong64 || ppc64le || mipsle || mips64le || wasm

package pdm

import "unsafe"

// canWordView reports whether mapped file bytes can be reinterpreted as
// []int64 in place.  The on-disk format is little-endian int64s, so on
// little-endian architectures a byte view IS a word view and the copy and
// swizzle loops of FileDisk disappear entirely.
const canWordView = true

// bytesToWords reinterprets b (len a multiple of 8) as a []int64 sharing
// the same storage.  Mapped pages are 8-aligned (page-aligned, in fact),
// which is all int64 access requires here.
func bytesToWords(b []byte) []int64 {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*int64)(unsafe.Pointer(&b[0])), len(b)/8)
}
