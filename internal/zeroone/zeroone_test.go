package zeroone

import (
	"math/rand"
	"slices"
	"testing"
	"testing/quick"

	"repro/internal/memsort"
	"repro/internal/workload"
)

func TestBubbleSortsEverything(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7, 16} {
		w := Bubble(n)
		if err := w.Validate(); err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 20; trial++ {
			a := workload.Perm(n, int64(trial))
			if !w.Sorts(a) {
				t.Fatalf("Bubble(%d) failed on %v", n, a)
			}
		}
	}
}

func TestOddEvenMergeSortCorrect(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 16, 32} {
		w, err := OddEvenMergeSort(n)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Validate(); err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 20; trial++ {
			a := workload.Uniform(n, 0, 9, int64(trial))
			if !w.Sorts(a) {
				t.Fatalf("OddEvenMergeSort(%d) failed on %v", n, a)
			}
		}
		// Batcher gate count: n/4·log n·(log n − 1) + n − 1 gates for n≥2.
		if n >= 2 && len(w.Gates) == 0 {
			t.Fatal("no gates")
		}
	}
	if _, err := OddEvenMergeSort(3); err == nil {
		t.Fatal("non-power-of-two accepted")
	}
	if _, err := OddEvenMergeSort(0); err == nil {
		t.Fatal("zero accepted")
	}
}

func TestOddEvenMergeSortZeroOneExhaustive(t *testing.T) {
	// The classical 0-1 principle route: check all 2^n binary inputs for
	// n=8; by Knuth's theorem this certifies the network for all inputs.
	w, err := OddEvenMergeSort(8)
	if err != nil {
		t.Fatal(err)
	}
	if !SortsAllZeroOne(w) {
		t.Fatal("Batcher network failed a binary input")
	}
}

func TestOddEvenTransposition(t *testing.T) {
	// n rounds sort everything; n-2 rounds must fail some input.
	n := 8
	full := OddEvenTransposition(n, n)
	if !SortsAllZeroOne(full) {
		t.Fatal("full odd-even transposition failed a binary input")
	}
	short := OddEvenTransposition(n, n-2)
	if SortsAllZeroOne(short) {
		t.Fatal("truncated odd-even transposition claims to sort all binary inputs")
	}
}

func TestApplyDescendingGate(t *testing.T) {
	// A gate (1,0) routes the max to line 0.
	w := &Network{N: 2, Gates: []Comparator{{1, 0}}}
	a := []int64{1, 2}
	w.Apply(a)
	if a[0] != 2 || a[1] != 1 {
		t.Fatalf("descending gate gave %v", a)
	}
}

func TestValidateRejectsBadGates(t *testing.T) {
	for _, w := range []*Network{
		{N: 2, Gates: []Comparator{{0, 2}}},
		{N: 2, Gates: []Comparator{{-1, 0}}},
		{N: 2, Gates: []Comparator{{1, 1}}},
	} {
		if err := w.Validate(); err == nil {
			t.Fatalf("bad network %v validated", w.Gates)
		}
	}
}

func TestTruncate(t *testing.T) {
	w := Bubble(4)
	tr := w.Truncate(2)
	if tr.Size() != w.Size()-2 {
		t.Fatalf("Truncate size = %d", tr.Size())
	}
	if w.Truncate(1000).Size() != 0 {
		t.Fatal("over-truncate not empty")
	}
}

func TestShearsortNetworkSorts(t *testing.T) {
	// 4x4 with ceil(log2 4)=2 phase pairs + final row phase sorts fully.
	w := Shearsort(4, 4, 2)
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 50; trial++ {
		a := workload.Perm(16, int64(trial))
		if !w.Sorts(a) {
			t.Fatalf("Shearsort(4,4,2) failed on trial %d", trial)
		}
	}
	if !SortsAllZeroOne(Shearsort(4, 2, 2)) {
		t.Fatal("Shearsort(4,2,2) failed a binary input")
	}
}

func TestShearsortTooFewPhasesFailsSomeInput(t *testing.T) {
	w := Shearsort(8, 8, 1)
	if SortsAllZeroOne(w) {
		t.Fatal("one-phase Shearsort claims to sort all binary inputs")
	}
}

func TestMonotoneFk(t *testing.T) {
	perm := []int64{3, 1, 4, 2}
	got := MonotoneFk(perm, 2)
	want := []int64{1, 0, 1, 0}
	if !slices.Equal(got, want) {
		t.Fatalf("MonotoneFk = %v, want %v", got, want)
	}
	if got := MonotoneFk(perm, 0); !slices.Equal(got, []int64{1, 1, 1, 1}) {
		t.Fatalf("f_0 = %v", got)
	}
	if got := MonotoneFk(perm, 4); !slices.Equal(got, []int64{0, 0, 0, 0}) {
		t.Fatalf("f_4 = %v", got)
	}
}

func TestLemmaA1Direction(t *testing.T) {
	// If the circuit sorts f_k(σ) for all k, it sorts σ — check on a
	// deliberately broken network by finding a permutation it fails and
	// confirming some f_k image also fails.
	w := Bubble(6).Truncate(3)
	var badPerm []int64
	perm := workload.Perm(6, 1)
	for i := range perm {
		perm[i]++
	}
	for trial := int64(0); trial < 2000 && badPerm == nil; trial++ {
		p := workload.Perm(6, trial)
		for i := range p {
			p[i]++
		}
		if !w.Sorts(p) {
			badPerm = p
		}
	}
	if badPerm == nil {
		t.Skip("truncated network sorted every sampled permutation")
	}
	foundBadImage := false
	for k := 0; k <= 6; k++ {
		if !w.Sorts(MonotoneFk(badPerm, k)) {
			foundBadImage = true
			break
		}
	}
	if !foundBadImage {
		t.Fatalf("network fails %v but sorts all its monotone images, contradicting Lemma A.1", badPerm)
	}
}

func TestKStringsEnumeration(t *testing.T) {
	count := 0
	KStrings(5, 2, func(s []int64) {
		count++
		zeros := 0
		for _, v := range s {
			if v == 0 {
				zeros++
			}
		}
		if zeros != 2 || len(s) != 5 {
			t.Fatalf("bad k-string %v", s)
		}
	})
	if count != 10 {
		t.Fatalf("enumerated %d 2-strings of length 5, want C(5,2)=10", count)
	}
	// Edge cases: k=0 and k=n yield exactly one string each.
	for _, k := range []int{0, 5} {
		c := 0
		KStrings(5, k, func([]int64) { c++ })
		if c != 1 {
			t.Fatalf("KStrings(5,%d) enumerated %d", k, c)
		}
	}
}

func TestBinomial(t *testing.T) {
	cases := []struct {
		n, k int
		want float64
	}{{5, 2, 10}, {10, 0, 1}, {10, 10, 1}, {6, 3, 20}, {5, 6, 0}, {5, -1, 0}}
	for _, tc := range cases {
		if got := Binomial(tc.n, tc.k); got != tc.want {
			t.Fatalf("Binomial(%d,%d) = %v, want %v", tc.n, tc.k, got, tc.want)
		}
	}
}

func TestGeneralizedBound(t *testing.T) {
	if got := GeneralizedBound(1, 8); got != 1 {
		t.Fatalf("bound at alpha=1: %v", got)
	}
	if got := GeneralizedBound(0.5, 8); got != 0 {
		t.Fatalf("vacuous bound should clamp to 0: %v", got)
	}
	want := 1 - 0.1*9
	if got := GeneralizedBound(0.9, 8); got < want-1e-9 || got > want+1e-9 {
		t.Fatalf("bound = %v, want %v", got, want)
	}
}

func TestCheckGeneralizedPrincipleOnCorrectNetwork(t *testing.T) {
	w := Bubble(6)
	res, err := CheckGeneralizedPrinciple(w)
	if err != nil {
		t.Fatal(err)
	}
	if res.Alpha != 1 || res.PermFraction != 1 || !res.Holds {
		t.Fatalf("correct network: %+v", res)
	}
}

func TestCheckGeneralizedPrincipleOnTruncatedNetworks(t *testing.T) {
	// Theorem 3.3 must hold for every circuit; probe a family of broken
	// ones.
	for _, drop := range []int{1, 2, 3, 5, 8} {
		w := Bubble(6).Truncate(drop)
		res, err := CheckGeneralizedPrinciple(w)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Holds {
			t.Fatalf("drop=%d: perm fraction %.6f below bound %.6f",
				drop, res.PermFraction, res.Bound)
		}
	}
}

func TestCheckGeneralizedPrincipleQuick(t *testing.T) {
	// Property: for random small networks, the Theorem 3.3 inequality holds.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(3)
		gates := rng.Intn(12)
		w := &Network{N: n}
		for g := 0; g < gates; g++ {
			i := rng.Intn(n)
			j := rng.Intn(n)
			if i == j {
				j = (j + 1) % n
			}
			w.Gates = append(w.Gates, Comparator{i, j})
		}
		res, err := CheckGeneralizedPrinciple(w)
		return err == nil && res.Holds
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPermFractionExhaustiveRejectsBigN(t *testing.T) {
	if _, err := PermFractionExhaustive(Bubble(11)); err == nil {
		t.Fatal("n=11 accepted")
	}
}

func TestPermFractionSampled(t *testing.T) {
	w := Bubble(8)
	if got := PermFractionSampled(w, 100, 1); got != 1 {
		t.Fatalf("sampled fraction on correct network = %v", got)
	}
	broken := &Network{N: 8}
	if got := PermFractionSampled(broken, 200, 1); got > 0.05 {
		t.Fatalf("empty network sorts %v of samples", got)
	}
}

func TestCorollaryEmptyKSet(t *testing.T) {
	// Corollary in Appendix A: if the circuit sorts NO string of some S_k,
	// it sorts no permutation at all.  The empty network on unsorted lines
	// demonstrates the contrapositive cheaply: it sorts the two trivial
	// k-sets (k=0, k=n) and nothing needing movement.
	w := &Network{N: 4} // no gates
	bad, k := FirstUnsortedKString(w)
	if bad == nil {
		t.Fatal("empty network claims to sort all k-strings")
	}
	if k <= 0 || k >= 4 {
		t.Fatalf("first unsorted k-string at k=%d", k)
	}
	// And indeed its monotone preimages are unsorted permutations.
	if w.Sorts(bad) {
		t.Fatal("inconsistent")
	}
}

func TestFirstUnsortedKStringOnCorrectNetwork(t *testing.T) {
	if bad, k := FirstUnsortedKString(Bubble(5)); bad != nil {
		t.Fatalf("correct network has unsorted k-string %v (k=%d)", bad, k)
	}
}

func TestNetworkAgainstMemsort(t *testing.T) {
	// Networks and the comparison sort agree on arbitrary data.
	w, err := OddEvenMergeSort(16)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 20; trial++ {
		a := workload.Uniform(16, -50, 50, int64(trial))
		b := append([]int64(nil), a...)
		w.Apply(a)
		memsort.Keys(b)
		if !slices.Equal(a, b) {
			t.Fatalf("trial %d: network %v vs sort %v", trial, a, b)
		}
	}
}
