package zeroone

import (
	"fmt"
	"math/rand"

	"repro/internal/workload"
)

// MonotoneFk applies the paper's monotone map f_k to a permutation of
// 1..n: f_k(j) = 0 for j ≤ k and 1 otherwise (Appendix A).  It is the only
// monotone function from I_n onto the k-set S_k.
func MonotoneFk(perm []int64, k int) []int64 {
	out := make([]int64, len(perm))
	for i, v := range perm {
		if v > int64(k) {
			out[i] = 1
		}
	}
	return out
}

// KStrings calls fn for every binary string of length n with exactly k
// zeros, reusing one buffer (fn must not retain it).  The number of calls is
// C(n,k); n is expected to be small (≤ ~20).
func KStrings(n, k int, fn func([]int64)) {
	buf := make([]int64, n)
	pos := make([]int, k)
	var rec func(start, depth int)
	rec = func(start, depth int) {
		if depth == k {
			for i := range buf {
				buf[i] = 1
			}
			for _, p := range pos {
				buf[p] = 0
			}
			fn(buf)
			return
		}
		for p := start; p <= n-(k-depth); p++ {
			pos[depth] = p
			rec(p+1, depth+1)
		}
	}
	rec(0, 0)
}

// Binomial returns C(n,k) as a float64 (exact for the small n used here).
func Binomial(n, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	r := 1.0
	for i := 0; i < k; i++ {
		r = r * float64(n-i) / float64(i+1)
	}
	return r
}

// KSetFractionExhaustive returns the fraction of S_k the network sorts,
// checking every k-string.
func KSetFractionExhaustive(w *Network, k int) float64 {
	total, sorted := 0, 0
	KStrings(w.N, k, func(s []int64) {
		total++
		if w.Sorts(s) {
			sorted++
		}
	})
	if total == 0 {
		return 1
	}
	return float64(sorted) / float64(total)
}

// MinAlphaExhaustive returns α = min over k of the sorted fraction of S_k,
// the quantity Theorem 3.3 is stated in, along with the per-k fractions.
func MinAlphaExhaustive(w *Network) (alpha float64, perK []float64) {
	perK = make([]float64, w.N+1)
	alpha = 1
	for k := 0; k <= w.N; k++ {
		perK[k] = KSetFractionExhaustive(w, k)
		if perK[k] < alpha {
			alpha = perK[k]
		}
	}
	return alpha, perK
}

// PermFractionExhaustive returns the fraction of all n! permutations the
// network sorts, enumerating them with Heap's algorithm.  n must be ≤ 10.
func PermFractionExhaustive(w *Network) (float64, error) {
	n := w.N
	if n > 10 {
		return 0, fmt.Errorf("zeroone: exhaustive permutation check infeasible for n = %d", n)
	}
	perm := make([]int64, n)
	for i := range perm {
		perm[i] = int64(i + 1)
	}
	total, sorted := 0, 0
	visit := func() {
		total++
		if w.Sorts(perm) {
			sorted++
		}
	}
	c := make([]int, n)
	visit()
	i := 0
	for i < n {
		if c[i] < i {
			if i%2 == 0 {
				perm[0], perm[i] = perm[i], perm[0]
			} else {
				perm[c[i]], perm[i] = perm[i], perm[c[i]]
			}
			visit()
			c[i]++
			i = 0
		} else {
			c[i] = 0
			i++
		}
	}
	return float64(sorted) / float64(total), nil
}

// PermFractionSampled estimates the sorted fraction of permutations from
// `trials` uniform samples.
func PermFractionSampled(w *Network, trials int, seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	sorted := 0
	for t := 0; t < trials; t++ {
		p := workload.Perm(w.N, rng.Int63())
		for i := range p {
			p[i]++ // permutations of 1..n, as in the paper
		}
		if w.Sorts(p) {
			sorted++
		}
	}
	return float64(sorted) / float64(trials)
}

// GeneralizedBound is the guarantee of Theorem 3.3: a network sorting at
// least an α fraction of every S_k sorts at least 1 − (1−α)(n+1) of all
// permutations (clamped to [0,1]; the bound is vacuous for small α).
func GeneralizedBound(alpha float64, n int) float64 {
	b := 1 - (1-alpha)*float64(n+1)
	if b < 0 {
		return 0
	}
	return b
}

// CheckResult is the outcome of verifying Theorem 3.3 on one network.
type CheckResult struct {
	N            int
	Alpha        float64   // min over k of sorted fraction of S_k
	PerK         []float64 // sorted fraction of each S_k
	PermFraction float64   // exact fraction of permutations sorted
	Bound        float64   // 1 − (1−α)(n+1), clamped at 0
	Holds        bool      // PermFraction ≥ Bound
}

// CheckGeneralizedPrinciple exhaustively measures a network against
// Theorem 3.3.  The network must have at most 10 lines.
func CheckGeneralizedPrinciple(w *Network) (CheckResult, error) {
	alpha, perK := MinAlphaExhaustive(w)
	pf, err := PermFractionExhaustive(w)
	if err != nil {
		return CheckResult{}, err
	}
	bound := GeneralizedBound(alpha, w.N)
	return CheckResult{
		N:            w.N,
		Alpha:        alpha,
		PerK:         perK,
		PermFraction: pf,
		Bound:        bound,
		Holds:        pf >= bound-1e-12,
	}, nil
}

// SortsAllZeroOne reports whether the network sorts every binary input —
// the hypothesis of the classical zero-one principle.
func SortsAllZeroOne(w *Network) bool {
	for k := 0; k <= w.N; k++ {
		ok := true
		KStrings(w.N, k, func(s []int64) {
			if ok && !w.Sorts(s) {
				ok = false
			}
		})
		if !ok {
			return false
		}
	}
	return true
}

// FirstUnsortedKString returns a k-string the network fails to sort and its
// k, or nil if none exists.  Combined with MonotoneFk it realizes the
// constructive direction of Lemma A.1: from an unsorted permutation to an
// unsorted k-string and back.
func FirstUnsortedKString(w *Network) ([]int64, int) {
	var bad []int64
	badK := -1
	for k := 0; k <= w.N && bad == nil; k++ {
		KStrings(w.N, k, func(s []int64) {
			if bad == nil && !w.Sorts(s) {
				bad = append([]int64(nil), s...)
				badK = k
			}
		})
	}
	return bad, badK
}
