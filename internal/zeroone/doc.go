// Package zeroone implements the sorting-network machinery behind the
// paper's generalized zero-one principle (Theorem 3.3, Appendix A): oblivious
// comparator networks, exhaustive and sampled evaluation over the k-sets S_k
// of binary strings, monotone mappings between permutations and k-strings,
// and the empirical verification that a network sorting an α fraction of
// every S_k sorts at least 1 − (1−α)(n+1) of all permutations.
package zeroone
