package zeroone

import (
	"fmt"

	"repro/internal/memsort"
)

// Comparator routes the smaller of two keys to line I and the larger to
// line J.  I and J are arbitrary distinct lines; a gate with I > J is a
// "descending" comparator (used by snake-order meshes).  All gates are
// monotone, so the zero-one principle applies.
type Comparator struct {
	I, J int
}

// Network is an oblivious sorting circuit: a fixed sequence of comparators
// applied to n lines.  A correct network leaves every input ascending in
// line order.
type Network struct {
	N     int
	Gates []Comparator
}

// Apply runs the network over a in place.
func (w *Network) Apply(a []int64) {
	for _, g := range w.Gates {
		if a[g.J] < a[g.I] {
			a[g.I], a[g.J] = a[g.J], a[g.I]
		}
	}
}

// Sorts reports whether the network sorts a copy of a into ascending line
// order.
func (w *Network) Sorts(a []int64) bool {
	buf := append([]int64(nil), a...)
	w.Apply(buf)
	return memsort.IsSorted(buf)
}

// Validate checks gate indices against the line count.
func (w *Network) Validate() error {
	for i, g := range w.Gates {
		if g.I < 0 || g.I >= w.N || g.J < 0 || g.J >= w.N || g.I == g.J {
			return fmt.Errorf("zeroone: gate %d = (%d,%d) invalid for %d lines", i, g.I, g.J, w.N)
		}
	}
	return nil
}

// Size returns the number of comparators.
func (w *Network) Size() int { return len(w.Gates) }

// Truncate returns a copy of the network with the last k gates removed —
// the standard way to manufacture circuits that sort *most* inputs, the
// regime the generalized principle is about.
func (w *Network) Truncate(k int) *Network {
	if k > len(w.Gates) {
		k = len(w.Gates)
	}
	return &Network{N: w.N, Gates: append([]Comparator(nil), w.Gates[:len(w.Gates)-k]...)}
}

// Bubble returns the n-line bubble-sort network (n(n−1)/2 gates), a correct
// sorter for every n.
func Bubble(n int) *Network {
	w := &Network{N: n}
	for pass := 0; pass < n-1; pass++ {
		for i := 0; i < n-1-pass; i++ {
			w.Gates = append(w.Gates, Comparator{i, i + 1})
		}
	}
	return w
}

// OddEvenTransposition returns the n-line odd-even transposition network
// with r rounds (r = n makes it a correct sorter; fewer rounds sorts only
// "most" inputs — a natural test subject for Theorem 3.3).
func OddEvenTransposition(n, r int) *Network {
	w := &Network{N: n}
	for round := 0; round < r; round++ {
		for i := round % 2; i+1 < n; i += 2 {
			w.Gates = append(w.Gates, Comparator{i, i + 1})
		}
	}
	return w
}

// OddEvenMergeSort returns Batcher's odd-even merge sorting network, one of
// the special cases of LMM sort the paper cites.  n must be a power of two.
func OddEvenMergeSort(n int) (*Network, error) {
	if n <= 0 || n&(n-1) != 0 {
		return nil, fmt.Errorf("zeroone: OddEvenMergeSort needs a power of two, got %d", n)
	}
	w := &Network{N: n}
	var sortRange func(lo, m int)
	var merge func(lo, m, step int)
	merge = func(lo, m, step int) {
		next := step * 2
		if next < m {
			merge(lo, m, next)
			merge(lo+step, m, next)
			for i := lo + step; i+step < lo+m; i += next {
				w.Gates = append(w.Gates, Comparator{i, i + step})
			}
		} else {
			w.Gates = append(w.Gates, Comparator{lo, lo + step})
		}
	}
	sortRange = func(lo, m int) {
		if m > 1 {
			half := m / 2
			sortRange(lo, half)
			sortRange(lo+half, half)
			merge(lo, m, 1)
		}
	}
	sortRange(0, n)
	return w, nil
}

// bubbleOver appends a bubble network over the given line sequence: after
// the gates run, the keys on idx are ascending along idx.
func (w *Network) bubbleOver(idx []int) {
	for pass := 0; pass < len(idx)-1; pass++ {
		for i := 0; i < len(idx)-1-pass; i++ {
			w.Gates = append(w.Gates, Comparator{idx[i], idx[i+1]})
		}
	}
}

// Shearsort returns the oblivious Shearsort circuit for a rows×cols mesh on
// row-major lines: `phases` pairs of snake-row and column phases followed by
// a final ascending row phase, so a fully sorted mesh ends ascending in
// row-major line order.  ⌈log₂ rows⌉+1 phases sort every input; fewer
// phases sort only most inputs — the regime of Theorem 3.3.
func Shearsort(rows, cols, phases int) *Network {
	w := &Network{N: rows * cols}
	rowIdx := func(r int, reversed bool) []int {
		idx := make([]int, cols)
		for c := 0; c < cols; c++ {
			if reversed {
				idx[c] = r*cols + cols - 1 - c
			} else {
				idx[c] = r*cols + c
			}
		}
		return idx
	}
	for p := 0; p < phases; p++ {
		for r := 0; r < rows; r++ {
			w.bubbleOver(rowIdx(r, r%2 == 1))
		}
		for c := 0; c < cols; c++ {
			idx := make([]int, rows)
			for r := 0; r < rows; r++ {
				idx[r] = r*cols + c
			}
			w.bubbleOver(idx)
		}
	}
	for r := 0; r < rows; r++ {
		w.bubbleOver(rowIdx(r, false))
	}
	return w
}
