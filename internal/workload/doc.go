// Package workload generates the input distributions used by the test suite
// and the experiment harness: random permutations (the paper's probabilistic
// claims are over the space of input permutations), 0-1 k-strings (for the
// generalized zero-one principle), bounded integers (for IntegerSort and
// RadixSort), and structured adversarial inputs that force the expected-pass
// algorithms into their fallback paths.
//
// Every generator is a pure function of its parameters and seed, so every
// experiment in EXPERIMENTS.md is exactly reproducible.  Generators
// allocate plain slices only — no pdm I/O, no arena memory — so workload
// construction never perturbs a machine's accounting; the planner
// (internal/plan) maps generator kinds onto its presortedness hint.
package workload
