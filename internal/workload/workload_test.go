package workload

import (
	"math"
	"slices"
	"testing"
	"testing/quick"
)

func isPermutationOfRange(a []int64) bool {
	seen := make([]bool, len(a))
	for _, v := range a {
		if v < 0 || v >= int64(len(a)) || seen[v] {
			return false
		}
		seen[v] = true
	}
	return true
}

func TestPermIsPermutation(t *testing.T) {
	for _, n := range []int{0, 1, 2, 100, 1000} {
		a := Perm(n, 42)
		if len(a) != n || !isPermutationOfRange(a) {
			t.Fatalf("Perm(%d) is not a permutation of 0..%d", n, n-1)
		}
	}
}

func TestPermDeterministic(t *testing.T) {
	a := Perm(500, 7)
	b := Perm(500, 7)
	c := Perm(500, 8)
	if !slices.Equal(a, b) {
		t.Fatal("same seed produced different permutations")
	}
	if slices.Equal(a, c) {
		t.Fatal("different seeds produced identical permutations")
	}
}

func TestUniformRange(t *testing.T) {
	a := Uniform(1000, 5, 10, 3)
	for _, v := range a {
		if v < 5 || v > 10 {
			t.Fatalf("key %d outside [5,10]", v)
		}
	}
}

func TestZeroOneKExactCount(t *testing.T) {
	for _, tc := range []struct{ n, k int }{{10, 0}, {10, 10}, {10, 5}, {100, 37}, {1, 1}} {
		a := ZeroOneK(tc.n, tc.k, 9)
		zeros := 0
		for _, v := range a {
			switch v {
			case 0:
				zeros++
			case 1:
			default:
				t.Fatalf("non-binary key %d", v)
			}
		}
		if zeros != tc.k {
			t.Fatalf("ZeroOneK(%d,%d): %d zeros", tc.n, tc.k, zeros)
		}
	}
}

func TestZeroOneBinary(t *testing.T) {
	a := ZeroOne(1000, 0.5, 1)
	for _, v := range a {
		if v != 0 && v != 1 {
			t.Fatalf("non-binary key %d", v)
		}
	}
	if z := ZeroOne(100, 0, 1); slices.Max(z) != 1 || slices.Min(z) != 1 {
		t.Fatal("p=0 should give all ones")
	}
	if z := ZeroOne(100, 1, 1); slices.Max(z) != 0 {
		t.Fatal("p=1 should give all zeros")
	}
}

func TestSortedAndReverse(t *testing.T) {
	if !slices.IsSorted(Sorted(100)) {
		t.Fatal("Sorted is unsorted")
	}
	r := ReverseSorted(100)
	for i := 1; i < len(r); i++ {
		if r[i] >= r[i-1] {
			t.Fatal("ReverseSorted is not strictly decreasing")
		}
	}
}

func TestNearlySortedDisplacement(t *testing.T) {
	const n, d = 1000, 16
	a := NearlySorted(n, d, 5)
	if !isPermutationOfRange(a) {
		t.Fatal("NearlySorted not a permutation")
	}
	for i, v := range a {
		if diff := int(v) - i; diff > d || diff < -d {
			t.Fatalf("key %d displaced by %d > %d", v, diff, d)
		}
	}
	if !slices.IsSorted(NearlySorted(50, 1, 5)) {
		t.Fatal("d<2 should be sorted")
	}
}

func TestFewDistinct(t *testing.T) {
	a := FewDistinct(1000, 4, 2)
	for _, v := range a {
		if v < 0 || v >= 4 {
			t.Fatalf("key %d outside [0,4)", v)
		}
	}
}

func TestZipfRange(t *testing.T) {
	a := Zipf(1000, 1.5, 63, 4)
	for _, v := range a {
		if v < 0 || v > 63 {
			t.Fatalf("key %d outside [0,63]", v)
		}
	}
}

func TestSegmentReversed(t *testing.T) {
	a := SegmentReversed(12, 4)
	want := []int64{8, 9, 10, 11, 4, 5, 6, 7, 0, 1, 2, 3}
	if !slices.Equal(a, want) {
		t.Fatalf("SegmentReversed = %v, want %v", a, want)
	}
	if !isPermutationOfRange(SegmentReversed(10, 4)) {
		t.Fatal("ragged SegmentReversed not a permutation")
	}
}

func TestOrgan(t *testing.T) {
	for _, n := range []int{1, 2, 7, 10, 101} {
		a := Organ(n)
		if len(a) != n || !isPermutationOfRange(a) {
			t.Fatalf("Organ(%d) = %v not a permutation", n, a)
		}
	}
	if got := Organ(6); !slices.Equal(got, []int64{0, 2, 4, 5, 3, 1}) {
		t.Fatalf("Organ(6) = %v", got)
	}
}

func TestGeneratorsQuickPermutationProperty(t *testing.T) {
	f := func(seed int64, nRaw uint16) bool {
		n := int(nRaw)%500 + 1
		return isPermutationOfRange(Perm(n, seed)) &&
			isPermutationOfRange(NearlySorted(n, 8, seed)) &&
			isPermutationOfRange(SegmentReversed(n, 7)) &&
			isPermutationOfRange(Organ(n))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSortedRuns(t *testing.T) {
	const n, runLen = 1000, 64
	a := SortedRuns(n, runLen, 3)
	if !isPermutationOfRange(a) {
		t.Fatal("SortedRuns not a permutation")
	}
	for w := 0; w < n; w += runLen {
		end := w + runLen
		if end > n {
			end = n
		}
		if !slices.IsSorted(a[w:end]) {
			t.Fatalf("run at %d not sorted", w)
		}
	}
	if slices.IsSorted(a) {
		t.Fatal("SortedRuns came out globally sorted — runs not interleaved")
	}
	// Determinism and seed sensitivity.
	if !slices.Equal(a, SortedRuns(n, runLen, 3)) {
		t.Fatal("SortedRuns not reproducible")
	}
	if slices.Equal(a, SortedRuns(n, runLen, 4)) {
		t.Fatal("SortedRuns ignores the seed")
	}
	// Degenerate run lengths clamp instead of failing.
	if got := SortedRuns(10, 0, 1); !isPermutationOfRange(got) {
		t.Fatalf("runLen 0 = %v", got)
	}
}

func TestZipfSkewed(t *testing.T) {
	const n, distinct = 20000, 64
	a := ZipfSkewed(n, 1.2, distinct, 5)
	if len(a) != n {
		t.Fatalf("len = %d", len(a))
	}
	counts := make(map[int64]int)
	for _, k := range a {
		if k < 0 || k == math.MaxInt64 {
			t.Fatalf("key %d outside the sortable range", k)
		}
		counts[k]++
	}
	if len(counts) > distinct {
		t.Fatalf("%d distinct values, want <= %d", len(counts), distinct)
	}
	// Hot-key skew: the most frequent key must dominate far beyond the
	// uniform share (n/distinct ≈ 312; Zipf(1.2) gives the top key a
	// constant fraction of the stream).
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max < 3*n/distinct {
		t.Fatalf("hottest key has %d of %d draws — no skew", max, n)
	}
	// The hot values are scattered, not clustered at the bottom of the
	// key space: with values drawn uniformly from [0, MaxInt64) the
	// minimum present key should be enormous by permutation standards.
	min := int64(math.MaxInt64)
	for k := range counts {
		if k < min {
			min = k
		}
	}
	if min < int64(n) {
		t.Fatalf("minimum key %d — hot set clustered near zero", min)
	}
	if !slices.Equal(a, ZipfSkewed(n, 1.2, distinct, 5)) {
		t.Fatal("ZipfSkewed not reproducible")
	}
}

func TestZipfSkewedClampsExponent(t *testing.T) {
	// rand.NewZipf requires s > 1; out-of-domain exponents (service
	// input!) must clamp instead of panicking.
	for _, s := range []float64{1.0, 0, -3, math.NaN()} {
		a := ZipfSkewed(1000, s, 16, 1)
		if len(a) != 1000 {
			t.Fatalf("s=%v: len %d", s, len(a))
		}
	}
}
