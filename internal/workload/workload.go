package workload

import (
	"math"
	"math/rand"
	"sort"
)

// Perm returns a uniformly random permutation of 0..n-1 as int64 keys.
func Perm(n int, seed int64) []int64 {
	rng := rand.New(rand.NewSource(seed))
	a := make([]int64, n)
	for i := range a {
		a[i] = int64(i)
	}
	for i := n - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		a[i], a[j] = a[j], a[i]
	}
	return a
}

// Uniform returns n keys drawn uniformly from [lo, hi].
func Uniform(n int, lo, hi int64, seed int64) []int64 {
	rng := rand.New(rand.NewSource(seed))
	a := make([]int64, n)
	span := hi - lo + 1
	for i := range a {
		a[i] = lo + rng.Int63n(span)
	}
	return a
}

// ZeroOneK returns a uniformly random binary string (as 0/1 keys) of length
// n with exactly k zeros — a uniform member of the paper's k-set S_k.
func ZeroOneK(n, k int, seed int64) []int64 {
	rng := rand.New(rand.NewSource(seed))
	a := make([]int64, n)
	for i := range a {
		a[i] = 1
	}
	// Reservoir-style selection of k positions for zeros.
	chosen := 0
	for i := 0; i < n && chosen < k; i++ {
		if rng.Intn(n-i) < k-chosen {
			a[i] = 0
			chosen++
		}
	}
	return a
}

// ZeroOne returns a binary string of length n with each position 0 with
// probability p.
func ZeroOne(n int, p float64, seed int64) []int64 {
	rng := rand.New(rand.NewSource(seed))
	a := make([]int64, n)
	for i := range a {
		if rng.Float64() >= p {
			a[i] = 1
		}
	}
	return a
}

// Sorted returns 0..n-1 in order.
func Sorted(n int) []int64 {
	a := make([]int64, n)
	for i := range a {
		a[i] = int64(i)
	}
	return a
}

// ReverseSorted returns n-1..0.
func ReverseSorted(n int) []int64 {
	a := make([]int64, n)
	for i := range a {
		a[i] = int64(n - 1 - i)
	}
	return a
}

// NearlySorted returns a permutation of 0..n-1 in which every key is at most
// d positions from its sorted place: the sorted sequence is cut into windows
// of d keys and each window is shuffled.
func NearlySorted(n, d int, seed int64) []int64 {
	rng := rand.New(rand.NewSource(seed))
	a := Sorted(n)
	if d < 2 {
		return a
	}
	for w := 0; w < n; w += d {
		end := w + d
		if end > n {
			end = n
		}
		win := a[w:end]
		for i := len(win) - 1; i > 0; i-- {
			j := rng.Intn(i + 1)
			win[i], win[j] = win[j], win[i]
		}
	}
	return a
}

// FewDistinct returns n keys drawn from only v distinct values, the
// duplicate-heavy regime that stresses tie handling.
func FewDistinct(n, v int, seed int64) []int64 {
	rng := rand.New(rand.NewSource(seed))
	a := make([]int64, n)
	for i := range a {
		a[i] = int64(rng.Intn(v))
	}
	return a
}

// Zipf returns n keys from a Zipf(s, 1, imax) distribution — the skewed
// bucket population that stresses IntegerSort's write-step bound.
func Zipf(n int, s float64, imax uint64, seed int64) []int64 {
	rng := rand.New(rand.NewSource(seed))
	z := rand.NewZipf(rng, s, 1, imax)
	a := make([]int64, n)
	for i := range a {
		a[i] = int64(z.Uint64())
	}
	return a
}

// SortedRuns returns a permutation of 0..n-1 arranged as consecutive
// pre-sorted runs of runLen keys (the last run may be shorter): each run
// is ascending, its contents a random subset of the key space.  This is
// the shape of service inputs that arrive as concatenations of already-
// sorted batches — flushed memtables, log segments, per-shard partial
// results — and it exercises the run-formation passes on input whose runs
// are locally sorted but globally interleaved.
func SortedRuns(n, runLen int, seed int64) []int64 {
	a := Perm(n, seed)
	if runLen < 2 {
		runLen = 2
	}
	for w := 0; w < n; w += runLen {
		end := w + runLen
		if end > n {
			end = n
		}
		win := a[w:end]
		sort.Slice(win, func(i, j int) bool { return win[i] < win[j] })
	}
	return a
}

// ZipfSkewed returns n keys drawn Zipf(s)-style from a set of distinct
// values that are themselves scattered uniformly through the int64 key
// space — the hot-key skew of service traffic (a handful of keys dominate
// the stream) without Zipf's clustering of the hot values near zero, so
// duplicates of one hot key land together under any comparison sort while
// the hot keys themselves are spread across the output.  Exponents s
// outside Zipf's s > 1 domain (including NaN) clamp to 1.2, so the
// generator is total over untrusted service input.
func ZipfSkewed(n int, s float64, distinct int, seed int64) []int64 {
	rng := rand.New(rand.NewSource(seed))
	if !(s > 1) {
		s = 1.2
	}
	if distinct < 1 {
		distinct = 1
	}
	vals := make([]int64, distinct)
	for i := range vals {
		vals[i] = rng.Int63n(math.MaxInt64) // < MaxInt64: never the pad sentinel
	}
	z := rand.NewZipf(rng, s, 1, uint64(distinct-1))
	a := make([]int64, n)
	for i := range a {
		a[i] = vals[z.Uint64()]
	}
	return a
}

// SegmentReversed returns the permutation of 0..n-1 whose runLen-key
// segments appear in reverse order (segment contents sorted).  After
// one-pass run formation the runs are maximally misaligned: the keys of the
// last segment belong at the front of the output, so the shuffle-based
// expected-pass algorithms exceed any sublinear displacement bound and must
// detect failure and fall back.
func SegmentReversed(n, runLen int) []int64 {
	a := make([]int64, 0, n)
	segs := (n + runLen - 1) / runLen
	for s := segs - 1; s >= 0; s-- {
		lo := s * runLen
		hi := lo + runLen
		if hi > n {
			hi = n
		}
		for v := lo; v < hi; v++ {
			a = append(a, int64(v))
		}
	}
	return a
}

// ColumnLoaded returns a permutation of 0..n-1 that defeats the skip-Step-1
// mesh algorithm (ExpTwoPassMesh): the n/cols smallest keys all sit at
// positions ≡ 0 (mod cols), i.e. in a single column of the row-major mesh.
// After the column sort those keys remain interleaved one-per-row, so the
// k-th smallest key is ~k·(cols−1) positions from home and any sublinear
// cleanup window overflows.  cols must divide n.
func ColumnLoaded(n, cols int) []int64 {
	a := make([]int64, n)
	small, rest := int64(0), int64(n/cols)
	for p := 0; p < n; p++ {
		if p%cols == 0 {
			a[p] = small
			small++
		} else {
			a[p] = rest
			rest++
		}
	}
	return a
}

// Organ returns the organ-pipe permutation 0,2,4,…,5,3,1 — ascending evens
// followed by descending odds — a classical hard case for merge-based
// cleanup phases.
func Organ(n int) []int64 {
	a := make([]int64, 0, n)
	for v := 0; v < n; v += 2 {
		a = append(a, int64(v))
	}
	start := n - 1
	if start%2 == 0 {
		start--
	}
	for v := start; v >= 1; v -= 2 {
		a = append(a, int64(v))
	}
	return a
}
