package shuffle

import (
	"fmt"
	"math"

	"repro/internal/memsort"
)

// Unshuffle splits x into m parts by residue: part p receives x[p], x[p+m],
// x[p+2m], …  len(x) must be divisible by m.
func Unshuffle(x []int64, m int) ([][]int64, error) {
	if m <= 0 || len(x)%m != 0 {
		return nil, fmt.Errorf("shuffle: cannot unshuffle %d keys into %d parts", len(x), m)
	}
	q := len(x) / m
	parts := make([][]int64, m)
	for p := range parts {
		part := make([]int64, q)
		for i := range part {
			part[i] = x[p+i*m]
		}
		parts[p] = part
	}
	return parts, nil
}

// Shuffle interleaves equal-length parts: the result Z has
// Z[k·m + p] = parts[p][k].  This is the inverse of Unshuffle.
func Shuffle(parts [][]int64) ([]int64, error) {
	if len(parts) == 0 {
		return nil, nil
	}
	q := len(parts[0])
	for p, part := range parts {
		if len(part) != q {
			return nil, fmt.Errorf("shuffle: part %d has %d keys, want %d", p, len(part), q)
		}
	}
	m := len(parts)
	z := make([]int64, m*q)
	for k := 0; k < q; k++ {
		for p := 0; p < m; p++ {
			z[k*m+p] = parts[p][k]
		}
	}
	return z, nil
}

// PartitionSortShuffle performs the Lemma 4.2 experiment on x: cut x into m
// consecutive equal parts (the "random partition" when x is a random
// permutation), sort each part, and shuffle the sorted parts into Z.
func PartitionSortShuffle(x []int64, m int) ([]int64, error) {
	if m <= 0 || len(x)%m != 0 {
		return nil, fmt.Errorf("shuffle: cannot partition %d keys into %d parts", len(x), m)
	}
	q := len(x) / m
	parts := make([][]int64, m)
	for p := range parts {
		part := append([]int64(nil), x[p*q:(p+1)*q]...)
		memsort.Keys(part)
		parts[p] = part
	}
	return Shuffle(parts)
}

// DisplacementBound returns Lemma 4.2's high-probability bound on the
// distance of any key of Z from its sorted position:
// (n/√q)·√((α+2)·ln n + 1) + n/q, where q = n/m is the part length.
func DisplacementBound(n, q int, alpha float64) float64 {
	if n <= 1 || q <= 0 {
		return 0
	}
	fn, fq := float64(n), float64(q)
	return fn/math.Sqrt(fq)*math.Sqrt((alpha+2)*math.Log(fn)+1) + fn/fq
}

// MaxDisplacement returns the largest distance between a key's position in z
// and its position in the stable sort of z.
func MaxDisplacement(z []int64) int {
	type pair struct {
		v int64
		i int32
	}
	tagged := make([]pair, len(z))
	for i, v := range z {
		tagged[i] = pair{v, int32(i)}
	}
	// Stable by construction: sort packed (v, i) pairs via a merge sort on
	// the pair slice.
	tmp := make([]pair, len(tagged))
	var ms func(lo, hi int)
	ms = func(lo, hi int) {
		if hi-lo < 2 {
			return
		}
		mid := (lo + hi) / 2
		ms(lo, mid)
		ms(mid, hi)
		i, j, k := lo, mid, lo
		for i < mid && j < hi {
			if tagged[j].v < tagged[i].v {
				tmp[k] = tagged[j]
				j++
			} else {
				tmp[k] = tagged[i]
				i++
			}
			k++
		}
		for i < mid {
			tmp[k] = tagged[i]
			i++
			k++
		}
		for j < hi {
			tmp[k] = tagged[j]
			j++
			k++
		}
		copy(tagged[lo:hi], tmp[lo:hi])
	}
	ms(0, len(tagged))
	maxD := 0
	for sortedPos, p := range tagged {
		d := sortedPos - int(p.i)
		if d < 0 {
			d = -d
		}
		if d > maxD {
			maxD = d
		}
	}
	return maxD
}

// RankInterval is the Lemma 4.2 interval for the rank k of the element of
// global rank r within its part: [rq/n − s, rq/n + s] with
// s = √((α+2)·q·ln n) + 1.
func RankInterval(r, n, q int, alpha float64) (lo, hi float64) {
	center := float64(r) * float64(q) / float64(n)
	s := math.Sqrt((alpha+2)*float64(q)*math.Log(float64(n))) + 1
	return center - s, center + s
}
