// Package shuffle implements the unshuffle/shuffle permutations at the heart
// of the (l,m)-merge and the paper's shuffling lemma (Lemma 4.2): partition a
// random permutation into m equal parts, sort each part, shuffle the sorted
// parts, and every key lands within (n/√q)·√((α+2)·ln n + 1) + n/q of its
// final position with probability ≥ 1 − n^(−α).
//
// The displacement bound is what lets the expected-pass algorithms finish
// with a single bounded cleanup; internal/core consumes these permutations
// streamily, and this package provides the reference forms plus the bound
// calculator the experiments compare against.
package shuffle
