package shuffle

import (
	"slices"
	"testing"
	"testing/quick"

	"repro/internal/memsort"
	"repro/internal/workload"
)

func TestUnshuffleShuffleInverse(t *testing.T) {
	x := workload.Perm(60, 1)
	for _, m := range []int{1, 2, 3, 5, 6, 10, 60} {
		parts, err := Unshuffle(x, m)
		if err != nil {
			t.Fatal(err)
		}
		if len(parts) != m {
			t.Fatalf("m=%d: got %d parts", m, len(parts))
		}
		z, err := Shuffle(parts)
		if err != nil {
			t.Fatal(err)
		}
		if !slices.Equal(z, x) {
			t.Fatalf("m=%d: shuffle(unshuffle(x)) != x", m)
		}
	}
}

func TestUnshuffleSemantics(t *testing.T) {
	x := []int64{0, 1, 2, 3, 4, 5}
	parts, err := Unshuffle(x, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(parts[0], []int64{0, 2, 4}) || !slices.Equal(parts[1], []int64{1, 3, 5}) {
		t.Fatalf("parts = %v", parts)
	}
}

func TestShuffleSemantics(t *testing.T) {
	z, err := Shuffle([][]int64{{1, 3}, {2, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(z, []int64{1, 2, 3, 4}) {
		t.Fatalf("z = %v", z)
	}
	if z, err := Shuffle(nil); err != nil || z != nil {
		t.Fatalf("empty shuffle = %v, %v", z, err)
	}
}

func TestShuffleErrors(t *testing.T) {
	if _, err := Unshuffle(make([]int64, 5), 2); err == nil {
		t.Fatal("non-dividing unshuffle accepted")
	}
	if _, err := Unshuffle(nil, 0); err == nil {
		t.Fatal("m=0 accepted")
	}
	if _, err := Shuffle([][]int64{{1}, {2, 3}}); err == nil {
		t.Fatal("ragged parts accepted")
	}
	if _, err := PartitionSortShuffle(make([]int64, 5), 2); err == nil {
		t.Fatal("non-dividing partition accepted")
	}
}

func TestPartitionSortShuffleIsPermutation(t *testing.T) {
	x := workload.Perm(120, 3)
	z, err := PartitionSortShuffle(x, 4)
	if err != nil {
		t.Fatal(err)
	}
	sortedZ := append([]int64(nil), z...)
	memsort.Keys(sortedZ)
	if !slices.Equal(sortedZ, workload.Sorted(120)) {
		t.Fatal("output is not a permutation of the input")
	}
}

func TestLemma42BoundHoldsOnRandomInputs(t *testing.T) {
	// The heart of Lemma 4.2: for random permutations the empirical max
	// displacement stays below the analytical bound.  With α=1 the failure
	// probability is ≤ 1/n per trial; over 50 trials at n=4096 a single
	// failure would be a ~1% event, so assert zero failures of 2x the
	// bound and allow none above the bound itself.
	const n, m, alpha = 4096, 16, 1.0
	q := n / m
	bound := DisplacementBound(n, q, alpha)
	for trial := 0; trial < 50; trial++ {
		x := workload.Perm(n, int64(trial))
		z, err := PartitionSortShuffle(x, m)
		if err != nil {
			t.Fatal(err)
		}
		if d := MaxDisplacement(z); float64(d) > bound {
			t.Fatalf("trial %d: displacement %d exceeds Lemma 4.2 bound %.1f", trial, d, bound)
		}
	}
}

func TestMaxDisplacement(t *testing.T) {
	if d := MaxDisplacement([]int64{1, 2, 3}); d != 0 {
		t.Fatalf("sorted: %d", d)
	}
	if d := MaxDisplacement([]int64{3, 1, 2}); d != 2 {
		t.Fatalf("rotated: %d", d)
	}
	if d := MaxDisplacement([]int64{7, 7, 7}); d != 0 {
		t.Fatalf("constant: %d", d)
	}
	if d := MaxDisplacement(nil); d != 0 {
		t.Fatalf("empty: %d", d)
	}
	if d := MaxDisplacement(workload.ReverseSorted(10)); d != 9 {
		t.Fatalf("reversed: %d", d)
	}
}

func TestDisplacementBoundShape(t *testing.T) {
	// Bound grows with n, shrinks with q.
	if DisplacementBound(1024, 64, 1) <= DisplacementBound(1024, 256, 1) {
		t.Fatal("bound should shrink as q grows")
	}
	if DisplacementBound(4096, 64, 1) <= DisplacementBound(1024, 64, 1) {
		t.Fatal("bound should grow with n")
	}
	if DisplacementBound(1, 1, 1) != 0 || DisplacementBound(10, 0, 1) != 0 {
		t.Fatal("degenerate bounds should be 0")
	}
}

func TestRankInterval(t *testing.T) {
	lo, hi := RankInterval(500, 1000, 100, 1)
	if lo >= hi {
		t.Fatalf("empty interval [%v,%v]", lo, hi)
	}
	center := 500.0 * 100.0 / 1000.0
	if lo > center || hi < center {
		t.Fatalf("interval [%v,%v] misses center %v", lo, hi, center)
	}
}

func TestRankIntervalCoversEmpirically(t *testing.T) {
	// For a random permutation, the rank of element r inside its part must
	// fall inside the Lemma 4.2 interval (w.h.p.); check a few elements.
	const n, m = 2048, 8
	q := n / m
	x := workload.Perm(n, 9)
	for _, r := range []int{1, n / 4, n / 2, 3 * n / 4, n} {
		// Find the part containing the element of rank r (value r-1).
		var k int
		for p := 0; p < m; p++ {
			part := x[p*q : (p+1)*q]
			found := false
			rank := 1
			for _, v := range part {
				if v == int64(r-1) {
					found = true
				}
				if v < int64(r-1) {
					rank++
				}
			}
			if found {
				k = rank
				break
			}
		}
		lo, hi := RankInterval(r, n, q, 1)
		if float64(k) < lo || float64(k) > hi {
			t.Fatalf("rank %d of element %d outside [%v,%v]", k, r, lo, hi)
		}
	}
}

func TestUnshuffleShuffleQuickProperty(t *testing.T) {
	f := func(seed int64, mRaw uint8) bool {
		m := 1 + int(mRaw)%8
		x := workload.Perm(m*16, seed)
		parts, err := Unshuffle(x, m)
		if err != nil {
			return false
		}
		z, err := Shuffle(parts)
		return err == nil && slices.Equal(z, x)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
