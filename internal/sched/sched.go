package sched

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	"repro/internal/par"
	"repro/internal/pdm"
)

// State is a job's lifecycle position.
type State int

const (
	// Queued jobs wait for admission in FIFO order.
	Queued State = iota
	// Running jobs hold their memory/disk envelopes and execute.
	Running
	// Done jobs completed successfully.
	Done
	// Failed jobs returned an error other than cancellation.
	Failed
	// Canceled jobs were canceled before or during execution.
	Canceled
)

// String names the state as the service reports it.
func (s State) String() string {
	switch s {
	case Queued:
		return "queued"
	case Running:
		return "running"
	case Done:
		return "done"
	case Failed:
		return "failed"
	case Canceled:
		return "canceled"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Errors returned by the scheduler.
var (
	// ErrClosed is returned by Submit after Close.
	ErrClosed = errors.New("sched: scheduler closed")
	// ErrQueueFull is returned by Submit when the admission queue is at
	// capacity — the service's backpressure signal.
	ErrQueueFull = errors.New("sched: admission queue full")
	// ErrTooLarge is returned by Submit for a job whose envelope could
	// never fit the scheduler's total budget.
	ErrTooLarge = errors.New("sched: job envelope exceeds the scheduler budget")
)

// Config sizes a Scheduler.
type Config struct {
	// MemKeys is the global internal-memory budget in keys; every running
	// job's arena capacity is carved from it.  Required.
	MemKeys int
	// DiskKeys is the global scratch budget in keys; zero selects
	// 64·MemKeys.
	DiskKeys int
	// Workers is the global compute budget: the width of the par.Limiter
	// every job's worker pool shares.  Zero selects GOMAXPROCS.
	Workers int
	// Dir, when non-empty, gives each job a scratch directory
	// Dir/job-NNNN (created at admission, removed at completion) for
	// file-backed disks.
	Dir string
	// MaxQueue bounds the number of queued jobs; zero selects 1024.
	MaxQueue int
	// RemoveDir removes a job's scratch directory when the job finishes;
	// nil selects os.RemoveAll.  It exists as a seam for the cleanup-
	// failure tests (an undeletable directory cannot be simulated portably
	// when the test runs as root).
	RemoveDir func(string) error
}

// Env is what an admitted job receives: its identity, the shared compute
// budget, and its scratch directory ("" when the scheduler is
// memory-backed).
type Env struct {
	JobID   int
	Limiter *par.Limiter
	Workers int
	Dir     string
}

// Request describes one job: its resource envelope and its body.
type Request struct {
	// Label is a free-form tag carried through to status reports.
	Label string
	// MemKeys is the internal-memory envelope reserved on the global
	// ledger for the job's lifetime (for a sorting job: the whole arena
	// capacity of its machine).  Must be positive.
	MemKeys int
	// DiskKeys is the on-disk scratch envelope reserved for the job.
	DiskKeys int
	// Run is the job body.  It must honor ctx — the pdm layer turns a
	// bound context into failing I/O, so a sorting Run that uses
	// SortContext aborts promptly when canceled.
	Run func(ctx context.Context, env Env) error
}

// Job is a handle on one submitted job.
type Job struct {
	id       int
	label    string
	memKeys  int
	diskKeys int
	run      func(ctx context.Context, env Env) error
	done     chan struct{}

	mu              sync.Mutex
	state           State
	cancelRequested bool
	cancel          context.CancelFunc
	err             error
	cleanupErr      error
	submitted       time.Time
	started         time.Time
	finished        time.Time
}

// ID returns the job's scheduler-assigned identifier.
func (j *Job) ID() int { return j.id }

// Label returns the submit-time tag.
func (j *Job) Label() string { return j.label }

// MemKeys returns the job's internal-memory envelope.
func (j *Job) MemKeys() int { return j.memKeys }

// DiskKeys returns the job's scratch envelope.
func (j *Job) DiskKeys() int { return j.diskKeys }

// State returns the job's current lifecycle state.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Err returns the job's terminal error (nil while not finished or Done).
func (j *Job) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// CleanupErr returns the scratch-directory removal failure recorded when
// the job's envelope was released (nil when cleanup succeeded or the job
// had no scratch directory).  A non-nil value means the directory is
// still on disk even though the envelope was returned — leaked space an
// operator must reclaim.
func (j *Job) CleanupErr() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.cleanupErr
}

// Times returns the submit, start, and finish timestamps (zero when the
// job has not reached the corresponding transition).
func (j *Job) Times() (submitted, started, finished time.Time) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.submitted, j.started, j.finished
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Wait blocks until the job finishes or ctx is canceled, returning the
// job's terminal error (nil for Done).
func (j *Job) Wait(ctx context.Context) error {
	select {
	case <-j.done:
		return j.Err()
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Cancel requests cancellation: a queued job is dropped at the next
// admission step without ever holding resources; a running job has its
// context canceled.  Idempotent; a no-op on finished jobs.
func (j *Job) Cancel() {
	j.mu.Lock()
	j.cancelRequested = true
	cancel := j.cancel
	j.mu.Unlock()
	if cancel != nil {
		cancel()
	}
}

// Stats is a snapshot of the scheduler's aggregate state.
type Stats struct {
	Submitted int
	Completed int
	Failed    int
	Canceled  int
	Queued    int
	Running   int

	MemInUse     int
	MemCapacity  int
	DiskInUse    int
	DiskCapacity int
	Workers      int

	// CleanupFailures counts jobs whose scratch directory could not be
	// removed when their envelope was released.  Every such failure leaks
	// disk outside the budget ledger, so a nonzero value is an operator
	// signal; the per-job error is on Job.CleanupErr.
	CleanupFailures int
}

// Scheduler admits and runs jobs against the global budgets.
type Scheduler struct {
	cfg Config
	lim *par.Limiter
	mem *pdm.Arena // global internal-memory ledger

	mu              sync.Mutex
	cond            *sync.Cond
	queue           []*Job
	jobs            map[int]*Job
	nextID          int
	diskInUse       int
	running         int
	completed       int
	failed          int
	canceled        int
	cleanupFailures int
	closed          bool

	wg sync.WaitGroup
}

// New starts a scheduler with the given budgets.
func New(cfg Config) (*Scheduler, error) {
	if cfg.MemKeys <= 0 {
		return nil, fmt.Errorf("sched: MemKeys = %d, want > 0", cfg.MemKeys)
	}
	if cfg.DiskKeys == 0 {
		cfg.DiskKeys = 64 * cfg.MemKeys
	}
	if cfg.DiskKeys < 0 {
		return nil, fmt.Errorf("sched: DiskKeys = %d, want >= 0", cfg.DiskKeys)
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.MaxQueue <= 0 {
		cfg.MaxQueue = 1024
	}
	s := &Scheduler{
		cfg:  cfg,
		lim:  par.NewLimiter(cfg.Workers),
		mem:  pdm.NewArena(cfg.MemKeys),
		jobs: make(map[int]*Job),
	}
	s.cond = sync.NewCond(&s.mu)
	s.wg.Add(1)
	go s.admit()
	return s, nil
}

// Limiter returns the shared compute budget (for harnesses that build
// machines outside the scheduler but want to share its width).
func (s *Scheduler) Limiter() *par.Limiter { return s.lim }

// Ledger returns the global internal-memory ledger arena.
func (s *Scheduler) Ledger() *pdm.Arena { return s.mem }

// Submit enqueues a job.  It fails fast with ErrTooLarge for envelopes
// that could never fit and with ErrQueueFull when the queue is at
// capacity; otherwise the job waits its FIFO turn.
func (s *Scheduler) Submit(req Request) (*Job, error) {
	if req.Run == nil {
		return nil, errors.New("sched: Request.Run is nil")
	}
	if req.MemKeys <= 0 || req.DiskKeys < 0 {
		return nil, fmt.Errorf("sched: bad envelope: mem %d keys, disk %d keys", req.MemKeys, req.DiskKeys)
	}
	if req.MemKeys > s.cfg.MemKeys || req.DiskKeys > s.cfg.DiskKeys {
		return nil, fmt.Errorf("%w: mem %d/%d keys, disk %d/%d keys",
			ErrTooLarge, req.MemKeys, s.cfg.MemKeys, req.DiskKeys, s.cfg.DiskKeys)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	if len(s.queue) >= s.cfg.MaxQueue {
		return nil, ErrQueueFull
	}
	s.nextID++
	j := &Job{
		id:        s.nextID,
		label:     req.Label,
		memKeys:   req.MemKeys,
		diskKeys:  req.DiskKeys,
		run:       req.Run,
		done:      make(chan struct{}),
		state:     Queued,
		submitted: time.Now(),
	}
	s.jobs[j.id] = j
	s.queue = append(s.queue, j)
	s.cond.Broadcast()
	return j, nil
}

// Job returns the handle for id.
func (s *Scheduler) Job(id int) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Jobs returns every known job handle in submission order.
func (s *Scheduler) Jobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, 0, len(s.jobs))
	for id := 1; id <= s.nextID; id++ {
		if j, ok := s.jobs[id]; ok {
			out = append(out, j)
		}
	}
	return out
}

// Cancel cancels the job with the given id, reporting whether it exists.
func (s *Scheduler) Cancel(id int) bool {
	j, ok := s.Job(id)
	if !ok {
		return false
	}
	j.Cancel()
	// Wake the admitter so a canceled head leaves the queue promptly.
	s.mu.Lock()
	s.cond.Broadcast()
	s.mu.Unlock()
	return true
}

// Stats returns a snapshot of the aggregate state.
func (s *Scheduler) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Submitted:       s.nextID,
		Completed:       s.completed,
		Failed:          s.failed,
		Canceled:        s.canceled,
		Queued:          len(s.queue),
		Running:         s.running,
		MemInUse:        s.mem.InUse(),
		MemCapacity:     s.mem.Capacity(),
		DiskInUse:       s.diskInUse,
		DiskCapacity:    s.cfg.DiskKeys,
		Workers:         s.cfg.Workers,
		CleanupFailures: s.cleanupFailures,
	}
}

// Close stops admission, cancels every remaining job, and waits for the
// running ones to finish.  It is idempotent.
func (s *Scheduler) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	jobs := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.cond.Broadcast()
	s.mu.Unlock()
	for _, j := range jobs {
		j.Cancel()
	}
	s.mu.Lock()
	s.cond.Broadcast()
	s.mu.Unlock()
	s.wg.Wait()
}

// admit is the admission goroutine: strict FIFO with head-of-line
// blocking on the budgets.
func (s *Scheduler) admit() {
	defer s.wg.Done()
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		for !s.closed {
			if len(s.queue) == 0 {
				s.cond.Wait()
				continue
			}
			j := s.queue[0]
			j.mu.Lock()
			dropped := j.cancelRequested
			j.mu.Unlock()
			if dropped {
				s.queue = s.queue[1:]
				s.canceled++
				s.finish(j, Canceled, context.Canceled)
				continue
			}
			if s.fits(j) {
				break
			}
			s.cond.Wait()
		}
		if s.closed {
			// Drain: everything still queued is canceled without ever
			// holding resources.
			for _, j := range s.queue {
				s.canceled++
				s.finish(j, Canceled, context.Canceled)
			}
			s.queue = nil
			return
		}
		j := s.queue[0]
		s.queue = s.queue[1:]
		// Only this goroutine reserves, so fits() cannot go stale between
		// the check and the reservation.
		if err := s.mem.Reserve(j.memKeys); err != nil {
			panic(fmt.Sprintf("sched: ledger reservation failed after fits(): %v", err))
		}
		s.diskInUse += j.diskKeys
		s.running++
		s.wg.Add(1)
		go s.runJob(j)
	}
}

// fits reports whether the head job's envelope fits the free budgets.
// s.mu must be held.
func (s *Scheduler) fits(j *Job) bool {
	return s.mem.InUse()+j.memKeys <= s.mem.Capacity() &&
		s.diskInUse+j.diskKeys <= s.cfg.DiskKeys
}

// finish moves a never-admitted job to a terminal state.  s.mu must be
// held (the job holds no resources, so nothing is released).
func (s *Scheduler) finish(j *Job, state State, err error) {
	j.mu.Lock()
	j.state = state
	j.err = err
	j.finished = time.Now()
	j.mu.Unlock()
	close(j.done)
}

// runJob executes one admitted job and releases its envelope.
func (s *Scheduler) runJob(j *Job) {
	defer s.wg.Done()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	j.mu.Lock()
	if j.cancelRequested {
		j.mu.Unlock()
		s.release(j, Canceled, context.Canceled, "")
		return
	}
	j.state = Running
	j.started = time.Now()
	j.cancel = cancel
	j.mu.Unlock()

	dir := ""
	var err error
	if s.cfg.Dir != "" {
		dir = filepath.Join(s.cfg.Dir, fmt.Sprintf("job-%04d", j.id))
		err = os.MkdirAll(dir, 0o755)
	}
	if err == nil {
		err = j.run(ctx, Env{JobID: j.id, Limiter: s.lim, Workers: s.cfg.Workers, Dir: dir})
	}
	state := Done
	if err != nil {
		state = Failed
		j.mu.Lock()
		if j.cancelRequested {
			state = Canceled
		}
		j.mu.Unlock()
	}
	s.release(j, state, err, dir)
}

// release returns an admitted job's envelope (removing its scratch
// directory first) and records its terminal state.  A cleanup failure is
// never silent: it is recorded on the job and counted in Stats, because a
// directory that survives its job leaks disk the budget ledger no longer
// accounts for.
func (s *Scheduler) release(j *Job, state State, err error, dir string) {
	var cleanupErr error
	if dir != "" {
		remove := s.cfg.RemoveDir
		if remove == nil {
			remove = os.RemoveAll
		}
		if rerr := remove(dir); rerr != nil {
			cleanupErr = fmt.Errorf("sched: scratch cleanup of job %d: %w", j.id, rerr)
		}
	}
	s.mem.Release(j.memKeys)
	s.mu.Lock()
	if cleanupErr != nil {
		s.cleanupFailures++
	}
	s.diskInUse -= j.diskKeys
	s.running--
	switch state {
	case Done:
		s.completed++
	case Failed:
		s.failed++
	case Canceled:
		s.canceled++
	}
	s.cond.Broadcast()
	s.mu.Unlock()

	j.mu.Lock()
	j.state = state
	j.err = err
	j.cleanupErr = cleanupErr
	j.finished = time.Now()
	j.cancel = nil
	j.mu.Unlock()
	close(j.done)
}
