// Package sched admits and runs jobs against global memory, disk, and
// compute budgets, optionally journaling every lifecycle transition so a
// restarted scheduler can recover its queue and resume interrupted work.
package sched

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/journal"
	"repro/internal/par"
	"repro/internal/pdm"
)

// State is a job's lifecycle position.
type State int

const (
	// Queued jobs wait for admission in FIFO order.
	Queued State = iota
	// Running jobs hold their memory/disk envelopes and execute.
	Running
	// Done jobs completed successfully.
	Done
	// Failed jobs returned an error other than cancellation.
	Failed
	// Canceled jobs were canceled before or during execution.
	Canceled
	// Suspended jobs were interrupted at a pass boundary by Drain: the
	// envelope is released and the scratch directory kept, and no terminal
	// record is journaled, so a restarted scheduler recovers them.
	Suspended
)

// String names the state as the service reports it.
func (s State) String() string {
	switch s {
	case Queued:
		return "queued"
	case Running:
		return "running"
	case Done:
		return "done"
	case Failed:
		return "failed"
	case Canceled:
		return "canceled"
	case Suspended:
		return "suspended"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Errors returned by the scheduler.
var (
	// ErrClosed is returned by Submit after Close.
	ErrClosed = errors.New("sched: scheduler closed")
	// ErrQueueFull is returned by Submit when the admission queue is at
	// capacity — the service's backpressure signal.
	ErrQueueFull = errors.New("sched: admission queue full")
	// ErrTooLarge is returned by Submit for a job whose envelope could
	// never fit the scheduler's total budget.
	ErrTooLarge = errors.New("sched: job envelope exceeds the scheduler budget")
	// ErrDraining is returned from Env.Checkpoint while the scheduler is
	// draining: the job has a durable manifest for the pass it just
	// finished, so it should abort here and let recovery resume it.
	ErrDraining = errors.New("sched: draining, stop at this checkpoint")
	// ErrUnknownRecovered is returned by Submit for a Request.ID that does
	// not name a pending recovered job.
	ErrUnknownRecovered = errors.New("sched: no pending recovered job with that id")
)

// Config sizes a Scheduler.
type Config struct {
	// MemKeys is the global internal-memory budget in keys; every running
	// job's arena capacity is carved from it.  Required.
	MemKeys int
	// DiskKeys is the global scratch budget in keys; zero selects
	// 64·MemKeys.
	DiskKeys int
	// Workers is the global compute budget: the width of the par.Limiter
	// every job's worker pool shares.  Zero selects GOMAXPROCS.
	Workers int
	// Dir, when non-empty, gives each job a scratch directory
	// Dir/job-NNNN (created at admission, removed at completion) for
	// file-backed disks.
	Dir string
	// MaxQueue bounds the number of queued jobs; zero selects 1024.
	MaxQueue int
	// RemoveDir removes a job's scratch directory when the job finishes;
	// nil selects os.RemoveAll.  It exists as a seam for the cleanup-
	// failure tests (an undeletable directory cannot be simulated portably
	// when the test runs as root).
	RemoveDir func(string) error
	// Journal, when non-nil, receives an append-only record of every job
	// lifecycle transition.  New replays whatever the journal recovered:
	// jobs without a terminal record become Recovered() candidates, and
	// scratch directories under Dir with no live journal entry are swept.
	// The scheduler owns the journal from here on and closes it on
	// Close/Drain.
	Journal *journal.Journal
	// CompactBytes triggers a compacting snapshot when the journal's
	// on-disk size reaches this many bytes; zero disables compaction.
	CompactBytes int64
}

// Env is what an admitted job receives: its identity, the shared compute
// budget, its scratch directory ("" when the scheduler is memory-backed),
// and a Checkpoint sink for durable pass manifests.
type Env struct {
	JobID   int
	Limiter *par.Limiter
	Workers int
	Dir     string
	// Checkpoint journals an opaque pass manifest for this job.  It
	// returns ErrDraining when the scheduler wants the job to stop at
	// this boundary; the job should abort with that error so it is
	// suspended (scratch kept) rather than failed.  Always non-nil.
	Checkpoint func(manifest []byte) error
}

// Request describes one job: its resource envelope and its body.
type Request struct {
	// Label is a free-form tag carried through to status reports.
	Label string
	// MemKeys is the internal-memory envelope reserved on the global
	// ledger for the job's lifetime (for a sorting job: the whole arena
	// capacity of its machine).  Must be positive.
	MemKeys int
	// DiskKeys is the on-disk scratch envelope reserved for the job.
	DiskKeys int
	// Spec is an opaque description of the job journaled with its
	// submission record and handed back verbatim through
	// RecoveredJob.Spec, so the owner can reconstruct Run after a
	// restart.  Ignored without a journal.
	Spec []byte
	// ID, when nonzero, resubmits the pending recovered job with that
	// identity instead of assigning a fresh one.  The job keeps its
	// original journal records (and therefore its original scratch
	// directory); no new submission record is written.
	ID int
	// Run is the job body.  It must honor ctx — the pdm layer turns a
	// bound context into failing I/O, so a sorting Run that uses
	// SortContext aborts promptly when canceled.
	Run func(ctx context.Context, env Env) error
}

// Job is a handle on one submitted job.
type Job struct {
	id       int
	label    string
	memKeys  int
	diskKeys int
	run      func(ctx context.Context, env Env) error
	done     chan struct{}

	mu              sync.Mutex
	state           State
	cancelRequested bool
	cancel          context.CancelFunc
	err             error
	cleanupErr      error
	submitted       time.Time
	started         time.Time
	finished        time.Time

	// Journal records backing this job, kept so compaction can carry the
	// live tail of the log forward.  Written under the scheduler's
	// journal mutex, read under j.mu.
	subRec   *journal.Record
	admitRec *journal.Record
	ckptRec  *journal.Record
}

// ID returns the job's scheduler-assigned identifier.
func (j *Job) ID() int { return j.id }

// Label returns the submit-time tag.
func (j *Job) Label() string { return j.label }

// MemKeys returns the job's internal-memory envelope.
func (j *Job) MemKeys() int { return j.memKeys }

// DiskKeys returns the job's scratch envelope.
func (j *Job) DiskKeys() int { return j.diskKeys }

// State returns the job's current lifecycle state.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Err returns the job's terminal error (nil while not finished or Done).
func (j *Job) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// CleanupErr returns the scratch-directory removal failure recorded when
// the job's envelope was released (nil when cleanup succeeded or the job
// had no scratch directory).  A non-nil value means the directory is
// still on disk even though the envelope was returned — leaked space an
// operator must reclaim.
func (j *Job) CleanupErr() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.cleanupErr
}

// Times returns the submit, start, and finish timestamps (zero when the
// job has not reached the corresponding transition).
func (j *Job) Times() (submitted, started, finished time.Time) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.submitted, j.started, j.finished
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Wait blocks until the job finishes or ctx is canceled, returning the
// job's terminal error (nil for Done).
func (j *Job) Wait(ctx context.Context) error {
	select {
	case <-j.done:
		return j.Err()
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Cancel requests cancellation: a queued job is dropped at the next
// admission step without ever holding resources; a running job has its
// context canceled.  Idempotent; a no-op on finished jobs.
func (j *Job) Cancel() {
	j.mu.Lock()
	j.cancelRequested = true
	cancel := j.cancel
	j.mu.Unlock()
	if cancel != nil {
		cancel()
	}
}

// Stats is a snapshot of the scheduler's aggregate state.
type Stats struct {
	Submitted int
	Completed int
	Failed    int
	Canceled  int
	Queued    int
	Running   int
	// Suspended counts jobs interrupted at a checkpoint by Drain.
	Suspended int

	MemInUse     int
	MemCapacity  int
	DiskInUse    int
	DiskCapacity int
	Workers      int

	// CleanupFailures counts jobs whose scratch directory could not be
	// removed when their envelope was released.  Every such failure leaks
	// disk outside the budget ledger, so a nonzero value is an operator
	// signal; the per-job error is on Job.CleanupErr.
	CleanupFailures int

	// Recovered counts jobs replayed live from the journal at startup;
	// PendingRecovered is how many have not been resubmitted yet.
	Recovered        int
	PendingRecovered int
	// OrphansSwept counts scratch directories removed at startup because
	// no live journal entry claimed them.
	OrphansSwept int
}

// RecoveredJob describes a job the journal replayed live at startup: it
// was submitted in a previous life and never reached a terminal state.
// The owner reconstructs its Run body from Spec and resubmits it with
// Request.ID = ID, or retires it with DropRecovered.
type RecoveredJob struct {
	ID       int
	Label    string
	MemKeys  int
	DiskKeys int
	// Spec is the opaque submission payload journaled by the previous
	// life's Submit.
	Spec []byte
	// WasRunning reports that the job had been admitted (or had
	// checkpointed) before the crash; its scratch directory survives.
	WasRunning bool
	// Checkpoint is the job's last journaled pass manifest, nil if it
	// never completed a pass.
	Checkpoint []byte
}

// recoveredState keeps a pending recovered job's replayed journal
// records so compaction preserves them and resubmission re-attaches them.
type recoveredState struct {
	sub  journal.Record
	ckpt *journal.Record
}

// submittedData is the JSON payload of a Submitted journal record.
type submittedData struct {
	Label    string          `json:"label,omitempty"`
	MemKeys  int             `json:"memKeys"`
	DiskKeys int             `json:"diskKeys"`
	Spec     json.RawMessage `json:"spec,omitempty"`
}

// terminalData is the JSON payload of a Terminal journal record.
type terminalData struct {
	State string `json:"state"`
	Error string `json:"error,omitempty"`
}

// Scheduler admits and runs jobs against the global budgets.
type Scheduler struct {
	cfg Config
	lim *par.Limiter
	mem *pdm.Arena // global internal-memory ledger

	// jmu serializes every journal write (and Submit's id assignment), so
	// journal record order matches queue order and compaction can gather
	// the live record set without racing a concurrent append.  Lock
	// order: jmu before mu before any j.mu.
	jmu sync.Mutex

	mu              sync.Mutex
	cond            *sync.Cond
	queue           []*Job
	jobs            map[int]*Job
	nextID          int
	diskInUse       int
	running         int
	completed       int
	failed          int
	canceled        int
	suspended       int
	cleanupFailures int
	orphansSwept    int
	closed          bool
	draining        bool

	pending       map[int]*recoveredState
	recoveredList []RecoveredJob

	wg sync.WaitGroup
}

// New starts a scheduler with the given budgets.  When cfg.Journal is
// set, New first replays it: jobs without terminal records become
// Recovered() candidates (in original submission order), and scratch
// directories under cfg.Dir with no live journal entry are removed.
// Without a journal, every leftover job directory is an orphan.
func New(cfg Config) (*Scheduler, error) {
	if cfg.MemKeys <= 0 {
		return nil, fmt.Errorf("sched: MemKeys = %d, want > 0", cfg.MemKeys)
	}
	if cfg.DiskKeys == 0 {
		cfg.DiskKeys = 64 * cfg.MemKeys
	}
	if cfg.DiskKeys < 0 {
		return nil, fmt.Errorf("sched: DiskKeys = %d, want >= 0", cfg.DiskKeys)
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.MaxQueue <= 0 {
		cfg.MaxQueue = 1024
	}
	s := &Scheduler{
		cfg:     cfg,
		lim:     par.NewLimiter(cfg.Workers),
		mem:     pdm.NewArena(cfg.MemKeys),
		jobs:    make(map[int]*Job),
		pending: make(map[int]*recoveredState),
	}
	s.cond = sync.NewCond(&s.mu)
	s.recover()
	s.sweepOrphans()
	s.wg.Add(1)
	go s.admit()
	return s, nil
}

// recover replays the journal into the pending-recovered set.
func (s *Scheduler) recover() {
	if s.cfg.Journal == nil {
		return
	}
	type track struct {
		sub      journal.Record
		data     submittedData
		admitted bool
		ckpt     *journal.Record
		terminal bool
	}
	byID := make(map[int]*track)
	var order []int
	for _, r := range s.cfg.Journal.Replayed() {
		if r.Job > s.nextID {
			s.nextID = r.Job
		}
		switch r.Type {
		case journal.Submitted:
			t := &track{sub: r}
			_ = json.Unmarshal(r.Data, &t.data)
			if byID[r.Job] == nil {
				order = append(order, r.Job)
			}
			byID[r.Job] = t
		case journal.Admitted:
			if t := byID[r.Job]; t != nil {
				t.admitted = true
			}
		case journal.Checkpoint:
			if t := byID[r.Job]; t != nil {
				rr := r
				t.ckpt = &rr
				// A checkpoint implies the job was running even if its
				// Admitted record was lost to a torn tail.
				t.admitted = true
			}
		case journal.Terminal:
			if t := byID[r.Job]; t != nil {
				t.terminal = true
			}
		}
	}
	for _, id := range order {
		t := byID[id]
		if t.terminal {
			continue
		}
		rj := RecoveredJob{
			ID:         id,
			Label:      t.data.Label,
			MemKeys:    t.data.MemKeys,
			DiskKeys:   t.data.DiskKeys,
			Spec:       t.data.Spec,
			WasRunning: t.admitted,
		}
		if t.ckpt != nil {
			rj.Checkpoint = t.ckpt.Data
		}
		s.recoveredList = append(s.recoveredList, rj)
		s.pending[id] = &recoveredState{sub: t.sub, ckpt: t.ckpt}
	}
}

// sweepOrphans removes job scratch directories with no live journal
// entry: leftovers of jobs that reached a terminal state right before a
// crash, or of a previous unjournaled life.
func (s *Scheduler) sweepOrphans() {
	if s.cfg.Dir == "" {
		return
	}
	entries, err := os.ReadDir(s.cfg.Dir)
	if err != nil {
		return
	}
	remove := s.cfg.RemoveDir
	if remove == nil {
		remove = os.RemoveAll
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		var id int
		if _, err := fmt.Sscanf(e.Name(), "job-%d", &id); err != nil {
			continue
		}
		if _, live := s.pending[id]; live {
			continue
		}
		if err := remove(filepath.Join(s.cfg.Dir, e.Name())); err != nil {
			s.cleanupFailures++
		} else {
			s.orphansSwept++
		}
	}
}

// Recovered returns the jobs replayed live from the journal, in original
// submission order.  The owner resubmits each with Request.ID or retires
// it with DropRecovered; until then its journal records and scratch
// directory are preserved.
func (s *Scheduler) Recovered() []RecoveredJob {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]RecoveredJob, len(s.recoveredList))
	copy(out, s.recoveredList)
	return out
}

// DropRecovered retires a pending recovered job without rerunning it,
// journaling a Failed terminal record (so it is not recovered again) and
// removing its scratch directory.  It reports whether id named a pending
// recovered job.
func (s *Scheduler) DropRecovered(id int, err error) bool {
	s.mu.Lock()
	_, ok := s.pending[id]
	if ok {
		delete(s.pending, id)
		s.failed++
	}
	s.mu.Unlock()
	if !ok {
		return false
	}
	s.journalTerminal(id, Failed, err)
	if s.cfg.Dir != "" {
		remove := s.cfg.RemoveDir
		if remove == nil {
			remove = os.RemoveAll
		}
		if rerr := remove(filepath.Join(s.cfg.Dir, fmt.Sprintf("job-%04d", id))); rerr != nil {
			s.mu.Lock()
			s.cleanupFailures++
			s.mu.Unlock()
		}
	}
	return true
}

// Limiter returns the shared compute budget (for harnesses that build
// machines outside the scheduler but want to share its width).
func (s *Scheduler) Limiter() *par.Limiter { return s.lim }

// Ledger returns the global internal-memory ledger arena.
func (s *Scheduler) Ledger() *pdm.Arena { return s.mem }

// Submit enqueues a job.  It fails fast with ErrTooLarge for envelopes
// that could never fit and with ErrQueueFull when the queue is at
// capacity; otherwise the job waits its FIFO turn.  With a journal, the
// submission record is fsynced before the job is queued, and a journal
// append failure rejects the submission — a job the log cannot recover
// is a job the scheduler never accepted.
func (s *Scheduler) Submit(req Request) (*Job, error) {
	if req.Run == nil {
		return nil, errors.New("sched: Request.Run is nil")
	}
	if req.MemKeys <= 0 || req.DiskKeys < 0 {
		return nil, fmt.Errorf("sched: bad envelope: mem %d keys, disk %d keys", req.MemKeys, req.DiskKeys)
	}
	if req.MemKeys > s.cfg.MemKeys || req.DiskKeys > s.cfg.DiskKeys {
		return nil, fmt.Errorf("%w: mem %d/%d keys, disk %d/%d keys",
			ErrTooLarge, req.MemKeys, s.cfg.MemKeys, req.DiskKeys, s.cfg.DiskKeys)
	}
	s.jmu.Lock()
	defer s.jmu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	if len(s.queue) >= s.cfg.MaxQueue {
		return nil, ErrQueueFull
	}
	var rs *recoveredState
	id := 0
	if req.ID != 0 {
		var ok bool
		rs, ok = s.pending[req.ID]
		if !ok {
			return nil, fmt.Errorf("%w: id %d", ErrUnknownRecovered, req.ID)
		}
		delete(s.pending, req.ID)
		id = req.ID
	} else {
		s.nextID++
		id = s.nextID
	}
	j := &Job{
		id:        id,
		label:     req.Label,
		memKeys:   req.MemKeys,
		diskKeys:  req.DiskKeys,
		run:       req.Run,
		done:      make(chan struct{}),
		state:     Queued,
		submitted: time.Now(),
	}
	if rs != nil {
		sub := rs.sub
		j.subRec = &sub
		j.ckptRec = rs.ckpt
	} else if s.cfg.Journal != nil {
		data, err := json.Marshal(submittedData{
			Label:    req.Label,
			MemKeys:  req.MemKeys,
			DiskKeys: req.DiskKeys,
			Spec:     req.Spec,
		})
		if err != nil {
			return nil, fmt.Errorf("sched: journal spec: %w", err)
		}
		rec, err := s.cfg.Journal.Append(journal.Submitted, id, data)
		if err != nil {
			return nil, fmt.Errorf("sched: journal submit: %w", err)
		}
		j.subRec = &rec
	}
	s.jobs[j.id] = j
	s.queue = append(s.queue, j)
	s.cond.Broadcast()
	return j, nil
}

// Job returns the handle for id.
func (s *Scheduler) Job(id int) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Jobs returns every known job handle in submission order.
func (s *Scheduler) Jobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, 0, len(s.jobs))
	for id := 1; id <= s.nextID; id++ {
		if j, ok := s.jobs[id]; ok {
			out = append(out, j)
		}
	}
	return out
}

// Cancel cancels the job with the given id, reporting whether it exists.
func (s *Scheduler) Cancel(id int) bool {
	j, ok := s.Job(id)
	if !ok {
		return false
	}
	j.Cancel()
	// Wake the admitter so a canceled head leaves the queue promptly.
	s.mu.Lock()
	s.cond.Broadcast()
	s.mu.Unlock()
	return true
}

// Stats returns a snapshot of the aggregate state.
func (s *Scheduler) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Submitted:        s.nextID,
		Completed:        s.completed,
		Failed:           s.failed,
		Canceled:         s.canceled,
		Queued:           len(s.queue),
		Running:          s.running,
		Suspended:        s.suspended,
		MemInUse:         s.mem.InUse(),
		MemCapacity:      s.mem.Capacity(),
		DiskInUse:        s.diskInUse,
		DiskCapacity:     s.cfg.DiskKeys,
		Workers:          s.cfg.Workers,
		CleanupFailures:  s.cleanupFailures,
		Recovered:        len(s.recoveredList),
		PendingRecovered: len(s.pending),
		OrphansSwept:     s.orphansSwept,
	}
}

// Close stops admission, cancels every remaining job (queued jobs are
// journaled as canceled — a clean Close does not resurrect them), and
// waits for the running ones to finish.  It is idempotent.
func (s *Scheduler) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	jobs := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.cond.Broadcast()
	s.mu.Unlock()
	for _, j := range jobs {
		j.Cancel()
	}
	s.mu.Lock()
	s.cond.Broadcast()
	s.mu.Unlock()
	s.wg.Wait()
	if s.cfg.Journal != nil {
		_ = s.cfg.Journal.Close()
	}
}

// Drain stops admission and lets running jobs stop at their next durable
// checkpoint: Env.Checkpoint starts returning ErrDraining, and a job
// that aborts with it is Suspended — envelope released, scratch
// directory and journal records kept — so a restarted scheduler resumes
// it from that pass.  Queued jobs stay queued in the journal and
// re-admit on restart in their original order.  If ctx expires first,
// the remaining running jobs are canceled (suspending them at whatever
// checkpoint they last journaled).  Drain closes the journal and
// returns ctx.Err() when it had to force cancellation, nil on a clean
// drain.
func (s *Scheduler) Drain(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return nil
	}
	s.closed = true
	s.draining = true
	s.cond.Broadcast()
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	var forced error
	select {
	case <-done:
	case <-ctx.Done():
		forced = ctx.Err()
		s.mu.Lock()
		running := make([]*Job, 0, len(s.jobs))
		for _, j := range s.jobs {
			running = append(running, j)
		}
		s.mu.Unlock()
		for _, j := range running {
			j.Cancel()
		}
		<-done
	}
	if s.cfg.Journal != nil {
		_ = s.cfg.Journal.Close()
	}
	return forced
}

// admit is the admission goroutine: strict FIFO with head-of-line
// blocking on the budgets.
func (s *Scheduler) admit() {
	defer s.wg.Done()
	s.mu.Lock()
	for {
		for !s.closed {
			if len(s.queue) == 0 {
				s.cond.Wait()
				continue
			}
			j := s.queue[0]
			j.mu.Lock()
			dropped := j.cancelRequested
			j.mu.Unlock()
			if dropped {
				s.queue = s.queue[1:]
				s.canceled++
				s.mu.Unlock()
				s.journalTerminal(j.id, Canceled, context.Canceled)
				s.finish(j, Canceled, context.Canceled)
				s.mu.Lock()
				continue
			}
			if s.fits(j) {
				break
			}
			s.cond.Wait()
		}
		if s.closed {
			if s.draining {
				// Drain keeps the queue: every queued job's submission
				// record stays live in the journal, so a restarted
				// scheduler re-admits them in this order.
				s.mu.Unlock()
				return
			}
			q := s.queue
			s.queue = nil
			s.canceled += len(q)
			s.mu.Unlock()
			for _, j := range q {
				s.journalTerminal(j.id, Canceled, context.Canceled)
				s.finish(j, Canceled, context.Canceled)
			}
			return
		}
		j := s.queue[0]
		s.queue = s.queue[1:]
		// Only this goroutine reserves, so fits() cannot go stale between
		// the check and the reservation.
		if err := s.mem.Reserve(j.memKeys); err != nil {
			panic(fmt.Sprintf("sched: ledger reservation failed after fits(): %v", err))
		}
		s.diskInUse += j.diskKeys
		s.running++
		s.wg.Add(1)
		s.mu.Unlock()
		s.journalAdmitted(j)
		go s.runJob(j)
		s.mu.Lock()
	}
}

// fits reports whether the head job's envelope fits the free budgets.
// s.mu must be held.
func (s *Scheduler) fits(j *Job) bool {
	return s.mem.InUse()+j.memKeys <= s.mem.Capacity() &&
		s.diskInUse+j.diskKeys <= s.cfg.DiskKeys
}

// finish moves a never-admitted job to a terminal state.  The job holds
// no resources, so nothing is released.  s.mu must NOT be held.
func (s *Scheduler) finish(j *Job, state State, err error) {
	j.mu.Lock()
	j.state = state
	j.err = err
	j.finished = time.Now()
	j.mu.Unlock()
	close(j.done)
}

// checkpoint journals a pass manifest for a running job.  During a drain
// it returns ErrDraining after recording the manifest, telling the job
// this boundary is where it stops.
func (s *Scheduler) checkpoint(j *Job, manifest []byte) error {
	if jr := s.cfg.Journal; jr != nil {
		s.jmu.Lock()
		rec, err := jr.Append(journal.Checkpoint, j.id, append([]byte(nil), manifest...))
		if err == nil {
			j.mu.Lock()
			j.ckptRec = &rec
			j.mu.Unlock()
			s.maybeCompact(0)
		}
		s.jmu.Unlock()
		// An append failure is deliberately non-fatal: the job keeps
		// running with degraded durability (recovery falls back to an
		// older manifest or to the input).
	}
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		return ErrDraining
	}
	return nil
}

// journalAdmitted records that a job reached Running.  Best-effort: the
// Admitted record is informational (a checkpoint also implies it).
func (s *Scheduler) journalAdmitted(j *Job) {
	jr := s.cfg.Journal
	if jr == nil {
		return
	}
	s.jmu.Lock()
	defer s.jmu.Unlock()
	rec, err := jr.Append(journal.Admitted, j.id, nil)
	if err == nil {
		j.mu.Lock()
		j.admitRec = &rec
		j.mu.Unlock()
	}
}

// journalTerminal records a job's terminal state and compacts the log
// when it has outgrown CompactBytes.  s.mu and j.mu must NOT be held.
func (s *Scheduler) journalTerminal(id int, state State, err error) {
	jr := s.cfg.Journal
	if jr == nil {
		return
	}
	td := terminalData{State: state.String()}
	if err != nil {
		td.Error = err.Error()
	}
	data, merr := json.Marshal(td)
	if merr != nil {
		data = nil
	}
	s.jmu.Lock()
	defer s.jmu.Unlock()
	if _, aerr := jr.Append(journal.Terminal, id, data); aerr != nil {
		return
	}
	s.maybeCompact(id)
}

// maybeCompact snapshots the live record set when the log is big enough.
// s.jmu must be held (no append can race the gather); exclude names a
// job that just went terminal but whose handle state may lag.
func (s *Scheduler) maybeCompact(exclude int) {
	jr := s.cfg.Journal
	if jr == nil || s.cfg.CompactBytes <= 0 || jr.LogBytes() < s.cfg.CompactBytes {
		return
	}
	var live []journal.Record
	add := func(recs ...*journal.Record) {
		for _, r := range recs {
			if r != nil {
				live = append(live, *r)
			}
		}
	}
	s.mu.Lock()
	for id, j := range s.jobs {
		if id == exclude {
			continue
		}
		j.mu.Lock()
		switch j.state {
		case Queued, Running, Suspended:
			add(j.subRec, j.admitRec, j.ckptRec)
		}
		j.mu.Unlock()
	}
	for _, rs := range s.pending {
		sub := rs.sub
		add(&sub, rs.ckpt)
	}
	s.mu.Unlock()
	sort.Slice(live, func(a, b int) bool { return live[a].Seq < live[b].Seq })
	_ = jr.Compact(live)
}

// runJob executes one admitted job and releases its envelope.
func (s *Scheduler) runJob(j *Job) {
	defer s.wg.Done()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	j.mu.Lock()
	if j.cancelRequested {
		j.mu.Unlock()
		s.release(j, Canceled, context.Canceled, "")
		return
	}
	j.state = Running
	j.started = time.Now()
	j.cancel = cancel
	j.mu.Unlock()

	dir := ""
	var err error
	if s.cfg.Dir != "" {
		dir = filepath.Join(s.cfg.Dir, fmt.Sprintf("job-%04d", j.id))
		err = os.MkdirAll(dir, 0o755)
	}
	if err == nil {
		env := Env{
			JobID:      j.id,
			Limiter:    s.lim,
			Workers:    s.cfg.Workers,
			Dir:        dir,
			Checkpoint: func(manifest []byte) error { return s.checkpoint(j, manifest) },
		}
		err = j.run(ctx, env)
	}
	state := Done
	if err != nil {
		state = Failed
		s.mu.Lock()
		draining := s.draining
		s.mu.Unlock()
		j.mu.Lock()
		switch {
		case errors.Is(err, ErrDraining) || (draining && j.cancelRequested):
			state = Suspended
		case j.cancelRequested:
			state = Canceled
		}
		j.mu.Unlock()
	}
	s.release(j, state, err, dir)
}

// release returns an admitted job's envelope (removing its scratch
// directory first) and records its terminal state.  A cleanup failure is
// never silent: it is recorded on the job and counted in Stats, because a
// directory that survives its job leaks disk the budget ledger no longer
// accounts for.  A Suspended job keeps its scratch directory and gets no
// terminal journal record — its submission and checkpoint records stay
// live so the next life recovers it.
func (s *Scheduler) release(j *Job, state State, err error, dir string) {
	var cleanupErr error
	if dir != "" && state != Suspended {
		remove := s.cfg.RemoveDir
		if remove == nil {
			remove = os.RemoveAll
		}
		if rerr := remove(dir); rerr != nil {
			cleanupErr = fmt.Errorf("sched: scratch cleanup of job %d: %w", j.id, rerr)
		}
	}
	if state != Suspended {
		s.journalTerminal(j.id, state, err)
	}
	s.mem.Release(j.memKeys)
	s.mu.Lock()
	if cleanupErr != nil {
		s.cleanupFailures++
	}
	s.diskInUse -= j.diskKeys
	s.running--
	switch state {
	case Done:
		s.completed++
	case Failed:
		s.failed++
	case Canceled:
		s.canceled++
	case Suspended:
		s.suspended++
	}
	s.cond.Broadcast()
	s.mu.Unlock()

	j.mu.Lock()
	j.state = state
	j.err = err
	j.cleanupErr = cleanupErr
	j.finished = time.Now()
	j.cancel = nil
	j.mu.Unlock()
	close(j.done)
}
