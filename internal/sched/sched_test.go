package sched

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/pdm"
)

// waitState polls until the job reaches want or the deadline passes.
func waitState(t *testing.T, j *Job, want State) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if j.State() == want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("job %d stuck in %v, want %v", j.ID(), j.State(), want)
}

func TestLifecycleAndBudgets(t *testing.T) {
	s, err := New(Config{MemKeys: 1000, DiskKeys: 10000, Workers: 2, MaxQueue: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	release := make(chan struct{})
	started := make(chan int, 8)
	mk := func(mem int) Request {
		return Request{MemKeys: mem, DiskKeys: 100, Run: func(ctx context.Context, env Env) error {
			started <- env.JobID
			select {
			case <-release:
				return nil
			case <-ctx.Done():
				return ctx.Err()
			}
		}}
	}
	// Two 400-key jobs fit together; the third (400) must wait for a release.
	j1, err := s.Submit(mk(400))
	if err != nil {
		t.Fatal(err)
	}
	j2, err := s.Submit(mk(400))
	if err != nil {
		t.Fatal(err)
	}
	j3, err := s.Submit(mk(400))
	if err != nil {
		t.Fatal(err)
	}
	<-started
	<-started
	waitState(t, j1, Running)
	waitState(t, j2, Running)
	if st := s.Stats(); st.MemInUse != 800 || st.Running != 2 || st.Queued != 1 {
		t.Fatalf("stats with two running = %+v", st)
	}
	if j3.State() != Queued {
		t.Fatalf("third job state = %v, want Queued (backpressure)", j3.State())
	}
	close(release)
	for _, j := range []*Job{j1, j2, j3} {
		if err := j.Wait(context.Background()); err != nil {
			t.Fatalf("job %d: %v", j.ID(), err)
		}
	}
	if st := s.Stats(); st.MemInUse != 0 || st.DiskInUse != 0 || st.Completed != 3 {
		t.Fatalf("stats after drain = %+v", st)
	}
}

func TestFIFOHeadOfLineBlocking(t *testing.T) {
	// Every job needs the whole memory budget, so they must run strictly
	// one at a time in submission order.
	s, err := New(Config{MemKeys: 100, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var mu sync.Mutex
	var order []int
	const n = 6
	jobs := make([]*Job, n)
	for i := 0; i < n; i++ {
		jobs[i], err = s.Submit(Request{MemKeys: 100, Run: func(ctx context.Context, env Env) error {
			mu.Lock()
			order = append(order, env.JobID)
			mu.Unlock()
			return nil
		}})
		if err != nil {
			t.Fatal(err)
		}
	}
	for _, j := range jobs {
		if err := j.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	for i, id := range order {
		if id != i+1 {
			t.Fatalf("admission order = %v, want FIFO", order)
		}
	}
}

func TestSubmitRejections(t *testing.T) {
	s, err := New(Config{MemKeys: 100, DiskKeys: 1000, MaxQueue: 1})
	if err != nil {
		t.Fatal(err)
	}
	nop := func(ctx context.Context, env Env) error { return nil }
	if _, err := s.Submit(Request{MemKeys: 101, Run: nop}); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversized mem envelope: %v", err)
	}
	if _, err := s.Submit(Request{MemKeys: 1, DiskKeys: 1001, Run: nop}); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversized disk envelope: %v", err)
	}
	if _, err := s.Submit(Request{MemKeys: 0, Run: nop}); err == nil {
		t.Fatal("zero envelope accepted")
	}
	if _, err := s.Submit(Request{MemKeys: 1}); err == nil {
		t.Fatal("nil Run accepted")
	}
	// Fill the queue behind a blocker to trigger ErrQueueFull.
	release := make(chan struct{})
	blocker, err := s.Submit(Request{MemKeys: 100, Run: func(ctx context.Context, env Env) error {
		<-release
		return nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, blocker, Running)
	if _, err := s.Submit(Request{MemKeys: 100, Run: nop}); err != nil {
		t.Fatalf("first queued job rejected: %v", err)
	}
	if _, err := s.Submit(Request{MemKeys: 100, Run: nop}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("queue overflow: %v", err)
	}
	close(release)
	s.Close()
	if _, err := s.Submit(Request{MemKeys: 1, Run: nop}); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after close: %v", err)
	}
}

func TestCancelQueuedNeverHoldsResources(t *testing.T) {
	s, err := New(Config{MemKeys: 100, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	release := make(chan struct{})
	blocker, err := s.Submit(Request{MemKeys: 100, Run: func(ctx context.Context, env Env) error {
		<-release
		return nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, blocker, Running)
	var ran atomic.Bool
	queued, err := s.Submit(Request{MemKeys: 100, Run: func(ctx context.Context, env Env) error {
		ran.Store(true)
		return nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	s.Cancel(queued.ID())
	waitState(t, queued, Canceled)
	if ran.Load() {
		t.Fatal("canceled queued job ran")
	}
	close(release)
	if err := blocker.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.MemInUse != 0 || st.Canceled != 1 || st.Completed != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCancelRunningJob(t *testing.T) {
	s, err := New(Config{MemKeys: 100})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	j, err := s.Submit(Request{MemKeys: 50, Run: func(ctx context.Context, env Env) error {
		<-ctx.Done()
		return ctx.Err()
	}})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j, Running)
	if !s.Cancel(j.ID()) {
		t.Fatal("Cancel did not find the job")
	}
	waitState(t, j, Canceled)
	if err := j.Err(); !errors.Is(err, context.Canceled) {
		t.Fatalf("terminal error = %v", err)
	}
	if st := s.Stats(); st.MemInUse != 0 || st.Canceled != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestJobScratchDirLifetime(t *testing.T) {
	root := t.TempDir()
	s, err := New(Config{MemKeys: 100, Dir: root})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var dir string
	j, err := s.Submit(Request{MemKeys: 10, Run: func(ctx context.Context, env Env) error {
		dir = env.Dir
		if dir == "" {
			return errors.New("no scratch dir")
		}
		return os.WriteFile(filepath.Join(dir, "scratch.bin"), []byte("x"), 0o644)
	}})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(dir); !os.IsNotExist(err) {
		t.Fatalf("scratch dir %s survived the job (stat err %v)", dir, err)
	}
}

// TestScratchCleanupFailureIsRecorded drives a job whose scratch
// directory cannot be deleted and checks the failure is not silent: it is
// counted in Stats, carried on the job handle, and the envelope is still
// released so the scheduler keeps admitting.  The undeletable directory
// is injected through the Config.RemoveDir seam (a chmod-based
// read-only directory does not stop the root user these tests may run
// as); a real permission failure takes exactly this path through release.
func TestScratchCleanupFailureIsRecorded(t *testing.T) {
	root := t.TempDir()
	undeletable := errors.New("unlinkat: operation not permitted")
	var failNext atomic.Bool
	s, err := New(Config{
		MemKeys: 100,
		Dir:     root,
		RemoveDir: func(dir string) error {
			if failNext.Load() {
				return fmt.Errorf("%w: %s", undeletable, dir)
			}
			return os.RemoveAll(dir)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	failNext.Store(true)
	j, err := s.Submit(Request{MemKeys: 10, Run: func(ctx context.Context, env Env) error {
		return os.WriteFile(filepath.Join(env.Dir, "scratch.bin"), []byte("x"), 0o644)
	}})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if j.State() != Done {
		t.Fatalf("cleanup failure flipped the job to %v", j.State())
	}
	cerr := j.CleanupErr()
	if cerr == nil || !errors.Is(cerr, undeletable) {
		t.Fatalf("CleanupErr = %v, want the removal failure", cerr)
	}
	st := s.Stats()
	if st.CleanupFailures != 1 {
		t.Fatalf("CleanupFailures = %d, want 1", st.CleanupFailures)
	}
	if st.MemInUse != 0 || st.DiskInUse != 0 {
		t.Fatalf("cleanup failure held the envelope: %+v", st)
	}

	// A healthy job afterwards cleans up and does not bump the counter.
	failNext.Store(false)
	j2, err := s.Submit(Request{MemKeys: 10, Run: func(ctx context.Context, env Env) error { return nil }})
	if err != nil {
		t.Fatal(err)
	}
	if err := j2.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if j2.CleanupErr() != nil {
		t.Fatalf("healthy job recorded cleanup error %v", j2.CleanupErr())
	}
	if got := s.Stats().CleanupFailures; got != 1 {
		t.Fatalf("CleanupFailures = %d after a healthy job, want still 1", got)
	}
}

// TestStormSubmitCancelPoll is the -race storm: many goroutines submit,
// cancel, and poll concurrently while jobs allocate from their reserved
// envelopes, and the budgets must never be oversubscribed and must return
// to zero.
func TestStormSubmitCancelPoll(t *testing.T) {
	const (
		memBudget = 4096
		jobs      = 60
	)
	s, err := New(Config{MemKeys: memBudget, DiskKeys: 1 << 20, Workers: 4, MaxQueue: jobs})
	if err != nil {
		t.Fatal(err)
	}
	var over atomic.Bool
	handles := make([]*Job, jobs)
	var subWG, wg sync.WaitGroup
	for i := 0; i < jobs; i++ {
		i := i
		subWG.Add(1)
		go func() {
			defer subWG.Done()
			mem := 256 + 128*(i%4)
			h, err := s.Submit(Request{
				Label:    fmt.Sprintf("storm-%d", i),
				MemKeys:  mem,
				DiskKeys: 1024,
				Run: func(ctx context.Context, env Env) error {
					// The job's own arena is its reserved envelope; the
					// ledger must show the sum of all running envelopes.
					arena := pdm.NewArena(mem)
					buf, err := arena.Alloc(mem)
					if err != nil {
						return err
					}
					defer arena.Free(buf)
					if use := s.Ledger().InUse(); use > memBudget {
						over.Store(true)
					}
					select {
					case <-time.After(time.Duration(rand.Intn(3)) * time.Millisecond):
					case <-ctx.Done():
						return ctx.Err()
					}
					return nil
				},
			})
			if err != nil {
				t.Errorf("submit %d: %v", i, err)
				return
			}
			handles[i] = h
			if i%5 == 0 {
				h.Cancel() // race cancel against queueing and running
			}
		}()
	}
	// Concurrent pollers.
	stop := make(chan struct{})
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				st := s.Stats()
				if st.MemInUse > st.MemCapacity || st.DiskInUse > st.DiskCapacity {
					over.Store(true)
				}
				for _, j := range s.Jobs() {
					_ = j.State()
					_, _ = j.Err(), j.Label()
				}
			}
		}()
	}
	// Wait for all jobs to finish.
	subWG.Wait()
	deadline := time.After(30 * time.Second)
	for _, h := range handles {
		if h == nil {
			continue // submit error already reported
		}
		select {
		case <-h.Done():
		case <-deadline:
			t.Fatalf("storm timed out waiting for job %d in %v", h.ID(), h.State())
		}
	}
	close(stop)
	wg.Wait()
	if over.Load() {
		t.Fatal("a budget was oversubscribed during the storm")
	}
	st := s.Stats()
	if st.MemInUse != 0 || st.DiskInUse != 0 || st.Running != 0 || st.Queued != 0 {
		t.Fatalf("budgets not drained: %+v", st)
	}
	if st.Completed+st.Canceled+st.Failed != jobs {
		t.Fatalf("job accounting: %+v", st)
	}
	if st.Failed != 0 {
		t.Fatalf("%d jobs failed", st.Failed)
	}
	s.Close()
}

func TestCloseCancelsEverything(t *testing.T) {
	s, err := New(Config{MemKeys: 100, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	running, err := s.Submit(Request{MemKeys: 100, Run: func(ctx context.Context, env Env) error {
		<-ctx.Done()
		return ctx.Err()
	}})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, running, Running)
	queued, err := s.Submit(Request{MemKeys: 100, Run: func(ctx context.Context, env Env) error { return nil }})
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	if got := running.State(); got != Canceled {
		t.Fatalf("running job after Close = %v", got)
	}
	if got := queued.State(); got != Canceled {
		t.Fatalf("queued job after Close = %v", got)
	}
	if st := s.Stats(); st.MemInUse != 0 || st.Canceled != 2 {
		t.Fatalf("stats after Close = %+v", st)
	}
}
