package sched

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/journal"
)

func openJournal(t *testing.T, dir string) *journal.Journal {
	t.Helper()
	jr, err := journal.Open(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return jr
}

// TestJournalRecoveryRoundTrip drains a scheduler with one checkpointing
// job running and two queued, then rebuilds a second scheduler over the
// same journal and scratch tree: the running job must come back with its
// manifest and surviving scratch, the queued jobs must re-admit in their
// original FIFO order, and everything must then run to completion with
// terminal records in the log.
func TestJournalRecoveryRoundTrip(t *testing.T) {
	jdir := t.TempDir()
	sdir := t.TempDir()

	s, err := New(Config{MemKeys: 100, Dir: sdir, Journal: openJournal(t, jdir)})
	if err != nil {
		t.Fatal(err)
	}
	ckpted := make(chan struct{})
	manifest := []byte(`{"pass":1}`)
	run1 := func(ctx context.Context, env Env) error {
		if err := os.WriteFile(filepath.Join(env.Dir, "marker"), []byte("hello"), 0o644); err != nil {
			return err
		}
		first := true
		for {
			if err := env.Checkpoint(manifest); err != nil {
				return err
			}
			if first {
				close(ckpted)
				first = false
			}
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(5 * time.Millisecond):
			}
		}
	}
	idle := func(ctx context.Context, env Env) error { return nil }
	j1, err := s.Submit(Request{Label: "one", MemKeys: 100, DiskKeys: 10, Run: run1})
	if err != nil {
		t.Fatal(err)
	}
	j2, err := s.Submit(Request{Label: "two", MemKeys: 100, DiskKeys: 20, Spec: []byte(`{"x":2}`), Run: idle})
	if err != nil {
		t.Fatal(err)
	}
	j3, err := s.Submit(Request{Label: "three", MemKeys: 100, Run: idle})
	if err != nil {
		t.Fatal(err)
	}
	<-ckpted

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	cancel()
	if got := j1.State(); got != Suspended {
		t.Fatalf("running job after drain: %v, want Suspended", got)
	}
	if !errors.Is(j1.Err(), ErrDraining) {
		t.Fatalf("suspended job error: %v, want ErrDraining", j1.Err())
	}
	if j2.State() != Queued || j3.State() != Queued {
		t.Fatalf("queued jobs after drain: %v, %v, want Queued", j2.State(), j3.State())
	}
	if _, err := os.Stat(filepath.Join(sdir, "job-0001", "marker")); err != nil {
		t.Fatalf("suspended job scratch: %v", err)
	}

	// Second life over the same journal and scratch tree.
	s2, err := New(Config{MemKeys: 100, Dir: sdir, Journal: openJournal(t, jdir)})
	if err != nil {
		t.Fatal(err)
	}
	rec := s2.Recovered()
	if len(rec) != 3 {
		t.Fatalf("recovered %d jobs, want 3: %+v", len(rec), rec)
	}
	wantIDs := []int{1, 2, 3}
	for i, r := range rec {
		if r.ID != wantIDs[i] {
			t.Fatalf("recovered order: %+v, want ids %v", rec, wantIDs)
		}
	}
	if !rec[0].WasRunning || !bytes.Equal(rec[0].Checkpoint, manifest) {
		t.Fatalf("recovered running job: %+v", rec[0])
	}
	if rec[1].WasRunning || rec[1].Label != "two" || rec[1].MemKeys != 100 ||
		rec[1].DiskKeys != 20 || string(rec[1].Spec) != `{"x":2}` {
		t.Fatalf("recovered queued job: %+v", rec[1])
	}
	if got := s2.Stats(); got.Recovered != 3 || got.PendingRecovered != 3 || got.OrphansSwept != 0 {
		t.Fatalf("recovery stats: %+v", got)
	}

	var mu sync.Mutex
	var order []int
	rerun := func(wantMarker bool) func(ctx context.Context, env Env) error {
		return func(ctx context.Context, env Env) error {
			mu.Lock()
			order = append(order, env.JobID)
			mu.Unlock()
			if wantMarker {
				if _, err := os.Stat(filepath.Join(env.Dir, "marker")); err != nil {
					return err
				}
			}
			return nil
		}
	}
	var handles []*Job
	for i, r := range rec {
		h, err := s2.Submit(Request{
			ID: r.ID, Label: r.Label, MemKeys: r.MemKeys, DiskKeys: r.DiskKeys,
			Run: rerun(i == 0),
		})
		if err != nil {
			t.Fatalf("resubmit %d: %v", r.ID, err)
		}
		handles = append(handles, h)
	}
	for _, h := range handles {
		waitState(t, h, Done)
	}
	mu.Lock()
	got := append([]int(nil), order...)
	mu.Unlock()
	for i, id := range wantIDs {
		if got[i] != id {
			t.Fatalf("re-admission order %v, want %v", got, wantIDs)
		}
	}
	if got := s2.Stats(); got.PendingRecovered != 0 {
		t.Fatalf("pending after resubmit: %+v", got)
	}
	s2.Close()

	// All three jobs have terminal records: a third life recovers nothing.
	recs, _, err := journal.Replay(jdir)
	if err != nil {
		t.Fatal(err)
	}
	terminal := map[int]bool{}
	for _, r := range recs {
		if r.Type == journal.Terminal {
			terminal[r.Job] = true
		}
	}
	for _, id := range wantIDs {
		if !terminal[id] {
			t.Fatalf("job %d missing terminal record; log: %+v", id, recs)
		}
	}
}

// TestDrainTimeoutSuspends forces the drain deadline on a job that never
// checkpoints: it must come back Suspended (not Canceled or Failed) with
// its scratch directory intact and no terminal record in the journal.
func TestDrainTimeoutSuspends(t *testing.T) {
	jdir := t.TempDir()
	sdir := t.TempDir()
	s, err := New(Config{MemKeys: 100, Dir: sdir, Journal: openJournal(t, jdir)})
	if err != nil {
		t.Fatal(err)
	}
	j, err := s.Submit(Request{Label: "stubborn", MemKeys: 100, Run: func(ctx context.Context, env Env) error {
		<-ctx.Done()
		return ctx.Err()
	}})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j, Running)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := s.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("forced drain: %v, want DeadlineExceeded", err)
	}
	if got := j.State(); got != Suspended {
		t.Fatalf("state after forced drain: %v, want Suspended", got)
	}
	if _, err := os.Stat(filepath.Join(sdir, "job-0001")); err != nil {
		t.Fatalf("scratch after forced drain: %v", err)
	}
	recs, _, err := journal.Replay(jdir)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if r.Type == journal.Terminal {
			t.Fatalf("suspended job has terminal record: %+v", r)
		}
	}
}

// TestOrphanSweep checks startup scratch hygiene: directories with no
// live journal entry are removed, claimed ones and foreign files are
// kept, and without a journal every job directory is an orphan.
func TestOrphanSweep(t *testing.T) {
	jdir := t.TempDir()
	sdir := t.TempDir()
	for _, d := range []string{"job-0001", "job-0002", "notajob"} {
		if err := os.MkdirAll(filepath.Join(sdir, d), 0o755); err != nil {
			t.Fatal(err)
		}
	}
	// Job 1 finished; job 2 is still live.
	jr := openJournal(t, jdir)
	if _, err := jr.Append(journal.Submitted, 1, []byte(`{"memKeys":10,"diskKeys":0}`)); err != nil {
		t.Fatal(err)
	}
	if _, err := jr.Append(journal.Submitted, 2, []byte(`{"memKeys":10,"diskKeys":0}`)); err != nil {
		t.Fatal(err)
	}
	if _, err := jr.Append(journal.Terminal, 1, []byte(`{"state":"done"}`)); err != nil {
		t.Fatal(err)
	}
	if err := jr.Close(); err != nil {
		t.Fatal(err)
	}

	s, err := New(Config{MemKeys: 100, Dir: sdir, Journal: openJournal(t, jdir)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(sdir, "job-0001")); !os.IsNotExist(err) {
		t.Fatalf("terminal job's scratch not swept: %v", err)
	}
	if _, err := os.Stat(filepath.Join(sdir, "job-0002")); err != nil {
		t.Fatalf("live job's scratch swept: %v", err)
	}
	if _, err := os.Stat(filepath.Join(sdir, "notajob")); err != nil {
		t.Fatalf("foreign directory removed: %v", err)
	}
	if got := s.Stats(); got.OrphansSwept != 1 || got.Recovered != 1 {
		t.Fatalf("sweep stats: %+v", got)
	}
	s.Close()

	// Without a journal nothing is live, so both job dirs would be swept.
	sdir2 := t.TempDir()
	for _, d := range []string{"job-0003", "job-0004"} {
		if err := os.MkdirAll(filepath.Join(sdir2, d), 0o755); err != nil {
			t.Fatal(err)
		}
	}
	s2, err := New(Config{MemKeys: 100, Dir: sdir2})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.Stats(); got.OrphansSwept != 2 {
		t.Fatalf("unjournaled sweep stats: %+v", got)
	}
}

// TestDropRecovered retires a recovered job: terminal record written,
// scratch removed, and it is not recovered a third time.
func TestDropRecovered(t *testing.T) {
	jdir := t.TempDir()
	sdir := t.TempDir()
	jr := openJournal(t, jdir)
	if _, err := jr.Append(journal.Submitted, 1, []byte(`{"memKeys":10,"diskKeys":0}`)); err != nil {
		t.Fatal(err)
	}
	if _, err := jr.Append(journal.Admitted, 1, nil); err != nil {
		t.Fatal(err)
	}
	if err := jr.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Join(sdir, "job-0001"), 0o755); err != nil {
		t.Fatal(err)
	}

	s, err := New(Config{MemKeys: 100, Dir: sdir, Journal: openJournal(t, jdir)})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Recovered(); len(got) != 1 || !got[0].WasRunning {
		t.Fatalf("recovered: %+v", got)
	}
	if !s.DropRecovered(1, errors.New("spec no longer parses")) {
		t.Fatal("DropRecovered(1) = false")
	}
	if s.DropRecovered(1, nil) {
		t.Fatal("second DropRecovered(1) = true")
	}
	if _, err := os.Stat(filepath.Join(sdir, "job-0001")); !os.IsNotExist(err) {
		t.Fatalf("dropped job's scratch kept: %v", err)
	}
	s.Close()

	s2, err := New(Config{MemKeys: 100, Dir: sdir, Journal: openJournal(t, jdir)})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.Recovered(); len(got) != 0 {
		t.Fatalf("dropped job recovered again: %+v", got)
	}
}

// TestCompactionPreservesLive shrinks the journal mid-flight (tiny
// CompactBytes makes every checkpoint and terminal append compact) and
// then drains: the queued job and the suspended job must still be
// recoverable from the compacted log.
func TestCompactionPreservesLive(t *testing.T) {
	jdir := t.TempDir()
	sdir := t.TempDir()
	s, err := New(Config{MemKeys: 100, Dir: sdir,
		Journal: openJournal(t, jdir), CompactBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	ckpts := make(chan struct{}, 64)
	runner := func(ctx context.Context, env Env) error {
		for i := 0; ; i++ {
			if err := env.Checkpoint([]byte(`{"pass":1}`)); err != nil {
				return err
			}
			select {
			case ckpts <- struct{}{}:
			default:
			}
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(5 * time.Millisecond):
			}
		}
	}
	idle := func(ctx context.Context, env Env) error { return nil }
	if _, err := s.Submit(Request{Label: "runner", MemKeys: 100, Run: runner}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(Request{Label: "queued", MemKeys: 100, Run: idle}); err != nil {
		t.Fatal(err)
	}
	// Let several checkpoint-triggered compactions happen.
	for i := 0; i < 5; i++ {
		<-ckpts
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}

	s2, err := New(Config{MemKeys: 100, Dir: sdir, Journal: openJournal(t, jdir)})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	rec := s2.Recovered()
	if len(rec) != 2 || rec[0].ID != 1 || rec[1].ID != 2 {
		t.Fatalf("recovered after compaction: %+v", rec)
	}
	if !rec[0].WasRunning || len(rec[0].Checkpoint) == 0 {
		t.Fatalf("compaction lost the running job's manifest: %+v", rec[0])
	}
	if rec[1].WasRunning {
		t.Fatalf("queued job marked running: %+v", rec[1])
	}
}
