// Package sched is the concurrent sort-job scheduler: it owns the
// machine's global resources — an internal-memory budget (a pdm.Arena used
// as a ledger, carved per job with Reserve/Release), an on-disk scratch
// budget, and a compute budget (one par.Limiter shared by every job's
// worker pool) — and admits jobs against them.
//
// Jobs move queued → running → done/failed/canceled.  Admission is strict
// FIFO with head-of-line blocking: the head job waits until both its
// memory and disk envelopes fit, so a large job cannot be starved by a
// stream of small ones, and budget exhaustion is backpressure rather than
// failure.  Each admitted job runs on its own goroutine with its own
// cancellable context and (when the scheduler is file-backed) its own
// scratch directory, removed when the job finishes.  Canceling a queued
// job removes it without ever reserving resources; canceling a running job
// cancels its context, which the pdm layer turns into a prompt abort of
// every subsequent I/O.
//
// The package is deliberately generic: a job is an envelope plus a Run
// function.  The repro facade supplies Run functions that build a per-job
// Machine from the envelope (its arena capacity is exactly the reserved
// amount, its pool attached to the shared limiter) and sort; this package
// never needs to know what a pass is.
package sched
