package memsort

// insertionThreshold is the subarray size below which Keys switches to
// insertion sort.
const insertionThreshold = 24

// Keys sorts a in nondecreasing order using introsort: quicksort with
// median-of-three pivots, falling back to heapsort when recursion depth
// exceeds 2·⌊log₂ n⌋, and to insertion sort on small subarrays.
func Keys(a []int64) {
	if len(a) < 2 {
		return
	}
	maxDepth := 0
	for n := len(a); n > 0; n >>= 1 {
		maxDepth += 2
	}
	introsort(a, maxDepth)
}

func introsort(a []int64, depth int) {
	for len(a) > insertionThreshold {
		if depth == 0 {
			heapsort(a)
			return
		}
		depth--
		p := partition(a)
		// Recurse on the smaller side to bound stack depth at O(log n).
		if p < len(a)-p-1 {
			introsort(a[:p], depth)
			a = a[p+1:]
		} else {
			introsort(a[p+1:], depth)
			a = a[:p]
		}
	}
	insertion(a)
}

// partition picks a median-of-three pivot, partitions a around it, and
// returns the pivot's final index.
func partition(a []int64) int {
	m := len(a) / 2
	hi := len(a) - 1
	// Order a[0], a[m], a[hi]; use a[m] as pivot, parked at a[hi-1].
	if a[m] < a[0] {
		a[m], a[0] = a[0], a[m]
	}
	if a[hi] < a[0] {
		a[hi], a[0] = a[0], a[hi]
	}
	if a[hi] < a[m] {
		a[hi], a[m] = a[m], a[hi]
	}
	pivot := a[m]
	a[m], a[hi-1] = a[hi-1], a[m]
	i, j := 0, hi-1
	for {
		for i++; a[i] < pivot; i++ {
		}
		for j--; a[j] > pivot; j-- {
		}
		if i >= j {
			break
		}
		a[i], a[j] = a[j], a[i]
	}
	a[i], a[hi-1] = a[hi-1], a[i]
	return i
}

func insertion(a []int64) {
	for i := 1; i < len(a); i++ {
		v := a[i]
		j := i - 1
		for j >= 0 && a[j] > v {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = v
	}
}

func heapsort(a []int64) {
	n := len(a)
	for i := n/2 - 1; i >= 0; i-- {
		siftDown(a, i, n)
	}
	for i := n - 1; i > 0; i-- {
		a[0], a[i] = a[i], a[0]
		siftDown(a, 0, i)
	}
}

func siftDown(a []int64, root, n int) {
	for {
		child := 2*root + 1
		if child >= n {
			return
		}
		if child+1 < n && a[child+1] > a[child] {
			child++
		}
		if a[root] >= a[child] {
			return
		}
		a[root], a[child] = a[child], a[root]
		root = child
	}
}

// IsSorted reports whether a is in nondecreasing order.
func IsSorted(a []int64) bool {
	for i := 1; i < len(a); i++ {
		if a[i] < a[i-1] {
			return false
		}
	}
	return true
}

// Reverse reverses a in place.
func Reverse(a []int64) {
	for i, j := 0, len(a)-1; i < j; i, j = i+1, j-1 {
		a[i], a[j] = a[j], a[i]
	}
}

// MinMax returns the smallest and largest keys of a, which must be nonempty.
func MinMax(a []int64) (min, max int64) {
	min, max = a[0], a[0]
	for _, v := range a[1:] {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	return min, max
}

// mergeMinGallop is how many consecutive wins one input needs before the
// merge switches from the element-at-a-time loop to galloping: exponential
// probing for the end of the winner's run followed by a bulk copy.  Clustered
// inputs (long presorted stretches, range-partitioned lanes) collapse to
// near-memcpy speed; interleaved inputs never gallop and pay only a counter.
const mergeMinGallop = 8

// MergeBinary merges sorted slices a and b into dst, which must have length
// len(a)+len(b).  The merge is stable with ties taken from a first.  After
// mergeMinGallop consecutive keys from the same input it gallops: the end of
// the current run is found by exponential + binary search and the run is bulk
// copied (see MergeBinaryBranchy for the plain-loop ablation baseline).
func MergeBinary(dst, a, b []int64) {
	if len(dst) != len(a)+len(b) {
		panic("memsort: MergeBinary destination size mismatch")
	}
	i, j, k := 0, 0, 0
	for i < len(a) && j < len(b) {
		// Gallop detection costs one comparison per side per round: the
		// inputs are sorted, so "the next mergeMinGallop keys of b all beat
		// a's head" is exactly b[j+mergeMinGallop-1] < a[i].  The element
		// loop below never pays a per-key counter.
		if j+mergeMinGallop <= len(b) && b[j+mergeMinGallop-1] < a[i] {
			n := gallopLess(b[j:], a[i])
			copy(dst[k:], b[j:j+n])
			k += n
			j += n
			continue
		}
		if i+mergeMinGallop <= len(a) && a[i+mergeMinGallop-1] <= b[j] {
			n := gallopLessEq(a[i:], b[j])
			copy(dst[k:], a[i:i+n])
			k += n
			i += n
			continue
		}
		for t := 0; t < 4*mergeMinGallop && i < len(a) && j < len(b); t++ {
			if b[j] < a[i] {
				dst[k] = b[j]
				j++
			} else {
				dst[k] = a[i]
				i++
			}
			k++
		}
	}
	k += copy(dst[k:], a[i:])
	copy(dst[k:], b[j:])
}

// MergeBinaryBranchy is the pre-gallop element-at-a-time merge, kept as the
// ablation and benchmark baseline for MergeBinary (BenchmarkKernelMerge*).
// Identical output, one data-dependent branch per key.
func MergeBinaryBranchy(dst, a, b []int64) {
	if len(dst) != len(a)+len(b) {
		panic("memsort: MergeBinaryBranchy destination size mismatch")
	}
	i, j, k := 0, 0, 0
	for i < len(a) && j < len(b) {
		if b[j] < a[i] {
			dst[k] = b[j]
			j++
		} else {
			dst[k] = a[i]
			i++
		}
		k++
	}
	k += copy(dst[k:], a[i:])
	copy(dst[k:], b[j:])
}

// gallopLess returns how many leading elements of s are < v, probing
// exponentially from the front and finishing with a binary search over the
// last doubling window.  Cost is O(log r) for a run of length r, against
// O(r) for the element loop.
func gallopLess(s []int64, v int64) int {
	if len(s) == 0 || s[0] >= v {
		return 0
	}
	lo, hi := 0, 1
	for hi < len(s) && s[hi] < v {
		lo = hi
		hi <<= 1
	}
	if hi > len(s) {
		hi = len(s)
	}
	for lo+1 < hi {
		mid := int(uint(lo+hi) >> 1)
		if s[mid] < v {
			lo = mid
		} else {
			hi = mid
		}
	}
	return hi
}

// gallopLessEq is gallopLess with a ≤ bound: how many leading elements of s
// are ≤ v.  The two variants encode the stability rule — the left input wins
// ties, so its gallop may consume keys equal to the other head while the
// right input's gallop must stop before them.
func gallopLessEq(s []int64, v int64) int {
	if len(s) == 0 || s[0] > v {
		return 0
	}
	lo, hi := 0, 1
	for hi < len(s) && s[hi] <= v {
		lo = hi
		hi <<= 1
	}
	if hi > len(s) {
		hi = len(s)
	}
	for lo+1 < hi {
		mid := int(uint(lo+hi) >> 1)
		if s[mid] <= v {
			lo = mid
		} else {
			hi = mid
		}
	}
	return hi
}
