package memsort

import (
	"slices"
	"testing"
)

// Paired kernel microbenchmarks: the comparison introsort vs the LSD
// radix kernel (vs stdlib slices.Sort as the external baseline) on
// uniform random int64 keys at memory-load sizes, and the branchy vs
// galloping binary merge.  CI runs every BenchmarkKernel* with -benchtime
// 100x as a smoke test; the real numbers land in BENCH_pr7.json.

// benchSizes are memory-load sizes: the default machine M (4096) and a
// larger load where the radix win is cache-bound rather than
// overhead-bound.
var benchSizes = []struct {
	name string
	n    int
}{
	{"4096", 4096},
	{"65536", 65536},
}

func fillBenchKeys(buf []int64, seed uint64) {
	x := seed*0x9e3779b97f4a7c15 + 0x9e3779b97f4a7c15
	for i := range buf {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		buf[i] = int64(x >> 2)
	}
}

func benchSort(b *testing.B, n int, sort func(a []int64)) {
	b.Helper()
	a := make([]int64, n)
	b.SetBytes(int64(n * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		fillBenchKeys(a, uint64(i))
		b.StartTimer()
		sort(a)
	}
}

func BenchmarkKernelSortIntro(b *testing.B) {
	for _, sz := range benchSizes {
		b.Run(sz.name, func(b *testing.B) {
			benchSort(b, sz.n, Keys)
		})
	}
}

func BenchmarkKernelSortRadix(b *testing.B) {
	for _, sz := range benchSizes {
		b.Run(sz.name, func(b *testing.B) {
			scratch := make([]int64, sz.n)
			benchSort(b, sz.n, func(a []int64) { RadixKeys(a, scratch) })
		})
	}
}

func BenchmarkKernelSortStdlib(b *testing.B) {
	for _, sz := range benchSizes {
		b.Run(sz.name, func(b *testing.B) {
			benchSort(b, sz.n, slices.Sort[[]int64, int64])
		})
	}
}

// benchMerge times one merge shape.  "random" interleaves uniformly — the
// galloping merge's worst case, where it pays its detection comparisons
// for nothing.  "runs" block-interleaves (alternating bands of 1024 keys
// land wholly in one input), the shape skewed partitions and rank-cut
// merges produce, where galloping replaces whole bands with one binary
// search and a copy.
func benchMerge(b *testing.B, runny bool, merge func(dst, a, c []int64)) {
	b.Helper()
	const n = 1 << 15
	a := make([]int64, n)
	c := make([]int64, n)
	if runny {
		const band = 1024
		for i := range a {
			block := int64(i / band)
			a[i] = 2*band*block + int64(i%band)
			c[i] = 2*band*block + band + int64(i%band)
		}
	} else {
		fillBenchKeys(a, 1)
		fillBenchKeys(c, 2)
		slices.Sort(a)
		slices.Sort(c)
	}
	dst := make([]int64, 2*n)
	b.SetBytes(int64(2 * n * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		merge(dst, a, c)
	}
}

func BenchmarkKernelMergeBranchy(b *testing.B) {
	b.Run("random", func(b *testing.B) { benchMerge(b, false, MergeBinaryBranchy) })
	b.Run("runs", func(b *testing.B) { benchMerge(b, true, MergeBinaryBranchy) })
}

func BenchmarkKernelMergeGallop(b *testing.B) {
	b.Run("random", func(b *testing.B) { benchMerge(b, false, MergeBinary) })
	b.Run("runs", func(b *testing.B) { benchMerge(b, true, MergeBinary) })
}
