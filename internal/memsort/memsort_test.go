package memsort

import (
	"math/rand"
	"slices"
	"testing"
	"testing/quick"
)

func TestKeysSmallCases(t *testing.T) {
	cases := [][]int64{
		nil,
		{},
		{1},
		{2, 1},
		{1, 2},
		{3, 3, 3},
		{5, 4, 3, 2, 1},
		{1, 5, 2, 4, 3},
		{-1, -5, 0, 5, 1},
	}
	for _, in := range cases {
		got := append([]int64(nil), in...)
		want := append([]int64(nil), in...)
		Keys(got)
		slices.Sort(want)
		if !slices.Equal(got, want) {
			t.Fatalf("Keys(%v) = %v, want %v", in, got, want)
		}
	}
}

func TestKeysMatchesStdlib(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(5000)
		a := make([]int64, n)
		for i := range a {
			a[i] = rng.Int63n(1000) - 500
		}
		want := append([]int64(nil), a...)
		slices.Sort(want)
		Keys(a)
		if !slices.Equal(a, want) {
			t.Fatalf("trial %d: mismatch at n=%d", trial, n)
		}
	}
}

func TestKeysAdversarialPatterns(t *testing.T) {
	patterns := map[string]func(n int) []int64{
		"sorted": func(n int) []int64 {
			a := make([]int64, n)
			for i := range a {
				a[i] = int64(i)
			}
			return a
		},
		"reversed": func(n int) []int64 {
			a := make([]int64, n)
			for i := range a {
				a[i] = int64(n - i)
			}
			return a
		},
		"constant": func(n int) []int64 {
			return make([]int64, n)
		},
		"organ": func(n int) []int64 {
			a := make([]int64, n)
			for i := range a {
				if i < n/2 {
					a[i] = int64(i)
				} else {
					a[i] = int64(n - i)
				}
			}
			return a
		},
		"few-distinct": func(n int) []int64 {
			a := make([]int64, n)
			for i := range a {
				a[i] = int64(i % 3)
			}
			return a
		},
	}
	for name, gen := range patterns {
		t.Run(name, func(t *testing.T) {
			a := gen(4097)
			want := append([]int64(nil), a...)
			slices.Sort(want)
			Keys(a)
			if !slices.Equal(a, want) {
				t.Fatal("mismatch")
			}
		})
	}
}

func TestKeysQuickProperty(t *testing.T) {
	f := func(a []int64) bool {
		got := append([]int64(nil), a...)
		want := append([]int64(nil), a...)
		Keys(got)
		slices.Sort(want)
		return slices.Equal(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestIsSorted(t *testing.T) {
	if !IsSorted(nil) || !IsSorted([]int64{1}) || !IsSorted([]int64{1, 1, 2}) {
		t.Fatal("sorted input rejected")
	}
	if IsSorted([]int64{2, 1}) {
		t.Fatal("unsorted input accepted")
	}
}

func TestReverse(t *testing.T) {
	a := []int64{1, 2, 3, 4}
	Reverse(a)
	if !slices.Equal(a, []int64{4, 3, 2, 1}) {
		t.Fatalf("Reverse = %v", a)
	}
	b := []int64{1, 2, 3}
	Reverse(b)
	if !slices.Equal(b, []int64{3, 2, 1}) {
		t.Fatalf("Reverse odd = %v", b)
	}
}

func TestMinMax(t *testing.T) {
	min, max := MinMax([]int64{3, -1, 7, 0})
	if min != -1 || max != 7 {
		t.Fatalf("MinMax = %d,%d", min, max)
	}
	min, max = MinMax([]int64{5})
	if min != 5 || max != 5 {
		t.Fatalf("MinMax single = %d,%d", min, max)
	}
}

func TestMergeBinary(t *testing.T) {
	a := []int64{1, 3, 5}
	b := []int64{2, 4, 6, 7}
	dst := make([]int64, 7)
	MergeBinary(dst, a, b)
	if !slices.Equal(dst, []int64{1, 2, 3, 4, 5, 6, 7}) {
		t.Fatalf("MergeBinary = %v", dst)
	}
	// Empty sides.
	dst = make([]int64, 3)
	MergeBinary(dst, nil, []int64{1, 2, 3})
	if !slices.Equal(dst, []int64{1, 2, 3}) {
		t.Fatalf("MergeBinary empty a = %v", dst)
	}
	MergeBinary(dst, []int64{1, 2, 3}, nil)
	if !slices.Equal(dst, []int64{1, 2, 3}) {
		t.Fatalf("MergeBinary empty b = %v", dst)
	}
}

func TestMergeBinaryStability(t *testing.T) {
	// Equal keys must come from a first; detectable only via exhaustion
	// order, checked here by merging with b shifted copies.
	a := []int64{1, 1, 2}
	b := []int64{1, 2, 2}
	dst := make([]int64, 6)
	MergeBinary(dst, a, b)
	if !slices.Equal(dst, []int64{1, 1, 1, 2, 2, 2}) {
		t.Fatalf("MergeBinary ties = %v", dst)
	}
}

func TestMergeBinarySizeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on size mismatch")
		}
	}()
	MergeBinary(make([]int64, 1), []int64{1}, []int64{2})
}
