// Package memsort provides the in-core sorting kernels used inside every
// pass of the PDM algorithms: an introsort for raw key slices, binary and
// k-way (loser-tree) merges, and small utilities (sortedness checks,
// reversal, min/max).
//
// The PDM analyses in the paper charge only I/O; these kernels are the
// "local computation" assumed to be free.  They are nevertheless written to
// run fast, since the simulator executes them for real.
//
// Accounting contract: nothing here touches the pdm Array — no I/O is
// charged and no arena memory is allocated; callers sort buffers they
// already own.  Parallel execution of these kernels lives in internal/par,
// which is bit-identical to the serial forms.
package memsort
