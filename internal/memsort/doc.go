// Package memsort provides the in-core sorting kernels used inside every
// pass of the PDM algorithms: a comparison introsort (Keys) and an LSD
// radix sort (RadixKeys) for raw key slices, binary and k-way
// (loser-tree) merges, and small utilities (sortedness checks, reversal,
// min/max).
//
// The PDM analyses in the paper charge only I/O; these kernels are the
// "local computation" assumed to be free.  They are nevertheless written to
// run fast, since the simulator executes them for real.  Two kernel
// families exist because their costs cross: the introsort is in-place and
// wins on small loads, while the radix sort buys ~3x on memory-load-sized
// uniform keys for one load of scratch (internal/par's Kernel enum
// dispatches between them, and internal/plan prices the choice).  Both
// are stable on the paths that need stability and produce identical
// sorted output, so the choice is invisible to everything but the wall
// clock.  The binary merge (MergeBinary) is adaptive: it detects
// one-sided runs with a single comparison per round — the inputs are
// sorted, so "the next k keys of b all beat a's head" is one compare —
// and gallops past them with a binary search and a bulk copy;
// MergeBinaryBranchy keeps the plain element loop as the benchmark
// baseline (BenchmarkKernelMerge* pairs them on random and runs-shaped
// inputs).
//
// Accounting contract: nothing here touches the pdm Array — no I/O is
// charged and no arena memory is allocated; callers sort buffers they
// already own.  Parallel execution of these kernels lives in internal/par,
// which is bit-identical to the serial forms.
package memsort
