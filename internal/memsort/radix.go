package memsort

// LSD radix sort for int64 keys — the Radix compute kernel behind
// par.Pool.SortKeys.  The comparison introsort in memsort.go moves every key
// O(log n) times with a data-dependent branch per comparison; the radix kernel
// moves every key once per active byte and never branches on key values, which
// is why it wins on uniform random keys at memory-load sizes (see
// BenchmarkKernelSort*).
//
// Signed keys are handled with the sign-flip trick: XORing the sign bit maps
// the int64 order onto the uint64 order, so digit extraction works on
// uint64(v) ^ radixSignBit and the stored keys stay untouched.

const (
	// radixSignBit flips the int64 sign bit so that unsigned digit order
	// equals signed key order.  Only the top byte (pass 7) is affected;
	// XORing the whole word is equivalent and cheaper than special-casing.
	radixSignBit = uint64(1) << 63

	// RadixMinKeys is the size below which RadixKeys falls back to the
	// comparison introsort: with fewer keys the fixed cost of the counting
	// pass and the 256-entry bucket tables dominates.  Exported so callers
	// (the par kernel dispatch) can skip acquiring scratch they won't use.
	RadixMinKeys = 256
)

// RadixKeys sorts a in place with an LSD radix sort over 8-bit digits, using
// scratch (which must be at least len(a) long) as the ping-pong buffer.  The
// counting work is cache-blocked: one read pass accumulates all eight digit
// histograms, so scatter passes never re-scan just to count, and any digit on
// which all keys agree is skipped entirely — narrow-universe keys (the common
// case after range partitioning) pay only for their active bytes.
func RadixKeys(a, scratch []int64) {
	n := len(a)
	if n < RadixMinKeys {
		Keys(a)
		return
	}
	if len(scratch) < n {
		panic("memsort: RadixKeys scratch too small")
	}
	var counts [8][256]int
	for _, v := range a {
		u := uint64(v) ^ radixSignBit
		counts[0][u&0xff]++
		counts[1][u>>8&0xff]++
		counts[2][u>>16&0xff]++
		counts[3][u>>24&0xff]++
		counts[4][u>>32&0xff]++
		counts[5][u>>40&0xff]++
		counts[6][u>>48&0xff]++
		counts[7][u>>56]++
	}
	src, dst := a, scratch[:n]
	for pass := 0; pass < 8; pass++ {
		c := &counts[pass]
		if radixSkip(c, n) {
			continue
		}
		var off [256]int
		sum := 0
		for i, cnt := range c {
			off[i] = sum
			sum += cnt
		}
		shift := uint(8 * pass)
		for _, v := range src {
			d := (uint64(v) ^ radixSignBit) >> shift & 0xff
			dst[off[d]] = v
			off[d]++
		}
		src, dst = dst, src
	}
	if &src[0] != &a[0] {
		copy(a, src)
	}
}

// radixSkip reports whether every key shares the same value for this digit —
// a scatter pass would be the identity permutation, so it is skipped.
func radixSkip(c *[256]int, n int) bool {
	for _, cnt := range c {
		if cnt == n {
			return true
		}
		if cnt > 0 {
			return false
		}
	}
	return false
}
