package memsort

// SymMerge merges the two sorted halves a[:m] and a[m:] in place using the
// Kim–Kutzner symmetric merge (the algorithm behind Go's sort.Stable).
// It needs O(1) extra space, which is what lets the PDM cleanup passes hold
// exactly the two data chunks the paper's Section 5 describes — 2M keys —
// with no third merge buffer.
func SymMerge(a []int64, m int) {
	symMerge(a, 0, m, len(a))
}

// SymMergeRange merges the sorted runs data[lo:mid] and data[mid:hi] in
// place — SymMerge on a subrange, the entry point the parallel compute
// layer (internal/par) uses for its leaf merges.
func SymMergeRange(data []int64, lo, mid, hi int) {
	symMerge(data, lo, mid, hi)
}

func symMerge(data []int64, a, m, b int) {
	start, mid, end, split := symMergeSplit(data, a, m, b)
	if !split {
		return
	}
	if a < start && start < mid {
		symMerge(data, a, start, mid)
	}
	if mid < end && end < b {
		symMerge(data, mid, end, b)
	}
}

// SymMergeSplit performs one divide step of the symmetric merge on the
// sorted runs data[lo:mid] and data[mid:hi]: trivial ranges (a one-key
// side, or an empty side) are merged completely and split is false;
// otherwise the step rotates the crossing region and returns the two
// independent subproblems (lo, start, half) and (half, end, hi), so a
// caller can recurse on them concurrently.  A subproblem is already merged
// — and must be skipped — unless its bounds are strictly increasing.
func SymMergeSplit(data []int64, lo, mid, hi int) (start, half, end int, split bool) {
	return symMergeSplit(data, lo, mid, hi)
}

func symMergeSplit(data []int64, a, m, b int) (start, mid, end int, split bool) {
	// Handle trivial halves completely instead of splitting.
	if m-a == 1 {
		// Insert data[a] into data[m:b]: find the lowest index i in [m,b)
		// with data[i] >= data[a], then rotate data[a:i] left by one.
		i, j := m, b
		for i < j {
			h := int(uint(i+j) >> 1)
			if data[h] < data[a] {
				i = h + 1
			} else {
				j = h
			}
		}
		for k := a; k < i-1; k++ {
			data[k], data[k+1] = data[k+1], data[k]
		}
		return 0, 0, 0, false
	}
	if b-m == 1 {
		// Insert data[m] into data[a:m]: find the lowest index i in [a,m)
		// with data[i] > data[m], then rotate data[i:m+1] right by one.
		i, j := a, m
		for i < j {
			h := int(uint(i+j) >> 1)
			if data[m] < data[h] {
				j = h
			} else {
				i = h + 1
			}
		}
		for k := m; k > i; k-- {
			data[k], data[k-1] = data[k-1], data[k]
		}
		return 0, 0, 0, false
	}
	if m <= a || b <= m {
		return 0, 0, 0, false
	}

	mid = int(uint(a+b) >> 1)
	n := mid + m
	var r int
	if m > mid {
		start = n - b
		r = mid
	} else {
		start = a
		r = m
	}
	p := n - 1
	for start < r {
		c := int(uint(start+r) >> 1)
		if data[p-c] < data[c] {
			r = c
		} else {
			start = c + 1
		}
	}
	end = n - start
	if start < m && m < end {
		rotate(data, start, m, end)
	}
	return start, mid, end, true
}

// rotate exchanges the adjacent blocks data[a:m] and data[m:b] using the
// juggling-free block-swap algorithm.
func rotate(data []int64, a, m, b int) {
	i := m - a
	j := b - m
	for i != j {
		if i > j {
			swapRange(data, m-i, m, j)
			i -= j
		} else {
			swapRange(data, m-i, m+j-i, i)
			j -= i
		}
	}
	swapRange(data, m-i, m, i)
}

func swapRange(data []int64, a, b, n int) {
	for i := 0; i < n; i++ {
		data[a+i], data[b+i] = data[b+i], data[a+i]
	}
}
