package memsort

// SymMerge merges the two sorted halves a[:m] and a[m:] in place using the
// Kim–Kutzner symmetric merge (the algorithm behind Go's sort.Stable).
// It needs O(1) extra space, which is what lets the PDM cleanup passes hold
// exactly the two data chunks the paper's Section 5 describes — 2M keys —
// with no third merge buffer.
func SymMerge(a []int64, m int) {
	symMerge(a, 0, m, len(a))
}

func symMerge(data []int64, a, m, b int) {
	// Avoid unnecessary recursion on trivial halves.
	if m-a == 1 {
		// Insert data[a] into data[m:b]: find the lowest index i in [m,b)
		// with data[i] >= data[a], then rotate data[a:i] left by one.
		i, j := m, b
		for i < j {
			h := int(uint(i+j) >> 1)
			if data[h] < data[a] {
				i = h + 1
			} else {
				j = h
			}
		}
		for k := a; k < i-1; k++ {
			data[k], data[k+1] = data[k+1], data[k]
		}
		return
	}
	if b-m == 1 {
		// Insert data[m] into data[a:m]: find the lowest index i in [a,m)
		// with data[i] > data[m], then rotate data[i:m+1] right by one.
		i, j := a, m
		for i < j {
			h := int(uint(i+j) >> 1)
			if data[m] < data[h] {
				j = h
			} else {
				i = h + 1
			}
		}
		for k := m; k > i; k-- {
			data[k], data[k-1] = data[k-1], data[k]
		}
		return
	}
	if m <= a || b <= m {
		return
	}

	mid := int(uint(a+b) >> 1)
	n := mid + m
	var start, r int
	if m > mid {
		start = n - b
		r = mid
	} else {
		start = a
		r = m
	}
	p := n - 1
	for start < r {
		c := int(uint(start+r) >> 1)
		if data[p-c] < data[c] {
			r = c
		} else {
			start = c + 1
		}
	}
	end := n - start
	if start < m && m < end {
		rotate(data, start, m, end)
	}
	if a < start && start < mid {
		symMerge(data, a, start, mid)
	}
	if mid < end && end < b {
		symMerge(data, mid, end, b)
	}
}

// rotate exchanges the adjacent blocks data[a:m] and data[m:b] using the
// juggling-free block-swap algorithm.
func rotate(data []int64, a, m, b int) {
	i := m - a
	j := b - m
	for i != j {
		if i > j {
			swapRange(data, m-i, m, j)
			i -= j
		} else {
			swapRange(data, m-i, m+j-i, i)
			j -= i
		}
	}
	swapRange(data, m-i, m, i)
}

func swapRange(data []int64, a, b, n int) {
	for i := 0; i < n; i++ {
		data[a+i], data[b+i] = data[b+i], data[a+i]
	}
}
