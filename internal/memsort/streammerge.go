package memsort

// Streaming k-way merge: the loser tree generalized to lanes that arrive in
// chunks instead of living whole in memory.  The distributed-sort
// coordinator (internal/dist) drives it over workers' paginated output
// endpoints, but the contract is I/O-free: the caller supplies chunks and
// receives (lane, count) take instructions, so the same merge works over
// pages, files, or network streams carrying any per-key satellite data.

// Refill returns the next sorted chunk of lane l, or nil when the lane is
// exhausted.  Chunks of one lane must concatenate to a sorted sequence;
// the returned slice must stay valid until the next Refill of that lane.
// Empty non-nil chunks are allowed (the merge refills again).
type Refill func(lane int) ([]int64, error)

// streamLane is one lane's cursor: the current chunk and the position of
// its head.  An exhausted lane has head == infKey.
type streamLane struct {
	buf  []int64
	pos  int
	head int64
	done bool
}

// advance moves the cursor n keys forward, refilling when the chunk runs
// out, and recomputes the head.
func (l *streamLane) advance(lane, n int, refill Refill) error {
	l.pos += n
	return l.fill(lane, refill)
}

// fill establishes the invariant: either pos < len(buf) and head is
// buf[pos], or the lane is done and head is the sentinel.
func (l *streamLane) fill(lane int, refill Refill) error {
	for !l.done && l.pos >= len(l.buf) {
		chunk, err := refill(lane)
		if err != nil {
			return err
		}
		if chunk == nil {
			l.done = true
			break
		}
		l.buf, l.pos = chunk, 0
	}
	if l.done {
		l.head = infKey
		return nil
	}
	l.head = l.buf[l.pos]
	return nil
}

// StreamMerge merges k sorted lanes delivered in chunks by refill, telling
// the caller via emit(lane, n) to take the next n keys from that lane's
// current chunk.  Ties resolve to the lowest-numbered lane, so the merge is
// stable in lane order — the property the distributed sort's determinism
// contract rests on (range-partitioned lanes are disjoint, and equal keys
// never leave their shard, so lane order is original order).
//
// Like LoserTree.PopRun, each emission gallops the winning lane to the
// runner-up's bound: a run of r consecutive winners costs O(log r)
// comparisons instead of r sifts.  Emissions never split across a chunk
// boundary, so the caller can copy keys (and any satellite data riding
// with them) straight out of its current chunk.
func StreamMerge(k int, refill Refill, emit func(lane, n int) error) error {
	if k <= 0 {
		return nil
	}
	lanes := make([]streamLane, k)
	for i := range lanes {
		if err := lanes[i].fill(i, refill); err != nil {
			return err
		}
	}
	// Loser tree over the lane heads, as in LoserTree but indexed into the
	// refillable cursors.
	tree := make([]int, k)
	for i := range tree {
		tree[i] = -1
	}
	var replay func(lane int)
	replay = func(lane int) {
		winner := lane
		for node := (lane + k) / 2; node >= 1; node /= 2 {
			if tree[node] == -1 {
				tree[node] = winner
				return
			}
			l := tree[node]
			if lanes[l].head < lanes[winner].head ||
				(lanes[l].head == lanes[winner].head && l < winner) {
				winner, tree[node] = l, winner
			}
		}
		tree[0] = winner
	}
	for lane := 0; lane < k; lane++ {
		replay(lane)
	}
	sift := func(lane int) {
		winner := lane
		for node := (lane + k) / 2; node >= 1; node /= 2 {
			loser := tree[node]
			if lanes[loser].head < lanes[winner].head ||
				(lanes[loser].head == lanes[winner].head && loser < winner) {
				winner, tree[node] = loser, winner
			}
		}
		tree[0] = winner
	}
	for {
		w := tree[0]
		if lanes[w].head == infKey {
			return nil // every lane exhausted
		}
		// Runner-up: the best head among the losers on w's root path.
		ru := -1
		for node := (w + k) / 2; node >= 1; node /= 2 {
			l := tree[node]
			if ru == -1 || lanes[l].head < lanes[ru].head ||
				(lanes[l].head == lanes[ru].head && l < ru) {
				ru = l
			}
		}
		rest := lanes[w].buf[lanes[w].pos:]
		n := len(rest)
		if ru >= 0 && lanes[ru].head != infKey {
			if w < ru {
				n = gallopLessEq(rest, lanes[ru].head)
			} else {
				n = gallopLess(rest, lanes[ru].head)
			}
			if n < 1 {
				n = 1 // the winner's own head always beats the runner-up
			}
		}
		if err := emit(w, n); err != nil {
			return err
		}
		if err := lanes[w].advance(w, n, refill); err != nil {
			return err
		}
		sift(w)
	}
}
