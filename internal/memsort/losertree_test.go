package memsort

import (
	"math/rand"
	"slices"
	"testing"
	"testing/quick"
)

func randomLanes(rng *rand.Rand, k, maxLen int) [][]int64 {
	lanes := make([][]int64, k)
	for i := range lanes {
		n := rng.Intn(maxLen + 1)
		lane := make([]int64, n)
		for j := range lane {
			lane[j] = rng.Int63n(100)
		}
		slices.Sort(lane)
		lanes[i] = lane
	}
	return lanes
}

func flattenSorted(lanes [][]int64) []int64 {
	var all []int64
	for _, l := range lanes {
		all = append(all, l...)
	}
	slices.Sort(all)
	return all
}

func TestMultiMergeAgainstSort(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		k := 1 + rng.Intn(17) // includes non-powers of two
		lanes := randomLanes(rng, k, 50)
		want := flattenSorted(lanes)
		dst := make([]int64, len(want))
		MultiMerge(dst, lanes)
		if !slices.Equal(dst, want) {
			t.Fatalf("trial %d (k=%d): mismatch", trial, k)
		}
	}
}

func TestMultiMergeEdgeCases(t *testing.T) {
	// Zero lanes.
	MultiMerge(nil, nil)
	// One lane.
	dst := make([]int64, 3)
	MultiMerge(dst, [][]int64{{1, 2, 3}})
	if !slices.Equal(dst, []int64{1, 2, 3}) {
		t.Fatalf("one lane = %v", dst)
	}
	// Two lanes routes to binary merge.
	dst = make([]int64, 4)
	MultiMerge(dst, [][]int64{{2, 4}, {1, 3}})
	if !slices.Equal(dst, []int64{1, 2, 3, 4}) {
		t.Fatalf("two lanes = %v", dst)
	}
	// All-empty lanes.
	MultiMerge(nil, [][]int64{{}, {}, {}})
}

func TestMultiMergeSizeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on size mismatch")
		}
	}()
	MultiMerge(make([]int64, 1), [][]int64{{1}, {2}, {3}})
}

func TestLoserTreeStability(t *testing.T) {
	// Equal keys must be emitted in lane order.
	lanes := [][]int64{{5, 5}, {5}, {5, 5, 5}}
	tree := NewLoserTree(lanes)
	order := make([]int, 0, 6)
	for !tree.Empty() {
		// Identify the winning lane before popping by inspecting heads.
		w := tree.tree[0]
		order = append(order, w)
		tree.Pop()
	}
	want := []int{0, 0, 1, 2, 2, 2}
	if !slices.Equal(order, want) {
		t.Fatalf("emission lane order = %v, want %v", order, want)
	}
}

func TestLoserTreeEmpty(t *testing.T) {
	tree := NewLoserTree(nil)
	if !tree.Empty() {
		t.Fatal("tree over no lanes is not empty")
	}
	tree = NewLoserTree([][]int64{{}, {}})
	if !tree.Empty() {
		t.Fatal("tree over empty lanes is not empty")
	}
}

func TestMultiMergeBinaryMatchesLoserTree(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		k := 1 + rng.Intn(9)
		lanes := randomLanes(rng, k, 30)
		want := flattenSorted(lanes)
		d1 := make([]int64, len(want))
		d2 := make([]int64, len(want))
		MultiMerge(d1, lanes)
		MultiMergeBinary(d2, lanes)
		if !slices.Equal(d1, want) || !slices.Equal(d2, want) {
			t.Fatalf("trial %d: loser=%v binary=%v want=%v", trial, d1, d2, want)
		}
	}
	MultiMergeBinary(nil, nil)
}

func TestMultiMergeBinarySizeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on size mismatch")
		}
	}()
	MultiMergeBinary(make([]int64, 5), [][]int64{{1}})
}

func TestMultiMergeQuickProperty(t *testing.T) {
	// Property: merging any k sorted lanes equals sorting the concatenation.
	f := func(raw [][]int64) bool {
		lanes := make([][]int64, len(raw))
		for i, l := range raw {
			lanes[i] = append([]int64(nil), l...)
			slices.Sort(lanes[i])
		}
		want := flattenSorted(lanes)
		dst := make([]int64, len(want))
		MultiMerge(dst, lanes)
		return slices.Equal(dst, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
