package memsort

// This file holds the worker-aware entry points of the merge kernels: the
// multi-sequence selection that lets a caller cut k sorted lanes at an exact
// global rank, so independent workers can merge disjoint output ranges of
// one logical k-way merge (internal/par builds its partitioned merges on it).

// searchLess returns the number of keys in the sorted slice a that are
// strictly smaller than v.
func searchLess(a []int64, v int64) int {
	lo, hi := 0, len(a)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if a[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// searchLessEq returns the number of keys in the sorted slice a that are
// smaller than or equal to v.
func searchLessEq(a []int64, v int64) int {
	lo, hi := 0, len(a)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if a[mid] <= v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// CutLanes splits k sorted lanes at global rank: it returns per-lane cut
// indices cuts with sum(cuts) = rank such that every key in the prefixes
// lanes[i][:cuts[i]] is ≤ every key in the suffixes lanes[i][cuts[i]:].
// Ties at the cut value are assigned to the lowest-numbered lanes first,
// matching the loser tree's tie order, so concatenating the merges of the
// prefix lanes and of the suffix lanes reproduces MultiMerge exactly.
// rank is clamped to [0, total keys].
func CutLanes(lanes [][]int64, rank int) []int {
	cuts := make([]int, len(lanes))
	if rank <= 0 {
		return cuts
	}
	total := 0
	var lo, hi int64
	first := true
	for _, l := range lanes {
		total += len(l)
		if len(l) == 0 {
			continue
		}
		if first || l[0] < lo {
			lo = l[0]
		}
		if first || l[len(l)-1] > hi {
			hi = l[len(l)-1]
		}
		first = false
	}
	if rank >= total {
		for i, l := range lanes {
			cuts[i] = len(l)
		}
		return cuts
	}
	// Binary search for the rank-th smallest value v (1-indexed): the
	// smallest v with |{keys ≤ v}| ≥ rank.  The overflow-safe midpoint
	// matters: lo and hi may span nearly the whole int64 range.
	for lo < hi {
		mid := lo + int64((uint64(hi)-uint64(lo))/2)
		cnt := 0
		for _, l := range lanes {
			cnt += searchLessEq(l, mid)
		}
		if cnt >= rank {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	v := lo
	// Everything strictly below v is in the prefix; distribute the
	// remaining rank among the copies of v, lowest-numbered lanes first.
	rem := rank
	for i, l := range lanes {
		cuts[i] = searchLess(l, v)
		rem -= cuts[i]
	}
	for i, l := range lanes {
		if rem == 0 {
			break
		}
		ties := searchLessEq(l, v) - cuts[i]
		if ties > rem {
			ties = rem
		}
		cuts[i] += ties
		rem -= ties
	}
	return cuts
}
