package memsort

import (
	"math"
	"math/rand"
	"slices"
	"testing"
)

func splitRandLanes(rng *rand.Rand, k, maxLen int, span int64) [][]int64 {
	lanes := make([][]int64, k)
	for i := range lanes {
		n := rng.Intn(maxLen + 1)
		lane := make([]int64, n)
		for j := range lane {
			lane[j] = rng.Int63n(2*span) - span
		}
		Keys(lane)
		lanes[i] = lane
	}
	return lanes
}

func TestCutLanesProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		lanes := splitRandLanes(rng, 1+rng.Intn(6), 40, 16) // small span forces ties
		total := 0
		for _, l := range lanes {
			total += len(l)
		}
		for _, rank := range []int{-3, 0, 1, total / 3, total / 2, total, total + 5} {
			cuts := CutLanes(lanes, rank)
			want := rank
			if want < 0 {
				want = 0
			}
			if want > total {
				want = total
			}
			sum := 0
			prefixMax := int64(math.MinInt64)
			suffixMin := int64(math.MaxInt64)
			for i, l := range lanes {
				c := cuts[i]
				if c < 0 || c > len(l) {
					t.Fatalf("cut %d out of range for lane of %d", c, len(l))
				}
				sum += c
				if c > 0 && l[c-1] > prefixMax {
					prefixMax = l[c-1]
				}
				if c < len(l) && l[c] < suffixMin {
					suffixMin = l[c]
				}
			}
			if sum != want {
				t.Fatalf("rank %d: cuts sum to %d, want %d", rank, sum, want)
			}
			if prefixMax > suffixMin {
				t.Fatalf("rank %d: prefix max %d exceeds suffix min %d", rank, prefixMax, suffixMin)
			}
		}
	}
}

func TestCutLanesTilesMultiMerge(t *testing.T) {
	// Concatenating the per-span merges of the cut sub-lanes must reproduce
	// MultiMerge exactly, for any span count.
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 100; trial++ {
		lanes := splitRandLanes(rng, 1+rng.Intn(5), 50, 8)
		total := 0
		for _, l := range lanes {
			total += len(l)
		}
		want := make([]int64, total)
		MultiMerge(want, lanes)
		for _, spans := range []int{1, 2, 3, 7} {
			got := make([]int64, total)
			prev := make([]int, len(lanes))
			prevRank := 0
			for s := 1; s <= spans; s++ {
				rank := s * total / spans
				cuts := CutLanes(lanes, rank)
				sub := make([][]int64, len(lanes))
				for i, l := range lanes {
					if cuts[i] < prev[i] {
						t.Fatalf("cuts not monotone: lane %d went %d -> %d", i, prev[i], cuts[i])
					}
					sub[i] = l[prev[i]:cuts[i]]
				}
				MultiMerge(got[prevRank:rank], sub)
				prev, prevRank = cuts, rank
			}
			if !slices.Equal(got, want) {
				t.Fatalf("spans=%d: tiled merge differs from MultiMerge", spans)
			}
		}
	}
}

func TestSymMergeRange(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(200)
		data := make([]int64, n)
		for i := range data {
			data[i] = rng.Int63n(32)
		}
		lo := rng.Intn(n)
		hi := lo + rng.Intn(n-lo+1)
		mid := lo + rng.Intn(hi-lo+1)
		Keys(data[lo:mid])
		Keys(data[mid:hi])
		want := append([]int64(nil), data...)
		Keys(want[lo:hi])
		SymMergeRange(data, lo, mid, hi)
		if !slices.Equal(data, want) {
			t.Fatalf("SymMergeRange(%d, %d, %d) incorrect", lo, mid, hi)
		}
	}
}

func TestSymMergeSplitSubproblemsIndependent(t *testing.T) {
	// Finishing the two returned subproblems in either order must complete
	// the merge — that independence is what the parallel layer relies on.
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 100; trial++ {
		n := 8 + rng.Intn(300)
		data := make([]int64, n)
		for i := range data {
			data[i] = rng.Int63n(64)
		}
		mid := 2 + rng.Intn(n-4)
		Keys(data[:mid])
		Keys(data[mid:])
		want := append([]int64(nil), data...)
		Keys(want)
		start, half, end, split := SymMergeSplit(data, 0, mid, n)
		if split {
			// Right subproblem first, then left: order must not matter.
			if half < end && end < n {
				SymMergeRange(data, half, end, n)
			}
			if 0 < start && start < half {
				SymMergeRange(data, 0, start, half)
			}
		}
		if !slices.Equal(data, want) {
			t.Fatalf("split merge incorrect (mid=%d)", mid)
		}
	}
}
