package memsort

import (
	"encoding/binary"
	"math"
	"slices"
	"testing"
)

// FuzzStreamMerge feeds StreamMerge fuzzer-shaped lane sets — lane count,
// per-lane keys, and chunk boundaries (empty chunks included) all derive
// from the input bytes — and checks the streaming-merge contract: every
// emission fits the winning lane's current chunk, the concatenated output
// is sorted, it is a multiset permutation of the inputs, and ties come out
// in lane order (the stability the distributed sort's determinism rests
// on).
func FuzzStreamMerge(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{3, 5, 1, 2, 3, 4, 5, 0, 2, 9, 9})
	f.Add([]byte("\x04\x10chunky\x00\x00\x00\x00\x00\x00lanes\xff\xff\x07"))
	f.Add([]byte{2, 8, 0, 0, 0, 0, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 1, 255, 255})
	f.Fuzz(func(t *testing.T, data []byte) {
		next := func() byte {
			if len(data) == 0 {
				return 0
			}
			b := data[0]
			data = data[1:]
			return b
		}
		k := int(next())%5 + 1
		type chunkedLane struct {
			chunks [][]int64
			flat   []int64
		}
		lanes := make([]chunkedLane, k)
		for l := range lanes {
			n := int(next()) % 40
			keys := make([]int64, n)
			for i := range keys {
				var raw [8]byte
				for b := range raw {
					raw[b] = next()
				}
				v := int64(binary.LittleEndian.Uint64(raw[:]) % 64) // small range forces ties
				keys[i] = v
			}
			slices.Sort(keys) // chunks of one lane must concatenate sorted
			lanes[l].flat = keys
			zeros := 0
			for off := 0; off < n; {
				sz := int(next()) % (n - off + 1) // zero-length chunks allowed
				if sz == 0 {
					if zeros++; zeros > 3 { // bound the empty-chunk runs
						sz = n - off
					}
				}
				lanes[l].chunks = append(lanes[l].chunks, keys[off:off+sz])
				off += sz
			}
		}

		cursors := make([]int, k)   // next chunk to hand out per lane
		heads := make([][]int64, k) // current chunk as seen by the merge
		pos := make([]int, k)       // consumed keys of the current chunk
		refill := func(lane int) ([]int64, error) {
			if cursors[lane] >= len(lanes[lane].chunks) {
				return nil, nil
			}
			c := lanes[lane].chunks[cursors[lane]]
			cursors[lane]++
			heads[lane], pos[lane] = c, 0
			return c, nil
		}
		var out []int64
		var outLanes []int
		err := StreamMerge(k, refill, func(lane, n int) error {
			if n <= 0 || pos[lane]+n > len(heads[lane]) {
				t.Fatalf("emission of %d keys does not fit lane %d's chunk (%d of %d consumed)",
					n, lane, pos[lane], len(heads[lane]))
			}
			out = append(out, heads[lane][pos[lane]:pos[lane]+n]...)
			for i := 0; i < n; i++ {
				outLanes = append(outLanes, lane)
			}
			pos[lane] += n
			return nil
		})
		if err != nil {
			t.Fatalf("StreamMerge: %v", err)
		}
		if !slices.IsSorted(out) {
			t.Fatal("merged output is not sorted")
		}
		var want []int64
		for _, l := range lanes {
			want = append(want, l.flat...)
		}
		got := append([]int64(nil), out...)
		slices.Sort(want)
		if !slices.Equal(got, want) {
			t.Fatalf("merged output is not a permutation of the inputs (%d vs %d keys)", len(got), len(want))
		}
		// Stability: within a run of equal keys, lanes never decrease.
		for i := 1; i < len(out); i++ {
			if out[i] == out[i-1] && outLanes[i] < outLanes[i-1] {
				t.Fatalf("tie on key %d emitted lane %d after lane %d", out[i], outLanes[i], outLanes[i-1])
			}
		}
		// Padding discipline: the merge never invents the sentinel.
		if slices.Contains(out, math.MaxInt64) {
			t.Fatal("sentinel key leaked into the merge output")
		}
	})
}
