package memsort

import (
	"math"
	"math/rand"
	"slices"
	"testing"
)

func TestRadixKeysMatchesStdlib(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{0, 1, RadixMinKeys - 1, RadixMinKeys, 1000, 1 << 14} {
		a := make([]int64, n)
		for i := range a {
			a[i] = rng.Int63() - rng.Int63() // full range, negatives included
		}
		if n > 4 {
			a[0], a[1], a[2], a[3] = math.MaxInt64, math.MinInt64, 0, -1
		}
		want := append([]int64(nil), a...)
		slices.Sort(want)
		RadixKeys(a, make([]int64, n))
		if !slices.Equal(a, want) {
			t.Fatalf("n=%d: RadixKeys differs from stdlib sort", n)
		}
	}
}

// TestRadixKeysNarrowUniverse exercises the digit-skip path: keys that agree
// on most bytes still sort correctly with fewer scatter passes.
func TestRadixKeysNarrowUniverse(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, span := range []int64{1, 255, 1 << 16, 1 << 40} {
		n := 4096
		a := make([]int64, n)
		for i := range a {
			a[i] = rng.Int63n(span+1) - span/2
		}
		want := append([]int64(nil), a...)
		slices.Sort(want)
		RadixKeys(a, make([]int64, n))
		if !slices.Equal(a, want) {
			t.Fatalf("span=%d: RadixKeys differs from stdlib sort", span)
		}
	}
}

func TestRadixKeysScratchTooSmallPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on undersized scratch")
		}
	}()
	RadixKeys(make([]int64, RadixMinKeys), make([]int64, RadixMinKeys-1))
}

// TestMergeBinaryGallopMatchesBranchy drives the galloping merge against the
// branchy baseline on shapes that exercise both the element loop and the
// gallop path (long single-source runs, heavy ties, skewed lengths).
func TestMergeBinaryGallopMatchesBranchy(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	cases := [][2][]int64{
		{{}, {}},
		{{1, 2, 3}, {}},
		{{}, {1, 2, 3}},
		{{1, 1, 1, 1, 1, 1, 1, 1, 1, 1}, {1, 1, 1}},
	}
	for i := 0; i < 50; i++ {
		na, nb := rng.Intn(2000), rng.Intn(2000)
		a, b := make([]int64, na), make([]int64, nb)
		span := int64(1) << uint(rng.Intn(40))
		for j := range a {
			a[j] = rng.Int63n(2*span+1) - span
		}
		for j := range b {
			b[j] = rng.Int63n(2*span+1) - span
		}
		slices.Sort(a)
		slices.Sort(b)
		cases = append(cases, [2][]int64{a, b})
		// Disjoint ranges force maximal runs through the gallop path.
		c := append([]int64(nil), a...)
		for j := range c {
			c[j] += 4 * span
		}
		cases = append(cases, [2][]int64{b, c}, [2][]int64{c, b})
	}
	for i, tc := range cases {
		a, b := tc[0], tc[1]
		want := make([]int64, len(a)+len(b))
		MergeBinaryBranchy(want, a, b)
		got := make([]int64, len(a)+len(b))
		MergeBinary(got, a, b)
		if !slices.Equal(got, want) {
			t.Fatalf("case %d: galloping merge differs from branchy baseline", i)
		}
	}
}

// TestPopRunMatchesPop checks the loser tree's galloped run emission against
// key-at-a-time Pop on lanes with long runs and heavy ties.
func TestPopRunMatchesPop(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 30; trial++ {
		k := 1 + rng.Intn(9)
		lanes := make([][]int64, k)
		popLanes := make([][]int64, k)
		total := 0
		for i := range lanes {
			n := rng.Intn(500)
			l := make([]int64, n)
			base := int64(rng.Intn(4)) * 1000 // overlapping bands → tie pressure
			for j := range l {
				l[j] = base + rng.Int63n(50)
			}
			slices.Sort(l)
			lanes[i] = l
			popLanes[i] = append([]int64(nil), l...)
			total += n
		}
		want := make([]int64, total)
		pt := NewLoserTree(popLanes)
		for i := range want {
			want[i] = pt.Pop()
		}
		got := make([]int64, total)
		rt := NewLoserTree(lanes)
		for i := 0; i < total; {
			n := rt.PopRun(got[i:])
			if n < 1 {
				t.Fatal("PopRun emitted nothing")
			}
			i += n
		}
		if !slices.Equal(got, want) {
			t.Fatalf("trial %d: PopRun stream differs from Pop stream", trial)
		}
	}
}
