package memsort

import (
	"errors"
	"math/rand"
	"slices"
	"sort"
	"testing"
)

// chunked serves a lane in fixed-size chunks, recording how often it was
// asked.
type chunked struct {
	data  [][]int64 // per lane
	pos   []int
	size  int
	calls int
}

func newChunked(lanes [][]int64, size int) *chunked {
	return &chunked{data: lanes, pos: make([]int, len(lanes)), size: size}
}

func (c *chunked) refill(lane int) ([]int64, error) {
	c.calls++
	p := c.pos[lane]
	if p >= len(c.data[lane]) {
		return nil, nil
	}
	end := p + c.size
	if end > len(c.data[lane]) {
		end = len(c.data[lane])
	}
	c.pos[lane] = end
	return c.data[lane][p:end], nil
}

// drive runs StreamMerge over the chunk source and materializes the output
// by copying emitted runs out of the current chunks — exactly how the
// distributed coordinator consumes it.
func drive(t *testing.T, lanes [][]int64, chunkSize int) []int64 {
	t.Helper()
	src := newChunked(lanes, chunkSize)
	heads := make([]int, len(lanes)) // consumed per lane
	var out []int64
	err := StreamMerge(len(lanes), src.refill, func(lane, n int) error {
		out = append(out, lanes[lane][heads[lane]:heads[lane]+n]...)
		heads[lane] += n
		return nil
	})
	if err != nil {
		t.Fatalf("StreamMerge: %v", err)
	}
	return out
}

// TestStreamMergeMatchesMultiMerge: for random lanes and chunk sizes the
// streaming merge must produce exactly MultiMerge's output.
func TestStreamMergeMatchesMultiMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		k := 1 + rng.Intn(6)
		lanes := make([][]int64, k)
		total := 0
		for i := range lanes {
			n := rng.Intn(40)
			lane := make([]int64, n)
			for j := range lane {
				lane[j] = int64(rng.Intn(30)) // duplicates on purpose
			}
			sort.Slice(lane, func(a, b int) bool { return lane[a] < lane[b] })
			lanes[i] = lane
			total += n
		}
		want := make([]int64, total)
		MultiMerge(want, lanes)
		for _, chunk := range []int{1, 3, 64} {
			got := drive(t, lanes, chunk)
			if !slices.Equal(got, want) {
				t.Fatalf("trial %d chunk %d: got %v want %v", trial, chunk, got, want)
			}
		}
	}
}

// TestStreamMergeStability: on all-equal keys the merge must emit lanes in
// lane order — the tie rule the distributed determinism contract needs.
func TestStreamMergeStability(t *testing.T) {
	lanes := [][]int64{{5, 5}, {5, 5, 5}, {5}}
	src := newChunked(lanes, 2)
	var order []int
	err := StreamMerge(len(lanes), src.refill, func(lane, n int) error {
		for i := 0; i < n; i++ {
			order = append(order, lane)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(order, []int{0, 0, 1, 1, 1, 2}) {
		t.Fatalf("tie order = %v, want lanes in index order", order)
	}
}

// TestStreamMergeEdges: zero lanes, empty lanes, empty chunks, and error
// propagation from both callbacks.
func TestStreamMergeEdges(t *testing.T) {
	if err := StreamMerge(0, nil, nil); err != nil {
		t.Fatal(err)
	}
	// All-empty lanes emit nothing.
	if out := drive(t, [][]int64{{}, {}}, 4); len(out) != 0 {
		t.Fatalf("empty lanes emitted %v", out)
	}
	// Empty (non-nil) chunks are skipped, not treated as exhaustion.
	served := 0
	refill := func(lane int) ([]int64, error) {
		served++
		switch served {
		case 1:
			return []int64{}, nil
		case 2:
			return []int64{1, 2}, nil
		default:
			return nil, nil
		}
	}
	var out []int64
	if err := StreamMerge(1, refill, func(lane, n int) error {
		out = append(out, make([]int64, n)...)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("emitted %d keys through an empty chunk, want 2", len(out))
	}
	// Refill errors abort the merge.
	boom := errors.New("boom")
	if err := StreamMerge(1, func(int) ([]int64, error) { return nil, boom },
		func(int, int) error { return nil }); !errors.Is(err, boom) {
		t.Fatalf("refill error = %v", err)
	}
	// Emit errors abort the merge too.
	src := newChunked([][]int64{{1, 2, 3}}, 2)
	if err := StreamMerge(1, src.refill, func(int, int) error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("emit error = %v", err)
	}
}

// TestStreamMergeGallops: a runs-shaped input must cost far fewer emit
// calls than keys (the gallop emits whole runs).
func TestStreamMergeGallops(t *testing.T) {
	const n = 1 << 12
	a := make([]int64, n)
	b := make([]int64, n)
	for i := range a {
		a[i] = int64(i)     // 0..n-1
		b[i] = int64(n + i) // n..2n-1: one giant run each
	}
	src := newChunked([][]int64{a, b}, n)
	emits := 0
	if err := StreamMerge(2, src.refill, func(lane, cnt int) error {
		emits++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if emits > 8 {
		t.Fatalf("runs-shaped merge took %d emissions, want a handful", emits)
	}
}
