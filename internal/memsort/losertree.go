package memsort

import "math"

// infKey is the sentinel larger than every real key; exhausted loser-tree
// lanes carry it.  Real inputs must not contain MaxInt64 (the public facade
// documents and enforces this).
const infKey = math.MaxInt64

// LoserTree merges k sorted lanes with ⌈log₂ k⌉ comparisons per emitted key.
// It is the kernel of every one-pass k-way merge phase in the repository
// (the (l,m)-merge's group merges, multiway merge sort, and the k-way merge
// ablation).
type LoserTree struct {
	k     int
	tree  []int // internal nodes: lane index of the loser at that node
	lanes [][]int64
	pos   []int
	heads []int64
}

// NewLoserTree builds a loser tree over the given sorted lanes.  Empty lanes
// are allowed.
func NewLoserTree(lanes [][]int64) *LoserTree {
	k := len(lanes)
	if k == 0 {
		k = 1
	}
	t := &LoserTree{
		k:     k,
		tree:  make([]int, k),
		lanes: lanes,
		pos:   make([]int, k),
		heads: make([]int64, k),
	}
	for i := range t.heads {
		t.heads[i] = infKey
		if i < len(lanes) && len(lanes[i]) > 0 {
			t.heads[i] = lanes[i][0]
		}
	}
	t.build()
	return t
}

// build initializes the loser tree by playing every lane up the tree.
func (t *LoserTree) build() {
	for i := range t.tree {
		t.tree[i] = -1
	}
	for lane := 0; lane < t.k; lane++ {
		t.replay(lane)
	}
}

// replay pushes lane up from its leaf, recording losers, leaving the overall
// winner at tree[0].
func (t *LoserTree) replay(lane int) {
	winner := lane
	for node := (lane + t.k) / 2; node >= 1; node /= 2 {
		if t.tree[node] == -1 {
			t.tree[node] = winner
			return
		}
		if t.heads[t.tree[node]] < t.heads[winner] ||
			(t.heads[t.tree[node]] == t.heads[winner] && t.tree[node] < winner) {
			winner, t.tree[node] = t.tree[node], winner
		}
	}
	t.tree[0] = winner
}

// Empty reports whether all lanes are exhausted.
func (t *LoserTree) Empty() bool {
	return t.heads[t.tree[0]] == infKey
}

// Pop removes and returns the smallest head.  Ties resolve to the
// lowest-numbered lane, making the merge stable in lane order.
func (t *LoserTree) Pop() int64 {
	w := t.tree[0]
	v := t.heads[w]
	t.pos[w]++
	if w < len(t.lanes) && t.pos[w] < len(t.lanes[w]) {
		t.heads[w] = t.lanes[w][t.pos[w]]
	} else {
		t.heads[w] = infKey
	}
	t.sift(w)
	return v
}

// PopRun pops a maximal run of consecutive keys from the current winning lane
// into dst and returns how many it emitted (at least 1; at most len(dst)).
// It is the galloping fast path of the loser tree: one walk up the winner's
// root path finds the runner-up — the best head among all other lanes — and a
// gallop search (exponential + binary) finds how far the winner's lane stays
// below that bound, so a run of r keys costs O(log r) comparisons plus a bulk
// copy instead of r sifts.  The tie rule matches sift: the winner's lane may
// emit keys equal to the runner-up's head only when its lane index is lower.
func (t *LoserTree) PopRun(dst []int64) int {
	if len(dst) == 0 {
		return 0
	}
	w := t.tree[0]
	var lane []int64
	if w < len(t.lanes) && t.pos[w] < len(t.lanes[w]) {
		lane = t.lanes[w][t.pos[w]:]
	}
	if len(lane) == 0 {
		// Exhausted (or padding) lane: behave like Pop and emit the sentinel.
		dst[0] = t.heads[w]
		t.sift(w)
		return 1
	}
	ru := -1
	for node := (w + t.k) / 2; node >= 1; node /= 2 {
		l := t.tree[node]
		if ru == -1 || t.heads[l] < t.heads[ru] ||
			(t.heads[l] == t.heads[ru] && l < ru) {
			ru = l
		}
	}
	n := len(lane)
	if ru >= 0 {
		if w < ru {
			n = gallopLessEq(lane, t.heads[ru])
		} else {
			n = gallopLess(lane, t.heads[ru])
		}
	}
	if n > len(dst) {
		n = len(dst)
	}
	if n < 1 {
		n = 1 // the winner's own head always beats the runner-up
	}
	copy(dst[:n], lane[:n])
	t.pos[w] += n
	if t.pos[w] < len(t.lanes[w]) {
		t.heads[w] = t.lanes[w][t.pos[w]]
	} else {
		t.heads[w] = infKey
	}
	t.sift(w)
	return n
}

// sift replays lane w against the losers on its root path after its head
// changed.
func (t *LoserTree) sift(lane int) {
	winner := lane
	for node := (lane + t.k) / 2; node >= 1; node /= 2 {
		loser := t.tree[node]
		if t.heads[loser] < t.heads[winner] ||
			(t.heads[loser] == t.heads[winner] && loser < winner) {
			winner, t.tree[node] = loser, winner
		}
	}
	t.tree[0] = winner
}

// MultiMerge merges the sorted lanes into dst, which must have length equal
// to the total lane length.  For k ≤ 2 it falls back to copy/MergeBinary.
func MultiMerge(dst []int64, lanes [][]int64) {
	total := 0
	for _, l := range lanes {
		total += len(l)
	}
	if len(dst) != total {
		panic("memsort: MultiMerge destination size mismatch")
	}
	switch len(lanes) {
	case 0:
		return
	case 1:
		copy(dst, lanes[0])
		return
	case 2:
		MergeBinary(dst, lanes[0], lanes[1])
		return
	}
	t := NewLoserTree(lanes)
	for i := 0; i < len(dst); {
		i += t.PopRun(dst[i:])
	}
}

// MultiMergeBinary merges k sorted lanes by repeated pairwise binary merging
// (⌈log₂ k⌉ rounds over the data).  It exists as the baseline for the
// loser-tree ablation (A4 in DESIGN.md): identical output, more key moves.
func MultiMergeBinary(dst []int64, lanes [][]int64) {
	total := 0
	for _, l := range lanes {
		total += len(l)
	}
	if len(dst) != total {
		panic("memsort: MultiMergeBinary destination size mismatch")
	}
	if len(lanes) == 0 {
		return
	}
	cur := make([][]int64, len(lanes))
	for i, l := range lanes {
		cur[i] = append([]int64(nil), l...)
	}
	for len(cur) > 1 {
		next := cur[:0:0]
		for i := 0; i+1 < len(cur); i += 2 {
			merged := make([]int64, len(cur[i])+len(cur[i+1]))
			MergeBinary(merged, cur[i], cur[i+1])
			next = append(next, merged)
		}
		if len(cur)%2 == 1 {
			next = append(next, cur[len(cur)-1])
		}
		cur = next
	}
	copy(dst, cur[0])
}
