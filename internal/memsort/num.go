package memsort

// Isqrt returns the integer square root of n (the largest s with s·s ≤ n).
// The PDM algorithms use it to derive the paper's block size B = √M and the
// √M×√M submesh geometry; negative input returns 0.
func Isqrt(n int) int {
	if n <= 0 {
		return 0
	}
	s := n
	prev := (s + 1) / 2
	for prev < s {
		s = prev
		prev = (s + n/s) / 2
	}
	return s
}

// IsPerfectSquare reports whether n is a perfect square, the harness
// requirement for configurations with B = √M.
func IsPerfectSquare(n int) bool {
	s := Isqrt(n)
	return s*s == n
}

// CeilDiv returns ⌈a/b⌉ for positive b.
func CeilDiv(a, b int) int {
	return (a + b - 1) / b
}
