package memsort

import (
	"math/rand"
	"slices"
	"testing"
	"testing/quick"
)

func TestSymMergeBasic(t *testing.T) {
	cases := []struct {
		a []int64
		m int
	}{
		{[]int64{1, 3, 5, 2, 4, 6}, 3},
		{[]int64{2, 4, 6, 1, 3, 5}, 3},
		{[]int64{1, 2, 3}, 3},
		{[]int64{1, 2, 3}, 0},
		{[]int64{2, 1}, 1},
		{[]int64{1}, 0},
		{[]int64{}, 0},
		{[]int64{5, 1, 2, 3, 4}, 1},
		{[]int64{1, 2, 3, 4, 0}, 4},
		{[]int64{1, 1, 1, 1, 1, 1}, 3},
	}
	for _, tc := range cases {
		got := append([]int64(nil), tc.a...)
		want := append([]int64(nil), tc.a...)
		SymMerge(got, tc.m)
		slices.Sort(want)
		if !slices.Equal(got, want) {
			t.Fatalf("SymMerge(%v, %d) = %v, want %v", tc.a, tc.m, got, want)
		}
	}
}

func TestSymMergeRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 200; trial++ {
		la := rng.Intn(200)
		lb := rng.Intn(200)
		a := make([]int64, la+lb)
		for i := range a {
			a[i] = rng.Int63n(50)
		}
		slices.Sort(a[:la])
		slices.Sort(a[la:])
		want := append([]int64(nil), a...)
		slices.Sort(want)
		SymMerge(a, la)
		if !slices.Equal(a, want) {
			t.Fatalf("trial %d (la=%d lb=%d): mismatch", trial, la, lb)
		}
	}
}

func TestSymMergeMatchesMergeBinary(t *testing.T) {
	f := func(x, y []int64) bool {
		a := append([]int64(nil), x...)
		b := append([]int64(nil), y...)
		slices.Sort(a)
		slices.Sort(b)
		joint := append(append([]int64(nil), a...), b...)
		SymMerge(joint, len(a))
		want := make([]int64, len(a)+len(b))
		MergeBinary(want, a, b)
		return slices.Equal(joint, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
