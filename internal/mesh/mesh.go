package mesh

import (
	"fmt"

	"repro/internal/memsort"
)

// Mesh is an r×c matrix of keys in row-major order.
type Mesh struct {
	Rows, Cols int
	Data       []int64
}

// New wraps data (len rows·cols, row-major) as a Mesh without copying.
func New(rows, cols int, data []int64) (*Mesh, error) {
	if rows <= 0 || cols <= 0 || len(data) != rows*cols {
		return nil, fmt.Errorf("mesh: %d keys cannot form a %d x %d mesh", len(data), rows, cols)
	}
	return &Mesh{Rows: rows, Cols: cols, Data: data}, nil
}

// At returns the element at row r, column c.
func (m *Mesh) At(r, c int) int64 { return m.Data[r*m.Cols+c] }

// Set stores v at row r, column c.
func (m *Mesh) Set(r, c int, v int64) { m.Data[r*m.Cols+c] = v }

// Row returns row r as a slice view into the mesh.
func (m *Mesh) Row(r int) []int64 { return m.Data[r*m.Cols : (r+1)*m.Cols] }

// SortRow sorts row r ascending (left to right) or descending.
func (m *Mesh) SortRow(r int, descending bool) {
	row := m.Row(r)
	memsort.Keys(row)
	if descending {
		memsort.Reverse(row)
	}
}

// SortRowsSnake sorts every row, even rows ascending and odd rows
// descending — one row phase of Shearsort.
func (m *Mesh) SortRowsSnake() {
	for r := 0; r < m.Rows; r++ {
		m.SortRow(r, r%2 == 1)
	}
}

// SortColumns sorts every column top-to-bottom ascending.
func (m *Mesh) SortColumns() {
	col := make([]int64, m.Rows)
	for c := 0; c < m.Cols; c++ {
		for r := 0; r < m.Rows; r++ {
			col[r] = m.At(r, c)
		}
		memsort.Keys(col)
		for r := 0; r < m.Rows; r++ {
			m.Set(r, c, col[r])
		}
	}
}

// Shearsort runs the classical ⌈log₂ rows⌉+1 alternating row/column phases,
// leaving the mesh sorted in snake order (Scherson–Sen–Shamir).
func (m *Mesh) Shearsort() {
	phases := 1
	for n := 1; n < m.Rows; n <<= 1 {
		phases++
	}
	for p := 0; p < phases; p++ {
		m.SortRowsSnake()
		m.SortColumns()
	}
	m.SortRowsSnake()
}

// SnakeIndex maps position i of the snake (boustrophedon) order to its
// row-major index: even rows run left-to-right, odd rows right-to-left.
func (m *Mesh) SnakeIndex(i int) int {
	r := i / m.Cols
	c := i % m.Cols
	if r%2 == 1 {
		c = m.Cols - 1 - c
	}
	return r*m.Cols + c
}

// SnakeExtract copies the mesh out in snake order.
func (m *Mesh) SnakeExtract() []int64 {
	out := make([]int64, len(m.Data))
	for i := range out {
		out[i] = m.Data[m.SnakeIndex(i)]
	}
	return out
}

// IsSnakeSorted reports whether the mesh is sorted in snake order.
func (m *Mesh) IsSnakeSorted() bool {
	return memsort.IsSorted(m.SnakeExtract())
}

// IsRowMajorSorted reports whether the mesh is sorted in row-major order.
func (m *Mesh) IsRowMajorSorted() bool {
	return memsort.IsSorted(m.Data)
}

// SortSubmeshRowMajor sorts the sr×sc submesh whose top-left corner is
// (r0, c0) into row-major order; if reversedRows is set, each row runs
// right-to-left (the "reverse direction" of the paper's Step 1).
func (m *Mesh) SortSubmeshRowMajor(r0, c0, sr, sc int, reversedRows bool) {
	buf := make([]int64, sr*sc)
	k := 0
	for r := r0; r < r0+sr; r++ {
		copy(buf[k:], m.Data[r*m.Cols+c0:r*m.Cols+c0+sc])
		k += sc
	}
	memsort.Keys(buf)
	k = 0
	for r := r0; r < r0+sr; r++ {
		row := m.Data[r*m.Cols+c0 : r*m.Cols+c0+sc]
		copy(row, buf[k:k+sc])
		if reversedRows {
			memsort.Reverse(row)
		}
		k += sc
	}
}

// SubmeshPassSnake runs Step 1 of ThreePass1: partition the mesh into
// sr×Cols bands and sort each band into row-major order, with vertically
// consecutive bands using opposite row directions.  Rows must be divisible
// by sr.
func (m *Mesh) SubmeshPassSnake(sr int) error {
	if m.Rows%sr != 0 {
		return fmt.Errorf("mesh: %d rows not divisible by band height %d", m.Rows, sr)
	}
	for k := 0; k*sr < m.Rows; k++ {
		m.SortSubmeshRowMajor(k*sr, 0, sr, m.Cols, k%2 == 1)
	}
	return nil
}

// DirtyRows counts rows containing a mixture of distinct values.  On 0-1
// inputs this is the paper's dirty-row count.
func (m *Mesh) DirtyRows() int {
	dirty := 0
	for r := 0; r < m.Rows; r++ {
		row := m.Row(r)
		for _, v := range row[1:] {
			if v != row[0] {
				dirty++
				break
			}
		}
	}
	return dirty
}

// DirtySpan returns the first and one-past-last dirty row indices, or (0,0)
// if the mesh is clean.  On 0-1 inputs after a column sort the dirty rows
// are consecutive and DirtySpan measures the band the cleanup must fix.
func (m *Mesh) DirtySpan() (lo, hi int) {
	lo, hi = -1, -1
	for r := 0; r < m.Rows; r++ {
		row := m.Row(r)
		for _, v := range row[1:] {
			if v != row[0] {
				if lo == -1 {
					lo = r
				}
				hi = r + 1
				break
			}
		}
	}
	if lo == -1 {
		return 0, 0
	}
	return lo, hi
}
