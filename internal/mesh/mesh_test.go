package mesh

import (
	"math/rand"
	"slices"
	"testing"
	"testing/quick"

	"repro/internal/workload"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(2, 3, make([]int64, 5)); err == nil {
		t.Fatal("size mismatch accepted")
	}
	if _, err := New(0, 3, nil); err == nil {
		t.Fatal("zero rows accepted")
	}
	m, err := New(2, 3, []int64{1, 2, 3, 4, 5, 6})
	if err != nil {
		t.Fatal(err)
	}
	if m.At(1, 2) != 6 {
		t.Fatalf("At(1,2) = %d, want 6", m.At(1, 2))
	}
	m.Set(0, 0, 9)
	if m.At(0, 0) != 9 {
		t.Fatal("Set failed")
	}
}

func TestSortRowsSnake(t *testing.T) {
	m, _ := New(2, 3, []int64{3, 1, 2, 4, 6, 5})
	m.SortRowsSnake()
	if !slices.Equal(m.Row(0), []int64{1, 2, 3}) {
		t.Fatalf("row 0 = %v", m.Row(0))
	}
	if !slices.Equal(m.Row(1), []int64{6, 5, 4}) {
		t.Fatalf("row 1 = %v (want descending)", m.Row(1))
	}
}

func TestSortColumns(t *testing.T) {
	m, _ := New(3, 2, []int64{5, 0, 3, 2, 1, 4})
	m.SortColumns()
	want := []int64{1, 0, 3, 2, 5, 4}
	if !slices.Equal(m.Data, want) {
		t.Fatalf("Data = %v, want %v", m.Data, want)
	}
}

func TestShearsortSortsRandom(t *testing.T) {
	for _, dims := range [][2]int{{4, 4}, {8, 8}, {16, 4}, {7, 5}, {1, 8}, {8, 1}} {
		rows, cols := dims[0], dims[1]
		data := workload.Perm(rows*cols, int64(rows*100+cols))
		m, err := New(rows, cols, data)
		if err != nil {
			t.Fatal(err)
		}
		m.Shearsort()
		if !m.IsSnakeSorted() {
			t.Fatalf("%dx%d mesh not snake-sorted", rows, cols)
		}
	}
}

func TestShearsortQuickProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := 1 + rng.Intn(12)
		cols := 1 + rng.Intn(12)
		m, err := New(rows, cols, workload.Perm(rows*cols, seed))
		if err != nil {
			return false
		}
		m.Shearsort()
		return m.IsSnakeSorted()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSnakeIndex(t *testing.T) {
	m, _ := New(2, 3, []int64{0, 1, 2, 5, 4, 3})
	// Snake order of row-major indices: 0,1,2 then 5,4,3.
	want := []int{0, 1, 2, 5, 4, 3}
	for i, w := range want {
		if got := m.SnakeIndex(i); got != w {
			t.Fatalf("SnakeIndex(%d) = %d, want %d", i, got, w)
		}
	}
	if !m.IsSnakeSorted() {
		t.Fatal("snake-sorted mesh rejected")
	}
	if m.IsRowMajorSorted() {
		t.Fatal("non-row-major mesh accepted")
	}
}

func TestSubmeshPassSnakeDirtyRows(t *testing.T) {
	// Theorem 3.1's combinatorial core: on 0-1 inputs, after Step 1 each
	// band has at most 1 dirty row, and after Step 2 at most √M/2 dirty
	// rows remain.
	const mem = 256 // √M = 16
	cols := 16
	rows := mem
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		data := workload.ZeroOneK(rows*cols, rng.Intn(rows*cols+1), rng.Int63())
		m, err := New(rows, cols, data)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.SubmeshPassSnake(cols); err != nil {
			t.Fatal(err)
		}
		for k := 0; k < rows/cols; k++ {
			band := &Mesh{Rows: cols, Cols: cols, Data: m.Data[k*cols*cols : (k+1)*cols*cols]}
			if d := band.DirtyRows(); d > 1 {
				t.Fatalf("trial %d: band %d has %d dirty rows after Step 1", trial, k, d)
			}
		}
		m.SortColumns()
		if d := m.DirtyRows(); d > cols/2 {
			t.Fatalf("trial %d: %d dirty rows after Step 2, want <= %d", trial, d, cols/2)
		}
		lo, hi := m.DirtySpan()
		if hi-lo > cols/2 {
			t.Fatalf("trial %d: dirty span %d rows, want <= %d", trial, hi-lo, cols/2)
		}
	}
}

func TestSubmeshPassSnakeBadBand(t *testing.T) {
	m, _ := New(6, 3, make([]int64, 18))
	if err := m.SubmeshPassSnake(4); err == nil {
		t.Fatal("non-dividing band height accepted")
	}
}

func TestDirtyRowsAndSpan(t *testing.T) {
	m, _ := New(3, 2, []int64{0, 0, 0, 1, 1, 1})
	if got := m.DirtyRows(); got != 1 {
		t.Fatalf("DirtyRows = %d, want 1", got)
	}
	lo, hi := m.DirtySpan()
	if lo != 1 || hi != 2 {
		t.Fatalf("DirtySpan = (%d,%d), want (1,2)", lo, hi)
	}
	clean, _ := New(2, 2, []int64{0, 0, 1, 1})
	if got := clean.DirtyRows(); got != 0 {
		t.Fatalf("clean DirtyRows = %d", got)
	}
	lo, hi = clean.DirtySpan()
	if lo != 0 || hi != 0 {
		t.Fatalf("clean DirtySpan = (%d,%d)", lo, hi)
	}
}
