// Package mesh implements the mesh-sorting machinery underlying the paper's
// Section 3 algorithm ThreePass1 and its average-case variant: matrices in
// row-major order, snake (boustrophedon) row sorts, column sorts, Shearsort,
// dirty-row analysis for 0-1 inputs, and the rolling cleanup of the paper's
// Step 3 / Observation 4.2.
//
// Everything here is in-memory reference machinery: internal/core re-derives
// the same steps as explicit PDM passes, and the tests cross-check the two.
package mesh
