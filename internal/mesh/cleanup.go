package mesh

import (
	"errors"

	"repro/internal/memsort"
)

// ErrDirtyOverflow is reported by cleanup routines when a key was displaced
// farther than the window they were asked to clean — the detection event
// that triggers the paper's fallback path in the expected-pass algorithms.
var ErrDirtyOverflow = errors.New("mesh: displacement exceeded the cleanup window")

// RollingClean sorts a in place under the promise that every key lies within
// w positions of its sorted location (the paper's Observation 4.2 situation:
// |Z_i| = w, sort each Z_i, merge Z1Z2, Z3Z4, …, then Z2Z3, Z4Z5, …).  The
// implementation is the streaming equivalent used by the PDM passes: keep a
// carry of w keys, merge it with the next w-chunk, emit the smaller half.
//
// It verifies the promise the way the paper's algorithms do — the emitted
// stream must be nondecreasing across chunk boundaries — and returns
// ErrDirtyOverflow the moment a violation appears (a is left partially
// processed in that case, as the real algorithms abort to a fallback).
func RollingClean(a []int64, w int) error {
	n := len(a)
	if w <= 0 || n == 0 {
		if n == 0 {
			return nil
		}
		return errors.New("mesh: nonpositive cleanup window")
	}
	if w >= n {
		memsort.Keys(a)
		return nil
	}
	carry := append([]int64(nil), a[:w]...)
	memsort.Keys(carry)
	merged := make([]int64, 2*w)
	out := 0
	first := true
	var lastMax int64
	for pos := w; pos < n; pos += w {
		end := pos + w
		if end > n {
			end = n
		}
		chunk := append([]int64(nil), a[pos:end]...)
		memsort.Keys(chunk)
		m := merged[:len(carry)+len(chunk)]
		memsort.MergeBinary(m, carry, chunk)
		emit := m[:len(m)-w]
		if !first && len(emit) > 0 && emit[0] < lastMax {
			return ErrDirtyOverflow
		}
		if len(emit) > 0 {
			lastMax = emit[len(emit)-1]
			first = false
		}
		copy(a[out:], emit)
		out += len(emit)
		carry = append(carry[:0], m[len(m)-w:]...)
	}
	if !first && carry[0] < lastMax {
		return ErrDirtyOverflow
	}
	copy(a[out:], carry)
	return nil
}

// PairwiseClean is the literal form of the paper's Observation 4.2: split a
// into w-chunks, sort each, merge even-odd adjacent pairs, then odd-even
// adjacent pairs.  It performs the same repair as RollingClean (used to
// cross-check it) but materializes the two explicit merge rounds.
func PairwiseClean(a []int64, w int) {
	n := len(a)
	if w <= 0 || n == 0 {
		return
	}
	for pos := 0; pos < n; pos += w {
		end := min(pos+w, n)
		memsort.Keys(a[pos:end])
	}
	mergeAdjacent := func(start int) {
		buf := make([]int64, 2*w)
		for pos := start; pos+w < n; pos += 2 * w {
			mid := pos + w
			end := min(mid+w, n)
			m := buf[:end-pos]
			memsort.MergeBinary(m, a[pos:mid], a[mid:end])
			copy(a[pos:end], m)
		}
	}
	mergeAdjacent(0)
	mergeAdjacent(w)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// MaxDisplacement returns the largest distance between a key's position in a
// and its position in the stable sort of a — the quantity bounded by the
// shuffling lemma and assumed by the cleanup routines.
func MaxDisplacement(a []int64) int {
	idx := make([]int, len(a))
	for i := range idx {
		idx[i] = i
	}
	// Simple merge sort on indices for stability.
	tmp := make([]int, len(a))
	var ms func(lo, hi int)
	ms = func(lo, hi int) {
		if hi-lo < 2 {
			return
		}
		mid := (lo + hi) / 2
		ms(lo, mid)
		ms(mid, hi)
		i, j, k := lo, mid, lo
		for i < mid && j < hi {
			if a[idx[j]] < a[idx[i]] {
				tmp[k] = idx[j]
				j++
			} else {
				tmp[k] = idx[i]
				i++
			}
			k++
		}
		for i < mid {
			tmp[k] = idx[i]
			i++
			k++
		}
		for j < hi {
			tmp[k] = idx[j]
			j++
			k++
		}
		copy(idx[lo:hi], tmp[lo:hi])
	}
	ms(0, len(a))
	maxD := 0
	for sortedPos, origPos := range idx {
		d := sortedPos - origPos
		if d < 0 {
			d = -d
		}
		if d > maxD {
			maxD = d
		}
	}
	return maxD
}
