package mesh

import (
	"fmt"

	"repro/internal/memsort"
)

// ThreePassRef is the in-memory reference form of the paper's Algorithm
// ThreePass1 (Section 3.1): view the input as an M×√M mesh, (1) sort the
// √M×√M submeshes row-major with alternating row directions, (2) sort all
// columns, (3) rolling cleanup with window M/2.  It sorts any input of
// exactly M·√M keys (Theorem 3.1).
//
// internal/core implements the same steps as three accounted PDM passes;
// the test suite cross-checks the two step by step.
func ThreePassRef(data []int64, mem int) error {
	cols := memsort.Isqrt(mem)
	if cols*cols != mem {
		return fmt.Errorf("mesh: M = %d is not a perfect square", mem)
	}
	if len(data) != mem*cols {
		return fmt.Errorf("mesh: ThreePassRef needs exactly M·√M = %d keys, got %d", mem*cols, len(data))
	}
	m, err := New(mem, cols, data)
	if err != nil {
		return err
	}
	if err := m.SubmeshPassSnake(cols); err != nil {
		return err
	}
	m.SortColumns()
	// After steps 1–2 at most √M/2 rows are dirty (Shearsort principle), a
	// contiguous band of at most M/2 keys in row-major order, so a cleanup
	// window of M/2 suffices for all inputs.
	return RollingClean(data, mem/2)
}

// ExpTwoPassRef is the in-memory reference form of the Section 3.2 variant
// ExpThreePass1/ExpectedTwoPass-mesh: Step 1 is skipped, so only the column
// sort and the cleanup remain (two passes on the PDM).  Without Step 1 the
// dirty band is only *probably* small — O(√(M log M)) rows for random inputs
// (balls-in-bins, Theorem 3.2) — so the cleanup can overflow its window, in
// which case ErrDirtyOverflow is returned and the caller must fall back to a
// worst-case algorithm, exactly as the paper prescribes.
func ExpTwoPassRef(data []int64, mem int) error {
	cols := memsort.Isqrt(mem)
	if cols*cols != mem {
		return fmt.Errorf("mesh: M = %d is not a perfect square", mem)
	}
	if len(data)%cols != 0 {
		return fmt.Errorf("mesh: %d keys do not form columns of width %d", len(data), cols)
	}
	rows := len(data) / cols
	if rows > mem {
		return fmt.Errorf("mesh: column height %d exceeds memory %d", rows, mem)
	}
	m, err := New(rows, cols, data)
	if err != nil {
		return err
	}
	m.SortColumns()
	return RollingClean(data, mem/2)
}
