package mesh

import (
	"errors"
	"math/rand"
	"slices"
	"testing"
	"testing/quick"

	"repro/internal/memsort"
	"repro/internal/workload"
)

func TestRollingCleanSortsDisplaced(t *testing.T) {
	for _, tc := range []struct{ n, d, w int }{
		{1000, 16, 16},
		{1000, 16, 32},
		{1024, 64, 64},
		{999, 10, 16}, // ragged tail
		{64, 64, 64},  // w >= n: plain sort
		{10, 0, 4},    // already sorted
	} {
		a := workload.NearlySorted(tc.n, tc.d, int64(tc.n))
		if err := RollingClean(a, tc.w); err != nil {
			t.Fatalf("n=%d d=%d w=%d: %v", tc.n, tc.d, tc.w, err)
		}
		if !memsort.IsSorted(a) {
			t.Fatalf("n=%d d=%d w=%d: not sorted", tc.n, tc.d, tc.w)
		}
	}
}

func TestRollingCleanDetectsOverflow(t *testing.T) {
	// A key displaced far beyond the window must trigger detection.
	a := workload.Sorted(1000)
	a[0], a[900] = a[900], a[0]
	if err := RollingClean(a, 16); !errors.Is(err, ErrDirtyOverflow) {
		t.Fatalf("err = %v, want ErrDirtyOverflow", err)
	}
}

func TestRollingCleanReverseDetected(t *testing.T) {
	a := workload.ReverseSorted(256)
	if err := RollingClean(a, 16); !errors.Is(err, ErrDirtyOverflow) {
		t.Fatalf("err = %v, want ErrDirtyOverflow", err)
	}
}

func TestRollingCleanEmptyAndBadWindow(t *testing.T) {
	if err := RollingClean(nil, 4); err != nil {
		t.Fatalf("empty input: %v", err)
	}
	if err := RollingClean(make([]int64, 4), 0); err == nil {
		t.Fatal("zero window accepted")
	}
}

func TestPairwiseCleanMatchesRolling(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		n := 64 + rng.Intn(500)
		d := 1 + rng.Intn(20)
		a := workload.NearlySorted(n, d, rng.Int63())
		b := append([]int64(nil), a...)
		if err := RollingClean(a, d); err != nil {
			t.Fatalf("RollingClean: %v", err)
		}
		PairwiseClean(b, d)
		if !slices.Equal(a, b) {
			t.Fatalf("trial %d: rolling and pairwise disagree", trial)
		}
	}
}

func TestRollingCleanQuickProperty(t *testing.T) {
	// Property: for any displacement bound d <= w, RollingClean sorts.
	f := func(seed int64, nRaw, dRaw uint8) bool {
		n := 32 + int(nRaw)
		d := 1 + int(dRaw)%16
		a := workload.NearlySorted(n, d, seed)
		if err := RollingClean(a, d); err != nil {
			return false
		}
		return memsort.IsSorted(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMaxDisplacement(t *testing.T) {
	if got := MaxDisplacement([]int64{1, 2, 3}); got != 0 {
		t.Fatalf("sorted displacement = %d", got)
	}
	if got := MaxDisplacement([]int64{3, 1, 2}); got != 2 {
		t.Fatalf("displacement = %d, want 2", got)
	}
	// Duplicates: stable order keeps equal keys in place.
	if got := MaxDisplacement([]int64{5, 5, 5, 5}); got != 0 {
		t.Fatalf("constant displacement = %d", got)
	}
	a := workload.NearlySorted(500, 32, 1)
	if got := MaxDisplacement(a); got > 32 {
		t.Fatalf("NearlySorted displacement = %d > 32", got)
	}
}

func TestThreePassRefSorts(t *testing.T) {
	const mem = 64 // mesh is 64x8, N = 512
	n := mem * memsort.Isqrt(mem)
	inputs := map[string][]int64{
		"random":   workload.Perm(n, 9),
		"sorted":   workload.Sorted(n),
		"reversed": workload.ReverseSorted(n),
		"organ":    workload.Organ(n),
		"zeroone":  workload.ZeroOneK(n, n/3, 2),
		"dups":     workload.FewDistinct(n, 3, 4),
		"segrev":   workload.SegmentReversed(n, mem),
	}
	for name, data := range inputs {
		t.Run(name, func(t *testing.T) {
			want := append([]int64(nil), data...)
			memsort.Keys(want)
			if err := ThreePassRef(data, mem); err != nil {
				t.Fatal(err)
			}
			if !slices.Equal(data, want) {
				t.Fatal("output differs from sorted input")
			}
		})
	}
}

func TestThreePassRefValidation(t *testing.T) {
	if err := ThreePassRef(make([]int64, 10), 5); err == nil {
		t.Fatal("non-square M accepted")
	}
	if err := ThreePassRef(make([]int64, 10), 64); err == nil {
		t.Fatal("wrong input size accepted")
	}
}

func TestThreePassRefZeroOneExhaustiveSmall(t *testing.T) {
	// For a small geometry, check every 0-1 input class size k — the 0-1
	// principle says this implies correctness on all inputs.
	const mem = 16 // mesh 16x4, N = 64
	n := mem * 4
	for k := 0; k <= n; k++ {
		for rep := 0; rep < 3; rep++ {
			data := workload.ZeroOneK(n, k, int64(k*10+rep))
			if err := ThreePassRef(data, mem); err != nil {
				t.Fatalf("k=%d rep=%d: %v", k, rep, err)
			}
			if !memsort.IsSorted(data) {
				t.Fatalf("k=%d rep=%d: not sorted", k, rep)
			}
		}
	}
}

func TestExpTwoPassRefRandomMostlySucceeds(t *testing.T) {
	const mem = 1024
	cols := memsort.Isqrt(mem)
	// Capacity per Theorem 3.2: rows well below M by a log factor.
	rows := mem / 16
	n := rows * cols
	fail := 0
	for trial := 0; trial < 20; trial++ {
		data := workload.Perm(n, int64(trial))
		err := ExpTwoPassRef(data, mem)
		switch {
		case err == nil:
			if !memsort.IsSorted(data) {
				t.Fatalf("trial %d: reported success but unsorted", trial)
			}
		case errors.Is(err, ErrDirtyOverflow):
			fail++
		default:
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
	if fail > 2 {
		t.Fatalf("%d/20 random trials overflowed the window", fail)
	}
}

func TestExpTwoPassRefAdversarialDetected(t *testing.T) {
	const mem = 256
	cols := memsort.Isqrt(mem)
	n := mem * cols / 4
	data := workload.ColumnLoaded(n, cols)
	if err := ExpTwoPassRef(data, mem); !errors.Is(err, ErrDirtyOverflow) {
		t.Fatalf("err = %v, want ErrDirtyOverflow", err)
	}
}

func TestExpTwoPassRefReverseSortedSucceeds(t *testing.T) {
	// Reverse-sorted input is easy for the mesh variant: the column sort
	// leaves every key within √M of home, well inside the window.
	const mem = 256
	cols := memsort.Isqrt(mem)
	n := mem * cols / 4
	data := workload.ReverseSorted(n)
	if err := ExpTwoPassRef(data, mem); err != nil {
		t.Fatal(err)
	}
	if !memsort.IsSorted(data) {
		t.Fatal("not sorted")
	}
}

func TestExpTwoPassRefValidation(t *testing.T) {
	if err := ExpTwoPassRef(make([]int64, 10), 5); err == nil {
		t.Fatal("non-square M accepted")
	}
	if err := ExpTwoPassRef(make([]int64, 10), 16); err == nil {
		t.Fatal("non-column-multiple accepted")
	}
	if err := ExpTwoPassRef(make([]int64, 16*17), 16); err == nil {
		t.Fatal("columns taller than M accepted")
	}
}
