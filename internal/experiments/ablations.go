package experiments

import (
	"errors"
	"time"

	"repro/internal/memsort"
	"repro/internal/mesh"
	"repro/internal/report"
	"repro/internal/workload"
)

// A1CleanupWindow ablates the rolling-cleanup window (DESIGN.md A1): the
// window must cover the displacement bound; half windows fail exactly when
// the dirtiness exceeds them, which is why ThreePass2's chunk is M and why
// the memory envelope is 2M.
func A1CleanupWindow(trials int) (*report.Table, error) {
	t := report.NewTable("A1  Ablation: rolling-cleanup window vs displacement",
		"displacement d", "window", "trials", "successes", "detected overflows")
	for _, tc := range []struct{ d, w int }{
		{64, 64}, {64, 32}, {64, 16}, {128, 128}, {128, 64},
	} {
		succ, det := 0, 0
		for trial := 0; trial < trials; trial++ {
			a := workload.NearlySorted(4096, tc.d, int64(trial*3+tc.d))
			err := mesh.RollingClean(a, tc.w)
			switch {
			case err == nil && memsort.IsSorted(a):
				succ++
			case errors.Is(err, mesh.ErrDirtyOverflow):
				det++
			}
		}
		t.AddRow(tc.d, tc.w, trials, succ, det)
	}
	t.Note = "window >= displacement always succeeds; every failure is detected, never silent — the property the expected-pass algorithms rely on"
	return t, nil
}

// A2SnakeDirection ablates ThreePass1's alternating submesh row direction
// (DESIGN.md A2): without alternation the Shearsort pairing argument is
// lost and the post-column-sort dirty band can exceed √M/2 rows.
func A2SnakeDirection(trials int) (*report.Table, error) {
	t := report.NewTable("A2  Ablation: ThreePass1 submesh row alternation (0-1 inputs)",
		"variant", "trials", "max dirty rows", "bound sqrt(M)/2", "within")
	const mem = 1024
	cols := memsort.Isqrt(mem)
	rows := mem
	for _, alternate := range []bool{true, false} {
		worst := 0
		for trial := 0; trial < trials; trial++ {
			data := workload.ZeroOneK(rows*cols, (trial*rows*cols)/trials, int64(trial))
			m, err := mesh.New(rows, cols, data)
			if err != nil {
				return nil, err
			}
			for k := 0; k*cols < rows; k++ {
				m.SortSubmeshRowMajor(k*cols, 0, cols, cols, alternate && k%2 == 1)
			}
			m.SortColumns()
			if d := m.DirtyRows(); d > worst {
				worst = d
			}
		}
		name := "alternating (paper)"
		if !alternate {
			name = "uniform direction"
		}
		t.AddRow(name, trials, worst, cols/2, worst <= cols/2)
	}
	t.Note = "the factor-2 saving is exactly what makes the M/2-key cleanup window sufficient in Theorem 3.1"
	return t, nil
}

// A4MergeKernel ablates the k-way merge kernel (DESIGN.md A4): loser tree
// vs repeated binary merging, CPU time for the same output.
func A4MergeKernel() (*report.Table, error) {
	t := report.NewTable("A4  Ablation: k-way merge kernel (CPU only; I/O identical)",
		"k", "keys", "loser tree", "binary rounds", "speedup")
	for _, k := range []int{4, 16, 64} {
		per := 1 << 14
		lanes := make([][]int64, k)
		for i := range lanes {
			lane := workload.Uniform(per, 0, 1<<30, int64(i))
			memsort.Keys(lane)
			lanes[i] = lane
		}
		dst := make([]int64, k*per)
		t0 := time.Now()
		memsort.MultiMerge(dst, lanes)
		loser := time.Since(t0)
		t0 = time.Now()
		memsort.MultiMergeBinary(dst, lanes)
		binary := time.Since(t0)
		t.AddRow(k, k*per, loser.String(), binary.String(),
			report.Ratio(float64(binary.Nanoseconds()), float64(loser.Nanoseconds()), 2))
	}
	t.Note = "the loser tree does ceil(log2 k) comparisons per key; binary rounds copy more but stream caches better, so it wins at large k — I/O passes are identical either way"
	return t, nil
}

// A3IntegerStriping ablates IntegerSort's block placement (DESIGN.md A3):
// per-bucket round-robin rotation (the LMM striping) vs every bucket
// starting at disk 0, comparing per-phase write steps analytically.
func A3IntegerStriping() (*report.Table, error) {
	t := report.NewTable("A3  Ablation: IntegerSort bucket-write striping (analytic, one phase)",
		"buckets R", "disks D", "blocks", "rotated steps", "naive steps", "inflation")
	for _, tc := range []struct{ r, d int }{{32, 8}, {64, 8}, {64, 16}} {
		counts := workload.Uniform(tc.r, 1, 2, 99) // 1-2 blocks per bucket
		total := 0
		rotated := make([]int, tc.d)
		naive := make([]int, tc.d)
		for i, c := range counts {
			for blk := 0; blk < int(c); blk++ {
				rotated[(i+blk)%tc.d]++
				naive[blk%tc.d]++ // every bucket starts at disk 0
				total++
			}
		}
		maxOf := func(xs []int) int {
			m := 0
			for _, x := range xs {
				if x > m {
					m = x
				}
			}
			return m
		}
		t.AddRow(tc.r, tc.d, total, maxOf(rotated), maxOf(naive),
			report.Ratio(float64(maxOf(naive)), float64(maxOf(rotated)), 2))
	}
	t.Note = "naive placement serializes the first block of every bucket on disk 0; rotation is the paper's '[23] striping'"
	return t, nil
}

// A5Detection quantifies the failure-detection choice (DESIGN.md A5): the
// paper's largest-key tracking is free, while a separate verification pass
// would cost a full extra pass even on success.
func A5Detection() (*report.Table, error) {
	t := report.NewTable("A5  Ablation: failure detection strategy (ExpectedTwoPass)",
		"strategy", "extra passes on success", "extra passes on failure", "failures missed")
	t.AddRow("largest-key tracking (paper)", 0.0, "0 (aborts early)", 0)
	t.AddRow("separate verification pass", 1.0, 1.0, 0)
	t.AddRow("no detection", 0.0, 0.0, "all (unsorted output)")
	t.Note = "tracking the largest shipped key piggybacks on the cleanup's own writes; see core/rollingPass"
	return t, nil
}
