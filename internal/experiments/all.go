package experiments

import "repro/internal/report"

// Scale selects the experiment sizes: Quick keeps cmd/experiments and the
// benchmark suite snappy; Full is the configuration EXPERIMENTS.md records.
type Scale struct {
	MemSmall int // M for sweep-style experiments
	MemLarge int // M for the headline single runs
	Trials   int // trials per probabilistic configuration
}

// QuickScale runs in a few seconds.
var QuickScale = Scale{MemSmall: 256, MemLarge: 1024, Trials: 5}

// FullScale is what EXPERIMENTS.md records.
var FullScale = Scale{MemSmall: 1024, MemLarge: 4096, Trials: 20}

// All runs every experiment and ablation at the given scale, in index
// order.  Errors abort (each table is independently re-runnable through its
// function).
func All(sc Scale) ([]*report.Table, error) {
	type gen func() (*report.Table, error)
	gens := []gen{
		func() (*report.Table, error) { return E01LowerBound() },
		func() (*report.Table, error) { return E02ThreePass1([]int{sc.MemSmall, sc.MemLarge}) },
		func() (*report.Table, error) { return E03ExpTwoPassMesh(sc.MemLarge, sc.Trials) },
		func() (*report.Table, error) { return E04ZeroOne() },
		func() (*report.Table, error) { return E05ThreePass2([]int{sc.MemSmall, sc.MemLarge}) },
		func() (*report.Table, error) { return E06ShuffleLemma(sc.Trials) },
		func() (*report.Table, error) { return E07ExpectedTwoPass([]int{sc.MemSmall, sc.MemLarge}, sc.Trials) },
		func() (*report.Table, error) { return E08ModColumnsort(sc.MemLarge, sc.Trials) },
		func() (*report.Table, error) { return E09ExpectedThreePass(sc.MemSmall, sc.Trials) },
		func() (*report.Table, error) { return E10SevenPass([]int{sc.MemSmall, sc.MemLarge}) },
		func() (*report.Table, error) { return E11ExpectedSixPass(sc.MemSmall, sc.Trials) },
		func() (*report.Table, error) { return E12IntegerSort(sc.MemLarge, sc.Trials) },
		func() (*report.Table, error) { return E13RadixSort(sc.MemSmall) },
		func() (*report.Table, error) { return E14Subblock(sc.MemLarge) },
		func() (*report.Table, error) { return E15Summary(sc.MemLarge) },
		func() (*report.Table, error) { return E16Multiway(sc.MemSmall) },
		func() (*report.Table, error) { return A1CleanupWindow(sc.Trials) },
		func() (*report.Table, error) { return A2SnakeDirection(sc.Trials) },
		func() (*report.Table, error) { return A3IntegerStriping() },
		func() (*report.Table, error) { return A4MergeKernel() },
		func() (*report.Table, error) { return A5Detection() },
		func() (*report.Table, error) { return X1CostModel(sc.MemLarge) },
	}
	tables := make([]*report.Table, 0, len(gens))
	for _, g := range gens {
		tb, err := g()
		if err != nil {
			return tables, err
		}
		tables = append(tables, tb)
	}
	return tables, nil
}
