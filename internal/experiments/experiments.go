package experiments

import (
	"fmt"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/memsort"
	"repro/internal/pdm"
	"repro/internal/report"
	"repro/internal/workload"
	"repro/internal/zeroone"
)

// newArray builds the standard paper machine: B = √M, D = √M/C with C = 4
// (falling back to smaller C when √M < 4).
func newArray(m int) (*pdm.Array, error) {
	b := memsort.Isqrt(m)
	d := b / 4
	if d == 0 {
		d = 1
	}
	return pdm.New(pdm.Config{D: d, B: b, Mem: m})
}

// load places data on a fresh stripe without counting I/O and zeroes the
// statistics.
func load(a *pdm.Array, data []int64) (*pdm.Stripe, error) {
	s, err := a.NewStripe(len(data))
	if err != nil {
		return nil, err
	}
	if err := s.Load(data); err != nil {
		return nil, err
	}
	a.ResetStats()
	return s, nil
}

// sortedOK verifies res.Out against the sorted input.
func sortedOK(res *core.Result, input []int64) bool {
	got, err := res.Out.Unload()
	if err != nil {
		return false
	}
	want := append([]int64(nil), input...)
	memsort.Keys(want)
	for i := range want {
		if got[i] != want[i] {
			return false
		}
	}
	return true
}

// E01LowerBound evaluates Lemma 2.1: the Arge–Knudsen–Larsen lower bound on
// passes for N = M^1.5 and N = M² at B = √M, and the paper's Conclusions
// comparison against B = M^(1/3).
func E01LowerBound() (*report.Table, error) {
	t := report.NewTable("E01  Lemma 2.1: lower bound on passes (Arge-Knudsen-Larsen)",
		"M", "B", "N", "bound (passes)", "paper reading", "achieved by")
	type row struct {
		m, b  int
		n     int
		paper string
		alg   string
	}
	rows := []row{
		{1 << 10, 1 << 5, 1 << 15, "~2 (asymptotic)", "ThreePass1/2 = 3"},
		{1 << 20, 1 << 10, 1 << 30, "~2 (asymptotic)", "ThreePass1/2 = 3"},
		{1 << 40, 1 << 20, 1 << 60, "~2 (asymptotic)", "ThreePass1/2 = 3"},
		{1 << 10, 1 << 5, 1 << 20, "~3 (asymptotic)", "SevenPass = 7"},
		{1 << 20, 1 << 10, 1 << 40, "~3 (asymptotic)", "SevenPass = 7"},
		{1 << 30, 1 << 15, 1 << 60, "~3 (asymptotic)", "SevenPass = 7"},
		// Conclusions: at B = M^(1/3) the M^1.5 bound drops to ~1.75.
		{1 << 18, 1 << 6, 1 << 27, "~1.75 (B=M^1/3)", "CC columnsort = 3"},
	}
	for _, r := range rows {
		bound := core.LowerBoundPasses(r.n, r.m, r.b)
		t.AddRow(r.m, r.b, r.n, report.Fixed(bound, 3), r.paper, r.alg)
	}
	t.Note = "the paper's 'nearly 2/3 passes' readings are the B·log(M/B) >> 3B limit of the same inequality"
	return t, nil
}

// E02ThreePass1 measures Theorem 3.1: the mesh algorithm sorts M·√M keys in
// exactly three passes, on several input classes.
func E02ThreePass1(mems []int) (*report.Table, error) {
	t := report.NewTable("E02  Theorem 3.1: ThreePass1 (mesh) sorts M*sqrt(M) keys in 3 passes",
		"M", "N", "input", "read passes", "write passes", "sorted", "read eff")
	for _, m := range mems {
		a, err := newArray(m)
		if err != nil {
			return nil, err
		}
		n := m * memsort.Isqrt(m)
		for _, tc := range []struct {
			name string
			data []int64
		}{
			{"random", workload.Perm(n, 42)},
			{"reversed", workload.ReverseSorted(n)},
			{"0-1", workload.ZeroOneK(n, n/3, 7)},
		} {
			in, err := load(a, tc.data)
			if err != nil {
				return nil, err
			}
			res, err := core.ThreePass1(a, in)
			if err != nil {
				return nil, err
			}
			t.AddRow(m, n, tc.name, report.Fixed(res.ReadPasses, 3),
				report.Fixed(res.WritePasses, 3), sortedOK(res, tc.data),
				report.Fixed(res.IO.ReadEfficiency(a.D()), 2))
			res.Out.Free()
			in.Free()
		}
	}
	t.Note = "paper claim: exactly 3 passes, all inputs, B = sqrt(M)"
	return t, nil
}

// E03ExpTwoPassMesh measures Theorem 3.2: skipping the submesh pass gives
// two passes w.h.p.; the failure fraction grows as N approaches M·√M.
func E03ExpTwoPassMesh(m, trials int) (*report.Table, error) {
	t := report.NewTable("E03  Theorem 3.2: ExpThreePass1 mesh variant, 2 passes w.h.p.",
		"M", "N/M", "trials", "fallbacks", "mean passes", "all sorted")
	a, err := newArray(m)
	if err != nil {
		return nil, err
	}
	sq := memsort.Isqrt(m)
	for _, l := range []int{2, 4, 8, sq / 2, sq} {
		if l < 1 || l > sq {
			continue
		}
		n := l * m
		fellBack := 0
		sum := 0.0
		allSorted := true
		for trial := 0; trial < trials; trial++ {
			data := workload.Perm(n, int64(trial*131+l))
			in, err := load(a, data)
			if err != nil {
				return nil, err
			}
			res, err := core.ExpTwoPassMesh(a, in)
			if err != nil {
				return nil, err
			}
			if res.FellBack {
				fellBack++
			}
			sum += res.ReadPasses
			allSorted = allSorted && sortedOK(res, data)
			res.Out.Free()
			in.Free()
		}
		t.AddRow(m, l, trials, fellBack, report.Fixed(sum/float64(trials), 3), allSorted)
	}
	t.Note = "paper claim: 2 passes on >= 1-M^-alpha of inputs for N <= M*sqrt(M)/(c*alpha*ln M); failures detected and fixed in +3 passes"
	return t, nil
}

// E04ZeroOne verifies Theorem 3.3 exhaustively on a family of circuits:
// the permutation fraction is never below 1 − (1−α)(n+1).
func E04ZeroOne() (*report.Table, error) {
	t := report.NewTable("E04  Theorem 3.3: generalized 0-1 principle (exhaustive, n <= 8)",
		"circuit", "n", "alpha (min k-set frac)", "perm frac", "bound 1-(1-a)(n+1)", "holds")
	circuits := []struct {
		name string
		w    *zeroone.Network
	}{
		{"bubble(6)", zeroone.Bubble(6)},
		{"bubble(6) - 1 gate", zeroone.Bubble(6).Truncate(1)},
		{"bubble(6) - 3 gates", zeroone.Bubble(6).Truncate(3)},
		{"bubble(7) - 2 gates", zeroone.Bubble(7).Truncate(2)},
		{"odd-even-transposition(8, 6 rounds)", zeroone.OddEvenTransposition(8, 6)},
		{"odd-even-transposition(8, 8 rounds)", zeroone.OddEvenTransposition(8, 8)},
		{"shearsort(4x2, 1 phase)", zeroone.Shearsort(4, 2, 1)},
	}
	for _, c := range circuits {
		res, err := zeroone.CheckGeneralizedPrinciple(c.w)
		if err != nil {
			return nil, err
		}
		t.AddRow(c.name, res.N, report.Fixed(res.Alpha, 4),
			report.Fixed(res.PermFraction, 4), report.Fixed(res.Bound, 4), res.Holds)
		if !res.Holds {
			return t, fmt.Errorf("experiments: Theorem 3.3 violated by %s", c.name)
		}
	}
	t.Note = "bound is vacuous (0) once alpha <= 1 - 1/(n+1), as the paper notes"
	return t, nil
}

// E05ThreePass2 measures Lemma 4.1 and Observation 4.1: the LMM algorithm
// sorts M·√M in 3 passes, vs Chaudhry–Cormen columnsort's smaller capacity
// at the same pass count.
func E05ThreePass2(mems []int) (*report.Table, error) {
	t := report.NewTable("E05  Lemma 4.1 / Obs 4.1: ThreePass2 (LMM) vs CC columnsort, both 3 passes",
		"M", "algorithm", "B", "capacity (keys)", "read passes", "write passes", "sorted")
	for _, m := range mems {
		// LMM at B = sqrt(M).
		a, err := newArray(m)
		if err != nil {
			return nil, err
		}
		n := m * memsort.Isqrt(m)
		data := workload.Perm(n, 5)
		in, err := load(a, data)
		if err != nil {
			return nil, err
		}
		res, err := core.ThreePass2(a, in)
		if err != nil {
			return nil, err
		}
		t.AddRow(m, "ThreePass2 (paper)", memsort.Isqrt(m), n,
			report.Fixed(res.ReadPasses, 3), report.Fixed(res.WritePasses, 3), sortedOK(res, data))
		res.Out.Free()
		in.Free()

		// Columnsort at B ~ M^(1/3).
		bc := 1
		for bc*bc*bc < m {
			bc *= 2
		}
		dc := 8
		for bc%dc != 0 && dc > 1 {
			dc /= 2
		}
		ac, err := pdm.New(pdm.Config{D: dc, B: bc, Mem: m})
		if err != nil {
			return nil, err
		}
		r, s, err := baseline.ColumnsortGeometry(m, bc)
		if err != nil {
			return nil, err
		}
		cdata := workload.Perm(r*s, 6)
		cin, err := load(ac, cdata)
		if err != nil {
			return nil, err
		}
		cres, err := baseline.Columnsort(ac, cin, r, s)
		if err != nil {
			return nil, err
		}
		t.AddRow(m, "CC columnsort [7]", bc, r*s,
			report.Fixed(cres.ReadPasses, 3), report.Fixed(cres.WritePasses, 3), sortedOK(cres, cdata))
		cres.Out.Free()
		cin.Free()
	}
	t.Note = "paper claim: LMM sorts M^1.5 vs columnsort's ~M^1.5/sqrt(2) (power-of-two geometry rounds the latter further)"
	return t, nil
}
