package experiments

import (
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/memsort"
	"repro/internal/pdm"
	"repro/internal/report"
	"repro/internal/workload"
)

// X1CostModel grounds the paper's motivating sentence — "a saving of even
// one pass could make a big difference if the input size is large" — in the
// simulator's optional time model: each parallel I/O step costs
// seek + B·transfer.  At the ExpectedTwoPass capacity, the two-pass
// algorithm's simulated time is ~2/3 of the three-pass algorithms', and the
// non-oblivious multiway baseline pays extra for its unbalanced steps.
func X1CostModel(m int) (*report.Table, error) {
	t := report.NewTable("X1  Extension: simulated time (seek=5ms, transfer=20us/key per step)",
		"algorithm", "passes (read)", "sim time (s)", "vs ThreePass2")
	b := memsort.Isqrt(m)
	cfg := pdm.Config{D: b / 4, B: b, Mem: m, SeekTime: 5e-3, TransferPerKey: 2e-5}
	n := core.ExpectedTwoPassRuns(m, 1) * m
	data := workload.Perm(n, 21)

	entries := []struct {
		name string
		run  func(a *pdm.Array, in *pdm.Stripe) (*core.Result, error)
	}{
		{"ExpectedTwoPass", core.ExpectedTwoPass},
		{"ThreePass1 (mesh)", core.ThreePass1},
		{"ThreePass2 (LMM)", core.ThreePass2},
		{"multiway merge", baseline.MultiwayMergeSort},
	}
	type row struct {
		name   string
		passes float64
		time   float64
	}
	rows := make([]row, 0, len(entries))
	var ref float64
	for _, e := range entries {
		a, err := pdm.New(cfg)
		if err != nil {
			return nil, err
		}
		in, err := load(a, data)
		if err != nil {
			return nil, err
		}
		res, err := e.run(a, in)
		if err != nil {
			return nil, err
		}
		if !sortedOK(res, data) {
			return nil, errUnsorted(e.name)
		}
		if e.name == "ThreePass2 (LMM)" {
			ref = res.IO.SimTime
		}
		rows = append(rows, row{e.name, res.ReadPasses, res.IO.SimTime})
		res.Out.Free()
		in.Free()
	}
	for _, r := range rows {
		t.AddRow(r.name, report.Fixed(r.passes, 3), report.Fixed(r.time, 3),
			report.Ratio(r.time, ref, 2))
	}
	t.Note = "time per parallel step = seek + B*transfer; oblivious algorithms convert passes to time 1:1, the demand-read baseline pays extra for unbalanced steps"
	return t, nil
}

type errString string

func (e errString) Error() string { return string(e) }

func errUnsorted(name string) error {
	return errString("experiments: " + name + " produced unsorted output")
}
