package experiments

import (
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/memsort"
	"repro/internal/pdm"
	"repro/internal/report"
	"repro/internal/workload"
)

// E08ModColumnsort measures Observation 5.1: the two-pass probabilistic
// columnsort, with its ~4x smaller reliable capacity than ExpectedTwoPass.
func E08ModColumnsort(m, trials int) (*report.Table, error) {
	t := report.NewTable("E08  Obs 5.1: modified columnsort (skip steps 1-2), 2 passes w.h.p.",
		"M", "r x s", "N", "trials", "fallbacks", "mean passes", "all sorted")
	bc := 1
	for bc*bc*bc < m {
		bc *= 2
	}
	dc := 8
	for bc%dc != 0 && dc > 1 {
		dc /= 2
	}
	a, err := pdm.New(pdm.Config{D: dc, B: bc, Mem: m})
	if err != nil {
		return nil, err
	}
	for _, s := range []int{4, 8, 16, 32} {
		r := m
		// The fallback (full columnsort) must stay feasible: r >= 2(s-1)^2.
		if r%(s*bc) != 0 || r < 2*(s-1)*(s-1) {
			continue
		}
		n := r * s
		fellBack := 0
		sum := 0.0
		allSorted := true
		for trial := 0; trial < trials; trial++ {
			data := workload.Perm(n, int64(trial*13+s))
			in, err := load(a, data)
			if err != nil {
				return nil, err
			}
			res, err := baseline.ModifiedColumnsort(a, in, r, s)
			if err != nil {
				return nil, err
			}
			if res.FellBack {
				fellBack++
			}
			sum += res.ReadPasses
			allSorted = allSorted && sortedOK(res, data)
			res.Out.Free()
			in.Free()
		}
		t.AddRow(m, report.Cell(r)+"x"+report.Cell(s), n, trials, fellBack,
			report.Fixed(sum/float64(trials), 3), allSorted)
	}
	t.Note = "paper capacity: M*sqrt(M)/(4(alpha+2)ln M + 2) — about 4x fewer keys than ExpectedTwoPass (E07)"
	return t, nil
}

// E12IntegerSort measures Theorem 7.1: (1+µ) passes without step A,
// 2(1+µ) with, µ < 1, plus the behaviour under bucket skew.
func E12IntegerSort(m, trials int) (*report.Table, error) {
	t := report.NewTable("E12  Theorem 7.1: IntegerSort, R = M/B buckets",
		"M", "N/M", "input", "step A", "read passes", "write passes", "mu (write)", "sorted")
	a, err := newArray(m)
	if err != nil {
		return nil, err
	}
	r := m / memsort.Isqrt(m)
	for _, nM := range []int{16, 64} {
		n := nM * m
		for _, tc := range []struct {
			name string
			data []int64
		}{
			{"uniform", workload.Uniform(n, 0, int64(r-1), 3)},
			{"zipf", workload.Zipf(n, 1.3, uint64(r-1), 4)},
		} {
			for _, rearrange := range []bool{false, true} {
				in, err := load(a, tc.data)
				if err != nil {
					return nil, err
				}
				res, err := core.IntegerSort(a, in, r, rearrange)
				if err != nil {
					return nil, err
				}
				scatterPasses := res.WritePasses
				if rearrange {
					scatterPasses /= 2
				}
				sorted := "n/a"
				if rearrange {
					sorted = report.Cell(sortedOK(res, tc.data))
					res.Out.Free()
				}
				t.AddRow(m, nM, tc.name, rearrange,
					report.Fixed(res.ReadPasses, 3), report.Fixed(res.WritePasses, 3),
					report.Fixed(scatterPasses-1, 3), sorted)
				in.Free()
			}
		}
	}
	t.Note = "paper claim: (1+mu) passes without step A and 2(1+mu) with, mu < 1, for B = Omega(log N)"
	_ = trials
	return t, nil
}

// E13RadixSort measures Theorem 7.2 and Observation 7.2: pass counts across
// N, including the N = M², C = 4 example the paper bounds by 3.6 passes.
func E13RadixSort(m int) (*report.Table, error) {
	t := report.NewTable("E13  Theorem 7.2 / Obs 7.2: RadixSort passes",
		"M", "N/M", "universe", "read passes", "write passes", "predicted (nu=1/C)", "sorted")
	a, err := newArray(m)
	if err != nil {
		return nil, err
	}
	b := memsort.Isqrt(m)
	for _, nM := range []int{8, 64, 512, m} {
		if nM > m {
			continue
		}
		n := nM * m
		universe := int64(1) << 30
		data := workload.Uniform(n, 0, universe-1, int64(nM))
		in, err := load(a, data)
		if err != nil {
			return nil, err
		}
		res, err := core.RadixSort(a, in, universe)
		if err != nil {
			return nil, err
		}
		pred := core.RadixSortPredictedPasses(n, m, b, a.D())
		t.AddRow(m, nM, universe, report.Fixed(res.ReadPasses, 3),
			report.Fixed(res.WritePasses, 3), report.Fixed(pred, 2), sortedOK(res, data))
		res.Out.Free()
		in.Free()
	}
	t.Note = "Obs 7.2: N = M^2, B = sqrt(M), C = 4 => no more than 3.6 passes (asymptotic constants)"
	return t, nil
}

// E14Subblock measures Observation 6.1: subblock columnsort capacity and
// pass count on this simulator.
func E14Subblock(m int) (*report.Table, error) {
	t := report.NewTable("E14  Obs 6.1: subblock columnsort (Chaudhry-Cormen-Hamon)",
		"M", "r x s", "N", "M^(5/3)/4^(2/3)", "read passes", "write passes", "sorted")
	r, s, b, err := baseline.SubblockGeometry(m)
	if err != nil {
		return nil, err
	}
	d := 8
	for (r/b)%d != 0 && d > 1 {
		d /= 2
	}
	a, err := pdm.New(pdm.Config{D: d, B: b, Mem: m})
	if err != nil {
		return nil, err
	}
	n := r * s
	data := workload.Perm(n, 11)
	in, err := load(a, data)
	if err != nil {
		return nil, err
	}
	res, err := baseline.SubblockColumnsort(a, in, r, s)
	if err != nil {
		return nil, err
	}
	theory := mPow(m, 5.0/3.0) / mPow(4, 2.0/3.0)
	t.AddRow(m, report.Cell(r)+"x"+report.Cell(s), n, report.Fixed(theory, 0),
		report.Fixed(res.ReadPasses, 3), report.Fixed(res.WritePasses, 3), sortedOK(res, data))
	res.Out.Free()
	in.Free()
	t.Note = "paper: 4 passes at B = Theta(M^2/5); this simulator's block model needs 5 (see DESIGN.md); capacity matches up to power-of-4 rounding"
	return t, nil
}

// E16Multiway measures the Section 1 context claim: classical multiway
// merge sort takes more passes than the paper's algorithms at these sizes.
func E16Multiway(m int) (*report.Table, error) {
	t := report.NewTable("E16  Context: multiway merge sort passes vs the paper's algorithms",
		"M", "N/M", "multiway predicted", "multiway measured (read)", "paper algorithm", "paper passes")
	a, err := newArray(m)
	if err != nil {
		return nil, err
	}
	sq := memsort.Isqrt(m)
	for _, tc := range []struct {
		nM    int
		alg   string
		paper float64
	}{
		{4, "ExpectedTwoPass", 2},
		{sq, "ThreePass2", 3},
		{sq * sq, "SevenPass", 7},
	} {
		n := tc.nM * m
		data := workload.Perm(n, int64(tc.nM))
		in, err := load(a, data)
		if err != nil {
			return nil, err
		}
		res, err := baseline.MultiwayMergeSort(a, in)
		if err != nil {
			return nil, err
		}
		if !sortedOK(res, data) {
			t.Note = "MULTIWAY OUTPUT UNSORTED"
		}
		pred := baseline.MultiwayPredictedPasses(n, m, memsort.Isqrt(m))
		t.AddRow(m, tc.nM, report.Fixed(pred, 0), report.Fixed(res.ReadPasses, 3),
			tc.alg, report.Fixed(tc.paper, 0))
		res.Out.Free()
		in.Free()
	}
	t.Note = "multiway fan-in M/(2B) = sqrt(M)/2; demand reads also lose some parallel efficiency (no forecasting)"
	return t, nil
}

// E15Summary assembles the Conclusions comparison: every algorithm's block
// size, capacity and passes at one machine size.
func E15Summary(m int) (*report.Table, error) {
	t := report.NewTable("E15  Summary (paper Conclusions): capacity and passes at one machine",
		"algorithm", "B", "capacity (keys)", "passes", "kind")
	sq := memsort.Isqrt(m)
	n15 := m * sq
	w := core.ExpectedTwoPassRuns(m, 1)
	rc, sc, err := baseline.ColumnsortGeometry(m, cubeRootPow2(m))
	if err != nil {
		return nil, err
	}
	rs, ss, _, err := baseline.SubblockGeometry(m)
	if err != nil {
		return nil, err
	}
	lb15 := core.LowerBoundPasses(n15, m, sq)
	lb20 := core.LowerBoundPasses(m*m, m, sq)
	t.AddRow("lower bound (Lemma 2.1)", sq, n15, report.Fixed(lb15, 2), "bound")
	t.AddRow("lower bound (Lemma 2.1)", sq, m*m, report.Fixed(lb20, 2), "bound")
	t.AddRow("ThreePass1 (mesh)", sq, n15, 3, "deterministic")
	t.AddRow("ThreePass2 (LMM)", sq, n15, 3, "deterministic")
	t.AddRow("ExpectedTwoPass", sq, w*m, 2, "expected")
	t.AddRow("ExpectedThreePass", sq, core.ExpectedThreePassCapacity(m, 1), 3, "expected")
	t.AddRow("SevenPass", sq, m*m, 7, "deterministic")
	t.AddRow("SevenPassMesh (Remark 6.2)", sq, m*m, 7, "deterministic")
	t.AddRow("ExpectedSixPass", sq, core.ExpectedSixPassCapacity(m, 1), 6, "expected")
	t.AddRow("CC columnsort [7]", cubeRootPow2(m), rc*sc, 3, "baseline")
	t.AddRow("subblock columnsort [8]", memsort.Isqrt(ss), rs*ss, "4 (5 here)", "baseline")
	t.AddRow("multiway merge", sq, m*m, report.Fixed(baseline.MultiwayPredictedPasses(m*m, m, sq), 0), "baseline")
	t.AddRow("IntegerSort (+step A)", sq, m*m, "2(1+mu)", "randomized")
	t.AddRow("RadixSort", sq, m*m, report.Fixed(core.RadixSortPredictedPasses(m*m, m, sq, sq/4), 1), "randomized")
	t.Note = "capacities at alpha = 1; expected capacities are the reliable regimes, the paper's headline formulas"
	return t, nil
}

func cubeRootPow2(m int) int {
	b := 1
	for b*b*b < m {
		b *= 2
	}
	return b
}
