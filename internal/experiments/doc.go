// Package experiments regenerates every empirical claim of the paper —
// one experiment per theorem/lemma/observation with quantitative content,
// as indexed in DESIGN.md §4 and recorded in EXPERIMENTS.md.  The paper has
// no numbered tables or figures (it is a theory paper), so these tables ARE
// its evaluation: pass counts, capacities and failure probabilities,
// measured on the PDM simulator.
//
// cmd/experiments prints the full set; bench_test.go wraps each experiment
// in a benchmark so `go test -bench` regenerates them too.
package experiments
