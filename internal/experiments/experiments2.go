package experiments

import (
	"math"

	"repro/internal/core"
	"repro/internal/memsort"
	"repro/internal/pdm"
	"repro/internal/report"
	"repro/internal/shuffle"
	"repro/internal/workload"
)

// E06ShuffleLemma measures Lemma 4.2: the maximum displacement after
// partition-sort-shuffle stays below the analytic bound for random inputs.
func E06ShuffleLemma(trials int) (*report.Table, error) {
	t := report.NewTable("E06  Lemma 4.2: shuffling lemma displacement bound (alpha = 1)",
		"n", "parts m", "part len q", "max displacement (measured)", "bound", "within")
	for _, tc := range []struct{ n, m int }{
		{1 << 12, 4}, {1 << 12, 16}, {1 << 14, 8}, {1 << 14, 32}, {1 << 16, 16}, {1 << 16, 64},
	} {
		q := tc.n / tc.m
		bound := shuffle.DisplacementBound(tc.n, q, 1)
		worst := 0
		for trial := 0; trial < trials; trial++ {
			x := workload.Perm(tc.n, int64(trial*7+tc.m))
			z, err := shuffle.PartitionSortShuffle(x, tc.m)
			if err != nil {
				return nil, err
			}
			if d := shuffle.MaxDisplacement(z); d > worst {
				worst = d
			}
		}
		t.AddRow(tc.n, tc.m, q, worst, report.Fixed(bound, 1), float64(worst) <= bound)
	}
	t.Note = "paper claim: displacement <= (n/sqrt(q))*sqrt((alpha+2)ln n + 1) + n/q w.p. >= 1 - n^-alpha"
	return t, nil
}

// E07ExpectedTwoPass measures Theorem 5.1: expected two passes at the
// theorem's capacity, with the failure fraction across run counts.
func E07ExpectedTwoPass(mems []int, trials int) (*report.Table, error) {
	t := report.NewTable("E07  Theorem 5.1: ExpectedTwoPass",
		"M", "N/M", "window ok", "trials", "fallbacks", "mean passes", "all sorted")
	for _, m := range mems {
		a, err := newArray(m)
		if err != nil {
			return nil, err
		}
		sq := memsort.Isqrt(m)
		window := core.ExpectedTwoPassRuns(m, 1)
		for _, n1 := range []int{2, 4, 8, 16, 32} {
			if n1 > sq || sq%n1 != 0 {
				continue
			}
			n := n1 * m
			fellBack := 0
			sum := 0.0
			allSorted := true
			for trial := 0; trial < trials; trial++ {
				data := workload.Perm(n, int64(trial*977+n1))
				in, err := load(a, data)
				if err != nil {
					return nil, err
				}
				res, err := core.ExpectedTwoPass(a, in)
				if err != nil {
					return nil, err
				}
				if res.FellBack {
					fellBack++
				}
				sum += res.ReadPasses
				allSorted = allSorted && sortedOK(res, data)
				res.Out.Free()
				in.Free()
			}
			t.AddRow(m, n1, n1 <= window, trials, fellBack,
				report.Fixed(sum/float64(trials), 3), allSorted)
		}
	}
	t.Note = "paper capacity: N = M*sqrt(M)/((alpha+2)ln M + 2); 'window ok' marks run counts inside the Lemma 4.2 window"
	return t, nil
}

// E09ExpectedThreePass measures Theorem 6.1 at several long-run counts.
func E09ExpectedThreePass(m, trials int) (*report.Table, error) {
	t := report.NewTable("E09  Theorem 6.1: ExpectedThreePass (~M^1.75 keys in 3 passes w.h.p.)",
		"M", "N", "N/M^1.75", "trials", "fallbacks", "mean passes", "all sorted")
	a, err := newArray(m)
	if err != nil {
		return nil, err
	}
	sq := memsort.Isqrt(m)
	for _, l := range []int{2, 4, 8} {
		if l > sq || sq%l != 0 {
			continue
		}
		n := l * l * m
		fellBack := 0
		sum := 0.0
		allSorted := true
		for trial := 0; trial < trials; trial++ {
			data := workload.Perm(n, int64(trial*31+l))
			in, err := load(a, data)
			if err != nil {
				return nil, err
			}
			res, err := core.ExpectedThreePass(a, in)
			if err != nil {
				return nil, err
			}
			if res.FellBack {
				fellBack++
			}
			sum += res.ReadPasses
			allSorted = allSorted && sortedOK(res, data)
			res.Out.Free()
			in.Free()
		}
		ratio := float64(n) / mPow(m, 1.75)
		t.AddRow(m, n, report.Fixed(ratio, 4), trials, fellBack,
			report.Fixed(sum/float64(trials), 3), allSorted)
	}
	t.Note = "paper capacity: M^1.75/((alpha+2)ln M+2)^(3/4); geometry restricted to N = l^2*M with l | sqrt(M)"
	return t, nil
}

// E10SevenPass measures Theorem 6.2: M² keys in exactly seven passes.
func E10SevenPass(mems []int) (*report.Table, error) {
	t := report.NewTable("E10  Theorem 6.2: SevenPass sorts M^2 keys in 7 passes",
		"M", "N = M^2", "read passes", "write passes", "sorted", "read eff")
	for _, m := range mems {
		a, err := newArray(m)
		if err != nil {
			return nil, err
		}
		n := m * m
		data := workload.Perm(n, 17)
		in, err := load(a, data)
		if err != nil {
			return nil, err
		}
		res, err := core.SevenPass(a, in)
		if err != nil {
			return nil, err
		}
		t.AddRow(m, n, report.Fixed(res.ReadPasses, 3), report.Fixed(res.WritePasses, 3),
			sortedOK(res, data), report.Fixed(res.IO.ReadEfficiency(a.D()), 2))
		res.Out.Free()

		// The Remark 6.2 mesh-based variant: same pass structure.
		in2, err := load(a, data)
		if err != nil {
			return nil, err
		}
		res2, err := core.SevenPassMesh(a, in2)
		if err != nil {
			return nil, err
		}
		t.AddRow(m, report.Cell(n)+" (mesh)", report.Fixed(res2.ReadPasses, 3),
			report.Fixed(res2.WritePasses, 3), sortedOK(res2, data),
			report.Fixed(res2.IO.ReadEfficiency(a.D()), 2))
		res2.Out.Free()
		in2.Free()
		in.Free()
	}
	t.Note = "paper claim: exactly 7 passes at B = sqrt(M); '(mesh)' rows are the Remark 6.2 variant (mesh superruns)"
	return t, nil
}

// E11ExpectedSixPass measures Theorem 6.3 across superrun scales: six
// passes while the per-segment ExpectedTwoPass window holds, falling back
// per segment beyond it.
func E11ExpectedSixPass(m, trials int) (*report.Table, error) {
	t := report.NewTable("E11  Theorem 6.3: ExpectedSixPass (~M^2/sqrt(log) keys in 6 passes w.h.p.)",
		"M", "N", "seg window ok", "trials", "fallbacks", "mean passes", "all sorted")
	// D = 4 (C = √M/4): the reliable superrun counts at simulator scale are
	// small, and exact pass counts need l ≥ D (full disk occupancy).
	b := memsort.Isqrt(m)
	a, err := pdm.New(pdm.Config{D: 4, B: b, Mem: m})
	if err != nil {
		return nil, err
	}
	sq := memsort.Isqrt(m)
	window := core.ExpectedTwoPassRuns(m, 1)
	for _, l := range []int{4, 8, 16} {
		// l ≥ D for full disk occupancy (exact pass counts), l | √M.
		if l < a.D() || l > sq || sq%l != 0 {
			continue
		}
		n := l * l * m
		fellBack := 0
		sum := 0.0
		allSorted := true
		for trial := 0; trial < trials; trial++ {
			data := workload.Perm(n, int64(trial*53+l))
			in, err := load(a, data)
			if err != nil {
				return nil, err
			}
			res, err := core.ExpectedSixPass(a, in)
			if err != nil {
				return nil, err
			}
			if res.FellBack {
				fellBack++
			}
			sum += res.ReadPasses
			allSorted = allSorted && sortedOK(res, data)
			res.Out.Free()
			in.Free()
		}
		t.AddRow(m, n, l <= window, trials, fellBack,
			report.Fixed(sum/float64(trials), 3), allSorted)
	}
	t.Note = "fallback re-sorts only the offending segment (+3 passes over it); paper's alternate for full failure is SevenPass"
	return t, nil
}

// mPow computes m^p for capacity ratios.
func mPow(m int, p float64) float64 {
	return math.Pow(float64(m), p)
}
