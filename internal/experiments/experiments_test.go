package experiments

import (
	"strings"
	"testing"
)

func TestAllQuickScale(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment suite in -short mode")
	}
	tables, err := All(QuickScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 22 {
		t.Fatalf("got %d tables, want 22 (E01-E16 + A1-A5 + X1)", len(tables))
	}
	for _, tb := range tables {
		if tb.Rows() == 0 {
			t.Fatalf("table %q is empty", tb.Title)
		}
		out := tb.String()
		if !strings.Contains(out, tb.Title) {
			t.Fatalf("table %q renders without its title", tb.Title)
		}
		if strings.Contains(out, "false") && strings.Contains(tb.Title, "Theorem 3.1") {
			t.Fatalf("E02 reports an unsorted run:\n%s", out)
		}
	}
}

func TestE04HoldsExhaustively(t *testing.T) {
	tb, err := E04ZeroOne()
	if err != nil {
		t.Fatalf("Theorem 3.3 check failed: %v\n%s", err, tb)
	}
}

func TestE01Shape(t *testing.T) {
	tb, err := E01LowerBound()
	if err != nil {
		t.Fatal(err)
	}
	if tb.Rows() != 7 {
		t.Fatalf("E01 rows = %d", tb.Rows())
	}
}
