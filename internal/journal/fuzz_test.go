package journal

import (
	"encoding/json"
	"os"
	"path/filepath"
	"sort"
	"testing"
)

// FuzzJournalReplay checks the torn-tail prefix rule: append a
// fuzzer-shaped record sequence, cut the segment files at a fuzzer-chosen
// byte offset (simulating a crash mid-write), and Replay must return
// exactly a prefix of the appended records — never an error, never a
// record that was not appended, never a gap.
func FuzzJournalReplay(f *testing.F) {
	f.Add([]byte{}, uint16(0))
	f.Add([]byte{1, 0, 2, 3, 4, 1, 9}, uint16(7))
	f.Add([]byte("\x01abc\x02de\x03fghi\x04\x04\x04"), uint16(40))
	f.Add([]byte{4, 200, 1, 100, 3, 50, 2, 25}, uint16(0xffff))
	f.Fuzz(func(t *testing.T, data []byte, cut uint16) {
		next := func() byte {
			if len(data) == 0 {
				return 0
			}
			b := data[0]
			data = data[1:]
			return b
		}
		dir := t.TempDir()
		j, err := Open(dir, Options{SegmentBytes: 256}) // small segments force rotation
		if err != nil {
			t.Fatal(err)
		}
		nrec := int(next()) % 24
		appended := make([]Record, 0, nrec)
		for i := 0; i < nrec; i++ {
			typ := Type(next()%4 + 1)
			job := int(next()) % 8
			payload, _ := json.Marshal(map[string]int{"i": i, "x": int(next())})
			r, err := j.Append(typ, job, payload)
			if err != nil {
				t.Fatalf("append %d: %v", i, err)
			}
			appended = append(appended, r)
		}
		if err := j.Close(); err != nil {
			t.Fatal(err)
		}

		// Tear the log: truncate the cut-th byte across the ordered
		// segment files, dropping everything after it.
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		var names []string
		for _, e := range entries {
			names = append(names, e.Name())
		}
		sort.Strings(names)
		remaining := int64(cut)
		for _, name := range names {
			path := filepath.Join(dir, name)
			fi, err := os.Stat(path)
			if err != nil {
				t.Fatal(err)
			}
			if remaining >= fi.Size() {
				remaining -= fi.Size()
				continue
			}
			if err := os.Truncate(path, remaining); err != nil {
				t.Fatal(err)
			}
			remaining = 0
			// Later segments vanish entirely, as after a lost write burst.
			continue
		}

		recs, _, err := Replay(dir)
		if err != nil {
			t.Fatalf("Replay after tear: %v", err)
		}
		if len(recs) > len(appended) {
			t.Fatalf("replay returned %d records, only %d were appended", len(recs), len(appended))
		}
		for i, r := range recs {
			want := appended[i]
			if r.Seq != want.Seq || r.Type != want.Type || r.Job != want.Job ||
				string(r.Data) != string(want.Data) {
				t.Fatalf("record %d differs after tear:\ngot  %+v\nwant %+v", i, r, want)
			}
		}
	})
}
